// Command usbench measures the simulation hot path and the experiment
// sweeps and writes the results as machine-readable JSON (default
// BENCH_engine.json), so the performance trajectory is tracked across
// changes: nanoseconds and heap allocations per simulated cycle for each
// architecture on the kernel suite, the steady-state figures on a long
// loop workload, and the serial-versus-parallel sweep wall-clock.
//
// With -compare OLD.json it additionally acts as a regression gate:
// every section's ns/cycle is checked against the old report and the
// process exits 1 when any section slowed down by more than -tolerance
// (relative). With -metrics FILE it records the experiment worker-pool
// metrics (task latency histogram, queue depth, utilization) gathered
// during the sweep benchmark.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ultrascalar/internal/core"
	"ultrascalar/internal/exp"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/profiling"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

// EngineResult is the hot-path measurement for one configuration.
type EngineResult struct {
	Name           string  `json:"name"`
	Window         int     `json:"window"`
	Granularity    int     `json:"granularity"`
	GOMAXPROCS     int     `json:"gomaxprocs,omitempty"`
	Cycles         int64   `json:"simulated_cycles"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// SweepResult compares serial and parallel experiment-sweep wall-clock.
// The task-latency quantiles come from the worker-pool histogram
// (present only when -metrics gathered one).
type SweepResult struct {
	Workers    int     `json:"workers"`
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	TaskP50Ms  float64 `json:"task_p50_ms,omitempty"`
	TaskP90Ms  float64 `json:"task_p90_ms,omitempty"`
	TaskP99Ms  float64 `json:"task_p99_ms,omitempty"`
}

// Report is the written JSON document.
type Report struct {
	Date        string         `json:"date"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Manifest    *obs.Manifest  `json:"manifest,omitempty"`
	Engine      []EngineResult `json:"engine"`
	SteadyState EngineResult   `json:"steady_state"`
	Sweep       SweepResult    `json:"sweep"`
}

// benchEngine runs the kernel suite repeatedly at the given configuration
// for roughly the given duration and reports per-cycle cost, bounded by
// ctx (the -timeout flag).
func benchEngine(ctx context.Context, name string, cfg core.Config, ws []workload.Workload, d time.Duration) (EngineResult, error) {
	var cycles int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now() //uslint:allow detorder -- wall-clock benchmarking is this tool's purpose
	iters := 0
	for time.Since(start) < d {
		w := ws[iters%len(ws)]
		res, err := core.RunCtx(ctx, w.Prog, w.Mem(), cfg)
		if err != nil {
			return EngineResult{}, fmt.Errorf("%s on %s: %w", w.Name, name, err)
		}
		cycles += res.Stats.Cycles
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return EngineResult{
		Name: name, Window: cfg.Window, Granularity: cfg.Granularity,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Cycles:         cycles,
		NsPerCycle:     float64(elapsed.Nanoseconds()) / float64(cycles),
		AllocsPerCycle: float64(ms1.Mallocs-ms0.Mallocs) / float64(cycles),
	}, nil
}

// benchSweep times one full experiment-sweep workload (the IPC table plus
// the Figure 11 fits) at the given worker count.
func benchSweep(workers int) (time.Duration, error) {
	prev := exp.SetSweepWorkers(workers)
	defer exp.SetSweepWorkers(prev)
	t := vlsi.Tech035()
	start := time.Now() //uslint:allow detorder -- wall-clock benchmarking is this tool's purpose
	if _, err := exp.IPC(64, 16); err != nil {
		return 0, err
	}
	if _, err := exp.Figure11(32, 32, 64, 1024, t); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// compare checks every section of the new report against the old one and
// returns the list of regressions: sections whose ns/cycle grew by more
// than tol (relative). Sections absent from the old report, or with a
// non-positive old value, are skipped — a new benchmark cannot regress.
func compare(old, new Report, tol float64) []string {
	var regressions []string
	check := func(section string, oldNs, newNs float64) {
		if oldNs <= 0 {
			return
		}
		ratio := newNs/oldNs - 1
		status := "ok"
		if ratio > tol {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2f -> %.2f ns/cycle (%+.1f%% > %.0f%% tolerance)",
					section, oldNs, newNs, 100*ratio, 100*tol))
		}
		fmt.Printf("  %-24s %8.2f -> %8.2f ns/cycle  %+6.1f%%  %s\n",
			section, oldNs, newNs, 100*ratio, status)
	}
	oldEngine := make(map[string]EngineResult, len(old.Engine))
	for _, r := range old.Engine {
		oldEngine[r.Name] = r
	}
	for _, r := range new.Engine {
		if o, ok := oldEngine[r.Name]; ok {
			check(r.Name, o.NsPerCycle, r.NsPerCycle)
		}
	}
	check("steady_state", old.SteadyState.NsPerCycle, new.SteadyState.NsPerCycle)
	if new.Sweep.TaskP50Ms > 0 {
		fmt.Printf("  %-24s P50 %.2f  P90 %.2f  P99 %.2f ms (informational)\n",
			"sweep task latency", new.Sweep.TaskP50Ms, new.Sweep.TaskP90Ms, new.Sweep.TaskP99Ms)
	}
	return regressions
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file (- for stdout)")
	dur := flag.Duration("d", 2*time.Second, "measurement duration per engine configuration")
	comparePath := flag.String("compare", "", "old report to gate against; exit 1 on ns/cycle regression")
	tolerance := flag.Float64("tolerance", 0.25, "relative ns/cycle growth allowed by -compare")
	metricsOut := flag.String("metrics", "", "write worker-pool metrics snapshots from the sweep benchmark to this file")
	timeout := flag.Duration("timeout", 0, "abort the whole benchmark after this long (0 = no limit); exit code 3 on deadline")
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		// Bound the sweep benchmarks too: the pool stops claiming points
		// once the deadline passes.
		exp.SetSweepContext(ctx)
		defer exp.SetSweepContext(nil)
	}
	stopProfiling, err := profiling.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProfiling()

	// Load the baseline before any measuring (and before -o possibly
	// overwrites the same file), and fail fast on a bad path.
	var old Report
	if *comparePath != "" {
		oldBytes, err := os.ReadFile(*comparePath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(oldBytes, &old); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *comparePath, err))
		}
	}

	man := obs.NewManifest("usbench")
	man.Config = fmt.Sprintf("d=%s", *dur)
	rep := Report{
		Date:       time.Now().UTC().Format("2006-01-02"), //uslint:allow detorder -- report date stamp, not a measured result
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Manifest:   &man,
	}

	var poolReg *obs.Registry
	if *metricsOut != "" {
		poolReg = obs.NewRegistry()
		exp.SetPoolMetrics(poolReg)
		defer exp.SetPoolMetrics(nil)
	}

	ws := workload.Kernels()
	for _, arch := range []struct {
		name string
		g    int
	}{{"ultra1", 1}, {"hybrid", 32}, {"ultra2", 256}} {
		r, err := benchEngine(ctx, arch.name, core.Config{Window: 256, Granularity: arch.g}, ws, *dur)
		if err != nil {
			fatal(err)
		}
		rep.Engine = append(rep.Engine, r)
	}
	steady, err := benchEngine(ctx, "ultra1/repeated-scan",
		core.Config{Window: 256, Granularity: 1},
		[]workload.Workload{workload.RepeatedScan(64, 50)}, *dur)
	if err != nil {
		fatal(err)
	}
	rep.SteadyState = steady

	// Warm the model memo the same way for both timings, then measure.
	if _, err := benchSweep(1); err != nil {
		fatal(err)
	}
	serial, err := benchSweep(1)
	if err != nil {
		fatal(err)
	}
	parallel, err := benchSweep(0)
	if err != nil {
		fatal(err)
	}
	rep.Sweep = SweepResult{
		Workers:    exp.SweepWorkers(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SerialMs:   float64(serial.Microseconds()) / 1e3,
		ParallelMs: float64(parallel.Microseconds()) / 1e3,
		Speedup:    float64(serial) / float64(parallel),
	}
	if poolReg != nil {
		if hv, ok := poolReg.Peek(0).Histograms["exp.task_ms"]; ok && hv.Count > 0 {
			rep.Sweep.TaskP50Ms = hv.Quantile(0.50)
			rep.Sweep.TaskP90Ms = hv.Quantile(0.90)
			rep.Sweep.TaskP99Ms = hv.Quantile(0.99)
		}
	}

	if poolReg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := poolReg.WriteJSON(f, man); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
	} else {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *comparePath != "" {
		fmt.Printf("comparing against %s (recorded %s, %s):\n", *comparePath, old.Date, old.GoVersion)
		regressions := compare(old, rep, *tolerance)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "usbench: %d section(s) regressed beyond %.0f%%:\n", len(regressions), 100**tolerance)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Println("no regressions beyond tolerance")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usbench:", err)
	if errors.Is(err, context.DeadlineExceeded) {
		os.Exit(3) // distinct code: killed by -timeout, not broken
	}
	os.Exit(1)
}
