// Command usbench measures the simulation hot path and the experiment
// sweeps and writes the results as machine-readable JSON (default
// BENCH_engine.json), so the performance trajectory is tracked across
// changes: nanoseconds and heap allocations per simulated cycle for each
// architecture on the kernel suite, the steady-state figures on a long
// loop workload, and the serial-versus-parallel sweep wall-clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ultrascalar/internal/core"
	"ultrascalar/internal/exp"
	"ultrascalar/internal/profiling"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

// EngineResult is the hot-path measurement for one configuration.
type EngineResult struct {
	Name           string  `json:"name"`
	Window         int     `json:"window"`
	Granularity    int     `json:"granularity"`
	Cycles         int64   `json:"simulated_cycles"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// SweepResult compares serial and parallel experiment-sweep wall-clock.
type SweepResult struct {
	Workers    int     `json:"workers"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// Report is the written JSON document.
type Report struct {
	Date        string         `json:"date"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Engine      []EngineResult `json:"engine"`
	SteadyState EngineResult   `json:"steady_state"`
	Sweep       SweepResult    `json:"sweep"`
}

// benchEngine runs the kernel suite repeatedly at the given configuration
// for roughly the given duration and reports per-cycle cost.
func benchEngine(name string, cfg core.Config, ws []workload.Workload, d time.Duration) (EngineResult, error) {
	var cycles int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now() //uslint:allow detorder -- wall-clock benchmarking is this tool's purpose
	iters := 0
	for time.Since(start) < d {
		w := ws[iters%len(ws)]
		res, err := core.Run(w.Prog, w.Mem(), cfg)
		if err != nil {
			return EngineResult{}, fmt.Errorf("%s on %s: %w", w.Name, name, err)
		}
		cycles += res.Stats.Cycles
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return EngineResult{
		Name: name, Window: cfg.Window, Granularity: cfg.Granularity,
		Cycles:         cycles,
		NsPerCycle:     float64(elapsed.Nanoseconds()) / float64(cycles),
		AllocsPerCycle: float64(ms1.Mallocs-ms0.Mallocs) / float64(cycles),
	}, nil
}

// benchSweep times one full experiment-sweep workload (the IPC table plus
// the Figure 11 fits) at the given worker count.
func benchSweep(workers int) (time.Duration, error) {
	prev := exp.SetSweepWorkers(workers)
	defer exp.SetSweepWorkers(prev)
	t := vlsi.Tech035()
	start := time.Now() //uslint:allow detorder -- wall-clock benchmarking is this tool's purpose
	if _, err := exp.IPC(64, 16); err != nil {
		return 0, err
	}
	if _, err := exp.Figure11(32, 32, 64, 1024, t); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file (- for stdout)")
	dur := flag.Duration("d", 2*time.Second, "measurement duration per engine configuration")
	flag.Parse()
	stopProfiling, err := profiling.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProfiling()

	rep := Report{
		Date:       time.Now().UTC().Format("2006-01-02"), //uslint:allow detorder -- report date stamp, not a measured result
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	ws := workload.Kernels()
	for _, arch := range []struct {
		name string
		g    int
	}{{"ultra1", 1}, {"hybrid", 32}, {"ultra2", 256}} {
		r, err := benchEngine(arch.name, core.Config{Window: 256, Granularity: arch.g}, ws, *dur)
		if err != nil {
			fatal(err)
		}
		rep.Engine = append(rep.Engine, r)
	}
	steady, err := benchEngine("ultra1/repeated-scan",
		core.Config{Window: 256, Granularity: 1},
		[]workload.Workload{workload.RepeatedScan(64, 50)}, *dur)
	if err != nil {
		fatal(err)
	}
	rep.SteadyState = steady

	// Warm the model memo the same way for both timings, then measure.
	if _, err := benchSweep(1); err != nil {
		fatal(err)
	}
	serial, err := benchSweep(1)
	if err != nil {
		fatal(err)
	}
	parallel, err := benchSweep(0)
	if err != nil {
		fatal(err)
	}
	rep.Sweep = SweepResult{
		Workers:    exp.SweepWorkers(),
		SerialMs:   float64(serial.Microseconds()) / 1e3,
		ParallelMs: float64(parallel.Microseconds()) / 1e3,
		Speedup:    float64(serial) / float64(parallel),
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usbench:", err)
	os.Exit(1)
}
