// Command ustrace records, summarizes and converts pipeline event
// traces of the Ultrascalar simulators — the per-station, per-cycle view
// the aggregate statistics cannot show.
//
// Usage:
//
//	ustrace record [-arch hybrid] [-n 64] [-c C] [-kernel fib | prog.s | -]
//	               [-format jsonl|chrome] [-o trace.jsonl]
//	               [-cap 1048576] [-ring] [-metrics m.json] [-metrics-every 256]
//	ustrace summary trace.jsonl
//	ustrace convert trace.jsonl -o trace.json
//
// A chrome-format trace (or the output of convert) loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing: execution stations
// appear as tracks, instructions as slices spanning issue to
// completion, squashes as instant markers. The JSONL form is compact,
// diff-able, and byte-deterministic for a given program and
// configuration; summary digests it into IPC-over-time, an occupancy
// heat strip, operand locality and squash storms.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ultrascalar"
	"ultrascalar/internal/core"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ustrace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ustrace:", err)
		if errors.Is(err, context.DeadlineExceeded) {
			os.Exit(3) // distinct code: killed by -timeout, not broken
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  ustrace record  [flags] (-kernel name | prog.s | -)   record a traced run
  ustrace summary trace.jsonl                           digest a recorded trace
  ustrace convert trace.jsonl -o trace.json             JSONL -> Chrome trace JSON
run "ustrace record -h" for recording flags; named kernels: `+kernelNames()+"\n")
}

// namedKernels returns the workload suite addressable via -kernel.
func namedKernels() []workload.Workload {
	ws := workload.Kernels()
	ws = append(ws, workload.Figure3Sequence(), workload.RepeatedScan(64, 50))
	return ws
}

func kernelNames() string {
	var names []string
	for _, w := range namedKernels() {
		names = append(names, w.Name)
	}
	return strings.Join(names, ", ")
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("ustrace record", flag.ContinueOnError)
	arch := fs.String("arch", "hybrid", "processor: ultra1, ultra2, hybrid")
	n := fs.Int("n", 64, "window size / issue width")
	c := fs.Int("c", 0, "hybrid cluster size (default min(32, n))")
	regs := fs.Int("regs", 32, "logical registers L")
	kernel := fs.String("kernel", "", "record a named kernel instead of assembling a source file")
	format := fs.String("format", "jsonl", "output format: jsonl or chrome")
	out := fs.String("o", "", "output file (default trace.jsonl / trace.json, - for stdout)")
	capacity := fs.Int("cap", 1<<20, "event slab capacity")
	ring := fs.Bool("ring", false, "flight-recorder mode: keep the LAST -cap events instead of the first")
	metricsOut := fs.String("metrics", "", "also write periodic engine metrics snapshots to this file")
	metricsEvery := fs.Int64("metrics-every", 256, "metrics snapshot period in cycles")
	timeout := fs.Duration("timeout", 0, "abort the recorded run after this long (0 = no limit); exit code 3 on deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Resolve the program.
	var prog []ultrascalar.Inst
	var mem *ultrascalar.Memory
	var progName string
	switch {
	case *kernel != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("-kernel and a source file are mutually exclusive")
		}
		found := false
		for _, w := range namedKernels() {
			if w.Name == *kernel {
				prog, mem, progName, found = w.Prog, w.Mem(), w.Name, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown kernel %q (have: %s)", *kernel, kernelNames())
		}
	case fs.NArg() == 1:
		src, err := readSource(fs.Arg(0))
		if err != nil {
			return err
		}
		p, err := ultrascalar.Assemble(src)
		if err != nil {
			return err
		}
		mem = ultrascalar.NewMemory()
		p.InitMem(mem)
		prog, progName = p.Insts, fs.Arg(0)
	default:
		return fmt.Errorf("need exactly one program: -kernel name, a source file, or - for stdin")
	}

	// Build the configuration.
	var g int
	switch *arch {
	case "ultra1":
		g = 1
	case "ultra2":
		g = *n
	case "hybrid":
		g = *c
		if g == 0 {
			g = min(32, *n)
		}
	default:
		return fmt.Errorf("unknown architecture %q", *arch)
	}
	if *n < 1 || *n%g != 0 {
		return fmt.Errorf("cluster size %d must divide window %d", g, *n)
	}
	var tr *obs.Tracer
	if *ring {
		tr = obs.NewRingTracer(*capacity)
	} else {
		tr = obs.NewTracer(*capacity)
	}
	cfg := core.Config{Window: *n, Granularity: g, NumRegs: *regs, Tracer: tr}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
		cfg.MetricsEvery = *metricsEvery
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := core.RunCtx(ctx, prog, mem, cfg)
	if err != nil {
		return err
	}

	man := obs.NewManifest("ustrace")
	man.Config = fmt.Sprintf("arch=%s n=%d c=%d regs=%d prog=%s", *arch, *n, g, *regs, progName)
	man.Prog = strings.Split(strings.TrimRight(ultrascalar.Disassemble(prog), "\n"), "\n")

	path := *out
	if path == "" {
		path = map[string]string{"jsonl": "trace.jsonl", "chrome": "trace.json"}[*format]
	}
	w, closeOut, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeOut()
	switch *format {
	case "jsonl":
		err = obs.WriteJSONL(w, man, tr.Events())
	case "chrome":
		err = obs.WriteChromeTrace(w, man, tr.Events(), nil)
	default:
		return fmt.Errorf("unknown format %q (jsonl or chrome)", *format)
	}
	if err != nil {
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}

	if reg != nil {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		defer mf.Close()
		if err := reg.WriteJSON(mf, man); err != nil {
			return err
		}
	}

	s := res.Stats
	fmt.Fprintf(os.Stderr, "recorded %d events (%d offered, %d dropped) over %d cycles: IPC=%.3f retired=%d squashed=%d -> %s\n",
		tr.Len(), tr.Total(), tr.Dropped(), s.Cycles, s.IPC(), s.Retired, s.Squashed, path)
	return nil
}

func cmdSummary(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: ustrace summary trace.jsonl")
	}
	man, events, err := readTrace(args[0])
	if err != nil {
		return err
	}
	if man.Tool != "" {
		fmt.Printf("recorded by %s (%s, go %s, commit %s)\n", man.Tool, man.Config, man.GoVersion, man.GitCommit)
	}
	fmt.Print(obs.Summarize(events, 64))
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("ustrace convert", flag.ContinueOnError)
	out := fs.String("o", "trace.json", "output Chrome trace file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: ustrace convert trace.jsonl -o trace.json")
	}
	// Allow flags after the positional (convert t.jsonl -o t.json).
	if err := fs.Parse(rest[1:]); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: ustrace convert trace.jsonl -o trace.json")
	}
	man, events, err := readTrace(rest[0])
	if err != nil {
		return err
	}
	w, closeOut, err := openOut(*out)
	if err != nil {
		return err
	}
	defer closeOut()
	if err := obs.WriteChromeTrace(w, man, events, nil); err != nil {
		return err
	}
	return closeOut()
}

// readTrace loads a JSONL trace from a file or stdin ("-").
func readTrace(path string) (obs.Manifest, []obs.Event, error) {
	if path == "-" {
		return obs.ReadJSONL(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return obs.Manifest{}, nil, err
	}
	defer f.Close()
	return obs.ReadJSONL(f)
}

// openOut opens path for writing ("-" = stdout). The returned close
// function is idempotent and never closes stdout.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	closed := false
	return f, func() error {
		if closed {
			return nil
		}
		closed = true
		return f.Close()
	}, nil
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
