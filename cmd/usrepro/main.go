// Command usrepro regenerates the paper's entire evaluation in one run:
// every figure and table (E1-E18), printed as a single report. This is the
// one-command reproduction entry point; see EXPERIMENTS.md for the
// paper-versus-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ultrascalar/internal/exp"
	"ultrascalar/internal/profiling"
	"ultrascalar/internal/vlsi"
)

func main() {
	nMax := flag.Int("nmax", 4096, "largest station count in the sweeps (power of 4)")
	workers := flag.Int("workers", 0, "experiment sweep goroutines (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	stopProfiling, err := profiling.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "usrepro:", err)
		os.Exit(1)
	}
	defer stopProfiling()
	exp.SetSweepWorkers(*workers)
	t := vlsi.Tech035()
	start := time.Now() //uslint:allow detorder -- progress timing only; measured results are cycle counts

	section := func(id, title string) {
		fmt.Printf("\n================ %s — %s ================\n\n", id, title)
	}
	emit := func(rep string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "usrepro:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
	}

	fmt.Println("Reproduction of: A Comparison of Scalable Superscalar Processors")
	fmt.Println("(Kuszmaul, Henry, Loh — SPAA 1999)")

	section("E1", "Figure 3 timing diagram")
	emit(exp.Figure3Report())
	section("E2", "Figure 11 complexity table")
	emit(exp.Figure11Report(32, 32, 64, *nMax, t))
	section("E3", "Figure 12 empirical layouts")
	emit(exp.Figure12Report(t))
	section("E4", "X(n) recurrence cases")
	emit(exp.UltraIRecurrenceReport(32, 32, 64, *nMax, t))
	section("E5", "Ultrascalar II implementations")
	emit(exp.Ultra2ScalingReport(32, 32, 64, 1024, t))
	section("E6", "optimal cluster size")
	emit(exp.ClusterSweepReport(4096, 32, t))
	section("E7", "three-dimensional packaging")
	emit(exp.ThreeDReport(32, []int{256, 1024, 4096}), nil)
	section("E8", "IPC of the three processors")
	emit(exp.IPCReport(16, 4))
	section("E9", "operand locality")
	emit(exp.LocalityReport(64))
	section("E10", "netlist depths")
	emit(exp.CircuitDepthsReport(8, 8, 128), nil)
	section("E11", "end-to-end runtime")
	emit(exp.EndToEndReport(32, 32, []int{64, 256, 1024}, t))
	emit(exp.CrossoverReport(32, 32, []int{64, 256, 1024, 4096}, t))
	section("E12", "shared ALUs")
	emit(exp.SharedALUsReport(128))
	section("E13", "self-timed forwarding")
	emit(exp.SelfTimedReport(32))
	section("E14", "memory renaming")
	emit(exp.MemRenamingReport(16))
	section("E15", "fetch mechanisms")
	emit(exp.FetchModelsReport(64))
	section("E16", "the large-L regime")
	emit(exp.LargeLReport(t))
	section("E17", "distributed cluster caches")
	emit(exp.ClusterCachesReport(16, 4))
	section("E18", "gate-level validation")
	emit(exp.GateLevelReport(4))
	section("E19", "technology scaling")
	emit(exp.TechScalingReport())
	section("E20", "return-address stack ablation")
	emit(exp.ReturnStackReport(32))

	fmt.Printf("\nreproduced all experiments in %.1fs\n", time.Since(start).Seconds())
}
