// Command uslint runs the repository's custom static-analysis suite (see
// internal/lint): hotpathalloc (the engine's per-cycle path must not
// allocate), detorder (experiment sweeps must be deterministic) and
// techonly (vlsi models must take technology constants from vlsi.Tech).
//
// Usage:
//
//	uslint [-list] [packages]
//
// With no packages, ./... is linted. Exit status is 1 when any analyzer
// reports a finding, 2 on a load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"ultrascalar/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-14s %s\n", az.Name, az.Doc)
		}
		return
	}

	patterns := flag.Args()
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uslint:", err)
		os.Exit(2)
	}
	diags := prog.Lint(analyzers...)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "uslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
