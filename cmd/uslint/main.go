// Command uslint runs the repository's custom static-analysis suite (see
// internal/lint): hotpathalloc (the engine's per-cycle path must not
// allocate), detorder (experiment sweeps and artifact emission must be
// deterministic), techonly (vlsi models take technology constants from
// vlsi.Tech), ctxflow (long-running entry points accept and propagate a
// context.Context), atomicwrite (serve/exp artifacts are written through
// internal/atomicio) and bitvecsafe (SoA bitmaps are mutated only
// through the bitvec primitives) — plus the escapecheck verifier, which
// cross-checks the hot path against the Go compiler's own escape
// analysis (-gcflags=-m=2) and a checked-in golden budget.
//
// Usage:
//
//	uslint [-list] [-json] [-escape-budget file] [-write-escape-budget] [packages]
//
// With no packages, ./... is linted. The escape budget defaults to
// internal/lint/escape_budget.txt relative to the working directory and
// is checked whenever that file exists (always, for a checkout of this
// repository); -write-escape-budget regenerates it instead of checking.
//
// Exit status: 0 when the tree is clean, 1 when any analyzer or the
// escape verifier reports a finding, 2 on a load, parse, type-check or
// escape-analysis failure. -json emits the diagnostics as a JSON array
// on stdout (machine-readable for CI tooling) instead of compiler-style
// lines; exit codes are identical in both modes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ultrascalar/internal/lint"
)

const defaultBudget = "internal/lint/escape_budget.txt"

// jsonDiagnostic is the machine-readable form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	budget := flag.String("escape-budget", defaultBudget, "golden escape-budget file for the escapecheck verifier")
	writeBudget := flag.Bool("write-escape-budget", false, "regenerate the escape budget instead of checking it")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-14s %s\n", az.Name, az.Doc)
		}
		fmt.Printf("%-14s %s\n", "escapecheck",
			"verify hot-path heap escapes against the golden budget via go build -gcflags=-m=2")
		return 0
	}

	patterns := flag.Args()
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uslint:", err)
		return 2
	}

	if *writeBudget {
		if err := lint.WriteEscapeBudget(prog, *budget); err != nil {
			fmt.Fprintln(os.Stderr, "uslint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "uslint: wrote %s\n", *budget)
		return 0
	}

	diags := prog.Lint(analyzers...)

	// The escape verifier runs whenever a budget is present. A missing
	// file is only tolerated at the default path (a tree that has not
	// adopted the budget yet); an explicit -escape-budget must exist.
	budgetSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "escape-budget" {
			budgetSet = true
		}
	})
	if _, statErr := os.Stat(*budget); statErr == nil {
		ed, err := lint.EscapeCheck(prog, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uslint:", err)
			return 2
		}
		diags = append(diags, ed...)
	} else if budgetSet {
		fmt.Fprintf(os.Stderr, "uslint: escape budget %s: %v\n", *budget, statErr)
		return 2
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "uslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "uslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
