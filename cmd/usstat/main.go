// Command usstat is the operator's view of a live usserve instance: it
// polls the HTTP surface and renders job progress, queue depth, breaker
// states and per-route latency quantiles as a compact text dashboard.
//
//	usstat                          one status snapshot from the default address
//	usstat -watch 2s                repaint every two seconds until interrupted
//	usstat -job job-000003          follow one job's shard progress (streams NDJSON)
//	usstat -fleet -addr http://host:8470
//	                                render a usfleet coordinator's shard/lease/
//	                                worker dashboard (point -addr at -status)
//	usstat -validate-prom           scrape /metrics?format=prom and check the
//	                                exposition against the obs schema; exit 1 on
//	                                any violation (the CI smoke test's gate)
//
// Long-lived modes (-watch, -job, -fleet with -watch) survive server
// restarts: a lost connection is retried behind the fleet's capped
// exponential backoff with full jitter, with a reconnect notice on
// stderr, instead of exiting mid-campaign.
//
// usstat is read-only: it never submits, cancels or mutates anything,
// so it is safe to point at a production server mid-campaign.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ultrascalar/internal/fleet"
	"ultrascalar/internal/obs"
)

// job mirrors the serve.Job fields usstat renders (decoded loosely so
// the tool keeps working as the server's record grows fields).
type job struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	Trace string `json:"trace"`
	Error string `json:"error,omitempty"`
}

// progress mirrors serve.Progress.
type progress struct {
	ID          string `json:"id"`
	Trace       string `json:"trace"`
	State       string `json:"state"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total"`
}

// metricsDoc is the shape of GET /metrics.
type metricsDoc struct {
	Snapshot obs.Snapshot `json:"snapshot"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8460", "usserve base URL (or usfleet -status URL with -fleet)")
	watch := flag.Duration("watch", 0, "repaint the status every interval (0 = once)")
	jobID := flag.String("job", "", "stream one job's shard progress instead of the dashboard")
	fleetView := flag.Bool("fleet", false, "render a usfleet coordinator dashboard instead of a worker's")
	validateProm := flag.Bool("validate-prom", false, "scrape /metrics?format=prom, validate the exposition, print it and exit")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*addr, "/")

	switch {
	case *validateProm:
		if err := runValidateProm(client, base); err != nil {
			fatal(err)
		}
	case *jobID != "":
		if err := followJob(client, base, *jobID, newReconnector()); err != nil {
			fatal(err)
		}
	case *fleetView:
		watchLoop(*watch, func() error { return printFleet(client, base) })
	default:
		watchLoop(*watch, func() error { return printStatus(client, base) })
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usstat:", err)
	os.Exit(1)
}

// reconnector drives usstat's reconnect loops with the fleet's retry
// policy: capped exponential backoff with full jitter. The jitter
// source is seeded from the PID so concurrently-watching operators
// don't redial a restarted server in lockstep; determinism of the
// observed system is untouched — this only schedules reads.
type reconnector struct {
	policy  fleet.Policy
	rnd     func() float64
	attempt int
}

func newReconnector() *reconnector {
	src := rand.New(rand.NewSource(int64(os.Getpid())))
	return &reconnector{policy: fleet.DefaultPolicy, rnd: src.Float64}
}

// pause sleeps out the next backoff step, printing the notice that
// makes the wait visible to the operator.
func (r *reconnector) pause(err error) {
	wait := r.policy.Backoff(r.attempt, r.rnd)
	r.attempt++
	fmt.Fprintf(os.Stderr, "usstat: connection lost (%v); retrying in %s\n",
		err, wait.Round(time.Millisecond))
	time.Sleep(wait)
}

// recovered resets the backoff after a successful exchange, announcing
// the reconnect if one happened.
func (r *reconnector) recovered() {
	if r.attempt > 0 {
		fmt.Fprintln(os.Stderr, "usstat: reconnected")
		r.attempt = 0
	}
}

// watchLoop renders frames at the watch interval. One-shot mode
// (interval <= 0) fails hard; watch mode reconnects with backoff so a
// worker restart mid-campaign doesn't kill the operator's dashboard.
func watchLoop(interval time.Duration, frame func() error) {
	r := newReconnector()
	for {
		if err := frame(); err != nil {
			if interval <= 0 {
				fatal(err)
			}
			r.pause(err)
			continue
		}
		r.recovered()
		if interval <= 0 {
			return
		}
		time.Sleep(interval)
		fmt.Println()
	}
}

// get fetches path and decodes the JSON body into v, translating the
// server's error envelope into a readable failure.
func get(client *http.Client, base, path string, v any) error {
	resp, err := client.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("GET %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error struct {
				Kind    string `json:"kind"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error.Kind != "" {
			return fmt.Errorf("GET %s: %s (%s)", path, e.Error.Message, e.Error.Kind)
		}
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

// runValidateProm scrapes the Prometheus exposition, validates it
// against the obs schema and echoes it to stdout — CI's scrape gate.
func runValidateProm(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics?format=prom")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics?format=prom: HTTP %d", resp.StatusCode)
	}
	if len(body) == 0 {
		fmt.Fprintln(os.Stderr, "usstat: exposition empty (server has no metrics registry)")
		return nil
	}
	if err := obs.ValidatePrometheus(body); err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	os.Stdout.Write(body)
	fmt.Fprintln(os.Stderr, "usstat: exposition valid")
	return nil
}

// terminalState mirrors the serve job lifecycle's final states.
func terminalState(s string) bool {
	switch s {
	case "done", "failed", "canceled", "interrupted":
		return true
	}
	return false
}

// followJob streams one job's NDJSON progress, one line per change,
// until the job reaches a terminal state. A dropped stream (worker
// restart, network blip) reconnects with backoff and resumes; the
// first frame of a resumed stream repeats current state, so identical
// consecutive frames are deduplicated. A definitive HTTP rejection
// (404 and friends) stays fatal — retrying can't conjure the job.
func followJob(client *http.Client, base, id string, r *reconnector) error {
	// Streaming outlives any sane per-request timeout.
	streamClient := &http.Client{}
	var last progress
	var printed bool
	for {
		resp, err := streamClient.Get(base + "/jobs/" + id + "/progress?stream=1")
		if err != nil {
			r.pause(err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("GET /jobs/%s/progress: HTTP %d", id, resp.StatusCode)
		}
		r.recovered()
		sc := obs.NewLineScanner(resp.Body)
		for sc.Scan() {
			var p progress
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				resp.Body.Close()
				return fmt.Errorf("bad progress line %q: %w", sc.Text(), err)
			}
			if printed && p == last {
				continue
			}
			last, printed = p, true
			bar := renderBar(p.ShardsDone, p.ShardsTotal, 30)
			fmt.Printf("%s  %s  %s %d/%d shards  trace=%s\n",
				p.ID, p.State, bar, p.ShardsDone, p.ShardsTotal, p.Trace)
		}
		serr := sc.Err()
		resp.Body.Close()
		if printed && terminalState(last.State) {
			return nil
		}
		if serr == nil {
			serr = fmt.Errorf("stream ended before job %s finished", id)
		}
		r.pause(serr)
	}
}

// printFleet renders one usfleet coordinator frame from its /status
// endpoint: overall shard progress, failure-handling tallies, and the
// per-worker lease/breaker table.
func printFleet(client *http.Client, base string) error {
	var st fleet.Status
	if err := get(client, base, "/status", &st); err != nil {
		return err
	}
	bar := renderBar(st.ShardsDone, st.ShardsTotal, 30)
	fmt.Printf("fleet: %-8s %s %d/%d shards  resumed=%d\n",
		st.State, bar, st.ShardsDone, st.ShardsTotal, st.Resumed)
	fmt.Printf("recovery: retries=%d lease-expired=%d hedges=%d hedge-wins=%d\n",
		st.Retries, st.LeaseExpired, st.Hedges, st.HedgeWins)
	fmt.Printf("retry budget: dispatches=%d retries=%d slow-lane=%d\n",
		st.Dispatches, st.Retries, st.BudgetExhausted)
	if st.Err != "" {
		fmt.Printf("error: %s\n", st.Err)
	}
	fmt.Printf("  %-40s %-10s %7s %6s %8s\n", "worker", "breaker", "leases", "done", "retries")
	for _, w := range st.Workers {
		fmt.Printf("  %-40s %-10s %7d %6d %8d\n",
			w.URL, w.Breaker, w.ActiveLeases, w.Done, w.Retries)
	}
	return nil
}

// renderBar draws a fixed-width progress bar.
func renderBar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat("-", width) + "]"
	}
	fill := done * width / total
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat("-", width-fill) + "]"
}

// printStatus renders one dashboard frame: jobs by state, queue depth,
// non-closed breakers and per-route latency quantiles.
func printStatus(client *http.Client, base string) error {
	var jobs []job
	if err := get(client, base, "/jobs", &jobs); err != nil {
		return err
	}
	var md metricsDoc
	if err := get(client, base, "/metrics", &md); err != nil {
		return err
	}
	snap := md.Snapshot

	byState := map[string]int{}
	running := 0
	for _, j := range jobs {
		byState[j.State]++
		if j.State == "running" {
			running++
		}
	}
	states := make([]string, 0, len(byState))
	for s := range byState {
		states = append(states, s) //uslint:allow detorder -- sorted before rendering
	}
	sort.Strings(states)
	fmt.Printf("jobs: %d total", len(jobs))
	for _, s := range states {
		fmt.Printf("  %s=%d", s, byState[s])
	}
	fmt.Println()
	fmt.Printf("queue depth: %.0f   http in-flight: %.0f   shed: %d\n",
		snap.Gauges["serve.queue_depth"], snap.Gauges["serve.http_inflight"],
		snap.Counters["serve.shed"])

	// Adaptive admission: controller level, queue-delay quantiles, and
	// the per-class shed tallies — the overload story in one line each.
	if hv, ok := snap.Histograms["serve.queue_delay_ms"]; ok && hv.Count > 0 {
		fmt.Printf("admission: level=%.0f   queue delay (ms): n=%d P50=%.2f P90=%.2f P99=%.2f\n",
			snap.Gauges["serve.admit_level"], hv.Count,
			hv.Quantile(0.50), hv.Quantile(0.90), hv.Quantile(0.99))
	}
	var shedClasses []string
	for name := range snap.Counters {
		if baseName, _ := obs.SplitLabeledName(name); baseName == "serve.shed_class" {
			shedClasses = append(shedClasses, name) //uslint:allow detorder -- sorted before rendering
		}
	}
	sort.Strings(shedClasses)
	if len(shedClasses) > 0 {
		fmt.Print("sheds by class:")
		for _, name := range shedClasses {
			_, labels := obs.SplitLabeledName(name)
			for _, l := range labels {
				if l.Key == "class" {
					fmt.Printf("  %s=%d", l.Value, snap.Counters[name])
				}
			}
		}
		fmt.Println()
	}

	// Result cache, when the server runs one.
	if hits, ok := snap.Counters["serve.cache.hits"]; ok {
		fmt.Printf("cache: hits=%d misses=%d stores=%d quarantines=%d\n",
			hits, snap.Counters["serve.cache.misses"],
			snap.Counters["serve.cache.stores"], snap.Counters["serve.cache.quarantines"])
	}

	// Breakers: every serve.breaker_state gauge that is not closed (0).
	type breaker struct {
		class string
		state string
	}
	var breakers []breaker
	for name, v := range snap.Gauges {
		baseName, labels := obs.SplitLabeledName(name)
		if baseName != "serve.breaker_state" || v == 0 {
			continue
		}
		st := "half-open"
		if v == 2 {
			st = "open"
		}
		for _, l := range labels {
			if l.Key == "class" {
				breakers = append(breakers, breaker{class: l.Value, state: st}) //uslint:allow detorder -- sorted before rendering
			}
		}
	}
	sort.Slice(breakers, func(i, j int) bool { return breakers[i].class < breakers[j].class })
	if len(breakers) == 0 {
		fmt.Println("breakers: all closed")
	} else {
		fmt.Println("breakers:")
		for _, b := range breakers {
			fmt.Printf("  %-40s %s\n", b.class, b.state)
		}
	}

	// Route latency quantiles from the serve.http_ms{route=...} family.
	type route struct {
		name string
		hv   obs.HistogramValue
	}
	var routes []route
	for name, hv := range snap.Histograms {
		baseName, labels := obs.SplitLabeledName(name)
		if baseName != "serve.http_ms" || hv.Count == 0 {
			continue
		}
		for _, l := range labels {
			if l.Key == "route" {
				routes = append(routes, route{name: l.Value, hv: hv}) //uslint:allow detorder -- sorted before rendering
			}
		}
	}
	sort.Slice(routes, func(i, j int) bool { return routes[i].name < routes[j].name })
	if len(routes) > 0 {
		fmt.Println("route latency (ms):")
		fmt.Printf("  %-28s %8s %8s %8s %8s\n", "route", "n", "P50", "P90", "P99")
		for _, r := range routes {
			fmt.Printf("  %-28s %8d %8.2f %8.2f %8.2f\n", r.name, r.hv.Count,
				r.hv.Quantile(0.50), r.hv.Quantile(0.90), r.hv.Quantile(0.99))
		}
	}

	// Error taxonomy, if any rejections have been counted.
	var errKinds []string
	for name := range snap.Counters {
		if baseName, _ := obs.SplitLabeledName(name); baseName == "serve.errors" {
			errKinds = append(errKinds, name) //uslint:allow detorder -- sorted before rendering
		}
	}
	sort.Strings(errKinds)
	for _, name := range errKinds {
		_, labels := obs.SplitLabeledName(name)
		for _, l := range labels {
			if l.Key == "kind" {
				fmt.Printf("errors[%s]: %d\n", l.Value, snap.Counters[name])
			}
		}
	}
	return nil
}
