// Command uscomplexity regenerates the paper's complexity results: the
// Figure 11 comparison table, the Section 3 X(n) recurrence cases, the
// Section 5 Ultrascalar II implementation comparison, the Section 6
// cluster-size optimum, and the Section 7 three-dimensional bounds.
//
// With -check it instead runs the netlist design-rule suite (see
// internal/circuit.Check): every generated CSPP, Ultrascalar II grid and
// hybrid OR-plane netlist at n ∈ {4, 16, 64} is checked for combinational
// cycles, floating ports, fan-out bounds, stranded logic, and an exact
// gate-count match against the construction recurrences. Exit status is 1
// if any netlist violates a rule.
package main

import (
	"flag"
	"fmt"
	"os"

	"ultrascalar/internal/circuit"
	"ultrascalar/internal/exp"
	"ultrascalar/internal/profiling"
	"ultrascalar/internal/vlsi"
)

func main() {
	l := flag.Int("L", 32, "logical registers")
	w := flag.Int("W", 32, "register width (bits)")
	nMin := flag.Int("nmin", 64, "smallest station count (power of 4)")
	nMax := flag.Int("nmax", 4096, "largest station count (power of 4)")
	verilog := flag.String("verilog", "", "write the 8-station register-CSPP netlist as Verilog to this file and exit")
	check := flag.Bool("check", false, "run the netlist design-rule suite and exit")
	flag.Parse()
	stopProfiling, err := profiling.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "uscomplexity:", err)
		os.Exit(1)
	}
	defer stopProfiling()
	t := vlsi.Tech035()

	if *check {
		failed := 0
		for _, r := range circuit.DRCSuite([]int{4, 16, 64}) {
			status := "ok"
			if !r.OK() {
				status = "FAIL"
				failed++
			}
			fmt.Printf("%-4s %-18s n=%-3d gates=%-7d maxfanout=%-4d dead=%d\n",
				status, r.Name, r.N, r.Result.Gates, r.Result.MaxFanout, r.Result.DeadGates)
			for _, v := range r.Result.Violations {
				fmt.Printf("     %s\n", v)
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "uscomplexity: %d netlist(s) violate design rules\n", failed)
			os.Exit(1)
		}
		return
	}

	if *verilog != "" {
		c := circuit.RegisterCSPP(8, *w+1, true)
		if err := os.WriteFile(*verilog, []byte(c.Verilog("cspp_register_8")), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "uscomplexity:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d gates, depth %d)\n", *verilog, c.NumGates(), c.Depth())
		return
	}

	emit := func(rep string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "uscomplexity:", err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}

	emit(exp.Figure11Report(*l, *w, *nMin, *nMax, t))
	emit(exp.UltraIRecurrenceReport(*l, *w, *nMin, *nMax, t))
	emit(exp.Ultra2ScalingReport(*l, *w, 64, 1024, t))
	emit(exp.ClusterSweepReport(4096, *w, t))
	emit(exp.CircuitDepthsReport(8, 8, 128), nil)
	emit(exp.ThreeDReport(*l, []int{256, 1024, 4096, 16384}), nil)
}
