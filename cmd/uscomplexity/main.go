// Command uscomplexity regenerates the paper's complexity results: the
// Figure 11 comparison table, the Section 3 X(n) recurrence cases, the
// Section 5 Ultrascalar II implementation comparison, the Section 6
// cluster-size optimum, and the Section 7 three-dimensional bounds.
package main

import (
	"flag"
	"fmt"
	"os"

	"ultrascalar/internal/circuit"
	"ultrascalar/internal/exp"
	"ultrascalar/internal/vlsi"
)

func main() {
	l := flag.Int("L", 32, "logical registers")
	w := flag.Int("W", 32, "register width (bits)")
	nMin := flag.Int("nmin", 64, "smallest station count (power of 4)")
	nMax := flag.Int("nmax", 4096, "largest station count (power of 4)")
	verilog := flag.String("verilog", "", "write the 8-station register-CSPP netlist as Verilog to this file and exit")
	flag.Parse()
	t := vlsi.Tech035()

	if *verilog != "" {
		c := circuit.RegisterCSPP(8, *w+1, true)
		if err := os.WriteFile(*verilog, []byte(c.Verilog("cspp_register_8")), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "uscomplexity:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d gates, depth %d)\n", *verilog, c.NumGates(), c.Depth())
		return
	}

	emit := func(rep string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "uscomplexity:", err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}

	emit(exp.Figure11Report(*l, *w, *nMin, *nMax, t))
	emit(exp.UltraIRecurrenceReport(*l, *w, *nMin, *nMax, t))
	emit(exp.Ultra2ScalingReport(*l, *w, 64, 1024, t))
	emit(exp.ClusterSweepReport(4096, *w, t))
	emit(exp.CircuitDepthsReport(8, 8, 128), nil)
	emit(exp.ThreeDReport(*l, []int{256, 1024, 4096, 16384}), nil)
}
