// Command usload drives a live usserve with an open-loop request
// stream and accounts for every outcome. Open loop means arrivals do
// not wait for completions — the generator keeps offering at the
// configured rate even while the service backs up, which is the only
// load shape that actually exercises admission control: a closed-loop
// client self-throttles the moment the service slows down and never
// pushes it past saturation (the coordinated-omission trap).
//
// The request mix over the three job classes (sim, sweep, campaign) is
// deterministic: a seeded splitmix64 stream picks each request's class
// and configuration, so two invocations with the same flags offer
// byte-identical request sequences. That determinism is what makes the
// chaos gate's byte-identity check meaningful — a quiet run and an
// overloaded run can be compared response by response, keyed by
// request configuration.
//
// Outputs:
//   - per-request JSONL (-out): class, config key, outcome, latency,
//     cache flag, and the SHA-256 of the report text;
//   - a summary JSON (-summary): per-class latency quantiles, goodput,
//     shed/timeout accounting, peak in-flight, server metric deltas;
//   - its own metrics registry, emitted as Prometheus text (-prom) and
//     validated with the same parser the CI gates use.
//
// Gates (each failing the process): -min-peak (the run must actually
// reach N concurrent requests), -queue-delay-p99-max (server-side
// queue delay quantile, scraped from /metrics), -verify-server (the
// server's admitted/shed counter deltas must equal the client's
// accepted/shed tallies — exact conservation, valid when usload is the
// only client), and -baseline (non-shed responses must be
// byte-identical, by report SHA-256, to a previous run's JSONL).
package main

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/fleet"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/serve"
)

// splitmix64 is the deterministic stream behind the request mix: tiny,
// seedable, and identical across runs and platforms.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int {
	return int(r.next() % uint64(n))
}

// mixEntry is one job class's weight in the request mix.
type mixEntry struct {
	class  string
	weight int
}

func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not class=weight", part)
		}
		switch name {
		case "sim", "sweep", "campaign":
		default:
			return nil, fmt.Errorf("unknown job class %q (want sim, sweep or campaign)", name)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mix weight %q is not a non-negative integer", w)
		}
		mix = append(mix, mixEntry{class: name, weight: n})
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("mix has zero total weight")
	}
	return mix, nil
}

// pickClass draws one class from the weighted mix.
func pickClass(mix []mixEntry, rng *splitmix64) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.class
		}
		n -= m.weight
	}
	return mix[len(mix)-1].class
}

// The deterministic parameter pools each class draws from.
var (
	loadArchs     = []string{"ultra1", "ultra2", "hybrid"}
	loadWorkloads = []string{"fib", "vecsum", "gcd"}
	loadSites     = []string{"result-bit", "operand-bit", "merge-bit", "ready-stuck1", "ready-stuck0", "drop-forward", "dup-forward"}
)

// planned is one pre-generated request: the wire request plus the
// configuration key baseline comparison joins on.
type planned struct {
	class string
	key   string
	req   serve.JobRequest
}

// buildPlan generates the full deterministic request sequence.
func buildPlan(total int, mix []mixEntry, seed int64, window, trials int, jobTimeout time.Duration) []planned {
	rng := &splitmix64{s: uint64(seed)}
	plan := make([]planned, total)
	for i := range plan {
		class := pickClass(mix, rng)
		req := serve.JobRequest{Kind: class, Window: window, TimeoutMs: jobTimeout.Milliseconds()}
		var key string
		switch class {
		case "sim":
			req.Arch = loadArchs[rng.intn(len(loadArchs))]
			req.Workload = loadWorkloads[rng.intn(len(loadWorkloads))]
			key = fmt.Sprintf("sim/%s/n%d/%s", req.Arch, window, req.Workload)
		case "sweep":
			key = fmt.Sprintf("sweep/n%d", window)
		case "campaign":
			req.Seed = seed
			req.Trials = trials
			req.Archs = []string{loadArchs[rng.intn(len(loadArchs))]}
			req.Sites = []string{loadSites[rng.intn(len(loadSites))]}
			req.Workloads = []string{loadWorkloads[rng.intn(len(loadWorkloads))]}
			key = fmt.Sprintf("campaign/%s/n%d/%s/%s/s%d/t%d",
				req.Archs[0], window, req.Workloads[0], req.Sites[0], seed, trials)
		}
		plan[i] = planned{class: class, key: key, req: req}
	}
	return plan
}

// record is one request's JSONL line.
type record struct {
	Index      int     `json:"i"`
	Class      string  `json:"class"`
	Key        string  `json:"key"`
	Outcome    string  `json:"outcome"`
	LatencyMs  float64 `json:"latency_ms"`
	JobID      string  `json:"job_id,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	ReportSHA  string  `json:"report_sha256,omitempty"`
	ErrorKind  string  `json:"error_kind,omitempty"`
	RetryAfter float64 `json:"retry_after_s,omitempty"`
}

// Outcome taxonomy: every offered request lands in exactly one bucket.
const (
	outDone     = "done"     // job finished, report in hand
	outShed     = "shed"     // 503 overload rejection (the admission controller working)
	outRejected = "rejected" // other backpressure: draining, breaker-open
	outFailed   = "failed"   // job accepted but finished failed/canceled/interrupted
	outTimeout  = "timeout"  // accepted but no terminal state within -wait
	outError    = "error"    // transport or protocol error
)

var latencyMsBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// classSummary is one job class's slice of the summary document.
type classSummary struct {
	Offered int     `json:"offered"`
	Done    int     `json:"done"`
	Shed    int     `json:"shed"`
	Other   int     `json:"other"`
	P50Ms   float64 `json:"p50_ms"`
	P90Ms   float64 `json:"p90_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// serverDelta is the server-side counter movement over the run.
type serverDelta struct {
	Submitted   int64 `json:"submitted"`
	Shed        int64 `json:"shed"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Quarantines int64 `json:"cache_quarantines"`
}

type summaryDoc struct {
	Target             string                  `json:"target"`
	Offered            int                     `json:"offered"`
	Accepted           int                     `json:"accepted"`
	Done               int                     `json:"done"`
	Shed               int                     `json:"shed"`
	Rejected           int                     `json:"rejected"`
	Failed             int                     `json:"failed"`
	TimedOut           int                     `json:"timed_out"`
	Errors             int                     `json:"errors"`
	CachedResponses    int                     `json:"cached_responses"`
	ElapsedS           float64                 `json:"elapsed_s"`
	GoodputPerS        float64                 `json:"goodput_per_s"`
	PeakInFlight       int64                   `json:"peak_in_flight"`
	PerClass           map[string]classSummary `json:"per_class"`
	ServerDelta        *serverDelta            `json:"server_delta,omitempty"`
	QueueDelayP99Ms    float64                 `json:"queue_delay_p99_ms"`
	BaselineCompared   int                     `json:"baseline_compared,omitempty"`
	BaselineMismatches int                     `json:"baseline_mismatches,omitempty"`
}

// metricsSnapshot scrapes the target's /metrics JSON document.
func metricsSnapshot(ctx context.Context, hc *http.Client, target string) (obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics", nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return obs.Snapshot{}, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var doc struct {
		Snapshot obs.Snapshot `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return obs.Snapshot{}, fmt.Errorf("decoding /metrics: %w", err)
	}
	return doc.Snapshot, nil
}

// validateServerProm scrapes the Prometheus exposition and runs it
// through the obs validator — the serving stack's contract that its
// exposition stays machine-parseable under load.
func validateServerProm(ctx context.Context, hc *http.Client, target string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics?format=prom", nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(resp)); err != nil {
		return err
	}
	return obs.ValidatePrometheus([]byte(buf.String()))
}

func readAll(resp *http.Response) string {
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// loadBaseline reads a previous run's JSONL and returns the key →
// report-SHA map of its completed requests. A key mapping to two
// different SHAs inside the baseline itself is a determinism failure.
func loadBaseline(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := map[string]string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("baseline line %q: %w", line, err)
		}
		if r.Outcome != outDone || r.ReportSHA == "" {
			continue
		}
		if prev, ok := base[r.Key]; ok && prev != r.ReportSHA {
			return nil, fmt.Errorf("baseline is internally inconsistent: key %s has SHAs %s and %s", r.Key, prev, r.ReportSHA)
		}
		base[r.Key] = r.ReportSHA
	}
	return base, sc.Err()
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8460", "usserve base URL")
	requests := flag.Int("requests", 0, "burst mode: offer this many requests at once (ignored when -rate > 0)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/second")
	duration := flag.Duration("duration", 10*time.Second, "open-loop offered-load duration (with -rate)")
	mixFlag := flag.String("mix", "sim=12,sweep=3,campaign=1", "request mix as class=weight, comma-separated")
	seed := flag.Int64("seed", 1, "mix/config stream seed; same seed = byte-identical request plan")
	window := flag.Int("window", 6, "station count n for generated jobs")
	trials := flag.Int("trials", 1, "injections per campaign cell for generated campaign jobs")
	jobTimeout := flag.Duration("job-timeout", 30*time.Second, "server-side deadline attached to each job")
	wait := flag.Duration("wait", 60*time.Second, "client-side wait for one accepted job to finish")
	poll := flag.Duration("poll", 25*time.Millisecond, "job status poll interval")
	outPath := flag.String("out", "", "per-request JSONL output (empty = off)")
	summaryPath := flag.String("summary", "", "summary JSON output (atomic; empty = stdout)")
	promPath := flag.String("prom", "", "write usload's own metrics as Prometheus text here (validated; empty = off)")
	baselinePath := flag.String("baseline", "", "previous run's JSONL; completed responses must match its report SHAs key-for-key")
	minPeak := flag.Int("min-peak", 0, "gate: fail unless this many requests were in flight simultaneously")
	queueP99Max := flag.Duration("queue-delay-p99-max", 0, "gate: fail if the server's queue-delay P99 exceeds this (0 = off)")
	verifyServer := flag.Bool("verify-server", false, "gate: server submitted/shed counter deltas must equal client accepted/shed tallies (requires exclusive access)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "usload: "+format+"\n", args...)
		os.Exit(1)
	}

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fail("-mix: %v", err)
	}
	total := *requests
	if *rate > 0 {
		total = int(math.Ceil(*rate * duration.Seconds()))
	}
	if total <= 0 {
		fail("nothing to offer: set -requests or -rate with -duration")
	}
	var baseline map[string]string
	if *baselinePath != "" {
		if baseline, err = loadBaseline(*baselinePath); err != nil {
			fail("loading baseline: %v", err)
		}
	}

	plan := buildPlan(total, mix, *seed, *window, *trials, *jobTimeout)

	cl := fleet.NewClient(*target)
	cl.HTTP = &http.Client{
		Timeout: *wait,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}

	reg := obs.NewRegistry()
	var (
		mu       sync.Mutex
		out      *bufio.Writer
		outFile  *os.File
		inflight atomic.Int64
		peak     atomic.Int64
		records  = make([]record, total)
	)
	if *outPath != "" {
		outFile, err = os.Create(*outPath)
		if err != nil {
			fail("opening -out: %v", err)
		}
		out = bufio.NewWriterSize(outFile, 256<<10)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	preSnap, preErr := metricsSnapshot(ctx, cl.HTTP, *target)
	if *verifyServer && preErr != nil {
		fail("-verify-server needs a scrapeable target: %v", preErr)
	}

	runOne := func(i int) record {
		p := plan[i]
		cur := inflight.Add(1)
		for {
			prev := peak.Load()
			if cur <= prev || peak.CompareAndSwap(prev, cur) {
				break
			}
		}
		defer inflight.Add(-1)

		rec := record{Index: i, Class: p.class, Key: p.key}
		start := time.Now() //uslint:allow detorder -- latency measurement is this tool's purpose
		defer func() {
			rec.LatencyMs = float64(time.Since(start).Nanoseconds()) / 1e6 //uslint:allow detorder -- latency measurement is this tool's purpose
		}()

		job, err := cl.Submit(ctx, p.req)
		if err != nil {
			herr, ok := err.(*fleet.HTTPError)
			switch {
			case ok && herr.Kind == serve.KindShed:
				rec.Outcome, rec.ErrorKind = outShed, herr.Kind
				rec.RetryAfter = herr.RetryAfter.Seconds()
			case ok && herr.Backpressure():
				rec.Outcome, rec.ErrorKind = outRejected, herr.Kind
				rec.RetryAfter = herr.RetryAfter.Seconds()
			case ok:
				rec.Outcome, rec.ErrorKind = outError, herr.Kind
			default:
				rec.Outcome, rec.ErrorKind = outError, "transport"
			}
			return rec
		}
		rec.JobID = job.ID
		deadline := start.Add(*wait)
		for {
			if time.Now().After(deadline) { //uslint:allow detorder -- client-side wait bound, not report input
				rec.Outcome = outTimeout
				cctx, ccancel := context.WithTimeout(context.Background(), 5*time.Second)
				cl.Cancel(cctx, job.ID)
				ccancel()
				return rec
			}
			time.Sleep(*poll)
			cur, err := cl.Job(ctx, job.ID)
			if err != nil {
				continue // transient poll failure; the deadline bounds us
			}
			switch cur.State {
			case serve.StateDone:
				sum := sha256.Sum256([]byte(cur.Report))
				rec.Outcome = outDone
				rec.Cached = cur.Cached
				rec.ReportSHA = hex.EncodeToString(sum[:])
				return rec
			case serve.StateFailed, serve.StateCanceled, serve.StateInterrupted:
				rec.Outcome = outFailed
				rec.ErrorKind = cur.ErrorKind
				return rec
			}
		}
	}

	finish := func(i int, rec record) {
		reg.Counter(obs.LabeledName("usload.requests",
			obs.Label{Key: "class", Value: rec.Class},
			obs.Label{Key: "outcome", Value: rec.Outcome})).Inc()
		reg.Histogram(obs.LabeledName("usload.latency_ms",
			obs.Label{Key: "class", Value: rec.Class}), latencyMsBounds).Observe(rec.LatencyMs)
		mu.Lock()
		records[i] = rec
		if out != nil {
			line, _ := json.Marshal(rec)
			out.Write(line)
			out.WriteByte('\n')
		}
		mu.Unlock()
	}

	mode := fmt.Sprintf("burst of %d", total)
	if *rate > 0 {
		mode = fmt.Sprintf("%.0f req/s for %s (%d requests)", *rate, *duration, total)
	}
	fmt.Fprintf(os.Stderr, "usload: offering %s against %s (mix %s, seed %d)\n", mode, *target, *mixFlag, *seed)

	wallStart := time.Now() //uslint:allow detorder -- run-length measurement, not report input
	var wg sync.WaitGroup
	if *rate > 0 {
		interval := time.Duration(float64(time.Second) / *rate)
		ticker := time.NewTicker(interval)
		for i := 0; i < total; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				finish(i, runOne(i))
			}(i)
			if i != total-1 {
				<-ticker.C
			}
		}
		ticker.Stop()
	} else {
		for i := 0; i < total; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				finish(i, runOne(i))
			}(i)
		}
	}
	wg.Wait()
	elapsed := time.Since(wallStart) //uslint:allow detorder -- run-length measurement, not report input

	if out != nil {
		if err := out.Flush(); err != nil {
			fail("flushing -out: %v", err)
		}
		if err := outFile.Close(); err != nil {
			fail("closing -out: %v", err)
		}
	}

	// Tally.
	doc := summaryDoc{
		Target: *target, Offered: total,
		ElapsedS: elapsed.Seconds(), PeakInFlight: peak.Load(),
		PerClass: map[string]classSummary{},
	}
	baselineFailures := []string{}
	for _, rec := range records {
		cs := doc.PerClass[rec.Class]
		cs.Offered++
		switch rec.Outcome {
		case outDone:
			doc.Done++
			cs.Done++
			if rec.Cached {
				doc.CachedResponses++
			}
			if baseline != nil {
				if want, ok := baseline[rec.Key]; ok {
					doc.BaselineCompared++
					if want != rec.ReportSHA {
						doc.BaselineMismatches++
						if len(baselineFailures) < 5 {
							baselineFailures = append(baselineFailures,
								fmt.Sprintf("%s: got %.12s want %.12s", rec.Key, rec.ReportSHA, want))
						}
					}
				}
			}
		case outShed:
			doc.Shed++
			cs.Shed++
		case outRejected:
			doc.Rejected++
			cs.Other++
		case outFailed:
			doc.Failed++
			cs.Other++
		case outTimeout:
			doc.TimedOut++
			cs.Other++
		default:
			doc.Errors++
			cs.Other++
		}
		doc.PerClass[rec.Class] = cs
	}
	doc.Accepted = doc.Done + doc.Failed + doc.TimedOut
	if elapsed > 0 {
		doc.GoodputPerS = float64(doc.Done) / elapsed.Seconds()
	}
	snap := reg.Peek(0)
	for name, hv := range snap.Histograms {
		base, labels := obs.SplitLabeledName(name)
		if base != "usload.latency_ms" || len(labels) != 1 {
			continue
		}
		cs := doc.PerClass[labels[0].Value]
		cs.P50Ms, cs.P90Ms, cs.P99Ms = hv.Quantile(0.5), hv.Quantile(0.9), hv.Quantile(0.99)
		doc.PerClass[labels[0].Value] = cs
	}

	// Server-side scrape: counter deltas, queue-delay quantile, and a
	// validated Prometheus exposition.
	postSnap, postErr := metricsSnapshot(ctx, cl.HTTP, *target)
	if postErr == nil && preErr == nil {
		d := &serverDelta{
			Submitted:   postSnap.Counters["serve.jobs_submitted"] - preSnap.Counters["serve.jobs_submitted"],
			Shed:        postSnap.Counters["serve.shed"] - preSnap.Counters["serve.shed"],
			Done:        postSnap.Counters["serve.jobs_done"] - preSnap.Counters["serve.jobs_done"],
			Failed:      postSnap.Counters["serve.jobs_failed"] - preSnap.Counters["serve.jobs_failed"],
			CacheHits:   postSnap.Counters["serve.cache.hits"] - preSnap.Counters["serve.cache.hits"],
			CacheMisses: postSnap.Counters["serve.cache.misses"] - preSnap.Counters["serve.cache.misses"],
			Quarantines: postSnap.Counters["serve.cache.quarantines"] - preSnap.Counters["serve.cache.quarantines"],
		}
		doc.ServerDelta = d
		if hv, ok := postSnap.Histograms["serve.queue_delay_ms"]; ok {
			doc.QueueDelayP99Ms = hv.Quantile(0.99)
		}
	} else if *verifyServer {
		fail("-verify-server: post-run scrape failed: %v", postErr)
	}
	if err := validateServerProm(ctx, cl.HTTP, *target); err != nil {
		fail("server Prometheus exposition invalid: %v", err)
	}

	// usload's own exposition must validate too.
	var promBuf strings.Builder
	if err := obs.WritePrometheus(&promBuf, snap); err != nil {
		fail("rendering metrics: %v", err)
	}
	if err := obs.ValidatePrometheus([]byte(promBuf.String())); err != nil {
		fail("own Prometheus exposition invalid: %v", err)
	}
	if *promPath != "" {
		if err := atomicio.WriteFile(*promPath, []byte(promBuf.String()), 0o644); err != nil {
			fail("%v", err)
		}
	}

	summary, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail("encoding summary: %v", err)
	}
	summary = append(summary, '\n')
	if *summaryPath != "" {
		if err := atomicio.WriteFile(*summaryPath, summary, 0o644); err != nil {
			fail("%v", err)
		}
	} else {
		os.Stdout.Write(summary)
	}

	classes := make([]string, 0, len(doc.PerClass))
	for c := range doc.PerClass {
		classes = append(classes, c) //uslint:allow detorder -- sorted before rendering
	}
	sort.Strings(classes)
	for _, c := range classes {
		cs := doc.PerClass[c]
		fmt.Fprintf(os.Stderr, "usload: %-8s offered=%d done=%d shed=%d other=%d p50=%.1fms p99=%.1fms\n",
			c, cs.Offered, cs.Done, cs.Shed, cs.Other, cs.P50Ms, cs.P99Ms)
	}
	fmt.Fprintf(os.Stderr, "usload: %d offered, %d done (%d cached), %d shed, %d rejected, %d failed, %d timed out, %d errors; peak in-flight %d; goodput %.1f/s\n",
		doc.Offered, doc.Done, doc.CachedResponses, doc.Shed, doc.Rejected, doc.Failed, doc.TimedOut, doc.Errors, doc.PeakInFlight, doc.GoodputPerS)

	// Gates.
	exitCode := 0
	gate := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "usload: GATE FAILED: "+format+"\n", args...)
		exitCode = 1
	}
	if *minPeak > 0 && doc.PeakInFlight < int64(*minPeak) {
		gate("peak in-flight %d < required %d — the run never reached the intended concurrency", doc.PeakInFlight, *minPeak)
	}
	if *queueP99Max > 0 && doc.QueueDelayP99Ms > float64(queueP99Max.Milliseconds()) {
		gate("server queue-delay P99 %.1fms > bound %v", doc.QueueDelayP99Ms, *queueP99Max)
	}
	if *verifyServer {
		d := doc.ServerDelta
		if d == nil {
			gate("-verify-server: no server delta available")
		} else {
			if d.Submitted != int64(doc.Accepted) {
				gate("conservation: server admitted %d, client saw %d accepted", d.Submitted, doc.Accepted)
			}
			if d.Shed != int64(doc.Shed) {
				gate("conservation: server shed %d, client saw %d sheds", d.Shed, doc.Shed)
			}
		}
	}
	if doc.BaselineMismatches > 0 {
		gate("%d/%d responses diverge from baseline:\n  %s",
			doc.BaselineMismatches, doc.BaselineCompared, strings.Join(baselineFailures, "\n  "))
	}
	if baseline != nil && doc.BaselineMismatches == 0 {
		fmt.Fprintf(os.Stderr, "usload: %d completed responses byte-identical to baseline\n", doc.BaselineCompared)
	}
	os.Exit(exitCode)
}
