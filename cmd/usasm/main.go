// Command usasm assembles Ultrascalar assembly to encoded 32-bit words,
// or disassembles encoded words back to source.
//
// Usage:
//
//	usasm prog.s            # assemble, print hex words
//	usasm -d words.hex      # disassemble hex words (one per line)
//	usasm -run prog.s       # assemble and run on the reference interpreter
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ultrascalar"
	"ultrascalar/internal/isa"
)

func main() {
	dis := flag.Bool("d", false, "disassemble hex words instead of assembling")
	run := flag.Bool("run", false, "run the assembled program on the reference interpreter")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: usasm [-d|-run] file (or - for stdin)")
		os.Exit(2)
	}
	data, err := readAll(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *dis {
		var words []isa.Word
		sc := bufio.NewScanner(strings.NewReader(data))
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(line, "0x"), 16, 32)
			if err != nil {
				fatal(fmt.Errorf("bad word %q: %v", line, err))
			}
			words = append(words, isa.Word(v))
		}
		prog, err := isa.DecodeProgram(words)
		if err != nil {
			fatal(err)
		}
		fmt.Print(ultrascalar.Disassemble(prog))
		return
	}

	prog, err := ultrascalar.Assemble(data)
	if err != nil {
		fatal(err)
	}
	if *run {
		mem := ultrascalar.NewMemory()
		prog.InitMem(mem)
		regs, err := ultrascalar.Reference(prog.Insts, mem)
		if err != nil {
			fatal(err)
		}
		for r, v := range regs {
			if v != 0 {
				fmt.Printf("r%-2d = %d (0x%x)\n", r, v, v)
			}
		}
		return
	}
	for _, w := range isa.EncodeProgram(prog.Insts) {
		fmt.Printf("%08x\n", w)
	}
}

func readAll(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usasm:", err)
	os.Exit(1)
}
