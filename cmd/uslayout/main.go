// Command uslayout regenerates the paper's Figure 12 empirical layout
// comparison and prints physical summaries of user-chosen configurations.
package main

import (
	"flag"
	"fmt"
	"os"

	"ultrascalar"
	"ultrascalar/internal/exp"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

func main() {
	n := flag.Int("n", 64, "window size for the custom summary")
	l := flag.Int("L", 32, "logical registers")
	svgPath := flag.String("svg", "", "write an SVG floorplan of the Ultrascalar I to this file")
	svgHybrid := flag.String("svghybrid", "", "write an SVG floorplan of the hybrid (C=min(L,n)) to this file")
	flag.Parse()
	tech := ultrascalar.DefaultTech()

	if *svgPath != "" {
		md, err := vlsi.UltraIModel(*n, *l, 32, memory.MConst(1), tech,
			vlsi.UltraIOptions{EmitBlocks: true})
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*svgPath, []byte(vlsi.RenderSVG(md, tech)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d blocks)\n", *svgPath, len(md.Blocks))
	}
	if *svgHybrid != "" {
		c := *l
		if c > *n {
			c = *n
		}
		md, err := vlsi.HybridModelBlocks(*n, c, *l, 32, memory.MConst(1), tech, vlsi.Ultra2Linear)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*svgHybrid, []byte(vlsi.RenderSVG(md, tech)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d blocks)\n", *svgHybrid, len(md.Blocks))
	}

	rep, err := exp.Figure12Report(tech)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)

	fmt.Printf("custom configuration summaries (n=%d, L=%d):\n\n", *n, *l)
	for _, tc := range []struct {
		arch ultrascalar.Arch
		opts []ultrascalar.Option
	}{
		{ultrascalar.UltraI, nil},
		{ultrascalar.UltraII, nil},
		{ultrascalar.UltraII, []ultrascalar.Option{ultrascalar.WithUltra2Mode(2)}},
		{ultrascalar.Hybrid, nil},
	} {
		opts := append(tc.opts, ultrascalar.WithRegisters(*l))
		p, err := ultrascalar.New(tc.arch, *n, opts...)
		if err != nil {
			fatal(err)
		}
		md, err := p.Physical(tech)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-28s %6.2f x %-6.2f cm  wire %6.2f cm  %5d gate delays  clock %6.2f ns\n",
			md.Name, tech.CM(md.WidthL), tech.CM(md.HeightL),
			tech.CM(md.MaxWireL), md.GateDelay, md.ClockPs(tech)/1000)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uslayout:", err)
	os.Exit(1)
}
