// Command usfault runs deterministic fault-injection campaigns against
// the three simulated architectures: it sweeps single-transient-fault
// runs over (architecture × workload × fault site × n trials), classifies
// every point against the fault-free golden run (masked, recovered,
// silent data corruption, crash), and prints an aggregate vulnerability
// report. The same seed and flags always produce a byte-identical report,
// across runs and across -workers settings; CI diffs two runs to enforce
// it. Long campaigns checkpoint per shard with -checkpoint and resume by
// rerunning with the identical flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"ultrascalar/internal/exp"
	"ultrascalar/internal/fault"
)

// exitDeadline is the distinct exit code for a run killed by -timeout,
// so CI can tell "the campaign was too slow" from "the campaign is
// broken". Shared by usbench and ustrace.
const exitDeadline = 3

func main() {
	seed := flag.Int64("seed", 1, "campaign seed; all fault draws derive from it")
	n := flag.Int("n", 16, "injection trials per (arch x workload x site) cell")
	window := flag.Int("window", 16, "station count n")
	cluster := flag.Int("cluster", 0, "hybrid cluster size C (0 = window/4)")
	archs := flag.String("arch", "", "comma-separated architectures (default all: "+strings.Join(exp.FaultArchs, ",")+")")
	sitesFlag := flag.String("sites", "", "comma-separated fault sites (default all)")
	detectFlag := flag.String("detect", "golden", "detection model: none, parity or golden")
	checkpoint := flag.String("checkpoint", "", "shard checkpoint file for resumable campaigns")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	workers := flag.Int("workers", 0, "sweep goroutines (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the campaign after this long (0 = no limit); exit code 3 on deadline")
	listSites := flag.Bool("list-sites", false, "list the fault sites and exit")
	flag.Parse()

	if *listSites {
		for _, s := range fault.AllSites() {
			fmt.Println(s)
		}
		return
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "usfault: "+format+"\n", args...)
		os.Exit(1)
	}

	detect, ok := fault.DetectFromString(*detectFlag)
	if !ok {
		fail("unknown detection model %q (want none, parity or golden)", *detectFlag)
	}
	var sites []fault.Site
	if *sitesFlag != "" {
		for _, name := range strings.Split(*sitesFlag, ",") {
			s, ok := fault.SiteFromString(strings.TrimSpace(name))
			if !ok {
				fail("unknown fault site %q (run usfault -list-sites)", name)
			}
			sites = append(sites, s)
		}
	}
	var archList []string
	if *archs != "" {
		for _, a := range strings.Split(*archs, ",") {
			archList = append(archList, strings.TrimSpace(a))
		}
	}

	exp.SetSweepWorkers(*workers)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := exp.RunFaultCampaignCtx(ctx, exp.FaultCampaignConfig{
		Seed:       *seed,
		Window:     *window,
		Cluster:    *cluster,
		N:          *n,
		Archs:      archList,
		Sites:      sites,
		Detect:     detect,
		Checkpoint: *checkpoint,
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "usfault: deadline exceeded after %v: %v\n", *timeout, err)
			os.Exit(exitDeadline)
		}
		fail("%v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteText(w); err != nil {
		fail("writing report: %v", err)
	}
}
