// Command usablate regenerates the extension/ablation experiments the
// paper sketches in Section 7: shared ALUs, self-timed forwarding, memory
// renaming, fetch mechanisms, the large-register-file regime, and
// distributed cluster caches.
package main

import (
	"flag"
	"fmt"
	"os"

	"ultrascalar/internal/exp"
	"ultrascalar/internal/profiling"
	"ultrascalar/internal/vlsi"
)

func main() {
	window := flag.Int("n", 128, "window size for the shared-ALU sweep")
	flag.Parse()
	stopProfiling, err := profiling.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "usablate:", err)
		os.Exit(1)
	}
	defer stopProfiling()

	emit := func(rep string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "usablate:", err)
			stopProfiling()
			os.Exit(1)
		}
		fmt.Println(rep)
	}
	emit(exp.SharedALUsReport(*window))
	emit(exp.SelfTimedReport(32))
	emit(exp.MemRenamingReport(16))
	emit(exp.FetchModelsReport(64))
	emit(exp.LargeLReport(vlsi.Tech035()))
	emit(exp.ClusterCachesReport(16, 4))
	emit(exp.IPCReport(16, 4))
	emit(exp.LocalityReport(64))
	emit(exp.EndToEndReport(32, 32, []int{64, 256, 1024}, vlsi.Tech035()))
	emit(exp.GateLevelReport(4))
	emit(exp.ReturnStackReport(32))
}
