// Command usserve runs the simulator as an HTTP service: simulations,
// IPC sweeps and fault campaigns submitted as managed jobs with
// per-request deadlines, bounded-queue admission control plus a
// CoDel-style queue-delay controller that sheds job classes in
// priority order under sustained overload (-admit-target,
// -admit-interval), a per-config-class circuit breaker, an optional
// content-addressed result cache with SHA-256 integrity checking
// (-cache-dir), graceful drain on SIGTERM, and crash-safe job
// recovery — a job interrupted by a kill resumes from its checkpoint on
// restart and produces a byte-identical report.
//
// Endpoints (see the README "Serving" section): /healthz, /readyz,
// /jobs (POST submit, GET list), /jobs/{id} (GET status, DELETE
// cancel), /jobs/{id}/report, /jobs/{id}/progress (?stream=1 for
// NDJSON), /metrics (?format=prom for Prometheus text exposition), and
// /debug/pprof/ behind -pprof.
//
// Telemetry flags: -log writes structured JSONL (one trace ID per job
// across every span of its lifecycle), -trace-dir exports a Chrome
// trace-event file per finished job, -pprof mounts the profiler.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
	"ultrascalar/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8460", "listen address")
	dir := flag.String("dir", "usserve-state", "state directory (job records + campaign checkpoints)")
	queueCap := flag.Int("queue", 16, "admission queue capacity; beyond it submissions are shed")
	workers := flag.Int("workers", 2, "concurrent job executors")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits before hard-canceling jobs")
	breakerN := flag.Int("breaker-threshold", 3, "consecutive livelock/timeout failures that trip a config class")
	breakerCool := flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped class rejects jobs")
	admitTarget := flag.Duration("admit-target", 0, "queue-delay target for adaptive admission (0 = default 100ms, negative = hard queue bound only)")
	admitInterval := flag.Duration("admit-interval", 0, "sustained-overload interval before shedding escalates a class (0 = default 1s)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (empty = caching off)")
	injectFaults := flag.String("inject-disk-faults", "", "inject storage faults, e.g. enospc=7,fsync=11,dirsync=13 (every Nth op fails; testing only)")
	logPath := flag.String("log", "", "structured JSONL log file (\"-\" for stderr, empty = off)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	traceDir := flag.String("trace-dir", "", "directory for per-job Chrome trace-event files (empty = off)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "usserve: "+format+"\n", args...)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	var logger *obslog.Logger
	if *logPath != "" {
		level, ok := obslog.LevelFromString(*logLevel)
		if !ok {
			fail("unknown log level %q (want debug, info, warn or error)", *logLevel)
		}
		var w io.Writer = os.Stderr
		if *logPath != "-" {
			f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail("opening log: %v", err)
			}
			defer f.Close()
			w = f
		}
		logger = obslog.New(w, obslog.Options{Level: level, Clock: time.Now}) //uslint:allow detorder -- log timestamps are telemetry, never report input
	}
	var spans *obslog.SpanRecorder
	if logger != nil || *traceDir != "" {
		spans = obslog.NewSpanRecorder(obslog.SpanOptions{Logger: logger, Metrics: reg, Clock: time.Now}) //uslint:allow detorder -- span timing is what tracing measures
	}

	if *injectFaults != "" {
		var f atomicio.Faults
		for _, part := range strings.Split(*injectFaults, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
			n, perr := strconv.Atoi(val)
			if !ok || perr != nil || n < 0 {
				fail("bad -inject-disk-faults entry %q (want name=N)", part)
			}
			switch name {
			case "enospc":
				f.WriteENOSPCEvery = n
			case "fsync":
				f.SyncFailEvery = n
			case "dirsync":
				f.DirSyncFailEvery = n
			default:
				fail("unknown fault point %q (want enospc, fsync or dirsync)", name)
			}
		}
		atomicio.SetFaults(f)
		fmt.Fprintf(os.Stderr, "usserve: CHAOS: injecting storage faults (%s)\n", *injectFaults)
	}

	mgr, err := serve.New(serve.Config{
		Dir:              *dir,
		QueueCap:         *queueCap,
		Workers:          *workers,
		AdmitTarget:      *admitTarget,
		AdmitInterval:    *admitInterval,
		CacheDir:         *cacheDir,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		Metrics:          reg,
		Log:              logger,
		Spans:            spans,
		TraceDir:         *traceDir,
		EnablePprof:      *enablePprof,
	})
	if err != nil {
		fail("%v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: mgr.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	fmt.Fprintf(os.Stderr, "usserve: serving on %s (state in %s)\n", *addr, *dir)
	select {
	case err := <-errc:
		fail("server: %v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "usserve: %v: draining (up to %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		mgr.Drain(ctx)
		cancel()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "usserve: shutdown: %v\n", err)
		}
		shutCancel()
		fmt.Fprintln(os.Stderr, "usserve: drained")
	}
}
