// Command usserve runs the simulator as an HTTP service: simulations,
// IPC sweeps and fault campaigns submitted as managed jobs with
// per-request deadlines, bounded-queue admission control, a per-config-
// class circuit breaker, graceful drain on SIGTERM, and crash-safe job
// recovery — a job interrupted by a kill resumes from its checkpoint on
// restart and produces a byte-identical report.
//
// Endpoints (see the README "Serving" section): /healthz, /readyz,
// /jobs (POST submit, GET list), /jobs/{id} (GET status, DELETE
// cancel), /jobs/{id}/report, /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ultrascalar/internal/obs"
	"ultrascalar/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8460", "listen address")
	dir := flag.String("dir", "usserve-state", "state directory (job records + campaign checkpoints)")
	queueCap := flag.Int("queue", 16, "admission queue capacity; beyond it submissions are shed")
	workers := flag.Int("workers", 2, "concurrent job executors")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits before hard-canceling jobs")
	breakerN := flag.Int("breaker-threshold", 3, "consecutive livelock/timeout failures that trip a config class")
	breakerCool := flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped class rejects jobs")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "usserve: "+format+"\n", args...)
		os.Exit(1)
	}

	mgr, err := serve.New(serve.Config{
		Dir:              *dir,
		QueueCap:         *queueCap,
		Workers:          *workers,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		Metrics:          obs.NewRegistry(),
	})
	if err != nil {
		fail("%v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: mgr.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	fmt.Fprintf(os.Stderr, "usserve: serving on %s (state in %s)\n", *addr, *dir)
	select {
	case err := <-errc:
		fail("server: %v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "usserve: %v: draining (up to %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		mgr.Drain(ctx)
		cancel()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "usserve: shutdown: %v\n", err)
		}
		shutCancel()
		fmt.Fprintln(os.Stderr, "usserve: drained")
	}
}
