// Command usim assembles and runs a program on one of the three
// Ultrascalar processors, printing the final architectural state and run
// statistics.
//
// Usage:
//
//	usim -arch hybrid -n 64 -c 32 prog.s
//	echo 'li r1, 42
//	halt' | usim -arch ultra1 -n 16 -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ultrascalar"
	"ultrascalar/internal/exp"
	"ultrascalar/internal/profiling"
)

func main() {
	arch := flag.String("arch", "hybrid", "processor: ultra1, ultra2, hybrid")
	n := flag.Int("n", 64, "window size / issue width")
	c := flag.Int("c", 0, "hybrid cluster size (default min(32, n))")
	regs := flag.Int("regs", 32, "logical registers L")
	memTiming := flag.Bool("memtiming", false, "enable the fat-tree memory timing model")
	timeline := flag.Bool("timeline", false, "print the per-instruction timeline")
	gantt := flag.Bool("gantt", false, "print a Figure 3 style Gantt chart of the run")
	showRegs := flag.Bool("showregs", true, "print nonzero final registers")
	flag.Parse()
	stopProfiling, err := profiling.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProfiling()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: usim [flags] prog.s   (or - for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := ultrascalar.Assemble(src)
	if err != nil {
		fatal(err)
	}

	var a ultrascalar.Arch
	switch *arch {
	case "ultra1":
		a = ultrascalar.UltraI
	case "ultra2":
		a = ultrascalar.UltraII
	case "hybrid":
		a = ultrascalar.Hybrid
	default:
		fatal(fmt.Errorf("unknown architecture %q", *arch))
	}
	opts := []ultrascalar.Option{ultrascalar.WithRegisters(*regs)}
	if *c > 0 {
		opts = append(opts, ultrascalar.WithClusterSize(*c))
	}
	if *memTiming {
		opts = append(opts, ultrascalar.WithMemoryTiming())
	}
	if *timeline || *gantt {
		opts = append(opts, ultrascalar.WithTimeline())
	}
	p, err := ultrascalar.New(a, *n, opts...)
	if err != nil {
		fatal(err)
	}
	mem := ultrascalar.NewMemory()
	prog.InitMem(mem) // apply .data/.word directives
	res, err := p.Run(prog.Insts, mem)
	if err != nil {
		fatal(err)
	}

	s := res.Stats
	fmt.Printf("%s  n=%d C=%d\n", a, p.Window(), p.ClusterSize())
	fmt.Printf("cycles=%d retired=%d IPC=%.3f fetched=%d squashed=%d mispredicts=%d\n",
		s.Cycles, s.Retired, s.IPC(), s.Fetched, s.Squashed, s.Mispredicts)
	if *showRegs {
		for r, v := range res.Regs {
			if v != 0 {
				fmt.Printf("  r%-2d = %d (0x%x)\n", r, v, v)
			}
		}
	}
	if *timeline {
		recs := res.Timeline
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
		fmt.Println("\nseq  pc   slot issue done  inst")
		for _, r := range recs {
			fmt.Printf("%-4d %-4d %-4d %-5d %-5d %s\n", r.Seq, r.PC, r.Slot, r.Issue, r.Done, r.Inst)
		}
	}
	if *gantt {
		fmt.Println()
		fmt.Print(exp.TimelineArt(res.Timeline, 64))
	}
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "usim:", err)
	os.Exit(1)
}
