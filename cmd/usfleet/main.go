// Command usfleet coordinates a fault campaign across N usserve
// workers. It splits the campaign into its (arch × workload × site)
// shards, leases each shard to a worker over the job API, heartbeats
// the leases, retries failures behind capped exponential backoff with
// full jitter, circuit-breaks workers that keep failing, hedges
// straggler shards onto idle workers (first result wins, losers are
// cancelled), and checkpoints every merged result crash-atomically —
// a SIGKILLed coordinator restarted with the same flags resumes
// without re-running completed shards. The merged report is
// byte-identical to a single-process `usfault` run of the same
// campaign, for any worker count and any crash/retry interleaving.
//
//	usfleet -workers http://h1:8460,http://h2:8460 -window 16 -trials 4
//	usfleet ... -checkpoint fleet.ckpt -out report.txt
//	usfleet ... -status 127.0.0.1:8470    # /status, /metrics, /healthz
//
// The -status listener is the fleet's observability surface: /status
// serves the shard/lease/worker snapshot usstat -fleet renders,
// /metrics serves the obs registry (?format=prom for Prometheus).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/fleet"
	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
)

func main() {
	workers := flag.String("workers", "http://127.0.0.1:8460", "comma-separated usserve worker base URLs")
	seed := flag.Int64("seed", 1, "campaign seed")
	window := flag.Int("window", 16, "station count n")
	cluster := flag.Int("cluster", 0, "hybrid cluster size C (0 = window/4)")
	trials := flag.Int("trials", 4, "injections per campaign cell")
	checkpoint := flag.String("checkpoint", "", "coordinator checkpoint path (crash-atomic; empty = no resume)")
	out := flag.String("out", "", "write the merged report here (atomic; empty = stdout)")
	statusAddr := flag.String("status", "", "serve /status, /metrics and /healthz on this address (empty = off)")
	lease := flag.Duration("lease", 2*time.Minute, "per-shard lease TTL; past it the shard is re-dispatched")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "lease progress-poll interval")
	missed := flag.Int("missed-heartbeats", 3, "consecutive failed polls that declare a worker silently dead")
	hedgeAfter := flag.Duration("hedge-after", 0, "lease age past which an idle worker hedges the shard (0 = lease/2, negative = off)")
	leasesPer := flag.Int("leases-per-worker", 2, "concurrent leases offered to each worker")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "backoff base (full jitter, doubling)")
	retryMax := flag.Duration("retry-max", 10*time.Second, "backoff cap")
	breakerN := flag.Int("breaker-threshold", 3, "consecutive worker failures that trip its circuit breaker")
	breakerCool := flag.Duration("breaker-cooldown", 15*time.Second, "how long a tripped worker is rested")
	logPath := flag.String("log", "", "structured JSONL log file (\"-\" for stderr, empty = off)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "usfleet: "+format+"\n", args...)
		os.Exit(1)
	}

	var urls []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, w)
		}
	}
	if len(urls) == 0 {
		fail("-workers needs at least one URL")
	}

	reg := obs.NewRegistry()
	var logger *obslog.Logger
	if *logPath != "" {
		level, ok := obslog.LevelFromString(*logLevel)
		if !ok {
			fail("unknown log level %q (want debug, info, warn or error)", *logLevel)
		}
		var w io.Writer = os.Stderr
		if *logPath != "-" {
			f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail("opening log: %v", err)
			}
			defer f.Close()
			w = f
		}
		logger = obslog.New(w, obslog.Options{Level: level, Clock: time.Now}) //uslint:allow detorder -- log timestamps are telemetry, never report input
	}

	coord, err := fleet.New(fleet.Config{
		Workers: urls,
		Campaign: fleet.CampaignSpec{
			Seed: *seed, Window: *window, Cluster: *cluster, Trials: *trials,
		},
		Checkpoint:       *checkpoint,
		LeaseTTL:         *lease,
		Heartbeat:        *heartbeat,
		MissedHeartbeats: *missed,
		HedgeAfter:       *hedgeAfter,
		LeasesPerWorker:  *leasesPer,
		Retry:            fleet.Policy{Base: *retryBase, Max: *retryMax},
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		Metrics:          reg,
		Log:              logger,
	})
	if err != nil {
		fail("%v", err)
	}

	if *statusAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(coord.Status())
		})
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("format") == "prom" {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				obs.WritePrometheus(w, reg.Peek(0))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				Manifest obs.Manifest `json:"manifest"`
				Snapshot obs.Snapshot `json:"snapshot"`
			}{obs.NewManifest("usfleet"), reg.Peek(0)})
		})
		srv := &http.Server{Addr: *statusAddr, Handler: mux}
		go func() {
			if serr := srv.ListenAndServe(); serr != nil && serr != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "usfleet: status server: %v\n", serr)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "usfleet: status on %s\n", *statusAddr)
	}

	// SIGTERM/SIGINT stop the run cleanly: in-flight leases are
	// abandoned (their workers finish or time the jobs out on their
	// own), and everything already merged is in the checkpoint — the
	// next invocation resumes from it.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()

	fmt.Fprintf(os.Stderr, "usfleet: distributing campaign seed=%d window=%d trials=%d across %d worker(s)\n",
		*seed, *window, *trials, len(urls))
	rep, err := coord.Run(ctx)
	if err != nil {
		fail("%v", err)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		fail("rendering report: %v", err)
	}
	if *out != "" {
		if err := atomicio.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "usfleet: report written to %s\n", *out)
	} else {
		fmt.Print(b.String())
	}
}
