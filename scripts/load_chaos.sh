#!/usr/bin/env bash
# Load + storage-chaos harness: proves the serving stack is
# overload-proof and that degraded storage never degrades results. The
# invariants under test:
#
#   1. Under an open-loop burst far beyond capacity, every non-shed
#      response is byte-identical to the same request served by a
#      quiet, cache-less server (the usload -baseline gate).
#   2. Shed accounting is exact: the server's admitted/shed counter
#      deltas equal the client's accepted/shed tallies, request for
#      request (the usload -verify-server conservation gate).
#   3. Cache hits are byte-identical to recomputation, and a corrupted
#      cache entry is quarantined and recomputed — never served.
#   4. All of the above holds WITH injected storage faults (ENOSPC
#      mid-write, fsync EIO, directory-fsync EIO) hammering every
#      atomic write in the persistence, cache and checkpoint paths.
#   5. Server-side P99 queue delay stays bounded, and both the
#      server's and usload's Prometheus expositions stay valid.
#
# Phases:
#   A  quiet baseline: cache off, no faults, queue big enough that
#      nothing sheds; records every response's report SHA-256
#   B  overload + chaos: small queue, adaptive admission, result cache
#      on, storage faults injected; 1000-request burst compared
#      response-by-response against the baseline
#   C  corruption: every cache entry is deliberately bit-flipped; the
#      next run must quarantine and recompute (byte-identical), and
#      the run after that must hit the re-stored clean entries
#
# Artifacts (JSONL, summaries, Prometheus scrapes, server logs) are
# copied to $LOAD_OUT when set, so CI can upload them.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
LOAD_OUT="${LOAD_OUT:-}"
PORT=18495
BASE="http://127.0.0.1:$PORT"
SEED=11
REQUESTS=1000
SERVE_PID=""

cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    if [ -n "$LOAD_OUT" ]; then
        mkdir -p "$LOAD_OUT"
        cp -f "$WORK"/*.jsonl "$LOAD_OUT/" 2>/dev/null || true
        cp -f "$WORK"/*.json "$LOAD_OUT/" 2>/dev/null || true
        cp -f "$WORK"/*.prom "$LOAD_OUT/" 2>/dev/null || true
        cp -f "$WORK"/*.log "$LOAD_OUT/" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "load_chaos: FAIL: $*" >&2
    exit 1
}

start_server() { # extra usserve flags after the fixed ones
    "$WORK/usserve" -addr "127.0.0.1:$PORT" "$@" 2>>"$WORK/usserve.log" &
    SERVE_PID=$!
    # Readiness, not liveness: the worker must actually accept jobs.
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "usserve did not become ready on port $PORT"
}

stop_server() {
    kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
}

summary_field() { # $1 = summary file, $2 = field name (top-level integer)
    grep -o "\"$2\": [0-9-]*" "$1" | head -1 | grep -o '[0-9-]*$' || echo 0
}

echo "load_chaos: building usserve + usload + usstat"
go build -o "$WORK/usserve" ./cmd/usserve
go build -o "$WORK/usload" ./cmd/usload
go build -o "$WORK/usstat" ./cmd/usstat

# --- Phase A: quiet baseline (cache off, no faults, nothing sheds). ----
echo "load_chaos: A: quiet baseline run ($REQUESTS requests, cache off)"
start_server -dir "$WORK/state-quiet" -queue 4096 -workers 4 -admit-target=-1s
"$WORK/usload" -target "$BASE" -requests $REQUESTS -seed $SEED \
    -wait 120s -out "$WORK/baseline.jsonl" -summary "$WORK/baseline-summary.json" \
    -verify-server 2>>"$WORK/usload-baseline.log" ||
    fail "baseline run failed (tail: $(tail -3 "$WORK/usload-baseline.log"))"
stop_server
BASE_DONE=$(summary_field "$WORK/baseline-summary.json" done)
[ "$BASE_DONE" = "$REQUESTS" ] || fail "baseline completed $BASE_DONE/$REQUESTS requests"
echo "load_chaos: A: baseline complete ($BASE_DONE/$REQUESTS done, 0 shed)"

# --- Phase B: overload + cache + injected storage faults. --------------
echo "load_chaos: B: overload burst with cache + ENOSPC/fsync/dirsync faults"
CACHE="$WORK/cache"
start_server -dir "$WORK/state-chaos" -queue 64 -workers 4 \
    -admit-target 50ms -admit-interval 500ms \
    -cache-dir "$CACHE" -inject-disk-faults enospc=7,fsync=11,dirsync=13 \
    -log "$WORK/usserve-chaos.jsonl" -log-level warn
"$WORK/usload" -target "$BASE" -requests $REQUESTS -seed $SEED \
    -wait 120s -out "$WORK/overload.jsonl" -summary "$WORK/overload-summary.json" \
    -prom "$WORK/usload.prom" -baseline "$WORK/baseline.jsonl" \
    -verify-server -min-peak 256 -queue-delay-p99-max 60s \
    2>>"$WORK/usload-overload.log" ||
    fail "overload gates failed (tail: $(tail -6 "$WORK/usload-overload.log"))"
curl -fsS "$BASE/metrics?format=prom" >"$WORK/usserve-chaos.prom" || true
"$WORK/usstat" -addr "$BASE" -validate-prom >/dev/null ||
    fail "server Prometheus exposition invalid under chaos"
"$WORK/usstat" -addr "$BASE" >"$WORK/dashboard-chaos.log" ||
    fail "usstat dashboard errored against the chaotic server"
grep -q 'admission:' "$WORK/dashboard-chaos.log" ||
    fail "usstat dashboard shows no admission line"
stop_server

SHED=$(summary_field "$WORK/overload-summary.json" shed)
DONE=$(summary_field "$WORK/overload-summary.json" done)
COMPARED=$(summary_field "$WORK/overload-summary.json" baseline_compared)
[ "$SHED" -ge 1 ] || fail "an overload burst shed nothing (queue 64, $REQUESTS offered)"
[ "$DONE" -ge 1 ] || fail "the overloaded server completed nothing"
[ "$COMPARED" -ge 1 ] || fail "no responses were compared against the baseline"
grep -q '"store_errors\|persist error\|resource-exhausted' \
    "$WORK/usserve-chaos.jsonl" "$WORK/usserve-chaos.prom" 2>/dev/null ||
    echo "load_chaos: B: note: no injected fault fired during the burst"
echo "load_chaos: B: $DONE done / $SHED shed of $REQUESTS; $COMPARED responses byte-identical to baseline; conservation exact"

# --- Phase C: corrupt every cache entry; quarantine + recompute. -------
ENTRIES=$(ls "$CACHE"/*.entry 2>/dev/null | wc -l)
[ "$ENTRIES" -ge 1 ] || fail "phase B stored no cache entries to corrupt"
echo "load_chaos: C: bit-flipping $ENTRIES cache entries"
for f in "$CACHE"/*.entry; do
    size=$(stat -c%s "$f")
    printf '\xff' | dd of="$f" bs=1 seek=$((size - 2)) conv=notrunc 2>/dev/null
done

# Fresh state dir, same (corrupted) cache, no faults: every cache read
# must detect the corruption, quarantine the entry and recompute.
start_server -dir "$WORK/state-verify" -queue 4096 -workers 4 -admit-target=-1s \
    -cache-dir "$CACHE" -log "$WORK/usserve-verify.jsonl" -log-level warn
"$WORK/usload" -target "$BASE" -requests 60 -seed $SEED \
    -wait 120s -out "$WORK/corrupt.jsonl" -summary "$WORK/corrupt-summary.json" \
    -baseline "$WORK/baseline.jsonl" -verify-server \
    2>>"$WORK/usload-corrupt.log" ||
    fail "corrupted-cache run gates failed (tail: $(tail -6 "$WORK/usload-corrupt.log"))"

QUARANTINES=$(curl -fsS "$BASE/metrics" | grep -o '"serve.cache.quarantines": [0-9]*' | grep -o '[0-9]*$' || echo 0)
[ "$QUARANTINES" -ge 1 ] || fail "no quarantines counted after corrupting every entry"
QFILES=$(ls "$CACHE/quarantine" 2>/dev/null | wc -l)
[ "$QFILES" -ge 1 ] || fail "quarantine directory is empty after corrupted reads"
# Responses cached *within* this run are fine — the first request per
# key quarantined the corrupt entry and re-stored a clean one; the
# -baseline gate above already proved every response byte-identical.

# Same keys again: the recomputation re-stored clean entries, so this
# run must hit them — and still match the baseline byte for byte.
"$WORK/usload" -target "$BASE" -requests 60 -seed $SEED \
    -wait 120s -summary "$WORK/rehit-summary.json" \
    -baseline "$WORK/baseline.jsonl" \
    2>>"$WORK/usload-rehit.log" ||
    fail "cache-rehit run gates failed (tail: $(tail -6 "$WORK/usload-rehit.log"))"
REHIT=$(summary_field "$WORK/rehit-summary.json" cached_responses)
[ "$REHIT" -ge 1 ] || fail "no cache hits after quarantine-and-recompute re-stored the entries"
stop_server
echo "load_chaos: C: $QUARANTINES corrupted entries quarantined ($QFILES files), recomputed byte-identical, then $REHIT served from the clean re-stored cache"

echo "load_chaos: PASS (byte-identical responses under overload + storage faults, exact shed accounting, quarantine-and-recompute cache integrity)"
