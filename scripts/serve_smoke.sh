#!/usr/bin/env bash
# Serve smoke test: proves the crash-safe job-recovery story end to end,
# across real processes. Builds usserve, runs a reference campaign job to
# completion, then runs the same job on a fresh state directory, SIGTERMs
# the server mid-campaign (drain checkpoints the job and parks it as
# "interrupted"), restarts the server on the same state directory, and
# asserts the job resumes from its checkpoint (resumed_shards > 0) and
# the final report is byte-identical to the uninterrupted reference.
#
# The campaign size (window=256, trials=512) is calibrated to run a few
# seconds — long enough to SIGTERM mid-run from a shell, short enough
# for CI.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8469
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SRV_PID=""

cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    exit 1
}

echo "serve_smoke: building usserve"
go build -o "$WORK/usserve" ./cmd/usserve

JOB_REQ='{"kind":"campaign","window":256,"trials":512,"seed":7,"timeout_ms":300000}'
JOB_ID=job-000001 # deterministic: the manager numbers jobs from 1

start_server() { # $1 = state dir
    "$WORK/usserve" -addr "$ADDR" -dir "$1" -timeout 5m -drain-timeout 60s \
        2>>"$WORK/server.log" &
    SRV_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "server did not come up on $ADDR (log: $(cat "$WORK/server.log"))"
}

stop_server() { # graceful: SIGTERM + wait for drain to finish
    kill -TERM "$SRV_PID"
    wait "$SRV_PID" || true
    SRV_PID=""
}

job_state() {
    curl -fsS "$BASE/jobs/$JOB_ID" | grep -o '"state": "[^"]*"' | head -1 | cut -d'"' -f4
}

wait_done() { # $1 = max seconds
    for _ in $(seq 1 $(($1 * 5))); do
        state="$(job_state)"
        case "$state" in
        done) return 0 ;;
        failed | canceled) fail "job entered state $state: $(curl -fsS "$BASE/jobs/$JOB_ID")" ;;
        esac
        sleep 0.2
    done
    fail "job did not finish within $1s (last state: $(job_state))"
}

# --- Reference run: same job, never interrupted. -----------------------
echo "serve_smoke: reference run"
start_server "$WORK/state-ref"

curl -fsS "$BASE/readyz" | grep -q ready || fail "/readyz not ready"
curl -fsS -X POST "$BASE/jobs" -d "$JOB_REQ" >/dev/null
wait_done 120
curl -fsS "$BASE/jobs/$JOB_ID/report" >"$WORK/report-ref.txt"
[ -s "$WORK/report-ref.txt" ] || fail "empty reference report"
stop_server

# --- Interrupted run: SIGTERM mid-campaign, restart, resume. -----------
echo "serve_smoke: interrupted run"
start_server "$WORK/state-int"
curl -fsS -X POST "$BASE/jobs" -d "$JOB_REQ" >/dev/null

# Wait until the campaign has checkpointed a few shards (header + >=3
# shard lines) so the kill lands mid-job, with work both behind and
# ahead of it.
CKPT="$WORK/state-int/checkpoints/$JOB_ID.ckpt"
for _ in $(seq 1 300); do
    if [ -f "$CKPT" ] && [ "$(wc -l <"$CKPT")" -ge 4 ]; then
        break
    fi
    sleep 0.1
done
[ -f "$CKPT" ] || fail "checkpoint never appeared; job too fast or not running"
[ "$(job_state)" = running ] || fail "expected job running mid-campaign, got $(job_state)"

echo "serve_smoke: SIGTERM mid-job after $(wc -l <"$CKPT") checkpoint lines"
stop_server

grep -q '"state": "interrupted"' "$WORK/state-int/jobs/$JOB_ID.json" ||
    fail "drained job not persisted as interrupted: $(cat "$WORK/state-int/jobs/$JOB_ID.json")"

echo "serve_smoke: restarting on the same state directory"
start_server "$WORK/state-int"
wait_done 120

RESUMED="$(curl -fsS "$BASE/jobs/$JOB_ID" | grep -o '"resumed_shards": [0-9]*' | grep -o '[0-9]*' || true)"
[ -n "$RESUMED" ] && [ "$RESUMED" -gt 0 ] ||
    fail "job did not resume from checkpoint (resumed_shards=$RESUMED)"

curl -fsS "$BASE/jobs/$JOB_ID/report" >"$WORK/report-resumed.txt"
cmp "$WORK/report-ref.txt" "$WORK/report-resumed.txt" ||
    fail "resumed report differs from uninterrupted reference"
stop_server

echo "serve_smoke: PASS (resumed $RESUMED shards; reports byte-identical)"
