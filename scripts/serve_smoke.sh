#!/usr/bin/env bash
# Serve smoke test: proves the crash-safe job-recovery story end to end,
# across real processes. Builds usserve, runs a reference campaign job to
# completion, then runs the same job on a fresh state directory, SIGTERMs
# the server mid-campaign (drain checkpoints the job and parks it as
# "interrupted"), restarts the server on the same state directory, and
# asserts the job resumes from its checkpoint (resumed_shards > 0) and
# the final report is byte-identical to the uninterrupted reference.
#
# The campaign size (window=256, trials=512) is calibrated to run a few
# seconds — long enough to SIGTERM mid-run from a shell, short enough
# for CI.
#
# The run also smokes the telemetry surface: every server starts with
# -log (structured JSONL) and -trace-dir, the Prometheus exposition is
# scraped and schema-validated mid-campaign (usstat -validate-prom), the
# progress endpoint is read while shards are in flight, and at the end
# the log must show exactly one trace ID across all of the job's shard
# spans plus an exported Chrome trace file. Artifacts (log, exposition,
# trace) are copied to $SMOKE_OUT when set, so CI can upload them.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8469
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SRV_PID=""
SMOKE_OUT="${SMOKE_OUT:-}"
LOG="$WORK/smoke.jsonl"
TRACES="$WORK/traces"

cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    if [ -n "$SMOKE_OUT" ]; then
        mkdir -p "$SMOKE_OUT"
        cp -f "$LOG" "$SMOKE_OUT/" 2>/dev/null || true
        cp -f "$WORK/prom.txt" "$SMOKE_OUT/" 2>/dev/null || true
        cp -rf "$TRACES" "$SMOKE_OUT/" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    exit 1
}

echo "serve_smoke: building usserve + usstat"
go build -o "$WORK/usserve" ./cmd/usserve
go build -o "$WORK/usstat" ./cmd/usstat

JOB_REQ='{"kind":"campaign","window":256,"trials":512,"seed":7,"timeout_ms":300000}'
JOB_ID=job-000001 # deterministic: the manager numbers jobs from 1

start_server() { # $1 = state dir
    "$WORK/usserve" -addr "$ADDR" -dir "$1" -timeout 5m -drain-timeout 60s \
        -log "$LOG" -log-level debug -trace-dir "$TRACES" \
        2>>"$WORK/server.log" &
    SRV_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "server did not come up on $ADDR (log: $(cat "$WORK/server.log"))"
}

stop_server() { # graceful: SIGTERM + wait for drain to finish
    kill -TERM "$SRV_PID"
    wait "$SRV_PID" || true
    SRV_PID=""
}

job_state() {
    curl -fsS "$BASE/jobs/$JOB_ID" | grep -o '"state": "[^"]*"' | head -1 | cut -d'"' -f4
}

wait_done() { # $1 = max seconds
    for _ in $(seq 1 $(($1 * 5))); do
        state="$(job_state)"
        case "$state" in
        done) return 0 ;;
        failed | canceled) fail "job entered state $state: $(curl -fsS "$BASE/jobs/$JOB_ID")" ;;
        esac
        sleep 0.2
    done
    fail "job did not finish within $1s (last state: $(job_state))"
}

# --- Reference run: same job, never interrupted. -----------------------
echo "serve_smoke: reference run"
start_server "$WORK/state-ref"

curl -fsS "$BASE/readyz" | grep -q ready || fail "/readyz not ready"
curl -fsS -X POST "$BASE/jobs" -d "$JOB_REQ" >/dev/null
wait_done 120
curl -fsS "$BASE/jobs/$JOB_ID/report" >"$WORK/report-ref.txt"
[ -s "$WORK/report-ref.txt" ] || fail "empty reference report"
stop_server

# --- Interrupted run: SIGTERM mid-campaign, restart, resume. -----------
echo "serve_smoke: interrupted run"
start_server "$WORK/state-int"
curl -fsS -X POST "$BASE/jobs" -d "$JOB_REQ" >/dev/null

# Wait until the campaign has checkpointed a few shards (header + >=3
# shard lines) so the kill lands mid-job, with work both behind and
# ahead of it.
CKPT="$WORK/state-int/checkpoints/$JOB_ID.ckpt"
for _ in $(seq 1 300); do
    if [ -f "$CKPT" ] && [ "$(wc -l <"$CKPT")" -ge 4 ]; then
        break
    fi
    sleep 0.1
done
[ -f "$CKPT" ] || fail "checkpoint never appeared; job too fast or not running"
[ "$(job_state)" = running ] || fail "expected job running mid-campaign, got $(job_state)"

# --- Telemetry scrape mid-campaign: exposition + progress. -------------
echo "serve_smoke: scraping telemetry mid-campaign"
"$WORK/usstat" -addr "$BASE" -validate-prom >"$WORK/prom.txt" ||
    fail "Prometheus exposition failed schema validation"
grep -q '# TYPE serve_http_requests counter' "$WORK/prom.txt" ||
    fail "exposition missing serve_http_requests family: $(head -20 "$WORK/prom.txt")"
grep -q '# TYPE serve_queue_depth gauge' "$WORK/prom.txt" ||
    fail "exposition missing serve_queue_depth gauge"

PROGRESS="$(curl -fsS "$BASE/jobs/$JOB_ID/progress")"
echo "$PROGRESS" | grep -q '"shards_total": [1-9]' ||
    fail "mid-campaign progress has no shard total: $PROGRESS"
"$WORK/usstat" -addr "$BASE" >/dev/null || fail "usstat dashboard errored mid-campaign"

echo "serve_smoke: SIGTERM mid-job after $(wc -l <"$CKPT") checkpoint lines"
stop_server

grep -q '"state": "interrupted"' "$WORK/state-int/jobs/$JOB_ID.json" ||
    fail "drained job not persisted as interrupted: $(cat "$WORK/state-int/jobs/$JOB_ID.json")"

echo "serve_smoke: restarting on the same state directory"
start_server "$WORK/state-int"
wait_done 120

RESUMED="$(curl -fsS "$BASE/jobs/$JOB_ID" | grep -o '"resumed_shards": [0-9]*' | grep -o '[0-9]*' || true)"
[ -n "$RESUMED" ] && [ "$RESUMED" -gt 0 ] ||
    fail "job did not resume from checkpoint (resumed_shards=$RESUMED)"

curl -fsS "$BASE/jobs/$JOB_ID/report" >"$WORK/report-resumed.txt"
cmp "$WORK/report-ref.txt" "$WORK/report-resumed.txt" ||
    fail "resumed report differs from uninterrupted reference"
stop_server

# --- Telemetry postconditions: one trace ID, loadable trace file. ------
echo "serve_smoke: checking the job trace"
TRACE="$(grep -o '"trace": "[a-f0-9]*"' "$WORK/state-int/jobs/$JOB_ID.json" | head -1 | cut -d'"' -f4)"
[ -n "$TRACE" ] || fail "job record carries no trace ID"

# Every shard span in the log must carry the job's trace ID — exactly
# one distinct trace across all shard spans.
SHARD_TRACES="$(grep '"msg":"span"' "$LOG" | grep '"span":"shard"' |
    grep -o '"trace":"[a-f0-9]*"' | sort -u)"
[ "$(echo "$SHARD_TRACES" | wc -l)" = 1 ] ||
    fail "shard spans carry more than one trace ID: $SHARD_TRACES"
echo "$SHARD_TRACES" | grep -q "$TRACE" ||
    fail "shard spans traced as $SHARD_TRACES, job record says $TRACE"
SHARD_SPANS="$(grep -c '"span":"shard"' "$LOG")"
[ "$SHARD_SPANS" -gt 0 ] || fail "no shard spans in the log"
grep -q '"msg":"job submitted"' "$LOG" || fail "no job-submitted event in the log"
grep -q '"msg":"job done"' "$LOG" || fail "no job-done event in the log"

TRACE_FILE="$TRACES/$JOB_ID.trace.json"
[ -s "$TRACE_FILE" ] || fail "no exported Chrome trace at $TRACE_FILE"
grep -q '"traceEvents"' "$TRACE_FILE" || fail "trace file is not Chrome trace-event JSON"
grep -q "$TRACE" "$TRACE_FILE" || fail "trace file does not mention the job's trace ID"

echo "serve_smoke: PASS (resumed $RESUMED shards; reports byte-identical; $SHARD_SPANS shard spans on trace $TRACE)"
