#!/usr/bin/env bash
# Fleet chaos harness: proves the distributed-campaign correctness bar
# across real processes and real kills. The invariant under test: the
# usfleet coordinator's merged report is byte-identical to a direct
# single-process usfault run of the same campaign — for 1, 2 and 8
# workers, and under chaos (SIGKILL of a worker AND of the coordinator
# mid-campaign, then restart and resume from the crash-atomic
# checkpoint). Alongside the identity bar, the failure machinery must
# be observable: retry, lease-expiry and hedge events in the
# structured logs and the Prometheus exposition, and one trace ID per
# shard job shared by coordinator and worker telemetry.
#
# Phases:
#   A  direct usfault reference run
#   B  worker-count identity matrix: 1, 2, 8 workers
#   C  chaos: 3 workers; SIGKILL one worker, then SIGKILL the
#      coordinator; restart both; resume must skip completed shards
#   D  lease expiry: SIGSTOP a worker so its leases time out
#   E  hedging: tail-of-campaign stragglers re-dispatched to the idle
#      worker, first result wins
#
# Artifacts (logs + Prometheus scrapes) are copied to $FLEET_OUT when
# set, so CI can upload them.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
FLEET_OUT="${FLEET_OUT:-}"
COORD_STATUS=127.0.0.1:18470
COORD_BASE="http://$COORD_STATUS"
SEED=7 TRIALS=512 WINDOW=256
WORKER_PIDS=()
COORD_PID=""

cleanup() {
    [ -n "$COORD_PID" ] && kill -9 "$COORD_PID" 2>/dev/null || true
    for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
        kill -CONT "$pid" 2>/dev/null || true
        kill -9 "$pid" 2>/dev/null || true
    done
    if [ -n "$FLEET_OUT" ]; then
        mkdir -p "$FLEET_OUT"
        cp -f "$WORK"/*.jsonl "$FLEET_OUT/" 2>/dev/null || true
        cp -f "$WORK"/*.log "$FLEET_OUT/" 2>/dev/null || true
        cp -f "$WORK"/prom-*.txt "$FLEET_OUT/" 2>/dev/null || true
        cp -f "$WORK"/report-*.txt "$FLEET_OUT/" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "fleet_chaos: FAIL: $*" >&2
    exit 1
}

worker_port() { echo $((18480 + $1)); }

start_worker() { # $1 = index (state dir + log are keyed by it)
    local i=$1 port
    port=$(worker_port "$i")
    "$WORK/usserve" -addr "127.0.0.1:$port" -dir "$WORK/wstate-$i" -timeout 5m \
        -log "$WORK/worker-$i.jsonl" -log-level debug \
        2>>"$WORK/worker-$i.log" &
    WORKER_PIDS[$i]=$!
    # Gate on readiness, not liveness: /healthz answers 200 for the
    # whole process lifetime (including drain), while /readyz only
    # turns 200 once the worker will actually accept jobs.
    for _ in $(seq 1 100); do
        if curl -fsS "http://127.0.0.1:$port/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "worker $i did not become ready on port $port"
}

stop_workers() {
    for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
        wait "$pid" 2>/dev/null || true
    done
    WORKER_PIDS=()
}

worker_urls() { # $1 = count
    local urls="" i
    for i in $(seq 1 "$1"); do
        urls="$urls,http://127.0.0.1:$(worker_port "$i")"
    done
    echo "${urls#,}"
}

start_coordinator() { # $1 = workers csv, $2 = report path, $3 = log path, extra flags after
    local urls=$1 out=$2 log=$3
    shift 3
    "$WORK/usfleet" -workers "$urls" \
        -seed $SEED -trials $TRIALS -window $WINDOW \
        -heartbeat 250ms -status "$COORD_STATUS" \
        -out "$out" -log "$log" -log-level debug "$@" \
        2>>"$WORK/coord.log" &
    COORD_PID=$!
}

wait_coordinator() { # $1 = max seconds; coordinator exit 0 = report written
    local deadline=$(($(date +%s) + $1))
    while kill -0 "$COORD_PID" 2>/dev/null; do
        [ "$(date +%s)" -lt "$deadline" ] || fail "coordinator did not finish within $1s"
        sleep 0.2
    done
    wait "$COORD_PID" || fail "coordinator exited non-zero (tail: $(tail -3 "$WORK/coord.log"))"
    COORD_PID=""
}

shards_done() {
    curl -fsS "$COORD_BASE/status" 2>/dev/null |
        grep -o '"shards_done": [0-9]*' | grep -o '[0-9]*' || echo 0
}

wait_shards_done() { # $1 = threshold, $2 = max seconds
    for _ in $(seq 1 $(($2 * 10))); do
        if [ "$(shards_done)" -ge "$1" ]; then
            return 0
        fi
        sleep 0.1
    done
    fail "fleet never reached $1 completed shards (at $(shards_done))"
}

echo "fleet_chaos: building usfault + usserve + usfleet + usstat"
go build -o "$WORK/usfault" ./cmd/usfault
go build -o "$WORK/usserve" ./cmd/usserve
go build -o "$WORK/usfleet" ./cmd/usfleet
go build -o "$WORK/usstat" ./cmd/usstat

# --- Phase A: direct single-process reference. -------------------------
echo "fleet_chaos: A: direct reference run"
"$WORK/usfault" -seed $SEED -n $TRIALS -window $WINDOW -o "$WORK/report-direct.txt"
[ -s "$WORK/report-direct.txt" ] || fail "empty direct report"

# --- Phase B: worker-count identity matrix. ----------------------------
for n in 1 2 8; do
    echo "fleet_chaos: B: $n-worker fleet run"
    for i in $(seq 1 "$n"); do start_worker "$i"; done
    start_coordinator "$(worker_urls "$n")" "$WORK/report-w$n.txt" "$WORK/fleet-w$n.jsonl"
    wait_coordinator 180
    stop_workers
    cmp "$WORK/report-direct.txt" "$WORK/report-w$n.txt" ||
        fail "$n-worker merged report differs from the direct run"
done
echo "fleet_chaos: B: reports byte-identical across worker counts {1,2,8}"

# --- Phase C: SIGKILL a worker and the coordinator mid-campaign. -------
echo "fleet_chaos: C: chaos run (3 workers)"
for i in 1 2 3; do start_worker "$i"; done
CKPT="$WORK/fleet.ckpt"
start_coordinator "$(worker_urls 3)" "$WORK/report-chaos.txt" "$WORK/fleet-chaos-1.jsonl" \
    -checkpoint "$CKPT"

wait_shards_done 8 60
echo "fleet_chaos: C: SIGKILL worker 1 at $(shards_done) shards"
kill -9 "${WORKER_PIDS[1]}"
sleep 1
echo "fleet_chaos: C: SIGKILL coordinator at $(shards_done) shards"
kill -9 "$COORD_PID"
COORD_PID=""
[ -s "$CKPT" ] || fail "no checkpoint survived the coordinator kill"
CKPT_LINES_AT_KILL=$(wc -l <"$CKPT")
[ "$CKPT_LINES_AT_KILL" -ge 9 ] || fail "checkpoint too small at kill: $CKPT_LINES_AT_KILL lines"

echo "fleet_chaos: C: restarting coordinator (worker 1 still dead) from $CKPT_LINES_AT_KILL checkpoint lines"
start_coordinator "$(worker_urls 3)" "$WORK/report-chaos.txt" "$WORK/fleet-chaos-2.jsonl" \
    -checkpoint "$CKPT"

# The dead worker draws connection-refused retries; scrape the fleet's
# Prometheus exposition while that is happening and gate on it.
FOUND_RETRY=0
for _ in $(seq 1 100); do
    if curl -fsS "$COORD_BASE/metrics?format=prom" >"$WORK/prom-chaos.txt" 2>/dev/null &&
        grep -q '^fleet_retries' "$WORK/prom-chaos.txt"; then
        FOUND_RETRY=1
        break
    fi
    kill -0 "$COORD_PID" 2>/dev/null || break
    sleep 0.1
done
[ "$FOUND_RETRY" = 1 ] || fail "fleet_retries never appeared in the Prometheus exposition with a dead worker"
"$WORK/usstat" -addr "$COORD_BASE" -validate-prom >/dev/null ||
    fail "fleet Prometheus exposition failed schema validation"
"$WORK/usstat" -addr "$COORD_BASE" -fleet >"$WORK/fleet-dashboard.log" 2>/dev/null ||
    fail "usstat -fleet dashboard errored against the coordinator"

echo "fleet_chaos: C: restarting worker 1"
start_worker 1
wait_coordinator 180
stop_workers

cmp "$WORK/report-direct.txt" "$WORK/report-chaos.txt" ||
    fail "chaos-run merged report differs from the direct run"
grep -q '"msg":"fleet start"' "$WORK/fleet-chaos-2.jsonl" || fail "no fleet-start event after restart"
RESUMED=$(grep '"msg":"fleet start"' "$WORK/fleet-chaos-2.jsonl" | grep -o '"resumed":[0-9]*' | grep -o '[0-9]*' || true)
[ -n "$RESUMED" ] && [ "$RESUMED" -ge 8 ] || fail "restarted coordinator resumed only ${RESUMED:-0} shards (checkpoint had $CKPT_LINES_AT_KILL lines)"
grep -q '"msg":"shard retry"' "$WORK/fleet-chaos-1.jsonl" "$WORK/fleet-chaos-2.jsonl" ||
    fail "no shard-retry events in the chaos logs despite a killed worker"

# One trace ID per shard job, shared across coordinator and worker: take
# a merged shard's trace from the second coordinator log and require the
# same ID on the worker-side job events.
# `|| true` matters: head -1 SIGPIPEs the upstream grep, and under
# pipefail + errexit that would kill the whole script silently.
TRACE=$(grep '"msg":"shard merged"' "$WORK/fleet-chaos-2.jsonl" | head -1 |
    grep -o '"trace":"[a-f0-9]*"' | cut -d'"' -f4 || true)
[ -n "$TRACE" ] || fail "no merged-shard trace in the coordinator log"
# Two-step on purpose: `grep | grep -q` under pipefail dies of SIGPIPE
# when -q short-circuits with upstream output still in flight.
grep -h "\"trace\":\"$TRACE\"" "$WORK"/worker-*.jsonl >"$WORK/trace-hits.txt" || true
grep -q '"component":"serve' "$WORK/trace-hits.txt" ||
    fail "trace $TRACE from the coordinator never appears in any worker log"
echo "fleet_chaos: C: resumed $RESUMED shards; report byte-identical; trace $TRACE spans coordinator and worker"

# --- Phase D: lease expiry via a stopped (but living) worker. ----------
echo "fleet_chaos: D: lease-expiry run (SIGSTOP a worker)"
for i in 1 2; do start_worker "$i"; done
start_coordinator "$(worker_urls 2)" "$WORK/report-lease.txt" "$WORK/fleet-lease.jsonl" \
    -lease 3s -missed-heartbeats 100000 -hedge-after=-1ms -breaker-threshold 100000
wait_shards_done 4 60
kill -STOP "${WORKER_PIDS[2]}"
echo "fleet_chaos: D: worker 2 stopped at $(shards_done) shards; waiting for lease expiry"
FOUND_EXPIRY=0
for _ in $(seq 1 300); do
    curl -fsS "$COORD_BASE/metrics?format=prom" >"$WORK/prom-lease.txt" 2>/dev/null || true
    if grep -q '^fleet_lease_expired' "$WORK/prom-lease.txt"; then
        FOUND_EXPIRY=1
        break
    fi
    kill -0 "$COORD_PID" 2>/dev/null || break
    sleep 0.1
done
kill -CONT "${WORKER_PIDS[2]}"
[ "$FOUND_EXPIRY" = 1 ] || fail "no lease expiry surfaced in the exposition with a stopped worker"
wait_coordinator 180
stop_workers
cmp "$WORK/report-direct.txt" "$WORK/report-lease.txt" ||
    fail "lease-expiry-run merged report differs from the direct run"
grep -q '"msg":"lease expired"' "$WORK/fleet-lease.jsonl" ||
    fail "no lease-expired events in the structured log"
echo "fleet_chaos: D: leases expired, shards re-dispatched, report byte-identical"

# --- Phase E: hedged re-dispatch of stragglers. ------------------------
echo "fleet_chaos: E: hedging run (aggressive hedge-after)"
for i in 1 2; do start_worker "$i"; done
start_coordinator "$(worker_urls 2)" "$WORK/report-hedge.txt" "$WORK/fleet-hedge.jsonl" \
    -hedge-after 1ms
wait_coordinator 180
stop_workers
cmp "$WORK/report-direct.txt" "$WORK/report-hedge.txt" ||
    fail "hedging-run merged report differs from the direct run"
grep -q '"hedge":true' "$WORK/fleet-hedge.jsonl" ||
    fail "no hedged leases in the hedging-run log"
# Every hedge resolves one of four ways, all logged: the hedge wins the
# merge; the loser notices and is cancelled; the loser's job finishes
# anyway and is discarded as a byte-checked duplicate; or the winner's
# proactive cancel lands first and the loser sees a canceled job.
HEDGE_OUTCOMES=$(grep -Ec '"msg":"shard merged".*"hedge":true|"msg":"hedge loser cancelled"|"msg":"duplicate result discarded"|"msg":"shard job did not complete".*"state":"canceled"' "$WORK/fleet-hedge.jsonl" || true)
[ "$HEDGE_OUTCOMES" -ge 1 ] || fail "hedges dispatched but no win, cancelled loser or discarded duplicate appears in the log"
echo "fleet_chaos: E: hedges dispatched and resolved; report byte-identical"

echo "fleet_chaos: PASS (byte-identical reports across {1,2,8} workers, SIGKILL chaos, lease expiry and hedging)"
