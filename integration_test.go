package ultrascalar

// Integration matrix: every architecture × option combination over the
// extended workload suite, cross-checked against the reference
// interpreter through the public API only.

import (
	"fmt"
	"testing"
)

func TestIntegrationMatrix(t *testing.T) {
	type variant struct {
		name string
		opts []Option
	}
	variants := []variant{
		{"plain", nil},
		{"shared-alus", []Option{WithSharedALUs(4)}},
		{"renaming", []Option{WithMemoryRenaming()}},
		{"trace-fetch", []Option{WithFetchModel(FetchTrace)}},
		{"block-fetch", []Option{WithFetchModel(FetchBlock)}},
		{"self-timed", []Option{WithSelfTimedForwarding(nil)}},
		{"mem-timing", []Option{WithMemoryTiming()}},
		{"butterfly", []Option{WithButterflyMemory()}},
		{"gshare", []Option{WithPredictor(GShare(10, 8))}},
		{"return-stack", []Option{WithReturnStack(16)}},
		{"everything", []Option{
			WithSharedALUs(8), WithMemoryRenaming(), WithReturnStack(16),
			WithFetchModel(FetchTrace), WithPredictor(GShare(10, 8)),
		}},
	}
	archs := []struct {
		arch Arch
		opts []Option
	}{
		{UltraI, nil},
		{UltraII, nil},
		{UltraII, []Option{WithUltra2WrapAround()}},
		{Hybrid, []Option{WithClusterSize(8)}},
	}
	suite := ExtendedKernels()
	if testing.Short() {
		suite = suite[:6]
	}
	for _, w := range suite {
		want, err := Reference(w.Prog, w.Mem())
		if err != nil {
			t.Fatalf("%s: reference: %v", w.Name, err)
		}
		for _, a := range archs {
			for _, v := range variants {
				name := fmt.Sprintf("%s/%s/%s", w.Name, a.arch, v.name)
				opts := append(append([]Option{}, a.opts...), v.opts...)
				p, err := New(a.arch, 32, opts...)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				res, err := p.Run(w.Prog, w.Mem())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for r := range want {
					if res.Regs[r] != want[r] {
						t.Fatalf("%s: r%d = %d, want %d", name, r, res.Regs[r], want[r])
					}
				}
			}
		}
	}
}
