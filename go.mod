module ultrascalar

go 1.22
