// Extensions: exercises the paper's Section 7 design extensions through
// the public API — a window-128 hybrid with 16 shared ALUs ("should fit
// easily within a chip 1 cm on a side"), memory renaming, a trace-cache
// fetch unit, and the self-timed forwarding model.
package main

import (
	"fmt"
	"log"

	"ultrascalar"
	"ultrascalar/internal/workload"
)

func main() {
	w := workload.DotProduct(100)

	configs := []struct {
		name string
		opts []ultrascalar.Option
	}{
		{"baseline (128 ALUs)", nil},
		{"16 shared ALUs", []ultrascalar.Option{ultrascalar.WithSharedALUs(16)}},
		{"4 shared ALUs", []ultrascalar.Option{ultrascalar.WithSharedALUs(4)}},
		{"+ memory renaming", []ultrascalar.Option{
			ultrascalar.WithSharedALUs(16), ultrascalar.WithMemoryRenaming()}},
		{"+ trace-cache fetch", []ultrascalar.Option{
			ultrascalar.WithSharedALUs(16), ultrascalar.WithMemoryRenaming(),
			ultrascalar.WithFetchModel(ultrascalar.FetchTrace)}},
		{"self-timed forwarding", []ultrascalar.Option{
			ultrascalar.WithSelfTimedForwarding(nil)}},
	}

	fmt.Println("Section 7 extensions on a window-128 hybrid (C=32), dot product:")
	fmt.Printf("%-24s %-8s %-8s %s\n", "configuration", "cycles", "IPC", "notes")
	for _, cfg := range configs {
		opts := append([]ultrascalar.Option{ultrascalar.WithClusterSize(32)}, cfg.opts...)
		p, err := ultrascalar.New(ultrascalar.Hybrid, 128, opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Run(w.Prog, w.Mem())
		if err != nil {
			log.Fatal(err)
		}
		notes := ""
		if res.Stats.LoadsForwarded > 0 {
			notes = fmt.Sprintf("%d loads forwarded", res.Stats.LoadsForwarded)
		}
		if res.Stats.ALUStarved > 0 {
			notes += fmt.Sprintf(" %d ALU-starved cycles", res.Stats.ALUStarved)
		}
		fmt.Printf("%-24s %-8d %-8.2f %s\n", cfg.name, res.Stats.Cycles, res.Stats.IPC(), notes)
	}

	// The paper's closing estimate: a window-128, 16-shared-ALU hybrid in
	// 0.1 µm "should fit easily within a chip 1 cm on a side". Scale the
	// 0.35 µm technology to 0.1 µm (λ = 0.05 µm) and check.
	tech := ultrascalar.DefaultTech()
	tech.LambdaMicrons = 0.05
	p, err := ultrascalar.New(ultrascalar.Hybrid, 128, ultrascalar.WithClusterSize(32))
	if err != nil {
		log.Fatal(err)
	}
	md, err := p.Physical(tech)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwindow-128 hybrid at 0.1um: %.2f x %.2f cm (paper: 'within 1 cm on a side',\n",
		tech.CM(md.WidthL), tech.CM(md.HeightL))
	fmt.Println("with 16 shared ALUs instead of 128 replicated ones shrinking it further)")
}
