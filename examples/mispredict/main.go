// Mispredict: demonstrates branch speculation and the Ultrascalar's
// single-cycle misprediction recovery ("Nothing needs to be done to
// recover from misprediction except to fetch new instructions from the
// correct program path"), comparing predictable and unpredictable branch
// behaviour under different predictors.
package main

import (
	"fmt"
	"log"

	"ultrascalar"
	"ultrascalar/internal/workload"
)

func main() {
	fmt.Println("Branchy workloads on a 32-station Ultrascalar I:")
	fmt.Printf("%-22s %-18s %-8s %-10s %-11s %-8s\n",
		"workload", "predictor", "cycles", "branches", "mispredicts", "squashed")
	for _, w := range []workload.Workload{
		workload.Branchy(500, true),
		workload.Branchy(500, false),
	} {
		for _, pred := range []ultrascalar.Predictor{
			ultrascalar.StaticPredictor(true),
			ultrascalar.Bimodal(10),
			ultrascalar.GShare(10, 8),
		} {
			p, err := ultrascalar.New(ultrascalar.UltraI, 32,
				ultrascalar.WithPredictor(pred))
			if err != nil {
				log.Fatal(err)
			}
			res, err := p.Run(w.Prog, w.Mem())
			if err != nil {
				log.Fatal(err)
			}
			s := res.Stats
			fmt.Printf("%-22s %-18s %-8d %-10d %-11d %-8d\n",
				w.Name, pred.Name(), s.Cycles, s.Branches, s.Mispredicts, s.Squashed)
		}
	}

	// Show the one-cycle recovery on a timeline: a mispredicted branch
	// squashes the wrong path; the correct path issues the next cycle.
	prog, err := ultrascalar.Assemble(`
		li r1, 1
		li r2, 2
		blt r1, r2, taken   ; taken, but a not-taken predictor guesses wrong
		add r3, r3, r3      ; wrong path
		halt
	taken:
		addi r4, r1, 10
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := ultrascalar.New(ultrascalar.UltraI, 8,
		ultrascalar.WithPredictor(ultrascalar.StaticPredictor(false)),
		ultrascalar.WithTimeline())
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(prog.Insts, ultrascalar.NewMemory())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovery demo: r4=%d, mispredicts=%d, squashed=%d\n",
		res.Regs[4], res.Stats.Mispredicts, res.Stats.Squashed)
	fmt.Println("retired timeline (seq, pc, [issue,done)):")
	for _, r := range res.Timeline {
		fmt.Printf("  seq %-3d pc %-3d [%d,%d)  %s\n", r.Seq, r.PC, r.Issue, r.Done, r.Inst)
	}
}
