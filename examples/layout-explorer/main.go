// Layout explorer: sweep station counts, register counts and memory
// bandwidths across the three architectures and print the resulting
// physical complexity — an interactive version of the paper's Figure 11,
// showing where each design wins.
package main

import (
	"fmt"
	"log"

	"ultrascalar"
)

func main() {
	tech := ultrascalar.DefaultTech()

	fmt.Println("Chip side (cm) by station count, L=32, M(n)=sqrt(n)")
	fmt.Printf("%-8s %-14s %-14s %-14s %s\n", "n", "UltraI", "UltraII", "Hybrid", "winner")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		sides := map[ultrascalar.Arch]float64{}
		for _, arch := range []ultrascalar.Arch{ultrascalar.UltraI, ultrascalar.UltraII, ultrascalar.Hybrid} {
			p, err := ultrascalar.New(arch, n)
			if err != nil {
				log.Fatal(err)
			}
			md, err := p.Physical(tech)
			if err != nil {
				log.Fatal(err)
			}
			sides[arch] = tech.CM(md.SideL())
		}
		winner := ultrascalar.UltraI
		for a, s := range sides {
			if s < sides[winner] {
				winner = a
			}
		}
		fmt.Printf("%-8d %-14.2f %-14.2f %-14.2f %s\n",
			n, sides[ultrascalar.UltraI], sides[ultrascalar.UltraII], sides[ultrascalar.Hybrid], winner)
	}
	fmt.Println("\nThe paper's crossover: the Ultrascalar II dominates the Ultrascalar I")
	fmt.Println("for n < O(L^2) = 1024, and loses beyond it; the hybrid dominates both")
	fmt.Println("for n >= L.")

	fmt.Println("\nClock period (ns) by bandwidth regime at n=1024, L=32")
	fmt.Printf("%-18s %-12s %-12s %-12s\n", "M(n)", "UltraI", "UltraII-mixed", "Hybrid")
	for _, m := range []struct {
		label string
		bw    ultrascalar.Bandwidth
	}{
		{"M(n)=1", ultrascalar.ConstBandwidth(1)},
		{"M(n)=sqrt(n)", ultrascalar.PowerBandwidth(1, 0.5)},
		{"M(n)=n", ultrascalar.LinearBandwidth()},
	} {
		var clocks []float64
		for _, cfg := range []struct {
			arch ultrascalar.Arch
			opts []ultrascalar.Option
		}{
			{ultrascalar.UltraI, nil},
			{ultrascalar.UltraII, []ultrascalar.Option{ultrascalar.WithUltra2Mode(2)}},
			{ultrascalar.Hybrid, nil},
		} {
			opts := append(cfg.opts, ultrascalar.WithBandwidth(m.bw))
			p, err := ultrascalar.New(cfg.arch, 1024, opts...)
			if err != nil {
				log.Fatal(err)
			}
			md, err := p.Physical(tech)
			if err != nil {
				log.Fatal(err)
			}
			clocks = append(clocks, md.ClockPs(tech)/1000)
		}
		fmt.Printf("%-18s %-12.1f %-12.1f %-12.1f\n", m.label, clocks[0], clocks[1], clocks[2])
	}
	fmt.Println("\n\"Memory bandwidth is the dominating factor in the design of")
	fmt.Println("large-scale processors\" — with M(n)=n all three grow alike.")
}
