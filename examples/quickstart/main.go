// Quickstart: assemble a small program, run it on all three Ultrascalar
// processors, and compare their architectural behaviour and physical
// complexity.
package main

import (
	"fmt"
	"log"

	"ultrascalar"
)

func main() {
	prog, err := ultrascalar.Assemble(`
		; sum of squares 1..10
		li r1, 10
		li r2, 0       ; accumulator
	loop:
		mul r3, r1, r1
		add r2, r2, r3
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}

	// The golden interpreter defines the architectural answer.
	regs, err := ultrascalar.Reference(prog.Insts, ultrascalar.NewMemory())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: sum of squares = %d\n\n", regs[2])

	tech := ultrascalar.DefaultTech()
	for _, arch := range []ultrascalar.Arch{
		ultrascalar.UltraI, ultrascalar.UltraII, ultrascalar.Hybrid,
	} {
		p, err := ultrascalar.New(arch, 64)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Run(prog.Insts, ultrascalar.NewMemory())
		if err != nil {
			log.Fatal(err)
		}
		md, err := p.Physical(tech)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s result=%d cycles=%d IPC=%.2f | side %.2f cm, %d gate delays, clock %.1f ns\n",
			arch, res.Regs[2], res.Stats.Cycles, res.Stats.IPC(),
			tech.CM(md.SideL()), md.GateDelay, md.ClockPs(tech)/1000)
	}
	fmt.Println("\nAll three produce identical results; they differ in cycles (refill")
	fmt.Println("granularity) and, far more, in physical complexity — the paper's point.")
}
