// ILP study: how much instruction-level parallelism each processor
// extracts as the window grows, on workloads with controlled dependence
// structure — the architectural side of the paper's scalability argument
// ("processors that scale well with the issue width [and] the window
// size").
package main

import (
	"fmt"
	"log"

	"ultrascalar"
	"ultrascalar/internal/workload"
)

func main() {
	workloads := []workload.Workload{
		workload.Chain(400),              // serial: ILP 1
		workload.MixedILP(400, 16, 4, 1), // short dependences
		workload.MixedILP(400, 16, 64, 1),
		workload.Parallel(400, 32), // fully independent
	}
	fmt.Println("IPC by window size (Ultrascalar I semantics, per-station refill)")
	fmt.Printf("%-22s", "workload")
	windows := []int{4, 8, 16, 32, 64}
	for _, n := range windows {
		fmt.Printf("  n=%-4d", n)
	}
	fmt.Println()
	for _, w := range workloads {
		fmt.Printf("%-22s", w.Description[:min(22, len(w.Description))])
		for _, n := range windows {
			p, err := ultrascalar.New(ultrascalar.UltraI, n)
			if err != nil {
				log.Fatal(err)
			}
			res, err := p.Run(w.Prog, w.Mem())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6.2f", res.Stats.IPC())
		}
		fmt.Println()
	}

	fmt.Println("\nBatch-refill penalty (n=32): cycles on each architecture")
	fmt.Printf("%-22s %-10s %-10s %-10s\n", "workload", "UltraI", "Hybrid C=8", "UltraII")
	for _, w := range workloads {
		var cycles []int64
		for _, cfg := range []struct {
			arch ultrascalar.Arch
			opts []ultrascalar.Option
		}{
			{ultrascalar.UltraI, nil},
			{ultrascalar.Hybrid, []ultrascalar.Option{ultrascalar.WithClusterSize(8)}},
			{ultrascalar.UltraII, nil},
		} {
			p, err := ultrascalar.New(cfg.arch, 32, cfg.opts...)
			if err != nil {
				log.Fatal(err)
			}
			res, err := p.Run(w.Prog, w.Mem())
			if err != nil {
				log.Fatal(err)
			}
			cycles = append(cycles, res.Stats.Cycles)
		}
		fmt.Printf("%-22s %-10d %-10d %-10d\n",
			w.Description[:min(22, len(w.Description))], cycles[0], cycles[1], cycles[2])
	}
}
