package ultrascalar

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact through internal/exp and reports the
// headline quantity as custom benchmark metrics, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. The
// rendered reports are printed once under -v via the cmd/ tools; here the
// numbers are attached to the benchmark output.

import (
	"testing"

	"ultrascalar/internal/exp"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

// BenchmarkFigure3Timing regenerates the paper's Figure 3 timing diagram
// (the 8-instruction sequence; 12 cycles end to end).
func BenchmarkFigure3Timing(b *testing.B) {
	var last int64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		last = rows[3].Done // the final instruction ends at cycle 12
	}
	b.ReportMetric(float64(last), "total-cycles")
}

// BenchmarkFigure11Table regenerates the paper's Figure 11 complexity
// table: the measured area exponents of the four datapaths in the
// low-bandwidth regime are attached as metrics.
func BenchmarkFigure11Table(b *testing.B) {
	var cells []exp.Figure11Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = exp.Figure11(32, 32, 64, 4096, vlsi.Tech035())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Regime == "M(n)=O(n^1/2-e)" && c.Quantity == "area" {
			switch c.Arch {
			case exp.ArchUltra1:
				b.ReportMetric(c.Fit.Exponent, "ultra1-area-exp")
			case exp.ArchUltra2Linear:
				b.ReportMetric(c.Fit.Exponent, "ultra2-area-exp")
			case exp.ArchHybrid:
				b.ReportMetric(c.Fit.Exponent, "hybrid-area-exp")
			}
		}
	}
}

// BenchmarkFigure12Layout regenerates the paper's Figure 12 empirical
// layout comparison (the ~11.5x density ratio).
func BenchmarkFigure12Layout(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure12(vlsi.Tech035())
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.DensityRatio
	}
	b.ReportMetric(ratio, "density-ratio")
}

// BenchmarkUltra1Recurrence regenerates the Section 3 / Figure 6 X(n)
// recurrence comparison (E4).
func BenchmarkUltra1Recurrence(b *testing.B) {
	var rows []exp.RecurrenceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.UltraIRecurrence(32, 32, 64, 4096, vlsi.Tech035())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ModelExp, "case1-side-exp")
	b.ReportMetric(rows[3].ModelExp, "linearM-side-exp")
}

// BenchmarkUltra2Scaling regenerates the Figures 7-8 / Section 5
// comparison of the three Ultrascalar II implementations (E5).
func BenchmarkUltra2Scaling(b *testing.B) {
	var rows []exp.Ultra2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Ultra2Scaling(32, 32, 64, 1024, vlsi.Tech035())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.GateLin), "gates-linear")
	b.ReportMetric(float64(last.GateLog), "gates-log")
	b.ReportMetric(last.SideLog/last.SideLin, "side-log-factor")
}

// BenchmarkHybridClusterSweep regenerates the Section 6 / Figure 10
// cluster-size optimum (E6): the minimum must land at C = Θ(L).
func BenchmarkHybridClusterSweep(b *testing.B) {
	var best int
	for i := 0; i < b.N; i++ {
		var err error
		_, best, err = exp.ClusterSweep(4096, 32, 32, vlsi.Tech035())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(best), "optimal-C(L=32)")
}

// BenchmarkThreeDimensional regenerates the Section 7 3D packaging
// comparison (E7).
func BenchmarkThreeDimensional(b *testing.B) {
	var h vlsi.Volume3D
	for i := 0; i < b.N; i++ {
		h = vlsi.Hybrid3D(4096, 32, memory.MConst(1))
	}
	b.ReportMetric(float64(h.Cluster), "optimal-3d-C(L=32)")
	b.ReportMetric(h.Volume, "hybrid-3d-volume")
}

// BenchmarkProcessorIPC regenerates the architectural comparison (E8):
// IPC of the three processors over the kernel suite.
func BenchmarkProcessorIPC(b *testing.B) {
	var rows []exp.IPCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.IPC(16, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	var u1, hy, u2 float64
	for _, r := range rows {
		u1 += r.IPCU1
		hy += r.IPCHy
		u2 += r.IPCU2
	}
	n := float64(len(rows))
	b.ReportMetric(u1/n, "mean-IPC-ultra1")
	b.ReportMetric(hy/n, "mean-IPC-hybrid")
	b.ReportMetric(u2/n, "mean-IPC-ultra2")
}

// BenchmarkLocalCommunication regenerates the Section 7 self-timed
// locality estimate (E9): the fraction of operands produced by the
// immediately preceding instruction.
func BenchmarkLocalCommunication(b *testing.B) {
	var rows []exp.LocalityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Locality(64)
		if err != nil {
			b.Fatal(err)
		}
	}
	var prev float64
	for _, r := range rows {
		prev += r.FromPrevious
	}
	b.ReportMetric(prev/float64(len(rows)), "mean-frac-dist1")
}

// BenchmarkCircuitDepths regenerates the netlist depth measurements (E10)
// behind the paper's gate-delay claims.
func BenchmarkCircuitDepths(b *testing.B) {
	var rows []exp.CircuitDepthRow
	for i := 0; i < b.N; i++ {
		rows = exp.CircuitDepths(8, 8, 64)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.RingDepth), "ring-depth-64")
	b.ReportMetric(float64(last.TreeDepth), "tree-depth-64")
}

// BenchmarkEndToEnd regenerates the combined architecture+VLSI runtime
// comparison (E11).
func BenchmarkEndToEnd(b *testing.B) {
	var rows []exp.EndToEndRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.EndToEnd(32, 32, []int{256}, vlsi.Tech035())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Arch {
		case "Ultrascalar I":
			b.ReportMetric(r.TimeUs, "ultra1-us")
		case "Hybrid Ultrascalar":
			b.ReportMetric(r.TimeUs, "hybrid-us")
		}
	}
}

// BenchmarkSharedALUs regenerates the Section 7 shared-ALU ablation
// (E12): a window-128 hybrid with a pool of 16 ALUs.
func BenchmarkSharedALUs(b *testing.B) {
	var rows []exp.SharedALURow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.SharedALUs(128, []int{16, 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].IPC, "IPC-16alus")
	b.ReportMetric(rows[1].IPC, "IPC-128alus")
}

// BenchmarkSelfTimed regenerates the Section 7 self-timed estimate (E13).
func BenchmarkSelfTimed(b *testing.B) {
	var rows []exp.SelfTimedRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.SelfTimed(32)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64
	for _, r := range rows {
		if r.Slowdown > worst {
			worst = r.Slowdown
		}
	}
	b.ReportMetric(worst, "worst-cycle-ratio")
}

// BenchmarkMemoryRenaming regenerates the Section 7 memory-renaming
// ablation (E14).
func BenchmarkMemoryRenaming(b *testing.B) {
	var rows []exp.RenamingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.MemRenaming(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0] // M(n)=1
	b.ReportMetric(float64(r.BaseCycles)/float64(r.RenamedCycles), "speedup-at-M1")
	b.ReportMetric(float64(r.ForwardedLoads), "forwarded-loads")
}

// BenchmarkFetchModels regenerates the fetch-mechanism comparison (E15).
func BenchmarkFetchModels(b *testing.B) {
	var rows []exp.FetchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.FetchModels(64)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Workload == "jumpy" {
			b.ReportMetric(float64(r.Block)/float64(r.TraceCycles), "trace-speedup-vs-block")
		}
	}
}

// BenchmarkLargeL regenerates the large-register-file comparison (E16).
func BenchmarkLargeL(b *testing.B) {
	var rows []exp.LargeLRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.LargeL(vlsi.Tech035())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].AreaRatio, "64x64-area-ratio")
}

// BenchmarkClusterCaches regenerates the distributed cluster-cache
// ablation (E17).
func BenchmarkClusterCaches(b *testing.B) {
	var rows []exp.ClusterCacheRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.ClusterCaches(16, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(float64(r.BaseCycles)/float64(r.CacheCycles), "rescan-speedup")
}

// BenchmarkGateLevelValidation regenerates E18: the kernel suite through
// the actual CSPP and grid netlists.
func BenchmarkGateLevelValidation(b *testing.B) {
	var rows []exp.GateLevelRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.GateLevel(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	matches := 0
	for _, r := range rows {
		if r.Match {
			matches++
		}
	}
	b.ReportMetric(float64(matches), "kernels-matching")
	b.ReportMetric(float64(len(rows)), "kernels-total")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per second) of the cycle engine on the kernel suite.
func BenchmarkSimulatorThroughput(b *testing.B) {
	ws := workload.Kernels()
	p, err := New(Hybrid, 64, WithClusterSize(32))
	if err != nil {
		b.Fatal(err)
	}
	var insts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ws[i%len(ws)]
		res, err := p.Run(w.Prog, w.Mem())
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Stats.Retired
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-inst/s")
}
