package ultrascalar_test

import (
	"fmt"

	"ultrascalar"
)

// The basic flow: assemble, run, inspect.
func Example() {
	prog, err := ultrascalar.Assemble(`
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		halt
	`)
	if err != nil {
		panic(err)
	}
	p, err := ultrascalar.New(ultrascalar.UltraI, 8)
	if err != nil {
		panic(err)
	}
	res, err := p.Run(prog.Insts, ultrascalar.NewMemory())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Regs[3])
	// Output: 42
}

// All three architectures compute identical results; they differ in how
// stations refill and in physical complexity.
func ExampleNew() {
	prog, _ := ultrascalar.Assemble(`
		li r1, 100
		li r2, 23
		sub r3, r1, r2
		halt
	`)
	for _, arch := range []ultrascalar.Arch{
		ultrascalar.UltraI, ultrascalar.UltraII, ultrascalar.Hybrid,
	} {
		p, _ := ultrascalar.New(arch, 16)
		res, _ := p.Run(prog.Insts, ultrascalar.NewMemory())
		fmt.Println(arch, res.Regs[3])
	}
	// Output:
	// Ultrascalar I 77
	// Ultrascalar II 77
	// Hybrid Ultrascalar 77
}

// Physical models expose the paper's complexity quantities.
func ExampleProcessor_Physical() {
	p, _ := ultrascalar.New(ultrascalar.Hybrid, 128, ultrascalar.WithClusterSize(32))
	tech := ultrascalar.DefaultTech()
	md, _ := p.Physical(tech)
	fmt.Printf("stations=%d gate-delays>0: %v area>0: %v\n",
		md.N, md.GateDelay > 0, md.AreaL2() > 0)
	// Output: stations=128 gate-delays>0: true area>0: true
}

// The reference interpreter is the architectural oracle.
func ExampleReference() {
	prog, _ := ultrascalar.Assemble(`
		li r1, 5
		li r2, 4
		mul r3, r1, r2
		addi r3, r3, 2
		halt
	`)
	regs, _ := ultrascalar.Reference(prog.Insts, ultrascalar.NewMemory())
	fmt.Println(regs[3])
	// Output: 22
}
