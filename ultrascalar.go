// Package ultrascalar is a library reproduction of "A Comparison of
// Scalable Superscalar Processors" (Kuszmaul, Henry and Loh, SPAA 1999).
//
// It provides cycle-accurate simulators of the paper's three scalable
// out-of-order processors — the Ultrascalar I, the Ultrascalar II and the
// hybrid Ultrascalar — together with constructive VLSI models (floorplans,
// wire lengths, gate-delay netlists) that regenerate the paper's
// complexity comparison, and an assembler plus reference interpreter for
// the simple RISC ISA the processors execute.
//
// Quick start:
//
//	prog, _ := ultrascalar.Assemble(`
//	    li r1, 6
//	    li r2, 7
//	    mul r3, r1, r2
//	    halt
//	`)
//	p, _ := ultrascalar.New(ultrascalar.Hybrid, 64, ultrascalar.WithClusterSize(32))
//	res, _ := p.Run(prog.Insts, ultrascalar.NewMemory())
//	fmt.Println(res.Regs[3], res.Stats.IPC())
//
// The physical side:
//
//	model, _ := p.Physical(ultrascalar.DefaultTech())
//	fmt.Println(model.GateDelay, model.MaxWireL, model.AreaL2())
package ultrascalar

import (
	"context"
	"fmt"
	"time"

	"ultrascalar/internal/asm"
	"ultrascalar/internal/branch"
	"ultrascalar/internal/core"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/gatesim"
	"ultrascalar/internal/hybrid"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/ultra2"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

// Re-exported core types. Aliases keep the internal packages private
// while making their values fully usable by external callers.
type (
	// Word is the 32-bit architectural machine word.
	Word = isa.Word
	// Inst is a decoded instruction.
	Inst = isa.Inst
	// Latencies configures instruction latencies.
	Latencies = isa.Latencies
	// Program is an assembled program with its symbol table.
	Program = asm.Program
	// Memory is word-addressed data memory.
	Memory = memory.Flat
	// Bandwidth is the paper's M(n) memory-bandwidth function.
	Bandwidth = memory.MFunc
	// RunResult is a simulation outcome: architectural state plus counters.
	RunResult = core.Result
	// Stats aggregates run counters.
	Stats = core.Stats
	// InstRecord is one retired instruction's timing.
	InstRecord = core.InstRecord
	// PhysicalModel summarizes a processor's VLSI complexity.
	PhysicalModel = vlsi.Model
	// Tech holds technology and cell-library parameters.
	Tech = vlsi.Tech
	// Predictor predicts conditional branch directions.
	Predictor = branch.Predictor
	// Workload is a runnable program plus its initial memory.
	Workload = workload.Workload
	// Tracer records pipeline events into a preallocated slab; build one
	// with NewTracer or NewRingTracer and attach it via WithTracer.
	Tracer = obs.Tracer
	// TraceEvent is one recorded pipeline event.
	TraceEvent = obs.Event
	// MetricsRegistry holds named counters, gauges and histograms with
	// periodic snapshots; attach one via WithMetrics.
	MetricsRegistry = obs.Registry
	// FaultPlan is a deterministic fault schedule; build one with
	// NewFaultPlan and attach it via WithFaultInjection.
	FaultPlan = fault.Plan
	// FaultSite names a microarchitectural fault site.
	FaultSite = fault.Site
	// FaultDetect selects the modeled fault-detection hardware.
	FaultDetect = fault.Detect
	// FaultLog records what happened during a faulted run: faults applied,
	// detections, recoveries and watchdog fires.
	FaultLog = fault.Log
	// FaultGenParams bounds random fault-plan generation.
	FaultGenParams = fault.GenParams
)

// Fault-injection constructors and constants, re-exported from
// internal/fault.
var (
	// NewFaultPlan generates a deterministic fault plan from a seed.
	NewFaultPlan = fault.NewPlan
	// DecodeFaultPlan parses a plan from its stable text encoding.
	DecodeFaultPlan = fault.DecodePlan
	// AllFaultSites returns every defined fault site.
	AllFaultSites = fault.AllSites
)

// The fault-detection modes.
const (
	// FaultDetectNone commits whatever the faulted datapath produced.
	FaultDetectNone = fault.DetectNone
	// FaultDetectParity models per-value parity checked at commit.
	FaultDetectParity = fault.DetectParity
	// FaultDetectGolden cross-checks every retiring instruction against
	// the in-order golden machine (DIVA-style) before it commits.
	FaultDetectGolden = fault.DetectGolden
)

// Tracer and metrics constructors, re-exported from internal/obs.
var (
	// NewTracer returns a tracer keeping the first capacity events.
	NewTracer = obs.NewTracer
	// NewRingTracer returns a flight-recorder tracer keeping the last
	// capacity events.
	NewRingTracer = obs.NewRingTracer
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
)

// Arch selects one of the paper's three processor architectures.
type Arch int

// The three compared architectures.
const (
	// UltraI is the Ultrascalar I: per-station refill, H-tree CSPP layout.
	UltraI Arch = iota
	// UltraII is the Ultrascalar II: batch refill, grid datapath.
	UltraII
	// Hybrid is the hybrid Ultrascalar: cluster refill, grids in an H-tree.
	Hybrid
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case UltraI:
		return ultra1.Name
	case UltraII:
		return ultra2.Name
	case Hybrid:
		return hybrid.Name
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// Processor is a configured instance of one architecture.
type Processor struct {
	arch    Arch
	n       int // window / issue width
	c       int // hybrid cluster size
	l       int // logical registers
	w       int // bits per register (physical model)
	m       Bandwidth
	base    core.Config
	mode    vlsi.Ultra2Mode
	wrap    bool // Ultrascalar II wrap-around variant
	ctx     context.Context
	timeout time.Duration
}

// Option configures a Processor.
type Option func(*Processor) error

// WithClusterSize sets the hybrid's cluster size C (default min(L, n)).
func WithClusterSize(c int) Option {
	return func(p *Processor) error {
		if c < 1 {
			return fmt.Errorf("ultrascalar: cluster size must be >= 1")
		}
		p.c = c
		return nil
	}
}

// WithRegisters sets L, the number of logical registers (default 32).
func WithRegisters(l int) Option {
	return func(p *Processor) error {
		p.l = l
		p.base.NumRegs = l
		return nil
	}
}

// WithRegisterWidth sets W, the register width used by the physical model
// (default 32).
func WithRegisterWidth(w int) Option {
	return func(p *Processor) error {
		if w < 1 {
			return fmt.Errorf("ultrascalar: register width must be >= 1")
		}
		p.w = w
		return nil
	}
}

// WithBandwidth sets the memory-bandwidth function M(n) used by both the
// physical model and the fat-tree timing model (default M(n) = √n).
func WithBandwidth(m Bandwidth) Option {
	return func(p *Processor) error {
		p.m = m
		return nil
	}
}

// WithMemoryTiming enables the fat-tree/interleaved-cache timing model
// instead of fixed-latency memory.
func WithMemoryTiming() Option {
	return func(p *Processor) error {
		cfg := memory.DefaultConfig(p.n, p.m)
		p.base.MemSystem = memory.NewSystem(cfg)
		return nil
	}
}

// WithButterflyMemory routes memory accesses through a butterfly network
// instead of a fat tree — the paper's stated alternative interconnect
// ("via two fat-tree or butterfly networks"). Total bandwidth is n, but
// conflicting station→bank routes block inside the network.
func WithButterflyMemory() Option {
	return func(p *Processor) error {
		banks := p.m.Of(p.n)
		p.base.MemSystem = memory.NewButterfly(p.n, banks, 1, 2)
		return nil
	}
}

// WithClusterCaches enables the fat-tree timing model with a distributed
// per-cluster cache of the given line count (paper Section 7: "a cache
// distributed among the clusters"). The cluster size follows the
// processor's cluster size.
func WithClusterCaches(lines int) Option {
	return func(p *Processor) error {
		cfg := memory.DefaultConfig(p.n, p.m)
		cfg.ClusterSize = p.ClusterSize()
		cfg.ClusterLines = lines
		cfg.ClusterHitLatency = 1
		p.base.MemSystem = memory.NewSystem(cfg)
		return nil
	}
}

// WithSharedALUs limits the processor to a pool of n shared arithmetic
// units, allocated oldest first (paper Section 7; Ultrascalar Memo 2).
func WithSharedALUs(n int) Option {
	return func(p *Processor) error {
		if n < 1 {
			return fmt.Errorf("ultrascalar: shared ALU count must be >= 1")
		}
		p.base.NumALUs = n
		return nil
	}
}

// WithSelfTimedForwarding models the pipelined/self-timed datapath of the
// paper's Section 7: forwarding a value d instructions ahead costs
// latency(d) extra cycles. Pass nil for the default ceil(log2 d) shape.
func WithSelfTimedForwarding(latency func(d int) int) Option {
	return func(p *Processor) error {
		if latency == nil {
			latency = func(d int) int {
				if d <= 1 {
					return 0
				}
				extra := 0
				for 1<<extra < d {
					extra++
				}
				return extra
			}
		}
		p.base.ForwardLatency = latency
		return nil
	}
}

// WithMemoryRenaming enables store-to-load forwarding through the window
// (paper Section 7).
func WithMemoryRenaming() Option {
	return func(p *Processor) error {
		p.base.MemRenaming = true
		return nil
	}
}

// FetchModel selects the instruction-fetch mechanism.
type FetchModel = core.FetchModel

// The fetch models.
const (
	// FetchIdeal supplies the full fetch width along the predicted path.
	FetchIdeal = core.FetchIdeal
	// FetchBlock stops each cycle's fetch at the first taken transfer.
	FetchBlock = core.FetchBlock
	// FetchTrace backs block fetch with an instruction trace cache.
	FetchTrace = core.FetchTrace
)

// WithFetchModel selects the fetch mechanism (default FetchIdeal).
func WithFetchModel(fm FetchModel) Option {
	return func(p *Processor) error {
		p.base.Fetch = fm
		return nil
	}
}

// WithFetchWidth caps instructions fetched per cycle (default: the
// window size).
func WithFetchWidth(w int) Option {
	return func(p *Processor) error {
		if w < 1 {
			return fmt.Errorf("ultrascalar: fetch width must be >= 1")
		}
		p.base.FetchWidth = w
		return nil
	}
}

// WithReturnStack enables a return-address stack of the given depth: JAL
// pushes, JALR predicts by popping — perfect return prediction on
// well-nested code.
func WithReturnStack(depth int) Option {
	return func(p *Processor) error {
		if depth < 1 {
			return fmt.Errorf("ultrascalar: return stack depth must be >= 1")
		}
		p.base.ReturnStack = depth
		return nil
	}
}

// WithPredictor sets the branch predictor.
func WithPredictor(pr Predictor) Option {
	return func(p *Processor) error {
		p.base.Predictor = pr
		return nil
	}
}

// WithLatencies sets instruction latencies.
func WithLatencies(l Latencies) Option {
	return func(p *Processor) error {
		p.base.Lat = l
		return nil
	}
}

// WithInitialRegisters sets the initial committed register values.
func WithInitialRegisters(regs []Word) Option {
	return func(p *Processor) error {
		p.base.InitRegs = regs
		return nil
	}
}

// WithTimeline records per-instruction issue/completion cycles in results.
func WithTimeline() Option {
	return func(p *Processor) error {
		p.base.KeepTimeline = true
		return nil
	}
}

// WithMaxCycles bounds the simulation.
func WithMaxCycles(n int64) Option {
	return func(p *Processor) error {
		p.base.MaxCycles = n
		return nil
	}
}

// WithTracer attaches a pipeline event tracer: every fetch, issue,
// completion, retirement, squash and operand forward is recorded with
// its cycle, station and payload. Recording is allocation-free; with no
// tracer attached the engine's measured hot path is unchanged.
func WithTracer(t *Tracer) Option {
	return func(p *Processor) error {
		p.base.Tracer = t
		return nil
	}
}

// WithMetrics attaches a metrics registry snapshotted every `every`
// cycles (0 = the 1024-cycle default). The engine publishes occupancy,
// IPC and the fetch/retire/squash/mispredict counters.
func WithMetrics(r *MetricsRegistry, every int64) Option {
	return func(p *Processor) error {
		p.base.Metrics = r
		p.base.MetricsEvery = every
		return nil
	}
}

// WithFaultInjection arms deterministic fault injection: the plan's
// faults strike the simulated microarchitecture at their scheduled
// cycles, detect selects the modeled checker (parity or a golden
// cross-check; detected faults are repaired by squash-and-replay, so
// they cost cycles, not correctness), and log (optional) records the
// fault lifecycle. With no plan attached the engine's measured hot path
// is unchanged.
func WithFaultInjection(plan *FaultPlan, detect FaultDetect, log *FaultLog) Option {
	return func(p *Processor) error {
		p.base.FaultPlan = plan
		p.base.FaultDetect = detect
		p.base.FaultLog = log
		return nil
	}
}

// WithWatchdog sets the no-retire-progress watchdog threshold in cycles:
// a run that goes that long without retiring while provably unable to
// make progress fails with ErrLivelock (or triggers recovery during
// fault runs). The default is max(4×window, 64); negative disables.
func WithWatchdog(cycles int64) Option {
	return func(p *Processor) error {
		p.base.Watchdog = cycles
		return nil
	}
}

// ErrLivelock is returned (wrapped in a diagnostic snapshot) when the
// watchdog detects that retirement can no longer make progress.
var ErrLivelock = core.ErrLivelock

// LivelockError is the watchdog's diagnostic snapshot; errors.Is matches
// ErrLivelock and errors.As extracts the snapshot.
type LivelockError = core.LivelockError

// CanceledError is returned when a context-bounded run is abandoned:
// errors.Is matches context.Canceled or context.DeadlineExceeded, and
// errors.As extracts the cycle the cancellation was observed at.
type CanceledError = core.CanceledError

// WithContext bounds every Run by ctx: the engine probes the context
// once per watchdog interval from its per-cycle chain (nil-guarded and
// allocation-free, so the measured hot path is unchanged) and returns a
// *CanceledError once the context is canceled or past its deadline.
func WithContext(ctx context.Context) Option {
	return func(p *Processor) error {
		p.ctx = ctx
		return nil
	}
}

// WithDeadline bounds every Run to at most d of wall time, layered on
// top of any WithContext context. Each run gets its own timer, so a
// processor configured once can serve many requests.
func WithDeadline(d time.Duration) Option {
	return func(p *Processor) error {
		if d <= 0 {
			return fmt.Errorf("ultrascalar: deadline must be > 0, got %v", d)
		}
		p.timeout = d
		return nil
	}
}

// WithUltra2Mode selects the Ultrascalar II datapath implementation for
// the physical model: 0 linear (Figure 7), 1 mesh of trees (Figure 8),
// 2 mixed (Section 5). Default linear.
func WithUltra2Mode(mode int) Option {
	return func(p *Processor) error {
		if mode < 0 || mode > 2 {
			return fmt.Errorf("ultrascalar: bad Ultrascalar II mode %d", mode)
		}
		p.mode = vlsi.Ultra2Mode(mode)
		return nil
	}
}

// WithUltra2WrapAround selects the wrap-around Ultrascalar II variant the
// paper mentions in Section 4: stations refill individually like the
// Ultrascalar I, at "nearly a factor of two" in grid area.
func WithUltra2WrapAround() Option {
	return func(p *Processor) error {
		if p.arch != UltraII {
			return fmt.Errorf("ultrascalar: wrap-around applies to the Ultrascalar II only")
		}
		p.wrap = true
		return nil
	}
}

// New builds a processor of the given architecture with an n-station
// window.
func New(arch Arch, n int, opts ...Option) (*Processor, error) {
	if n < 1 {
		return nil, fmt.Errorf("ultrascalar: window must be >= 1, got %d", n)
	}
	p := &Processor{arch: arch, n: n, l: isa.NumRegs, w: 32, m: memory.MPow(1, 0.5)}
	for _, o := range opts {
		if err := o(p); err != nil {
			return nil, err
		}
	}
	if p.c == 0 {
		p.c = p.l
		if p.c > n {
			p.c = n
		}
	}
	if arch == Hybrid && n%p.c != 0 {
		return nil, fmt.Errorf("ultrascalar: cluster size %d must divide window %d", p.c, n)
	}
	return p, nil
}

// Arch returns the processor's architecture.
func (p *Processor) Arch() Arch { return p.arch }

// Window returns n, the station count.
func (p *Processor) Window() int { return p.n }

// ClusterSize returns the hybrid cluster size (n for UltraII, 1 for
// UltraI).
func (p *Processor) ClusterSize() int {
	switch p.arch {
	case UltraI:
		return 1
	case UltraII:
		if p.wrap {
			return 1 // the wrap-around variant refills per station
		}
		return p.n
	default:
		return p.c
	}
}

// Run executes prog against mem (mutated in place), bounded by any
// WithContext context and WithDeadline timeout.
func (p *Processor) Run(prog []Inst, mem *Memory) (*RunResult, error) {
	return p.RunCtx(p.ctx, prog, mem)
}

// RunCtx is Run bounded by an explicit per-call context (overriding any
// WithContext option; the WithDeadline timeout still applies on top).
// When the context is canceled or its deadline passes, the run is
// abandoned within one watchdog interval and a *CanceledError is
// returned.
func (p *Processor) RunCtx(ctx context.Context, prog []Inst, mem *Memory) (*RunResult, error) {
	cfg := p.base
	cfg.Window = p.n
	cfg.Granularity = p.ClusterSize()
	if p.timeout > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, p.timeout)
		defer cancel()
	}
	return core.RunCtx(ctx, prog, mem, cfg)
}

// Physical returns the processor's VLSI model under the technology t.
func (p *Processor) Physical(t Tech) (*PhysicalModel, error) {
	switch p.arch {
	case UltraI:
		return ultra1.Model(p.n, p.l, p.w, p.m, t)
	case UltraII:
		if p.wrap {
			return vlsi.Ultra2WrapModel(p.n, p.l, p.w, p.m, t, p.mode)
		}
		return ultra2.Model(p.n, p.l, p.w, p.m, t, p.mode)
	default:
		return hybrid.Model(p.n, p.c, p.l, p.w, p.m, t)
	}
}

// GateLevelResult is the outcome of a gate-level run.
type GateLevelResult = gatesim.Result

// RunGateLevel executes prog on a gate-level implementation of the
// architecture: register forwarding and sequencing are computed by
// evaluating the generated CSPP/grid netlists every cycle (see
// internal/gatesim). c is the hybrid cluster size (ignored otherwise).
// Gate-level runs follow the architectural path (no speculation) and use
// fixed-latency memory; they exist for validation, not performance
// modeling.
func RunGateLevel(arch Arch, prog []Inst, mem *Memory, n, c int) (*GateLevelResult, error) {
	switch arch {
	case UltraI:
		return gatesim.Run(prog, mem, gatesim.Config{Window: n, NumRegs: isa.NumRegs, Width: 32})
	case UltraII:
		return gatesim.RunUltra2(prog, mem, gatesim.Config{Window: n, NumRegs: isa.NumRegs, Width: 32})
	case Hybrid:
		return gatesim.RunHybrid(prog, mem, gatesim.HybridConfig{
			Window: n, Cluster: c, NumRegs: isa.NumRegs, Width: 32,
		})
	default:
		return nil, fmt.Errorf("ultrascalar: unknown architecture %v", arch)
	}
}

// Assemble translates assembler source into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders instructions as assembler source.
func Disassemble(prog []Inst) string { return asm.Disassemble(prog) }

// NewMemory returns empty data memory.
func NewMemory() *Memory { return memory.NewFlat() }

// Reference runs prog on the golden sequential interpreter and returns
// the final register file and memory. All simulators produce identical
// architectural results.
func Reference(prog []Inst, mem *Memory) ([]Word, error) {
	res, err := ref.Run(prog, mem, ref.Config{})
	if err != nil {
		return nil, err
	}
	return res.Regs, nil
}

// DefaultTech returns the paper's 0.35 µm, three-metal-layer technology.
func DefaultTech() Tech { return vlsi.Tech035() }

// DefaultLatencies returns the paper's Figure 3 latencies (add 1, mul 3,
// div 10).
func DefaultLatencies() Latencies { return isa.DefaultLatencies() }

// ConstBandwidth returns M(n) = c.
func ConstBandwidth(c int) Bandwidth { return memory.MConst(c) }

// PowerBandwidth returns M(n) = c·n^p.
func PowerBandwidth(c, p float64) Bandwidth { return memory.MPow(c, p) }

// LinearBandwidth returns M(n) = n.
func LinearBandwidth() Bandwidth { return memory.MLinear() }

// Kernels returns the built-in benchmark kernel suite.
func Kernels() []Workload { return workload.Kernels() }

// ExtendedKernels returns the broadened workload suite (search, checksum,
// sieve, array kernels and synthetic fetch/cache stressors).
func ExtendedKernels() []Workload { return workload.ExtendedKernels() }

// Bimodal returns a 2-bit-counter branch predictor with 2^bits entries.
func Bimodal(bits int) Predictor { return branch.Bimodal(bits) }

// GShare returns a gshare branch predictor.
func GShare(bits, hbits int) Predictor { return branch.GShare(bits, hbits) }

// StaticPredictor returns an always-taken or always-not-taken predictor.
func StaticPredictor(taken bool) Predictor { return branch.Static(taken) }

// TournamentPredictor returns a chooser-based combination of two
// predictors (McFarling-style).
func TournamentPredictor(a, b Predictor, bits int) Predictor {
	return branch.Tournament(a, b, bits)
}
