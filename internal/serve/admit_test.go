package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/obs"
)

// --- delay-controller unit tests (pure state machine, synthetic time) ---

func TestAdmitStateEscalatesPerIntervalAndResets(t *testing.T) {
	a := admitState{target: 50 * time.Millisecond, interval: 100 * time.Millisecond}
	t0 := time.Unix(1_000_000, 0)

	// Below target: nothing sheds.
	a.observe(10*time.Millisecond, t0)
	if a.level != 0 || a.sheds(classSim) {
		t.Fatalf("below target: level=%d", a.level)
	}
	// A burst above target gets a full interval of grace.
	a.observe(80*time.Millisecond, t0)
	a.observe(80*time.Millisecond, t0.Add(50*time.Millisecond))
	if a.level != 0 {
		t.Fatalf("within grace interval: level=%d, want 0", a.level)
	}
	// One full interval continuously above target: shed sims only.
	a.observe(80*time.Millisecond, t0.Add(110*time.Millisecond))
	if a.level != 1 || !a.sheds(classSim) || a.sheds(classSweep) || a.sheds(classCampaign) {
		t.Fatalf("after one interval: level=%d", a.level)
	}
	// Two intervals: sweeps shed too; campaigns never.
	a.observe(200*time.Millisecond, t0.Add(220*time.Millisecond))
	if a.level != 2 || !a.sheds(classSweep) || a.sheds(classCampaign) {
		t.Fatalf("after two intervals: level=%d", a.level)
	}
	// Level is capped below the campaign class no matter how long the
	// overload lasts.
	a.observe(5*time.Second, t0.Add(10*time.Second))
	if a.level != maxShedLevel || a.sheds(classCampaign) {
		t.Fatalf("cap: level=%d, campaign shed=%v", a.level, a.sheds(classCampaign))
	}
	// One observation back under target ends the episode completely.
	a.observe(5*time.Millisecond, t0.Add(11*time.Second))
	if a.level != 0 || a.sheds(classSim) {
		t.Fatalf("after recovery: level=%d", a.level)
	}
}

func TestAdmitStateDisabled(t *testing.T) {
	a := admitState{target: time.Millisecond, interval: time.Millisecond, disabled: true}
	t0 := time.Unix(1_000_000, 0)
	a.observe(time.Hour, t0)
	a.observe(time.Hour, t0.Add(time.Hour))
	if a.sheds(classSim) {
		t.Fatal("disabled controller shed a job")
	}
}

// --- manager-level: class-ordered shedding under a stalled pool ---

// TestAdaptiveAdmissionShedsByClass drives a manager with a blocked
// worker pool and a fake clock: as queue delay stays above target,
// sims are shed first, then sweeps, and campaigns are still admitted
// until the hard QueueCap; once the backlog drains, sims are admitted
// again immediately.
func TestAdaptiveAdmissionShedsByClass(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	release := make(chan struct{})
	m := newTestManager(t, Config{
		QueueCap: 10, Workers: 1,
		AdmitTarget: 50 * time.Millisecond, AdmitInterval: 100 * time.Millisecond,
		Clock: clock, Metrics: obs.NewRegistry(),
	})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		select {
		case <-release:
			return "ok\n", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}

	sim := JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}
	sweep := JobRequest{Kind: "sweep", Window: 4}
	campaign := JobRequest{Kind: "campaign", Window: 4, Trials: 1}

	mustSubmit := func(req JobRequest, what string) *Job {
		t.Helper()
		job, serr := m.Submit(req)
		if serr != nil {
			t.Fatalf("%s rejected: %v", what, serr)
		}
		return job
	}
	mustShed := func(req JobRequest, what string) {
		t.Helper()
		_, serr := m.Submit(req)
		if serr == nil || serr.Kind != KindShed {
			t.Fatalf("%s: got %v, want shed", what, serr)
		}
		if serr.RetryAfter < time.Second {
			t.Fatalf("%s: Retry-After %v, want >= 1s", what, serr.RetryAfter)
		}
	}

	mustSubmit(sim, "first sim")  // claimed by the (blocking) worker
	mustSubmit(sim, "queued sim") // sits at the head of the queue
	// Head-of-line age above target but within the grace interval:
	// still admitting.
	advance(60 * time.Millisecond)
	mustSubmit(sim, "sim within grace")
	// A full interval continuously above target: level 1, sims shed,
	// sweeps and campaigns still admitted.
	advance(150 * time.Millisecond)
	mustShed(sim, "sim at level 1")
	mustSubmit(sweep, "sweep at level 1")
	mustSubmit(campaign, "campaign at level 1")
	// Another interval: level 2, sweeps shed too; campaigns are never
	// delay-shed.
	advance(110 * time.Millisecond)
	mustShed(sim, "sim at level 2")
	mustShed(sweep, "sweep at level 2")
	mustSubmit(campaign, "campaign at level 2")

	reg := m.cfg.Metrics
	if v := reg.Counter(obs.LabeledName("serve.shed_class",
		obs.Label{Key: "class", Value: "sim"})).Value(); v != 2 {
		t.Fatalf("sim sheds = %d, want 2", v)
	}
	if v := reg.Counter(obs.LabeledName("serve.shed_class",
		obs.Label{Key: "class", Value: "sweep"})).Value(); v != 1 {
		t.Fatalf("sweep sheds = %d, want 1", v)
	}
	if v := reg.Counter(obs.LabeledName("serve.shed_class",
		obs.Label{Key: "class", Value: "campaign"})).Value(); v != 0 {
		t.Fatalf("campaign sheds = %d, want 0", v)
	}
	if lvl := reg.Gauge("serve.admit_level").Value(); lvl != 2 {
		t.Fatalf("admit_level = %v, want 2", lvl)
	}

	// Release the pool and let the backlog drain; with the queue empty
	// the next submit observes zero delay and the episode ends.
	close(release)
	for _, j := range m.List() {
		if j.State == StateQueued || j.State == StateRunning {
			waitState(t, m, j.ID, StateDone)
		}
	}
	recovered := mustSubmit(sim, "sim after recovery")
	waitState(t, m, recovered.ID, StateDone)
	if lvl := reg.Gauge("serve.admit_level").Value(); lvl != 0 {
		t.Fatalf("admit_level after recovery = %v, want 0", lvl)
	}
}

// TestCampaignsClaimedBeforeSims: with work of every class queued
// behind a stalled pool, the freed worker claims campaign, then sweep,
// then sim — the priority order the shed policy protects.
func TestCampaignsClaimedBeforeSims(t *testing.T) {
	var mu sync.Mutex
	var started []string
	release := make(chan struct{})
	block := true
	m := newTestManager(t, Config{QueueCap: 10, Workers: 1, AdmitTarget: -1})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		mu.Lock()
		started = append(started, job.Request.Kind)
		blocked := block
		block = false // only the first job stalls the pool
		mu.Unlock()
		if blocked {
			select {
			case <-release:
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		return "ok\n", nil
	}
	if _, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}); serr != nil {
		t.Fatalf("stall job: %v", serr)
	}
	// Wait for the worker to claim the stall job so the rest queue up.
	deadline := time.Now().Add(5 * time.Second) //uslint:allow detorder -- test-side polling deadline, not simulated behavior
	for {
		mu.Lock()
		n := len(started)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) { //uslint:allow detorder -- test-side polling deadline
			t.Fatal("worker never claimed the stall job")
		}
		time.Sleep(time.Millisecond)
	}
	var last *Job
	for _, req := range []JobRequest{
		{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"},
		{Kind: "sweep", Window: 4},
		{Kind: "campaign", Window: 4, Trials: 1},
	} {
		job, serr := m.Submit(req)
		if serr != nil {
			t.Fatalf("submit %s: %v", req.Kind, serr)
		}
		last = job
	}
	close(release)
	for _, j := range m.List() {
		waitState(t, m, j.ID, StateDone)
	}
	_ = last
	mu.Lock()
	defer mu.Unlock()
	want := []string{"sim", "campaign", "sweep", "sim"}
	if fmt.Sprint(started) != fmt.Sprint(want) {
		t.Fatalf("claim order %v, want %v", started, want)
	}
}

// --- breaker half-open race (satellite; run under -race in CI) ---

// TestBreakerHalfOpenSingleProbeUnderRace: after the cooldown, N
// goroutines race to consume the half-open probe; exactly one may be
// admitted, the rest must see breaker-open.
func TestBreakerHalfOpenSingleProbeUnderRace(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	bs := newBreakerSet(1, 30*time.Second, clock)
	const class = "campaign/all/n=64"
	bs.report(class, false) // threshold 1: open immediately
	if serr := bs.allow(class); serr == nil || serr.Kind != KindBreakerOpen {
		t.Fatalf("open breaker admitted: %v", serr)
	}
	mu.Lock()
	now = now.Add(31 * time.Second) // past the cooldown: half-open
	mu.Unlock()

	const racers = 64
	var admitted int64
	var amu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if serr := bs.allow(class); serr == nil {
				amu.Lock()
				admitted++
				amu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", admitted)
	}
	// The probe's success closes the breaker for everyone.
	bs.report(class, true)
	for i := 0; i < 4; i++ {
		if serr := bs.allow(class); serr != nil {
			t.Fatalf("closed breaker rejected: %v", serr)
		}
	}
}

// --- resource exhaustion: typed, retryable, breaker-neutral ---

// TestResourceExhaustionRetryable: a campaign whose checkpoint writes
// hit injected ENOSPC fails with kind resource-exhausted and
// retryable=true, does not trip the class breaker, and succeeds when
// resubmitted after the disk recovers.
func TestResourceExhaustionRetryable(t *testing.T) {
	m := newTestManager(t, Config{
		Workers: 1, BreakerThreshold: 1, Metrics: obs.NewRegistry(),
	})
	req := JobRequest{
		Kind: "campaign", Window: 4, Trials: 1, Seed: 1,
		Archs: []string{"ultra1"}, Sites: []string{"result-bit"}, Workloads: []string{"fib"},
	}
	atomicio.SetFaults(atomicio.Faults{WriteENOSPCEvery: 1})
	t.Cleanup(func() { atomicio.SetFaults(atomicio.Faults{}) })
	job, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	failed := waitState(t, m, job.ID, StateFailed)
	if failed.ErrorKind != KindResource {
		t.Fatalf("error kind = %q (%s), want %q", failed.ErrorKind, failed.Error, KindResource)
	}
	if !failed.Retryable {
		t.Fatal("resource-exhausted job not marked retryable")
	}
	// Even at threshold 1, an environmental failure must not have
	// tripped the class breaker: the resubmit is admitted.
	atomicio.SetFaults(atomicio.Faults{})
	retry, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("resubmit after recovery rejected: %v", serr)
	}
	done := waitState(t, m, retry.ID, StateDone)
	if done.Report == "" || done.Retryable {
		t.Fatalf("recovered run: report empty=%v retryable=%v", done.Report == "", done.Retryable)
	}
	if v := m.cfg.Metrics.Counter("serve.persist_errors").Value(); v == 0 {
		t.Fatal("persist failures under ENOSPC were not counted")
	}
}
