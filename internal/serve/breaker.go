package serve

import (
	"fmt"
	"sync"
	"time"
)

// The circuit breaker protects the worker pool from pathological config
// classes: a window/arch shape that livelocks or times out will do it
// again, and each repetition pins a worker for a full deadline. After
// BreakerThreshold consecutive livelock/timeout failures a class is
// rejected outright (open) for the cooldown, then a single probe job is
// admitted (half-open); the probe's outcome closes the breaker or
// re-opens it for another cooldown. Classes are independent — a broken
// config shape never blocks healthy traffic.

// Breaker state names, as surfaced by transition events and metrics.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breakerState is one config class's breaker.
type breakerState struct {
	fails     int       // consecutive counted failures
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe is in flight
}

// stateName names the breaker state for telemetry.
func stateName(st *breakerState) string {
	switch {
	case st == nil || st.openUntil.IsZero():
		return BreakerClosed
	case st.probing:
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}

// breakerSet holds per-class breakers behind one lock; breaker checks
// are rare (one per submit / job completion) so contention is nil.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       Clock
	classes   map[string]*breakerState

	// onTransition, when set, observes every state change (called with
	// b.mu held; callbacks must only touch atomics/loggers, never call
	// back into the breaker or take the manager lock).
	onTransition func(class, from, to string)
}

func newBreakerSet(threshold int, cooldown time.Duration, now Clock) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		classes:   map[string]*breakerState{},
	}
}

// allow decides whether a submission for class may proceed. In the open
// window it returns a breaker-open error carrying the remaining
// cooldown as Retry-After; once the window lapses it admits exactly one
// probe and keeps rejecting the rest until the probe reports back.
func (b *breakerSet) allow(class string) *Error {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.classes[class]
	if st == nil || st.openUntil.IsZero() {
		return nil
	}
	if remaining := st.openUntil.Sub(b.now()); remaining > 0 {
		return &Error{
			Kind: KindBreakerOpen, Status: 503, RetryAfter: remaining,
			Msg: fmt.Sprintf("config class %s tripped the circuit breaker after %d consecutive livelock/timeout failures", class, st.fails),
		}
	}
	if st.probing {
		return &Error{
			Kind: KindBreakerOpen, Status: 503, RetryAfter: b.cooldown,
			Msg: fmt.Sprintf("config class %s is half-open with a probe in flight", class),
		}
	}
	st.probing = true
	b.transition(class, BreakerOpen, BreakerHalfOpen)
	return nil
}

// transition fires the observation hook when the state actually changed.
// Callers hold b.mu.
func (b *breakerSet) transition(class, from, to string) {
	if b.onTransition != nil && from != to {
		b.onTransition(class, from, to)
	}
}

// breakerStateValue maps a state name to its gauge encoding
// (closed=0, half-open=1, open=2).
func breakerStateValue(state string) float64 {
	switch state {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	}
	return 0
}

// state returns the named class's current breaker state.
func (b *breakerSet) state(class string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return stateName(b.classes[class])
}

// states returns every class not currently closed, by class name.
func (b *breakerSet) states() map[string]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := map[string]string{}
	for class, st := range b.classes {
		if s := stateName(st); s != BreakerClosed {
			out[class] = s
		}
	}
	return out
}

// Breakers is the exported face of the per-class circuit breaker, for
// callers outside the serve manager — the fleet coordinator keys one
// set by worker URL instead of config class, so a worker that fails
// repeatedly is cooled down exactly the way a pathological config
// shape is. Semantics are identical: threshold consecutive failures
// open the breaker for the cooldown, then one probe is admitted.
type Breakers struct {
	set *breakerSet
}

// NewBreakers builds a breaker set with the given trip threshold and
// open-state cooldown. clock supplies the time source (pass time.Now
// outside tests).
func NewBreakers(threshold int, cooldown time.Duration, clock Clock) *Breakers {
	return &Breakers{set: newBreakerSet(threshold, cooldown, clock)}
}

// Allow reports whether class may be used now. A non-nil error is a
// KindBreakerOpen *Error carrying the remaining cooldown as RetryAfter.
func (b *Breakers) Allow(class string) *Error { return b.set.allow(class) }

// Report records an outcome for class and reports whether this call
// tripped the breaker open.
func (b *Breakers) Report(class string, ok bool) bool { return b.set.report(class, ok) }

// State returns the named class's current breaker state.
func (b *Breakers) State(class string) string { return b.set.state(class) }

// States returns every class not currently closed, by class name.
func (b *Breakers) States() map[string]string { return b.set.states() }

// OnTransition registers fn to observe every state change. fn runs with
// the breaker lock held: it must not call back into the breaker.
func (b *Breakers) OnTransition(fn func(class, from, to string)) { b.set.onTransition = fn }

// BreakerStateValue maps a breaker state name to its gauge encoding
// (closed=0, half-open=1, open=2), shared by serve and fleet metrics.
func BreakerStateValue(state string) float64 { return breakerStateValue(state) }

// report records a job outcome for class. ok resets the class to
// closed; a counted failure (livelock or timeout — the caller filters)
// increments the consecutive count and, at the threshold or on a failed
// half-open probe, opens the breaker for the cooldown. It returns true
// when this report tripped the breaker open.
func (b *breakerSet) report(class string, ok bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.classes[class]
	from := stateName(st)
	if ok {
		if st != nil {
			delete(b.classes, class)
			b.transition(class, from, BreakerClosed)
		}
		return false
	}
	if st == nil {
		st = &breakerState{}
		b.classes[class] = st
	}
	st.fails++
	wasProbe := st.probing
	st.probing = false
	if st.fails >= b.threshold || wasProbe {
		st.openUntil = b.now().Add(b.cooldown)
		b.transition(class, from, BreakerOpen)
		return true
	}
	return false
}
