package serve

import (
	"fmt"
	"sync"
	"time"
)

// The circuit breaker protects the worker pool from pathological config
// classes: a window/arch shape that livelocks or times out will do it
// again, and each repetition pins a worker for a full deadline. After
// BreakerThreshold consecutive livelock/timeout failures a class is
// rejected outright (open) for the cooldown, then a single probe job is
// admitted (half-open); the probe's outcome closes the breaker or
// re-opens it for another cooldown. Classes are independent — a broken
// config shape never blocks healthy traffic.

// breakerState is one config class's breaker.
type breakerState struct {
	fails     int       // consecutive counted failures
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe is in flight
}

// breakerSet holds per-class breakers behind one lock; breaker checks
// are rare (one per submit / job completion) so contention is nil.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       Clock
	classes   map[string]*breakerState
}

func newBreakerSet(threshold int, cooldown time.Duration, now Clock) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		classes:   map[string]*breakerState{},
	}
}

// allow decides whether a submission for class may proceed. In the open
// window it returns a breaker-open error carrying the remaining
// cooldown as Retry-After; once the window lapses it admits exactly one
// probe and keeps rejecting the rest until the probe reports back.
func (b *breakerSet) allow(class string) *Error {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.classes[class]
	if st == nil || st.openUntil.IsZero() {
		return nil
	}
	if remaining := st.openUntil.Sub(b.now()); remaining > 0 {
		return &Error{
			Kind: KindBreakerOpen, Status: 503, RetryAfter: remaining,
			Msg: fmt.Sprintf("config class %s tripped the circuit breaker after %d consecutive livelock/timeout failures", class, st.fails),
		}
	}
	if st.probing {
		return &Error{
			Kind: KindBreakerOpen, Status: 503, RetryAfter: b.cooldown,
			Msg: fmt.Sprintf("config class %s is half-open with a probe in flight", class),
		}
	}
	st.probing = true
	return nil
}

// report records a job outcome for class. ok resets the class to
// closed; a counted failure (livelock or timeout — the caller filters)
// increments the consecutive count and, at the threshold or on a failed
// half-open probe, opens the breaker for the cooldown. It returns true
// when this report tripped the breaker open.
func (b *breakerSet) report(class string, ok bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.classes[class]
	if ok {
		if st != nil {
			delete(b.classes, class)
		}
		return false
	}
	if st == nil {
		st = &breakerState{}
		b.classes[class] = st
	}
	st.fails++
	wasProbe := st.probing
	st.probing = false
	if st.fails >= b.threshold || wasProbe {
		st.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}
