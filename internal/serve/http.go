package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ultrascalar/internal/obs"
)

// The HTTP surface. Endpoints:
//
//	GET    /healthz          process liveness (always 200)
//	GET    /readyz           readiness: 200, or 503 once draining
//	POST   /jobs             submit a JobRequest; 202 + job record
//	GET    /jobs             list all jobs in ID order
//	GET    /jobs/{id}        one job's record (state, error, report)
//	GET    /jobs/{id}/report the finished job's report as text/plain
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /metrics          obs registry snapshot as JSON
//
// Rejections are JSON {"error": {"kind", "message"}} with the taxonomy
// kind; 503s (shed, draining, breaker-open) carry Retry-After.

// errorBody is the JSON shape of every rejection.
type errorBody struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeError renders a service error with its status and Retry-After.
func writeError(w http.ResponseWriter, serr *Error) {
	if serr.RetryAfter > 0 {
		secs := int(serr.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	var body errorBody
	body.Error.Kind = serr.Kind
	body.Error.Message = serr.Msg
	writeJSON(w, serr.Status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the service's HTTP mux.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if m.Draining() {
			writeError(w, &Error{Kind: KindDraining, Msg: "service is draining", Status: 503})
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &Error{Kind: KindInvalidConfig, Msg: "bad request body: " + err.Error(), Status: 400})
			return
		}
		job, serr := m.Submit(req)
		if serr != nil {
			writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, serr := m.Get(r.PathValue("id"))
		if serr != nil {
			writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})

	mux.HandleFunc("GET /jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		job, serr := m.Get(r.PathValue("id"))
		if serr != nil {
			writeError(w, serr)
			return
		}
		if job.State != StateDone {
			writeError(w, &Error{
				Kind: KindNotFound, Status: 409,
				Msg: fmt.Sprintf("job %s is %s, not done", job.ID, job.State),
			})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, job.Report)
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, serr := m.Cancel(r.PathValue("id"))
		if serr != nil {
			writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if m.cfg.Metrics == nil {
			writeJSON(w, http.StatusOK, struct{}{})
			return
		}
		// Peek, not Snapshot: scrapes must not grow the in-process
		// snapshot series.
		writeJSON(w, http.StatusOK, struct {
			Manifest obs.Manifest `json:"manifest"`
			Snapshot obs.Snapshot `json:"snapshot"`
		}{obs.NewManifest("usserve"), m.cfg.Metrics.Peek(0)})
	})

	return mux
}
