package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
)

// The HTTP surface. Endpoints:
//
//	GET    /healthz            process liveness (always 200)
//	GET    /readyz             readiness: 200, or 503 once draining
//	POST   /jobs               submit a JobRequest; 202 + job record
//	GET    /jobs               list all jobs in ID order
//	GET    /jobs/{id}          one job's record (state, error, report)
//	GET    /jobs/{id}/report   the finished job's report as text/plain
//	GET    /jobs/{id}/progress shard-completion counts; ?stream=1 for NDJSON
//	DELETE /jobs/{id}          cancel a queued or running job
//	GET    /metrics            obs registry snapshot as JSON
//	GET    /metrics?format=prom  Prometheus text exposition
//	/debug/pprof/*             net/http/pprof (only with Config.EnablePprof)
//
// Rejections are JSON {"error": {"kind", "message"}} with the taxonomy
// kind; 503s (shed, draining, breaker-open) carry Retry-After.
//
// Every route is instrumented: serve.http_ms{route=...} latency
// histograms, serve.http_requests{route=...,code=...} counters, a
// serve.http_inflight gauge, and serve.errors{kind=...} counters for
// every taxonomy rejection. Request logging is a sampled debug stream
// (1-in-8) so a scrape-heavy deployment does not drown the job log.

// httpMsBounds buckets route latencies from sub-millisecond health
// checks to multi-second report fetches.
var httpMsBounds = []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000}

// errorBody is the JSON shape of every rejection.
type errorBody struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeError renders a service error with its status and Retry-After,
// counting it into the error-taxonomy metrics.
func (m *Manager) writeError(w http.ResponseWriter, serr *Error) {
	if r := m.cfg.Metrics; r != nil {
		r.Counter(obs.LabeledName("serve.errors", obs.Label{Key: "kind", Value: serr.Kind})).Inc()
	}
	if serr.RetryAfter > 0 {
		secs := int(serr.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	var body errorBody
	body.Error.Kind = serr.Kind
	body.Error.Message = serr.Msg
	writeJSON(w, serr.Status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// statusRecorder captures the response code for route metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the service's HTTP mux.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	httpLog := m.log.With("http").Sampled(8)
	inflight := func() *obs.Gauge {
		if m.cfg.Metrics == nil {
			return nil
		}
		return m.cfg.Metrics.Gauge("serve.http_inflight")
	}()

	// handle registers an instrumented route: per-route latency
	// histogram, request counter by status code, in-flight gauge, and a
	// sampled debug log line.
	handle := func(pattern string, fn http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if m.cfg.Metrics == nil && !httpLog.Enabled(obslog.LevelDebug) {
				fn(w, r)
				return
			}
			if inflight != nil {
				inflight.Set(float64(m.inflight.Add(1)))
			}
			start := m.cfg.Clock()
			rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
			fn(rec, r)
			elapsed := m.cfg.Clock().Sub(start)
			if inflight != nil {
				inflight.Set(float64(m.inflight.Add(-1)))
			}
			if reg := m.cfg.Metrics; reg != nil {
				reg.Histogram(obs.LabeledName("serve.http_ms",
					obs.Label{Key: "route", Value: pattern}), httpMsBounds).
					Observe(float64(elapsed.Nanoseconds()) / 1e6)
				reg.Counter(obs.LabeledName("serve.http_requests",
					obs.Label{Key: "route", Value: pattern},
					obs.Label{Key: "code", Value: strconv.Itoa(rec.code)})).Inc()
			}
			if httpLog.Enabled(obslog.LevelDebug) {
				httpLog.Debug("http",
					obslog.String("route", pattern), obslog.Int("code", rec.code),
					obslog.Duration("ms", elapsed))
			}
		})
	}

	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	handle("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if m.Draining() {
			m.writeError(w, &Error{Kind: KindDraining, Msg: "service is draining", Status: 503})
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})

	handle("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			m.writeError(w, &Error{Kind: KindInvalidConfig, Msg: "bad request body: " + err.Error(), Status: 400})
			return
		}
		job, serr := m.Submit(req)
		if serr != nil {
			m.writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})

	handle("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	handle("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, serr := m.Get(r.PathValue("id"))
		if serr != nil {
			m.writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})

	handle("GET /jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		job, serr := m.Get(r.PathValue("id"))
		if serr != nil {
			m.writeError(w, serr)
			return
		}
		if job.State != StateDone {
			m.writeError(w, &Error{
				Kind: KindNotFound, Status: 409,
				Msg: fmt.Sprintf("job %s is %s, not done", job.ID, job.State),
			})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, job.Report)
	})

	handle("GET /jobs/{id}/progress", m.handleProgress)

	handle("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, serr := m.Cancel(r.PathValue("id"))
		if serr != nil {
			m.writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})

	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if m.cfg.Metrics == nil {
			if r.URL.Query().Get("format") == "prom" {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				return
			}
			writeJSON(w, http.StatusOK, struct{}{})
			return
		}
		// Peek, not Snapshot: scrapes must not grow the in-process
		// snapshot series.
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.WritePrometheus(w, m.cfg.Metrics.Peek(0)); err != nil {
				m.log.Warn("prometheus exposition failed", obslog.String("err", err.Error()))
			}
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Manifest obs.Manifest `json:"manifest"`
			Snapshot obs.Snapshot `json:"snapshot"`
		}{obs.NewManifest("usserve"), m.cfg.Metrics.Peek(0)})
	})

	if m.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	return mux
}

// handleProgress serves one job's shard-completion view. Plain requests
// answer once; ?stream=1 holds the connection and emits one NDJSON line
// per change until the job reaches a terminal state or the client goes
// away.
func (m *Manager) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cur, serr := m.Progress(id)
	if serr != nil {
		m.writeError(w, serr)
		return
	}
	if r.URL.Query().Get("stream") == "" {
		writeJSON(w, http.StatusOK, cur)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// progCond has no timed wait, so wake the watcher loop when the
	// client disconnects; WaitProgress then returns and the gone check
	// breaks the loop.
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.progCond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()
	gone := func() bool { return ctx.Err() != nil }

	for {
		if err := enc.Encode(cur); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminalState(cur.State) || gone() {
			return
		}
		next, serr := m.WaitProgress(id, cur, gone)
		if serr != nil || gone() {
			return
		}
		if next == cur && terminalState(next.State) {
			return
		}
		cur = next
	}
}
