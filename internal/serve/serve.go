// Package serve turns the simulator into a long-running service: it
// accepts simulations, IPC sweeps and fault campaigns as managed jobs,
// bounds every job by a deadline, sheds load when the admission queue is
// full, trips a per-config-class circuit breaker after repeated
// livelock/timeout failures, drains gracefully on shutdown, and recovers
// crash-interrupted jobs on restart.
//
// The robustness discipline mirrors the paper's queuing treatment of
// issue-queue contention one layer up: bounded queues and measured
// rejection instead of unbounded waiting. Every job's result is a
// deterministic text report — a function of the job's request alone —
// so a job interrupted by SIGKILL and resumed on restart produces a
// report byte-identical to an uninterrupted run (campaign jobs resume
// from their crash-atomic shard checkpoints; sims and sweeps simply
// rerun, which is free because they are pure).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/core"
	"ultrascalar/internal/exp"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
	"ultrascalar/internal/rescache"
	"ultrascalar/internal/workload"
)

// Error-taxonomy kinds: every rejected request and failed job carries
// exactly one of these, so clients and dashboards can distinguish "the
// config livelocked" from "the service is busy" without parsing
// messages.
const (
	KindTimeout       = "timeout"            // job exceeded its deadline
	KindLivelock      = "livelock"           // engine watchdog proved no forward progress
	KindInvalidConfig = "invalid-config"     // request rejected at admission
	KindShed          = "shed"               // admission queue full
	KindDraining      = "draining"           // service is shutting down
	KindBreakerOpen   = "breaker-open"       // config class tripped the circuit breaker
	KindCanceled      = "canceled"           // job canceled by the client
	KindInternal      = "internal"           // unexpected execution failure
	KindNotFound      = "not-found"          // no such job
	KindResource      = "resource-exhausted" // disk full / I/O failure persisting state; retryable
)

// Error is a structured service error: a taxonomy kind, a human
// message, the HTTP status it maps to, and an optional Retry-After
// hint for load-shedding responses.
type Error struct {
	Kind       string
	Msg        string
	Status     int
	RetryAfter time.Duration
}

// Error renders the kind and message.
func (e *Error) Error() string { return e.Kind + ": " + e.Msg }

// Job states. queued and interrupted jobs are runnable on restart;
// running jobs found on disk at startup are crash leftovers and are
// demoted to interrupted.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted"
)

// JobRequest is the client-supplied job description.
type JobRequest struct {
	// Kind selects the job type: "sim" (one run), "sweep" (the E8 IPC
	// sweep) or "campaign" (a checkpointed fault campaign).
	Kind string `json:"kind"`
	// Arch is the architecture for sim jobs (ultra1, ultra2, hybrid).
	Arch string `json:"arch,omitempty"`
	// Window is the station count n for every kind.
	Window int `json:"window"`
	// Cluster is the hybrid cluster size C (0 = window/4).
	Cluster int `json:"cluster,omitempty"`
	// Workload names the kernel for sim jobs (default "fib").
	Workload string `json:"workload,omitempty"`
	// Seed drives campaign fault draws (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Trials is the campaign's injections per cell (default 4).
	Trials int `json:"trials,omitempty"`
	// Archs restricts a campaign to a subset of architectures (nil =
	// all). With Sites and Workloads this is how a fleet coordinator
	// scopes one job to one shard of a larger campaign; point seeds are
	// keyed by shard identity, so the sub-campaign's cells are
	// byte-identical to the same cells of a full run.
	Archs []string `json:"archs,omitempty"`
	// Sites restricts a campaign to a subset of fault sites by name
	// (nil = all).
	Sites []string `json:"sites,omitempty"`
	// Workloads restricts a campaign to a subset of the campaign
	// workload suite by name (nil = all).
	Workloads []string `json:"workloads,omitempty"`
	// Trace, when set (16 lowercase hex chars), is adopted as the job's
	// trace ID instead of deriving one from the job ID — the fleet
	// coordinator assigns each shard job a trace so coordinator and
	// worker telemetry share one identity.
	Trace string `json:"trace,omitempty"`
	// TimeoutMs bounds the job (0 = service default; capped at the
	// service maximum).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Job is one managed job: the request, its lifecycle state, and — once
// finished — either a deterministic text report or a classified error.
type Job struct {
	ID        string     `json:"id"`
	Trace     string     `json:"trace,omitempty"`
	Request   JobRequest `json:"request"`
	State     string     `json:"state"`
	ErrorKind string     `json:"error_kind,omitempty"`
	Error     string     `json:"error,omitempty"`
	Report    string     `json:"report,omitempty"`
	// Cells carries a finished campaign job's per-shard result cells in
	// structured form, so a fleet coordinator can merge shard results
	// without parsing the text report.
	Cells         []fault.Cell `json:"cells,omitempty"`
	Attempts      int          `json:"attempts"`
	ResumedShards int          `json:"resumed_shards,omitempty"`
	// Retryable marks a failed job whose failure was environmental
	// (resource exhaustion while persisting state), not a property of
	// the config: resubmitting the same request is expected to succeed.
	Retryable bool `json:"retryable,omitempty"`
	// Cached marks a done job whose report was served from the result
	// cache (byte-identical to recomputation by construction — the
	// entry is integrity-checked on read).
	Cached bool `json:"cached,omitempty"`
}

// Clock abstracts wall time so tests drive deadlines and breaker
// cooldowns deterministically.
type Clock func() time.Time

// Config tunes the service.
type Config struct {
	// Dir is the state directory; job records live in Dir/jobs and
	// campaign checkpoints in Dir/checkpoints.
	Dir string
	// QueueCap bounds the admission queue; submissions beyond it are
	// shed with 503 + Retry-After (default 16). This is the hard memory
	// bound and applies to every job class; the delay controller below
	// usually sheds long before it is reached.
	QueueCap int
	// AdmitTarget is the CoDel-style queue-delay target: delay
	// persistently above it for AdmitInterval starts shedding the
	// lowest-priority job class (sim first, then sweep; campaigns are
	// never delay-shed). 0 = default 100ms; negative disables the
	// delay controller entirely, leaving only QueueCap.
	AdmitTarget time.Duration
	// AdmitInterval is how long delay must stay above AdmitTarget
	// before shedding starts, and how long between escalations
	// (default 1s).
	AdmitInterval time.Duration
	// CacheDir, when set, enables the content-addressed result cache:
	// a finished job's report is stored keyed by the SHA-256 of its
	// normalized request + the build's commit, and an identical later
	// request is served from the cache (integrity-checked on read)
	// instead of re-simulating.
	CacheDir string
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// DefaultTimeout bounds jobs that do not request one (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout (default 10m).
	MaxTimeout time.Duration
	// BreakerThreshold is the consecutive livelock/timeout failure count
	// that trips a config class's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped class rejects jobs before a
	// half-open probe is allowed (default 30s).
	BreakerCooldown time.Duration
	// Metrics receives queue-depth, shed and job counters (nil = off).
	Metrics *obs.Registry
	// Clock defaults to time.Now; tests inject a fake.
	Clock Clock
	// Log receives structured JSONL service events (nil = off; a nil
	// logger is a valid no-op everywhere).
	Log *obslog.Logger
	// Spans records job-lifecycle spans — queue wait, run, per-shard
	// work, checkpoints, drain (nil = off).
	Spans *obslog.SpanRecorder
	// TraceDir, when set, receives one Chrome trace-event JSON file per
	// finished job (<id>.trace.json, written crash-atomically).
	TraceDir string
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/.
	EnablePprof bool
}

// Manager owns the job store, admission queue, worker pool, breakers
// and drain lifecycle.
type Manager struct {
	cfg      Config
	breakers *breakerSet
	log      *obslog.Logger // component "serve"; nil when logging is off
	trace    obslog.TraceID // the service's own lifecycle trace (drain etc.)

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string // job IDs, ascending; listings and recovery iterate this
	cancels    map[string]context.CancelFunc
	nextSeq    int
	depth      int // queued-but-not-yet-claimed entries across all classes, vs cfg.QueueCap
	draining   bool
	progress   map[string]shardProgress // campaign shard completion, by job ID
	queueSpans map[string]obslog.Span   // open queue-wait spans, by job ID
	progCond   *sync.Cond               // broadcast on progress / job-state change

	// queues holds the admission queue as one FIFO per job class;
	// workers claim from the highest class first, so under pressure
	// campaigns run ahead of sweeps ahead of sims. workCond (on m.mu)
	// wakes waiting workers on enqueue and on drain.
	queues   [numClasses][]queueEntry
	workCond *sync.Cond
	admit    admitState
	wg       sync.WaitGroup

	// cache is the content-addressed result cache (nil = off) and
	// cacheCommit the build-identity component of its keys.
	cache       *rescache.Cache
	cacheCommit string

	mDepth           *obs.Gauge
	mShed, mDone     *obs.Counter
	mFailed, mSubmit *obs.Counter
	mBreaker         *obs.Counter
	mQueueDelay      *obs.Histogram
	mAdmitLevel      *obs.Gauge
	mPersistErr      *obs.Counter
	mShedClass       [numClasses]*obs.Counter
	inflight         atomic.Int64 // in-flight HTTP requests, mirrored to a gauge

	// testExec, when set, replaces real job execution; tests use it to
	// block, fail or classify jobs on cue.
	testExec func(ctx context.Context, job *Job) (string, error)
}

// shardProgress is one campaign job's shard-completion count.
type shardProgress struct {
	Done  int
	Total int
}

// queueEntry is one admission-queue slot: the job and when it was
// enqueued, so the claim measures the true sojourn time.
type queueEntry struct {
	id       string
	enqueued time.Time
}

// New builds a Manager rooted at cfg.Dir, recovers any jobs a previous
// process left queued, running or interrupted (re-enqueued in ID
// order), and starts the worker pool.
func New(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: Config.Dir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.AdmitTarget == 0 {
		cfg.AdmitTarget = 100 * time.Millisecond
	}
	if cfg.AdmitInterval <= 0 {
		cfg.AdmitInterval = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //uslint:allow detorder -- wall clock is serving policy (deadlines, cooldowns, Retry-After), never experiment data
	}
	for _, sub := range []string{"jobs", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating state dir: %w", err)
		}
	}
	if cfg.TraceDir != "" {
		if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating trace dir: %w", err)
		}
	}

	m := &Manager{
		cfg:        cfg,
		breakers:   newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		log:        cfg.Log.With("serve"),
		trace:      obslog.DeriveTraceID("usserve"),
		jobs:       map[string]*Job{},
		cancels:    map[string]context.CancelFunc{},
		progress:   map[string]shardProgress{},
		queueSpans: map[string]obslog.Span{},
		nextSeq:    1,
		admit: admitState{
			target:   cfg.AdmitTarget,
			interval: cfg.AdmitInterval,
			disabled: cfg.AdmitTarget < 0,
		},
	}
	m.progCond = sync.NewCond(&m.mu)
	m.workCond = sync.NewCond(&m.mu)
	if r := cfg.Metrics; r != nil {
		m.mDepth = r.Gauge("serve.queue_depth")
		m.mShed = r.Counter("serve.shed")
		m.mDone = r.Counter("serve.jobs_done")
		m.mFailed = r.Counter("serve.jobs_failed")
		m.mSubmit = r.Counter("serve.jobs_submitted")
		m.mBreaker = r.Counter("serve.breaker_trips")
		m.mQueueDelay = r.Histogram("serve.queue_delay_ms", queueDelayMsBounds)
		m.mAdmitLevel = r.Gauge("serve.admit_level")
		m.mPersistErr = r.Counter("serve.persist_errors")
		for cls := 0; cls < numClasses; cls++ {
			m.mShedClass[cls] = r.Counter(obs.LabeledName("serve.shed_class",
				obs.Label{Key: "class", Value: className(cls)}))
		}
	}
	if cfg.CacheDir != "" {
		cache, err := rescache.Open(cfg.CacheDir, rescache.Options{
			Metrics: cfg.Metrics, Prefix: "serve.cache", Log: cfg.Log,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: opening result cache: %w", err)
		}
		m.cache = cache
		m.cacheCommit = obs.NewManifest("usserve").GitCommit
	}
	// The transition hook runs under the breaker mutex: it may only
	// touch atomics and the logger, never the manager lock or the
	// breaker itself.
	m.breakers.onTransition = func(class, from, to string) {
		if r := cfg.Metrics; r != nil {
			r.Counter(obs.LabeledName("serve.breaker_transitions",
				obs.Label{Key: "class", Value: class}, obs.Label{Key: "to", Value: to})).Inc()
			r.Gauge(obs.LabeledName("serve.breaker_state",
				obs.Label{Key: "class", Value: class})).Set(breakerStateValue(to))
		}
		m.log.With("breaker").Info("breaker transition",
			obslog.String("class", class), obslog.String("from", from), obslog.String("to", to))
	}

	runnable, err := m.recover()
	if err != nil {
		return nil, err
	}
	if len(m.order) > 0 {
		m.log.Info("recovered jobs",
			obslog.Int("jobs", len(m.order)), obslog.Int("runnable", len(runnable)))
	}
	// Recovered jobs may exceed QueueCap (the queues are slices, not a
	// bounded channel); Submit keeps shedding new work until the
	// backlog drains below the cap.
	m.mu.Lock()
	now := cfg.Clock()
	for _, id := range runnable {
		m.enqueueLocked(m.jobs[id], now)
	}
	m.mu.Unlock()

	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover loads persisted jobs from Dir/jobs. Jobs found running were
// interrupted by a crash: they are demoted to interrupted and, like
// queued and previously-interrupted jobs, re-enqueued in ID order.
func (m *Manager) recover() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(m.cfg.Dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: reading job dir: %w", err)
	}
	var runnable []string
	for _, e := range ents { // ReadDir sorts by name == ID order
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.cfg.Dir, "jobs", e.Name()))
		if err != nil {
			return nil, fmt.Errorf("serve: reading job record: %w", err)
		}
		var job Job
		if err := json.Unmarshal(data, &job); err != nil {
			return nil, fmt.Errorf("serve: corrupt job record %s: %w", e.Name(), err)
		}
		if job.State == StateRunning {
			job.State = StateInterrupted
		}
		if job.Trace == "" {
			// Records from before trace identity existed: derive it now —
			// the ID→trace mapping is pure, so this is the same trace any
			// other process would assign.
			job.Trace = string(obslog.DeriveTraceID(job.ID))
		}
		m.jobs[job.ID] = &job
		m.order = append(m.order, job.ID)
		var seq int
		if _, err := fmt.Sscanf(job.ID, "job-%06d", &seq); err == nil && seq >= m.nextSeq {
			m.nextSeq = seq + 1
		}
		if job.State == StateQueued || job.State == StateInterrupted {
			runnable = append(runnable, job.ID)
		}
		if job.State == StateInterrupted {
			m.persistLocked(&job)
		}
	}
	sort.Strings(m.order)
	return runnable, nil
}

// configClass is the circuit breaker's grouping key: jobs that share a
// kind, architecture and window fail alike (a livelocking config shape
// livelocks again), so the breaker trips per class, not globally.
func configClass(req JobRequest) string {
	arch := req.Arch
	if arch == "" {
		arch = "all"
	}
	return fmt.Sprintf("%s/%s/n=%d", req.Kind, arch, req.Window)
}

// validate admission-checks a request, normalizing defaults in place.
func (m *Manager) validate(req *JobRequest) *Error {
	bad := func(format string, args ...any) *Error {
		return &Error{Kind: KindInvalidConfig, Msg: fmt.Sprintf(format, args...), Status: 400}
	}
	if req.Window < 1 || req.Window > 4096 {
		return bad("window must be in [1, 4096], got %d", req.Window)
	}
	if req.Cluster == 0 {
		req.Cluster = req.Window / 4
		if req.Cluster < 1 {
			req.Cluster = 1
		}
	}
	if req.TimeoutMs < 0 {
		return bad("timeout_ms must be >= 0, got %d", req.TimeoutMs)
	}
	switch req.Kind {
	case "sim":
		if _, err := exp.ArchConfig(req.Arch, req.Window, req.Cluster); err != nil {
			return bad("%v", err)
		}
		if req.Workload == "" {
			req.Workload = "fib"
		}
		if _, ok := kernelByName(req.Workload); !ok {
			return bad("unknown workload %q", req.Workload)
		}
	case "sweep":
		// The IPC sweep runs all three architectures; arch is not used.
	case "campaign":
		if req.Seed == 0 {
			req.Seed = 1
		}
		if req.Trials == 0 {
			req.Trials = 4
		}
		if req.Trials < 1 || req.Trials > 1024 {
			return bad("trials must be in [1, 1024], got %d", req.Trials)
		}
		for _, a := range req.Archs {
			if _, err := exp.ArchConfig(a, req.Window, req.Cluster); err != nil {
				return bad("%v", err)
			}
		}
		for _, s := range req.Sites {
			if _, ok := fault.SiteFromString(s); !ok {
				return bad("unknown fault site %q", s)
			}
		}
		for _, w := range req.Workloads {
			if _, ok := campaignWorkloadByName(w); !ok {
				return bad("unknown campaign workload %q", w)
			}
		}
	default:
		return bad("unknown job kind %q (want sim, sweep or campaign)", req.Kind)
	}
	if req.Trace != "" && !validTraceID(req.Trace) {
		return bad("trace must be 16 lowercase hex characters, got %q", req.Trace)
	}
	return nil
}

// validTraceID checks the 16-lowercase-hex trace shape obslog emits.
func validTraceID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// campaignWorkloadByName resolves a campaign-suite workload by name.
func campaignWorkloadByName(name string) (workload.Workload, bool) {
	for _, w := range exp.FaultWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	return workload.Workload{}, false
}

// kernelByName resolves a kernel-suite workload by name.
func kernelByName(name string) (workload.Workload, bool) {
	for _, w := range workload.Kernels() {
		if w.Name == name {
			return w, true
		}
	}
	return workload.Workload{}, false
}

// Submit admission-checks a request and enqueues it as a new job. The
// rejection order is deliberate: drain first (the service is going
// away), then validation (bad requests never consume queue space), then
// the breaker (known-bad classes are refused while capacity remains for
// healthy ones), then admission (hard queue capacity for every class,
// or the delay controller shedding this request's class — both answer
// 503 + Retry-After).
func (m *Manager) Submit(req JobRequest) (*Job, *Error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, &Error{Kind: KindDraining, Msg: "service is draining", Status: 503, RetryAfter: time.Second}
	}
	if serr := m.validate(&req); serr != nil {
		return nil, serr
	}
	if serr := m.breakers.allow(configClass(req)); serr != nil {
		return nil, serr
	}
	now := m.cfg.Clock()
	cls := classPriority(req.Kind)
	// Feed the controller the head-of-line age too: when the worker
	// pool is stalled nothing is being dequeued, and the submit path is
	// the only place left to notice the standing queue growing old. An
	// empty queue is an explicit zero-delay observation — the standing
	// queue is gone, so any overload episode ends here even if the last
	// dequeue measured a long sojourn.
	age, _ := m.oldestQueuedAgeLocked(now)
	m.admit.observe(age, now)
	m.gaugeAdmitLevel()
	if serr := m.shedCheckLocked(cls, req.Kind); serr != nil {
		return nil, serr
	}

	job := &Job{
		ID:      fmt.Sprintf("job-%06d", m.nextSeq),
		Request: req,
		State:   StateQueued,
	}
	if req.Trace != "" {
		// Caller-assigned identity (fleet shard jobs): coordinator and
		// worker telemetry share one trace.
		job.Trace = req.Trace
	} else {
		job.Trace = string(obslog.DeriveTraceID(job.ID))
	}
	m.nextSeq++
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.persistLocked(job)
	m.enqueueLocked(job, now)
	if m.mSubmit != nil {
		m.mSubmit.Inc()
	}
	// The queue-wait span stays open until a worker claims the job (or
	// skims its cancellation tombstone off the channel).
	m.queueSpans[job.ID] = m.cfg.Spans.Start(obslog.TraceID(job.Trace), "queue", req.Kind)
	m.log.WithTrace(obslog.TraceID(job.Trace)).Info("job submitted",
		obslog.String("id", job.ID), obslog.String("kind", req.Kind),
		obslog.Int("window", req.Window), obslog.Int("depth", m.depth))
	return snapshot(job), nil
}

// shedCheckLocked is the admission decision for one request class:
// the hard QueueCap bound first (memory backstop, every class), then
// the delay controller's class-ordered shedding. m.mu must be held.
func (m *Manager) shedCheckLocked(cls int, kind string) *Error {
	var msg string
	retryAfter := time.Second
	switch {
	case m.depth >= m.cfg.QueueCap:
		msg = fmt.Sprintf("admission queue full (%d queued)", m.depth)
	case m.admit.sheds(cls):
		msg = fmt.Sprintf("queue delay %s over %s target (shedding %s and below, level %d)",
			m.admit.lastDelay.Round(time.Millisecond), m.admit.target, className(m.admit.level-1), m.admit.level)
		// Under sustained overload, asking clients back sooner than one
		// controller interval just re-sheds them.
		if m.admit.interval > retryAfter {
			retryAfter = m.admit.interval
		}
	default:
		return nil
	}
	if m.mShed != nil {
		m.mShed.Inc()
	}
	if m.mShedClass[cls] != nil {
		m.mShedClass[cls].Inc()
	}
	m.log.Warn("job shed", obslog.String("kind", kind), obslog.Int("depth", m.depth),
		obslog.Int("admit_level", m.admit.level),
		obslog.Duration("queue_delay", m.admit.lastDelay))
	return &Error{Kind: KindShed, Status: 503, RetryAfter: retryAfter, Msg: msg}
}

// enqueueLocked appends a job to its class queue and wakes one worker;
// m.mu must be held.
func (m *Manager) enqueueLocked(job *Job, now time.Time) {
	cls := classPriority(job.Request.Kind)
	m.queues[cls] = append(m.queues[cls], queueEntry{id: job.ID, enqueued: now})
	m.depth++
	m.gaugeDepth()
	m.workCond.Signal()
}

// oldestQueuedAgeLocked returns the age of the oldest queued entry
// across all classes; m.mu must be held.
func (m *Manager) oldestQueuedAgeLocked(now time.Time) (time.Duration, bool) {
	var oldest time.Time
	for cls := 0; cls < numClasses; cls++ {
		if len(m.queues[cls]) > 0 {
			if e := m.queues[cls][0]; oldest.IsZero() || e.enqueued.Before(oldest) {
				oldest = e.enqueued
			}
		}
	}
	if oldest.IsZero() {
		return 0, false
	}
	return now.Sub(oldest), true
}

// gaugeAdmitLevel publishes the controller's shed level; m.mu held.
func (m *Manager) gaugeAdmitLevel() {
	if m.mAdmitLevel != nil {
		m.mAdmitLevel.Set(float64(m.admit.level))
	}
}

// Get returns a copy of one job.
func (m *Manager) Get(id string) (*Job, *Error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, &Error{Kind: KindNotFound, Msg: "no job " + id, Status: 404}
	}
	return snapshot(job), nil
}

// List returns copies of all jobs in ID order — deterministic output
// regardless of map iteration.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, snapshot(m.jobs[id]))
	}
	return out
}

// Cancel cancels a queued or running job. Queued jobs flip to canceled
// immediately (the worker skips them on dequeue); running jobs have
// their context canceled and classify as canceled when they unwind.
func (m *Manager) Cancel(id string) (*Job, *Error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, &Error{Kind: KindNotFound, Msg: "no job " + id, Status: 404}
	}
	switch job.State {
	case StateQueued:
		// The job's queue slot stays counted in depth until a worker
		// skims its tombstone off the class queue — depth must equal
		// queue occupancy exactly, so the conservation bookkeeping the
		// overload tests pin (admitted = departures + still-queued)
		// holds through cancellations too.
		job.State = StateCanceled
		job.ErrorKind = KindCanceled
		job.Error = "canceled before start"
		m.persistLocked(job)
		m.progCond.Broadcast()
		m.log.WithTrace(obslog.TraceID(job.Trace)).Info("job canceled while queued",
			obslog.String("id", id))
	case StateRunning:
		if cancel := m.cancels[id]; cancel != nil {
			cancel()
		}
	}
	return snapshot(job), nil
}

// Draining reports whether the service has begun shutting down.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain gracefully shuts the service down: stop admitting, cancel
// running campaign jobs (they checkpoint at shard granularity and
// resume on restart), let sims and sweeps finish under their own
// deadlines, and wait for the workers. If ctx expires first, every
// remaining job is canceled outright — campaigns and interrupted sims
// alike are runnable again on restart.
func (m *Manager) Drain(ctx context.Context) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return
	}
	m.draining = true
	m.workCond.Broadcast() // wake idle workers so they observe the drain and exit
	sp := m.cfg.Spans.Start(m.trace, "drain", "")
	defer sp.End()
	m.log.Info("drain start", obslog.Int("depth", m.depth))
	defer m.log.Info("drain done")
	for _, id := range m.order {
		job := m.jobs[id]
		if job.State == StateRunning && job.Request.Kind == "campaign" {
			if cancel := m.cancels[id]; cancel != nil {
				cancel()
			}
		}
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-ctx.Done():
	}
	m.mu.Lock()
	for _, id := range m.order {
		if cancel := m.cancels[id]; cancel != nil {
			cancel()
		}
	}
	m.mu.Unlock()
	<-done
}

// worker claims and runs jobs until drain. The drain check inside
// claimNext comes before any claim, so a drain never starts new work
// that is already queued — queued jobs stay persisted and run after
// restart.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		id, ok := m.claimNext()
		if !ok {
			return
		}
		m.runJob(id)
	}
}

// claimNext blocks until a runnable job is available (highest class
// first, FIFO within a class) or the service drains. Each popped entry
// — tombstones included — closes its queue span, updates depth, and
// feeds its sojourn time to the delay controller and histogram: a
// canceled job still occupied the queue for exactly that long.
func (m *Manager) claimNext() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.draining {
			return "", false
		}
		for cls := numClasses - 1; cls >= 0; cls-- {
			for len(m.queues[cls]) > 0 {
				e := m.queues[cls][0]
				m.queues[cls] = m.queues[cls][1:]
				m.depth--
				m.gaugeDepth()
				if sp, ok := m.queueSpans[e.id]; ok {
					delete(m.queueSpans, e.id)
					sp.End()
				}
				now := m.cfg.Clock()
				delay := now.Sub(e.enqueued)
				m.admit.observe(delay, now)
				m.gaugeAdmitLevel()
				if m.mQueueDelay != nil {
					m.mQueueDelay.Observe(float64(delay) / float64(time.Millisecond))
				}
				job, ok := m.jobs[e.id]
				if !ok || (job.State != StateQueued && job.State != StateInterrupted) {
					continue // canceled while queued: skim the tombstone
				}
				return e.id, true
			}
		}
		m.workCond.Wait()
	}
}

// runJob executes one job end to end: claim, execute under a deadline,
// classify, persist, inform the breaker, export the lifecycle trace.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok || (job.State != StateQueued && job.State != StateInterrupted) {
		m.mu.Unlock()
		return // canceled between claim and start
	}
	job.State = StateRunning
	job.Attempts++
	job.ErrorKind, job.Error = "", ""
	job.Retryable, job.Cached = false, false
	m.persistLocked(job)
	m.progCond.Broadcast()
	timeout := m.cfg.DefaultTimeout
	if job.Request.TimeoutMs > 0 {
		timeout = time.Duration(job.Request.TimeoutMs) * time.Millisecond
	}
	if timeout > m.cfg.MaxTimeout {
		timeout = m.cfg.MaxTimeout
	}
	// Jobs outlive the HTTP request that submitted them, so the manager —
	// not the handler — is each job's context root; Stop/drain cancels
	// through m.cancels.
	ctx, cancel := context.WithTimeout(context.Background(), timeout) //uslint:allow ctxflow -- the manager is the job's context root; jobs outlive their submitting request
	m.cancels[id] = cancel
	req := job.Request
	tid := obslog.TraceID(job.Trace)
	attempt := job.Attempts
	m.mu.Unlock()
	defer cancel()

	// Thread the job's telemetry identity through the context: the
	// campaign runner (and anything below it) picks the trace ID, span
	// recorder and logger back up with the obslog From functions.
	ctx = obslog.WithTraceID(ctx, tid)
	if m.cfg.Spans != nil {
		ctx = obslog.WithRecorder(ctx, m.cfg.Spans)
	}
	if m.cfg.Log != nil {
		ctx = obslog.WithLogger(ctx, m.cfg.Log)
	}
	jlog := m.log.With("job").WithTrace(tid)
	jlog.Info("job start",
		obslog.String("id", id), obslog.String("kind", req.Kind), obslog.Int("attempt", attempt))

	runSpan := m.cfg.Spans.Start(tid, "run", req.Kind)
	res, err := m.execute(ctx, job, req)
	runSpan.End()

	state, errKind := m.finishJob(id, req, res, err)
	resumed := res.resumed
	switch state {
	case StateDone:
		jlog.Info("job done", obslog.String("id", id), obslog.Int("resumed_shards", resumed))
	case StateInterrupted:
		jlog.Info("job interrupted for drain", obslog.String("id", id))
	case StateCanceled:
		jlog.Info("job canceled", obslog.String("id", id))
	default:
		jlog.Warn("job failed", obslog.String("id", id), obslog.String("kind", errKind))
	}
	m.exportTrace(tid, id)
}

// finishJob classifies one executed job's outcome, persists it and
// informs the breaker; it returns the final state and error kind.
func (m *Manager) finishJob(id string, req JobRequest, res execResult, err error) (string, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job := m.jobs[id]
	delete(m.cancels, id)
	defer m.progCond.Broadcast()
	class := configClass(req)
	switch kind := classifyRunError(err); {
	case err == nil:
		job.State = StateDone
		job.Report = res.report
		job.Cells = res.cells
		job.ResumedShards = res.resumed
		job.Cached = res.cached
		m.breakers.report(class, true)
		if m.mDone != nil {
			m.mDone.Inc()
		}
	case kind == KindCanceled && m.draining:
		// Drain checkpoint: runnable again on restart.
		job.State = StateInterrupted
		job.ErrorKind, job.Error = "", ""
	case kind == KindCanceled:
		job.State = StateCanceled
		job.ErrorKind = KindCanceled
		job.Error = err.Error()
	default:
		job.State = StateFailed
		job.ErrorKind = kind
		job.Error = err.Error()
		// Resource exhaustion (disk full during a checkpoint or record
		// write) is environmental, not a property of the config: the
		// job is marked retryable and the class breaker is NOT informed
		// — a full disk must not brown-out healthy config classes.
		if kind == KindResource {
			job.Retryable = true
		}
		if kind == KindLivelock || kind == KindTimeout {
			if m.breakers.report(class, false) && m.mBreaker != nil {
				m.mBreaker.Inc()
			}
		}
		if m.mFailed != nil {
			m.mFailed.Inc()
		}
	}
	m.persistLocked(job)
	return job.State, job.ErrorKind
}

// exportTrace writes the job's lifecycle spans as a Chrome trace-event
// file — crash-atomically, outside the manager lock.
func (m *Manager) exportTrace(tid obslog.TraceID, id string) {
	if m.cfg.TraceDir == "" || m.cfg.Spans == nil {
		return
	}
	var buf bytes.Buffer
	if err := m.cfg.Spans.WriteChromeTrace(&buf, tid); err != nil {
		m.log.Warn("trace export failed", obslog.String("id", id), obslog.String("err", err.Error()))
		return
	}
	path := filepath.Join(m.cfg.TraceDir, id+".trace.json")
	if err := atomicio.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		m.log.Warn("trace write failed", obslog.String("id", id), obslog.String("err", err.Error()))
	}
}

// execResult is one executed job's payload: the deterministic text
// report, checkpoint-resume metadata, and (campaign jobs) the
// structured result cells a fleet coordinator merges.
type execResult struct {
	report  string
	resumed int
	cells   []fault.Cell
	cached  bool // served from the result cache, not recomputed
}

// cacheManifest is the canonical content identity of a job: the
// normalized request fields that determine its report, plus the commit
// the binary was built from. Trace and TimeoutMs are deliberately
// absent — they are identity and policy, not content. Field order is
// fixed, so json.Marshal is a canonical encoding.
type cacheManifest struct {
	Tool      string   `json:"tool"`
	Commit    string   `json:"commit"`
	Kind      string   `json:"kind"`
	Arch      string   `json:"arch,omitempty"`
	Window    int      `json:"window"`
	Cluster   int      `json:"cluster,omitempty"`
	Workload  string   `json:"workload,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	Trials    int      `json:"trials,omitempty"`
	Archs     []string `json:"archs,omitempty"`
	Sites     []string `json:"sites,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
}

// cachePayload is what a cache entry stores: everything a later hit
// needs to answer the job without recomputing. Resumed-shard counts
// are invocation metadata, not content, and are not stored.
type cachePayload struct {
	Report string       `json:"report"`
	Cells  []fault.Cell `json:"cells,omitempty"`
}

// cacheKey derives the content-address for a normalized request.
func (m *Manager) cacheKey(req JobRequest) string {
	man, err := json.Marshal(cacheManifest{
		Tool: "usserve", Commit: m.cacheCommit,
		Kind: req.Kind, Arch: req.Arch, Window: req.Window, Cluster: req.Cluster,
		Workload: req.Workload, Seed: req.Seed, Trials: req.Trials,
		Archs: req.Archs, Sites: req.Sites, Workloads: req.Workloads,
	})
	if err != nil {
		return ""
	}
	return rescache.Key(man)
}

// execute dispatches one job: result-cache lookup first (integrity
// checked — a corrupt entry is quarantined inside the cache and comes
// back as a miss), then the engine entry point, then a best-effort
// store of the fresh result. A store failure never fails the job.
func (m *Manager) execute(ctx context.Context, job *Job, req JobRequest) (execResult, error) {
	if m.testExec != nil {
		rep, err := m.testExec(ctx, job)
		return execResult{report: rep}, err
	}
	var key string
	if m.cache != nil {
		key = m.cacheKey(req)
	}
	if key != "" {
		if data, ok := m.cache.Get(key); ok {
			var p cachePayload
			if err := json.Unmarshal(data, &p); err == nil {
				m.log.With("job").WithTrace(obslog.TraceID(job.Trace)).Info("served from cache",
					obslog.String("id", job.ID), obslog.String("key", key[:12]))
				return execResult{report: p.Report, cells: p.Cells, cached: true}, nil
			}
		}
	}
	res, err := m.compute(ctx, job, req)
	if err == nil && key != "" {
		if data, merr := json.Marshal(cachePayload{Report: res.report, Cells: res.cells}); merr == nil {
			m.cache.Put(key, data)
		}
	}
	return res, err
}

// compute runs one job on its engine entry point and renders the
// deterministic report.
func (m *Manager) compute(ctx context.Context, job *Job, req JobRequest) (execResult, error) {
	switch req.Kind {
	case "sim":
		cfg, err := exp.ArchConfig(req.Arch, req.Window, req.Cluster)
		if err != nil {
			return execResult{}, err
		}
		w, _ := kernelByName(req.Workload)
		res, err := core.RunCtx(ctx, w.Prog, w.Mem(), cfg)
		if err != nil {
			return execResult{}, err
		}
		return execResult{report: fmt.Sprintf(
			"usserve sim: arch=%s workload=%s window=%d cluster=%d\ncycles=%d retired=%d ipc=%.3f occupancy=%.1f\n",
			req.Arch, req.Workload, req.Window, req.Cluster,
			res.Stats.Cycles, res.Stats.Retired, res.Stats.IPC(), res.Stats.MeanOccupancy())}, nil
	case "sweep":
		rep, err := exp.IPCReportCtx(ctx, req.Window, req.Cluster)
		return execResult{report: rep}, err
	case "campaign":
		var sites []fault.Site
		for _, s := range req.Sites {
			site, _ := fault.SiteFromString(s) // validated at admission
			sites = append(sites, site)
		}
		var wls []workload.Workload
		for _, name := range req.Workloads {
			w, _ := campaignWorkloadByName(name) // validated at admission
			wls = append(wls, w)
		}
		rep, err := exp.RunFaultCampaignCtx(ctx, exp.FaultCampaignConfig{
			Seed:       req.Seed,
			Window:     req.Window,
			Cluster:    req.Cluster,
			N:          req.Trials,
			Archs:      req.Archs,
			Sites:      sites,
			Workloads:  wls,
			Detect:     fault.DetectGolden,
			Checkpoint: filepath.Join(m.cfg.Dir, "checkpoints", job.ID+".ckpt"),
			Progress: func(done, total int) {
				m.setProgress(job.ID, done, total)
			},
		})
		if err != nil {
			return execResult{}, err
		}
		// Resumed-shard count is invocation metadata: surfacing it in the
		// job record but zeroing it in the report keeps a resumed run's
		// report byte-identical to an uninterrupted one.
		resumed := rep.Resumed
		rep.Resumed = 0
		var b strings.Builder
		if err := rep.WriteText(&b); err != nil {
			return execResult{}, err
		}
		return execResult{report: b.String(), resumed: resumed, cells: rep.Cells}, nil
	}
	return execResult{}, fmt.Errorf("unknown job kind %q", req.Kind)
}

// classifyRunError maps an execution error into the taxonomy. A typed
// atomicio failure (or anything unwrapping to ENOSPC) is resource
// exhaustion — the simulation math was fine, the environment was not —
// and classifies as retryable rather than internal.
func classifyRunError(err error) string {
	var aioErr *atomicio.Error
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	case errors.Is(err, context.Canceled):
		return KindCanceled
	case errors.Is(err, core.ErrLivelock):
		return KindLivelock
	case errors.As(err, &aioErr), errors.Is(err, syscall.ENOSPC):
		return KindResource
	default:
		return KindInternal
	}
}

// setProgress records one job's shard-completion count and wakes every
// progress watcher.
func (m *Manager) setProgress(id string, done, total int) {
	m.mu.Lock()
	m.progress[id] = shardProgress{Done: done, Total: total}
	m.progCond.Broadcast()
	m.mu.Unlock()
}

// Progress is one job's progress view: its lifecycle state plus, for
// campaign jobs, the shard-completion count.
type Progress struct {
	ID          string `json:"id"`
	Trace       string `json:"trace,omitempty"`
	State       string `json:"state"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total"`
}

// terminalState reports whether a job state is final.
func terminalState(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCanceled, StateInterrupted:
		return true
	}
	return false
}

// progressLocked composes one job's progress view; m.mu must be held.
func (m *Manager) progressLocked(job *Job) Progress {
	p := m.progress[job.ID]
	return Progress{
		ID: job.ID, Trace: job.Trace, State: job.State,
		ShardsDone: p.Done, ShardsTotal: p.Total,
	}
}

// Progress returns one job's current progress.
func (m *Manager) Progress(id string) (Progress, *Error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return Progress{}, &Error{Kind: KindNotFound, Msg: "no job " + id, Status: 404}
	}
	return m.progressLocked(job), nil
}

// WaitProgress blocks until the job's progress view changes from prev
// (or the job is already terminal, or wake fires), then returns the
// current view. wake lets callers bound the wait: progCond has no
// timeout, so a watcher arranges an external Broadcast (e.g. via
// context.AfterFunc) and WaitProgress returns the unchanged view for
// the caller to notice its context died.
func (m *Manager) WaitProgress(id string, prev Progress, wake func() bool) (Progress, *Error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		job, ok := m.jobs[id]
		if !ok {
			return Progress{}, &Error{Kind: KindNotFound, Msg: "no job " + id, Status: 404}
		}
		cur := m.progressLocked(job)
		if cur != prev || terminalState(cur.State) || (wake != nil && wake()) {
			return cur, nil
		}
		m.progCond.Wait()
	}
}

// BreakerStates returns every config class whose breaker is not
// currently closed, keyed by class.
func (m *Manager) BreakerStates() map[string]string { return m.breakers.states() }

// snapshot copies a job for return outside the lock.
func snapshot(job *Job) *Job {
	cp := *job
	return &cp
}

// persistLocked writes the job record crash-atomically; m.mu must be
// held. Persistence failures are deliberately non-fatal for the job
// itself (the in-memory state is authoritative while the process
// lives), but they are counted and logged — a silently unpersisted
// record is exactly the kind of state the resource-exhaustion chaos
// run exists to notice.
func (m *Manager) persistLocked(job *Job) {
	data, err := json.MarshalIndent(job, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(m.cfg.Dir, "jobs", job.ID+".json")
	if err := atomicio.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		if m.mPersistErr != nil {
			m.mPersistErr.Inc()
		}
		m.log.Warn("job record persist failed",
			obslog.String("id", job.ID), obslog.String("err", err.Error()))
	}
}

// gaugeDepth publishes the queue depth; m.mu must be held.
func (m *Manager) gaugeDepth() {
	if m.mDepth != nil {
		m.mDepth.Set(float64(m.depth))
	}
}
