package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ultrascalar/internal/core"
	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
)

// syncBuffer is a goroutine-safe log sink for tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func counterValue(reg *obs.Registry, name string) int64 {
	return reg.Peek(0).Counters[name]
}

// TestBreakerTransitionMetrics walks one class through the full breaker
// lifecycle — closed → open → (cooldown) → half-open probe → closed —
// and asserts every transition through counter deltas while concurrent
// submissions hammer the open breaker (the -race exercise).
func TestBreakerTransitionMetrics(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	reg := obs.NewRegistry()
	var logBuf syncBuffer
	lg := obslog.New(&logBuf, obslog.Options{Level: obslog.LevelDebug})
	livelock := true
	m := newTestManager(t, Config{
		Workers: 1, BreakerThreshold: 2, BreakerCooldown: 30 * time.Second,
		Clock: clock, Metrics: reg, Log: lg,
	})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		if livelock {
			return "", fmt.Errorf("run: %w", core.ErrLivelock)
		}
		return "ok", nil
	}

	req := JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}
	class := configClass(req)
	transitions := func(to string) int64 {
		return counterValue(reg, obs.LabeledName("serve.breaker_transitions",
			obs.Label{Key: "class", Value: class}, obs.Label{Key: "to", Value: to}))
	}
	stateGauge := func() float64 {
		return reg.Peek(0).Gauges[obs.LabeledName("serve.breaker_state",
			obs.Label{Key: "class", Value: class})]
	}

	for i := 0; i < 2; i++ {
		job, serr := m.Submit(req)
		if serr != nil {
			t.Fatalf("Submit %d: %v", i, serr)
		}
		waitState(t, m, job.ID, StateFailed)
	}
	if got := transitions(BreakerOpen); got != 1 {
		t.Fatalf("transitions to open = %d, want 1", got)
	}
	if got := stateGauge(); got != 2 {
		t.Fatalf("breaker state gauge = %v, want 2 (open)", got)
	}
	if got := m.BreakerStates()[class]; got != BreakerOpen {
		t.Fatalf("BreakerStates[%s] = %q, want open", class, got)
	}

	// Concurrent submissions against the open breaker: all rejected,
	// no transition events, no data races.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, serr := m.Submit(req); serr == nil || serr.Kind != KindBreakerOpen {
					t.Errorf("open breaker admitted a job: %v", serr)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := transitions(BreakerOpen); got != 1 {
		t.Fatalf("rejections moved the transition counter: %d", got)
	}

	// Cooldown over: exactly one probe admitted (open → half-open).
	advance(31 * time.Second)
	livelock = false
	probe, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("probe rejected: %v", serr)
	}
	if got := transitions(BreakerHalfOpen); got != 1 {
		t.Fatalf("transitions to half-open = %d, want 1", got)
	}
	if got := stateGauge(); got != 1 {
		t.Fatalf("breaker state gauge = %v, want 1 (half-open)", got)
	}

	// The probe's success closes the breaker.
	waitState(t, m, probe.ID, StateDone)
	if got := transitions(BreakerClosed); got != 1 {
		t.Fatalf("transitions to closed = %d, want 1", got)
	}
	if got := stateGauge(); got != 0 {
		t.Fatalf("breaker state gauge = %v, want 0 (closed)", got)
	}
	if _, open := m.BreakerStates()[class]; open {
		t.Error("closed class still listed in BreakerStates")
	}
	if !strings.Contains(logBuf.String(), `"msg":"breaker transition"`) {
		t.Error("breaker transitions not logged")
	}
}

// TestCampaignJobTelemetry runs a real campaign job with full telemetry
// and checks the tentpole contract: one trace ID across the job record,
// every log line, every span, and a Perfetto-loadable trace file.
func TestCampaignJobTelemetry(t *testing.T) {
	var logBuf syncBuffer
	lg := obslog.New(&logBuf, obslog.Options{Level: obslog.LevelDebug})
	rec := obslog.NewSpanRecorder(obslog.SpanOptions{Logger: lg})
	reg := obs.NewRegistry()
	traceDir := t.TempDir()
	m := newTestManager(t, Config{
		Workers: 1, Metrics: reg, Log: lg, Spans: rec, TraceDir: traceDir,
	})

	job, serr := m.Submit(JobRequest{Kind: "campaign", Window: 4, Trials: 1})
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	wantTrace := string(obslog.DeriveTraceID(job.ID))
	if job.Trace != wantTrace {
		t.Fatalf("job trace = %q, want %q", job.Trace, wantTrace)
	}
	waitState(t, m, job.ID, StateDone)

	// Progress reached completion.
	prog, serr := m.Progress(job.ID)
	if serr != nil {
		t.Fatalf("Progress: %v", serr)
	}
	if prog.ShardsTotal == 0 || prog.ShardsDone != prog.ShardsTotal {
		t.Errorf("progress = %d/%d, want complete", prog.ShardsDone, prog.ShardsTotal)
	}

	// One trace ID across all the job's spans: queue, run, per-shard
	// work and checkpoints all carry it.
	events := rec.Events(obslog.TraceID(wantTrace))
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Name]++
	}
	for _, want := range []string{"queue", "run", "shard", "checkpoint"} {
		if kinds[want] == 0 {
			t.Errorf("no %q span on the job trace (have %v)", want, kinds)
		}
	}
	if kinds["shard"] != prog.ShardsTotal {
		t.Errorf("shard spans = %d, want %d", kinds["shard"], prog.ShardsTotal)
	}

	// The log tells the same story under the same trace ID, and no
	// line of this job's lifecycle carries a different one.
	logText := logBuf.String()
	for _, msg := range []string{"job submitted", "job start", "campaign start", "campaign done", "job done"} {
		if !strings.Contains(logText, `"msg":"`+msg+`"`) {
			t.Errorf("log missing %q event", msg)
		}
	}
	traced := 0
	sc := bufio.NewScanner(strings.NewReader(logText))
	for sc.Scan() {
		var line struct {
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable log line %q: %v", sc.Text(), err)
		}
		if line.Trace != "" && line.Trace != wantTrace {
			t.Errorf("log line carries foreign trace %q: %s", line.Trace, sc.Text())
		}
		if line.Trace == wantTrace {
			traced++
		}
	}
	if traced < 5 {
		t.Errorf("only %d log lines carry the job trace", traced)
	}

	// The exported lifecycle trace is Perfetto-loadable. The export
	// runs after the job turns terminal (outside the manager lock), so
	// give the file a moment to land.
	tracePath := filepath.Join(traceDir, job.ID+".trace.json")
	var data []byte
	var err error
	for deadline := time.Now().Add(10 * time.Second); ; {
		data, err = os.ReadFile(tracePath)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace file: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Errorf("exported job trace invalid: %v", err)
	}
	if !strings.Contains(string(data), wantTrace) {
		t.Error("trace file does not mention the job's trace ID")
	}
}

// TestReportsByteIdenticalWithTelemetry runs the same jobs with
// telemetry fully on and fully off: the reports must not differ by one
// byte — telemetry is a side channel, never an input.
func TestReportsByteIdenticalWithTelemetry(t *testing.T) {
	run := func(telemetry bool) map[string]string {
		cfg := Config{Workers: 1}
		if telemetry {
			var logBuf syncBuffer
			lg := obslog.New(&logBuf, obslog.Options{Level: obslog.LevelDebug})
			cfg.Log = lg
			cfg.Spans = obslog.NewSpanRecorder(obslog.SpanOptions{Logger: lg})
			cfg.Metrics = obs.NewRegistry()
			cfg.TraceDir = t.TempDir()
		}
		m := newTestManager(t, cfg)
		reports := map[string]string{}
		for _, req := range []JobRequest{
			{Kind: "sim", Arch: "hybrid", Window: 8, Workload: "fib"},
			{Kind: "campaign", Window: 4, Trials: 1, Seed: 7},
		} {
			job, serr := m.Submit(req)
			if serr != nil {
				t.Fatalf("Submit: %v", serr)
			}
			done := waitState(t, m, job.ID, StateDone)
			reports[req.Kind] = done.Report
		}
		return reports
	}
	on := run(true)
	off := run(false)
	for kind, rep := range off {
		if on[kind] != rep {
			t.Errorf("%s report differs with telemetry on:\n--- off ---\n%s\n--- on ---\n%s", kind, rep, on[kind])
		}
	}
}

// TestHTTPPrometheusAndProgress exercises the new HTTP surface: the
// Prometheus exposition validates against the checked-in schema and the
// progress endpoint reports shard counts both as a one-shot JSON
// object and as an NDJSON stream that terminates with the job.
func TestHTTPPrometheusAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	m, srv := newTestServer(t, Config{Workers: 1, Metrics: reg})

	job, serr := m.Submit(JobRequest{Kind: "campaign", Window: 4, Trials: 1})
	if serr != nil {
		t.Fatal(serr)
	}

	// Stream progress while the job runs; the stream must end on its
	// own once the job is terminal, with the last line complete.
	resp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/progress?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	var last Progress
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines++
	}
	resp.Body.Close()
	if lines < 2 {
		t.Errorf("stream produced %d lines, want progress updates", lines)
	}
	if last.State != StateDone || last.ShardsDone != last.ShardsTotal || last.ShardsTotal == 0 {
		t.Errorf("final stream line = %+v, want done with full shards", last)
	}
	if last.Trace != string(obslog.DeriveTraceID(job.ID)) {
		t.Errorf("progress trace = %q", last.Trace)
	}

	// One-shot progress after completion.
	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var once Progress
	if err := json.NewDecoder(resp.Body).Decode(&once); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if once != last {
		t.Errorf("one-shot progress %+v != final stream line %+v", once, last)
	}

	// Unknown job → 404.
	resp, err = http.Get(srv.URL + "/jobs/job-424242/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown job progress = %d, want 404", resp.StatusCode)
	}

	// The Prometheus exposition validates and carries the route
	// metrics the requests above just generated.
	resp, err = http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if _, err := prom.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("prom content type = %q", ct)
	}
	if err := obs.ValidatePrometheus(prom.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, prom.String())
	}
	for _, want := range []string{
		"# TYPE serve_http_ms histogram",
		"# TYPE serve_http_requests counter",
		`serve_http_requests{route="GET /jobs/{id}/progress",code="200"}`,
		"# TYPE serve_queue_depth gauge",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, prom.String())
		}
	}
	if n := len(reg.Snapshots()); n != 0 {
		t.Errorf("prom scrape appended %d snapshots", n)
	}
}

// TestHTTPPprofGated: the pprof surface exists only when enabled.
func TestHTTPPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof reachable without EnablePprof")
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index = %d with EnablePprof, want 200", resp.StatusCode)
	}
}
