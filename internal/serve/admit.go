// Adaptive admission: a CoDel-style queue-delay controller with
// per-job-class shedding, replacing "is the queue full?" as the only
// overload signal. Queue *depth* is a memory bound, not a latency
// bound: a queue of 16 one-minute campaigns is a sixteen-minute wait
// that a fixed-depth check happily accepts. CoDel's insight (Nichols &
// Jacobson) is that the standing queue — delay persistently above a
// small target — is the congestion signal, while short bursts above
// target are fine and must not shed. The controller here applies that
// one layer up from packets: when measured queue delay stays above
// AdmitTarget for a full AdmitInterval, the service starts shedding
// the lowest-priority job class, and escalates one class per further
// interval of sustained overload. Any observation back under the
// target collapses the state to "admit everything" immediately.
//
// The class order encodes what the service is for: campaigns (the
// expensive, checkpointed, fleet-coordinated work) are never
// delay-shed — only the hard QueueCap bound refuses them; sweeps go
// next-to-last; interactive sims are shed first. The hard QueueCap
// check stays as the memory backstop for every class.
package serve

import "time"

// Job classes in shed-priority order: lower values are shed first.
const (
	classSim = iota
	classSweep
	classCampaign
	numClasses
)

// maxShedLevel caps escalation one short of the top class: campaigns
// are never shed by the delay controller, only by QueueCap.
const maxShedLevel = numClasses - 1

// classPriority maps a job kind to its shed-priority class.
func classPriority(kind string) int {
	switch kind {
	case "campaign":
		return classCampaign
	case "sweep":
		return classSweep
	default:
		return classSim
	}
}

// className is the metric-label spelling of a class.
func className(class int) string {
	switch class {
	case classCampaign:
		return "campaign"
	case classSweep:
		return "sweep"
	default:
		return "sim"
	}
}

// admitState is the delay controller. It is owned by the Manager and
// only touched under m.mu; observations come from two places — every
// dequeue reports the claimed entry's full sojourn time, and every
// Submit reports the head-of-line age, so a stalled worker pool raises
// pressure even when nothing is being dequeued.
type admitState struct {
	target   time.Duration
	interval time.Duration
	disabled bool

	// firstAbove is when delay first rose above target without coming
	// back down (zero = currently below target).
	firstAbove time.Time
	// level is the current shed severity: classes below it are shed.
	level int
	// lastDelay is the most recent observation, for logs and errors.
	lastDelay time.Duration
}

// observe feeds one queue-delay measurement to the controller.
func (a *admitState) observe(d time.Duration, now time.Time) {
	if a.disabled {
		return
	}
	a.lastDelay = d
	if d < a.target {
		// One good observation ends the overload episode: CoDel's
		// "leave dropping state the moment the standing queue drains".
		a.firstAbove = time.Time{}
		a.level = 0
		return
	}
	if a.firstAbove.IsZero() {
		// A burst above target gets a full interval of grace before any
		// shedding starts.
		a.firstAbove = now
		return
	}
	lvl := int(now.Sub(a.firstAbove) / a.interval)
	if lvl > maxShedLevel {
		lvl = maxShedLevel
	}
	if lvl > a.level {
		a.level = lvl
	}
}

// sheds reports whether the controller currently sheds the class.
func (a *admitState) sheds(class int) bool {
	return !a.disabled && class < a.level
}

// queueDelayMsBounds buckets queue sojourn times from sub-millisecond
// idle claims out to minute-scale waits behind queued campaigns.
var queueDelayMsBounds = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000,
}
