package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ultrascalar/internal/obs"
	"ultrascalar/internal/rescache"
)

// cacheTestManager builds a manager with the result cache enabled and
// real job execution (the cache path is bypassed when testExec is set).
func cacheTestManager(t *testing.T) (*Manager, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cacheDir := filepath.Join(t.TempDir(), "cache")
	m := newTestManager(t, Config{
		Workers: 1, CacheDir: cacheDir, Metrics: reg,
	})
	return m, cacheDir, reg
}

// TestCacheHitByteIdentical: the second identical request is served
// from the cache, marked Cached, and its report is byte-identical to
// the computed one; a different config misses.
func TestCacheHitByteIdentical(t *testing.T) {
	m, _, reg := cacheTestManager(t)
	req := JobRequest{Kind: "sim", Arch: "ultra1", Window: 8, Workload: "fib"}

	first, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	computed := waitState(t, m, first.ID, StateDone)
	if computed.Cached {
		t.Fatal("first run claims to be cached")
	}
	if computed.Report == "" {
		t.Fatal("first run produced no report")
	}

	second, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit (cached): %v", serr)
	}
	hit := waitState(t, m, second.ID, StateDone)
	if !hit.Cached {
		t.Fatal("second identical run was not served from cache")
	}
	if hit.Report != computed.Report {
		t.Fatalf("cache hit not byte-identical:\n--- computed ---\n%s--- cached ---\n%s", computed.Report, hit.Report)
	}
	if v := reg.Counter("serve.cache.hits").Value(); v != 1 {
		t.Fatalf("cache hits = %d, want 1", v)
	}

	other, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra2", Window: 8, Workload: "fib"})
	if serr != nil {
		t.Fatalf("Submit (other config): %v", serr)
	}
	if j := waitState(t, m, other.ID, StateDone); j.Cached {
		t.Fatal("different config was served from cache")
	}
}

// TestCacheCampaignHitCarriesCells: a cached campaign job still
// returns its structured cells (the fleet merge path reads them, not
// the text report).
func TestCacheCampaignHitCarriesCells(t *testing.T) {
	m, _, _ := cacheTestManager(t)
	req := JobRequest{
		Kind: "campaign", Window: 4, Trials: 1, Seed: 1,
		Archs: []string{"ultra1"}, Sites: []string{"result-bit"}, Workloads: []string{"fib"},
	}
	first, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	computed := waitState(t, m, first.ID, StateDone)
	if len(computed.Cells) == 0 {
		t.Fatal("computed campaign has no cells")
	}
	second, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit (cached): %v", serr)
	}
	hit := waitState(t, m, second.ID, StateDone)
	if !hit.Cached {
		t.Fatal("identical campaign was not served from cache")
	}
	if hit.Report != computed.Report || len(hit.Cells) != len(computed.Cells) {
		t.Fatalf("cached campaign mismatch: report identical=%v cells %d vs %d",
			hit.Report == computed.Report, len(hit.Cells), len(computed.Cells))
	}
}

// TestCacheCorruptionRecomputedNeverServed: corrupt the stored entry;
// the next identical request must quarantine it and recompute — the
// response is byte-identical to the original computation and not
// marked cached; the one after that hits the re-stored clean entry.
func TestCacheCorruptionRecomputedNeverServed(t *testing.T) {
	m, cacheDir, reg := cacheTestManager(t)
	req := JobRequest{Kind: "sim", Arch: "hybrid", Window: 8, Workload: "fib"}

	first, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	computed := waitState(t, m, first.ID, StateDone)

	// Flip bytes in every stored entry (there is exactly one).
	ents, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".entry") {
			continue
		}
		path := filepath.Join(cacheDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted != 1 {
		t.Fatalf("corrupted %d entries, want 1", corrupted)
	}

	recomputed, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit after corruption: %v", serr)
	}
	j := waitState(t, m, recomputed.ID, StateDone)
	if j.Cached {
		t.Fatal("corrupt entry was served")
	}
	if j.Report != computed.Report {
		t.Fatal("recomputed report differs from original")
	}
	if v := reg.Counter("serve.cache.quarantines").Value(); v != 1 {
		t.Fatalf("quarantines = %d, want 1", v)
	}
	qents, err := os.ReadDir(filepath.Join(cacheDir, rescache.QuarantineDir))
	if err != nil || len(qents) != 1 {
		t.Fatalf("quarantine dir holds %d entries (err %v), want 1", len(qents), err)
	}

	again, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("Submit after recompute: %v", serr)
	}
	if j := waitState(t, m, again.ID, StateDone); !j.Cached || j.Report != computed.Report {
		t.Fatalf("re-stored entry: cached=%v identical=%v", j.Cached, j.Report == computed.Report)
	}
}
