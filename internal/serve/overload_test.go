package serve

import (
	"context"
	"testing"
	"time"

	"ultrascalar/internal/obs"
)

// Admission-queue behavior under sustained overload, checked against
// M/M/c queueing intuition in its deterministic, coarse-bound form.
// With c executors and a queue capacity Q, the system holds at most
// c + Q jobs; a submission arriving beyond that MUST be shed with
// 503 + Retry-After, and admissions are conserved: over any interval,
//
//	admitted <= departures + (c + Q)
//
// (Little's-law bookkeeping — what enters is what leaves plus what
// fits in the system.) The test drives the queue with a blocking
// executor so arrival and service are fully controlled: no sleeps, no
// rate estimation, and the bounds are exact rather than statistical.

// overloadManager builds a manager whose jobs block until released.
// The delay controller is disabled (AdmitTarget < 0): these tests pin
// the hard-bound conservation arithmetic, which must hold with or
// without CoDel on top, and the blocking executor would otherwise
// accumulate real-clock queue delay and make shedding timing-dependent.
func overloadManager(t *testing.T, queueCap, workers int) (*Manager, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	m := newTestManager(t, Config{QueueCap: queueCap, Workers: workers,
		AdmitTarget: -1, Metrics: obs.NewRegistry()})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		select {
		case <-release:
			return "ok\n", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	return m, release
}

func TestOverloadShedRateAndQueueDepth(t *testing.T) {
	const (
		queueCap = 4
		workers  = 2
		offered  = 50
	)
	m, release := overloadManager(t, queueCap, workers)

	// Saturate: a burst far beyond system capacity. Everything past
	// c + Q must shed; the first Q admissions are guaranteed (workers
	// may or may not have dequeued yet, so admitted lands in [Q, Q+c]).
	var admitted, shed int
	for i := 0; i < offered; i++ {
		_, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"})
		if serr == nil {
			admitted++
			continue
		}
		if serr.Kind != KindShed {
			t.Fatalf("overload rejection kind = %q, want %q", serr.Kind, KindShed)
		}
		if serr.Status != 503 {
			t.Fatalf("shed status = %d, want 503", serr.Status)
		}
		if serr.RetryAfter <= 0 {
			t.Fatalf("shed without a Retry-After hint: %+v", serr)
		}
		shed++
	}
	if admitted < queueCap || admitted > queueCap+workers {
		t.Fatalf("burst admitted %d jobs, want within [Q, Q+c] = [%d, %d]", admitted, queueCap, queueCap+workers)
	}
	if shed != offered-admitted {
		t.Fatalf("shed %d + admitted %d != offered %d", shed, admitted, offered)
	}

	// Top the system up to full saturation: the burst's admitted count
	// lands anywhere in [Q, Q+c] depending on how quickly workers
	// claimed, and the sustained conservation arithmetic below needs
	// exactly c running + Q queued. Keep offering until Q+c jobs have
	// been admitted; the extra offers join the shed accounting.
	offered2 := 0
	deadline := time.Now().Add(5 * time.Second)
	for admitted < queueCap+workers {
		if time.Now().After(deadline) {
			t.Fatalf("system never saturated: admitted %d, want %d", admitted, queueCap+workers)
		}
		offered2++
		if _, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}); serr == nil {
			admitted++
		} else {
			shed++
			time.Sleep(time.Millisecond)
		}
	}
	// The saturated queue must be visible to a scraper: depth gauge at
	// capacity (workers hold c more outside the queue), shed counter
	// matching the observed rejections. Workers drain asynchronously,
	// so wait for the depth gauge to settle at Q.
	for {
		if depth := m.mDepth.Value(); depth == queueCap {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth gauge = %v, want %d (saturated)", m.mDepth.Value(), queueCap)
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.mShed.Value(); got != int64(shed) {
		t.Fatalf("serve.shed = %d, want %d", got, shed)
	}

	// Sustained phase: serve k jobs while re-offering after each
	// departure. Conservation says each departure frees exactly one
	// admission slot — the re-offer is admitted, the one after it shed.
	const departures = 10
	for i := 0; i < departures; i++ {
		release <- struct{}{}
		// One slot opened; the queue refills on the first try or the
		// next few (the departure must propagate through the worker).
		ok := false
		for try := 0; try < 1000 && !ok; try++ {
			if _, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}); serr == nil {
				ok = true
				admitted++
			} else {
				shed++ // probes that lose the race still count as sheds
				time.Sleep(time.Millisecond)
			}
		}
		if !ok {
			t.Fatalf("departure %d never freed an admission slot", i)
		}
		// Refilled: the very next submission must shed again.
		if _, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}); serr == nil {
			t.Fatalf("after refill %d the system admitted beyond c+Q", i)
		} else {
			shed++
		}
	}

	// M/M/c conservation bound over the whole run: admitted jobs never
	// exceed departures plus the system's holding capacity.
	if admitted > departures+queueCap+workers {
		t.Fatalf("admitted %d > departures %d + (c+Q) %d — conservation violated",
			admitted, departures, queueCap+workers)
	}
	// Shed-rate sanity against the offered load: of the offered+2k
	// submissions, at most departures + c + Q could ever be served, so
	// the shed fraction has a hard floor.
	totalOffered := offered + 2*departures
	minShed := totalOffered - departures - queueCap - workers
	if shed < minShed {
		t.Fatalf("shed %d of %d offered; overload floor is %d", shed, totalOffered, minShed)
	}
	if got := m.mShed.Value(); got != int64(shed) {
		t.Fatalf("serve.shed = %d, want %d after sustained phase", got, shed)
	}

	// Unblock the remaining jobs so Drain in cleanup is quick: a
	// receive on a closed channel completes immediately.
	close(release)
}

// TestOverloadRetryAfterScalesWithPressure: Retry-After is a real
// hint, present on every shed, and the queue-depth gauge tracks the
// drain back to idle — the signal the fleet client and operators key
// off.
func TestOverloadDrainsBackToIdle(t *testing.T) {
	const queueCap = 3
	m, release := overloadManager(t, queueCap, 1)
	var ids []string
	for i := 0; i < 12; i++ {
		job, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"})
		if serr == nil {
			ids = append(ids, job.ID)
		}
	}
	close(release) // serve everything
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.mDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth gauge stuck at %v after drain", m.mDepth.Value())
		}
		time.Sleep(time.Millisecond)
	}
	// The shed counter reflects exactly the rejected portion.
	if got, want := m.mShed.Value(), int64(12-len(ids)); got != want {
		t.Fatalf("serve.shed = %d, want %d", got, want)
	}
}
