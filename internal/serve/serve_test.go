package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ultrascalar/internal/core"
	"ultrascalar/internal/obs"
)

// newTestManager builds a manager in a temp dir with fast defaults and
// drains it on cleanup so no worker goroutines outlive the test.
func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return m
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, m *Manager, id string, want ...string) *Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, serr := m.Get(id)
		if serr != nil {
			t.Fatalf("Get(%s): %v", id, serr)
		}
		for _, s := range want {
			if job.State == s {
				return job
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	job, _ := m.Get(id)
	t.Fatalf("job %s stuck in state %q, wanted one of %v", id, job.State, want)
	return nil
}

func TestSimJobRunsToDone(t *testing.T) {
	m := newTestManager(t, Config{})
	job, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 8, Workload: "fib"})
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	if job.ID != "job-000001" || job.State != StateQueued {
		t.Fatalf("unexpected submit result: %+v", job)
	}
	done := waitState(t, m, job.ID, StateDone)
	if !strings.Contains(done.Report, "arch=ultra1 workload=fib window=8") {
		t.Errorf("report missing config echo:\n%s", done.Report)
	}
	if !strings.Contains(done.Report, "ipc=") {
		t.Errorf("report missing ipc:\n%s", done.Report)
	}
	// Deterministic: a second identical job yields a byte-identical report.
	job2, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 8, Workload: "fib"})
	if serr != nil {
		t.Fatalf("Submit 2: %v", serr)
	}
	done2 := waitState(t, m, job2.ID, StateDone)
	if done2.Report != done.Report {
		t.Errorf("identical sim requests produced different reports:\n%s\nvs\n%s", done.Report, done2.Report)
	}
}

func TestInvalidConfigRejectedAtAdmission(t *testing.T) {
	m := newTestManager(t, Config{})
	cases := []JobRequest{
		{Kind: "sim", Arch: "ultra3", Window: 8},
		{Kind: "sim", Arch: "ultra1", Window: 0},
		{Kind: "sim", Arch: "ultra1", Window: 8, Workload: "nope"},
		{Kind: "warp", Window: 8},
		{Kind: "campaign", Window: 8, Trials: -1},
	}
	for _, req := range cases {
		if _, serr := m.Submit(req); serr == nil || serr.Kind != KindInvalidConfig || serr.Status != 400 {
			t.Errorf("request %+v: got %v, want invalid-config/400", req, serr)
		}
	}
	if len(m.List()) != 0 {
		t.Error("rejected requests must not create jobs")
	}
}

func TestQueueSheddingWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	block := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, QueueCap: 2, Metrics: reg})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		select {
		case <-block:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	// First job is claimed by the worker; the next two fill the queue.
	first, serr := m.Submit(JobRequest{Kind: "sweep", Window: 4})
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	waitState(t, m, first.ID, StateRunning)
	for i := 0; i < 2; i++ {
		if _, serr := m.Submit(JobRequest{Kind: "sweep", Window: 4}); serr != nil {
			t.Fatalf("Submit queued %d: %v", i, serr)
		}
	}
	_, serr = m.Submit(JobRequest{Kind: "sweep", Window: 4})
	if serr == nil || serr.Kind != KindShed || serr.Status != 503 || serr.RetryAfter <= 0 {
		t.Fatalf("expected shed/503 with Retry-After, got %v", serr)
	}
	snap := reg.Peek(0)
	if got := snap.Counters["serve.shed"]; got != 1 {
		t.Errorf("serve.shed = %d, want 1", got)
	}
	if got := snap.Gauges["serve.queue_depth"]; got != 2 {
		t.Errorf("serve.queue_depth = %v, want 2", got)
	}
	close(block)
}

func TestBreakerTripsCoolsAndProbes(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	livelock := true
	m := newTestManager(t, Config{
		Workers: 1, BreakerThreshold: 2, BreakerCooldown: 30 * time.Second, Clock: clock,
	})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		if livelock {
			return "", fmt.Errorf("run: %w", core.ErrLivelock)
		}
		return "ok", nil
	}

	req := JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}
	for i := 0; i < 2; i++ {
		job, serr := m.Submit(req)
		if serr != nil {
			t.Fatalf("Submit %d: %v", i, serr)
		}
		failed := waitState(t, m, job.ID, StateFailed)
		if failed.ErrorKind != KindLivelock {
			t.Fatalf("job %d error kind = %q, want livelock", i, failed.ErrorKind)
		}
	}
	// Two consecutive livelocks at threshold 2: the class is open.
	_, serr := m.Submit(req)
	if serr == nil || serr.Kind != KindBreakerOpen || serr.Status != 503 || serr.RetryAfter <= 0 {
		t.Fatalf("expected breaker-open/503 with Retry-After, got %v", serr)
	}
	// A different config class is unaffected.
	other, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra2", Window: 4, Workload: "fib"})
	if serr != nil {
		t.Fatalf("healthy class rejected: %v", serr)
	}
	waitState(t, m, other.ID, StateFailed)

	// After the cooldown a single probe is admitted; its success closes
	// the breaker for good.
	advance(31 * time.Second)
	livelock = false
	probe, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("half-open probe rejected: %v", serr)
	}
	waitState(t, m, probe.ID, StateDone)
	healed, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("closed breaker rejected: %v", serr)
	}
	waitState(t, m, healed.ID, StateDone)
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	m := newTestManager(t, Config{
		Workers: 1, BreakerThreshold: 1, BreakerCooldown: 10 * time.Second, Clock: clock,
	})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		return "", fmt.Errorf("run: %w", core.ErrLivelock)
	}
	req := JobRequest{Kind: "sim", Arch: "hybrid", Window: 4, Workload: "fib"}
	job, _ := m.Submit(req)
	waitState(t, m, job.ID, StateFailed)
	if _, serr := m.Submit(req); serr == nil || serr.Kind != KindBreakerOpen {
		t.Fatalf("expected open breaker, got %v", serr)
	}
	advance(11 * time.Second)
	probe, serr := m.Submit(req)
	if serr != nil {
		t.Fatalf("probe rejected: %v", serr)
	}
	waitState(t, m, probe.ID, StateFailed)
	// The failed probe re-opens the breaker for a fresh cooldown.
	if _, serr := m.Submit(req); serr == nil || serr.Kind != KindBreakerOpen {
		t.Fatalf("expected re-opened breaker, got %v", serr)
	}
}

func TestTimeoutClassifiesAsTimeout(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, DefaultTimeout: 20 * time.Millisecond})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		<-ctx.Done()
		return "", &core.CanceledError{Cycle: 42, Err: ctx.Err()}
	}
	job, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"})
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	failed := waitState(t, m, job.ID, StateFailed)
	if failed.ErrorKind != KindTimeout {
		t.Errorf("error kind = %q, want timeout", failed.ErrorKind)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	block := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, QueueCap: 4})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		select {
		case <-block:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	running, _ := m.Submit(JobRequest{Kind: "sweep", Window: 4})
	waitState(t, m, running.ID, StateRunning)
	queued, _ := m.Submit(JobRequest{Kind: "sweep", Window: 4})

	got, serr := m.Cancel(queued.ID)
	if serr != nil || got.State != StateCanceled {
		t.Fatalf("cancel queued: %v %+v", serr, got)
	}
	if _, serr := m.Cancel(running.ID); serr != nil {
		t.Fatalf("cancel running: %v", serr)
	}
	canceled := waitState(t, m, running.ID, StateCanceled)
	if canceled.ErrorKind != KindCanceled {
		t.Errorf("running cancel kind = %q, want canceled", canceled.ErrorKind)
	}
	// The canceled queued job must never run.
	close(block)
	time.Sleep(20 * time.Millisecond)
	if job, _ := m.Get(queued.ID); job.State != StateCanceled || job.Attempts != 0 {
		t.Errorf("canceled queued job ran anyway: %+v", job)
	}
	if _, serr := m.Cancel("job-999999"); serr == nil || serr.Kind != KindNotFound {
		t.Errorf("cancel of unknown job: got %v, want not-found", serr)
	}
}

func TestDrainStopsAdmissionAndInterruptsCampaigns(t *testing.T) {
	started := make(chan struct{}, 1)
	m := newTestManager(t, Config{Workers: 1})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		started <- struct{}{}
		<-ctx.Done()
		return "", fmt.Errorf("campaign stopped: %w", ctx.Err())
	}
	job, serr := m.Submit(JobRequest{Kind: "campaign", Window: 2, Trials: 1})
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Drain(ctx)

	if got, _ := m.Get(job.ID); got.State != StateInterrupted {
		t.Errorf("campaign job state after drain = %q, want interrupted", got.State)
	}
	if _, serr := m.Submit(JobRequest{Kind: "sweep", Window: 4}); serr == nil || serr.Kind != KindDraining {
		t.Errorf("submit during drain: got %v, want draining", serr)
	}
	if !m.Draining() {
		t.Error("Draining() = false after Drain")
	}
}

func TestRecoveryReenqueuesPersistedJobs(t *testing.T) {
	dir := t.TempDir()
	// Fabricate the on-disk aftermath of a SIGKILL: one job was running,
	// one still queued.
	write := func(job Job) {
		data := fmt.Sprintf(`{"id":%q,"request":{"kind":"sim","arch":"ultra1","window":4,"workload":"fib"},"state":%q,"attempts":1}`,
			job.ID, job.State)
		if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "jobs", job.ID+".json"), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(Job{ID: "job-000001", State: StateRunning})
	write(Job{ID: "job-000002", State: StateQueued})

	m := newTestManager(t, Config{Dir: dir})
	first := waitState(t, m, "job-000001", StateDone)
	second := waitState(t, m, "job-000002", StateDone)
	if first.Attempts != 2 || second.Attempts != 2 {
		t.Errorf("attempts = %d, %d; want 2, 2 (recovered rerun)", first.Attempts, second.Attempts)
	}
	// New submissions continue the ID sequence past the recovered jobs.
	job, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"})
	if serr != nil {
		t.Fatalf("Submit: %v", serr)
	}
	if job.ID != "job-000003" {
		t.Errorf("next ID = %s, want job-000003", job.ID)
	}
}

// TestCampaignInterruptResumeByteIdentical is the acceptance contract:
// a campaign job interrupted mid-run resumes from its crash-atomic
// checkpoint on restart and produces a report byte-identical to an
// uninterrupted run. (The CI smoke script repeats this across real
// processes with a real SIGTERM; this test drives the same paths
// in-process.)
func TestCampaignInterruptResumeByteIdentical(t *testing.T) {
	req := JobRequest{Kind: "campaign", Window: 2, Trials: 1, Seed: 7, TimeoutMs: 120_000}

	// Reference: uninterrupted run.
	ref := newTestManager(t, Config{Workers: 1})
	refJob, serr := ref.Submit(req)
	if serr != nil {
		t.Fatalf("reference submit: %v", serr)
	}
	want := waitState(t, ref, refJob.ID, StateDone)
	if want.Report == "" {
		t.Fatal("reference report is empty")
	}

	// Interrupted run: wait for at least one checkpointed shard, then
	// drain hard (expired context → immediate cancel, like a kill).
	dir := t.TempDir()
	m1, err := New(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	job, serr := m1.Submit(req)
	if serr != nil {
		t.Fatalf("submit: %v", serr)
	}
	ckpt := filepath.Join(dir, "checkpoints", job.ID+".ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(ckpt); err == nil && strings.Count(string(data), "\n") >= 2 {
			break // header + at least one shard
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never checkpointed a shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	m1.Drain(expired)
	if got, _ := m1.Get(job.ID); got.State != StateInterrupted {
		t.Fatalf("job state after hard drain = %q, want interrupted", got.State)
	}

	// Restart on the same state dir: the job is recovered, resumes from
	// the checkpoint, and finishes with the byte-identical report.
	m2 := newTestManager(t, Config{Dir: dir, Workers: 1})
	resumed := waitState(t, m2, job.ID, StateDone)
	if resumed.ResumedShards == 0 {
		t.Error("resumed job reports 0 resumed shards; the checkpoint was not used")
	}
	if resumed.Report != want.Report {
		t.Errorf("resumed report diverges from uninterrupted run:\n--- want ---\n%s--- got ---\n%s",
			want.Report, resumed.Report)
	}
}

func TestListIsSortedByID(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueCap: 8})
	for i := 0; i < 5; i++ {
		if _, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}); serr != nil {
			t.Fatalf("Submit %d: %v", i, serr)
		}
	}
	jobs := m.List()
	if len(jobs) != 5 {
		t.Fatalf("List returned %d jobs, want 5", len(jobs))
	}
	for i, job := range jobs {
		if want := fmt.Sprintf("job-%06d", i+1); job.ID != want {
			t.Errorf("List[%d].ID = %s, want %s", i, job.ID, want)
		}
	}
}
