package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ultrascalar/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func decodeError(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return body
}

func TestHTTPHealthAndReady(t *testing.T) {
	m, srv := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d, want 200", ep, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Drain(ctx)

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("GET /readyz while draining = %d, want 503", resp.StatusCode)
	}
	if body := decodeError(t, resp); body.Error.Kind != KindDraining {
		t.Errorf("readyz error kind = %q, want draining", body.Error.Kind)
	}
	// Liveness stays green through a drain.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("GET /healthz while draining = %d, want 200", resp2.StatusCode)
	}
}

func TestHTTPSubmitPollReport(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"sim","arch":"ultra2","window":8,"workload":"gcd"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 || job.ID == "" {
		t.Fatalf("submit: status %d, job %+v", resp.StatusCode, job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.State == StateDone {
			break
		}
		if job.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", job)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(srv.URL + "/jobs/" + job.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(report, []byte("arch=ultra2")) {
		t.Errorf("report: status %d body %q", resp.StatusCode, report)
	}
}

func TestHTTPErrorTaxonomy(t *testing.T) {
	_, srv := newTestServer(t, Config{})

	// Invalid config → 400 invalid-config.
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"sim","arch":"ultra9","window":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Errorf("invalid submit = %d, want 400", resp.StatusCode)
	}
	if body := decodeError(t, resp); body.Error.Kind != KindInvalidConfig {
		t.Errorf("error kind = %q, want invalid-config", body.Error.Kind)
	}
	resp.Body.Close()

	// Malformed JSON → 400.
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed submit = %d, want 400", resp.StatusCode)
	}

	// Unknown job → 404 not-found.
	resp, err = http.Get(srv.URL + "/jobs/job-424242")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	if body := decodeError(t, resp); body.Error.Kind != KindNotFound {
		t.Errorf("error kind = %q, want not-found", body.Error.Kind)
	}
	resp.Body.Close()
}

func TestHTTPShedCarriesRetryAfter(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	m, srv := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		select {
		case <-block:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	submit := func() *http.Response {
		resp, err := http.Post(srv.URL+"/jobs", "application/json",
			strings.NewReader(`{"kind":"sweep","window":4}`))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := submit()
	first.Body.Close()
	waitState(t, m, "job-000001", StateRunning)
	second := submit()
	second.Body.Close()

	resp := submit()
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("shed submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if body := decodeError(t, resp); body.Error.Kind != KindShed {
		t.Errorf("error kind = %q, want shed", body.Error.Kind)
	}
}

func TestHTTPReportOfUnfinishedJobConflicts(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	m, srv := newTestServer(t, Config{Workers: 1})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		select {
		case <-block:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	job, serr := m.Submit(JobRequest{Kind: "sweep", Window: 4})
	if serr != nil {
		t.Fatal(serr)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Errorf("report of unfinished job = %d, want 409", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	m, srv := newTestServer(t, Config{Workers: 1})
	m.testExec = func(ctx context.Context, job *Job) (string, error) {
		select {
		case <-block:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	job, serr := m.Submit(JobRequest{Kind: "sweep", Window: 4})
	if serr != nil {
		t.Fatal(serr)
	}
	waitState(t, m, job.ID, StateRunning)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("cancel = %d, want 200", resp.StatusCode)
	}
	waitState(t, m, job.ID, StateCanceled)
}

func TestHTTPListAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m, srv := newTestServer(t, Config{Workers: 1, Metrics: reg})
	for i := 0; i < 3; i++ {
		if _, serr := m.Submit(JobRequest{Kind: "sim", Arch: "ultra1", Window: 4, Workload: "fib"}); serr != nil {
			t.Fatal(serr)
		}
	}
	waitState(t, m, "job-000003", StateDone)

	resp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 3 {
		t.Fatalf("list returned %d jobs, want 3", len(jobs))
	}
	for i, job := range jobs {
		if want := fmt.Sprintf("job-%06d", i+1); job.ID != want {
			t.Errorf("list[%d] = %s, want %s", i, job.ID, want)
		}
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var doc struct {
		Snapshot obs.Snapshot `json:"snapshot"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if got := doc.Snapshot.Counters["serve.jobs_submitted"]; got != 3 {
		t.Errorf("serve.jobs_submitted = %d, want 3", got)
	}
	// Scraping must not grow the registry's snapshot series.
	if n := len(reg.Snapshots()); n != 0 {
		t.Errorf("metrics scrape appended %d snapshots to the series", n)
	}
}
