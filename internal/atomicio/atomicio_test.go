package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("after create: got %q", got)
	}
	if err := WriteFile(path, []byte("second, longer content"), 0o644); err != nil {
		t.Fatalf("WriteFile replace: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second, longer content" {
		t.Fatalf("after replace: got %q", got)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	for i := 0; i < 3; i++ {
		if err := WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.txt" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("directory should hold only out.txt, got %v", names)
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.txt")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}
