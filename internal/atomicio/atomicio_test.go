package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("after create: got %q", got)
	}
	if err := WriteFile(path, []byte("second, longer content"), 0o644); err != nil {
		t.Fatalf("WriteFile replace: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second, longer content" {
		t.Fatalf("after replace: got %q", got)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	for i := 0; i < 3; i++ {
		if err := WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out.txt" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("directory should hold only out.txt, got %v", names)
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.txt")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}

// errSimCrash stands in for the process dying at a stage boundary.
var errSimCrash = errors.New("simulated crash")

// crashAt arms the crash hook to abort the write sequence at the named
// stage, and disarms it on test cleanup.
func crashAt(t *testing.T, stage string) {
	t.Helper()
	testCrash = func(s string) error {
		if s == stage {
			return errSimCrash
		}
		return nil
	}
	t.Cleanup(func() { testCrash = nil })
}

// TestWriteFileCrashSimulation kills the write sequence at every stage
// boundary and asserts the atomicity contract a reader depends on: the
// destination holds either the complete old content or the complete
// new content — never a torn mix, never nothing. Before the rename the
// old file must be untouched; after the rename the new content must be
// in place even though the directory sync never ran (the kernel still
// has the rename; only power loss could lose it, which is exactly what
// the directory fsync exists to close).
func TestWriteFileCrashSimulation(t *testing.T) {
	const oldContent = "old checkpoint, fully intact"
	const newContent = "new checkpoint, longer than the old one was"
	cases := []struct {
		stage string
		want  string
	}{
		{crashAfterWrite, oldContent},
		{crashAfterSync, oldContent},
		{crashAfterRename, newContent},
	}
	for _, tc := range cases {
		t.Run(tc.stage, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ckpt")
			if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
				t.Fatal(err)
			}
			crashAt(t, tc.stage)
			err := WriteFile(path, []byte(newContent), 0o644)
			if !errors.Is(err, errSimCrash) {
				t.Fatalf("crash at %s: err = %v, want simulated crash", tc.stage, err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("crash at %s left no readable file: %v", tc.stage, rerr)
			}
			if string(got) != tc.want {
				t.Fatalf("crash at %s: file holds %q, want %q", tc.stage, got, tc.want)
			}
		})
	}
}

// TestWriteFileCrashThenRetry: the recovery path after a simulated
// crash — a fresh WriteFile with the hook disarmed — must succeed and
// leave exactly the new content, with no temp debris surviving either
// attempt. (The crashed attempt's deferred cleanup removes its temp
// file when the process survives; after a real crash the stale temp is
// harmless — writers never read temp names, and the next successful
// write supersedes it.)
func TestWriteFileCrashThenRetry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	if err := os.WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	crashAt(t, crashAfterSync)
	if err := WriteFile(path, []byte("v2"), 0o644); !errors.Is(err, errSimCrash) {
		t.Fatalf("err = %v, want simulated crash", err)
	}
	testCrash = nil
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("retry after crash: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("after retry: got %q, want v2", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".ckpt.tmp") {
			t.Fatalf("temp debris survived: %s", e.Name())
		}
	}
}

// TestSyncDir: syncing a real directory succeeds; syncing a missing one
// reports the failure instead of swallowing it.
func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory should fail")
	}
}

// assertNoDebris fails the test if any temp file survived in dir.
func assertNoDebris(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp debris survived: %s", e.Name())
		}
	}
}

// TestWriteFileFailuresAreTypedAndClean walks every in-process failure
// point of the write sequence — injected ENOSPC mid-write, injected
// fsync EIO, injected directory-fsync EIO, and a real create-temp
// failure — and asserts the satellite contract at each: the error is a
// typed *Error naming the stage, it unwraps to the underlying syscall
// error, the destination still holds the complete old content (or the
// complete new content once the rename happened), and no temp file is
// left behind.
func TestWriteFileFailuresAreTypedAndClean(t *testing.T) {
	const oldContent = "old record, fully intact"
	const newContent = "new record, longer than before"
	cases := []struct {
		name    string
		faults  Faults
		op      string
		sysErr  error
		wantNew bool // destination holds new content after the failure
	}{
		{"enospc-mid-write", Faults{WriteENOSPCEvery: 1}, OpWrite, syscall.ENOSPC, false},
		{"fsync-eio", Faults{SyncFailEvery: 1}, OpSync, syscall.EIO, false},
		{"dir-fsync-eio", Faults{DirSyncFailEvery: 1}, OpSyncDir, syscall.EIO, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "record")
			if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
				t.Fatal(err)
			}
			SetFaults(tc.faults)
			t.Cleanup(func() { SetFaults(Faults{}) })
			err := WriteFile(path, []byte(newContent), 0o644)
			var aerr *Error
			if !errors.As(err, &aerr) {
				t.Fatalf("err = %v (%T), want *atomicio.Error", err, err)
			}
			if aerr.Op != tc.op {
				t.Fatalf("Op = %q, want %q", aerr.Op, tc.op)
			}
			if aerr.Path != path {
				t.Fatalf("Path = %q, want %q", aerr.Path, path)
			}
			if !errors.Is(err, tc.sysErr) {
				t.Fatalf("err = %v, want errors.Is(%v)", err, tc.sysErr)
			}
			want := oldContent
			if tc.wantNew {
				want = newContent
			}
			if got, _ := os.ReadFile(path); string(got) != want {
				t.Fatalf("destination holds %q, want %q", got, want)
			}
			assertNoDebris(t, dir)
		})
	}
}

// TestWriteFileCreateTempFailureTyped: a failure before the temp file
// even exists (unwritable directory) still comes back typed.
func TestWriteFileCreateTempFailureTyped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "no-such-dir")
	err := WriteFile(filepath.Join(dir, "out"), []byte("x"), 0o644)
	var aerr *Error
	if !errors.As(err, &aerr) {
		t.Fatalf("err = %v (%T), want *atomicio.Error", err, err)
	}
	if aerr.Op != OpCreateTemp {
		t.Fatalf("Op = %q, want %q", aerr.Op, OpCreateTemp)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want errors.Is(os.ErrNotExist)", err)
	}
}

// TestFaultsEveryNth: with WriteENOSPCEvery=3 exactly every third
// write fails, deterministically, and successful writes in between are
// complete and durable.
func TestFaultsEveryNth(t *testing.T) {
	dir := t.TempDir()
	SetFaults(Faults{WriteENOSPCEvery: 3})
	t.Cleanup(func() { SetFaults(Faults{}) })
	var failed []int
	for i := 0; i < 9; i++ {
		path := filepath.Join(dir, "f")
		err := WriteFile(path, []byte("payload payload payload"), 0o644)
		if err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("write %d: err = %v, want ENOSPC", i, err)
			}
			failed = append(failed, i)
		}
	}
	if len(failed) != 3 || failed[0] != 2 || failed[1] != 5 || failed[2] != 8 {
		t.Fatalf("failed writes at %v, want [2 5 8]", failed)
	}
	assertNoDebris(t, dir)
	if got, _ := os.ReadFile(filepath.Join(dir, "f")); string(got) != "payload payload payload" {
		t.Fatalf("surviving file torn: %q", got)
	}
}
