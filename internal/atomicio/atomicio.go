// Package atomicio provides crash-atomic, crash-durable file writes: a
// reader never observes a half-written file, and a completed write
// survives power loss. The pattern is the standard one — write to a
// temporary file in the destination directory, fsync it, rename over
// the destination, then fsync the directory. The directory fsync is not
// optional garnish: the rename lives in the directory's metadata, and
// until that metadata is on stable storage a power failure can undo the
// rename even though the new file's *data* was synced — the reader
// would come back up seeing the old file (acceptable) or, on some
// filesystems, a directory entry pointing at nothing (not acceptable
// for a checkpoint that claimed to be durable). Campaign checkpoints,
// serve job records, result-cache entries and fleet coordinator state
// all go through this path, so the resume guarantees those layers
// advertise hold across kill -9 and power loss alike.
//
// Every failure is returned as a typed *Error naming the stage that
// failed and wrapping the underlying (usually syscall) error, and the
// temporary file is removed on every failure path — a failed write
// never leaves `.tmp` debris next to a checkpoint. The package also
// carries deterministic resource-exhaustion injection (SetFaults):
// every-Nth-write ENOSPC with a short write, and every-Nth fsync or
// directory-fsync EIO — the chaos harness uses these to prove that
// checkpoints, cache entries and job records degrade into typed,
// retryable errors instead of corrupting state.
package atomicio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// Write-sequence stage names. They appear in *Error.Op so callers and
// logs can tell exactly where a write died, and the crash-simulation
// hook fires between stages so tests can stop the sequence at every
// boundary and assert what a reader would find on disk.
const (
	OpCreateTemp = "create-temp" // making the temp file in the destination directory
	OpWrite      = "write"       // writing data into the temp file
	OpSync       = "sync"        // fsync of the temp file
	OpChmod      = "chmod"       // applying the destination permissions
	OpClose      = "close"       // closing the temp file
	OpRename     = "rename"      // renaming the temp over the destination
	OpSyncDir    = "sync-dir"    // fsync of the parent directory
)

// crashPoint names a stage boundary of the write sequence for the
// crash-simulation hook (process death, not an I/O error — so these
// are deliberately not wrapped in *Error).
const (
	crashAfterWrite  = "after-temp-write" // temp holds data, not yet synced
	crashAfterSync   = "after-temp-sync"  // temp durable, rename not done
	crashAfterRename = "after-rename"     // renamed, directory not yet synced
)

// testCrash, when non-nil, is invoked at each stage boundary with the
// stage name; returning a non-nil error aborts the sequence there, the
// way a crash would. Only tests set it.
var testCrash func(stage string) error

// Error is a failed atomic write: Op names the stage of the sequence
// that failed (OpWrite, OpSync, ...), Path is the destination the
// caller asked for (not the temp file), and Err is the underlying
// cause — unwrappable down to the syscall error, so callers can ask
// errors.Is(err, syscall.ENOSPC) to classify disk exhaustion as
// retryable rather than fatal.
type Error struct {
	Op   string
	Path string
	Err  error
}

func (e *Error) Error() string {
	return fmt.Sprintf("atomicio: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Faults configures deterministic resource-exhaustion injection. A
// zero field disables that fault point; N>0 fails every Nth operation
// of that kind, counted process-wide from SetFaults. Counting by
// operation (not by file) keeps a chaos run reproducible for a given
// request schedule without the injector knowing anything about call
// sites.
type Faults struct {
	// WriteENOSPCEvery fails every Nth WriteFile data write with
	// ENOSPC after writing only half the payload — the classic
	// disk-full short write.
	WriteENOSPCEvery int
	// SyncFailEvery fails every Nth temp-file fsync with EIO (dirty
	// pages could not reach stable storage).
	SyncFailEvery int
	// DirSyncFailEvery fails every Nth directory fsync inside
	// WriteFile with EIO (the rename may not survive power loss, so
	// the write must not be advertised as durable).
	DirSyncFailEvery int
}

var (
	faultMu    sync.Mutex
	faults     Faults
	faultTally struct{ writes, syncs, dirSyncs int }
)

// SetFaults arms (or, with the zero value, disarms) resource-
// exhaustion injection and resets the operation counters. Injection is
// process-global: usserve exposes it via -inject-disk-faults so the
// chaos harness can exercise ENOSPC handling end-to-end.
func SetFaults(f Faults) {
	faultMu.Lock()
	defer faultMu.Unlock()
	faults = f
	faultTally.writes, faultTally.syncs, faultTally.dirSyncs = 0, 0, 0
}

// injectWrite reports whether this data write should fail with ENOSPC.
func injectWrite() bool {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faults.WriteENOSPCEvery <= 0 {
		return false
	}
	faultTally.writes++
	return faultTally.writes%faults.WriteENOSPCEvery == 0
}

// injectSync reports whether this temp-file fsync should fail with EIO.
func injectSync() bool {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faults.SyncFailEvery <= 0 {
		return false
	}
	faultTally.syncs++
	return faultTally.syncs%faults.SyncFailEvery == 0
}

// injectDirSync reports whether this directory fsync should fail.
func injectDirSync() bool {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faults.DirSyncFailEvery <= 0 {
		return false
	}
	faultTally.dirSyncs++
	return faultTally.dirSyncs%faults.DirSyncFailEvery == 0
}

// WriteFile atomically and durably replaces the file at path with data.
// The temporary file is created in path's directory (renames across
// filesystems are not atomic), synced before the rename, and removed on
// any failure — success leaves the new file, failure leaves the old
// file and no debris. After the rename the parent directory is synced
// so the rename itself survives power loss; a filesystem that cannot
// fsync a directory (EINVAL/ENOTSUP — e.g. some network and FUSE
// filesystems) is tolerated, every other directory-sync failure is
// returned. All failures are *Error values wrapping the underlying
// cause.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return &Error{Op: OpCreateTemp, Path: path, Err: err}
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if injectWrite() {
		// Simulate disk exhaustion mid-write: half the payload lands,
		// then the filesystem runs out of space. The temp is removed
		// by the deferred cleanup, so the torn data is never visible.
		tmp.Write(data[:len(data)/2])
		tmp.Close()
		return &Error{Op: OpWrite, Path: path, Err: fmt.Errorf("injected fault: %w", syscall.ENOSPC)}
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return &Error{Op: OpWrite, Path: path, Err: err}
	}
	if err := crash(crashAfterWrite); err != nil {
		tmp.Close()
		return err
	}
	if injectSync() {
		tmp.Close()
		return &Error{Op: OpSync, Path: path, Err: fmt.Errorf("injected fault: %w", syscall.EIO)}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return &Error{Op: OpSync, Path: path, Err: err}
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return &Error{Op: OpChmod, Path: path, Err: err}
	}
	if err := tmp.Close(); err != nil {
		return &Error{Op: OpClose, Path: path, Err: err}
	}
	if err := crash(crashAfterSync); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return &Error{Op: OpRename, Path: path, Err: err}
	}
	if err := crash(crashAfterRename); err != nil {
		return err
	}
	if injectDirSync() {
		// The rename happened but its durability cannot be promised;
		// report it so the caller treats the write as failed and
		// retries. The destination now holds complete new data (not
		// torn), so atomicity still holds even on this path.
		return &Error{Op: OpSyncDir, Path: path, Err: fmt.Errorf("injected fault: %w", syscall.EIO)}
	}
	if err := SyncDir(dir); err != nil {
		return &Error{Op: OpSyncDir, Path: path, Err: err}
	}
	return nil
}

// SyncDir fsyncs a directory so renames and unlinks inside it are
// durable. Filesystems that refuse to sync a directory handle
// (EINVAL/ENOTSUP) are tolerated — on those there is nothing stronger
// available — but every other failure is real and returned.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return err
	}
	return nil
}

// ignorableSyncError reports whether a directory-fsync failure means
// "this filesystem cannot do that" rather than "the sync was lost".
func ignorableSyncError(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

// crash fires the crash-simulation hook, if armed.
func crash(stage string) error {
	if testCrash != nil {
		return testCrash(stage)
	}
	return nil
}
