// Package atomicio provides crash-atomic file writes: a reader never
// observes a half-written file, even across power loss. The pattern is
// the standard one — write to a temporary file in the destination
// directory, fsync it, rename over the destination, then fsync the
// directory so the rename itself is durable. Campaign checkpoints and
// serve job records go through this path, so a crash mid-write leaves
// either the old complete file or the new complete file, never a torn
// one.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces the file at path with data. The
// temporary file is created in path's directory (renames across
// filesystems are not atomic), synced before the rename, and removed on
// any failure. The directory sync after the rename is best-effort: some
// filesystems refuse to fsync a directory handle, and by that point the
// data file itself is already durable.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: syncing %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: closing temp for %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: renaming into %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
