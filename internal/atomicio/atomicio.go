// Package atomicio provides crash-atomic, crash-durable file writes: a
// reader never observes a half-written file, and a completed write
// survives power loss. The pattern is the standard one — write to a
// temporary file in the destination directory, fsync it, rename over
// the destination, then fsync the directory. The directory fsync is not
// optional garnish: the rename lives in the directory's metadata, and
// until that metadata is on stable storage a power failure can undo the
// rename even though the new file's *data* was synced — the reader
// would come back up seeing the old file (acceptable) or, on some
// filesystems, a directory entry pointing at nothing (not acceptable
// for a checkpoint that claimed to be durable). Campaign checkpoints,
// serve job records and fleet coordinator state all go through this
// path, so the resume guarantees those layers advertise hold across
// kill -9 and power loss alike.
package atomicio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// crashPoint names a stage of the write sequence; the test hook fires
// between stages so crash-simulation tests can stop the sequence at
// every boundary and assert what a reader would find on disk.
const (
	crashAfterWrite  = "after-temp-write" // temp holds data, not yet synced
	crashAfterSync   = "after-temp-sync"  // temp durable, rename not done
	crashAfterRename = "after-rename"     // renamed, directory not yet synced
)

// testCrash, when non-nil, is invoked at each stage boundary with the
// stage name; returning a non-nil error aborts the sequence there, the
// way a crash would. Only tests set it.
var testCrash func(stage string) error

// WriteFile atomically and durably replaces the file at path with data.
// The temporary file is created in path's directory (renames across
// filesystems are not atomic), synced before the rename, and removed on
// any failure. After the rename the parent directory is synced so the
// rename itself survives power loss; a filesystem that cannot fsync a
// directory (EINVAL/ENOTSUP — e.g. some network and FUSE filesystems)
// is tolerated, every other directory-sync failure is returned.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: writing %s: %w", path, err)
	}
	if err := crash(crashAfterWrite); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: syncing %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: closing temp for %s: %w", path, err)
	}
	if err := crash(crashAfterSync); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: renaming into %s: %w", path, err)
	}
	if err := crash(crashAfterRename); err != nil {
		return err
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("atomicio: syncing directory of %s: %w", path, err)
	}
	return nil
}

// SyncDir fsyncs a directory so renames and unlinks inside it are
// durable. Filesystems that refuse to sync a directory handle
// (EINVAL/ENOTSUP) are tolerated — on those there is nothing stronger
// available — but every other failure is real and returned.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return err
	}
	return nil
}

// ignorableSyncError reports whether a directory-fsync failure means
// "this filesystem cannot do that" rather than "the sync was lost".
func ignorableSyncError(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

// crash fires the crash-simulation hook, if armed.
func crash(stage string) error {
	if testCrash != nil {
		return testCrash(stage)
	}
	return nil
}
