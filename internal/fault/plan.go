package fault

import (
	"bufio"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Plan is a deterministic fault schedule: the faults to inject into one
// run, sorted by cycle. A Plan is a pure function of the generation seed
// and parameters, and Encode/DecodePlan round-trip it exactly, so a
// campaign can be reproduced from nothing but its seed.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// GenParams bounds random fault generation.
type GenParams struct {
	Window   int    // station count; slots are drawn from [0, Window)
	NumRegs  int    // logical registers; merge faults draw from [0, NumRegs)
	MaxCycle int64  // injection cycles are drawn from [1, MaxCycle]
	Sites    []Site // candidate sites; nil means AllSites()
	N        int    // number of faults
	// StuckDur bounds SiteReadyStuck0 hold times: durations are drawn
	// from [1, StuckDur]. 0 means 4*Window — long enough to starve a full
	// ring into the watchdog on unlucky draws, short enough that most
	// draws are pure delay.
	StuckDur int64
}

// NewPlan generates a random fault plan from the seed. Identical
// (seed, params) always yield an identical plan.
func NewPlan(seed int64, p GenParams) *Plan {
	rng := rand.New(rand.NewSource(seed))
	sites := p.Sites
	if len(sites) == 0 {
		sites = AllSites()
	}
	if p.Window < 1 {
		p.Window = 1
	}
	if p.NumRegs < 1 {
		p.NumRegs = 1
	}
	if p.MaxCycle < 1 {
		p.MaxCycle = 1
	}
	stuckDur := p.StuckDur
	if stuckDur <= 0 {
		stuckDur = 4 * int64(p.Window)
	}
	pl := &Plan{Seed: seed, Faults: make([]Fault, 0, p.N)}
	for i := 0; i < p.N; i++ {
		f := Fault{
			Site:  sites[rng.Intn(len(sites))],
			Cycle: 1 + rng.Int63n(p.MaxCycle),
			Slot:  int32(rng.Intn(p.Window)),
			Bit:   uint8(rng.Intn(32)),
			Op:    uint8(rng.Intn(2)),
			Reg:   uint8(rng.Intn(p.NumRegs)),
		}
		if f.Site == SiteReadyStuck0 {
			f.Dur = 1 + rng.Int63n(stuckDur)
		}
		pl.Faults = append(pl.Faults, f)
	}
	pl.Sort()
	return pl
}

// Sort orders the faults by (cycle, slot, site) — the order the engine
// applies them in.
func (p *Plan) Sort() {
	sort.SliceStable(p.Faults, func(i, j int) bool {
		a, b := p.Faults[i], p.Faults[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		return a.Site < b.Site
	})
}

// Equal reports whether two plans schedule identical faults.
func (p *Plan) Equal(q *Plan) bool {
	if p == nil || q == nil {
		return p == q
	}
	if p.Seed != q.Seed || len(p.Faults) != len(q.Faults) {
		return false
	}
	for i := range p.Faults {
		if p.Faults[i] != q.Faults[i] {
			return false
		}
	}
	return true
}

// planHeader begins every encoded plan.
const planHeader = "usfault-plan/v1"

// Encode renders the plan in the stable text form DecodePlan parses:
//
//	usfault-plan/v1 seed=<seed>
//	<site> cycle=<c> slot=<s> bit=<b> op=<o> reg=<r> dur=<d>
//
// one line per fault, in plan order.
func (p *Plan) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d\n", planHeader, p.Seed)
	for _, f := range p.Faults {
		fmt.Fprintf(&b, "%s cycle=%d slot=%d bit=%d op=%d reg=%d dur=%d\n",
			f.Site, f.Cycle, f.Slot, f.Bit, f.Op, f.Reg, f.Dur)
	}
	return b.String()
}

// DecodePlan parses the Encode format back into a plan. The decoded plan
// is re-sorted, so Encode(DecodePlan(Encode(p))) == Encode(p).
func DecodePlan(s string) (*Plan, error) {
	sc := bufio.NewScanner(strings.NewReader(s))
	if !sc.Scan() {
		return nil, fmt.Errorf("fault: empty plan")
	}
	var seed int64
	if n, err := fmt.Sscanf(sc.Text(), planHeader+" seed=%d", &seed); n != 1 || err != nil {
		return nil, fmt.Errorf("fault: bad plan header %q", sc.Text())
	}
	p := &Plan{Seed: seed}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		name, rest, ok := strings.Cut(text, " ")
		if !ok {
			return nil, fmt.Errorf("fault: line %d: malformed fault %q", line, text)
		}
		site, ok := SiteFromString(name)
		if !ok {
			return nil, fmt.Errorf("fault: line %d: unknown site %q", line, name)
		}
		f := Fault{Site: site}
		n, err := fmt.Sscanf(rest, "cycle=%d slot=%d bit=%d op=%d reg=%d dur=%d",
			&f.Cycle, &f.Slot, &f.Bit, &f.Op, &f.Reg, &f.Dur)
		if n != 6 || err != nil {
			return nil, fmt.Errorf("fault: line %d: malformed fault fields %q", line, rest)
		}
		if f.Cycle < 0 || f.Slot < 0 || f.Bit > 31 || f.Op > 1 || f.Dur < 0 {
			return nil, fmt.Errorf("fault: line %d: field out of range in %q", line, text)
		}
		p.Faults = append(p.Faults, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault: reading plan: %w", err)
	}
	p.Sort()
	return p, nil
}
