package fault

import "testing"

// FuzzPlanRoundTrip feeds arbitrary text to the plan decoder and demands
// that anything it accepts re-encodes and re-decodes to the identical
// plan — the campaign reproducibility contract depends on it.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add("usfault-plan/v1 seed=1\n")
	f.Add("usfault-plan/v1 seed=-77\nresult-bit cycle=12 slot=3 bit=31 op=1 reg=9 dur=0\n")
	f.Add("usfault-plan/v1 seed=0\nready-stuck0 cycle=40 slot=0 bit=0 op=0 reg=0 dur=128\n" +
		"merge-bit cycle=2 slot=7 bit=15 op=0 reg=30 dur=0\n")
	f.Add(NewPlan(5, GenParams{Window: 64, NumRegs: 32, MaxCycle: 5000, N: 32}).Encode())
	f.Add("not a plan at all")
	f.Fuzz(func(t *testing.T, data string) {
		p, err := DecodePlan(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		enc := p.Encode()
		q, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("decoder rejected its own encoding: %v\ninput: %q\nencoded: %q", err, data, enc)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip changed the plan\ninput: %q\nfirst: %q\nsecond: %q", data, enc, q.Encode())
		}
		if q.Encode() != enc {
			t.Fatalf("re-encoding not byte-identical\nfirst: %q\nsecond: %q", enc, q.Encode())
		}
	})
}

// FuzzPlanGenerate drives the generator with arbitrary seeds and bounds
// and checks the generated plan is well-formed and round-trips.
func FuzzPlanGenerate(f *testing.F) {
	f.Add(int64(1), 16, 500, 20)
	f.Add(int64(-9), 1, 1, 1)
	f.Add(int64(12345), 1024, 100000, 64)
	f.Fuzz(func(t *testing.T, seed int64, window, maxCycle, n int) {
		if n < 0 || n > 256 || window > 1<<16 || maxCycle < 0 {
			return
		}
		p := NewPlan(seed, GenParams{Window: window, NumRegs: 32, MaxCycle: int64(maxCycle), N: n})
		if len(p.Faults) != n {
			t.Fatalf("generated %d faults, want %d", len(p.Faults), n)
		}
		q, err := DecodePlan(p.Encode())
		if err != nil {
			t.Fatalf("generated plan does not decode: %v", err)
		}
		if !p.Equal(q) {
			t.Fatal("generated plan does not round-trip")
		}
	})
}
