package fault

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Outcome classifies one campaign point (one single-fault run).
type Outcome uint8

// The outcomes, from harmless to worst.
const (
	// OutcomeVacuous: the scheduled fault never landed (target slot empty
	// or ineligible at the fault cycle, or the run ended first).
	OutcomeVacuous Outcome = iota
	// OutcomeMasked: the fault landed but the final architectural state
	// still matches the fault-free golden run, with no detection needed —
	// the corruption was architecturally masked.
	OutcomeMasked
	// OutcomeRecovered: a checker or the watchdog caught the fault and
	// squash-and-replay recovery restored the golden state. The fault
	// cost cycles, not correctness.
	OutcomeRecovered
	// OutcomeSDC: silent data corruption — the run completed but final
	// architectural state differs from the golden run, undetected.
	OutcomeSDC
	// OutcomeCrash: the faulted run failed outright (fetch ran off the
	// program, cycle limit, unrecovered livelock).
	OutcomeCrash
	// OutcomeRecoveryFailed: a fault was detected but post-recovery state
	// still differs from golden — a bug in the recovery machinery. Tests
	// assert this never happens.
	OutcomeRecoveryFailed

	numOutcomes
)

// outcomeNames maps outcomes to report column names.
var outcomeNames = [numOutcomes]string{
	"vacuous", "masked", "recovered", "sdc", "crash", "recovery-failed",
}

// String returns the outcome's report name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "outcome(?)"
}

// Cell aggregates one (architecture × site) cell of a campaign report.
type Cell struct {
	Arch string `json:"arch"`
	Site string `json:"site"`

	Points    int `json:"points"`
	Vacuous   int `json:"vacuous"`
	Masked    int `json:"masked"`
	Detected  int `json:"detected"`
	Recovered int `json:"recovered"`
	SDC       int `json:"sdc"`
	Crashed   int `json:"crashed"`
	RecFailed int `json:"recovery_failed"`
	Watchdog  int `json:"watchdog"`

	// ExtraCycles totals the recovery cycle cost: faulted minus
	// fault-free cycles, summed over recovered points.
	ExtraCycles int64 `json:"extra_cycles"`
	// SquashedStations totals stations discarded by fault recovery.
	SquashedStations int64 `json:"squashed_stations"`
}

// Merge adds another cell's counts into c (same arch/site).
func (c *Cell) Merge(o Cell) {
	c.Points += o.Points
	c.Vacuous += o.Vacuous
	c.Masked += o.Masked
	c.Detected += o.Detected
	c.Recovered += o.Recovered
	c.SDC += o.SDC
	c.Crashed += o.Crashed
	c.RecFailed += o.RecFailed
	c.Watchdog += o.Watchdog
	c.ExtraCycles += o.ExtraCycles
	c.SquashedStations += o.SquashedStations
}

// Report is one campaign's deterministic result document: same seed and
// configuration produce a byte-identical rendering, across runs and
// across worker counts.
type Report struct {
	Seed    int64  `json:"seed"`
	N       int    `json:"points_per_cell"`
	Window  int    `json:"window"`
	Detect  string `json:"detect"`
	Cells   []Cell `json:"cells"`
	Shards  int    `json:"shards"`
	Resumed int    `json:"resumed_shards"`
}

// SortCells orders the cells by (arch, site) for stable rendering.
func (r *Report) SortCells() {
	sort.Slice(r.Cells, func(i, j int) bool {
		if r.Cells[i].Arch != r.Cells[j].Arch {
			return r.Cells[i].Arch < r.Cells[j].Arch
		}
		return r.Cells[i].Site < r.Cells[j].Site
	})
}

// WriteText renders the report as an aligned table. The rendering is a
// pure function of the report contents.
func (r *Report) WriteText(w io.Writer) error {
	r.SortCells()
	var b strings.Builder
	fmt.Fprintf(&b, "usfault campaign: seed=%d n=%d window=%d detect=%s shards=%d resumed=%d\n",
		r.Seed, r.N, r.Window, r.Detect, r.Shards, r.Resumed)
	fmt.Fprintf(&b, "%-22s %-14s %7s %8s %7s %9s %10s %5s %6s %7s %10s\n",
		"arch", "site", "points", "vacuous", "masked", "detected", "recovered", "sdc", "crash", "recfail", "cyc/recov")
	for _, c := range r.Cells {
		cost := "-"
		if c.Recovered > 0 {
			cost = fmt.Sprintf("%.1f", float64(c.ExtraCycles)/float64(c.Recovered))
		}
		fmt.Fprintf(&b, "%-22s %-14s %7d %8d %7d %9d %10d %5d %6d %7d %10s\n",
			c.Arch, c.Site, c.Points, c.Vacuous, c.Masked, c.Detected, c.Recovered,
			c.SDC, c.Crashed, c.RecFailed, cost)
	}
	// Architecture totals: the per-arch vulnerability summary the paper's
	// AVF-style comparison wants.
	totals := map[string]*Cell{}
	var archs []string
	for _, c := range r.Cells {
		t := totals[c.Arch]
		if t == nil {
			t = &Cell{Arch: c.Arch, Site: "TOTAL"}
			totals[c.Arch] = t
			archs = append(archs, c.Arch)
		}
		t.Merge(c)
	}
	sort.Strings(archs)
	for _, a := range archs {
		t := totals[a]
		landed := t.Points - t.Vacuous
		sdcRate, recovRate := 0.0, 0.0
		if landed > 0 {
			sdcRate = float64(t.SDC) / float64(landed)
			recovRate = float64(t.Recovered) / float64(landed)
		}
		fmt.Fprintf(&b, "TOTAL %-16s landed=%d masked=%d recovered=%d sdc=%d crash=%d  sdc-rate=%.3f recov-rate=%.3f\n",
			a, landed, t.Masked, t.Recovered, t.SDC, t.Crashed, sdcRate, recovRate)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
