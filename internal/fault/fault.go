// Package fault defines the deterministic fault-injection model shared by
// the cycle engine (internal/core), the campaign runner (internal/exp)
// and the usfault tool: where transient faults strike the simulated
// microarchitecture (Site), when and how (Fault, Plan), what detection
// hardware is modeled (Detect), and what actually happened during a run
// (Log, Record).
//
// The paper's scalability argument assumes every CSPP merge, forwarded
// operand and circulating register value arrives intact; this package
// makes those exact structures misbehave on purpose, deterministically.
// The determinism contract: a Plan is a pure function of its seed and
// generation parameters, the engine applies it as a pure function of
// (program, config, plan), and therefore identical seeds produce
// byte-identical campaign reports — across runs and across worker counts.
package fault

// Site names a microarchitectural fault site — a class of hardware
// structure a transient fault can strike.
type Site uint8

// The fault sites. Value faults (SiteResultBit, SiteOperandBit,
// SiteMergeBit) flip bits; protocol faults (the rest) corrupt control
// state: readiness or the CSPP forwarding decision itself.
const (
	// SiteResultBit flips one bit of a completed result circulating in an
	// execution station — the register value held in the station's latch
	// and re-driven onto the CSPP wires every cycle. Breaks the value's
	// parity, so it is the one site parity checking catches.
	SiteResultBit Site = iota
	// SiteOperandBit flips one bit of a source operand in transit to a
	// single station — after the producer's parity was generated, before
	// the consumer latches. The consumer computes a self-consistent wrong
	// result, so parity cannot see it; only the golden cross-check can.
	SiteOperandBit
	// SiteMergeBit flips one bit at a CSPP merge node for one logical
	// register: every station latching that register this cycle receives
	// the corrupted value (a shared-subtree failure, unlike the
	// single-consumer SiteOperandBit).
	SiteMergeBit
	// SiteReadyStuck1 forces a waiting station's ready bit high for one
	// cycle: it issues immediately with whatever (possibly stale) operand
	// values its latches hold.
	SiteReadyStuck1
	// SiteReadyStuck0 holds a station's ready bit low for Dur cycles: the
	// station cannot issue. Short durations are pure delay; a duration
	// beyond the engine's watchdog window starves retirement entirely and
	// is caught as a livelock, recovered by squash-and-replay.
	SiteReadyStuck0
	// SiteDropForward drops the nearest-producer forward for one operand:
	// the station latches the stale committed register value instead, as
	// if the CSPP segment bit failed open.
	SiteDropForward
	// SiteDupForward duplicates an old forward: the station latches the
	// value of an older in-window producer of the same register (or the
	// committed value if there is none), as if a stale merge output won
	// the wired-OR.
	SiteDupForward

	numSites
)

// siteNames maps sites to their wire names (plan encoding, reports).
var siteNames = [numSites]string{
	"result-bit", "operand-bit", "merge-bit",
	"ready-stuck1", "ready-stuck0", "drop-forward", "dup-forward",
}

// String returns the site's wire name.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return "site(?)"
}

// SiteFromString inverts String; ok is false for unknown names.
func SiteFromString(name string) (Site, bool) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), true
		}
	}
	return 0, false
}

// AllSites returns every defined site, in declaration order.
func AllSites() []Site {
	out := make([]Site, numSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// Fault is one scheduled transient fault.
type Fault struct {
	Site  Site
	Cycle int64 // cycle the fault strikes (injection happens after the forwarding scan)
	Slot  int32 // target execution-station slot (taken mod window)
	Bit   uint8 // bit index to flip, 0..31 (value faults)
	Op    uint8 // operand index 0 or 1 (operand faults)
	Reg   uint8 // logical register (SiteMergeBit; taken mod NumRegs)
	Dur   int64 // hold duration in cycles (SiteReadyStuck0; 0 means 1)
}

// Detect selects the modeled detection hardware.
type Detect uint8

// The detection modes.
const (
	// DetectNone commits whatever the datapath produced: corrupted state
	// reaches the architectural register file and memory. Campaigns use
	// it to measure the raw silent-data-corruption rate.
	DetectNone Detect = iota
	// DetectParity models per-value parity carried with every circulating
	// result and checked at the commit port: it catches odd-weight value
	// corruption in a station's latched result (SiteResultBit), and is
	// blind to protocol faults that deliver validly-paritied wrong values.
	DetectParity
	// DetectGolden models a full architectural checker (DIVA-style): each
	// retiring instruction is cross-checked against the in-order golden
	// machine of internal/ref before it commits. Any architecturally
	// visible corruption is caught at the first retiring instruction it
	// reaches.
	DetectGolden
)

// detectNames maps modes to their wire names.
var detectNames = []string{"none", "parity", "golden"}

// String returns the mode's wire name.
func (d Detect) String() string {
	if int(d) < len(detectNames) {
		return detectNames[d]
	}
	return "detect(?)"
}

// DetectFromString inverts String; ok is false for unknown names.
func DetectFromString(name string) (Detect, bool) {
	for i, n := range detectNames {
		if n == name {
			return Detect(i), true
		}
	}
	return 0, false
}

// RecordKind classifies one fault-log record.
type RecordKind uint8

// The record kinds.
const (
	// RecInject: a scheduled fault landed on live microarchitectural
	// state (a vacuous fault — empty or ineligible target — logs nothing).
	RecInject RecordKind = iota
	// RecDetect: a checker (parity or golden cross-check) refused to
	// commit a retiring instruction.
	RecDetect
	// RecRecover: squash-and-replay recovery completed; Arg is the number
	// of stations squashed.
	RecRecover
	// RecWatchdog: the no-retire-progress watchdog fired during a fault
	// run and triggered recovery.
	RecWatchdog
)

// recordKindNames maps record kinds to their wire names.
var recordKindNames = []string{"inject", "detect", "recover", "watchdog"}

// String returns the record kind's wire name.
func (k RecordKind) String() string {
	if int(k) < len(recordKindNames) {
		return recordKindNames[k]
	}
	return "record(?)"
}

// Record is one fault-lifecycle event.
type Record struct {
	Kind  RecordKind
	Cycle int64
	Site  Site
	Seq   int64 // dynamic sequence number of the affected instruction (-1 if none)
	PC    int32 // static PC of the affected instruction (-1 if none)
	Slot  int32 // station slot (-1 if none)
	Arg   int64 // kind-specific payload (RecRecover: stations squashed)
}

// Log accumulates what happened during one faulted run. The engine fills
// it when Config.FaultLog is set; campaigns classify outcomes from it.
type Log struct {
	// Applied counts scheduled faults that landed on live state. A
	// scheduled fault whose target slot was empty or ineligible at its
	// cycle is vacuous and not counted.
	Applied int
	// Detected counts checker refusals (parity or golden mismatch).
	Detected int
	// Recovered counts completed squash-and-replay recoveries.
	Recovered int
	// WatchdogFires counts livelock-watchdog recoveries during the run.
	WatchdogFires int
	// SquashedStations totals stations squashed by fault recovery
	// (recovery cost in discarded work; cycle cost shows up in Stats).
	SquashedStations int64
	// Records holds the detailed lifecycle, in occurrence order.
	Records []Record
}

// Add appends one record and bumps the matching counter.
func (l *Log) Add(r Record) {
	if l == nil {
		return
	}
	switch r.Kind {
	case RecInject:
		l.Applied++
	case RecDetect:
		l.Detected++
	case RecRecover:
		l.Recovered++
		l.SquashedStations += r.Arg
	case RecWatchdog:
		l.WatchdogFires++
	}
	l.Records = append(l.Records, r)
}
