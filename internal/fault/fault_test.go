package fault

import (
	"strings"
	"testing"
)

func TestPlanDeterminism(t *testing.T) {
	p := GenParams{Window: 16, NumRegs: 32, MaxCycle: 500, N: 50}
	a := NewPlan(42, p)
	b := NewPlan(42, p)
	if !a.Equal(b) {
		t.Fatalf("same seed produced different plans:\n%s\nvs\n%s", a.Encode(), b.Encode())
	}
	c := NewPlan(43, p)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical 50-fault plans")
	}
}

func TestPlanSorted(t *testing.T) {
	p := NewPlan(7, GenParams{Window: 8, NumRegs: 16, MaxCycle: 1000, N: 200})
	for i := 1; i < len(p.Faults); i++ {
		if p.Faults[i].Cycle < p.Faults[i-1].Cycle {
			t.Fatalf("plan not cycle-sorted at %d: %d after %d",
				i, p.Faults[i].Cycle, p.Faults[i-1].Cycle)
		}
	}
}

func TestPlanBounds(t *testing.T) {
	params := GenParams{Window: 4, NumRegs: 8, MaxCycle: 100, N: 500}
	p := NewPlan(1, params)
	if len(p.Faults) != 500 {
		t.Fatalf("got %d faults, want 500", len(p.Faults))
	}
	for _, f := range p.Faults {
		if f.Cycle < 1 || f.Cycle > 100 {
			t.Errorf("cycle %d out of [1,100]", f.Cycle)
		}
		if f.Slot < 0 || f.Slot >= 4 {
			t.Errorf("slot %d out of [0,4)", f.Slot)
		}
		if f.Bit > 31 || f.Op > 1 {
			t.Errorf("bit=%d op=%d out of range", f.Bit, f.Op)
		}
		if f.Reg >= 8 {
			t.Errorf("reg %d out of [0,8)", f.Reg)
		}
		if f.Site == SiteReadyStuck0 && f.Dur < 1 {
			t.Errorf("stuck0 fault with dur %d", f.Dur)
		}
		if f.Site != SiteReadyStuck0 && f.Dur != 0 {
			t.Errorf("%s fault with nonzero dur %d", f.Site, f.Dur)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := NewPlan(99, GenParams{Window: 32, NumRegs: 32, MaxCycle: 2000, N: 64})
	enc := p.Encode()
	q, err := DecodePlan(enc)
	if err != nil {
		t.Fatalf("decoding own encoding: %v\n%s", err, enc)
	}
	if !p.Equal(q) {
		t.Fatalf("round trip changed the plan:\n%s\nvs\n%s", enc, q.Encode())
	}
	if q.Encode() != enc {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-plan",
		"usfault-plan/v1 seed=x",
		"usfault-plan/v1 seed=1\nbogus-site cycle=1 slot=0 bit=0 op=0 reg=0 dur=0",
		"usfault-plan/v1 seed=1\nresult-bit cycle=1 slot=0",
		"usfault-plan/v1 seed=1\nresult-bit cycle=-5 slot=0 bit=0 op=0 reg=0 dur=0",
		"usfault-plan/v1 seed=1\nresult-bit cycle=1 slot=0 bit=40 op=0 reg=0 dur=0",
	}
	for _, s := range bad {
		if _, err := DecodePlan(s); err == nil {
			t.Errorf("decoded malformed plan without error: %q", s)
		}
	}
}

func TestSiteAndDetectNames(t *testing.T) {
	for _, s := range AllSites() {
		name := s.String()
		if strings.Contains(name, "?") {
			t.Fatalf("site %d has no name", s)
		}
		back, ok := SiteFromString(name)
		if !ok || back != s {
			t.Fatalf("site name %q does not round-trip", name)
		}
	}
	for _, d := range []Detect{DetectNone, DetectParity, DetectGolden} {
		back, ok := DetectFromString(d.String())
		if !ok || back != d {
			t.Fatalf("detect name %q does not round-trip", d)
		}
	}
}

func TestLogCounters(t *testing.T) {
	var l Log
	l.Add(Record{Kind: RecInject, Site: SiteResultBit, Cycle: 5})
	l.Add(Record{Kind: RecDetect, Site: SiteResultBit, Cycle: 9})
	l.Add(Record{Kind: RecRecover, Site: SiteResultBit, Cycle: 9, Arg: 7})
	l.Add(Record{Kind: RecWatchdog, Cycle: 40})
	if l.Applied != 1 || l.Detected != 1 || l.Recovered != 1 || l.WatchdogFires != 1 {
		t.Fatalf("counters wrong: %+v", l)
	}
	if l.SquashedStations != 7 {
		t.Fatalf("squashed stations %d, want 7", l.SquashedStations)
	}
	if len(l.Records) != 4 {
		t.Fatalf("records %d, want 4", len(l.Records))
	}
	var nilLog *Log
	nilLog.Add(Record{Kind: RecInject}) // must not panic
}

func TestReportRenderingDeterministic(t *testing.T) {
	mk := func() *Report {
		return &Report{
			Seed: 3, N: 8, Window: 16, Detect: "golden", Shards: 2,
			Cells: []Cell{
				{Arch: "ultra2", Site: "result-bit", Points: 8, Masked: 3, Detected: 5, Recovered: 5, ExtraCycles: 40},
				{Arch: "ultra1", Site: "merge-bit", Points: 8, Vacuous: 2, Masked: 6},
			},
		}
	}
	var a, b strings.Builder
	if err := mk().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("report rendering is not deterministic")
	}
	if !strings.Contains(a.String(), "ultra1") || !strings.Contains(a.String(), "TOTAL") {
		t.Fatalf("report missing expected content:\n%s", a.String())
	}
	// Cells must come out sorted regardless of input order.
	if strings.Index(a.String(), "ultra1") > strings.Index(a.String(), "ultra2") {
		t.Fatalf("cells not sorted by arch:\n%s", a.String())
	}
}
