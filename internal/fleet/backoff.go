package fleet

import "time"

// Retry policy: capped exponential backoff with full jitter. Full
// jitter — a uniform draw over [0, capped-exponential] — is the
// variant that decorrelates a thundering herd fastest: after a worker
// restart every waiting client redials at a different moment instead
// of in synchronized waves. The same policy backs the coordinator's
// shard retries and usstat's reconnect loop, so the whole toolchain
// applies one well-understood pressure curve to a struggling worker.

// Policy is a capped exponential backoff schedule.
type Policy struct {
	// Base is attempt 0's ceiling (default 100ms).
	Base time.Duration
	// Max caps the exponential growth (default 10s).
	Max time.Duration
	// Mult is the per-attempt growth factor (default 2).
	Mult float64
}

// DefaultPolicy is the fleet-wide retry curve: 100ms doubling to a
// 10s ceiling.
var DefaultPolicy = Policy{Base: 100 * time.Millisecond, Max: 10 * time.Second, Mult: 2}

// withDefaults fills zero fields from DefaultPolicy.
func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultPolicy.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultPolicy.Max
	}
	if p.Mult < 1 {
		p.Mult = DefaultPolicy.Mult
	}
	return p
}

// Ceiling returns the un-jittered backoff ceiling for the given
// attempt number (0-based): min(Base·Mult^attempt, Max).
func (p Policy) Ceiling(attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Mult
		if d >= float64(p.Max) {
			return p.Max
		}
	}
	if d > float64(p.Max) {
		return p.Max
	}
	return time.Duration(d)
}

// Backoff draws a full-jitter wait for the given attempt: uniform over
// [0, Ceiling(attempt)]. rnd must return values in [0, 1); pass a
// rand.Float64-compatible source.
func (p Policy) Backoff(attempt int, rnd func() float64) time.Duration {
	c := p.Ceiling(attempt)
	if rnd == nil {
		return c
	}
	return time.Duration(rnd() * float64(c))
}

// Wait combines a jittered backoff with a server-supplied Retry-After
// hint: the server's hint is a floor (it knows when capacity returns),
// the backoff a pressure-relief ramp — take whichever is longer.
func (p Policy) Wait(attempt int, retryAfter time.Duration, rnd func() float64) time.Duration {
	d := p.Backoff(attempt, rnd)
	if retryAfter > d {
		return retryAfter
	}
	return d
}
