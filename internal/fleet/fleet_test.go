package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ultrascalar/internal/exp"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/serve"
)

// testSpec is the campaign every fleet test distributes: the full
// default shard grid at a small window and one trial per cell, so a
// complete distributed run takes milliseconds of engine time.
var testSpec = CampaignSpec{Seed: 5, Window: 6, Trials: 1}

// directReport runs the same campaign in-process — the byte-identity
// reference every fleet result is compared against.
func directReport(t *testing.T) string {
	t.Helper()
	rep, err := exp.RunFaultCampaign(exp.FaultCampaignConfig{
		Seed: testSpec.Seed, Window: testSpec.Window, Cluster: testSpec.Cluster,
		N: testSpec.Trials, Detect: fault.DetectGolden,
	})
	if err != nil {
		t.Fatalf("direct campaign: %v", err)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// newWorker starts a real usserve worker (manager + HTTP server) and
// returns its base URL.
func newWorker(t *testing.T) string {
	t.Helper()
	m, err := serve.New(serve.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return srv.URL
}

// fastConfig is the test coordinator baseline: tight heartbeats so a
// full 63-shard run finishes quickly, hedging off unless a test wants
// it, deterministic mid-range jitter.
func fastConfig(workers ...string) Config {
	return Config{
		Workers:   workers,
		Campaign:  testSpec,
		Heartbeat: 5 * time.Millisecond,
		LeaseTTL:  time.Minute,
		// Hedging off by default: these tests assert exact event
		// tallies, and an unasked-for hedge would perturb them.
		HedgeAfter: -1,
		Retry:      Policy{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Mult: 2},
		Rand:       func() float64 { return 0.5 },
	}
}

func runFleet(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return c, b.String()
}

// TestFleetMergedReportMatchesDirect is the core byte-identity bar:
// the merged report from 1 and 2 distributed workers must equal a
// single-process campaign byte for byte.
func TestFleetMergedReportMatchesDirect(t *testing.T) {
	want := directReport(t)
	for _, n := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			var workers []string
			for i := 0; i < n; i++ {
				workers = append(workers, newWorker(t))
			}
			c, got := runFleet(t, fastConfig(workers...))
			if got != want {
				t.Fatalf("merged report diverges from direct run\n--- direct ---\n%s--- fleet(%d) ---\n%s", want, n, got)
			}
			st := c.Status()
			if st.State != "done" || st.ShardsDone != st.ShardsTotal {
				t.Fatalf("status after success: %+v", st)
			}
		})
	}
}

// TestFleetResume: a coordinator restarted over a complete checkpoint
// must not contact any worker, and a partial checkpoint must only
// dispatch the missing shards — both producing the reference report.
func TestFleetResume(t *testing.T) {
	want := directReport(t)
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")

	cfg := fastConfig(newWorker(t))
	cfg.Checkpoint = ckpt
	_, got := runFleet(t, cfg)
	if got != want {
		t.Fatalf("first run diverges from direct report")
	}

	// Full checkpoint: resume with a worker that cannot be reached. If
	// any shard were re-dispatched the run would stall on retries.
	cfg2 := fastConfig("http://127.0.0.1:1") // nothing listens there
	cfg2.Checkpoint = ckpt
	c2, got2 := runFleet(t, cfg2)
	if got2 != want {
		t.Fatalf("resumed report diverges from direct report")
	}
	if st := c2.Status(); st.Resumed != st.ShardsTotal {
		t.Fatalf("resume should recover every shard from checkpoint, got %d/%d", st.Resumed, st.ShardsTotal)
	}

	// Partial checkpoint: drop some shards and resume against a real
	// worker; only the dropped ones may be dispatched.
	done, err := loadCheckpoint(ckpt, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for k := range done {
		if dropped == 7 {
			break
		}
		delete(done, k)
		dropped++
	}
	if err := writeCheckpoint(ckpt, testSpec, done); err != nil {
		t.Fatal(err)
	}
	cfg3 := fastConfig(newWorker(t))
	cfg3.Checkpoint = ckpt
	c3, got3 := runFleet(t, cfg3)
	if got3 != want {
		t.Fatalf("partially-resumed report diverges from direct report")
	}
	st := c3.Status()
	if st.Resumed != st.ShardsTotal-dropped {
		t.Fatalf("partial resume: got %d resumed, want %d", st.Resumed, st.ShardsTotal-dropped)
	}
}

// TestFleetCheckpointFingerprintMismatch: a checkpoint from a
// different campaign configuration must refuse to load.
func TestFleetCheckpointFingerprintMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	if err := writeCheckpoint(ckpt, testSpec, map[string]fault.Cell{"a/b/c": {}}); err != nil {
		t.Fatal(err)
	}
	other := testSpec
	other.Seed++
	if _, err := loadCheckpoint(ckpt, other); err == nil {
		t.Fatal("loading a checkpoint with a mismatched fingerprint should fail")
	}
}

// shedOnce wraps a real worker and sheds the first N submits with
// 503 + Retry-After, recording submit arrival times so the test can
// assert the client honored the hint.
type shedOnce struct {
	mu      sync.Mutex
	sheds   int
	submits []time.Time
	backend http.Handler
}

func (s *shedOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/jobs" {
		s.mu.Lock()
		s.submits = append(s.submits, time.Now())
		shed := s.sheds > 0
		if shed {
			s.sheds--
		}
		s.mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":{"kind":%q,"message":"queue full"}}`, serve.KindShed)
			return
		}
	}
	s.backend.ServeHTTP(w, r)
}

// TestFleetHonorsRetryAfter: after a shed with Retry-After: 1 the
// client must not resubmit to that worker for at least a second, even
// though its backoff policy alone would retry much sooner.
func TestFleetHonorsRetryAfter(t *testing.T) {
	m, err := serve.New(serve.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	shed := &shedOnce{sheds: 1, backend: m.Handler()}
	srv := httptest.NewServer(shed)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	})

	cfg := fastConfig(srv.URL)
	// One lease slot: with two, the second agent's submit is already in
	// flight when the shed lands, and the arrival-gap assertion below
	// would race it.
	cfg.LeasesPerWorker = 1
	cfg.Metrics = obs.NewRegistry()
	want := directReport(t)
	_, got := runFleet(t, cfg)
	if got != want {
		t.Fatalf("report diverges after shed + retry")
	}

	shed.mu.Lock()
	defer shed.mu.Unlock()
	if len(shed.submits) < 2 {
		t.Fatalf("want the shed submit and a retry, got %d submits", len(shed.submits))
	}
	if gap := shed.submits[1].Sub(shed.submits[0]); gap < time.Second {
		t.Fatalf("resubmitted %v after a shed with Retry-After: 1 — hint not honored", gap)
	}
	if v := counterValue(cfg.Metrics, "fleet.backpressure"); v < 1 {
		t.Fatalf("fleet.backpressure = %d, want >= 1", v)
	}
}

// counterValue sums a counter across its label variants.
func counterValue(r *obs.Registry, name string) int64 {
	var total int64
	for n, v := range r.Peek(0).Counters {
		base, _ := obs.SplitLabeledName(n)
		if base == name {
			total += v
		}
	}
	return total
}

// blackhole accepts submits and then answers every progress poll with
// a server error — a worker that went silently wrong mid-job. Cancel
// succeeds so reaping is visible.
type blackhole struct {
	mu       sync.Mutex
	submits  int
	cancels  int
	progress int
}

func (b *blackhole) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/jobs":
		b.submits++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.Job{ID: fmt.Sprintf("bh-%d", b.submits), State: serve.StateQueued})
	case r.Method == http.MethodDelete:
		b.cancels++
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "{}")
	case strings.HasSuffix(r.URL.Path, "/progress"):
		b.progress++
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":{"kind":"internal","message":"lost my mind"}}`)
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "{}")
	}
}

// TestFleetSurvivesSilentWorkerDeath: one worker takes jobs and never
// heartbeats a result; the fleet must detect the silent death via
// missed heartbeats, trip that worker's breaker, and finish the whole
// campaign on the healthy worker with a byte-identical report.
func TestFleetSurvivesSilentWorkerDeath(t *testing.T) {
	bh := &blackhole{}
	bhSrv := httptest.NewServer(bh)
	t.Cleanup(bhSrv.Close)

	cfg := fastConfig(newWorker(t), bhSrv.URL)
	cfg.MissedHeartbeats = 2
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Minute // long: once open it stays open for the test
	cfg.Metrics = obs.NewRegistry()
	want := directReport(t)
	c, got := runFleet(t, cfg)
	if got != want {
		t.Fatalf("report diverges with a silently-dead worker in the fleet")
	}
	st := c.Status()
	if st.Retries == 0 {
		t.Fatalf("expected worker-dead retries, status %+v", st)
	}
	opened := false
	for _, w := range st.Workers {
		if w.URL == bhSrv.URL && w.Breaker != serve.BreakerClosed {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("dead worker's breaker never opened: %+v", st.Workers)
	}
	if v := counterValue(cfg.Metrics, "fleet.retries"); v < 1 {
		t.Fatalf("fleet.retries = %d, want >= 1", v)
	}
}

// stuckWorker accepts submits and reports the job running forever —
// responsive but never finishing. Exercises lease expiry (and, with a
// healthy partner, hedging).
type stuckWorker struct {
	mu      sync.Mutex
	submits int
	cancels int
}

func (s *stuckWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/jobs":
		s.submits++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.Job{ID: fmt.Sprintf("stuck-%d", s.submits), State: serve.StateQueued})
	case r.Method == http.MethodDelete:
		s.cancels++
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "{}")
	case strings.HasSuffix(r.URL.Path, "/progress"):
		parts := strings.Split(r.URL.Path, "/")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.Progress{ID: parts[2], State: serve.StateRunning})
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "{}")
	}
}

// TestFleetLeaseExpiry: a worker that holds jobs forever must lose its
// leases at the TTL, have the jobs cancelled, and the shards re-run
// elsewhere — report still byte-identical.
func TestFleetLeaseExpiry(t *testing.T) {
	stuck := &stuckWorker{}
	stuckSrv := httptest.NewServer(stuck)
	t.Cleanup(stuckSrv.Close)

	cfg := fastConfig(newWorker(t), stuckSrv.URL)
	cfg.LeaseTTL = 40 * time.Millisecond
	cfg.BreakerThreshold = 1000 // keep the breaker out of this test
	cfg.Metrics = obs.NewRegistry()
	want := directReport(t)
	c, got := runFleet(t, cfg)
	if got != want {
		t.Fatalf("report diverges with an infinitely-slow worker in the fleet")
	}
	st := c.Status()
	if st.LeaseExpired == 0 {
		t.Fatalf("expected lease expirations, status %+v", st)
	}
	stuck.mu.Lock()
	cancels := stuck.cancels
	stuck.mu.Unlock()
	if cancels == 0 {
		t.Fatal("expired leases should cancel the abandoned jobs")
	}
	if v := counterValue(cfg.Metrics, "fleet.lease_expired"); v < 1 {
		t.Fatalf("fleet.lease_expired = %d, want >= 1", v)
	}
}

// TestFleetHedging: with hedging enabled and a worker sitting on its
// jobs, an idle healthy worker must re-dispatch the straggler shards,
// win, and cancel the losers — without double-counting any shard.
func TestFleetHedging(t *testing.T) {
	stuck := &stuckWorker{}
	stuckSrv := httptest.NewServer(stuck)
	t.Cleanup(stuckSrv.Close)

	cfg := fastConfig(newWorker(t), stuckSrv.URL)
	cfg.HedgeAfter = 20 * time.Millisecond
	cfg.LeaseTTL = time.Minute // leases never expire: only hedging can save the stuck shards
	cfg.BreakerThreshold = 1000
	cfg.Metrics = obs.NewRegistry()
	want := directReport(t)
	c, got := runFleet(t, cfg)
	if got != want {
		t.Fatalf("report diverges under hedged re-dispatch")
	}
	st := c.Status()
	if st.HedgeWins == 0 {
		t.Fatalf("expected hedge wins against the stuck worker, status %+v", st)
	}
	stuck.mu.Lock()
	cancels := stuck.cancels
	stuck.mu.Unlock()
	if cancels == 0 {
		t.Fatal("hedge losers should be cancelled")
	}
	if v := counterValue(cfg.Metrics, "fleet.hedge_wins"); v < 1 {
		t.Fatalf("fleet.hedge_wins = %d, want >= 1", v)
	}
}

// TestPolicyBackoff covers the retry curve: exponential growth, the
// cap, full-jitter bounds, and Retry-After acting as a floor.
func TestPolicyBackoff(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Mult: 2}
	wantCeil := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for i, want := range wantCeil {
		if got := p.Ceiling(i); got != want {
			t.Fatalf("Ceiling(%d) = %v, want %v", i, got, want)
		}
	}
	if got := p.Backoff(3, func() float64 { return 0 }); got != 0 {
		t.Fatalf("full jitter floor: got %v, want 0", got)
	}
	if got := p.Backoff(3, func() float64 { return 0.5 }); got != 400*time.Millisecond {
		t.Fatalf("mid jitter: got %v, want 400ms", got)
	}
	if got := p.Wait(0, 5*time.Second, func() float64 { return 0.99 }); got != 5*time.Second {
		t.Fatalf("Retry-After should floor the wait: got %v", got)
	}
	if got := p.Wait(5, 0, func() float64 { return 1 - 1e-12 }); got > 2*time.Second {
		t.Fatalf("wait above cap: %v", got)
	}
	var zero Policy
	if got := zero.Ceiling(0); got != DefaultPolicy.Base {
		t.Fatalf("zero policy should adopt defaults, Ceiling(0) = %v", got)
	}
}

// TestClientErrorClassification: backpressure kinds are not breaker
// failures; transport errors and plain 5xx are.
func TestClientErrorClassification(t *testing.T) {
	shed := &HTTPError{Status: 503, Kind: serve.KindShed, RetryAfter: time.Second}
	if !shed.Backpressure() || IsBreakerFailure(shed) {
		t.Fatalf("shed should be backpressure, not a breaker failure")
	}
	boom := &HTTPError{Status: 500, Kind: serve.KindInternal}
	if boom.Backpressure() || !IsBreakerFailure(boom) {
		t.Fatalf("internal 500 should count toward the breaker")
	}
	notFound := &HTTPError{Status: 404, Kind: serve.KindNotFound}
	if IsBreakerFailure(notFound) {
		t.Fatalf("a 404 comes from a healthy worker; not a breaker failure")
	}
	if !IsBreakerFailure(fmt.Errorf("dial tcp: connection refused")) {
		t.Fatalf("transport errors are breaker failures")
	}
}

// TestOverBudget pins the retry-budget arithmetic: a fraction of total
// dispatches, exhausted when one more retry would cross it, disabled
// by a negative budget.
func TestOverBudget(t *testing.T) {
	cases := []struct {
		budget              float64
		retries, dispatches int
		want                bool
	}{
		{0.5, 0, 1, true},    // 1 retry against 1 dispatch is 100% retries
		{0.5, 0, 2, false},   // 1 of 2 is exactly the budget
		{0.5, 1, 2, true},    // 2 of 2 is over
		{0.5, 30, 63, false}, // 31 of 63 still under half
		{0.5, 32, 63, true},
		{-1, 1000, 1, false}, // negative disables the budget entirely
	}
	for _, c := range cases {
		if got := overBudget(c.budget, c.retries, c.dispatches); got != c.want {
			t.Errorf("overBudget(%v, %d, %d) = %v, want %v",
				c.budget, c.retries, c.dispatches, got, c.want)
		}
	}
}

// flakyFront wraps a real worker: the first N submits fail with a
// plain 500, and every submit's decoded request is recorded so the
// test can check deadline propagation.
type flakyFront struct {
	mu       sync.Mutex
	failures int
	reqs     []serve.JobRequest
	backend  http.Handler
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/jobs" {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var req serve.JobRequest
		json.Unmarshal(data, &req)
		f.mu.Lock()
		f.reqs = append(f.reqs, req)
		fail := f.failures > 0
		if fail {
			f.failures--
		}
		f.mu.Unlock()
		if fail {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, "transient storage error")
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(data))
	}
	f.backend.ServeHTTP(w, r)
}

// TestFleetRetryBudgetAndDeadlinePropagation: with a near-zero retry
// budget, submit failures push retries onto the slow lane (visible in
// Status and metrics) but the campaign still converges byte-identical;
// and every dispatched job carries the lease TTL as its server-side
// timeout so abandoned jobs die with their lease.
func TestFleetRetryBudgetAndDeadlinePropagation(t *testing.T) {
	m, err := serve.New(serve.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	front := &flakyFront{failures: 4, backend: m.Handler()}
	srv := httptest.NewServer(front)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	})

	cfg := fastConfig(srv.URL)
	cfg.RetryBudget = 0.01      // first failed submit already exhausts it
	cfg.BreakerThreshold = 1000 // keep the breaker out of this test
	cfg.Retry.Max = 30 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	want := directReport(t)
	c, got := runFleet(t, cfg)
	if got != want {
		t.Fatalf("report diverges after budget-limited retries")
	}

	st := c.Status()
	if st.BudgetExhausted < 1 {
		t.Fatalf("budget never reported exhausted: %+v", st)
	}
	if st.Retries < 4 {
		t.Fatalf("retries = %d, want >= 4 (one per injected failure)", st.Retries)
	}
	if st.Dispatches < st.ShardsTotal {
		t.Fatalf("dispatches = %d, want >= %d shards", st.Dispatches, st.ShardsTotal)
	}
	if v := counterValue(cfg.Metrics, "fleet.retry_budget_exhausted"); v < 1 {
		t.Fatalf("fleet.retry_budget_exhausted = %d, want >= 1", v)
	}

	front.mu.Lock()
	defer front.mu.Unlock()
	if len(front.reqs) == 0 {
		t.Fatal("no submits recorded")
	}
	for i, req := range front.reqs {
		if req.TimeoutMs != cfg.LeaseTTL.Milliseconds() {
			t.Fatalf("submit %d carried timeout_ms %d, want lease TTL %d",
				i, req.TimeoutMs, cfg.LeaseTTL.Milliseconds())
		}
	}
}

// TestClientReadyTracksDrain: readiness fails once the worker starts
// draining while liveness keeps answering — the signal deploy and
// chaos tooling must gate dispatch on.
func TestClientReadyTracksDrain(t *testing.T) {
	m, err := serve.New(serve.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("healthy worker not ready: %v", err)
	}
	m.Drain(ctx)
	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("drained worker should stay live: %v", err)
	}
	err = cl.Ready(ctx)
	if err == nil {
		t.Fatal("drained worker still reports ready")
	}
	herr, ok := err.(*HTTPError)
	if !ok || herr.Status != 503 || herr.Kind != serve.KindDraining {
		t.Fatalf("readiness failure = %v, want 503 %s", err, serve.KindDraining)
	}
}
