// Package fleet distributes a fault campaign across N usserve workers.
//
// The coordinator splits the campaign into its natural shards — the
// same (arch × workload × site) cells the single-process runner
// checkpoints — and dispatches each shard as one job over the worker
// job API, under a time-bounded lease. Point seeds are keyed by shard
// identity, so a shard run anywhere produces the exact cell a
// single-process campaign would, and the merged report is byte-
// identical for any worker count, any shard-to-worker assignment, and
// any interleaving of crashes and retries.
//
// Shard life cycle:
//
//	pending ──claim──▶ leased(worker, job, deadline) ──result──▶ done
//	   ▲                      │
//	   └──── backoff ◀────────┘  (lease expiry, missed heartbeats,
//	                              worker error, job failure)
//
// Failure handling is layered: heartbeats (progress polls) detect
// silent worker death in a few intervals; the lease deadline bounds
// total shard runtime even when the worker keeps answering; retries
// re-enter the pending queue behind capped exponential backoff with
// full jitter; per-worker circuit breakers (the serve breaker, keyed
// by worker URL) cool down a worker that keeps failing; and straggler
// shards are hedged — re-dispatched to an idle worker, first result
// wins, the loser is cancelled. Every merged result is written to a
// crash-atomic checkpoint before the coordinator acts on it, so a
// SIGKILLed coordinator resumes without re-running completed shards.
package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ultrascalar/internal/exp"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
	"ultrascalar/internal/serve"
)

// CampaignSpec is the campaign being distributed: the parameters that
// shape results (and therefore the checkpoint fingerprint).
type CampaignSpec struct {
	Seed    int64 `json:"seed"`
	Window  int   `json:"window"`
	Cluster int   `json:"cluster"`
	Trials  int   `json:"trials"`
}

// Config tunes the coordinator.
type Config struct {
	// Workers is the worker base URLs (at least one).
	Workers []string
	// Campaign is the campaign to distribute.
	Campaign CampaignSpec
	// Checkpoint is the coordinator checkpoint path ("" = none: a
	// killed coordinator restarts from scratch).
	Checkpoint string
	// LeaseTTL bounds one shard dispatch end to end; past it the lease
	// expires and the shard is re-dispatched (default 2m).
	LeaseTTL time.Duration
	// Heartbeat is the progress-poll interval (default 500ms).
	Heartbeat time.Duration
	// MissedHeartbeats is how many consecutive failed polls declare the
	// worker silently dead (default 3).
	MissedHeartbeats int
	// HedgeAfter is the lease age past which an idle worker may hedge
	// the shard (default LeaseTTL/2; negative disables hedging).
	HedgeAfter time.Duration
	// MaxHedges caps extra leases per shard (default 1).
	MaxHedges int
	// LeasesPerWorker is the concurrent leases each worker is offered
	// (default 2, matching the usserve default executor count).
	LeasesPerWorker int
	// Retry is the backoff policy for shard re-dispatch (zero value =
	// DefaultPolicy).
	Retry Policy
	// RetryBudget bounds retry amplification: the fraction of total
	// dispatches that may be retries (default 0.5; negative = no
	// budget). Once spent, shards still re-dispatch — the campaign must
	// converge — but only on the slow lane: the full un-jittered
	// Policy.Max wait, with hedging (speculative extra dispatches)
	// suppressed. A fleet retrying into an overloaded worker set
	// therefore decays to at most one retry per Max interval per shard
	// instead of multiplying the load that caused the failures.
	RetryBudget float64
	// BreakerThreshold / BreakerCooldown tune the per-worker circuit
	// breaker (defaults 3 and 15s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Metrics receives fleet telemetry (nil = off).
	Metrics *obs.Registry
	// Log receives structured fleet events (nil = off).
	Log *obslog.Logger
	// Clock defaults to time.Now; tests may inject a fake for breaker
	// cooldowns (lease timing always uses real sleeps).
	Clock serve.Clock
	// Rand supplies backoff jitter in [0,1) (default math/rand).
	Rand func() float64
}

// withDefaults fills the zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.MissedHeartbeats <= 0 {
		cfg.MissedHeartbeats = 3
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = cfg.LeaseTTL / 2
	}
	if cfg.MaxHedges <= 0 {
		cfg.MaxHedges = 1
	}
	if cfg.LeasesPerWorker <= 0 {
		cfg.LeasesPerWorker = 2
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 0.5
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 15 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	return cfg
}

// lease is one active shard dispatch.
type lease struct {
	worker   string
	jobID    string
	start    time.Time
	deadline time.Time
	hedge    bool
}

// shardState is one shard's coordinator-side record.
type shardState struct {
	shard     exp.CampaignShard
	attempts  int       // dispatches so far (drives backoff)
	notBefore time.Time // backoff gate for re-dispatch
	leases    []*lease
	done      bool
	cell      fault.Cell
}

// workerState is one worker's coordinator-side record.
type workerState struct {
	client    *Client
	notBefore time.Time // backpressure gate (Retry-After)
	active    int
	done      int
	retries   int
}

// Retry reasons, as labeled on the fleet.retries counter.
const (
	retrySubmit       = "submit-error"
	retryJobFailed    = "job-failed"
	retryLeaseExpired = "lease-expired"
	retryWorkerDead   = "worker-dead"
)

// Coordinator runs one distributed campaign.
type Coordinator struct {
	cfg      Config
	breakers *serve.Breakers
	log      *obslog.Logger

	mu        sync.Mutex
	cond      *sync.Cond
	shards    []*shardState
	doneCells map[string]fault.Cell // checkpointed results by shard key
	doneCount int
	resumed   int
	runErr    error
	workers   map[string]*workerState

	// event tallies mirrored into Status (metrics hold the same data,
	// but Status must work with a nil registry).
	dispatches      int
	retries         int
	leaseExpired    int
	hedges          int
	hedgeWins       int
	budgetExhausted int
}

// overBudget reports whether one more retry would push the retry count
// past budget·dispatches. Retries themselves count as dispatches, so
// under sustained failure the ratio tends to 1 and the budget stays
// exhausted until fresh work succeeds.
func overBudget(budget float64, retries, dispatches int) bool {
	if budget < 0 {
		return false
	}
	return float64(retries+1) > budget*float64(dispatches)
}

func (c *Coordinator) overBudgetLocked() bool {
	return overBudget(c.cfg.RetryBudget, c.retries, c.dispatches)
}

// New builds a coordinator. Run may be called once.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: at least one worker URL is required")
	}
	if cfg.Campaign.Window < 1 {
		return nil, fmt.Errorf("fleet: campaign window must be >= 1, got %d", cfg.Campaign.Window)
	}
	if cfg.Campaign.Trials < 1 {
		return nil, fmt.Errorf("fleet: campaign needs trials >= 1, got %d", cfg.Campaign.Trials)
	}
	c := &Coordinator{
		cfg:      cfg,
		breakers: serve.NewBreakers(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		log:      cfg.Log.With("fleet"),
		workers:  map[string]*workerState{},
	}
	c.cond = sync.NewCond(&c.mu)
	// The per-request timeout scales with the heartbeat: a hung worker
	// (SIGSTOP, wedged disk) must fail a poll within a few heartbeats,
	// not after a long generic HTTP timeout — silent-death detection is
	// MissedHeartbeats × (poll timeout + interval) end to end.
	reqTimeout := 4 * cfg.Heartbeat
	if reqTimeout < time.Second {
		reqTimeout = time.Second
	}
	if reqTimeout > 10*time.Second {
		reqTimeout = 10 * time.Second
	}
	for _, w := range cfg.Workers {
		if _, dup := c.workers[w]; dup {
			return nil, fmt.Errorf("fleet: duplicate worker URL %s", w)
		}
		cl := NewClient(w)
		cl.HTTP.Timeout = reqTimeout
		c.workers[w] = &workerState{client: cl}
	}
	c.breakers.OnTransition(func(worker, from, to string) {
		c.gaugeSet("fleet.breaker_state", serve.BreakerStateValue(to), obs.Label{Key: "worker", Value: worker})
		c.inc("fleet.breaker_transitions", obs.Label{Key: "worker", Value: worker}, obs.Label{Key: "to", Value: to})
	})
	return c, nil
}

// metric helpers — every call tolerates a nil registry.

func (c *Coordinator) inc(name string, labels ...obs.Label) {
	if r := c.cfg.Metrics; r != nil {
		r.Counter(obs.LabeledName(name, labels...)).Inc()
	}
}

func (c *Coordinator) gaugeSet(name string, v float64, labels ...obs.Label) {
	if r := c.cfg.Metrics; r != nil {
		r.Gauge(obs.LabeledName(name, labels...)).Set(v)
	}
}

// shardMsBounds buckets shard latencies from trivial cells to hedged
// stragglers.
var shardMsBounds = []float64{10, 30, 100, 300, 1000, 3000, 10000, 30000, 120000}

func (c *Coordinator) observeShardMs(ms float64) {
	if r := c.cfg.Metrics; r != nil {
		r.Histogram("fleet.shard_ms", shardMsBounds).Observe(ms)
	}
}

// traceFor derives the trace ID one dispatch attempt shares with its
// worker-side job: coordinator lease events and worker job events
// carry the same 16-hex identity.
func (c *Coordinator) traceFor(key string, attempt int) obslog.TraceID {
	return obslog.DeriveTraceID(fmt.Sprintf("fleet:%s:%s:%d", c.cfg.Campaign.Fingerprint(), key, attempt))
}

// Run distributes the campaign and returns the merged report. The
// report is byte-identical (via fault.Report.WriteText) to a single-
// process campaign with the same spec, regardless of worker count,
// crashes, retries or hedging.
func (c *Coordinator) Run(ctx context.Context) (*fault.Report, error) {
	shards := exp.CampaignShards()
	done, err := loadCheckpoint(c.cfg.Checkpoint, c.cfg.Campaign)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.doneCells = map[string]fault.Cell{}
	for _, sh := range shards {
		st := &shardState{shard: sh}
		if cell, ok := done[sh.Key()]; ok {
			st.done, st.cell = true, cell
			c.doneCells[sh.Key()] = cell
			c.doneCount++
			c.resumed++
		}
		c.shards = append(c.shards, st)
	}
	total := len(c.shards)
	c.mu.Unlock()

	c.gaugeSet("fleet.shards_total", float64(total))
	c.gaugeSet("fleet.shards_done", float64(c.doneCount))
	c.log.Info("fleet start",
		obslog.Int("shards", total), obslog.Int("resumed", c.resumed),
		obslog.Int("workers", len(c.cfg.Workers)),
		obslog.Int64("seed", c.cfg.Campaign.Seed), obslog.Int("window", c.cfg.Campaign.Window))

	// Timed conditions (backoff gates, lease ages, breaker cooldowns)
	// have no edge to wake on, so a ticker broadcasts the claim cond at
	// a fraction of the heartbeat.
	tick := c.cfg.Heartbeat / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	tickCtx, stopTick := context.WithCancel(context.Background())
	defer stopTick()
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-tickCtx.Done():
				return
			case <-t.C:
				c.cond.Broadcast()
			}
		}
	}()
	// ctx cancellation must unblock claim waits too.
	stopWake := context.AfterFunc(ctx, func() { c.cond.Broadcast() })
	defer stopWake()

	var wg sync.WaitGroup
	for _, w := range c.cfg.Workers {
		for i := 0; i < c.cfg.LeasesPerWorker; i++ {
			wg.Add(1)
			go func(worker string) {
				defer wg.Done()
				c.agent(ctx, worker)
			}(w)
		}
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runErr != nil {
		return nil, c.runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fleet: stopped after %d/%d shards: %w", c.doneCount, total, err)
	}
	rep := &fault.Report{
		Seed: c.cfg.Campaign.Seed, N: c.cfg.Campaign.Trials,
		Window: c.cfg.Campaign.Window, Detect: fault.DetectGolden.String(),
		Shards: total,
		// Resumed stays zero: resume is invocation metadata, and the
		// merged report must be byte-identical to an uninterrupted run.
		Resumed: 0,
	}
	for _, st := range c.shards {
		rep.Cells = append(rep.Cells, st.cell)
	}
	rep.SortCells()
	c.log.Info("fleet done", obslog.Int("shards", total),
		obslog.Int("retries", c.retries), obslog.Int("hedge_wins", c.hedgeWins))
	return rep, nil
}

// agent is one lease slot against one worker: claim a shard, run the
// lease, repeat until the campaign is finished or aborted.
func (c *Coordinator) agent(ctx context.Context, worker string) {
	for {
		sh, l := c.claim(ctx, worker)
		if sh == nil {
			return
		}
		c.runLease(ctx, worker, sh, l)
	}
}

// claim blocks until this worker may start a lease: a pending shard
// past its backoff gate, or — when nothing is pending — a straggler
// worth hedging. Returns (nil, nil) when the campaign is finished,
// fatally failed, or ctx is done.
func (c *Coordinator) claim(ctx context.Context, worker string) (*shardState, *lease) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.runErr != nil || c.doneCount == len(c.shards) || ctx.Err() != nil {
			return nil, nil
		}
		now := c.cfg.Clock()
		ws := c.workers[worker]
		if now.After(ws.notBefore) {
			if st, hedge := c.claimableLocked(worker, now); st != nil {
				// The breaker check sits after candidate selection so a
				// half-open probe slot is only consumed when there is
				// work to probe with.
				if berr := c.breakers.Allow(worker); berr == nil {
					l := &lease{worker: worker, start: now, hedge: hedge}
					st.leases = append(st.leases, l)
					st.attempts++
					c.dispatches++
					ws.active++
					c.gaugeSet("fleet.worker_queue_depth", float64(ws.active), obs.Label{Key: "worker", Value: worker})
					if hedge {
						c.hedges++
						c.inc("fleet.hedges", obs.Label{Key: "worker", Value: worker})
					}
					return st, l
				}
			}
		}
		c.cond.Wait()
	}
}

// claimableLocked picks this worker's next shard: first a pending one
// (no active lease, backoff gate passed), else the oldest straggler
// eligible for a hedge. c.mu must be held.
func (c *Coordinator) claimableLocked(worker string, now time.Time) (*shardState, bool) {
	for _, st := range c.shards {
		if !st.done && len(st.leases) == 0 && now.After(st.notBefore) {
			return st, false
		}
	}
	if c.cfg.HedgeAfter < 0 {
		return nil, false
	}
	// Hedges are speculative extra dispatches; with the retry budget
	// spent the fleet is already amplifying load, which is exactly when
	// speculation must stop.
	if c.overBudgetLocked() {
		return nil, false
	}
	var pick *shardState
	var pickAge time.Duration
	for _, st := range c.shards {
		if st.done || len(st.leases) == 0 || len(st.leases) > c.cfg.MaxHedges {
			continue
		}
		mine := false
		oldest := st.leases[0].start
		for _, l := range st.leases {
			if l.worker == worker {
				mine = true
			}
			if l.start.Before(oldest) {
				oldest = l.start
			}
		}
		if mine {
			continue
		}
		if age := now.Sub(oldest); age >= c.cfg.HedgeAfter && (pick == nil || age > pickAge) {
			pick, pickAge = st, age
		}
	}
	return pick, pick != nil
}

// release drops a lease without a result. c.mu must not be held.
func (c *Coordinator) release(sh *shardState, l *lease) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, x := range sh.leases {
		if x == l {
			sh.leases = append(sh.leases[:i], sh.leases[i+1:]...)
			break
		}
	}
	ws := c.workers[l.worker]
	ws.active--
	c.gaugeSet("fleet.worker_queue_depth", float64(ws.active), obs.Label{Key: "worker", Value: l.worker})
	c.cond.Broadcast()
}

// retryShard re-queues a shard behind its backoff gate after a failed
// lease, honoring any server Retry-After hint.
func (c *Coordinator) retryShard(sh *shardState, l *lease, reason string, retryAfter time.Duration) {
	c.mu.Lock()
	over := c.overBudgetLocked()
	var wait time.Duration
	if over {
		// Budget spent: slow lane. The shard still re-enters the queue —
		// the campaign must converge — but at the policy's full ceiling,
		// un-jittered, so retries cannot amplify whatever overload is
		// causing the failures. A Retry-After hint can only lengthen it.
		wait = c.cfg.Retry.Max
		if retryAfter > wait {
			wait = retryAfter
		}
		c.budgetExhausted++
	} else {
		wait = c.cfg.Retry.Wait(sh.attempts, retryAfter, c.cfg.Rand)
	}
	sh.notBefore = c.cfg.Clock().Add(wait)
	c.retries++
	c.workers[l.worker].retries++
	if reason == retryLeaseExpired {
		c.leaseExpired++
	}
	c.mu.Unlock()
	c.inc("fleet.retries", obs.Label{Key: "reason", Value: reason})
	if over {
		c.inc("fleet.retry_budget_exhausted", obs.Label{Key: "reason", Value: reason})
	}
	if reason == retryLeaseExpired {
		c.inc("fleet.lease_expired", obs.Label{Key: "worker", Value: l.worker})
	}
	c.log.Warn("shard retry",
		obslog.String("shard", sh.shard.Key()), obslog.String("worker", l.worker),
		obslog.String("reason", reason), obslog.Int("attempts", sh.attempts),
		obslog.Duration("backoff", wait), obslog.Bool("budget_exhausted", over))
	c.release(sh, l)
}

// shardDone reports whether the shard already has a merged result.
func (c *Coordinator) shardDone(sh *shardState) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return sh.done
}

// sleepCtx waits d or until ctx is done; false means ctx won.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// terminal reports whether a job state is final.
func terminal(state string) bool {
	switch state {
	case serve.StateDone, serve.StateFailed, serve.StateCanceled, serve.StateInterrupted:
		return true
	}
	return false
}

// bgCancel best-effort cancels a job outside the run context (used for
// hedge losers and expired leases, where the run may be shutting down).
func bgCancel(cl *Client, jobID string) {
	if jobID == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cl.Cancel(ctx, jobID)
}

// runLease executes one lease: submit the shard as a job, heartbeat it
// to completion, and merge or retry.
func (c *Coordinator) runLease(ctx context.Context, worker string, sh *shardState, l *lease) {
	ws := c.workers[worker]
	cl := ws.client
	trace := c.traceFor(sh.shard.Key(), sh.attempts)
	lg := c.log.WithTrace(trace)

	req := serve.JobRequest{
		Kind:      "campaign",
		Seed:      c.cfg.Campaign.Seed,
		Window:    c.cfg.Campaign.Window,
		Cluster:   c.cfg.Campaign.Cluster,
		Trials:    c.cfg.Campaign.Trials,
		Archs:     []string{sh.shard.Arch},
		Workloads: []string{sh.shard.Workload},
		Sites:     []string{sh.shard.Site},
		Trace:     string(trace),
		// Deadline propagation: the worker-side job is bounded by the
		// lease. When the lease expires the coordinator walks away and
		// re-dispatches — without this the abandoned job would keep
		// burning worker capacity until the service's own default
		// timeout, amplifying the overload that slowed it down.
		TimeoutMs: c.cfg.LeaseTTL.Milliseconds(),
	}
	job, err := cl.Submit(ctx, req)
	if err != nil {
		herr, isHTTP := err.(*HTTPError)
		if isHTTP && herr.Backpressure() {
			// Flow control from a healthy worker: gate the worker, not
			// the shard — another worker may take it immediately.
			c.mu.Lock()
			ws.notBefore = c.cfg.Clock().Add(c.cfg.Retry.Wait(sh.attempts, herr.RetryAfter, c.cfg.Rand))
			c.mu.Unlock()
			c.inc("fleet.backpressure", obs.Label{Key: "worker", Value: worker}, obs.Label{Key: "kind", Value: herr.Kind})
			lg.Info("worker backpressure",
				obslog.String("worker", worker), obslog.String("kind", herr.Kind),
				obslog.Duration("retry_after", herr.RetryAfter))
			c.release(sh, l)
			return
		}
		if c.breakers.Report(worker, !IsBreakerFailure(err)) {
			lg.Warn("worker breaker opened", obslog.String("worker", worker))
		}
		c.retryShard(sh, l, retrySubmit, 0)
		return
	}
	c.mu.Lock()
	l.jobID = job.ID
	l.deadline = l.start.Add(c.cfg.LeaseTTL)
	c.mu.Unlock()
	lg.Info("shard leased",
		obslog.String("shard", sh.shard.Key()), obslog.String("worker", worker),
		obslog.String("job", job.ID), obslog.Bool("hedge", l.hedge))

	misses := 0
	var last serve.Progress
	for {
		if c.shardDone(sh) {
			// Another lease won the race (hedge or duplicate path):
			// this dispatch is the loser — cancel it and walk away.
			bgCancel(cl, job.ID)
			c.inc("fleet.hedge_losses", obs.Label{Key: "worker", Value: worker})
			lg.Info("hedge loser cancelled",
				obslog.String("shard", sh.shard.Key()), obslog.String("worker", worker))
			c.release(sh, l)
			return
		}
		if c.cfg.Clock().After(l.deadline) {
			bgCancel(cl, job.ID)
			lg.Warn("lease expired",
				obslog.String("shard", sh.shard.Key()), obslog.String("worker", worker),
				obslog.Duration("ttl", c.cfg.LeaseTTL))
			c.retryShard(sh, l, retryLeaseExpired, 0)
			return
		}
		if !sleepCtx(ctx, c.cfg.Heartbeat) {
			c.release(sh, l)
			return
		}
		p, perr := cl.Progress(ctx, job.ID)
		if perr != nil {
			if ctx.Err() != nil {
				c.release(sh, l)
				return
			}
			misses++
			lg.Warn("heartbeat missed",
				obslog.String("worker", worker), obslog.String("job", job.ID),
				obslog.Int("misses", misses), obslog.String("err", perr.Error()))
			if misses >= c.cfg.MissedHeartbeats {
				// Silent death: the worker stopped answering for its
				// job. Count it against the worker and re-dispatch.
				if c.breakers.Report(worker, false) {
					lg.Warn("worker breaker opened", obslog.String("worker", worker))
				}
				c.retryShard(sh, l, retryWorkerDead, 0)
				return
			}
			continue
		}
		misses = 0
		last = p
		if terminal(p.State) {
			break
		}
	}

	if last.State != serve.StateDone {
		// The worker finished the job without a result: failed, canceled
		// under us, or interrupted by a worker restart. All re-dispatch.
		rec, gerr := cl.Job(ctx, job.ID)
		kind := rec.ErrorKind
		if gerr != nil {
			kind = "unknown"
		}
		c.breakers.Report(worker, !IsBreakerFailure(gerr))
		lg.Warn("shard job did not complete",
			obslog.String("shard", sh.shard.Key()), obslog.String("worker", worker),
			obslog.String("state", last.State), obslog.String("error_kind", kind))
		c.retryShard(sh, l, retryJobFailed, 0)
		return
	}

	rec, gerr := cl.Job(ctx, job.ID)
	if gerr != nil {
		if c.breakers.Report(worker, !IsBreakerFailure(gerr)) {
			lg.Warn("worker breaker opened", obslog.String("worker", worker))
		}
		c.retryShard(sh, l, retryWorkerDead, 0)
		return
	}
	c.breakers.Report(worker, true)
	c.merge(sh, l, rec, lg)
}

// merge delivers one lease's result: first result wins, the checkpoint
// is durably written before the win is visible, and a duplicate result
// (a hedge race both sides of which completed) is cross-checked
// byte-for-byte — a mismatch is a determinism violation and aborts the
// run loudly rather than shipping a report that depends on scheduling.
func (c *Coordinator) merge(sh *shardState, l *lease, rec serve.Job, lg *obslog.Logger) {
	if len(rec.Cells) != 1 {
		c.fatal(fmt.Errorf("fleet: shard %s returned %d cells, want exactly 1 — worker %s is not speaking the shard protocol",
			sh.shard.Key(), len(rec.Cells), l.worker))
		c.release(sh, l)
		return
	}
	cell := rec.Cells[0]

	c.mu.Lock()
	if sh.done {
		dup := sh.cell
		c.mu.Unlock()
		c.inc("fleet.duplicate_results", obs.Label{Key: "worker", Value: l.worker})
		lg.Info("duplicate result discarded",
			obslog.String("shard", sh.shard.Key()), obslog.String("worker", l.worker),
			obslog.Bool("hedge", l.hedge))
		if dup != cell {
			c.fatal(fmt.Errorf("fleet: shard %s produced divergent results across workers (%+v vs %+v) — determinism violation",
				sh.shard.Key(), dup, cell))
		}
		c.release(sh, l)
		return
	}
	// Checkpoint before the result becomes visible: a coordinator
	// killed between these two steps re-runs the shard (idempotent by
	// key), never loses a merged result it acted on.
	c.doneCells[sh.shard.Key()] = cell
	if err := writeCheckpoint(c.cfg.Checkpoint, c.cfg.Campaign, c.doneCells); err != nil {
		delete(c.doneCells, sh.shard.Key())
		c.mu.Unlock()
		c.fatal(err)
		c.release(sh, l)
		return
	}
	sh.done, sh.cell = true, cell
	c.doneCount++
	c.workers[l.worker].done++
	doneCount := c.doneCount
	if l.hedge {
		c.hedgeWins++
	}
	// Reap the other lease holders proactively: first result wins,
	// losers are cancelled rather than left to run out their leases.
	var losers []*lease
	for _, x := range sh.leases {
		if x != l && x.jobID != "" {
			losers = append(losers, x)
		}
	}
	c.mu.Unlock()

	c.inc("fleet.checkpoint_writes")
	c.gaugeSet("fleet.shards_done", float64(doneCount))
	if l.hedge {
		c.inc("fleet.hedge_wins", obs.Label{Key: "worker", Value: l.worker})
	}
	c.observeShardMs(float64(c.cfg.Clock().Sub(l.start).Nanoseconds()) / 1e6)
	for _, x := range losers {
		go bgCancel(c.workers[x.worker].client, x.jobID)
	}
	lg.Info("shard merged",
		obslog.String("shard", sh.shard.Key()), obslog.String("worker", l.worker),
		obslog.Int("done", doneCount), obslog.Int("total", len(c.shards)),
		obslog.Bool("hedge", l.hedge))
	c.release(sh, l)
}

// fatal records the first fatal error and wakes every agent to exit.
func (c *Coordinator) fatal(err error) {
	c.mu.Lock()
	if c.runErr == nil {
		c.runErr = err
	}
	c.mu.Unlock()
	c.cond.Broadcast()
	c.log.Error("fleet fatal", obslog.String("err", err.Error()))
}

// WorkerView is one worker's slice of the fleet status.
type WorkerView struct {
	URL          string `json:"url"`
	Breaker      string `json:"breaker"`
	ActiveLeases int    `json:"active_leases"`
	Done         int    `json:"done"`
	Retries      int    `json:"retries"`
}

// Status is a point-in-time fleet snapshot, served by usfleet -status
// and rendered by usstat -fleet.
type Status struct {
	State        string `json:"state"` // running | done | failed
	ShardsTotal  int    `json:"shards_total"`
	ShardsDone   int    `json:"shards_done"`
	Resumed      int    `json:"resumed"`
	Dispatches   int    `json:"dispatches"`
	Retries      int    `json:"retries"`
	LeaseExpired int    `json:"lease_expired"`
	Hedges       int    `json:"hedges"`
	HedgeWins    int    `json:"hedge_wins"`
	// BudgetExhausted counts retries that were forced onto the slow
	// lane because the retry budget was spent.
	BudgetExhausted int          `json:"budget_exhausted"`
	Workers         []WorkerView `json:"workers"`
	Err             string       `json:"error,omitempty"`
}

// Status snapshots the fleet.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		State:       "running",
		ShardsTotal: len(c.shards), ShardsDone: c.doneCount,
		Resumed: c.resumed, Dispatches: c.dispatches, Retries: c.retries,
		LeaseExpired: c.leaseExpired, Hedges: c.hedges, HedgeWins: c.hedgeWins,
		BudgetExhausted: c.budgetExhausted,
	}
	if c.runErr != nil {
		st.State, st.Err = "failed", c.runErr.Error()
	} else if len(c.shards) > 0 && c.doneCount == len(c.shards) {
		st.State = "done"
	}
	for _, url := range c.cfg.Workers {
		ws := c.workers[url]
		st.Workers = append(st.Workers, WorkerView{
			URL: url, Breaker: c.breakers.State(url),
			ActiveLeases: ws.active, Done: ws.done, Retries: ws.retries,
		})
	}
	return st
}
