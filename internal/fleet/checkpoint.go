package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/obs"
)

// The coordinator checkpoint is the fleet's crash story: every merged
// shard result is on stable storage before the coordinator acts on it,
// so a SIGKILLed coordinator restarts, replays the file, and
// re-dispatches only the shards it never finished. The file is JSONL —
// a header line binding the run manifest, then one line per completed
// shard — rewritten whole through atomicio on every merge (a campaign
// checkpoint is a few hundred small lines; rewriting buys atomicity
// and durability for the price of a page or two of IO). Results are
// content-addressed: the header fingerprint names the run manifest,
// each line's shard key names the shard, and a line is only ever
// written once — re-delivery of a shard (a hedge loser, a resumed
// lease) merges idempotently by key instead of double-counting.

const checkpointMagic = "usfleet-checkpoint/v1"

type checkpointHeader struct {
	Magic       string `json:"magic"`
	Fingerprint string `json:"fingerprint"`
}

type checkpointLine struct {
	Shard string     `json:"shard"`
	Cell  fault.Cell `json:"cell"`
}

// Fingerprint names the run manifest: every campaign parameter that
// shapes results. Two runs share shard results exactly when their
// fingerprints match; anything else is a different campaign and a
// stale checkpoint must fail loudly, not merge silently.
func (s CampaignSpec) Fingerprint() string {
	return fmt.Sprintf("seed=%d n=%d window=%d cluster=%d detect=golden",
		s.Seed, s.Trials, s.Window, s.Cluster)
}

// loadCheckpoint reads the checkpoint at path, if any, returning the
// completed shard cells by shard key. A missing file is a fresh run; a
// file with a mismatched fingerprint is an error.
func loadCheckpoint(path string, spec CampaignSpec) (map[string]fault.Cell, error) {
	done := map[string]fault.Cell{}
	if path == "" {
		return done, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return done, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: opening checkpoint: %w", err)
	}
	defer f.Close()

	sc := obs.NewLineScanner(f)
	if !sc.Scan() {
		if serr := sc.Err(); serr != nil {
			return nil, fmt.Errorf("fleet: reading checkpoint header: %w", serr)
		}
		return done, nil // empty file: treat as fresh
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("fleet: corrupt checkpoint header: %w", err)
	}
	if hdr.Magic != checkpointMagic {
		return nil, fmt.Errorf("fleet: checkpoint magic %q, want %q — refusing to resume from an incompatible file", hdr.Magic, checkpointMagic)
	}
	if hdr.Fingerprint != spec.Fingerprint() {
		return nil, fmt.Errorf("fleet: checkpoint is for campaign %q, this run is %q — delete %s or match the configuration",
			hdr.Fingerprint, spec.Fingerprint(), path)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec checkpointLine
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// A torn tail cannot happen through atomicio; a corrupt
			// interior line means the file is not ours to trust.
			return nil, fmt.Errorf("fleet: corrupt checkpoint line: %w", err)
		}
		done[rec.Shard] = rec.Cell
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: reading checkpoint: %w", err)
	}
	return done, nil
}

// writeCheckpoint atomically and durably replaces the checkpoint with
// the given completed set. Shard keys are written sorted so the file
// is a deterministic function of its contents.
func writeCheckpoint(path string, spec CampaignSpec, done map[string]fault.Cell) error {
	if path == "" {
		return nil
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagic, Fingerprint: spec.Fingerprint()}); err != nil {
		return fmt.Errorf("fleet: encoding checkpoint header: %w", err)
	}
	keys := make([]string, 0, len(done))
	for k := range done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := enc.Encode(checkpointLine{Shard: k, Cell: done[k]}); err != nil {
			return fmt.Errorf("fleet: encoding checkpoint line: %w", err)
		}
	}
	if err := atomicio.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	return nil
}
