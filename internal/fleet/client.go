package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ultrascalar/internal/serve"
)

// Client speaks the usserve job API on behalf of the coordinator. All
// failures that carry an HTTP status come back as *HTTPError, so the
// retry layer can separate backpressure (503 + Retry-After: honor the
// hint, the worker is healthy) from worker trouble (transport errors,
// unexpected 5xx: count toward the worker's circuit breaker).

// HTTPError is a job-API rejection: the status, the serve error
// taxonomy kind, and any Retry-After hint the worker attached.
type HTTPError struct {
	Status     int
	Kind       string
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.Kind != "" {
		return fmt.Sprintf("worker returned %d (%s): %s", e.Status, e.Kind, e.Msg)
	}
	return fmt.Sprintf("worker returned %d: %s", e.Status, e.Msg)
}

// Backpressure reports whether the rejection is flow control from a
// healthy worker — shed, draining, or a tripped config breaker — as
// opposed to evidence the worker itself is unwell.
func (e *HTTPError) Backpressure() bool {
	switch e.Kind {
	case serve.KindShed, serve.KindDraining, serve.KindBreakerOpen:
		return true
	}
	return false
}

// Client is one worker's job-API handle.
type Client struct {
	// Base is the worker's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (nil = a client with a 10s request timeout;
	// the coordinator's lease machinery provides the real deadlines).
	HTTP *http.Client
}

// NewClient builds a worker client for the given base URL.
func NewClient(base string) *Client {
	return &Client{
		Base: strings.TrimRight(base, "/"),
		HTTP: &http.Client{Timeout: 10 * time.Second},
	}
}

// errorBody mirrors the serve rejection JSON shape.
type errorBody struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// do issues a request and decodes either the success payload into out
// or a rejection into *HTTPError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleet: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return fmt.Errorf("fleet: building %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err // transport error: breaker-countable
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("fleet: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		herr := &HTTPError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Kind != "" {
			herr.Kind, herr.Msg = eb.Error.Kind, eb.Error.Message
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				herr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return herr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("fleet: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Submit posts a job and returns the accepted record.
func (c *Client) Submit(ctx context.Context, req serve.JobRequest) (serve.Job, error) {
	var job serve.Job
	err := c.do(ctx, http.MethodPost, "/jobs", req, &job)
	return job, err
}

// Job fetches one job's full record (state, error, report, cells).
func (c *Client) Job(ctx context.Context, id string) (serve.Job, error) {
	var job serve.Job
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &job)
	return job, err
}

// Progress fetches one job's shard-completion view — the coordinator's
// heartbeat probe.
func (c *Client) Progress(ctx context.Context, id string) (serve.Progress, error) {
	var p serve.Progress
	err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/progress", nil, &p)
	return p, err
}

// Cancel asks the worker to stop a job. Used to reap hedge losers and
// expired leases; a 409 (already terminal) is success for our purposes
// and is returned as-is for the caller to ignore.
func (c *Client) Cancel(ctx context.Context, id string) (serve.Job, error) {
	var job serve.Job
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &job)
	return job, err
}

// Healthz probes worker liveness: the process is up and serving HTTP.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready probes worker readiness: alive AND accepting new jobs. A
// draining worker fails this while still answering Healthz, so
// dispatchers and chaos harnesses gate on Ready, not Healthz.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// IsBreakerFailure classifies an error from this client for the
// per-worker circuit breaker: transport errors (connection refused,
// reset, timeout — the worker or its network is gone) and non-
// backpressure 5xx responses count; backpressure and 4xx rejections do
// not — they come from a worker that is alive and reasoning.
func IsBreakerFailure(err error) bool {
	if err == nil {
		return false
	}
	if herr, ok := err.(*HTTPError); ok {
		return herr.Status >= 500 && !herr.Backpressure()
	}
	return true
}
