// Package ultra2 defines the Ultrascalar II processor (paper Sections
// 4-5): a linear (non-wrapping) batch of n execution stations over a
// grid-like datapath that routes only argument and result registers,
// reimplementable as a mesh of trees for logarithmic gate delay.
//
// Characteristics (paper Figure 11):
//
//	linear datapath:  gate delay Θ(n+L),        side Θ(n+L)
//	mesh of trees:    gate delay Θ(log(n+L)),   side Θ((n+L)·log(n+L))
//	mixed strategy:   near-log gate delay at the linear side (Section 5)
//
// The batch does not wrap around: "stations idle waiting for everyone to
// finish before refilling" — engine granularity n.
package ultra2

import (
	"ultrascalar/internal/core"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// Name identifies the architecture in reports.
const Name = "Ultrascalar II"

// EngineConfig returns the cycle-engine configuration of an n-station
// Ultrascalar II: whole-batch refill granularity.
func EngineConfig(n int) core.Config {
	return core.Config{Window: n, Granularity: n}
}

// Run executes prog on an n-station Ultrascalar II with otherwise default
// parameters.
func Run(prog []isa.Inst, mem *memory.Flat, n int) (*core.Result, error) {
	return core.Run(prog, mem, EngineConfig(n))
}

// Model returns the physical model in the chosen datapath mode.
func Model(n, l, w int, m memory.MFunc, t vlsi.Tech, mode vlsi.Ultra2Mode) (*vlsi.Model, error) {
	return vlsi.Ultra2Model(n, l, w, m, t, mode)
}
