package ultra2

import (
	"testing"

	"ultrascalar/internal/core"
	"ultrascalar/internal/fault"

	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

func TestRunMatchesGolden(t *testing.T) {
	w := workload.GCD(1071, 462)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if got.Regs[1] != want.Regs[1] {
		t.Errorf("r1 = %d, want %d", got.Regs[1], want.Regs[1])
	}
}

func TestBatchSlowerThanRing(t *testing.T) {
	// Section 4: the Ultrascalar II "is less efficient than the
	// Ultrascalar I because its datapath does not wrap around."
	w := workload.DotProduct(40)
	u2, err := Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := ultra1.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if u2.Stats.Cycles <= u1.Stats.Cycles {
		t.Errorf("UltraII %d cycles should exceed UltraI %d", u2.Stats.Cycles, u1.Stats.Cycles)
	}
}

func TestEngineConfig(t *testing.T) {
	cfg := EngineConfig(32)
	if cfg.Window != 32 || cfg.Granularity != 32 {
		t.Errorf("config %+v, want window 32 granularity 32", cfg)
	}
}

func TestModelModes(t *testing.T) {
	for _, mode := range []vlsi.Ultra2Mode{vlsi.Ultra2Linear, vlsi.Ultra2Tree, vlsi.Ultra2Mixed} {
		md, err := Model(32, 32, 32, memory.MConst(1), vlsi.Tech035(), mode)
		if err != nil {
			t.Fatal(err)
		}
		if md.GateDelay <= 0 || md.AreaL2() <= 0 {
			t.Errorf("mode %v: bad model", mode)
		}
	}
	if Name == "" {
		t.Error("name empty")
	}
}

// TestFaultRecovery: faults injected under batch refill (g=n, the
// Ultrascalar II's whole-window reuse — recovery replays into partially
// drained groups) are detected by the golden checker and repaired, so
// the architectural result still matches the reference run.
func TestFaultRecovery(t *testing.T) {
	w := workload.Fib(12)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for seed := int64(1); seed <= 20; seed++ {
		plan := fault.NewPlan(seed, fault.GenParams{
			Window: 16, NumRegs: 32, MaxCycle: 150, N: 3,
		})
		var log fault.Log
		cfg := EngineConfig(16)
		cfg.FaultPlan, cfg.FaultDetect, cfg.FaultLog = plan, fault.DetectGolden, &log
		got, err := core.Run(w.Prog, w.Mem(), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for r := range want.Regs {
			if got.Regs[r] != want.Regs[r] {
				t.Fatalf("seed %d: r%d = %d, want %d", seed, r, got.Regs[r], want.Regs[r])
			}
		}
		if !got.Mem.Equal(want.Mem) {
			t.Fatalf("seed %d: memory diverged from golden", seed)
		}
		if log.Detected != log.Recovered {
			t.Fatalf("seed %d: detected %d, recovered %d", seed, log.Detected, log.Recovered)
		}
		detected += log.Detected
	}
	if detected == 0 {
		t.Error("no fault was ever detected; injection is not reaching live state")
	}
}
