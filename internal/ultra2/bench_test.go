package ultra2

import (
	"fmt"
	"testing"

	"ultrascalar/internal/workload"
)

// BenchmarkRun measures the Ultrascalar II configuration — whole-batch
// refill, the paper's non-wrapping grid — through this package's entry
// point across batch sizes, reporting ns per simulated cycle. Batch
// refill retires in bursts, so this configuration leans hardest on the
// engine's word-wise drain accounting (one popcount and one range clear
// per freed batch).
func BenchmarkRun(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ws := workload.Kernels()
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i%len(ws)]
				res, err := Run(w.Prog, w.Mem(), n)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			if cycles > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
			}
		})
	}
}
