package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary text to the assembler: it must never panic,
// and whatever it accepts must disassemble and survive a second assembly
// of structurally valid lines.
func FuzzAssemble(f *testing.F) {
	f.Add("add r1, r2, r3\nhalt")
	f.Add("loop: addi r1, r1, -1\nbne r1, r0, loop\nhalt")
	f.Add(".data 100\n.word 1, 2, 3\nlw r1, (r0)\nhalt")
	f.Add("li32 r7, 0xDEADBEEF\nj done\ndone: halt")
	f.Add("lw r1, -4(r2)\nsw r1, (r2)")
	f.Add("x:\ny: nop")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		text := Disassemble(p.Insts)
		// Disassembly of an accepted program is non-empty iff there are
		// instructions and never contains unprintable mnemonics.
		if len(p.Insts) > 0 && !strings.Contains(text, ":") {
			t.Fatalf("disassembly lost instructions: %q", text)
		}
		for _, in := range p.Insts {
			if err := in.Validate(); err != nil {
				t.Fatalf("assembler emitted invalid instruction: %v", err)
			}
		}
	})
}
