package asm

import (
	"strings"
	"testing"

	"ultrascalar/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; the paper's Figure 1 instruction sequence
		div r3, r1, r2
		add r0, r0, r3
		add r1, r5, r6
		add r1, r0, r1
		mul r2, r5, r6
		add r2, r2, r4
		sub r0, r5, r6
		add r4, r0, r7
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 9 {
		t.Fatalf("got %d instructions, want 9", len(p.Insts))
	}
	want := isa.Inst{Op: isa.OpDiv, Rd: 3, Rs1: 1, Rs2: 2}
	if p.Insts[0] != want {
		t.Errorf("inst 0 = %v, want %v", p.Insts[0], want)
	}
	if p.Insts[8].Op != isa.OpHalt {
		t.Errorf("inst 8 = %v, want halt", p.Insts[8])
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
		li r1, 10
		li r2, 0
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bne r1, r0, loop
		j done
		add r2, r2, r2  ; skipped
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["loop"] != 2 {
		t.Errorf("loop label = %d, want 2", p.Labels["loop"])
	}
	bne := p.Insts[4]
	if bne.Op != isa.OpBne || int(bne.Imm) != 2-4-1 {
		t.Errorf("bne = %v, want imm %d", bne, 2-4-1)
	}
	j := p.Insts[5]
	if j.Op != isa.OpBeq || j.Rs1 != 0 || j.Rs2 != 0 || int(j.Imm) != 7-5-1 {
		t.Errorf("j = %v", j)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	p, err := Assemble(`
		lw r1, 8(r2)
		lw r3, (r4)
		sw r5, -4(r6)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := p.Insts[0]; in.Op != isa.OpLw || in.Rd != 1 || in.Rs1 != 2 || in.Imm != 8 {
		t.Errorf("lw = %v", in)
	}
	if in := p.Insts[1]; in.Imm != 0 || in.Rs1 != 4 {
		t.Errorf("lw no-offset = %v", in)
	}
	if in := p.Insts[2]; in.Op != isa.OpSw || in.Rs2 != 5 || in.Rs1 != 6 || in.Imm != -4 {
		t.Errorf("sw = %v", in)
	}
}

func TestAssembleLi32(t *testing.T) {
	p, err := Assemble("li32 r7, 0xDEADBEEF\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 3 {
		t.Fatalf("li32 should expand to 2 instructions, got %d", len(p.Insts)-1)
	}
	// Execute the two instructions through ALUOp to check the value.
	v := isa.ALUOp(p.Insts[0], 0, 0)
	v = isa.ALUOp(p.Insts[1], v, 0)
	if v != 0xDEADBEEF {
		t.Errorf("li32 materialized %#x, want 0xDEADBEEF", v)
	}
}

func TestAssemblePseudoMov(t *testing.T) {
	p, err := Assemble("mov r1, r2")
	if err != nil {
		t.Fatal(err)
	}
	want := isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 2, Imm: 0}
	if p.Insts[0] != want {
		t.Errorf("mov = %v, want %v", p.Insts[0], want)
	}
}

func TestAssembleJalJalr(t *testing.T) {
	p, err := Assemble(`
		jal r31, func
		halt
	func:
		jalr r0, r31, 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := p.Insts[0]; in.Op != isa.OpJal || in.Rd != 31 || in.Imm != 1 {
		t.Errorf("jal = %v", in)
	}
	if in := p.Insts[2]; in.Op != isa.OpJalr || in.Rs1 != 31 {
		t.Errorf("jalr = %v", in)
	}
	// jalr with explicit 2-operand form
	p2, err := Assemble("jalr r0, r5")
	if err != nil {
		t.Fatal(err)
	}
	if in := p2.Insts[0]; in.Rs1 != 5 || in.Imm != 0 {
		t.Errorf("jalr 2-op = %v", in)
	}
}

func TestAssembleComments(t *testing.T) {
	srcs := []string{
		"add r1, r2, r3 ; semicolon",
		"add r1, r2, r3 # hash",
		"add r1, r2, r3 // slashes",
	}
	for _, src := range srcs {
		p, err := Assemble(src)
		if err != nil || len(p.Insts) != 1 {
			t.Errorf("comment form %q failed: %v", src, err)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2, r3",
		"add r1, r2",
		"add r1, r2, r99",
		"addi r1, r2, 99999",
		"beq r1, r2, nowhere",
		"lw r1, 8[r2]",
		"halt r1",
		"dup:\ndup:\nhalt",
		"li r1, 9999999",
		"j",
		"mov r1",
		"li32 r1",
		"add r1, r2, ",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
	// Errors carry line numbers.
	_, err := Assemble("nop\nnop\nbogus x")
	var ae *Error
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q should mention line 3", err)
	}
	_ = ae
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

func TestDisassemble(t *testing.T) {
	p := MustAssemble(`
	loop:
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	text := Disassemble(p.Insts)
	if !strings.Contains(text, "addi r1, r1, -1") {
		t.Errorf("disassembly missing addi: %s", text)
	}
	if !strings.Contains(text, "-> 0") {
		t.Errorf("disassembly missing branch target: %s", text)
	}
}

// TestRoundTripThroughEncoding assembles, encodes to words, decodes, and
// checks instruction-level equality.
func TestRoundTripThroughEncoding(t *testing.T) {
	p := MustAssemble(`
		li r1, 100
		li32 r2, 0x12345678
	loop:
		sub r1, r1, r2
		blt r0, r1, loop
		sw r1, 4(r2)
		lw r3, (r1)
		jal r31, loop
		halt
	`)
	words := isa.EncodeProgram(p.Insts)
	back, err := isa.DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Insts {
		if back[i] != p.Insts[i] {
			t.Errorf("inst %d: %v != %v", i, back[i], p.Insts[i])
		}
	}
}

func TestPseudoOps(t *testing.T) {
	p, err := Assemble(`
		inc r1
		dec r2
		not r3, r4
		neg r5, r6
		ble r1, r2, out
		bgt r1, r2, out
		call out
	out:
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Inst{
		{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: 1},
		{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: -1},
		{Op: isa.OpXori, Rd: 3, Rs1: 4, Imm: -1},
		{Op: isa.OpXori, Rd: 5, Rs1: 6, Imm: -1},
		{Op: isa.OpAddi, Rd: 5, Rs1: 5, Imm: 1},
		{Op: isa.OpBge, Rs1: 2, Rs2: 1, Imm: 2}, // ble swaps
		{Op: isa.OpBlt, Rs1: 2, Rs2: 1, Imm: 1}, // bgt swaps
		{Op: isa.OpJal, Rd: 31, Imm: 0},
		{Op: isa.OpJalr, Rd: 30, Rs1: 31}, // ret discards the link into scratch r30
	}
	if len(p.Insts) != len(want) {
		t.Fatalf("got %d instructions, want %d: %v", len(p.Insts), len(want), p.Insts)
	}
	for i := range want {
		if p.Insts[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, p.Insts[i], want[i])
		}
	}
	// neg semantics: two's complement.
	v := isa.ALUOp(want[3], 10, 0)
	v = isa.ALUOp(want[4], v, 0)
	if int32(v) != -10 {
		t.Errorf("neg computed %d, want -10", int32(v))
	}
	for _, bad := range []string{"inc", "dec r1, r2", "not r1", "neg r1",
		"ble r1, r2", "call", "ret r1", "call 1, 2"} {
		if _, err := Assemble(bad); err == nil {
			t.Errorf("Assemble(%q) should fail", bad)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble(`
		.data 100
		.word 7, 8, 9
		.zero 2
		.word 0x2A
		lw r1, 0(r0)   ; program part
		halt
		.data 500
		.word -1
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[isa.Word]isa.Word{100: 7, 101: 8, 102: 9, 105: 0x2A, 500: ^isa.Word(0)}
	if len(p.Data) != len(want) {
		t.Fatalf("data image %v, want %v", p.Data, want)
	}
	for a, v := range want {
		if p.Data[a] != v {
			t.Errorf("data[%d] = %d, want %d", a, p.Data[a], v)
		}
	}
	if len(p.Insts) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Insts))
	}
}

func TestDataDirectiveErrors(t *testing.T) {
	cases := []string{
		".word 5",           // .word before .data
		".zero 5",           // .zero before .data
		".data",             // missing address
		".data 1, 2",        // too many
		".data 10\n.word",   // missing value
		".data 10\n.word x", // bad value
		".data 10\n.zero -1",
		".bogus 1",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestInitMem(t *testing.T) {
	p := MustAssemble(".data 10\n.word 1, 2\nhalt")
	store := map[isa.Word]isa.Word{}
	p.InitMem(storeFunc(func(a, v isa.Word) { store[a] = v }))
	if store[10] != 1 || store[11] != 2 {
		t.Errorf("InitMem wrote %v", store)
	}
}

type storeFunc func(a, v isa.Word)

func (f storeFunc) Store(a, v isa.Word) { f(a, v) }

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("start: nop\nj start")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["start"] != 0 || len(p.Insts) != 2 {
		t.Errorf("labels %v insts %d", p.Labels, len(p.Insts))
	}
}
