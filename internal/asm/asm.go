// Package asm implements a two-pass assembler and a disassembler for the
// ISA in internal/isa.
//
// Syntax, one instruction or directive per line:
//
//	; comment, or # comment, or // comment
//	label:            ; labels may share a line with an instruction
//	    add  r1, r2, r3
//	    addi r1, r2, -4
//	    lw   r1, 8(r2)
//	    sw   r1, 8(r2)
//	    li   r1, 1000      ; 21-bit signed immediate
//	    li32 r1, 0xDEADBEEF ; pseudo: expands to li+lui or lui sequence
//	    beq  r1, r2, label
//	    j    label          ; pseudo: beq r0, r0, label (always taken)
//	    jal  r31, label
//	    mov  r1, r2         ; pseudo: addi r1, r2, 0
//	    nop
//	    halt
//
// Numbers are decimal or 0x-prefixed hex, optionally negative. Registers
// are r0..r31.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"ultrascalar/internal/isa"
)

// Program is an assembled program: the instruction list plus the symbol
// table (label -> instruction index) and any initial data-memory image
// declared with .data/.word directives.
type Program struct {
	Insts  []isa.Inst
	Labels map[string]int
	// Source holds, for each instruction, the 1-based source line it came
	// from, for diagnostics.
	Source []int
	// Data holds the initial data-memory image: word address -> value,
	// built by the .data (set the fill address) and .word (emit values)
	// directives.
	Data map[isa.Word]isa.Word
}

// InitMem copies the program's data image into mem.
func (p *Program) InitMem(mem interface{ Store(addr, val isa.Word) }) {
	for a, v := range p.Data {
		mem.Store(a, v)
	}
}

// Error describes an assembly error with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// item is an unresolved instruction from pass one.
type item struct {
	line  int
	inst  isa.Inst
	label string // pending label for the immediate field, if any
	pcRel bool   // label resolves PC-relative (branches, jal) vs absolute
	pc    int
}

// Assemble translates assembler source into a Program.
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: make(map[string]int), Data: make(map[isa.Word]isa.Word)}
	var items []item
	dataPtr := isa.Word(0)
	dataSet := false

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// Peel off any leading "label:" prefixes.
		for {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" {
				line = ""
				break
			}
			colon := strings.Index(trimmed, ":")
			if colon < 0 {
				line = trimmed
				break
			}
			head := strings.TrimSpace(trimmed[:colon])
			if !isIdent(head) {
				line = trimmed
				break
			}
			if _, dup := p.Labels[head]; dup {
				return nil, errf(lineNo+1, "duplicate label %q", head)
			}
			p.Labels[head] = len(items)
			line = trimmed[colon+1:]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			var err error
			dataPtr, dataSet, err = directive(lineNo+1, line, p, dataPtr, dataSet)
			if err != nil {
				return nil, err
			}
			continue
		}
		its, err := parseLine(lineNo+1, line, len(items))
		if err != nil {
			return nil, err
		}
		items = append(items, its...)
	}

	// Pass two: resolve labels.
	for _, it := range items {
		in := it.inst
		if it.label != "" {
			target, ok := p.Labels[it.label]
			if !ok {
				return nil, errf(it.line, "undefined label %q", it.label)
			}
			if it.pcRel {
				in.Imm = int32(target - it.pc - 1)
			} else {
				in.Imm = int32(target)
			}
		}
		if err := in.Validate(); err != nil {
			return nil, errf(it.line, "%v", err)
		}
		p.Insts = append(p.Insts, in)
		p.Source = append(p.Source, it.line)
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for tests and builtin
// kernels whose sources are compile-time constants.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic("asm: " + err.Error())
	}
	return p
}

// directive processes one dot-directive line:
//
//	.data <addr>         set the data fill pointer
//	.word <v> [, <v>...] emit words at the fill pointer
//	.zero <count>        advance the fill pointer over zeroed words
func directive(line int, text string, p *Program, ptr isa.Word, set bool) (isa.Word, bool, error) {
	name, rest, _ := strings.Cut(text, " ")
	ops, err := splitOperands(rest)
	if err != nil {
		return ptr, set, errf(line, "%v", err)
	}
	switch name {
	case ".data":
		if len(ops) != 1 {
			return ptr, set, errf(line, ".data needs one address")
		}
		v, err := parseImm(ops[0])
		if err != nil {
			return ptr, set, errf(line, "%v", err)
		}
		return isa.Word(v), true, nil
	case ".word":
		if !set {
			return ptr, set, errf(line, ".word before .data")
		}
		if len(ops) == 0 {
			return ptr, set, errf(line, ".word needs at least one value")
		}
		for _, op := range ops {
			v, err := parseImm(op)
			if err != nil {
				return ptr, set, errf(line, "%v", err)
			}
			p.Data[ptr] = isa.Word(v)
			ptr++
		}
		return ptr, set, nil
	case ".zero":
		if !set {
			return ptr, set, errf(line, ".zero before .data")
		}
		if len(ops) != 1 {
			return ptr, set, errf(line, ".zero needs a count")
		}
		v, err := parseImm(ops[0])
		if err != nil || v < 0 {
			return ptr, set, errf(line, "bad count %q", ops[0])
		}
		return ptr + isa.Word(v), set, nil
	default:
		return ptr, set, errf(line, "unknown directive %q", name)
	}
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

var mnemonics = map[string]isa.Op{}

func init() {
	for o := isa.Op(0); o.Valid(); o++ {
		mnemonics[o.String()] = o
	}
}

// parseLine parses one instruction (possibly expanding a pseudo-op into
// several) at instruction address pc.
func parseLine(line int, text string, pc int) ([]item, error) {
	mn, rest, _ := strings.Cut(text, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	ops, err := splitOperands(rest)
	if err != nil {
		return nil, errf(line, "%v", err)
	}

	switch mn {
	case "mov": // addi rd, rs, 0
		if len(ops) != 2 {
			return nil, errf(line, "mov needs 2 operands")
		}
		rd, err1 := parseReg(ops[0])
		rs, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, errf(line, "mov: bad register")
		}
		return []item{{line: line, pc: pc, inst: isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs}}}, nil
	case "inc", "dec": // addi rd, rd, ±1
		if len(ops) != 1 {
			return nil, errf(line, "%s needs 1 operand", mn)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		imm := int32(1)
		if mn == "dec" {
			imm = -1
		}
		return []item{{line: line, pc: pc, inst: isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rd, Imm: imm}}}, nil
	case "not": // xori rd, rs, -1
		if len(ops) != 2 {
			return nil, errf(line, "not needs 2 operands")
		}
		rd, err1 := parseReg(ops[0])
		rs, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, errf(line, "not: bad register")
		}
		return []item{{line: line, pc: pc, inst: isa.Inst{Op: isa.OpXori, Rd: rd, Rs1: rs, Imm: -1}}}, nil
	case "neg": // sub rd, r0-free form: rd = 0 - rs needs a zero... use sub rd, rX? No zero reg:
		// neg rd, rs expands to: not rd, rs; inc rd (two's complement).
		if len(ops) != 2 {
			return nil, errf(line, "neg needs 2 operands")
		}
		rd, err1 := parseReg(ops[0])
		rs, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, errf(line, "neg: bad register")
		}
		return []item{
			{line: line, pc: pc, inst: isa.Inst{Op: isa.OpXori, Rd: rd, Rs1: rs, Imm: -1}},
			{line: line, pc: pc + 1, inst: isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rd, Imm: 1}},
		}, nil
	case "ble", "bgt": // swap operands of bge/blt
		if len(ops) != 3 {
			return nil, errf(line, "%s needs 3 operands", mn)
		}
		r1, err1 := parseReg(ops[0])
		r2, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, errf(line, "%s: bad register", mn)
		}
		op := isa.OpBge
		if mn == "bgt" {
			op = isa.OpBlt
		}
		it := item{line: line, pc: pc, inst: isa.Inst{Op: op, Rs1: r2, Rs2: r1}}
		if err := setTarget(&it, ops[2], true); err != nil {
			return nil, errf(line, "%v", err)
		}
		return []item{it}, nil
	case "call": // jal r31, target
		if len(ops) != 1 {
			return nil, errf(line, "call needs 1 operand")
		}
		it := item{line: line, pc: pc, inst: isa.Inst{Op: isa.OpJal, Rd: 31}}
		if err := setTarget(&it, ops[0], true); err != nil {
			return nil, errf(line, "%v", err)
		}
		return []item{it}, nil
	case "ret": // jalr r30, r31, 0
		// JALR must write a link register (every jump writes one); r0 is
		// NOT hardwired to zero in this ISA, so the discard target is the
		// designated scratch register r30, keeping r0 usable as a
		// software zero.
		if len(ops) != 0 {
			return nil, errf(line, "ret takes no operands")
		}
		return []item{{line: line, pc: pc, inst: isa.Inst{Op: isa.OpJalr, Rd: 30, Rs1: 31}}}, nil
	case "j": // beq r0, r0, label (always taken: r0 == r0)
		if len(ops) != 1 {
			return nil, errf(line, "j needs 1 operand")
		}
		it := item{line: line, pc: pc, inst: isa.Inst{Op: isa.OpBeq}}
		if err := setTarget(&it, ops[0], true); err != nil {
			return nil, errf(line, "%v", err)
		}
		return []item{it}, nil
	case "li32": // materialize a full 32-bit constant
		if len(ops) != 2 {
			return nil, errf(line, "li32 needs 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		v, err := parseImm(ops[1])
		if err != nil {
			return nil, errf(line, "%v", err)
		}
		w := uint32(v)
		lo := int32(w & 0xFFFF)
		// The high half is stored in the signed 16-bit immediate field;
		// sign extension is harmless because LUI shifts it left by 16.
		hi := int32(int16(w >> 16))
		// li sign-extends 21 bits; emit li of the low half zero-extended
		// (fits in 21 bits since < 2^16), then patch the high half.
		return []item{
			{line: line, pc: pc, inst: isa.Inst{Op: isa.OpLi, Rd: rd, Imm: lo}},
			{line: line, pc: pc + 1, inst: isa.Inst{Op: isa.OpLui, Rd: rd, Rs1: rd, Imm: hi}},
		}, nil
	}

	op, ok := mnemonics[mn]
	if !ok {
		return nil, errf(line, "unknown mnemonic %q", mn)
	}
	it := item{line: line, pc: pc, inst: isa.Inst{Op: op}}
	in := &it.inst

	switch isa.FormatOf(op) {
	case isa.FormatR:
		if len(ops) != 3 {
			return nil, errf(line, "%s needs 3 register operands", mn)
		}
		var errs [3]error
		in.Rd, errs[0] = parseReg(ops[0])
		in.Rs1, errs[1] = parseReg(ops[1])
		in.Rs2, errs[2] = parseReg(ops[2])
		for _, e := range errs {
			if e != nil {
				return nil, errf(line, "%v", e)
			}
		}
	case isa.FormatI:
		if op == isa.OpLw {
			if len(ops) != 2 {
				return nil, errf(line, "lw needs 2 operands")
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return nil, errf(line, "%v", err)
			}
			imm, rs, err := parseMemOperand(ops[1])
			if err != nil {
				return nil, errf(line, "%v", err)
			}
			in.Rd, in.Rs1, in.Imm = rd, rs, imm
			break
		}
		if op == isa.OpJalr {
			if len(ops) != 3 && len(ops) != 2 {
				return nil, errf(line, "jalr needs rd, rs1[, imm]")
			}
			var err error
			if in.Rd, err = parseReg(ops[0]); err != nil {
				return nil, errf(line, "%v", err)
			}
			if in.Rs1, err = parseReg(ops[1]); err != nil {
				return nil, errf(line, "%v", err)
			}
			if len(ops) == 3 {
				if in.Imm, err = parseImm(ops[2]); err != nil {
					return nil, errf(line, "%v", err)
				}
			}
			break
		}
		if len(ops) != 3 {
			return nil, errf(line, "%s needs 3 operands", mn)
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return nil, errf(line, "%v", err)
		}
		if in.Rs1, err = parseReg(ops[1]); err != nil {
			return nil, errf(line, "%v", err)
		}
		if in.Imm, err = parseImm(ops[2]); err != nil {
			return nil, errf(line, "%v", err)
		}
	case isa.FormatB:
		if op == isa.OpSw {
			if len(ops) != 2 {
				return nil, errf(line, "sw needs 2 operands")
			}
			rs2, err := parseReg(ops[0])
			if err != nil {
				return nil, errf(line, "%v", err)
			}
			imm, rs1, err := parseMemOperand(ops[1])
			if err != nil {
				return nil, errf(line, "%v", err)
			}
			in.Rs1, in.Rs2, in.Imm = rs1, rs2, imm
			break
		}
		if len(ops) != 3 {
			return nil, errf(line, "%s needs 3 operands", mn)
		}
		var err error
		if in.Rs1, err = parseReg(ops[0]); err != nil {
			return nil, errf(line, "%v", err)
		}
		if in.Rs2, err = parseReg(ops[1]); err != nil {
			return nil, errf(line, "%v", err)
		}
		if err := setTarget(&it, ops[2], true); err != nil {
			return nil, errf(line, "%v", err)
		}
	case isa.FormatJ:
		if len(ops) != 2 {
			return nil, errf(line, "%s needs 2 operands", mn)
		}
		var err error
		if in.Rd, err = parseReg(ops[0]); err != nil {
			return nil, errf(line, "%v", err)
		}
		if err := setTarget(&it, ops[1], op == isa.OpJal); err != nil {
			return nil, errf(line, "%v", err)
		}
	case isa.FormatS:
		if len(ops) != 0 {
			return nil, errf(line, "%s takes no operands", mn)
		}
	}
	return []item{it}, nil
}

// setTarget records an immediate operand that may be a label.
func setTarget(it *item, s string, pcRel bool) error {
	if v, err := parseImm(s); err == nil {
		it.inst.Imm = v
		return nil
	}
	if !isIdent(s) {
		return fmt.Errorf("bad target %q", s)
	}
	it.label = s
	it.pcRel = pcRel
	return nil
}

func splitOperands(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return nil, fmt.Errorf("empty operand")
		}
	}
	return parts, nil
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.MaxRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(v), nil
}

// parseMemOperand parses "imm(rN)" or "(rN)".
func parseMemOperand(s string) (imm int32, reg uint8, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	if open > 0 {
		if imm, err = parseImm(s[:open]); err != nil {
			return 0, 0, err
		}
	}
	reg, err = parseReg(s[open+1 : len(s)-1])
	return imm, reg, err
}

// Disassemble renders a program as assembler source, one instruction per
// line, with label comments for branch targets.
func Disassemble(prog []isa.Inst) string {
	var b strings.Builder
	for pc, in := range prog {
		fmt.Fprintf(&b, "%4d: %s", pc, in)
		if in.IsBranch() || in.Op == isa.OpJal {
			fmt.Fprintf(&b, "    ; -> %d", pc+1+int(in.Imm))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
