package gatesim

import "ultrascalar/internal/circuit"

// memArbiter wraps the gate-level fat-tree arbiter netlist for per-cycle
// memory-access arbitration: per-level link capacities min(2^h, M), age
// tags giving the oldest requests priority.
type memArbiter struct {
	c      *circuit.Circuit
	layout circuit.FatTreeArbiterLayout
	n      int
}

func newMemArbiter(n, m int) *memArbiter {
	// Round the station count up to a power of two for the tree.
	size := 1
	levels := 0
	for size < n {
		size *= 2
		levels++
	}
	if levels == 0 {
		size, levels = 2, 1 // a degenerate 1-station tree still needs a root
	}
	caps := make([]int, levels)
	for h := 1; h <= levels; h++ {
		c := 1 << h
		if c > m {
			c = m
		}
		caps[h-1] = c
	}
	tagW := 1
	for 1<<tagW < size {
		tagW++
	}
	tagW++ // headroom so ages 0..size-1 are distinct tags
	c, lay := circuit.FatTreeArbiter(size, tagW, caps)
	return &memArbiter{c: c, layout: lay, n: n}
}

// grants evaluates the arbiter netlist: reqs and ages are indexed by ring
// position; ages must be distinct for requesting positions.
func (a *memArbiter) grants(reqs []bool, ages []int) []bool {
	in := make([]bool, 0, a.layout.N*(1+a.layout.TagW))
	for i := 0; i < a.layout.N; i++ {
		req := i < len(reqs) && reqs[i]
		age := 0
		if i < len(ages) {
			age = ages[i]
		}
		in = append(in, req)
		for b := 0; b < a.layout.TagW; b++ {
			in = append(in, age>>uint(b)&1 == 1)
		}
	}
	out := a.c.Eval(in)
	grants := make([]bool, len(reqs))
	copy(grants, out[:len(reqs)])
	return grants
}
