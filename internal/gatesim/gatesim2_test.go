package gatesim

import (
	"testing"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/workload"
)

func crossCheck2(t *testing.T, w workload.Workload, cfg Config) *Result {
	t.Helper()
	if cfg.NumRegs == 0 {
		cfg.NumRegs = isa.NumRegs
	}
	if cfg.Width == 0 {
		cfg.Width = 32
	}
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{NumRegs: cfg.NumRegs})
	if err != nil {
		t.Fatalf("%s: golden: %v", w.Name, err)
	}
	got, err := RunUltra2(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("%s: gate-level UltraII: %v", w.Name, err)
	}
	for r := range want.Regs {
		if got.Regs[r] != want.Regs[r] {
			t.Errorf("%s: r%d = %d, golden %d", w.Name, r, got.Regs[r], want.Regs[r])
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Errorf("%s: memory mismatch: %s", w.Name, got.Mem.Diff(want.Mem))
	}
	if got.Retired != int64(want.Executed) {
		t.Errorf("%s: retired %d, golden %d", w.Name, got.Retired, want.Executed)
	}
	return got
}

// TestUltra2KernelsThroughGates runs the kernel suite through the actual
// Figure 7/8 grid netlists.
func TestUltra2KernelsThroughGates(t *testing.T) {
	for _, w := range workload.Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			crossCheck2(t, w, Config{Window: 4})
		})
	}
}

func TestUltra2WindowSizes(t *testing.T) {
	w := workload.Fib(10)
	for _, n := range []int{1, 2, 4, 6} {
		crossCheck2(t, w, Config{Window: n})
	}
}

// TestUltra2GateLevelILP: within a straight-line batch, independent
// instructions execute in parallel through the grid, so a batch of
// independent adds takes far fewer cycles than its instruction count.
func TestUltra2GateLevelILP(t *testing.T) {
	w := workload.Parallel(16, 8)
	res := crossCheck2(t, w, Config{Window: 8, NumRegs: 16, Width: 16})
	// 17 instructions in 3 batches; each batch of independent LIs takes
	// about 1 cycle of execution.
	if res.Cycles > 12 {
		t.Errorf("independent batch took %d cycles; grid should extract ILP", res.Cycles)
	}
}

// TestUltra2OutOfOrderWithinBatch reproduces the Figure 7 behaviour:
// a later instruction reading a register written by a finished station
// issues before an earlier unfinished one ("Note that the column ignores
// the earlier, unfinished write to R2 by Station 0; allowing Station 3 to
// issue out of order").
func TestUltra2OutOfOrderWithinBatch(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.OpLi, Rd: 1, Imm: 40},
		{Op: isa.OpLi, Rd: 2, Imm: 4},
		{Op: isa.OpDiv, Rd: 3, Rs1: 1, Rs2: 2}, // slow write of r3
		{Op: isa.OpAdd, Rd: 4, Rs1: 1, Rs2: 2}, // independent: issues immediately
		{Op: isa.OpAdd, Rd: 5, Rs1: 4, Rs2: 2}, // consumes the fast result
		{Op: isa.OpAdd, Rd: 6, Rs1: 3, Rs2: 2}, // waits for the divide
		{Op: isa.OpHalt},
	}
	w := workload.Workload{Name: "ooo", Prog: prog}
	res := crossCheck2(t, w, Config{Window: 8, NumRegs: 8, Width: 16})
	if res.Regs[3] != 10 || res.Regs[4] != 44 || res.Regs[5] != 48 || res.Regs[6] != 14 {
		t.Errorf("results wrong: %v", res.Regs)
	}
	// The batch's span is the divide (10) plus its consumer (1) plus
	// batch overheads — far less than a serialized 10+1+1+1+1.
	if res.Cycles > 16 {
		t.Errorf("batch took %d cycles; expected out-of-order overlap", res.Cycles)
	}
}

// TestUltra2SlowerThanUltra1Gates: the same loop on both gate-level
// simulators shows the batch-refill penalty at the gate level too.
func TestUltra2SlowerThanUltra1Gates(t *testing.T) {
	w := workload.VecSum(20)
	u2, err := RunUltra2(w.Prog, w.Mem(), Config{Window: 4, NumRegs: isa.NumRegs, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	u1, err := Run(w.Prog, w.Mem(), Config{Window: 4, NumRegs: isa.NumRegs, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	if u2.Cycles < u1.Cycles {
		t.Errorf("gate-level UltraII (%d cycles) should not beat UltraI (%d)", u2.Cycles, u1.Cycles)
	}
	// Check against the functional ultra1 package too, for reference.
	if _, err := ultra1.Run(w.Prog, w.Mem(), 4); err != nil {
		t.Fatal(err)
	}
}

// TestUltra2GateLevelMemoryArbitration: bandwidth throttling through the
// arbiter netlist on the batch datapath.
func TestUltra2GateLevelMemoryArbitration(t *testing.T) {
	w := workload.LoadBurst(20, 16)
	narrow := crossCheck2(t, w, Config{Window: 4, NumRegs: 16, MemBandwidth: 1})
	free := crossCheck2(t, w, Config{Window: 4, NumRegs: 16})
	if narrow.Cycles <= free.Cycles {
		t.Errorf("M=1 (%d cycles) should cost more than unlimited (%d)",
			narrow.Cycles, free.Cycles)
	}
}

func TestUltra2GatesErrors(t *testing.T) {
	if _, err := RunUltra2([]isa.Inst{{Op: isa.OpHalt}}, memory.NewFlat(), Config{Window: 0}); err == nil {
		t.Error("window 0 should fail")
	}
	off := []isa.Inst{{Op: isa.OpNop}}
	if _, err := RunUltra2(off, memory.NewFlat(), Config{Window: 4}); err == nil {
		t.Error("running off the end should fail")
	}
	bad := []isa.Inst{{Op: isa.OpAdd, Rd: 30, Rs1: 0, Rs2: 0}, {Op: isa.OpHalt}}
	if _, err := RunUltra2(bad, memory.NewFlat(), Config{Window: 2, NumRegs: 8, Width: 8}); err == nil {
		t.Error("register range should fail")
	}
}
