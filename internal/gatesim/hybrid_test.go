package gatesim

import (
	"testing"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/workload"
)

func crossCheckHybrid(t *testing.T, w workload.Workload, cfg HybridConfig) *Result {
	t.Helper()
	if cfg.NumRegs == 0 {
		cfg.NumRegs = isa.NumRegs
	}
	if cfg.Width == 0 {
		cfg.Width = 32
	}
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{NumRegs: cfg.NumRegs})
	if err != nil {
		t.Fatalf("%s: golden: %v", w.Name, err)
	}
	got, err := RunHybrid(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("%s: gate-level hybrid: %v", w.Name, err)
	}
	for r := range want.Regs {
		if got.Regs[r] != want.Regs[r] {
			t.Errorf("%s: r%d = %d, golden %d", w.Name, r, got.Regs[r], want.Regs[r])
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Errorf("%s: memory mismatch: %s", w.Name, got.Mem.Diff(want.Mem))
	}
	if got.Retired != int64(want.Executed) {
		t.Errorf("%s: retired %d, golden %d", w.Name, got.Retired, want.Executed)
	}
	return got
}

// TestHybridKernelsThroughGates runs the kernel suite through the
// gate-level hybrid: cluster grids + Figure 9 OR netlists + inter-cluster
// CSPP.
func TestHybridKernelsThroughGates(t *testing.T) {
	for _, w := range workload.Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			crossCheckHybrid(t, w, HybridConfig{Window: 8, Cluster: 4})
		})
	}
}

func TestHybridGeometries(t *testing.T) {
	w := workload.Fib(10)
	for _, g := range []struct{ n, c int }{{4, 2}, {8, 2}, {8, 4}, {8, 8}, {4, 1}} {
		crossCheckHybrid(t, w, HybridConfig{Window: g.n, Cluster: g.c})
	}
}

// TestHybridBetweenUltra1And2Gates: on straight-line code, the gate-level
// hybrid sits between per-station and whole-batch refill.
func TestHybridBetweenUltra1And2Gates(t *testing.T) {
	w := workload.MixedILP(60, 12, 6, 8)
	u1, err := Run(w.Prog, w.Mem(), Config{Window: 8, NumRegs: isa.NumRegs, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := RunHybrid(w.Prog, w.Mem(), HybridConfig{Window: 8, Cluster: 4, NumRegs: isa.NumRegs, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := RunUltra2(w.Prog, w.Mem(), Config{Window: 8, NumRegs: isa.NumRegs, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !(u1.Cycles <= hy.Cycles && hy.Cycles <= u2.Cycles) {
		t.Errorf("gate-level cycles should order UltraI (%d) <= hybrid (%d) <= UltraII (%d)",
			u1.Cycles, hy.Cycles, u2.Cycles)
	}
}

func TestHybridErrors(t *testing.T) {
	halt := []isa.Inst{{Op: isa.OpHalt}}
	if _, err := RunHybrid(halt, memory.NewFlat(), HybridConfig{Window: 8, Cluster: 3}); err == nil {
		t.Error("C not dividing n should fail")
	}
	if _, err := RunHybrid(halt, memory.NewFlat(), HybridConfig{Window: 0, Cluster: 1}); err == nil {
		t.Error("window 0 should fail")
	}
	off := []isa.Inst{{Op: isa.OpNop}}
	if _, err := RunHybrid(off, memory.NewFlat(), HybridConfig{Window: 4, Cluster: 2}); err == nil {
		t.Error("running off the end should fail")
	}
}

// TestClusterModifiedBitsNetlist exercises the Figure 9 OR circuit
// directly.
func TestClusterModifiedBitsNetlist(t *testing.T) {
	res, err := RunHybrid([]isa.Inst{
		{Op: isa.OpLi, Rd: 3, Imm: 7},
		{Op: isa.OpLi, Rd: 5, Imm: 9},
		{Op: isa.OpAdd, Rd: 6, Rs1: 3, Rs2: 5},
		{Op: isa.OpHalt},
	}, memory.NewFlat(), HybridConfig{Window: 4, Cluster: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[6] != 16 {
		t.Errorf("r6 = %d, want 16", res.Regs[6])
	}
}
