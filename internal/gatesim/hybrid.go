package gatesim

import (
	"fmt"

	"ultrascalar/internal/circuit"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// Gate-level hybrid Ultrascalar (paper Section 6, Figures 9-10): clusters
// of C stations, each an Ultrascalar II grid netlist extended with the
// Figure 9 modified-bit OR circuit, connected by the Ultrascalar I
// register CSPP trees at cluster granularity. "From the viewpoint of the
// Ultrascalar I part of the datapath, a single cluster behaves just like
// a subtree of [C] stations ... exactly one cluster is the oldest on any
// clock cycle, and the committed register file is kept in the oldest
// cluster."

// hybridCluster is one cluster of the ring.
type hybridCluster struct {
	valid    bool
	stations []*u2station // fixed capacity C; nil-padded after a flow stop
	count    int

	// incoming is the cluster's latched register file: per register, the
	// value and ready bit delivered by the inter-cluster CSPP.
	inVal   []isa.Word
	inReady []bool
	// modified holds the cluster's Figure 9 modified bits, computed once
	// per refill by evaluating the OR netlist over the loaded batch.
	modified []bool
}

// HybridConfig sizes the gate-level hybrid.
type HybridConfig struct {
	Window    int // total stations n
	Cluster   int // stations per cluster C
	NumRegs   int
	Width     int
	Lat       isa.Latencies
	MaxCycles int64
}

// RunHybrid executes prog on the gate-level hybrid. Fetch follows the
// architectural path (stalling at control transfers until they resolve);
// clusters refill as units once all their instructions and all earlier
// instructions have finished.
func RunHybrid(prog []isa.Inst, mem *memory.Flat, cfg HybridConfig) (*Result, error) {
	if cfg.Window < 1 || cfg.Cluster < 1 || cfg.Window%cfg.Cluster != 0 {
		return nil, fmt.Errorf("gatesim: bad hybrid geometry n=%d C=%d", cfg.Window, cfg.Cluster)
	}
	if cfg.NumRegs == 0 {
		cfg.NumRegs = 8
	}
	if cfg.Width == 0 {
		cfg.Width = 8
	}
	if cfg.Lat == (isa.Latencies{}) {
		cfg.Lat = isa.DefaultLatencies()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 20
	}
	nC, C, l, w := cfg.Window/cfg.Cluster, cfg.Cluster, cfg.NumRegs, cfg.Width
	mask := isa.Word(1)<<uint(w) - 1

	grid, layout := circuit.Ultra2Grid(C, l, w, true)
	interCSPP := circuit.RegisterCSPP(nC, w+1, true)
	modOR := circuit.HybridModifiedBits(C, l, true)

	ring := make([]*hybridCluster, nC)
	for i := range ring {
		ring[i] = &hybridCluster{
			stations: make([]*u2station, 0, C),
			inVal:    make([]isa.Word, l),
			inReady:  make([]bool, l),
		}
	}
	commit := make([]isa.Word, l)
	oldest := 0
	active := 0
	pc := 0
	fetchStalled := false
	var cycles, retired int64

	posOf := func(k int) int { return (oldest + k) % nC }

	// fill loads empty clusters in age order with up to C sequential
	// instructions each, stopping at control transfers.
	fill := func() error {
		for active < nC && !fetchStalled {
			if pc < 0 || pc >= len(prog) {
				if active == 0 {
					return fmt.Errorf("gatesim: fetch ran out of program at pc=%d", pc)
				}
				return nil
			}
			cl := ring[posOf(active)]
			cl.valid = true
			cl.stations = cl.stations[:0]
			for len(cl.stations) < C && !fetchStalled {
				if pc < 0 || pc >= len(prog) {
					break
				}
				in := prog[pc]
				for _, r := range in.Reads() {
					if int(r) >= l {
						return fmt.Errorf("gatesim: %s reads r%d, machine has %d registers", in, r, l)
					}
				}
				if dst, ok := in.Writes(); ok && int(dst) >= l {
					return fmt.Errorf("gatesim: %s writes r%d, machine has %d registers", in, dst, l)
				}
				cl.stations = append(cl.stations, &u2station{inst: in, pc: pc})
				if in.IsHalt() || in.ChangesFlow() {
					fetchStalled = true
					break
				}
				pc++
			}
			cl.count = len(cl.stations)
			insts := make([]isa.Inst, len(cl.stations))
			for i, s := range cl.stations {
				insts[i] = s.inst
			}
			cl.modified = ClusterModifiedBits(modOR, C, l, insts)
			active++
		}
		return nil
	}
	if err := fill(); err != nil {
		return nil, err
	}

	// Reusable per-register CSPP input buffers.
	mods := make([]bool, nC)
	vals := make([]isa.Word, nC)
	readys := make([]bool, nC)

	// clusterOutgoing computes, for a cluster, its per-register outgoing
	// (modified, value, ready): modified bits from the Figure 9 OR
	// netlist; values/readiness from the grid's outgoing columns when
	// modified; the incoming file otherwise (or the committed file for
	// the oldest cluster).
	clusterReg := func(ci int, isOldest bool, r int) (bool, isa.Word, bool) {
		cl := ring[ci]
		if !cl.valid {
			if isOldest {
				return true, commit[r] & mask, true
			}
			return false, 0, false
		}
		if cl.modified[r] {
			// The Figure 9 OR netlist marked this register; the newest
			// writing station supplies the value and ready bit.
			var v isa.Word
			rdy := false
			for _, s := range cl.stations {
				if s == nil {
					continue
				}
				if dst, ok := s.inst.Writes(); ok && int(dst) == r {
					v = s.result & mask
					rdy = s.done
				}
			}
			return true, v, rdy
		}
		if isOldest {
			return true, commit[r] & mask, true
		}
		return false, 0, false
	}

	for cycles < cfg.MaxCycles {
		// Phase 1: inter-cluster CSPP per register; non-oldest clusters
		// latch incoming values; the oldest's file is the committed state.
		for r := 0; r < l; r++ {
			for k := 0; k < nC; k++ {
				p := posOf(k)
				mods[p], vals[p], readys[p] = clusterReg(p, k == 0, r)
			}
			outV, outR := evalInterCSPP(interCSPP, nC, w, mods, vals, readys)
			for k := 1; k < nC; k++ {
				p := posOf(k)
				if ring[p].valid {
					ring[p].inVal[r] = outV[p]
					ring[p].inReady[r] = outR[p]
				}
			}
			old := ring[posOf(0)]
			old.inVal[r] = commit[r] & mask
			old.inReady[r] = true
		}

		// Phase 2: within each cluster, the grid netlist routes arguments
		// from the cluster's incoming file and earlier stations.
		for k := 0; k < nC; k++ {
			cl := ring[posOf(k)]
			if !cl.valid {
				continue
			}
			evalClusterGrid(grid, layout, cl, mask)
		}

		// Phase 3: memory serialization across the whole window (global
		// program order), then execution.
		storesDone, memDone := true, true
		for k := 0; k < nC; k++ {
			cl := ring[posOf(k)]
			if !cl.valid {
				continue
			}
			for _, s := range cl.stations {
				if s == nil {
					continue
				}
				sd, md := storesDone, memDone
				if s.inst.IsStore() {
					storesDone = storesDone && s.memDone
					memDone = memDone && s.memDone
				}
				if s.inst.IsLoad() {
					memDone = memDone && s.memDone
				}
				if s.done || !s.argsOK {
					continue
				}
				if s.inst.IsLoad() && !sd {
					continue
				}
				if s.inst.IsStore() && !md {
					continue
				}
				if !s.started {
					s.started = true
					s.remaining = cfg.Lat.Of(s.inst)
				}
				s.remaining--
				if s.remaining > 0 {
					continue
				}
				s.done = true
				in := s.inst
				switch {
				case in.IsHalt() || in.Op == isa.OpNop:
				case in.IsLoad():
					s.result = mem.Load(isa.EffAddr(in, s.argsA)) & mask
					s.memDone = true
				case in.IsStore():
					mem.Store(isa.EffAddr(in, s.argsA), s.argsB&mask)
					s.memDone = true
				case in.IsBranch(), in.IsJump():
					s.resolved = true
					s.nextPC = isa.NextPC(in, s.pc, s.argsA, s.argsB)
					s.result = isa.Word(s.pc+1) & mask
					if fetchStalled && !in.IsHalt() {
						pc = s.nextPC
						fetchStalled = false
					}
				default:
					s.result = isa.ALUOp(in, s.argsA, s.argsB) & mask
				}
			}
		}
		cycles++

		// Phase 4: retire whole clusters from the oldest position ("a
		// cluster behaves just like an execution station").
		for active > 0 {
			cl := ring[posOf(0)]
			if !cl.valid || !clusterDone(cl) {
				break
			}
			for _, s := range cl.stations {
				if s == nil {
					continue
				}
				if dst, ok := s.inst.Writes(); ok {
					commit[dst] = s.result & mask
				}
				retired++
				if s.inst.IsHalt() {
					return &Result{Regs: commit, Mem: mem, Cycles: cycles, Retired: retired}, nil
				}
			}
			cl.valid = false
			oldest = posOf(1)
			active--
		}

		// Phase 5: refill.
		if err := fill(); err != nil {
			return nil, err
		}
		if active == 0 {
			return nil, fmt.Errorf("gatesim: window drained without halt at pc=%d", pc)
		}
	}
	return nil, ErrNoHalt
}

func clusterDone(cl *hybridCluster) bool {
	for _, s := range cl.stations {
		if s != nil && !s.done {
			return false
		}
	}
	return true
}

// evalInterCSPP drives the cluster-level register CSPP netlist.
func evalInterCSPP(c *circuit.Circuit, nC, w int, mods []bool, vals []isa.Word, readys []bool) ([]isa.Word, []bool) {
	in := make([]bool, 0, nC*(2+w))
	for i := 0; i < nC; i++ {
		in = append(in, mods[i])
		for b := 0; b < w; b++ {
			in = append(in, vals[i]>>uint(b)&1 == 1)
		}
		in = append(in, readys[i])
	}
	raw := c.Eval(in)
	outV := make([]isa.Word, nC)
	outR := make([]bool, nC)
	stride := w + 1
	for i := 0; i < nC; i++ {
		var v isa.Word
		for b := 0; b < w; b++ {
			if raw[i*stride+b] {
				v |= 1 << uint(b)
			}
		}
		outV[i] = v
		outR[i] = raw[i*stride+w]
	}
	return outV, outR
}

// evalClusterGrid drives one cluster's Ultrascalar II grid netlist with
// the cluster's incoming register file as the initial file.
func evalClusterGrid(grid *circuit.Circuit, lay circuit.Ultra2Layout, cl *hybridCluster, mask isa.Word) {
	in := make([]bool, 0, lay.NumInputs())
	push := func(v uint64, bits int) {
		for b := 0; b < bits; b++ {
			in = append(in, v>>uint(b)&1 == 1)
		}
	}
	for r := 0; r < lay.L; r++ {
		v := uint64(cl.inVal[r] & mask)
		if cl.inReady[r] {
			v |= 1 << uint(lay.W)
		}
		push(v, lay.W+1)
	}
	for s := 0; s < lay.N; s++ {
		var st *u2station
		if s < len(cl.stations) {
			st = cl.stations[s]
		}
		var dest uint64
		var writes bool
		var result uint64
		var argA, argB uint64
		if st != nil {
			if d, ok := st.inst.Writes(); ok {
				dest, writes = uint64(d), true
			}
			result = uint64(st.result & mask)
			if st.done {
				result |= 1 << uint(lay.W)
			}
			reads := st.inst.Reads()
			if len(reads) > 0 {
				argA = uint64(reads[0])
			}
			if len(reads) > 1 {
				argB = uint64(reads[1])
			}
		}
		push(dest, lay.DestW)
		in = append(in, writes)
		push(result, lay.W+1)
		push(argA, lay.DestW)
		push(argB, lay.DestW)
	}
	raw := grid.Eval(in)
	pull := func(off int) (isa.Word, bool) {
		var v isa.Word
		for b := 0; b < lay.W; b++ {
			if raw[off+b] {
				v |= 1 << uint(b)
			}
		}
		return v, raw[off+lay.W]
	}
	for s, st := range cl.stations {
		if st == nil {
			continue
		}
		a, aOK := pull((2*s + 0) * (lay.W + 1))
		b, bOK := pull((2*s + 1) * (lay.W + 1))
		reads := st.inst.Reads()
		ok := true
		if len(reads) > 0 && !aOK {
			ok = false
		}
		if len(reads) > 1 && !bOK {
			ok = false
		}
		st.argsA, st.argsB, st.argsOK = a, b, ok
	}
}

// ClusterModifiedBits evaluates the Figure 9 modified-bit OR netlist for a
// batch of instructions: one bit per logical register, high when any
// station in the cluster writes it. Exposed for the datapath tests.
func ClusterModifiedBits(c *circuit.Circuit, nStations, l int, insts []isa.Inst) []bool {
	dw := 1
	for 1<<dw < l {
		dw++
	}
	in := make([]bool, 0, nStations*(dw+1))
	for s := 0; s < nStations; s++ {
		var dest uint64
		var writes bool
		if s < len(insts) {
			if d, ok := insts[s].Writes(); ok {
				dest, writes = uint64(d), true
			}
		}
		for b := 0; b < dw; b++ {
			in = append(in, dest>>uint(b)&1 == 1)
		}
		in = append(in, writes)
	}
	return c.Eval(in)
}
