package gatesim

import (
	"errors"
	"testing"

	"ultrascalar/internal/asm"
	"ultrascalar/internal/core"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/workload"
)

// crossCheck runs a workload through the gate-level datapath and the
// golden interpreter and requires identical architectural state.
func crossCheck(t *testing.T, w workload.Workload, cfg Config) *Result {
	t.Helper()
	if cfg.NumRegs == 0 {
		cfg.NumRegs = isa.NumRegs
	}
	if cfg.Width == 0 {
		cfg.Width = 32
	}
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{NumRegs: cfg.NumRegs})
	if err != nil {
		t.Fatalf("%s: golden: %v", w.Name, err)
	}
	got, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("%s: gatesim: %v", w.Name, err)
	}
	for r := range want.Regs {
		if got.Regs[r] != want.Regs[r] {
			t.Errorf("%s: r%d = %d, golden %d", w.Name, r, got.Regs[r], want.Regs[r])
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Errorf("%s: memory mismatch: %s", w.Name, got.Mem.Diff(want.Mem))
	}
	if got.Retired != int64(want.Executed) {
		t.Errorf("%s: retired %d, golden executed %d", w.Name, got.Retired, want.Executed)
	}
	return got
}

// TestKernelsThroughGates runs the full kernel suite through the actual
// CSPP netlists — the end-to-end validation of the gate-level datapath.
func TestKernelsThroughGates(t *testing.T) {
	for _, w := range workload.Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			crossCheck(t, w, Config{Window: 4})
		})
	}
}

func TestWindowSizesThroughGates(t *testing.T) {
	w := workload.Fib(12)
	for _, n := range []int{1, 2, 4, 8} {
		crossCheck(t, w, Config{Window: n})
	}
}

func TestNarrowDatapathSelfConsistent(t *testing.T) {
	// With an 8-bit datapath, small-value programs still match the golden
	// model (whose words are 32-bit but whose values stay under 2^8).
	w := workload.Workload{Name: "small", Prog: asm.MustAssemble(`
		li r1, 9
		li r2, 5
		add r3, r1, r2
		mul r4, r1, r2
		sub r5, r1, r2
		sw r4, 7(r2)
		lw r6, 7(r2)
		halt
	`).Insts}
	res := crossCheck(t, w, Config{Window: 4, NumRegs: 8, Width: 8})
	if res.Regs[4] != 45 || res.Regs[6] != 45 {
		t.Errorf("r4=%d r6=%d, want 45", res.Regs[4], res.Regs[6])
	}
}

// TestFigure3TimingThroughGates: the gate-level datapath extracts the
// same ILP as the engine on the Figure 3 sequence — 12 cycles for the 8
// instructions once the halt's retirement overhead is discounted. Here
// the whole 9-instruction program (with halt) is compared against the
// core engine at the same window size.
func TestFigure3TimingThroughGates(t *testing.T) {
	w := workload.Figure3Sequence()
	gres, err := Run(w.Prog, memory.NewFlat(), Config{Window: 9, NumRegs: isa.NumRegs, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := core.Run(w.Prog, memory.NewFlat(), core.Config{Window: 9, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gres.Cycles != cres.Stats.Cycles {
		t.Errorf("gate-level %d cycles, engine %d (straight-line code must agree)",
			gres.Cycles, cres.Stats.Cycles)
	}
}

// TestStraightLineCyclesMatchEngine: on straight-line programs (no
// branches, so fetch stalling never differs) the gate-level simulator and
// the core engine agree cycle for cycle.
func TestStraightLineCyclesMatchEngine(t *testing.T) {
	for _, w := range []workload.Workload{
		workload.Chain(50),
		workload.Parallel(40, 16),
		workload.MixedILP(60, 12, 6, 3),
	} {
		g, err := Run(w.Prog, w.Mem(), Config{Window: 8, NumRegs: isa.NumRegs, Width: 32})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		c, err := core.Run(w.Prog, w.Mem(), core.Config{Window: 8, Granularity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if g.Cycles != c.Stats.Cycles {
			t.Errorf("%s: gate-level %d cycles vs engine %d", w.Name, g.Cycles, c.Stats.Cycles)
		}
	}
}

func TestBranchingThroughGates(t *testing.T) {
	crossCheck(t, workload.GCD(252, 105), Config{Window: 4})
	crossCheck(t, workload.Branchy(25, false), Config{Window: 4})
	crossCheck(t, workload.Collatz(7), Config{Window: 4})
}

// TestGateLevelMemoryArbitration: the fat-tree arbiter netlist throttles
// memory bandwidth; results still match the golden model and narrow
// bandwidth costs cycles.
func TestGateLevelMemoryArbitration(t *testing.T) {
	w := workload.VecSum(24)
	narrow := crossCheck(t, w, Config{Window: 4, MemBandwidth: 1})
	free := crossCheck(t, w, Config{Window: 4})
	if narrow.Cycles < free.Cycles {
		t.Errorf("M=1 through gates (%d cycles) cannot beat unlimited (%d)",
			narrow.Cycles, free.Cycles)
	}
	// A memory-parallel workload (independent loads) shows actual
	// throttling.
	burst := workload.LoadBurst(20, 16)
	nb := crossCheck(t, burst, Config{Window: 4, NumRegs: 16, MemBandwidth: 1})
	fb := crossCheck(t, burst, Config{Window: 4, NumRegs: 16})
	if nb.Cycles <= fb.Cycles {
		t.Errorf("memcpy under M=1 (%d) should cost more than unlimited (%d)",
			nb.Cycles, fb.Cycles)
	}
}

func TestGatesimErrors(t *testing.T) {
	halt := []isa.Inst{{Op: isa.OpHalt}}
	if _, err := Run(halt, memory.NewFlat(), Config{Window: 0}); err == nil {
		t.Error("window 0 should fail")
	}
	loop := asm.MustAssemble("loop: j loop").Insts
	if _, err := Run(loop, memory.NewFlat(), Config{Window: 4, MaxCycles: 200}); !errors.Is(err, ErrNoHalt) {
		t.Errorf("want ErrNoHalt, got %v", err)
	}
	off := asm.MustAssemble("nop").Insts
	if _, err := Run(off, memory.NewFlat(), Config{Window: 4}); err == nil {
		t.Error("running off the end should fail")
	}
	badReg := []isa.Inst{{Op: isa.OpAdd, Rd: 20, Rs1: 0, Rs2: 0}, {Op: isa.OpHalt}}
	if _, err := Run(badReg, memory.NewFlat(), Config{Window: 2, NumRegs: 8, Width: 8}); err == nil {
		t.Error("out-of-range register should fail")
	}
}

func BenchmarkGateLevelFib(b *testing.B) {
	w := workload.Fib(10)
	for i := 0; i < b.N; i++ {
		if _, err := Run(w.Prog, w.Mem(), Config{Window: 4, NumRegs: isa.NumRegs, Width: 32}); err != nil {
			b.Fatal(err)
		}
	}
}
