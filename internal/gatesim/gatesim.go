// Package gatesim is a second, independent implementation of the
// Ultrascalar I: a simulator whose register forwarding and sequencing are
// computed every clock cycle by evaluating the actual gate-level netlists
// from internal/circuit — the CSPP register trees of Figure 4 and the
// 1-bit sequencing CSPP of Figure 5 — rather than by the functional
// shortcuts of internal/core. Execution stations remain behavioural cells
// (decode + ALU), exactly as in the paper's own Magic layouts, where the
// CSPP datapath is the novel fabric and the ALU a standard block.
//
// gatesim exists as an end-to-end validation artifact: programs run
// through real gates must produce the same architectural results as the
// golden interpreter, and the same cycle counts as the core engine. It is
// restricted to the Ultrascalar I feature set the datapath figures show:
// straight-line and branching integer code without the core engine's
// optional extensions, with loads/stores against fixed-latency memory.
package gatesim

import (
	"errors"
	"fmt"

	"ultrascalar/internal/circuit"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// ErrNoHalt is returned when the cycle limit is exhausted.
var ErrNoHalt = errors.New("gatesim: cycle limit exceeded without halt")

// Config sizes the gate-level processor.
type Config struct {
	Window    int // execution stations n (the ring size)
	NumRegs   int // logical registers L
	Width     int // datapath bits W (values are truncated to Width bits)
	Lat       isa.Latencies
	MaxCycles int64
	// MemBandwidth, when positive, arbitrates each cycle's memory
	// accesses through the gate-level fat-tree arbiter netlist
	// (circuit.FatTreeArbiter) with per-level capacities min(2^h, M) —
	// the "M" nodes of the paper's Figure 6, in gates. 0 disables
	// arbitration (unlimited bandwidth).
	MemBandwidth int
}

// Result is the outcome of a gate-level run.
type Result struct {
	Regs    []isa.Word
	Mem     *memory.Flat
	Cycles  int64
	Retired int64
}

// datapath holds the compiled netlists, rebuilt once per configuration.
type datapath struct {
	n, l, w int
	// regCSPP is the Figure 4 netlist for one logical register: inputs
	// per station (modified, value W+1 bits including ready); outputs per
	// station (incoming value W+1). One circuit instance is shared by all
	// L registers (it is the same netlist; hardware replicates it L
	// times, simulation evaluates it L times per cycle).
	regCSPP *circuit.Circuit
	// seqCSPP is the Figure 5 netlist: inputs per station (segment,
	// condition); outputs per station (all earlier stations met it).
	seqCSPP *circuit.Circuit
}

func newDatapath(n, l, w int) *datapath {
	return &datapath{
		n: n, l: l, w: w,
		regCSPP: circuit.RegisterCSPP(n, w+1, true),
		seqCSPP: circuit.Figure5CSPP(n, true),
	}
}

// forwardRegister evaluates the register CSPP netlist for one logical
// register. vals and readys are the per-station inserted values; modified
// marks inserting stations (the oldest must be marked by the caller).
func (d *datapath) forwardRegister(modified []bool, vals []isa.Word, readys []bool) ([]isa.Word, []bool) {
	in := make([]bool, 0, d.n*(2+d.w))
	for i := 0; i < d.n; i++ {
		in = append(in, modified[i])
		v := vals[i]
		for b := 0; b < d.w; b++ {
			in = append(in, v>>uint(b)&1 == 1)
		}
		in = append(in, readys[i])
	}
	raw := d.regCSPP.Eval(in)
	outV := make([]isa.Word, d.n)
	outR := make([]bool, d.n)
	stride := d.w + 1
	for i := 0; i < d.n; i++ {
		var v isa.Word
		for b := 0; b < d.w; b++ {
			if raw[i*stride+b] {
				v |= 1 << uint(b)
			}
		}
		outV[i] = v
		outR[i] = raw[i*stride+d.w]
	}
	return outV, outR
}

// allEarlier evaluates the Figure 5 netlist: out[i] reports whether every
// station from the oldest up to (excluding) i met the condition. The
// oldest station's own output is forced true (it has no earlier
// stations), as in internal/cspp.AllEarlierTrue.
func (d *datapath) allEarlier(met []bool, oldest int) []bool {
	in := make([]bool, 0, 2*d.n)
	for i := 0; i < d.n; i++ {
		in = append(in, i == oldest, met[i])
	}
	out := d.seqCSPP.Eval(in)
	res := make([]bool, d.n)
	copy(res, out)
	res[oldest] = true
	return res
}

// station is one execution station of the ring.
type station struct {
	valid bool
	inst  isa.Inst
	pc    int
	seq   int64

	// Latched incoming register file (updated every cycle unless oldest).
	regs  []isa.Word
	ready []bool

	started   bool
	remaining int
	done      bool
	result    isa.Word
	resolved  bool
	nextPC    int
	memDone   bool
}

// Run executes prog on the gate-level Ultrascalar I. Branches stall fetch
// until resolved (the datapath figures do not include a predictor; fetch
// follows the architectural path), so cycle counts are comparable to a
// core engine configured without speculation benefits, while
// architectural results must equal the golden interpreter exactly.
func Run(prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("gatesim: window must be >= 1")
	}
	if cfg.NumRegs == 0 {
		cfg.NumRegs = 8
	}
	if cfg.Width == 0 {
		cfg.Width = 8
	}
	if cfg.Lat == (isa.Latencies{}) {
		cfg.Lat = isa.DefaultLatencies()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 20
	}
	n, l, w := cfg.Window, cfg.NumRegs, cfg.Width
	mask := isa.Word(1)<<uint(w) - 1
	d := newDatapath(n, l, w)
	var arb *memArbiter
	if cfg.MemBandwidth > 0 {
		arb = newMemArbiter(n, cfg.MemBandwidth)
	}

	ring := make([]*station, n)
	for i := range ring {
		ring[i] = &station{regs: make([]isa.Word, l), ready: make([]bool, l)}
	}
	commit := make([]isa.Word, l)
	oldestPos := 0
	count := 0
	fetchPC := 0
	fetchStalled := false
	var nextSeq, retired int64

	posOf := func(k int) int { return (oldestPos + k) % n } // k-th oldest

	fill := func() error {
		for count < n && !fetchStalled {
			if fetchPC < 0 || fetchPC >= len(prog) {
				if count == 0 {
					return fmt.Errorf("gatesim: fetch ran out of program at pc=%d", fetchPC)
				}
				return nil
			}
			in := prog[fetchPC]
			for _, r := range in.Reads() {
				if int(r) >= l {
					return fmt.Errorf("gatesim: %s reads r%d, machine has %d registers", in, r, l)
				}
			}
			if dst, ok := in.Writes(); ok && int(dst) >= l {
				return fmt.Errorf("gatesim: %s writes r%d, machine has %d registers", in, dst, l)
			}
			s := ring[posOf(count)]
			*s = station{valid: true, inst: in, pc: fetchPC, seq: nextSeq,
				regs: s.regs, ready: s.ready}
			nextSeq++
			count++
			if in.ChangesFlow() || in.IsHalt() {
				// No predictor in the datapath figures: stall fetch until
				// the transfer resolves.
				fetchStalled = true
				return nil
			}
			fetchPC++
		}
		return nil
	}
	if err := fill(); err != nil {
		return nil, err
	}

	// Per-cycle reusable buffers.
	modified := make([]bool, n)
	insVal := make([]isa.Word, n)
	insReady := make([]bool, n)
	met := make([]bool, n)

	for cycle := int64(0); cycle < cfg.MaxCycles; cycle++ {
		// Phase 1: drive the register datapath, one CSPP tree per
		// register, and latch incoming values into every non-oldest
		// station's register file (paper: "Each station, other than the
		// oldest, latches all of its incoming values").
		for r := 0; r < l; r++ {
			for k := 0; k < n; k++ {
				p := posOf(k)
				s := ring[p]
				isOldest := k == 0
				mod := false
				val := isa.Word(0)
				rdy := false
				if isOldest {
					// The oldest station marks every register modified and
					// inserts the committed register file — except for the
					// register its own instruction writes, where it inserts
					// its result ("the station inserts the result into the
					// outgoing register datapath. The rest of the outgoing
					// registers are set from the register file").
					mod = true
					if dst, ok := s.inst.Writes(); s.valid && ok && int(dst) == r {
						val = s.result & mask
						rdy = s.done
					} else {
						val = commit[r] & mask
						rdy = true
					}
				} else if s.valid {
					if dst, ok := s.inst.Writes(); ok && int(dst) == r {
						mod = true
						val = s.result & mask
						rdy = s.done
					}
				}
				modified[p] = mod
				insVal[p] = val
				insReady[p] = rdy
			}
			outV, outR := d.forwardRegister(modified, insVal, insReady)
			for k := 1; k < n; k++ { // oldest does not latch
				p := posOf(k)
				if ring[p].valid {
					ring[p].regs[r] = outV[p]
					ring[p].ready[r] = outR[p]
				}
			}
			// The oldest station's file is the committed state.
			ring[posOf(0)].regs[r] = commit[r] & mask
			ring[posOf(0)].ready[r] = true
		}

		// Phase 2: sequencing CSPPs (Figure 5 instances): stores-done and
		// mem-done conditions for load/store serialization.
		for k := 0; k < n; k++ {
			p := posOf(k)
			s := ring[p]
			met[p] = !s.valid || !s.inst.IsStore() || s.memDone
		}
		storesDone := d.allEarlier(met, posOf(0))
		for k := 0; k < n; k++ {
			p := posOf(k)
			s := ring[p]
			met[p] = !s.valid || !s.inst.IsMem() || s.memDone
		}
		memOpsDone := d.allEarlier(met, posOf(0))

		// Phase 3: execute. With gate-level memory arbitration, first
		// collect this cycle's eligible memory accesses and run them
		// through the fat-tree arbiter netlist; only granted stations may
		// begin their access.
		var memGrant []bool
		if arb != nil {
			reqs := make([]bool, n)
			ages := make([]int, n)
			for k := 0; k < n; k++ {
				p := posOf(k)
				s := ring[p]
				ages[p] = k
				if !s.valid || s.done || s.started || !s.inst.IsMem() {
					continue
				}
				ready := true
				for _, r := range s.inst.Reads() {
					if !s.ready[r] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				if s.inst.IsLoad() && !storesDone[p] {
					continue
				}
				if s.inst.IsStore() && !memOpsDone[p] {
					continue
				}
				reqs[p] = true
			}
			memGrant = arb.grants(reqs, ages)
		}
		for k := 0; k < n; k++ {
			s := ring[posOf(k)]
			if !s.valid || s.done {
				continue
			}
			if arb != nil && s.inst.IsMem() && !s.started && !memGrant[posOf(k)] {
				continue
			}
			in := s.inst
			ready := true
			var a, b isa.Word
			reads := in.Reads()
			for j, r := range reads {
				if !s.ready[r] {
					ready = false
					break
				}
				if j == 0 {
					a = s.regs[r]
				} else {
					b = s.regs[r]
				}
			}
			if !ready {
				continue
			}
			if !s.started {
				switch {
				case in.IsLoad():
					if !storesDone[posOf(k)] {
						continue
					}
				case in.IsStore():
					if !memOpsDone[posOf(k)] {
						continue
					}
				}
				s.started = true
				s.remaining = cfg.Lat.Of(in)
			}
			s.remaining--
			if s.remaining > 0 {
				continue
			}
			s.done = true
			switch {
			case in.IsHalt() || in.Op == isa.OpNop:
			case in.IsLoad():
				s.result = mem.Load(isa.EffAddr(in, a)) & mask
				s.memDone = true
			case in.IsStore():
				mem.Store(isa.EffAddr(in, a), b&mask)
				s.memDone = true
			case in.IsBranch():
				s.resolved = true
				s.nextPC = isa.NextPC(in, s.pc, a, b)
			case in.IsJump():
				s.resolved = true
				s.nextPC = isa.NextPC(in, s.pc, a, b)
				s.result = isa.Word(s.pc+1) & mask
			default:
				s.result = isa.ALUOp(in, a, b) & mask
			}
			if (in.ChangesFlow() || in.IsHalt()) && fetchStalled {
				if in.IsHalt() {
					// Fetch stays stalled; retirement ends the run.
				} else {
					fetchPC = s.nextPC
					fetchStalled = false
				}
			}
		}

		// Phase 4: retire in order from the oldest station.
		for count > 0 {
			s := ring[posOf(0)]
			if !s.valid || !s.done {
				break
			}
			if dst, ok := s.inst.Writes(); ok {
				commit[dst] = s.result & mask
			}
			retired++
			halt := s.inst.IsHalt()
			s.valid = false
			oldestPos = posOf(1)
			count--
			if halt {
				return &Result{Regs: commit, Mem: mem, Cycles: cycle + 1, Retired: retired}, nil
			}
		}

		// Phase 5: refill freed stations.
		if err := fill(); err != nil {
			return nil, err
		}
	}
	return nil, ErrNoHalt
}
