package gatesim

import (
	"errors"
	"fmt"

	"ultrascalar/internal/circuit"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
)

// Gate-level Ultrascalar II: batches of instructions execute against the
// actual grid netlist of the paper's Figures 7-8 (comparators searching
// register bindings, reduction columns delivering arguments). Every cycle
// the grid is re-evaluated combinationally from the stations' current
// results — exactly the hardware's behaviour, where "on every clock
// cycle, stations with ready arguments compute and newly computed results
// propagate through the network. Eventually, all stations finish
// computing and the final values of all the registers are ready. At that
// time, the final values are latched into the register file [and] the
// stations refill with new instructions."

// ErrUltra2Flow is returned when a program's control transfer lands
// outside the program.
var ErrUltra2Flow = errors.New("gatesim: control flow left the program")

// u2station is one station of the current batch.
type u2station struct {
	inst isa.Inst
	pc   int

	started   bool
	remaining int
	done      bool
	result    isa.Word
	resolved  bool
	nextPC    int
	memDone   bool
	argsA     isa.Word
	argsB     isa.Word
	argsOK    bool
}

// RunUltra2 executes prog on a gate-level Ultrascalar II of n stations.
// Fetch follows the architectural path (resolving each batch's trailing
// control transfer before refilling past it), loads and stores serialize
// in program order within the batch, and the whole batch drains before
// the next is fetched — the paper's non-wrap-around semantics.
func RunUltra2(prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("gatesim: window must be >= 1")
	}
	if cfg.NumRegs == 0 {
		cfg.NumRegs = 8
	}
	if cfg.Width == 0 {
		cfg.Width = 8
	}
	if cfg.Lat == (isa.Latencies{}) {
		cfg.Lat = isa.DefaultLatencies()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 20
	}
	n, l, w := cfg.Window, cfg.NumRegs, cfg.Width
	mask := isa.Word(1)<<uint(w) - 1
	grid, layout := circuit.Ultra2Grid(n, l, w, true)
	var arb *memArbiter
	if cfg.MemBandwidth > 0 {
		arb = newMemArbiter(n, cfg.MemBandwidth)
	}

	commit := make([]isa.Word, l)
	var cycles, retired int64
	pc := 0

	for cycles < cfg.MaxCycles {
		// Fetch one batch along the architectural path: sequential
		// instructions up to n, stopping after a control transfer or
		// halt (resolved before the next batch) or at the window size.
		batch := make([]*u2station, 0, n)
		haltIdx := -1
		for len(batch) < n {
			if pc < 0 || pc >= len(prog) {
				if len(batch) == 0 {
					return nil, fmt.Errorf("%w: pc=%d", ErrUltra2Flow, pc)
				}
				break
			}
			in := prog[pc]
			for _, r := range in.Reads() {
				if int(r) >= l {
					return nil, fmt.Errorf("gatesim: %s reads r%d, machine has %d registers", in, r, l)
				}
			}
			if dst, ok := in.Writes(); ok && int(dst) >= l {
				return nil, fmt.Errorf("gatesim: %s writes r%d, machine has %d registers", in, dst, l)
			}
			batch = append(batch, &u2station{inst: in, pc: pc})
			if in.IsHalt() {
				haltIdx = len(batch) - 1
				break
			}
			if in.ChangesFlow() {
				break // resolve before fetching past it
			}
			pc++
		}

		// Execute the batch to completion, re-evaluating the grid
		// netlist each cycle.
		for !batchDone(batch) {
			if cycles >= cfg.MaxCycles {
				return nil, ErrNoHalt
			}
			evalGrid(grid, layout, commit, batch, mask)
			var memGrant []bool
			if arb != nil {
				reqs := make([]bool, n)
				ages := make([]int, n)
				sd, md := true, true
				for i, s := range batch {
					ages[i] = i
					eligible := !s.done && !s.started && s.argsOK && s.inst.IsMem() &&
						(!s.inst.IsLoad() || sd) && (!s.inst.IsStore() || md)
					reqs[i] = eligible
					if s.inst.IsStore() {
						sd = sd && s.memDone
						md = md && s.memDone
					}
					if s.inst.IsLoad() {
						md = md && s.memDone
					}
				}
				memGrant = arb.grants(reqs, ages)
			}
			storesDone, memDone := true, true
			for i, s := range batch {
				sd, md := storesDone, memDone
				if s.inst.IsStore() {
					storesDone = storesDone && s.memDone
					memDone = memDone && s.memDone
				}
				if s.inst.IsLoad() {
					memDone = memDone && s.memDone
				}
				if s.done || !s.argsOK {
					continue
				}
				if s.inst.IsLoad() && !sd {
					continue
				}
				if s.inst.IsStore() && !md {
					continue
				}
				if arb != nil && s.inst.IsMem() && !s.started && !memGrant[i] {
					continue
				}
				if !s.started {
					s.started = true
					s.remaining = cfg.Lat.Of(s.inst)
				}
				s.remaining--
				if s.remaining > 0 {
					continue
				}
				s.done = true
				in := s.inst
				switch {
				case in.IsHalt() || in.Op == isa.OpNop:
				case in.IsLoad():
					s.result = mem.Load(isa.EffAddr(in, s.argsA)) & mask
					s.memDone = true
				case in.IsStore():
					mem.Store(isa.EffAddr(in, s.argsA), s.argsB&mask)
					s.memDone = true
				case in.IsBranch(), in.IsJump():
					s.resolved = true
					s.nextPC = isa.NextPC(in, s.pc, s.argsA, s.argsB)
					s.result = isa.Word(s.pc+1) & mask // link (jumps only)
				default:
					s.result = isa.ALUOp(in, s.argsA, s.argsB) & mask
				}
			}
			cycles++
		}

		// Batch complete: latch the final register values (the grid's
		// outgoing columns) into the register file and refill.
		latchOutgoing(grid, layout, commit, batch, mask)
		retired += int64(len(batch))
		if haltIdx >= 0 {
			return &Result{Regs: commit, Mem: mem, Cycles: cycles, Retired: retired}, nil
		}
		last := batch[len(batch)-1]
		if last.inst.ChangesFlow() {
			pc = last.nextPC
		}
	}
	return nil, ErrNoHalt
}

func batchDone(batch []*u2station) bool {
	for _, s := range batch {
		if !s.done {
			return false
		}
	}
	return true
}

// evalGrid drives the Ultrascalar II grid netlist with the batch's
// current state and captures each station's delivered arguments.
func evalGrid(grid *circuit.Circuit, lay circuit.Ultra2Layout, commit []isa.Word, batch []*u2station, mask isa.Word) {
	in := make([]bool, 0, lay.NumInputs())
	push := func(v uint64, bits int) {
		for b := 0; b < bits; b++ {
			in = append(in, v>>uint(b)&1 == 1)
		}
	}
	// Initial register file: committed values, all ready.
	for r := 0; r < lay.L; r++ {
		push(uint64(commit[r]&mask)|uint64(1)<<uint(lay.W), lay.W+1)
	}
	for s := 0; s < lay.N; s++ {
		var st *u2station
		if s < len(batch) {
			st = batch[s]
		}
		var dest uint64
		var writes bool
		var result uint64
		var argA, argB uint64
		if st != nil {
			if d, ok := st.inst.Writes(); ok {
				dest, writes = uint64(d), true
			}
			result = uint64(st.result & mask)
			if st.done {
				result |= 1 << uint(lay.W) // ready bit
			}
			reads := st.inst.Reads()
			if len(reads) > 0 {
				argA = uint64(reads[0])
			}
			if len(reads) > 1 {
				argB = uint64(reads[1])
			}
		}
		push(dest, lay.DestW)
		in = append(in, writes)
		push(result, lay.W+1)
		push(argA, lay.DestW)
		push(argB, lay.DestW)
	}
	raw := grid.Eval(in)
	pull := func(off int) (isa.Word, bool) {
		var v isa.Word
		for b := 0; b < lay.W; b++ {
			if raw[off+b] {
				v |= 1 << uint(b)
			}
		}
		return v, raw[off+lay.W]
	}
	for s, st := range batch {
		a, aOK := pull((2*s + 0) * (lay.W + 1))
		b, bOK := pull((2*s + 1) * (lay.W + 1))
		reads := st.inst.Reads()
		ok := true
		if len(reads) > 0 && !aOK {
			ok = false
		}
		if len(reads) > 1 && !bOK {
			ok = false
		}
		st.argsA, st.argsB, st.argsOK = a, b, ok
	}
}

// latchOutgoing reads the grid's outgoing register columns (the final
// value of every logical register) into the committed register file.
func latchOutgoing(grid *circuit.Circuit, lay circuit.Ultra2Layout, commit []isa.Word, batch []*u2station, mask isa.Word) {
	// Re-evaluate with everything done so the outgoing columns carry the
	// final values, then latch.
	in := make([]bool, 0, lay.NumInputs())
	push := func(v uint64, bits int) {
		for b := 0; b < bits; b++ {
			in = append(in, v>>uint(b)&1 == 1)
		}
	}
	for r := 0; r < lay.L; r++ {
		push(uint64(commit[r]&mask)|uint64(1)<<uint(lay.W), lay.W+1)
	}
	for s := 0; s < lay.N; s++ {
		var dest uint64
		var writes bool
		var result uint64
		if s < len(batch) {
			st := batch[s]
			if d, ok := st.inst.Writes(); ok {
				dest, writes = uint64(d), true
			}
			result = uint64(st.result&mask) | 1<<uint(lay.W)
		}
		push(dest, lay.DestW)
		in = append(in, writes)
		push(result, lay.W+1)
		push(0, lay.DestW)
		push(0, lay.DestW)
	}
	raw := grid.Eval(in)
	base := lay.N * 2 * (lay.W + 1)
	for r := 0; r < lay.L; r++ {
		var v isa.Word
		off := base + r*(lay.W+1)
		for b := 0; b < lay.W; b++ {
			if raw[off+b] {
				v |= 1 << uint(b)
			}
		}
		commit[r] = v
	}
}
