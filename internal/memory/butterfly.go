package memory

import (
	"sort"

	"ultrascalar/internal/isa"
)

// Butterfly is the paper's alternative interconnect ("We propose to
// connect the Ultrascalar I datapath to an interleaved data cache and to
// an instruction trace cache via two fat-tree or butterfly networks"): a
// log₂(n)-stage network of 2×2 switches between n stations and n bank
// ports. Unlike the fat tree, total bandwidth is n but specific
// station→bank pairings conflict when two requests need the same output
// port of the same switch — the classic butterfly blocking behaviour.
type Butterfly struct {
	n      int // stations and ports (power of two)
	stages int
	banks  int
	hitLat int
	hopLat int
	stats  Stats
}

// NewButterfly builds an n-leaf butterfly (n rounded up to a power of
// two) over `banks` interleaved banks with the given per-stage hop
// latency and bank hit latency.
func NewButterfly(n, banks, hopLat, hitLat int) *Butterfly {
	size := 1
	stages := 0
	for size < n {
		size *= 2
		stages++
	}
	if banks < 1 {
		banks = 1
	}
	return &Butterfly{n: size, stages: stages, banks: banks, hitLat: hitLat, hopLat: hopLat}
}

// Stats returns accumulated counters.
func (b *Butterfly) Stats() Stats { return b.stats }

// BankOf returns the interleaved bank of an address.
func (b *Butterfly) BankOf(addr isa.Word) int { return int(addr) % b.banks }

// portOf maps a bank to its network output port.
func (b *Butterfly) portOf(bank int) int { return bank % b.n }

// route returns the switch output edges a packet from station src to
// output port dst occupies: at stage k the packet is at node
// (dst's top k bits ++ src's low stages-k bits); the occupied resource is
// (stage, nodeAfterStage).
func (b *Butterfly) route(src, dst int) []int {
	edges := make([]int, b.stages)
	cur := src
	for k := 0; k < b.stages; k++ {
		// At stage k the destination bit (from the top) replaces the
		// corresponding source bit.
		bit := b.stages - 1 - k
		cur = (cur &^ (1 << bit)) | (dst & (1 << bit))
		edges[k] = k<<16 | cur
	}
	return edges
}

// Arbitrate admits requests oldest first; a request is denied when any
// switch output edge on its route is already taken this cycle, or its
// bank is busy.
func (b *Butterfly) Arbitrate(reqs []Request) []Grant {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Age < reqs[j].Age })
	usedEdges := map[int]bool{}
	usedBanks := map[int]bool{}
	var grants []Grant
	for _, r := range reqs {
		bank := b.BankOf(r.Addr)
		port := b.portOf(bank)
		src := r.Station % b.n
		route := b.route(src, port)
		ok := !usedBanks[bank]
		if ok {
			for _, e := range route {
				if usedEdges[e] {
					ok = false
					break
				}
			}
		}
		if !ok {
			b.stats.Stalls++
			continue
		}
		usedBanks[bank] = true
		for _, e := range route {
			usedEdges[e] = true
		}
		b.stats.Accesses++
		b.stats.Hits++
		grants = append(grants, Grant{Req: r, Latency: b.stages*b.hopLat*2 + b.hitLat})
	}
	return grants
}
