package memory

import (
	"testing"

	"ultrascalar/internal/isa"
)

func TestButterflyDistinctRoutes(t *testing.T) {
	// Requests to distinct banks from distinct stations with
	// non-conflicting routes all pass: the identity permutation
	// (station i -> port i) is congestion-free in a butterfly.
	b := NewButterfly(8, 8, 1, 2)
	var reqs []Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, Request{Station: i, Addr: isa.Word(i), Age: int64(i)})
	}
	grants := b.Arbitrate(reqs)
	if len(grants) != 8 {
		t.Fatalf("identity permutation granted %d/8", len(grants))
	}
	wantLat := 3*1*2 + 2
	if grants[0].Latency != wantLat {
		t.Errorf("latency %d, want %d", grants[0].Latency, wantLat)
	}
}

func TestButterflyBankConflict(t *testing.T) {
	b := NewButterfly(8, 8, 1, 2)
	grants := b.Arbitrate([]Request{
		{Station: 0, Addr: 5, Age: 0},
		{Station: 3, Addr: 5 + 8, Age: 1}, // same bank
	})
	if len(grants) != 1 || grants[0].Req.Age != 0 {
		t.Errorf("bank conflict should deny the younger: %+v", grants)
	}
	if b.Stats().Stalls != 1 {
		t.Errorf("stalls = %d", b.Stats().Stalls)
	}
}

func TestButterflyInternalBlocking(t *testing.T) {
	// The butterfly's signature: two requests to DIFFERENT banks can
	// still conflict inside the network. Stations 0 (000) and 4 (100)
	// routing to ports 2 (010) and 3 (011) both need first-stage output
	// node 000 — a classic blocking pair.
	b := NewButterfly(8, 8, 1, 0)
	g := b.Arbitrate([]Request{
		{Station: 0, Addr: 2, Age: 0},
		{Station: 4, Addr: 3, Age: 1},
	})
	if len(g) != 1 {
		t.Fatalf("expected internal blocking, granted %d", len(g))
	}
	if g[0].Req.Age != 0 {
		t.Error("the older request should win the contested edge")
	}
	// Adjacent sources to distinct ports never block internally.
	b2 := NewButterfly(8, 8, 1, 0)
	g2 := b2.Arbitrate([]Request{
		{Station: 0, Addr: 4, Age: 0},
		{Station: 1, Addr: 5, Age: 1},
	})
	if len(g2) != 2 {
		t.Errorf("adjacent sources to distinct ports should both pass: %d", len(g2))
	}
}

func TestButterflyOldestFirst(t *testing.T) {
	b := NewButterfly(4, 4, 1, 1)
	grants := b.Arbitrate([]Request{
		{Station: 2, Addr: 1, Age: 9},
		{Station: 1, Addr: 1 + 4, Age: 3}, // same bank, older
	})
	if len(grants) != 1 || grants[0].Req.Age != 3 {
		t.Errorf("oldest should win: %+v", grants)
	}
}

func TestButterflyRoundsUp(t *testing.T) {
	b := NewButterfly(5, 3, 1, 1) // rounds to 8 leaves
	g := b.Arbitrate([]Request{{Station: 4, Addr: 7, Age: 0}})
	if len(g) != 1 {
		t.Error("single request should pass")
	}
	if b.BankOf(7) != 7%3 {
		t.Error("bank mapping wrong")
	}
}

// TestButterflyImplementsNetwork pins the interface.
func TestButterflyImplementsNetwork(t *testing.T) {
	var _ Network = NewButterfly(4, 4, 1, 1)
	var _ Network = NewSystem(DefaultConfig(4, MConst(1)))
}
