package memory

import (
	"testing"

	"ultrascalar/internal/isa"
)

func clusterCfg(leaves, clusterSize int) Config {
	cfg := DefaultConfig(leaves, MConst(1))
	cfg.HopLatency = 1
	cfg.ClusterSize = clusterSize
	cfg.ClusterLines = 8
	cfg.ClusterHitLatency = 1
	return cfg
}

func TestClusterCacheHitAfterFill(t *testing.T) {
	sys := NewSystem(clusterCfg(16, 4))
	// First load goes to memory (miss), fills the cluster cache.
	g := sys.Arbitrate([]Request{{Station: 0, Addr: 10, Age: 0}})
	if len(g) != 1 || g[0].Latency <= 1 {
		t.Fatalf("first load should take the tree: %+v", g)
	}
	// Second load from the same cluster hits.
	g = sys.Arbitrate([]Request{{Station: 1, Addr: 10, Age: 1}})
	if len(g) != 1 || g[0].Latency != 1 {
		t.Fatalf("cluster hit should cost 1 cycle: %+v", g)
	}
	if sys.Stats().ClusterHits != 1 {
		t.Errorf("cluster hits = %d, want 1", sys.Stats().ClusterHits)
	}
	// A different cluster misses: its cache was not filled.
	g = sys.Arbitrate([]Request{{Station: 8, Addr: 10, Age: 2}})
	if len(g) != 1 || g[0].Latency == 1 {
		t.Fatalf("other cluster should miss: %+v", g)
	}
}

func TestClusterCacheBypassesBandwidth(t *testing.T) {
	// With M(n)=1, two cluster hits and the cap are independent: hits do
	// not consume root bandwidth.
	sys := NewSystem(clusterCfg(16, 4))
	sys.Arbitrate([]Request{{Station: 0, Addr: 1, Age: 0}})
	sys.Arbitrate([]Request{{Station: 4, Addr: 2, Age: 1}})
	// Now: two hits (stations 1, 5) plus one new miss (station 9) in one
	// cycle: all three granted despite root capacity 1.
	g := sys.Arbitrate([]Request{
		{Station: 1, Addr: 1, Age: 2},
		{Station: 5, Addr: 2, Age: 3},
		{Station: 9, Addr: 3, Age: 4},
	})
	if len(g) != 3 {
		t.Fatalf("granted %d, want 3 (two cluster hits + one tree access)", len(g))
	}
}

func TestClusterCacheStoreInvalidates(t *testing.T) {
	sys := NewSystem(clusterCfg(16, 4))
	// Cluster 0 loads address 7 (fill).
	sys.Arbitrate([]Request{{Station: 0, Addr: 7, Age: 0}})
	if len(sys.Arbitrate([]Request{{Station: 1, Addr: 7, Age: 1}})) != 1 {
		t.Fatal("expected hit")
	}
	// Cluster 1 stores to address 7: cluster 0's copy is invalidated.
	sys.Arbitrate([]Request{{Station: 4, Addr: 7, Store: true, Age: 2}})
	g := sys.Arbitrate([]Request{{Station: 0, Addr: 7, Age: 3}})
	if len(g) != 1 || g[0].Latency == 1 {
		t.Fatalf("invalidated copy should miss: %+v", g)
	}
	// The writing cluster's own copy hits.
	g = sys.Arbitrate([]Request{{Station: 5, Addr: 7, Age: 4}})
	if len(g) != 1 || g[0].Latency != 1 {
		t.Fatalf("writer's cluster should hit: %+v", g)
	}
}

func TestClusterCacheConflictEviction(t *testing.T) {
	sys := NewSystem(clusterCfg(16, 4)) // 8 lines: addresses 8 apart conflict
	sys.Arbitrate([]Request{{Station: 0, Addr: 3, Age: 0}})
	sys.Arbitrate([]Request{{Station: 0, Addr: 3 + 8, Age: 1}}) // evicts 3
	g := sys.Arbitrate([]Request{{Station: 0, Addr: 3, Age: 2}})
	if len(g) != 1 || g[0].Latency == 1 {
		t.Fatalf("evicted line should miss: %+v", g)
	}
}

func TestClusterCacheDefaults(t *testing.T) {
	cfg := DefaultConfig(8, MConst(1))
	cfg.ClusterSize = 4 // lines and hit latency defaulted
	sys := NewSystem(cfg)
	sys.Arbitrate([]Request{{Station: 0, Addr: 1, Age: 0}})
	g := sys.Arbitrate([]Request{{Station: 0, Addr: 1, Age: 1}})
	if len(g) != 1 || g[0].Latency != 1 {
		t.Fatalf("default cluster hit latency should be 1: %+v", g)
	}
	_ = isa.Word(0)
}
