// Package memory implements the memory subsystem of the Ultrascalar
// processors: functional storage, an interleaved data cache, and the
// fat-tree network that connects execution stations to the cache banks
// (paper Sections 2 and 3: "We propose to connect the Ultrascalar I
// datapath to an interleaved data cache and to an instruction trace cache
// via two fat-tree or butterfly networks").
//
// The functional layer (Backing, Flat) answers what a load returns; the
// timing layer (System, built from an interleaved cache plus a fat tree of
// root bandwidth M(n)) answers how many cycles an access takes and how
// many accesses can proceed per cycle.
package memory

import (
	"fmt"
	"sort"

	"ultrascalar/internal/isa"
)

// Backing is functional word-addressed storage.
type Backing interface {
	Load(addr isa.Word) isa.Word
	Store(addr, val isa.Word)
}

// Flat is map-backed functional storage. The zero value is not usable; use
// NewFlat.
type Flat struct {
	m map[isa.Word]isa.Word
}

// NewFlat returns empty flat storage. All words read as zero until stored.
func NewFlat() *Flat { return &Flat{m: make(map[isa.Word]isa.Word)} }

// Load returns the word at addr (zero if never stored).
func (f *Flat) Load(addr isa.Word) isa.Word { return f.m[addr] }

// Store writes the word at addr.
func (f *Flat) Store(addr, val isa.Word) {
	if val == 0 {
		delete(f.m, addr) // keep the map canonical so Equal is cheap
		return
	}
	f.m[addr] = val
}

// Len returns the number of nonzero words.
func (f *Flat) Len() int { return len(f.m) }

// Clone returns an independent copy.
func (f *Flat) Clone() *Flat {
	c := NewFlat()
	for k, v := range f.m {
		c.m[k] = v
	}
	return c
}

// Equal reports whether two flat memories hold identical contents.
func (f *Flat) Equal(g *Flat) bool {
	if len(f.m) != len(g.m) {
		return false
	}
	for k, v := range f.m {
		if g.m[k] != v {
			return false
		}
	}
	return true
}

// Diff describes the first few differing words between two memories, for
// test failure messages.
func (f *Flat) Diff(g *Flat) string {
	var addrs []isa.Word
	seen := map[isa.Word]bool{}
	for k := range f.m {
		seen[k] = true
		addrs = append(addrs, k)
	}
	for k := range g.m {
		if !seen[k] {
			addrs = append(addrs, k)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := ""
	count := 0
	for _, a := range addrs {
		if f.m[a] != g.m[a] {
			out += fmt.Sprintf("[%d]: %d != %d; ", a, f.m[a], g.m[a])
			if count++; count >= 8 {
				out += "..."
				break
			}
		}
	}
	if out == "" {
		return "equal"
	}
	return out
}

// LoadWords bulk-initializes memory starting at base.
func (f *Flat) LoadWords(base isa.Word, words []isa.Word) {
	for i, w := range words {
		f.Store(base+isa.Word(i), w)
	}
}
