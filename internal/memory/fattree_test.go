package memory

import (
	"testing"

	"ultrascalar/internal/isa"
)

func TestMFuncClamping(t *testing.T) {
	m := MConst(4)
	if m.Of(2) != 2 {
		t.Errorf("M clamped to n: got %d", m.Of(2))
	}
	if m.Of(100) != 4 {
		t.Errorf("MConst(4).Of(100) = %d", m.Of(100))
	}
	z := MConst(0)
	if z.Of(8) != 1 {
		t.Errorf("M clamped to >= 1: got %d", z.Of(8))
	}
	lin := MLinear()
	if lin.Of(64) != 64 {
		t.Errorf("MLinear.Of(64) = %d", lin.Of(64))
	}
	sqrt := MPow(1, 0.5)
	if got := sqrt.Of(64); got != 8 {
		t.Errorf("sqrt bandwidth of 64 = %d, want 8", got)
	}
	if MPow(1, 0.5).Name == "" || MConst(1).Name == "" || MLinear().Name == "" {
		t.Error("MFunc names should be set")
	}
}

func TestRootBandwidthCap(t *testing.T) {
	// 16 leaves, M(n)=4: at most 4 requests admitted per cycle even when
	// they hit distinct banks and distinct subtrees.
	sys := NewSystem(DefaultConfig(16, MConst(4)))
	if sys.RootBandwidth() != 4 {
		t.Fatalf("root bandwidth %d, want 4", sys.RootBandwidth())
	}
	if sys.Banks() != 4 {
		t.Fatalf("banks %d, want M(n)=4", sys.Banks())
	}
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{Station: i, Addr: isa.Word(i), Age: int64(i)})
	}
	grants := sys.Arbitrate(reqs)
	if len(grants) > 4 {
		t.Errorf("granted %d > root bandwidth 4", len(grants))
	}
	if sys.Stats().Stalls == 0 {
		t.Error("expected stalls under contention")
	}
}

func TestOldestFirstArbitration(t *testing.T) {
	sys := NewSystem(DefaultConfig(8, MConst(1)))
	reqs := []Request{
		{Station: 3, Addr: 1, Age: 10},
		{Station: 1, Addr: 2, Age: 5}, // older: must win
	}
	grants := sys.Arbitrate(reqs)
	if len(grants) != 1 || grants[0].Req.Age != 5 {
		t.Errorf("grants = %+v, want the age-5 request only", grants)
	}
}

func TestBankConflict(t *testing.T) {
	// Two requests to the same bank conflict even with ample bandwidth.
	sys := NewSystem(DefaultConfig(8, MLinear()))
	b := sys.Banks()
	reqs := []Request{
		{Station: 0, Addr: 0, Age: 0},
		{Station: 1, Addr: isa.Word(b), Age: 1}, // same bank (addr mod banks)
		{Station: 2, Addr: 1, Age: 2},           // different bank
	}
	grants := sys.Arbitrate(reqs)
	if len(grants) != 2 {
		t.Fatalf("granted %d, want 2 (one bank conflict)", len(grants))
	}
	for _, g := range grants {
		if g.Req.Age == 1 {
			t.Error("the conflicting younger request should be denied")
		}
	}
}

func TestLeafLinkCapacity(t *testing.T) {
	// Two stations under the same height-1 node share a link of capacity
	// min(2, M); with M large both pass, and a third from the same pair of
	// leaves cannot exist, so use height-2: four stations 0..3 share the
	// height-2 link of capacity min(4, M)=4 — all pass. With M=2 though,
	// every level is capped at 2.
	sys := NewSystem(DefaultConfig(8, MConst(2)))
	var reqs []Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, Request{Station: i, Addr: isa.Word(i), Age: int64(i)})
	}
	grants := sys.Arbitrate(reqs)
	if len(grants) != 2 {
		t.Errorf("granted %d, want 2 under M=2", len(grants))
	}
}

func TestPerfectCacheLatency(t *testing.T) {
	cfg := DefaultConfig(16, MLinear()) // 4 levels
	sys := NewSystem(cfg)
	g := sys.Arbitrate([]Request{{Station: 0, Addr: 42}})
	want := 2*4*cfg.HopLatency + cfg.HitLatency
	if len(g) != 1 || g[0].Latency != want {
		t.Errorf("latency = %+v, want %d", g, want)
	}
	st := sys.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Accesses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheMissesAndRefills(t *testing.T) {
	cfg := Config{Leaves: 4, Bandwidth: MLinear(), LinesPerBank: 2,
		HitLatency: 1, MissLatency: 10, HopLatency: 0}
	sys := NewSystem(cfg)
	// First touch: miss. Second touch same word: hit. Conflicting word
	// mapping to the same line: miss again.
	lat := func(addr isa.Word) int {
		return sys.Arbitrate([]Request{{Station: 0, Addr: addr}})[0].Latency
	}
	if l := lat(0); l != 10 {
		t.Errorf("cold miss latency %d, want 10", l)
	}
	if l := lat(0); l != 1 {
		t.Errorf("hit latency %d, want 1", l)
	}
	banks := sys.Banks()
	conflict := isa.Word(banks * cfg.LinesPerBank) // same bank, same line, different tag
	if l := lat(conflict); l != 10 {
		t.Errorf("conflict miss latency %d, want 10", l)
	}
	if l := lat(0); l != 10 {
		t.Errorf("evicted line should miss again: %d, want 10", l)
	}
	st := sys.Stats()
	if st.Misses != 3 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 3 misses 1 hit", st)
	}
}

func TestSingleLeafSystem(t *testing.T) {
	sys := NewSystem(DefaultConfig(1, MLinear()))
	g := sys.Arbitrate([]Request{{Station: 0, Addr: 7}})
	if len(g) != 1 {
		t.Fatal("single-leaf request should be granted")
	}
	if g[0].Latency != DefaultConfig(1, MLinear()).HitLatency {
		t.Errorf("latency %d, want bare hit latency", g[0].Latency)
	}
}

func TestBankOfInterleaving(t *testing.T) {
	sys := NewSystem(DefaultConfig(8, MConst(4)))
	for addr := isa.Word(0); addr < 32; addr++ {
		if got := sys.BankOf(addr); got != int(addr)%4 {
			t.Errorf("BankOf(%d) = %d", addr, got)
		}
	}
}
