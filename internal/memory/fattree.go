package memory

import (
	"fmt"
	"math"
	"sort"

	"ultrascalar/internal/isa"
)

// MFunc gives the memory bandwidth M(n) as a function of the number of
// stations n (paper Section 1, parameter 3). The paper analyzes three
// regimes; these constructors cover them plus the constant case.
type MFunc struct {
	// Name describes the regime for reports.
	Name string
	// F computes M(n). Results are clamped to [1, n]: the paper assumes
	// M(n) = O(n) "since it makes no sense to provide more memory
	// bandwidth than the total instruction issue rate".
	F func(n int) int
}

// Of evaluates the bandwidth for n stations, clamped to [1, n].
func (m MFunc) Of(n int) int {
	v := m.F(n)
	if v < 1 {
		v = 1
	}
	if v > n {
		v = n
	}
	return v
}

// MConst is M(n) = c, a sublinear regime (Case 1 of the paper's X(n)
// recurrence solution for any fixed c).
func MConst(c int) MFunc {
	return MFunc{Name: fmt.Sprintf("M(n)=%d", c), F: func(int) int { return c }}
}

// MPow is M(n) = ceil(c·n^p): p < 1/2 is the paper's Case 1, p = 1/2
// Case 2, p > 1/2 Case 3.
func MPow(c float64, p float64) MFunc {
	return MFunc{
		Name: fmt.Sprintf("M(n)=%.3g*n^%.3g", c, p),
		F:    func(n int) int { return int(math.Ceil(c * math.Pow(float64(n), p))) },
	}
}

// MLinear is M(n) = n, full memory bandwidth.
func MLinear() MFunc {
	return MFunc{Name: "M(n)=n", F: func(n int) int { return n }}
}

// Config describes the timing model of the memory subsystem: an
// interleaved data cache of Banks direct-mapped banks, reached through a
// fat tree whose link at height h has capacity min(2^h, M) accesses per
// cycle, so the root admits M(n) memory operations per cycle.
type Config struct {
	Leaves       int   // number of stations n (rounded up to a power of two internally)
	Bandwidth    MFunc // M(n)
	Banks        int   // cache banks; 0 means M(n) banks
	LinesPerBank int   // direct-mapped lines per bank; 0 means a perfect cache
	HitLatency   int   // cycles for a bank hit, excluding network hops
	MissLatency  int   // cycles for a bank miss
	HopLatency   int   // cycles per tree level each way; 0 disables network latency

	// Distributed cluster caches (paper Section 7: "One way to reduce the
	// bandwidth requirements may be to use a cache distributed among the
	// clusters"). When ClusterSize > 0, each aligned group of ClusterSize
	// leaves shares a small direct-mapped cache; loads that hit it bypass
	// the fat tree entirely. Stores write through and invalidate the
	// other clusters' copies.
	ClusterSize       int // stations per cluster; 0 disables cluster caches
	ClusterLines      int // direct-mapped lines per cluster cache
	ClusterHitLatency int // cycles for a cluster-cache hit
}

// DefaultConfig returns a reasonable timing model for n stations under
// bandwidth m: perfect cache with 2-cycle hits and 1-cycle tree hops.
func DefaultConfig(n int, m MFunc) Config {
	return Config{Leaves: n, Bandwidth: m, HitLatency: 2, MissLatency: 20, HopLatency: 1}
}

// Request is one data-memory access submitted for arbitration.
type Request struct {
	Station int      // leaf index of the requesting station
	Addr    isa.Word // word address
	Store   bool
	Age     int64 // program-order sequence number; lower = older = higher priority
}

// Stats accumulates memory-system counters.
type Stats struct {
	Accesses    int64
	Hits        int64
	Misses      int64
	Stalls      int64 // requests denied in some cycle due to link or bank contention
	ClusterHits int64 // loads served by a distributed cluster cache
}

// System is the timing model. Functional data stays in the Backing the
// engine owns; System only answers "when" and "whether this cycle".
type System struct {
	cfg    Config
	levels int // tree height: ceil(log2(leaves))
	banks  int
	caps   []int     // per level, link capacity
	tags   [][]int64 // per bank, per line: resident tag (-1 empty)
	// clusterTags holds, per cluster, the word address resident in each
	// cluster-cache line (-1 empty).
	clusterTags [][]int64
	stats       Stats
}

// NewSystem builds the timing model for a given configuration.
func NewSystem(cfg Config) *System {
	if cfg.Leaves < 1 {
		cfg.Leaves = 1
	}
	levels := 0
	for 1<<levels < cfg.Leaves {
		levels++
	}
	m := cfg.Bandwidth.Of(cfg.Leaves)
	banks := cfg.Banks
	if banks == 0 {
		banks = m
	}
	s := &System{cfg: cfg, levels: levels, banks: banks}
	s.caps = make([]int, levels+1)
	for h := 0; h <= levels; h++ {
		c := 1 << h
		if c > m {
			c = m
		}
		s.caps[h] = c
	}
	if cfg.LinesPerBank > 0 {
		s.tags = make([][]int64, banks)
		for b := range s.tags {
			s.tags[b] = make([]int64, cfg.LinesPerBank)
			for i := range s.tags[b] {
				s.tags[b][i] = -1
			}
		}
	}
	if cfg.ClusterSize > 0 {
		if cfg.ClusterLines == 0 {
			cfg.ClusterLines = 64
			s.cfg.ClusterLines = 64
		}
		if cfg.ClusterHitLatency == 0 {
			s.cfg.ClusterHitLatency = 1
		}
		clusters := (cfg.Leaves + cfg.ClusterSize - 1) / cfg.ClusterSize
		s.clusterTags = make([][]int64, clusters)
		for c := range s.clusterTags {
			s.clusterTags[c] = make([]int64, s.cfg.ClusterLines)
			for i := range s.clusterTags[c] {
				s.clusterTags[c][i] = -1
			}
		}
	}
	return s
}

// Banks returns the number of interleaved cache banks.
func (s *System) Banks() int { return s.banks }

// Stats returns the accumulated counters.
func (s *System) Stats() Stats { return s.stats }

// BankOf returns the interleaved bank serving a word address.
func (s *System) BankOf(addr isa.Word) int { return int(addr) % s.banks }

// Grant describes one admitted request: it completes Latency cycles after
// the arbitration cycle.
type Grant struct {
	Req     Request
	Latency int
}

// Network arbitrates the memory requests of one cycle. Both the fat tree
// (System) and the Butterfly implement it; the execution engine accepts
// either.
type Network interface {
	Arbitrate(reqs []Request) []Grant
}

// Arbitrate admits as many of this cycle's requests as the fat tree and
// the banks allow, oldest first (the engines submit in age order but
// Arbitrate sorts defensively). Denied requests must be resubmitted next
// cycle. Each admitted request consumes one capacity unit on every tree
// level it crosses (leaves are at height 0; the root link, height
// levels, is crossed by every request since the banks sit beyond the
// root), and each bank serves one request per cycle.
func (s *System) Arbitrate(reqs []Request) []Grant {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Age < reqs[j].Age })
	// usage[h] counts, per node at height h, admitted crossings this cycle.
	usage := make([]map[int]int, s.levels+1)
	for h := range usage {
		usage[h] = make(map[int]int)
	}
	bankUse := make(map[int]int)
	var grants []Grant
	for _, r := range reqs {
		if s.clusterTags != nil && !r.Store && s.clusterHit(r) {
			// Load hit in the cluster cache: no fat-tree traversal.
			s.stats.Accesses++
			s.stats.ClusterHits++
			grants = append(grants, Grant{Req: r, Latency: s.cfg.ClusterHitLatency})
			continue
		}
		bank := s.BankOf(r.Addr)
		ok := bankUse[bank] < 1
		if ok {
			for h := 1; h <= s.levels; h++ {
				node := r.Station >> h
				if usage[h][node] >= s.caps[h] {
					ok = false
					break
				}
			}
		}
		if !ok {
			s.stats.Stalls++
			continue
		}
		bankUse[bank]++
		for h := 1; h <= s.levels; h++ {
			usage[h][r.Station>>h]++
		}
		s.clusterUpdate(r)
		grants = append(grants, Grant{Req: r, Latency: s.latency(r.Addr)})
	}
	return grants
}

// clusterHit reports whether the request's cluster cache holds its word.
func (s *System) clusterHit(r Request) bool {
	cl := r.Station / s.cfg.ClusterSize
	line := int(r.Addr) % s.cfg.ClusterLines
	return s.clusterTags[cl][line] == int64(r.Addr)
}

// clusterUpdate applies the cluster-cache effects of a granted request:
// a load fills its cluster's line; a store writes through, updating its
// own cluster's copy and invalidating the other clusters' (a simple
// write-invalidate protocol).
func (s *System) clusterUpdate(r Request) {
	if s.clusterTags == nil {
		return
	}
	cl := r.Station / s.cfg.ClusterSize
	line := int(r.Addr) % s.cfg.ClusterLines
	if r.Store {
		for c := range s.clusterTags {
			if c != cl && s.clusterTags[c][line] == int64(r.Addr) {
				s.clusterTags[c][line] = -1
			}
		}
	}
	s.clusterTags[cl][line] = int64(r.Addr)
}

// latency computes the service time of an admitted request: the round trip
// through the tree plus the bank hit or miss time, updating the cache tags.
func (s *System) latency(addr isa.Word) int {
	s.stats.Accesses++
	lat := 2 * s.levels * s.cfg.HopLatency
	if s.tags == nil {
		s.stats.Hits++
		return lat + s.cfg.HitLatency
	}
	bank := s.BankOf(addr)
	idx := int(addr) / s.banks
	line := idx % s.cfg.LinesPerBank
	tag := int64(idx / s.cfg.LinesPerBank)
	if s.tags[bank][line] == tag {
		s.stats.Hits++
		return lat + s.cfg.HitLatency
	}
	s.stats.Misses++
	s.tags[bank][line] = tag
	return lat + s.cfg.MissLatency
}

// RootBandwidth returns the admitted-per-cycle ceiling at the tree root,
// i.e. M(n) after clamping.
func (s *System) RootBandwidth() int { return s.caps[s.levels] }
