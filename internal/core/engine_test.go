package core

import (
	"errors"
	"testing"

	"ultrascalar/internal/asm"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/workload"
)

// crossCheck runs a workload on the engine and on the golden interpreter
// and requires identical architectural state.
func crossCheck(t *testing.T, w workload.Workload, cfg Config) *Result {
	t.Helper()
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{NumRegs: cfg.NumRegs})
	if err != nil {
		t.Fatalf("%s: golden: %v", w.Name, err)
	}
	got, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("%s: engine: %v", w.Name, err)
	}
	for r := range want.Regs {
		if got.Regs[r] != want.Regs[r] {
			t.Errorf("%s: r%d = %d, golden %d", w.Name, r, got.Regs[r], want.Regs[r])
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Errorf("%s: memory mismatch: %s", w.Name, got.Mem.Diff(want.Mem))
	}
	if got.Stats.Retired != int64(want.Executed) {
		t.Errorf("%s: retired %d, golden executed %d", w.Name, got.Stats.Retired, want.Executed)
	}
	return got
}

// TestFigure3Timing reproduces the paper's Figure 3 exactly: the
// eight-instruction sequence in an 8-station window, with division taking
// 10 cycles, multiplication 3 and addition 1, issues with precisely the
// timing the paper draws.
func TestFigure3Timing(t *testing.T) {
	w := workload.Figure3Sequence()
	init := make([]isa.Word, isa.NumRegs)
	// Figure 1's snapshot values: R0=10 initially; divide operands chosen
	// so R3=20; R5=50, R6=8 so that R0 becomes 42.
	init[0], init[1], init[2] = 10, 100, 5
	init[4], init[5], init[6], init[7] = 3, 50, 8, 2
	res, err := Run(w.Prog, memory.NewFlat(), Config{
		Window: 8, Granularity: 1, InitRegs: init, KeepTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected [Issue, Done) intervals, in program order (paper Figure 3):
	//   R3=R1/R2   cycles 0-10   (div, 10 cycles)
	//   R0=R0+R3   cycle  10-11
	//   R1=R5+R6   cycle  0-1
	//   R1=R0+R1   cycle  11-12  (the last instruction; ends at 12)
	//   R2=R5*R6   cycles 0-3    (mul, 3 cycles)
	//   R2=R2+R4   cycle  3-4
	//   R0=R5-R6   cycle  0-1
	//   R4=R0+R7   cycle  1-2
	want := [][2]int64{{0, 10}, {10, 11}, {0, 1}, {11, 12}, {0, 3}, {3, 4}, {0, 1}, {1, 2}}
	if len(res.Timeline) < 8 {
		t.Fatalf("timeline has %d records", len(res.Timeline))
	}
	for i, iv := range want {
		rec := res.Timeline[i]
		if rec.Issue != iv[0] || rec.Done != iv[1] {
			t.Errorf("inst %d (%s): [%d,%d), want [%d,%d)",
				i, rec.Inst, rec.Issue, rec.Done, iv[0], iv[1])
		}
	}
	// Architectural outcome matches the Figure 1 snapshot: R0 ends at 42.
	if res.Regs[0] != 42 {
		t.Errorf("R0 = %d, want 42", res.Regs[0])
	}
	if res.Regs[3] != 20 {
		t.Errorf("R3 = %d, want 20", res.Regs[3])
	}
}

// TestFigure3IdenticalAcrossGranularities verifies the paper's claim that
// all three processors extract identical ILP on a window-resident
// sequence: with the whole sequence in flight, Ultrascalar I (g=1),
// hybrid (g=4) and Ultrascalar II (g=8) produce the same timing diagram.
func TestFigure3IdenticalAcrossGranularities(t *testing.T) {
	w := workload.Figure3Sequence()
	var base []InstRecord
	for _, g := range []int{1, 4, 8} {
		res, err := Run(w.Prog, memory.NewFlat(), Config{
			Window: 8, Granularity: g, KeepTimeline: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs := res.Timeline[:8]
		if base == nil {
			base = recs
			continue
		}
		for i := range recs {
			if recs[i].Issue != base[i].Issue || recs[i].Done != base[i].Done {
				t.Errorf("g=%d inst %d: [%d,%d) != g=1 [%d,%d)",
					g, i, recs[i].Issue, recs[i].Done, base[i].Issue, base[i].Done)
			}
		}
	}
}

func TestKernelsMatchGoldenAllGranularities(t *testing.T) {
	for _, w := range workload.Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cfg := range []Config{
				{Window: 8, Granularity: 1},
				{Window: 8, Granularity: 4},
				{Window: 8, Granularity: 8},
				{Window: 32, Granularity: 1},
				{Window: 32, Granularity: 8},
				{Window: 1, Granularity: 1},
			} {
				crossCheck(t, w, cfg)
			}
		})
	}
}

func TestExtendedKernelsMatchGolden(t *testing.T) {
	for _, w := range workload.ExtendedKernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			crossCheck(t, w, Config{Window: 16, Granularity: 4})
			crossCheck(t, w, Config{Window: 16, Granularity: 4, MemRenaming: true})
		})
	}
}

func TestSyntheticMatchGolden(t *testing.T) {
	ws := []workload.Workload{
		workload.Chain(60),
		workload.Parallel(60, 16),
		workload.MixedILP(150, 16, 6, 1),
		workload.MixedILP(150, 16, 32, 2),
		workload.MemStream(25),
		workload.LoadBurst(40, 32),
		workload.Branchy(40, true),
		workload.Branchy(40, false),
	}
	for _, w := range ws {
		for _, g := range []int{1, 4, 16} {
			crossCheck(t, w, Config{Window: 16, Granularity: g})
		}
	}
}

// TestChainVsParallelIPC: a dependence chain runs at IPC 1 regardless of
// window; independent instructions run at IPC near the steady-state bound.
func TestChainVsParallelIPC(t *testing.T) {
	chain := crossCheck(t, workload.Chain(200), Config{Window: 16, Granularity: 1})
	if ipc := chain.Stats.IPC(); ipc > 1.1 {
		t.Errorf("chain IPC %.2f should be about 1", ipc)
	}
	par := crossCheck(t, workload.Parallel(256, 32), Config{Window: 16, Granularity: 1})
	if ipc := par.Stats.IPC(); ipc < 4 {
		t.Errorf("parallel IPC %.2f should be high with a 16-wide window", ipc)
	}
	if par.Stats.IPC() < 2*chain.Stats.IPC() {
		t.Errorf("parallel (%.2f) should beat chain (%.2f)", par.Stats.IPC(), chain.Stats.IPC())
	}
}

// TestBatchRefillPenalty reproduces the paper's Section 4 observation:
// the Ultrascalar II "is less efficient than the Ultrascalar I because its
// datapath does not wrap around. As a result, stations idle waiting for
// everyone to finish before refilling."
func TestBatchRefillPenalty(t *testing.T) {
	w := workload.DotProduct(50)
	u1, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 16})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(u1.Stats.Cycles < hy.Stats.Cycles && hy.Stats.Cycles < u2.Stats.Cycles) {
		t.Errorf("cycle counts should order UltraI (%d) < hybrid (%d) < UltraII (%d)",
			u1.Stats.Cycles, hy.Stats.Cycles, u2.Stats.Cycles)
	}
}

func TestMispredictRecovery(t *testing.T) {
	// A data-dependent unpredictable branch pattern: results still match
	// the golden model, and mispredictions are recorded.
	res := crossCheck(t, workload.Branchy(100, false), Config{Window: 16, Granularity: 1})
	if res.Stats.Mispredicts == 0 {
		t.Error("expected at least one misprediction on the random pattern")
	}
	if res.Stats.Squashed == 0 {
		t.Error("expected squashed wrong-path instructions")
	}
	if res.Stats.Fetched <= res.Stats.Retired {
		t.Error("fetched should exceed retired when squashing")
	}
}

func TestJalrThroughBTB(t *testing.T) {
	// Call the same function twice: first call stalls on the cold BTB,
	// second call hits.
	w := workload.Workload{Name: "calls", Prog: asm.MustAssemble(`
		li r1, 1
		jal r31, fn
		li r1, 2
		jal r31, fn
		halt
	fn:
		add r2, r2, r1
		jalr r0, r31, 0
	`).Insts}
	res := crossCheck(t, w, Config{Window: 8, Granularity: 1})
	if res.Regs[2] != 3 {
		t.Errorf("r2 = %d, want 3", res.Regs[2])
	}
}

func TestMemorySystemIntegration(t *testing.T) {
	// Run the memory-heavy workloads through the fat-tree model with
	// narrow bandwidth; results must still match the golden model.
	for _, m := range []memory.MFunc{memory.MConst(1), memory.MPow(1, 0.5), memory.MLinear()} {
		w := workload.MemStream(30)
		sys := memory.NewSystem(memory.DefaultConfig(16, m))
		res := crossCheck(t, w, Config{Window: 16, Granularity: 1, MemSystem: sys})
		if res.Stats.Loads == 0 || res.Stats.Stores == 0 {
			t.Error("expected memory traffic")
		}
	}
}

// TestButterflyIntegration: the engine runs correctly over the butterfly
// network, and butterfly blocking costs cycles versus an unconstrained
// run.
func TestButterflyIntegration(t *testing.T) {
	for _, w := range []workload.Workload{workload.MemStream(30), workload.VecSum(40)} {
		bf := memory.NewButterfly(16, 4, 1, 2)
		res := crossCheck(t, w, Config{Window: 16, Granularity: 1, MemSystem: bf})
		free, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Cycles < free.Stats.Cycles {
			t.Errorf("%s: butterfly (%d cycles) cannot beat unconstrained (%d)",
				w.Name, res.Stats.Cycles, free.Stats.Cycles)
		}
	}
}

// TestBandwidthThrottling: with M(n)=1 a load burst takes proportionally
// longer than with full bandwidth.
func TestBandwidthThrottling(t *testing.T) {
	w := workload.LoadBurst(128, 32)
	run := func(m memory.MFunc) int64 {
		// HopLatency 0 so bandwidth, not latency, is the limiter.
		cfg := memory.DefaultConfig(16, m)
		cfg.HopLatency = 0
		sys := memory.NewSystem(cfg)
		res, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1, MemSystem: sys})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	narrow := run(memory.MConst(1))
	wide := run(memory.MLinear())
	if narrow < 2*wide {
		t.Errorf("M=1 (%d cycles) should be much slower than M=n (%d cycles)", narrow, wide)
	}
}

// TestStoreLoadSerialization: a store followed by a dependent load through
// memory must forward through memory correctly under all granularities.
func TestStoreLoadSerialization(t *testing.T) {
	w := workload.Workload{Name: "st-ld", Prog: asm.MustAssemble(`
		li r1, 500
		li r2, 77
		sw r2, (r1)
		lw r3, (r1)
		addi r3, r3, 1
		sw r3, 1(r1)
		lw r4, 1(r1)
		halt
	`).Insts}
	for _, g := range []int{1, 2, 8} {
		res := crossCheck(t, w, Config{Window: 8, Granularity: g})
		if res.Regs[4] != 78 {
			t.Errorf("g=%d: r4 = %d, want 78", g, res.Regs[4])
		}
	}
}

func TestWindowOne(t *testing.T) {
	// A 1-station window degenerates to sequential execution.
	res := crossCheck(t, workload.Fib(10), Config{Window: 1, Granularity: 1})
	if ipc := res.Stats.IPC(); ipc > 1.01 {
		t.Errorf("window-1 IPC %.3f should be <= 1", ipc)
	}
}

func TestErrors(t *testing.T) {
	halt := []isa.Inst{{Op: isa.OpHalt}}
	if _, err := Run(halt, memory.NewFlat(), Config{Window: 0}); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := Run(halt, memory.NewFlat(), Config{Window: 8, Granularity: 3}); err == nil {
		t.Error("granularity not dividing window should fail")
	}
	if _, err := Run(halt, memory.NewFlat(), Config{Window: 8, NumRegs: 99}); err == nil {
		t.Error("bad register count should fail")
	}
	if _, err := Run(halt, memory.NewFlat(), Config{Window: 8, InitRegs: []isa.Word{1}}); err == nil {
		t.Error("short InitRegs should fail")
	}
	// Program that never halts.
	loop := asm.MustAssemble("loop: j loop").Insts
	if _, err := Run(loop, memory.NewFlat(), Config{Window: 4, MaxCycles: 500}); !errors.Is(err, ErrNoHalt) {
		t.Errorf("want ErrNoHalt, got %v", err)
	}
	// Program that falls off the end.
	off := asm.MustAssemble("nop").Insts
	if _, err := Run(off, memory.NewFlat(), Config{Window: 4}); !errors.Is(err, ErrPCOutOfRange) {
		t.Errorf("want ErrPCOutOfRange, got %v", err)
	}
	// Register out of machine range.
	badRead := []isa.Inst{{Op: isa.OpAdd, Rd: 1, Rs1: 9, Rs2: 0}, {Op: isa.OpHalt}}
	if _, err := Run(badRead, memory.NewFlat(), Config{Window: 4, NumRegs: 8}); err == nil {
		t.Error("register read out of range should fail")
	}
	badWrite := []isa.Inst{{Op: isa.OpLi, Rd: 9}, {Op: isa.OpHalt}}
	if _, err := Run(badWrite, memory.NewFlat(), Config{Window: 4, NumRegs: 8}); err == nil {
		t.Error("register write out of range should fail")
	}
}

// TestOperandLocality exercises the Section 7 statistic: on a serial
// chain, every operand comes from the immediately preceding station.
func TestOperandLocality(t *testing.T) {
	res, err := Run(workload.Chain(100).Prog, memory.NewFlat(), Config{Window: 16, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OperandFromStation[1] < 90 {
		t.Errorf("chain should source operands at distance 1: %v (committed %d)",
			res.Stats.OperandFromStation, res.Stats.OperandFromCommitted)
	}
}

func TestDeterminism(t *testing.T) {
	w := workload.MixedILP(300, 16, 8, 3)
	cfg := Config{Window: 32, Granularity: 4}
	a, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Retired != b.Stats.Retired {
		t.Errorf("runs differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestStatsSanity(t *testing.T) {
	res := crossCheck(t, workload.Fib(15), Config{Window: 8, Granularity: 1})
	s := res.Stats
	if s.Cycles <= 0 || s.Retired <= 0 || s.Fetched < s.Retired {
		t.Errorf("implausible stats %+v", s)
	}
	if s.IPC() <= 0 || s.IPC() > 8 {
		t.Errorf("IPC %.2f out of range", s.IPC())
	}
	if s.StationBusy <= 0 {
		t.Error("station busy should accumulate")
	}
	if (Stats{}).IPC() != 0 || (Stats{}).MeanOccupancy() != 0 {
		t.Error("empty stats should report zeros")
	}
	// Occupancy histogram: right length, sums to cycles, consistent with
	// StationBusy.
	if len(s.Occupancy) != 9 {
		t.Fatalf("occupancy length %d, want 9", len(s.Occupancy))
	}
	var cyc, busy int64
	for k, c := range s.Occupancy {
		cyc += c
		busy += int64(k) * c
	}
	if cyc != s.Cycles {
		t.Errorf("occupancy sums to %d cycles, want %d", cyc, s.Cycles)
	}
	if busy != s.StationBusy {
		t.Errorf("occupancy-weighted busy %d, want %d", busy, s.StationBusy)
	}
	if mo := s.MeanOccupancy(); mo <= 0 || mo > 8 {
		t.Errorf("mean occupancy %.2f out of range", mo)
	}
}
