// Package core implements the shared out-of-order execution engine of the
// three Ultrascalar processors — the paper's primary contribution viewed
// architecturally. All three processors "implement identical instruction
// sets, with identical scheduling policies"; they differ only in VLSI
// complexity and in the granularity at which finished execution stations
// can be reused:
//
//   - Ultrascalar I: granularity 1 — a station refills as soon as it and
//     all earlier stations have finished (Section 2).
//   - Ultrascalar II: granularity n — the whole batch drains before
//     refilling ("stations idle waiting for everyone to finish before
//     refilling", Section 4).
//   - Hybrid: granularity C — a cluster of C stations refills as a unit,
//     behaving "just like an execution station in the Ultrascalar I"
//     (Section 6).
//
// The engine is a cycle-accurate simulator of the datapath semantics of
// Sections 2 and 4: per-register cyclic-segmented-parallel-prefix
// forwarding with single-cycle full-window propagation, the three AND-CSPP
// sequencing circuits (completion/deallocation, store serialization, load
// serialization), the commit CSPP for branch speculation, and single-cycle
// misprediction recovery.
package core

import (
	"errors"
	"fmt"

	"ultrascalar/internal/branch"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/obs"
)

// MaxWindow bounds Config.Window. The paper's scaling arguments stop at a
// few thousand stations; the bound exists so hostile configurations (fuzzed
// or file-sourced) fail fast instead of attempting a multi-gigabyte slab.
const MaxWindow = 1 << 20

// Config describes one processor instance.
type Config struct {
	// Window is n, the number of execution stations (issue width = window
	// size; the paper scales them together).
	Window int
	// Granularity is the station-reuse granularity: 1 for Ultrascalar I,
	// Window for Ultrascalar II, the cluster size C for the hybrid. Must
	// divide Window.
	Granularity int
	// NumRegs is L, the number of logical registers (default isa.NumRegs).
	NumRegs int
	// Lat gives instruction latencies (default isa.DefaultLatencies).
	Lat isa.Latencies
	// Predictor predicts conditional branch directions (default
	// bimodal with 1024 entries).
	Predictor branch.Predictor
	// BTB predicts indirect-jump targets (default 64 entries).
	BTB *branch.BTB
	// MemSystem is the memory-network timing model (the fat tree of
	// memory.System or the memory.Butterfly); nil means unlimited
	// bandwidth with Lat.Load / Lat.Store fixed latencies.
	MemSystem memory.Network
	// InitRegs optionally sets the initial committed register values.
	InitRegs []isa.Word
	// MaxCycles bounds the simulation (default 1<<24).
	MaxCycles int64
	// KeepTimeline records per-instruction issue/completion cycles.
	KeepTimeline bool

	// NumALUs limits the pool of shared arithmetic units: at most NumALUs
	// non-memory instructions may be executing at once, allocated oldest
	// first (the prioritized CSPP scheduler of Henry & Kuszmaul,
	// Ultrascalar Memo 2, which the paper's Section 7 invokes: "a hybrid
	// Ultrascalar with a window-size of 128 and 16 shared ALUs ... should
	// fit easily within a chip 1 cm on a side"). 0 means one ALU per
	// station, the paper's baseline design.
	NumALUs int

	// ForwardLatency models the pipelined/self-timed datapath of Section
	// 7: the extra forwarding cycles a value needs to reach a consumer d
	// dynamic instructions away. nil means the paper's baseline global
	// single-phase clock, where "all communications between components
	// [complete] in one clock cycle" (extra = 0 for all d). With, e.g.,
	// ceil(log2 d)-shaped latency, "a program could run faster if most of
	// its instructions depend on their immediate predecessors rather than
	// on far-previous instructions."
	ForwardLatency func(d int) int

	// MemRenaming enables store-to-load forwarding through the window —
	// the memory-renaming hardware of Section 7 ("which can be
	// implemented by CSPP circuits"), reducing memory-bandwidth pressure.
	MemRenaming bool

	// Fetch selects the instruction-fetch model (default FetchIdeal).
	Fetch FetchModel
	// FetchWidth caps instructions fetched per cycle (0 = Window; the
	// paper assumes "the issue width and the instruction-fetch width
	// scale together").
	FetchWidth int
	// TraceSetBits and TraceLen size the trace cache for FetchTrace
	// (defaults 8 and 16).
	TraceSetBits, TraceLen int

	// ReturnStack, when positive, enables a return-address stack of that
	// depth: JAL pushes its return address at fetch and JALR predicts by
	// popping, falling back to the BTB on an empty stack. Calls and
	// returns then predict perfectly on well-nested code, where the BTB
	// alone mispredicts every return whose call site changed.
	ReturnStack int

	// Tracer, when non-nil, receives per-station pipeline events
	// (fetch/issue/exec/retire/squash/forward with cycle, PC, slot and
	// operand-distance payloads). Recording is allocation-free — events
	// land in the tracer's preallocated slab — and a nil Tracer costs
	// only a per-event nil check, keeping the measured hot path
	// zero-alloc. See internal/obs.
	Tracer *obs.Tracer

	// Metrics, when non-nil, receives engine gauges (occupancy, IPC,
	// retired/fetched/squashed/mispredict counts) snapshotted every
	// MetricsEvery cycles and once more at halt. Snapshots are taken
	// outside the per-cycle hot functions, so the hotpathalloc contract
	// is unaffected.
	Metrics *obs.Registry
	// MetricsEvery is the snapshot period in cycles (default 1024).
	MetricsEvery int64

	// Watchdog is the livelock threshold: when no instruction has retired
	// for Watchdog cycles and the engine can make no further progress
	// (nothing executing, nothing ready to issue, fetch blocked), Run
	// returns ErrLivelock with a diagnostic snapshot instead of spinning
	// to MaxCycles. During a fault-injection run the watchdog instead
	// triggers squash-and-replay recovery, so a fault that starves
	// retirement costs cycles rather than the whole run. 0 selects the
	// default, max(4*Window, 64) — four full window drains, floored so
	// tiny windows tolerate self-timed forwarding delays and long-latency
	// instructions. Negative disables the watchdog.
	Watchdog int64

	// FaultPlan, when non-nil, arms deterministic fault injection: the
	// plan's faults corrupt microarchitectural state at their scheduled
	// cycles (see internal/fault for the sites). Injection is a pure
	// function of (program, config, plan), so identical plans reproduce
	// identical runs. A nil plan costs one pointer check per cycle.
	FaultPlan *fault.Plan
	// FaultDetect selects the modeled detection hardware for faulted
	// runs: none (corruption commits silently), parity (per-value parity
	// checked at the commit port), or golden (every retiring instruction
	// cross-checked against the in-order machine of internal/ref). A
	// detected fault is recovered by squashing from the faulty
	// instruction and replaying — the engine's misprediction machinery
	// pointed at a corrupted station instead of a wrong-path branch.
	FaultDetect fault.Detect
	// FaultLog, when non-nil, receives the fault lifecycle records
	// (injections, detections, recoveries, watchdog fires).
	FaultLog *fault.Log
}

// FetchModel selects the instruction-fetch mechanism.
type FetchModel int

// The fetch models.
const (
	// FetchIdeal supplies up to FetchWidth instructions per cycle along
	// the predicted path regardless of taken branches — the paper's
	// baseline assumption.
	FetchIdeal FetchModel = iota
	// FetchBlock supplies one sequential block per cycle: fetch stops at
	// the first predicted-taken branch or jump, like a conventional
	// instruction cache.
	FetchBlock
	// FetchTrace backs block fetch with an instruction trace cache
	// (Rotenberg et al.; Patel et al. — the mechanism the paper cites for
	// feeding a wide window): a hit supplies a whole recorded trace,
	// spanning taken branches, in one cycle.
	FetchTrace
)

// String names the fetch model.
func (f FetchModel) String() string {
	switch f {
	case FetchIdeal:
		return "ideal"
	case FetchBlock:
		return "block"
	case FetchTrace:
		return "trace-cache"
	default:
		return "fetch(?)"
	}
}

// Errors returned by Run.
var (
	ErrNoHalt       = errors.New("core: cycle limit exceeded without halt")
	ErrPCOutOfRange = errors.New("core: fetch ran out of the program without halt")
	// ErrLivelock is the sentinel wrapped by LivelockError when the
	// watchdog fires: no instruction retired for Config.Watchdog cycles
	// and the engine can make no further progress.
	ErrLivelock = errors.New("core: no retirement progress (livelock)")
)

// LivelockError is the watchdog's diagnostic snapshot: where the engine
// was stuck and what the station ring looked like when it gave up. It
// wraps ErrLivelock, so errors.Is(err, ErrLivelock) matches.
type LivelockError struct {
	Cycle      int64 // cycle the watchdog fired
	LastRetire int64 // cycle of the most recent retirement (-1 if none ever)
	FetchPC    int   // next fetch target
	HeadPC     int   // PC of the oldest unretired instruction (-1 if window empty)
	HeadSeq    int64 // its dynamic sequence number (-1 if window empty)
	Occupied   int   // occupied stations
	Window     int   // station count
	Started    int   // stations issued but not finished
	Ready      int   // stations with operands ready, not yet issued
	Finished   int   // stations finished but not retired
}

// Error renders the snapshot on one line.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("core: livelock at cycle %d: no retire since cycle %d "+
		"(head pc=%d seq=%d, fetch pc=%d, stations %d/%d occupied: %d started, %d ready, %d finished)",
		e.Cycle, e.LastRetire, e.HeadPC, e.HeadSeq, e.FetchPC,
		e.Occupied, e.Window, e.Started, e.Ready, e.Finished)
}

// Unwrap exposes the ErrLivelock sentinel.
func (e *LivelockError) Unwrap() error { return ErrLivelock }

// CanceledError is returned by RunCtx when the run context is canceled
// or its deadline passes: the simulation was abandoned mid-run and no
// architectural state was produced. It wraps the context's error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) distinguish a deliberate cancellation from
// a blown deadline.
type CanceledError struct {
	Cycle int64 // cycle the cancellation probe observed the context done
	Err   error // the context's ctx.Err()
}

// Error renders the cancellation with the cycle it was observed at.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: run canceled at cycle %d: %v", e.Cycle, e.Err)
}

// Unwrap exposes the context error for errors.Is.
func (e *CanceledError) Unwrap() error { return e.Err }

func (c *Config) normalize() error {
	if c.Window < 1 {
		return fmt.Errorf("core: window must be >= 1, got %d", c.Window)
	}
	if c.Window > MaxWindow {
		return fmt.Errorf("core: window %d exceeds MaxWindow %d", c.Window, MaxWindow)
	}
	if c.Granularity == 0 {
		c.Granularity = 1
	}
	if c.Granularity < 1 || c.Window%c.Granularity != 0 {
		return fmt.Errorf("core: granularity %d must divide window %d", c.Granularity, c.Window)
	}
	if c.NumRegs == 0 {
		c.NumRegs = isa.NumRegs
	}
	if c.NumRegs < 1 || c.NumRegs > isa.MaxRegs {
		return fmt.Errorf("core: bad register count %d", c.NumRegs)
	}
	if c.Lat == (isa.Latencies{}) {
		c.Lat = isa.DefaultLatencies()
	}
	if c.Predictor == nil {
		c.Predictor = branch.Bimodal(10)
	}
	if c.BTB == nil {
		c.BTB = branch.NewBTB(6)
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 1 << 24
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("core: MaxCycles must be >= 0, got %d", c.MaxCycles)
	}
	if c.InitRegs != nil && len(c.InitRegs) != c.NumRegs {
		return fmt.Errorf("core: InitRegs has %d values, want %d", len(c.InitRegs), c.NumRegs)
	}
	if c.NumALUs < 0 {
		return fmt.Errorf("core: NumALUs must be >= 0, got %d", c.NumALUs)
	}
	if c.FetchWidth < 0 {
		return fmt.Errorf("core: FetchWidth must be >= 0, got %d", c.FetchWidth)
	}
	if c.ReturnStack < 0 {
		return fmt.Errorf("core: ReturnStack must be >= 0, got %d", c.ReturnStack)
	}
	if c.TraceSetBits == 0 {
		c.TraceSetBits = 8
	}
	if c.TraceSetBits < 0 || c.TraceSetBits > 24 {
		return fmt.Errorf("core: TraceSetBits %d out of [1,24]", c.TraceSetBits)
	}
	if c.TraceLen == 0 {
		c.TraceLen = 16
	}
	if c.TraceLen < 0 || c.TraceLen > 1<<16 {
		return fmt.Errorf("core: TraceLen %d out of [1,65536]", c.TraceLen)
	}
	if c.MetricsEvery == 0 {
		c.MetricsEvery = 1024
	}
	if c.MetricsEvery < 1 {
		return fmt.Errorf("core: MetricsEvery must be >= 1, got %d", c.MetricsEvery)
	}
	if c.Watchdog == 0 {
		c.Watchdog = 4 * int64(c.Window)
		if c.Watchdog < 64 {
			c.Watchdog = 64
		}
	}
	if c.FaultDetect > fault.DetectGolden {
		return fmt.Errorf("core: unknown FaultDetect %d", c.FaultDetect)
	}
	if c.FaultDetect != fault.DetectNone && c.FaultPlan == nil {
		return fmt.Errorf("core: FaultDetect %s set without a FaultPlan", c.FaultDetect)
	}
	return nil
}

// InstRecord is one retired instruction's timing, for the Figure 3
// reproduction and the timeline tools.
type InstRecord struct {
	Seq   int64 // dynamic sequence number
	PC    int   // static program counter
	Inst  isa.Inst
	Slot  int   // execution-station slot (seq mod window)
	Issue int64 // first cycle the instruction executed
	Done  int64 // first cycle the result is visible to consumers: [Issue, Done)
}

// Stats aggregates run counters.
type Stats struct {
	Cycles         int64
	Retired        int64 // committed instructions, including halt
	Fetched        int64 // fetched, including squashed wrong-path instructions
	Squashed       int64
	Branches       int64 // resolved conditional branches on the committed path
	Mispredicts    int64 // resolved with a wrong predicted successor
	Loads          int64
	Stores         int64
	LoadsForwarded int64 // loads satisfied by store-to-load forwarding (memory renaming)
	ALUStarved     int64 // instruction-cycles ready to issue but denied a shared ALU
	StationBusy    int64 // occupied station-cycles (for utilization)
	// Occupancy[k] counts cycles during which exactly k stations were
	// occupied; its length is Window+1.
	Occupancy []int64
	// OperandFromStation[d] counts source operands whose producing
	// instruction was d dynamic instructions earlier (d = 1 means the
	// immediately preceding station); OperandFromCommitted counts operands
	// whose value was never written by the program (initial register
	// file). Used for the paper's Section 7 self-timed locality estimate
	// ("Half of the communications paths from one station to its
	// successor are completely local" — instructions that "depend on their
	// immediate predecessors rather than on far-previous instructions").
	OperandFromStation   map[int]int64
	OperandFromCommitted int64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MeanOccupancy returns the average number of occupied stations per
// cycle.
func (s Stats) MeanOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.StationBusy) / float64(s.Cycles)
}

// Result is the outcome of a run: final architectural state plus counters.
type Result struct {
	Regs     []isa.Word
	Mem      *memory.Flat
	Stats    Stats
	Timeline []InstRecord // populated when Config.KeepTimeline
}
