package core

import (
	"testing"

	"ultrascalar/internal/workload"
)

func TestFetchModelsMatchGolden(t *testing.T) {
	for _, w := range workload.Kernels() {
		for _, fm := range []FetchModel{FetchIdeal, FetchBlock, FetchTrace} {
			crossCheck(t, w, Config{Window: 16, Granularity: 1, Fetch: fm})
		}
	}
}

func TestFetchModelNames(t *testing.T) {
	if FetchIdeal.String() != "ideal" || FetchBlock.String() != "block" ||
		FetchTrace.String() != "trace-cache" {
		t.Error("fetch model names wrong")
	}
	if FetchModel(9).String() == "" {
		t.Error("unknown model should render something")
	}
}

// TestBlockFetchLimitsLoopThroughput: a tight loop under block fetch
// supplies at most one iteration per cycle, so it cannot beat the loop
// body length per cycle even with a huge window.
func TestBlockFetchLimitsLoopThroughput(t *testing.T) {
	w := workload.Parallel(512, 32) // straight-line: block fetch equals ideal
	ideal, err := Run(w.Prog, w.Mem(), Config{Window: 64, Granularity: 1, Fetch: FetchIdeal})
	if err != nil {
		t.Fatal(err)
	}
	block, err := Run(w.Prog, w.Mem(), Config{Window: 64, Granularity: 1, Fetch: FetchBlock})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Stats.Cycles != block.Stats.Cycles {
		t.Errorf("straight-line: block (%d) should equal ideal (%d)",
			block.Stats.Cycles, ideal.Stats.Cycles)
	}

	// A loop split by taken forward jumps: ideal fetch spans them all in
	// one cycle; block fetch needs one cycle per taken transfer.
	loop := workload.JumpyLoop(200)
	idealL, err := Run(loop.Prog, loop.Mem(), Config{Window: 64, Granularity: 1, Fetch: FetchIdeal})
	if err != nil {
		t.Fatal(err)
	}
	blockL, err := Run(loop.Prog, loop.Mem(), Config{Window: 64, Granularity: 1, Fetch: FetchBlock})
	if err != nil {
		t.Fatal(err)
	}
	if blockL.Stats.Cycles < 2*idealL.Stats.Cycles {
		t.Errorf("jumpy loop: block fetch (%d cycles) should cost much more than ideal (%d)",
			blockL.Stats.Cycles, idealL.Stats.Cycles)
	}
}

// TestTraceCacheRecoversFetchBandwidth: on a hot loop the trace cache
// approaches ideal fetch, beating block fetch.
func TestTraceCacheRecoversFetchBandwidth(t *testing.T) {
	loop := workload.JumpyLoop(500)
	cycles := map[FetchModel]int64{}
	for _, fm := range []FetchModel{FetchIdeal, FetchBlock, FetchTrace} {
		res, err := Run(loop.Prog, loop.Mem(), Config{Window: 64, Granularity: 1, Fetch: fm})
		if err != nil {
			t.Fatal(err)
		}
		cycles[fm] = res.Stats.Cycles
	}
	if !(cycles[FetchIdeal] <= cycles[FetchTrace] && cycles[FetchTrace] < cycles[FetchBlock]) {
		t.Errorf("want ideal (%d) <= trace (%d) < block (%d)",
			cycles[FetchIdeal], cycles[FetchTrace], cycles[FetchBlock])
	}
}

func TestFetchWidthCap(t *testing.T) {
	w := workload.Parallel(256, 32)
	narrow, err := Run(w.Prog, w.Mem(), Config{Window: 32, Granularity: 1, FetchWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(w.Prog, w.Mem(), Config{Window: 32, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Stats.Cycles <= wide.Stats.Cycles {
		t.Errorf("fetch width 2 (%d cycles) should cost more than full width (%d)",
			narrow.Stats.Cycles, wide.Stats.Cycles)
	}
	// IPC under fetch width 2 cannot exceed 2.
	if ipc := narrow.Stats.IPC(); ipc > 2.05 {
		t.Errorf("IPC %.2f exceeds the fetch width", ipc)
	}
}
