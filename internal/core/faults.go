package core

// Deterministic fault injection (internal/fault) wired into the engine:
// where each fault site strikes the simulated hardware, how the commit
// port detects corruption, and how the squash-and-replay machinery
// recovers from it.
//
// Injection runs from the Run loop between the forwarding scan and
// execute, so corruption lands on freshly latched operand state exactly
// as a particle strike on the station latches would. Detection runs at
// the retire boundary — parity on the circulating result, or a DIVA-style
// cross-check of every retiring instruction against the in-order golden
// machine of internal/ref. Recovery points the misprediction squash at
// the corrupted station instead of a wrong-path branch: every unretired
// instruction from it on is discarded, speculatively performed stores are
// rolled back from the undo log, and fetch restarts at the refused PC. A
// detected fault therefore costs cycles, never correctness.
//
// Everything below is gated on engine.flt != nil: a run without a fault
// plan pays one pointer test per cycle and per retire, keeping the
// measured hot path allocation-free and bit-identical to the seed.

import (
	"ultrascalar/internal/fault"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/ref"
)

// storeUndo is one speculatively committed store: enough to put the
// overwritten memory word back if fault recovery squashes the store
// before it passes the commit checker.
type storeUndo struct {
	seq  int64
	addr isa.Word
	prev isa.Word
}

// stuckHold is an armed SiteReadyStuck0 fault: the slot's ready latch is
// pinned low until the hold expires (or recovery flushes it).
type stuckHold struct {
	f       fault.Fault
	until   int64 // first cycle the latch is released
	applied bool  // the hold has actually forced a ready bit low
}

// faultState is the engine's fault-injection campaign state.
type faultState struct {
	plan   *fault.Plan
	detect fault.Detect
	log    *fault.Log // may be nil: injection still runs, unrecorded

	next  int // cursor into plan.Faults (sorted by cycle)
	stuck []stuckHold

	// golden is the in-order cross-check machine (DetectGolden only). It
	// owns a clone of the data memory and advances one instruction per
	// matched retirement, so at every commit boundary it holds exactly
	// the architectural state the engine has committed.
	golden *ref.Machine

	// undo logs speculatively performed stores in grant (= age) order;
	// undoHead is the first live entry. Entries retire from the front as
	// their stores pass the checker and roll back from the back on
	// recovery.
	undo     []storeUndo
	undoHead int

	applied            int // faults that landed on live state
	watchdogRecoveries int
}

// newFaultState arms injection for one run.
func newFaultState(prog []isa.Inst, mem *memory.Flat, cfg Config) *faultState {
	f := &faultState{plan: cfg.FaultPlan, detect: cfg.FaultDetect, log: cfg.FaultLog}
	if cfg.FaultDetect == fault.DetectGolden {
		f.golden = ref.NewMachine(prog, mem.Clone(), cfg.NumRegs, cfg.InitRegs)
	}
	return f
}

// faultCycle applies this cycle's scheduled faults and re-asserts active
// stuck-at-0 holds. It runs from the Run loop, after the forwarding scan
// latched operand state and before execute consumes it.
func (e *engine) faultCycle() {
	f := e.flt
	f.tickStuck(e)
	for f.next < len(f.plan.Faults) && f.plan.Faults[f.next].Cycle <= e.cycle {
		e.applyFault(f.plan.Faults[f.next])
		f.next++
	}
}

// tickStuck re-asserts every armed stuck-at-0 hold (the latch is pinned,
// so each forwarding rescan's fresh ready bit is forced back low) and
// releases expired holds.
func (f *faultState) tickStuck(e *engine) {
	if len(f.stuck) == 0 {
		return
	}
	kept := f.stuck[:0]
	for _, h := range f.stuck {
		if e.cycle >= h.until {
			// Released: rescan so the station's true readiness returns.
			e.fwdDirty = true
			continue
		}
		slot := int(h.f.Slot) % e.cfg.Window
		if e.slots[slot] == slotOccupied {
			s := &e.slab[slot]
			if !s.started && s.opsReady {
				s.opsReady = false
				if !h.applied {
					h.applied = true
					e.faultApplied(h.f, s)
				}
			}
		}
		kept = append(kept, h)
	}
	f.stuck = kept
}

// applyFault lands one scheduled fault on the microarchitecture, or lets
// it fall vacuous when the target is empty or ineligible (slot free,
// instruction already issued, operand not read).
func (e *engine) applyFault(fl fault.Fault) {
	bit := isa.Word(1) << (fl.Bit % 32)
	slot := int(fl.Slot) % e.cfg.Window

	switch fl.Site {
	case fault.SiteMergeBit:
		// A CSPP merge node for one register fails: every station latching
		// that register this cycle receives the corrupted value.
		reg := fl.Reg % uint8(e.cfg.NumRegs)
		hit := false
		for _, si := range e.window {
			t := &e.slab[si]
			if t.started {
				continue
			}
			r1, r2, nr := t.inst.ReadRegs()
			if nr >= 1 && r1 == reg {
				t.a ^= bit
				hit = true
			}
			if nr >= 2 && r2 == reg {
				t.b ^= bit
				hit = true
			}
		}
		if hit {
			e.faultApplied(fl, nil)
		}
		return

	case fault.SiteReadyStuck0:
		dur := fl.Dur
		if dur < 1 {
			dur = 1
		}
		h := stuckHold{f: fl, until: fl.Cycle + dur}
		// The per-cycle re-assert already ran, so force the first cycle of
		// the hold here.
		if e.slots[slot] == slotOccupied {
			s := &e.slab[slot]
			if !s.started && s.opsReady {
				s.opsReady = false
				h.applied = true
				e.faultApplied(fl, s)
			}
		}
		e.flt.stuck = append(e.flt.stuck, h)
		return
	}

	if e.slots[slot] != slotOccupied {
		return // vacuous: no live station in the target slot
	}
	s := &e.slab[slot]

	switch fl.Site {
	case fault.SiteResultBit:
		if !s.done {
			return // no completed result circulating yet
		}
		s.result ^= bit
		s.parityBad = true // the latched parity no longer matches
		e.fwdDirty = true  // the corrupt value re-drives the CSPP wires
		e.faultApplied(fl, s)

	case fault.SiteOperandBit:
		if s.started || !s.opsReady {
			return
		}
		if _, _, nr := s.inst.ReadRegs(); int(fl.Op) >= nr {
			return // the instruction does not read that operand
		}
		if fl.Op == 0 {
			s.a ^= bit
		} else {
			s.b ^= bit
		}
		e.faultApplied(fl, s)

	case fault.SiteReadyStuck1:
		if s.started || s.opsReady {
			return
		}
		s.opsReady = true // issues now, with stale latched operands
		e.faultApplied(fl, s)

	case fault.SiteDropForward:
		if s.started || !s.opsReady {
			return
		}
		r1, r2, nr := s.inst.ReadRegs()
		if int(fl.Op) >= nr {
			return
		}
		r := r1
		if fl.Op == 1 {
			r = r2
		}
		// The nearest-producer forward is dropped; the station latches the
		// stale committed register value, as if the segment bit failed open.
		if fl.Op == 0 {
			s.a = e.commit[r]
		} else {
			s.b = e.commit[r]
		}
		e.faultApplied(fl, s)

	case fault.SiteDupForward:
		if s.started || !s.opsReady {
			return
		}
		r1, r2, nr := s.inst.ReadRegs()
		if int(fl.Op) >= nr {
			return
		}
		r := r1
		if fl.Op == 1 {
			r = r2
		}
		// A stale merge output wins the wired-OR: the station latches the
		// value of the producer BEFORE its nearest one — the second-closest
		// older in-window writer of the register, or the committed file
		// when there is no such writer (or its value is still unknown).
		v := e.commit[r]
		seen := 0
		for j := len(e.window) - 1; j >= 0; j-- {
			t := &e.slab[e.window[j]]
			if t.seq >= s.seq || !t.writes || t.dest != r {
				continue
			}
			seen++
			if seen == 2 {
				if t.done {
					v = t.result
				}
				break
			}
		}
		if fl.Op == 0 {
			s.a = v
		} else {
			s.b = v
		}
		e.faultApplied(fl, s)
	}
}

// faultApplied accounts one landed fault (s is nil for register-scoped
// sites like the merge-node fault).
func (e *engine) faultApplied(fl fault.Fault, s *station) {
	e.flt.applied++
	seq, pc, slot := int64(-1), int32(-1), int32(-1)
	if s != nil {
		seq, pc, slot = s.seq, int32(s.pc), int32(s.slot)
	}
	e.flt.log.Add(fault.Record{
		Kind: fault.RecInject, Cycle: e.cycle, Site: fl.Site,
		Seq: seq, PC: pc, Slot: slot,
	})
	if e.trc != nil {
		e.trc.Record(obs.EvFaultInject, e.cycle, seq, pc, slot, int32(fl.Site))
	}
}

// noteStore records a granted store's undo entry and its architectural
// effect before the value reaches memory, so recovery can roll the store
// back and the retire checker can compare it against golden. Stores grant
// in age order (the store-serialization CSPP), so the log stays
// seq-sorted.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (f *faultState) noteStore(e *engine, s *station, addr isa.Word) {
	s.storeAddr, s.storeVal = addr, s.b
	f.undo = append(f.undo, storeUndo{seq: s.seq, addr: addr, prev: e.mem.Load(addr)})
}

// dropStore retires undo entries up to the given sequence number: their
// stores passed the commit checker and can no longer be rolled back.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (f *faultState) dropStore(seq int64) {
	for f.undoHead < len(f.undo) && f.undo[f.undoHead].seq <= seq {
		f.undoHead++
	}
	if f.undoHead == len(f.undo) {
		f.undo, f.undoHead = f.undo[:0], 0 // reuse the backing array
	}
}

// rollbackStores undoes speculatively performed memory writes of stations
// with sequence numbers >= seq, newest first (the log is seq-sorted, so
// reverse order restores each address's oldest overwritten value last).
func (f *faultState) rollbackStores(mem *memory.Flat, seq int64) {
	for len(f.undo) > f.undoHead {
		u := f.undo[len(f.undo)-1]
		if u.seq < seq {
			break
		}
		mem.Store(u.addr, u.prev)
		f.undo = f.undo[:len(f.undo)-1]
	}
	if f.undoHead == len(f.undo) {
		f.undo, f.undoHead = f.undo[:0], 0
	}
}

// checkRetire models the commit-port checker for one retiring station. It
// reports whether the checker refuses the commit, and the PC recovery
// should resume fetch from.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (f *faultState) checkRetire(e *engine, s *station) (resumePC int, detected bool) {
	switch f.detect {
	case fault.DetectParity:
		// Parity travels with the circulating value; a result whose bits
		// were flipped after parity generation fails the commit-port check.
		if s.parityBad {
			f.noteDetect(e, s, 0)
			return s.pc, true
		}

	case fault.DetectGolden:
		m := f.golden
		if m.Halted() {
			// The golden machine commits its halt only when the engine
			// retires a matching halt, which ends the run; unreachable,
			// defensive.
			return 0, false
		}
		eff, err := m.Effect()
		if err != nil {
			// The golden machine cannot even execute here — the engine
			// committed onto a path that leaves the program. Refuse and
			// resume at the golden PC.
			f.noteDetect(e, s, 0)
			return m.PC(), true
		}
		if !effectMatches(s, eff) {
			f.noteDetect(e, s, 0)
			return eff.PC, true
		}
		m.Advance(eff)
	}
	return 0, false
}

// effectMatches reports whether a retiring station's architectural effect
// agrees with the golden machine's. A matching PC implies the same static
// instruction (same program), so the comparison is over the dynamic
// values: register result, store address and value, and the actual
// control-flow successor. Loads compare the loaded value rather than
// re-deriving the address — equal values commit equal state.
func effectMatches(s *station, eff ref.Effect) bool {
	if eff.PC != s.pc {
		return false
	}
	if eff.Halt || s.class&clsHalt != 0 {
		return eff.Halt && s.class&clsHalt != 0
	}
	if eff.WritesReg != s.writes {
		return false
	}
	if eff.WritesReg && (eff.Reg != s.dest || eff.RegVal != s.result) {
		return false
	}
	if eff.IsStore && (s.storeAddr != eff.Addr || s.storeVal != eff.StoreVal) {
		return false
	}
	if s.class&clsFlow != 0 && s.actualNext != eff.Next {
		return false
	}
	return true
}

// noteDetect accounts one checker refusal (arg 1 marks a watchdog fire).
func (f *faultState) noteDetect(e *engine, s *station, arg int32) {
	f.log.Add(fault.Record{
		Kind: fault.RecDetect, Cycle: e.cycle,
		Seq: s.seq, PC: int32(s.pc), Slot: int32(s.slot),
	})
	if e.trc != nil {
		e.trc.Record(obs.EvFaultDetect, e.cycle, s.seq, int32(s.pc), int32(s.slot), arg)
	}
}

// faultRecover is squash-and-replay pointed at a corrupted station: every
// unretired instruction from age index `from` (the refused one) onward is
// squashed, its speculatively performed stores are rolled back, and fetch
// restarts at resumePC with the sequence counter reset — the engine's
// misprediction recovery with the window's whole tail discarded. The
// already-retired prefix window[:from] passed the checker and stands.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (e *engine) faultRecover(from int, resumePC int) {
	f := e.flt
	seq0 := e.slab[e.window[from]].seq
	f.rollbackStores(e.mem, seq0)
	squashed := 0
	for _, vi := range e.window[from:] {
		v := &e.slab[vi]
		e.slots[v.slot] = slotFree
		e.stats.Squashed++
		squashed++
		if v.class&clsMem != 0 {
			e.memCount--
		}
		if e.trc != nil {
			e.trc.Record(obs.EvSquash, e.cycle, v.seq, int32(v.pc), int32(v.slot), int32(resumePC))
		}
	}
	// Nothing unretired survives: the window empties, anchored back at
	// windowBuf[0]. Replay refills it from resumePC this same cycle.
	e.window = e.windowBuf[:0]
	e.nextSeq = seq0
	e.fetchPC = resumePC
	e.haltStop, e.jalrWait = false, false
	e.fwdDirty = true
	e.lastRetire = e.cycle // recovery is forward progress
	f.stuck = f.stuck[:0]  // pinned latches are cleared by the flush
	f.log.Add(fault.Record{
		Kind: fault.RecRecover, Cycle: e.cycle,
		Seq: seq0, PC: int32(resumePC), Slot: -1, Arg: int64(squashed),
	})
	if e.trc != nil {
		e.trc.Record(obs.EvFaultRecover, e.cycle, seq0, int32(resumePC), -1, int32(squashed))
	}
}

// watchdogRecover attempts fault recovery when the livelock watchdog
// fires during an injection run: a stuck-at-0 hold (or an issued-stale
// deadlock) has starved retirement, so flush the whole window and replay
// from the head. It reports false when recovery cannot help — no faults
// ever landed, or recovery already ran once per landed fault without
// restoring progress — in which case Run returns the livelock error.
func (e *engine) watchdogRecover() bool {
	f := e.flt
	if f == nil || f.applied == 0 || len(e.window) == 0 {
		return false
	}
	if f.watchdogRecoveries >= f.applied {
		return false // recovery is not restoring progress; report the livelock
	}
	f.watchdogRecoveries++
	head := &e.slab[e.window[0]]
	resume := head.pc
	if f.golden != nil {
		resume = f.golden.PC()
	}
	f.log.Add(fault.Record{
		Kind: fault.RecWatchdog, Cycle: e.cycle,
		Seq: head.seq, PC: int32(head.pc), Slot: int32(head.slot),
	})
	f.noteDetect(e, head, 1)
	e.faultRecover(0, resume)
	return true
}
