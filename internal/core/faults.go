package core

// Deterministic fault injection (internal/fault) wired into the engine:
// where each fault site strikes the simulated hardware, how the commit
// port detects corruption, and how the squash-and-replay machinery
// recovers from it.
//
// Injection runs from the Run loop between the forwarding scan and
// execute, so corruption lands on freshly latched operand state exactly
// as a particle strike on the station latches would. Detection runs at
// the retire boundary — parity on the circulating result, or a DIVA-style
// cross-check of every retiring instruction against the in-order golden
// machine of internal/ref. Recovery points the misprediction squash at
// the corrupted station instead of a wrong-path branch: every unretired
// instruction from it on is discarded, speculatively performed stores are
// rolled back from the undo log, and fetch restarts at the refused PC. A
// detected fault therefore costs cycles, never correctness.
//
// Everything below is gated on engine.flt != nil: a run without a fault
// plan pays one pointer test per cycle and per retire, keeping the
// measured hot path allocation-free and bit-identical to the seed.
//
// Stations are addressed through the struct-of-arrays file (soa.go):
// a fault site reads and writes the slot's parallel-slice entries and
// bitmap bits directly, the same state the word-level phases scan.

import (
	"ultrascalar/internal/fault"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/ref"
)

// storeUndo is one speculatively committed store: enough to put the
// overwritten memory word back if fault recovery squashes the store
// before it passes the commit checker.
type storeUndo struct {
	seq  int64
	addr isa.Word
	prev isa.Word
}

// stuckHold is an armed SiteReadyStuck0 fault: the slot's ready latch is
// pinned low until the hold expires (or recovery flushes it).
type stuckHold struct {
	f       fault.Fault
	until   int64 // first cycle the latch is released
	applied bool  // the hold has actually forced a ready bit low
}

// faultState is the engine's fault-injection campaign state.
type faultState struct {
	plan   *fault.Plan
	detect fault.Detect
	log    *fault.Log // may be nil: injection still runs, unrecorded

	next  int // cursor into plan.Faults (sorted by cycle)
	stuck []stuckHold

	// golden is the in-order cross-check machine (DetectGolden only). It
	// owns a clone of the data memory and advances one instruction per
	// matched retirement, so at every commit boundary it holds exactly
	// the architectural state the engine has committed.
	golden *ref.Machine

	// undo logs speculatively performed stores in grant (= age) order;
	// undoHead is the first live entry. Entries retire from the front as
	// their stores pass the checker and roll back from the back on
	// recovery.
	undo     []storeUndo
	undoHead int

	applied            int // faults that landed on live state
	watchdogRecoveries int
}

// newFaultState arms injection for one run.
func newFaultState(prog []isa.Inst, mem *memory.Flat, cfg Config) *faultState {
	f := &faultState{plan: cfg.FaultPlan, detect: cfg.FaultDetect, log: cfg.FaultLog}
	if cfg.FaultDetect == fault.DetectGolden {
		f.golden = ref.NewMachine(prog, mem.Clone(), cfg.NumRegs, cfg.InitRegs)
	}
	return f
}

// faultCycle applies this cycle's scheduled faults and re-asserts active
// stuck-at-0 holds. It runs from the Run loop, after the forwarding scan
// latched operand state and before execute consumes it.
func (e *engine) faultCycle() {
	f := e.flt
	f.tickStuck(e)
	for f.next < len(f.plan.Faults) && f.plan.Faults[f.next].Cycle <= e.cycle {
		e.applyFault(f.plan.Faults[f.next])
		f.next++
	}
}

// tickStuck re-asserts every armed stuck-at-0 hold (the latch is pinned,
// so each forwarding rescan's fresh ready bit is forced back low) and
// releases expired holds.
func (f *faultState) tickStuck(e *engine) {
	if len(f.stuck) == 0 {
		return
	}
	st := &e.st
	kept := f.stuck[:0]
	for _, h := range f.stuck {
		if e.cycle >= h.until {
			// Released: rescan so the station's true readiness returns.
			e.fwdDirty = true
			continue
		}
		slot := int(h.f.Slot) % e.cfg.Window
		if st.busy.get(slot) && !st.started.get(slot) && st.ready.get(slot) {
			st.ready.clear(slot)
			if !h.applied {
				h.applied = true
				e.faultApplied(h.f, slot)
			}
		}
		kept = append(kept, h)
	}
	f.stuck = kept
}

// applyFault lands one scheduled fault on the microarchitecture, or lets
// it fall vacuous when the target is empty or ineligible (slot free,
// instruction already issued, operand not read).
func (e *engine) applyFault(fl fault.Fault) {
	st := &e.st
	bit := isa.Word(1) << (fl.Bit % 32)
	slot := int(fl.Slot) % e.cfg.Window

	switch fl.Site {
	case fault.SiteMergeBit:
		// A CSPP merge node for one register fails: every station latching
		// that register this cycle receives the corrupted value.
		reg := fl.Reg % uint8(e.cfg.NumRegs)
		hit := false
		for i := 0; i < e.occ; i++ {
			t := e.slotAt(i)
			if st.started.get(t) {
				continue
			}
			nr := int(st.nsrc[t])
			if nr >= 1 && st.r1[t] == reg {
				st.a[t] ^= bit
				hit = true
			}
			if nr >= 2 && st.r2[t] == reg {
				st.b[t] ^= bit
				hit = true
			}
		}
		if hit {
			e.faultApplied(fl, -1)
		}
		return

	case fault.SiteReadyStuck0:
		dur := fl.Dur
		if dur < 1 {
			dur = 1
		}
		h := stuckHold{f: fl, until: fl.Cycle + dur}
		// The per-cycle re-assert already ran, so force the first cycle of
		// the hold here.
		if st.busy.get(slot) && !st.started.get(slot) && st.ready.get(slot) {
			st.ready.clear(slot)
			h.applied = true
			e.faultApplied(fl, slot)
		}
		e.flt.stuck = append(e.flt.stuck, h)
		return
	}

	if !st.busy.get(slot) {
		return // vacuous: no live station in the target slot
	}

	switch fl.Site {
	case fault.SiteResultBit:
		if !st.done.get(slot) {
			return // no completed result circulating yet
		}
		st.result[slot] ^= bit
		st.parityBad.set(slot) // the latched parity no longer matches
		e.fwdDirty = true      // the corrupt value re-drives the CSPP wires
		e.faultApplied(fl, slot)

	case fault.SiteOperandBit:
		if st.started.get(slot) || !st.ready.get(slot) {
			return
		}
		if int(fl.Op) >= int(st.nsrc[slot]) {
			return // the instruction does not read that operand
		}
		if fl.Op == 0 {
			st.a[slot] ^= bit
		} else {
			st.b[slot] ^= bit
		}
		e.faultApplied(fl, slot)

	case fault.SiteReadyStuck1:
		if st.started.get(slot) || st.ready.get(slot) {
			return
		}
		st.ready.set(slot) // issues now, with stale latched operands
		e.faultApplied(fl, slot)

	case fault.SiteDropForward:
		if st.started.get(slot) || !st.ready.get(slot) {
			return
		}
		if int(fl.Op) >= int(st.nsrc[slot]) {
			return
		}
		r := st.r1[slot]
		if fl.Op == 1 {
			r = st.r2[slot]
		}
		// The nearest-producer forward is dropped; the station latches the
		// stale committed register value, as if the segment bit failed open.
		if fl.Op == 0 {
			st.a[slot] = e.commit[r]
		} else {
			st.b[slot] = e.commit[r]
		}
		e.faultApplied(fl, slot)

	case fault.SiteDupForward:
		if st.started.get(slot) || !st.ready.get(slot) {
			return
		}
		if int(fl.Op) >= int(st.nsrc[slot]) {
			return
		}
		r := st.r1[slot]
		if fl.Op == 1 {
			r = st.r2[slot]
		}
		// A stale merge output wins the wired-OR: the station latches the
		// value of the producer BEFORE its nearest one — the second-closest
		// older in-window writer of the register, or the committed file
		// when there is no such writer (or its value is still unknown).
		v := e.commit[r]
		seen := 0
		for j := e.occ - 1; j >= 0; j-- {
			t := e.slotAt(j)
			if st.seq[t] >= st.seq[slot] || !st.writes.get(t) || st.dest[t] != r {
				continue
			}
			seen++
			if seen == 2 {
				if st.done.get(t) {
					v = st.result[t]
				}
				break
			}
		}
		if fl.Op == 0 {
			st.a[slot] = v
		} else {
			st.b[slot] = v
		}
		e.faultApplied(fl, slot)
	}
}

// faultApplied accounts one landed fault (slot is -1 for register-scoped
// sites like the merge-node fault).
func (e *engine) faultApplied(fl fault.Fault, slot int) {
	e.flt.applied++
	seq, pc, sl := int64(-1), int32(-1), int32(-1)
	if slot >= 0 {
		seq, pc, sl = e.st.seq[slot], e.st.pc[slot], int32(slot)
	}
	e.flt.log.Add(fault.Record{
		Kind: fault.RecInject, Cycle: e.cycle, Site: fl.Site,
		Seq: seq, PC: pc, Slot: sl,
	})
	if e.trc != nil {
		e.trc.Record(obs.EvFaultInject, e.cycle, seq, pc, sl, int32(fl.Site))
	}
}

// noteStore records a granted store's undo entry and its architectural
// effect before the value reaches memory, so recovery can roll the store
// back and the retire checker can compare it against golden. Stores grant
// in age order (the store-serialization CSPP), so the log stays
// seq-sorted.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (f *faultState) noteStore(e *engine, slot int, addr isa.Word) {
	st := &e.st
	st.storeAddr[slot], st.storeVal[slot] = addr, st.b[slot]
	f.undo = append(f.undo, storeUndo{seq: st.seq[slot], addr: addr, prev: e.mem.Load(addr)})
}

// dropStore retires undo entries up to the given sequence number: their
// stores passed the commit checker and can no longer be rolled back.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (f *faultState) dropStore(seq int64) {
	for f.undoHead < len(f.undo) && f.undo[f.undoHead].seq <= seq {
		f.undoHead++
	}
	if f.undoHead == len(f.undo) {
		f.undo, f.undoHead = f.undo[:0], 0 // reuse the backing array
	}
}

// rollbackStores undoes speculatively performed memory writes of stations
// with sequence numbers >= seq, newest first (the log is seq-sorted, so
// reverse order restores each address's oldest overwritten value last).
func (f *faultState) rollbackStores(mem *memory.Flat, seq int64) {
	for len(f.undo) > f.undoHead {
		u := f.undo[len(f.undo)-1]
		if u.seq < seq {
			break
		}
		mem.Store(u.addr, u.prev)
		f.undo = f.undo[:len(f.undo)-1]
	}
	if f.undoHead == len(f.undo) {
		f.undo, f.undoHead = f.undo[:0], 0
	}
}

// checkRetire models the commit-port checker for one retiring station. It
// reports whether the checker refuses the commit, and the PC recovery
// should resume fetch from.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (f *faultState) checkRetire(e *engine, slot int) (resumePC int, detected bool) {
	switch f.detect {
	case fault.DetectParity:
		// Parity travels with the circulating value; a result whose bits
		// were flipped after parity generation fails the commit-port check.
		if e.st.parityBad.get(slot) {
			f.noteDetect(e, slot, 0)
			return int(e.st.pc[slot]), true
		}

	case fault.DetectGolden:
		m := f.golden
		if m.Halted() {
			// The golden machine commits its halt only when the engine
			// retires a matching halt, which ends the run; unreachable,
			// defensive.
			return 0, false
		}
		eff, err := m.Effect()
		if err != nil {
			// The golden machine cannot even execute here — the engine
			// committed onto a path that leaves the program. Refuse and
			// resume at the golden PC.
			f.noteDetect(e, slot, 0)
			return m.PC(), true
		}
		if !effectMatches(e, slot, eff) {
			f.noteDetect(e, slot, 0)
			return eff.PC, true
		}
		m.Advance(eff)
	}
	return 0, false
}

// effectMatches reports whether a retiring station's architectural effect
// agrees with the golden machine's. A matching PC implies the same static
// instruction (same program), so the comparison is over the dynamic
// values: register result, store address and value, and the actual
// control-flow successor. Loads compare the loaded value rather than
// re-deriving the address — equal values commit equal state.
func effectMatches(e *engine, slot int, eff ref.Effect) bool {
	st := &e.st
	if eff.PC != int(st.pc[slot]) {
		return false
	}
	cl := st.class[slot]
	if eff.Halt || cl&clsHalt != 0 {
		return eff.Halt && cl&clsHalt != 0
	}
	writes := st.writes.get(slot)
	if eff.WritesReg != writes {
		return false
	}
	if eff.WritesReg && (eff.Reg != st.dest[slot] || eff.RegVal != st.result[slot]) {
		return false
	}
	if eff.IsStore && (st.storeAddr[slot] != eff.Addr || st.storeVal[slot] != eff.StoreVal) {
		return false
	}
	if cl&clsFlow != 0 && int(st.actualNext[slot]) != eff.Next {
		return false
	}
	return true
}

// noteDetect accounts one checker refusal (arg 1 marks a watchdog fire).
func (f *faultState) noteDetect(e *engine, slot int, arg int32) {
	f.log.Add(fault.Record{
		Kind: fault.RecDetect, Cycle: e.cycle,
		Seq: e.st.seq[slot], PC: e.st.pc[slot], Slot: int32(slot),
	})
	if e.trc != nil {
		e.trc.Record(obs.EvFaultDetect, e.cycle, e.st.seq[slot], e.st.pc[slot], int32(slot), arg)
	}
}

// faultRecover is squash-and-replay pointed at a corrupted station: every
// unretired instruction from age index `from` (the refused one) onward is
// squashed — its state bits cleared with the same range masks as a
// misprediction squash — its speculatively performed stores are rolled
// back, and fetch restarts at resumePC with the sequence counter reset.
// The already-retired prefix passed the checker and stands.
//
//uslint:allow hotpathalloc -- fault campaigns only; nil-guarded off the measured path
func (e *engine) faultRecover(from int, resumePC int) {
	f := e.flt
	st := &e.st
	seq0 := st.seq[e.slotAt(from)]
	f.rollbackStores(e.mem, seq0)
	squashed := e.occ - from
	if e.trc != nil {
		for j := from; j < e.occ; j++ {
			v := e.slotAt(j)
			e.trc.Record(obs.EvSquash, e.cycle, st.seq[v], st.pc[v], int32(v), int32(resumePC))
		}
	}
	s1lo, s1hi, s2lo, s2hi := e.squashSpans(from)
	e.memCount -= e.memOnes(s1lo, s1hi) + e.memOnes(s2lo, s2hi)
	e.stats.Squashed += int64(squashed)
	for _, v := range st.stateVecs {
		v.clearRange(s1lo, s1hi)
		v.clearRange(s2lo, s2hi)
	}
	// Nothing unretired survives: the window empties (fetch re-anchors
	// head at the next slot). Replay refills it from resumePC this same
	// cycle.
	e.occ = 0
	e.nextSeq = seq0
	e.fetchPC = resumePC
	e.haltStop, e.jalrWait = false, false
	e.fwdDirty = true
	e.lastRetire = e.cycle // recovery is forward progress
	f.stuck = f.stuck[:0]  // pinned latches are cleared by the flush
	f.log.Add(fault.Record{
		Kind: fault.RecRecover, Cycle: e.cycle,
		Seq: seq0, PC: int32(resumePC), Slot: -1, Arg: int64(squashed),
	})
	if e.trc != nil {
		e.trc.Record(obs.EvFaultRecover, e.cycle, seq0, int32(resumePC), -1, int32(squashed))
	}
}

// watchdogRecover attempts fault recovery when the livelock watchdog
// fires during an injection run: a stuck-at-0 hold (or an issued-stale
// deadlock) has starved retirement, so flush the whole window and replay
// from the head. It reports false when recovery cannot help — no faults
// ever landed, or recovery already ran once per landed fault without
// restoring progress — in which case Run returns the livelock error.
func (e *engine) watchdogRecover() bool {
	f := e.flt
	if f == nil || f.applied == 0 || e.occ == 0 {
		return false
	}
	if f.watchdogRecoveries >= f.applied {
		return false // recovery is not restoring progress; report the livelock
	}
	f.watchdogRecoveries++
	head := e.slotAt(0)
	resume := int(e.st.pc[head])
	if f.golden != nil {
		resume = f.golden.PC()
	}
	f.log.Add(fault.Record{
		Kind: fault.RecWatchdog, Cycle: e.cycle,
		Seq: e.st.seq[head], PC: e.st.pc[head], Slot: int32(head),
	})
	f.noteDetect(e, head, 1)
	e.faultRecover(0, resume)
	return true
}
