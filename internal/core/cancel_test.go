package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ultrascalar/internal/fault"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/workload"
)

// countdownCtx is a deterministic context: Err reports Canceled starting
// with its fire-th call. Done and Deadline are inert, so the engine's
// polling cadence is the only thing that can observe the cancellation —
// exactly what the RunCtx contract promises.
type countdownCtx struct {
	calls, fire int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(key any) any           { return nil }
func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls >= c.fire {
		return context.Canceled
	}
	return nil
}

// TestRunCtxBackgroundMatchesRun: a live but never-canceled context must
// not perturb the simulation in any observable way.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	w := workload.GCD(252, 105)
	cfg := Config{Window: 8, Granularity: 2}
	plain, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunCtx(context.Background(), w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Cycles != ctxed.Stats.Cycles || plain.Stats.Retired != ctxed.Stats.Retired ||
		plain.Stats.Squashed != ctxed.Stats.Squashed {
		t.Errorf("stats diverge under a background context:\nplain %+v\nctxed %+v", plain.Stats, ctxed.Stats)
	}
}

// TestRunCtxCancelAtExactProbe: the probe runs once per watchdog
// interval (64 cycles for window 8, where the floor binds), so a
// cancellation observed on the k-th probe must surface at exactly cycle
// (k-1)*64 — the "returns within one watchdog interval" guarantee, made
// deterministic by counting Err calls instead of racing a timer.
func TestRunCtxCancelAtExactProbe(t *testing.T) {
	w := workload.RepeatedScan(64, 50) // thousands of cycles of work
	ctx := &countdownCtx{fire: 3}
	_, err := RunCtx(ctx, w.Prog, w.Mem(), Config{Window: 8})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want a *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
	if ce.Cycle != 128 {
		t.Errorf("cancellation surfaced at cycle %d, want 128 (third probe of a 64-cycle cadence)", ce.Cycle)
	}
	if ctx.calls != 3 {
		t.Errorf("engine probed the context %d times, want exactly 3", ctx.calls)
	}
}

// TestRunCtxExpiredDeadline: an already-expired deadline is caught by the
// very first probe (cycle 0) and unwraps to context.DeadlineExceeded, the
// sentinel the CLI tools and the serve error taxonomy key on.
func TestRunCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	w := workload.Fib(12)
	_, err := RunCtx(ctx, w.Prog, w.Mem(), Config{Window: 8})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want a *CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error does not unwrap to DeadlineExceeded: %v", err)
	}
	if ce.Cycle != 0 {
		t.Errorf("expired deadline noticed at cycle %d, want 0", ce.Cycle)
	}
}

// TestWatchdogDefaultFloor: the default livelock threshold is
// max(4*Window, 64); for tiny windows the 64-cycle floor must bind, or a
// momentary fetch stall would be misread as livelock.
func TestWatchdogDefaultFloor(t *testing.T) {
	for _, tc := range []struct {
		window int
		want   int64
	}{{1, 64}, {2, 64}, {16, 64}, {17, 68}, {32, 128}} {
		cfg := Config{Window: tc.window}
		if err := cfg.normalize(); err != nil {
			t.Fatalf("window %d: %v", tc.window, err)
		}
		if cfg.Watchdog != tc.want {
			t.Errorf("window %d: default watchdog %d, want %d", tc.window, cfg.Watchdog, tc.want)
		}
	}
}

// TestWatchdogFloorBindsWindowTwo starves a two-station window with an
// infinite forwarding latency. With 4*Window = 8 the watchdog would fire
// after ~8 quiet cycles; the reported snapshot must show the 64-cycle
// floor was honored instead.
func TestWatchdogFloorBindsWindowTwo(t *testing.T) {
	w := workload.RepeatedScan(8, 2) // dependence chains, enough to fill a 2-slot window
	cfg := Config{Window: 2, MaxCycles: 1 << 20,
		ForwardLatency: func(d int) int { return 1 << 30 }}
	_, err := Run(w.Prog, w.Mem(), cfg)
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("got %v, want a LivelockError from a starved 2-slot window", err)
	}
	if quiet := le.Cycle - le.LastRetire; quiet <= 64 {
		t.Errorf("watchdog fired after %d quiet cycles; the 64-cycle floor did not bind", quiet)
	}
}

// TestWatchdogFloorRecoveryWindowOne pins the single station of a
// window-1 processor with a ready-stuck-at-0 hold that outlasts the
// watchdog floor. The watchdog must fire (no earlier than the floor
// allows), squash-and-replay must recover, and the run must still finish
// with the exact golden state.
func TestWatchdogFloorRecoveryWindowOne(t *testing.T) {
	w := workload.GCD(252, 105)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	log := &fault.Log{}
	cfg := Config{Window: 1, MaxCycles: 1 << 20,
		FaultPlan: &fault.Plan{Seed: 1, Faults: []fault.Fault{
			{Site: fault.SiteReadyStuck0, Cycle: 5, Slot: 0, Dur: 200},
		}},
		FaultLog: log}
	got, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("pinned window-1 run failed instead of recovering: %v (log %+v)", err, log)
	}
	if log.Applied == 0 {
		t.Fatal("the hold never pinned the station; test is vacuous")
	}
	if log.WatchdogFires == 0 {
		t.Fatalf("run completed without the watchdog firing; log %+v", log)
	}
	for _, r := range log.Records {
		if r.Kind == fault.RecWatchdog && r.Cycle < 64 {
			t.Errorf("watchdog fired at cycle %d, before the 64-cycle floor", r.Cycle)
		}
	}
	for r := range want.Regs {
		if got.Regs[r] != want.Regs[r] {
			t.Fatalf("r%d = %d, golden %d after watchdog recovery", r, got.Regs[r], want.Regs[r])
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Fatalf("memory mismatch after watchdog recovery: %s", got.Mem.Diff(want.Mem))
	}
}

// TestCancelDuringFaultRecovery cancels a run while watchdog-triggered
// squash-and-replay is churning against a long ready-stuck hold: the
// hold pins slot 0 from cycle 10, the watchdog floor fires at ~74, and
// the countdown context cancels on the probe at cycle 128 — inside the
// recovery/replay regime. The engine is a single goroutine holding its
// undo log privately, so a clean cancellation means: the typed error
// surfaces, no goroutine survives the call, and a fresh run of the same
// faulted configuration still reaches the exact golden state (nothing
// the abandoned recovery did leaked into shared state). Run under -race
// in CI.
func TestCancelDuringFaultRecovery(t *testing.T) {
	w := workload.RepeatedScan(64, 50)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Seed: 1, Faults: []fault.Fault{
		{Site: fault.SiteReadyStuck0, Cycle: 10, Slot: 0, Dur: 1 << 19},
	}}

	before := runtime.NumGoroutine()
	log := &fault.Log{}
	cfg := Config{Window: 8, MaxCycles: 1 << 22, FaultPlan: plan, FaultLog: log}
	_, err = RunCtx(&countdownCtx{fire: 3}, w.Prog, w.Mem(), cfg)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want a *CanceledError", err)
	}
	if ce.Cycle != 128 {
		t.Errorf("canceled at cycle %d, want 128", ce.Cycle)
	}
	if log.WatchdogFires == 0 {
		t.Fatalf("cancellation landed before any watchdog recovery; log %+v — the test is not exercising mid-recovery cancel", log)
	}
	// The engine never spawns goroutines; prove cancellation did not
	// change that (e.g. no stray timers or watchers).
	for i := 0; runtime.NumGoroutine() > before && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across a canceled run: %d -> %d", before, after)
	}

	// A fresh run of the identical faulted configuration must still
	// recover to golden: the canceled run left no state behind that the
	// recovery machinery could trip over.
	cfg.FaultLog = &fault.Log{}
	got, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("rerun after canceled recovery failed: %v", err)
	}
	for r := range want.Regs {
		if got.Regs[r] != want.Regs[r] {
			t.Fatalf("r%d = %d, golden %d on rerun after canceled recovery", r, got.Regs[r], want.Regs[r])
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Fatalf("memory mismatch on rerun after canceled recovery: %s", got.Mem.Diff(want.Mem))
	}
}
