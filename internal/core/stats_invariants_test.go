package core

import (
	"testing"

	"ultrascalar/internal/workload"
)

// Conservation laws every run must satisfy, regardless of architecture or
// workload. These are the checks the observability layer leans on: the
// trace exporter and the metrics gauges both assume the aggregate
// counters are internally consistent.

func invariantWorkloads() []workload.Workload {
	return []workload.Workload{
		workload.Figure3Sequence(),
		workload.Fib(16),
		workload.BubbleSort(10),
		workload.RepeatedScan(24, 4),
	}
}

func TestStatsInvariants(t *testing.T) {
	const n = 16
	for archName, cfg := range archConfigs(n, 4) {
		for _, w := range invariantWorkloads() {
			t.Run(archName+"/"+w.Name, func(t *testing.T) {
				res, err := Run(w.Prog, w.Mem(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				s := res.Stats

				// Occupancy is a complete partition of time: every cycle had
				// exactly one occupancy level.
				if len(s.Occupancy) != n+1 {
					t.Fatalf("len(Occupancy) = %d, want window+1 = %d", len(s.Occupancy), n+1)
				}
				var occCycles, weighted int64
				for k, c := range s.Occupancy {
					if c < 0 {
						t.Fatalf("Occupancy[%d] = %d, negative", k, c)
					}
					occCycles += c
					weighted += int64(k) * c
				}
				if occCycles != s.Cycles {
					t.Errorf("sum(Occupancy) = %d, want Cycles = %d", occCycles, s.Cycles)
				}
				// The same partition weighted by level is the busy-station
				// integral.
				if weighted != s.StationBusy {
					t.Errorf("sum(k*Occupancy[k]) = %d, want StationBusy = %d", weighted, s.StationBusy)
				}

				// Every retired or squashed instruction was fetched first.
				if s.Retired > s.Fetched {
					t.Errorf("Retired %d > Fetched %d", s.Retired, s.Fetched)
				}
				if s.Retired+s.Squashed > s.Fetched {
					t.Errorf("Retired %d + Squashed %d > Fetched %d", s.Retired, s.Squashed, s.Fetched)
				}
				if s.Mispredicts > s.Branches {
					t.Errorf("Mispredicts %d > Branches %d", s.Mispredicts, s.Branches)
				}
				if s.LoadsForwarded > s.Loads {
					t.Errorf("LoadsForwarded %d > Loads %d", s.LoadsForwarded, s.Loads)
				}

				// Operand accounting is non-negative and at least covers the
				// committed path (squashed wrong-path issues may add more).
				var fromStations int64
				for d, c := range s.OperandFromStation {
					if d < 1 {
						t.Errorf("OperandFromStation distance %d < 1", d)
					}
					if c < 1 {
						t.Errorf("OperandFromStation[%d] = %d, want >= 1", d, c)
					}
					fromStations += c
				}
				if fromStations+s.OperandFromCommitted < 0 {
					t.Error("negative operand totals")
				}
			})
		}
	}
}

// TestOperandConservation: on a straight-line program nothing is
// squashed, so the operand-distance histogram must account for EXACTLY
// the source operands of the retired instructions — no duplicates, no
// losses. The timeline gives the retired instruction set to count
// against.
func TestOperandConservation(t *testing.T) {
	w := workload.Figure3Sequence()
	for archName, cfg := range archConfigs(8, 2) {
		t.Run(archName, func(t *testing.T) {
			cfg.KeepTimeline = true
			res, err := Run(w.Prog, w.Mem(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if s.Squashed != 0 {
				t.Fatalf("straight-line run squashed %d instructions", s.Squashed)
			}
			var want int64
			for _, rec := range res.Timeline {
				_, _, nr := rec.Inst.ReadRegs()
				want += int64(nr)
			}
			var got int64 = s.OperandFromCommitted
			for _, c := range s.OperandFromStation {
				got += c
			}
			if got != want {
				t.Errorf("operand histogram accounts %d operands, retired instructions read %d", got, want)
			}
		})
	}
}

// TestOperandLowerBoundWithSquashes: with branches in play the histogram
// may include wrong-path issues, but it can never undercount the
// committed path's operands.
func TestOperandLowerBoundWithSquashes(t *testing.T) {
	w := workload.Fib(12)
	cfg := Config{Window: 16, Granularity: 1, KeepTimeline: true}
	res, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Squashed == 0 {
		t.Skip("workload no longer squashes; lower-bound check needs a branchy run")
	}
	var committed int64
	for _, rec := range res.Timeline {
		_, _, nr := rec.Inst.ReadRegs()
		committed += int64(nr)
	}
	var got int64 = s.OperandFromCommitted
	for _, c := range s.OperandFromStation {
		got += c
	}
	if got < committed {
		t.Errorf("operand histogram accounts %d operands, committed path alone reads %d", got, committed)
	}
}
