package core

import (
	"math/bits"
	"runtime"
	"testing"

	"ultrascalar/internal/workload"
)

// BenchmarkEngineCycles measures the engine hot path on the kernel suite
// at n=256: nanoseconds and heap allocations per simulated cycle. The
// optimized engine allocates only at Run setup (scratch buffers plus one
// station per window slot), so allocs/cycle amortizes to ~0 in steady
// state; the seed engine allocated four register-file-sized slices per
// cycle plus a station per fetch.
func BenchmarkEngineCycles(b *testing.B) {
	for _, arch := range []struct {
		name        string
		granularity int
	}{
		{"ultra1", 1},
		{"hybrid", 32},
		{"ultra2", 256},
	} {
		b.Run(arch.name, func(b *testing.B) {
			ws := workload.Kernels()
			cfg := Config{Window: 256, Granularity: arch.granularity}
			var cycles int64
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i%len(ws)]
				res, err := Run(w.Prog, w.Mem(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			if cycles > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
				b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(cycles), "allocs/cycle")
			}
		})
	}
}

// BenchmarkEngineSteadyState measures a single long run (RepeatedScan, a
// loop workload with thousands of cycles) so the per-Run setup
// allocations are fully amortized: allocs/cycle here is the steady-state
// figure the zero-allocation hot path targets.
func BenchmarkEngineSteadyState(b *testing.B) {
	w := workload.RepeatedScan(64, 50)
	cfg := Config{Window: 256, Granularity: 1}
	var cycles int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(w.Prog, w.Mem(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if cycles > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(cycles), "allocs/cycle")
	}
}

// The BenchmarkBitvec* benchmarks isolate the word-level primitives the
// engine's per-cycle phases are built from — the wakeup work-mask
// computation, set-bit iteration, and squash-range clearing — so a
// whole-engine ns/cycle regression can be attributed below the phase
// level. Bit patterns are fixed (a Weyl-sequence fill), matching a busy
// window with mixed started/ready state.

const benchSlots = 256

// benchVec fills a bitvec over benchSlots slots with a deterministic
// pattern of the given approximate density (bits per 64).
func benchVec(density uint64, salt uint64) bitvec {
	v := make(bitvec, benchSlots/64)
	x := salt*0x9e3779b97f4a7c15 + 1
	for w := range v {
		var word uint64
		for k := uint64(0); k < density; k++ {
			x = x*6364136223846793005 + 1442695040888963407
			word |= 1 << (x >> 58)
		}
		v[w] = word
	}
	return v
}

// BenchmarkBitvecWakeupMask measures the per-word wakeup work-set
// computation (busy &^ started &^ ready under a span mask) plus the
// conditional ready-bit update — the skeleton of wakeScan and the
// eligibility masks of execute and memoryPhase.
func BenchmarkBitvecWakeupMask(b *testing.B) {
	busy := benchVec(64, 1)
	started := benchVec(24, 2)
	ready := benchVec(24, 3)
	lo, hi := 5, benchSlots-7
	var woken int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := lo >> 6; w <= (hi-1)>>6; w++ {
			wait := busy[w] &^ started[w] &^ ready[w] & spanMask(lo, hi, w)
			for wait != 0 {
				t := bits.TrailingZeros64(wait)
				wait &= wait - 1
				slot := w<<6 + t
				if slot&3 == 0 { // stand-in for "producer completed"
					ready.set(slot)
					woken++
				}
			}
		}
		ready.clearRange(0, benchSlots)
	}
	_ = woken
}

// BenchmarkBitvecIterSetBits measures the TrailingZeros64 set-bit walk on
// its own — the iteration pattern of every phase's inner loop.
func BenchmarkBitvecIterSetBits(b *testing.B) {
	v := benchVec(20, 4)
	var sum int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w, word := range v {
			for word != 0 {
				t := bits.TrailingZeros64(word)
				word &= word - 1
				sum += w<<6 + t
			}
		}
	}
	_ = sum
}

// BenchmarkBitvecSquashRange measures a squash: counting the discarded
// memory population with onesRange and mask-clearing a slot range across
// all sixteen state bitvecs, as squashAfter does.
func BenchmarkBitvecSquashRange(b *testing.B) {
	vecs := make([]bitvec, 16)
	for i := range vecs {
		vecs[i] = benchVec(48, uint64(i))
	}
	save := make([]bitvec, 16)
	for i := range save {
		save[i] = make(bitvec, benchSlots/64)
		copy(save[i], vecs[i])
	}
	lo, hi := 37, 219
	var memPop int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memPop += vecs[0].onesRange(lo, hi)
		for _, v := range vecs {
			v.clearRange(lo, hi)
		}
		if i&1 == 0 { // restore so the clears are not all no-ops
			for j := range vecs {
				copy(vecs[j], save[j])
			}
		}
	}
	_ = memPop
}
