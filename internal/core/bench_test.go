package core

import (
	"runtime"
	"testing"

	"ultrascalar/internal/workload"
)

// BenchmarkEngineCycles measures the engine hot path on the kernel suite
// at n=256: nanoseconds and heap allocations per simulated cycle. The
// optimized engine allocates only at Run setup (scratch buffers plus one
// station per window slot), so allocs/cycle amortizes to ~0 in steady
// state; the seed engine allocated four register-file-sized slices per
// cycle plus a station per fetch.
func BenchmarkEngineCycles(b *testing.B) {
	for _, arch := range []struct {
		name        string
		granularity int
	}{
		{"ultra1", 1},
		{"hybrid", 32},
		{"ultra2", 256},
	} {
		b.Run(arch.name, func(b *testing.B) {
			ws := workload.Kernels()
			cfg := Config{Window: 256, Granularity: arch.granularity}
			var cycles int64
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i%len(ws)]
				res, err := Run(w.Prog, w.Mem(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			if cycles > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
				b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(cycles), "allocs/cycle")
			}
		})
	}
}

// BenchmarkEngineSteadyState measures a single long run (RepeatedScan, a
// loop workload with thousands of cycles) so the per-Run setup
// allocations are fully amortized: allocs/cycle here is the steady-state
// figure the zero-allocation hot path targets.
func BenchmarkEngineSteadyState(b *testing.B) {
	w := workload.RepeatedScan(64, 50)
	cfg := Config{Window: 256, Granularity: 1}
	var cycles int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(w.Prog, w.Mem(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if cycles > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(cycles), "allocs/cycle")
	}
}
