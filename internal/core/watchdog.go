package core

// The no-retire-progress watchdog. A healthy window always makes
// progress: an issued instruction finishes in bounded time, a ready
// instruction issues, and fetch refills free slots. The only steady
// states with no retirement are genuine deadlocks — an unready head whose
// operands can never arrive (a stuck-at-0 fault, a latency model driven
// to infinity) with fetch blocked by the full ring. Rather than spin to
// MaxCycles, Run detects that state after Config.Watchdog quiet cycles
// and either triggers fault recovery (injection runs) or returns a
// LivelockError snapshot.

// livelocked reports whether the engine can make no further progress:
// nothing is executing, nothing is ready to issue, and fetch cannot
// supply new work. It is deliberately conservative — any in-flight
// instruction, pending forwarding rescan, or fetchable slot counts as
// potential progress — so it cannot fire on a slow-but-live window. The
// per-station conditions reduce to two word expressions over the station
// bitmaps: started &^ finished (will complete) and busy &^ started &
// ready (will issue).
func (e *engine) livelocked() bool {
	if e.fwdDirty {
		return false // producer state changed; readiness may improve next scan
	}
	st := &e.st
	var spans [2][2]int
	spans[0][0], spans[0][1], spans[1][0], spans[1][1] = e.liveSpans()
	for _, sp := range spans {
		for w := sp[0] >> 6; w <= (sp[1]-1)>>6; w++ {
			m := spanMask(sp[0], sp[1], w)
			if st.started[w]&^e.finishedWord(w)&m != 0 {
				return false // executing or awaiting memory: will complete
			}
			if st.busy[w]&^st.started[w]&st.ready[w]&m != 0 {
				return false // will issue (or be granted memory) in a coming cycle
			}
		}
	}
	if e.occ < e.cfg.Window && !e.haltStop && !e.jalrWait &&
		e.fetchPC >= 0 && e.fetchPC < len(e.prog) {
		slot := int(e.nextSeq % int64(e.cfg.Window))
		if !st.busy.get(slot) && !st.drained.get(slot) {
			return false // fetch can still inject new work
		}
	}
	return true
}

// livelockError builds the watchdog's diagnostic snapshot.
func (e *engine) livelockError() error {
	le := &LivelockError{
		Cycle:      e.cycle,
		LastRetire: e.lastRetire,
		FetchPC:    e.fetchPC,
		HeadPC:     -1,
		HeadSeq:    -1,
		Occupied:   e.occ,
		Window:     e.cfg.Window,
	}
	st := &e.st
	if e.occ > 0 {
		h := e.slotAt(0)
		le.HeadPC, le.HeadSeq = int(st.pc[h]), st.seq[h]
	}
	for i := 0; i < e.occ; i++ {
		s := e.slotAt(i)
		started := st.started.get(s)
		switch {
		case started && !e.finishedSlot(s):
			le.Started++
		case started:
			le.Finished++
		case st.ready.get(s):
			le.Ready++
		}
	}
	return le
}
