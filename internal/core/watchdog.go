package core

// The no-retire-progress watchdog. A healthy window always makes
// progress: an issued instruction finishes in bounded time, a ready
// instruction issues, and fetch refills free slots. The only steady
// states with no retirement are genuine deadlocks — an unready head whose
// operands can never arrive (a stuck-at-0 fault, a latency model driven
// to infinity) with fetch blocked by the full ring. Rather than spin to
// MaxCycles, Run detects that state after Config.Watchdog quiet cycles
// and either triggers fault recovery (injection runs) or returns a
// LivelockError snapshot.

// livelocked reports whether the engine can make no further progress:
// nothing is executing, nothing is ready to issue, and fetch cannot
// supply new work. It is deliberately conservative — any in-flight
// instruction, pending forwarding rescan, or fetchable slot counts as
// potential progress — so it cannot fire on a slow-but-live window.
func (e *engine) livelocked() bool {
	if e.fwdDirty {
		return false // producer state changed; readiness may improve next scan
	}
	for _, si := range e.window {
		s := &e.slab[si]
		if s.started && !s.finished() {
			return false // executing or awaiting memory: will complete
		}
		if !s.started && s.opsReady {
			return false // will issue (or be granted memory) in a coming cycle
		}
	}
	if len(e.window) < e.cfg.Window && !e.haltStop && !e.jalrWait &&
		e.fetchPC >= 0 && e.fetchPC < len(e.prog) &&
		e.slots[int(e.nextSeq)%e.cfg.Window] == slotFree {
		return false // fetch can still inject new work
	}
	return true
}

// livelockError builds the watchdog's diagnostic snapshot.
func (e *engine) livelockError() error {
	le := &LivelockError{
		Cycle:      e.cycle,
		LastRetire: e.lastRetire,
		FetchPC:    e.fetchPC,
		HeadPC:     -1,
		HeadSeq:    -1,
		Occupied:   len(e.window),
		Window:     e.cfg.Window,
	}
	if len(e.window) > 0 {
		h := &e.slab[e.window[0]]
		le.HeadPC, le.HeadSeq = h.pc, h.seq
	}
	for _, si := range e.window {
		s := &e.slab[si]
		switch {
		case s.started && !s.finished():
			le.Started++
		case s.started:
			le.Finished++
		case s.opsReady:
			le.Ready++
		}
	}
	return le
}
