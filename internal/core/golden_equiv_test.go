package core

import (
	"reflect"
	"testing"

	"ultrascalar/internal/memory"
	"ultrascalar/internal/workload"
)

// The optimized engine (reused forwarding scratch, station pooling, and
// the incremental-forwarding fast path) must be bit-identical to the seed
// semantics: the full-window scan every cycle. These tests run every
// kernel on all three architectures with the fast path enabled and with
// it force-disabled, and require identical Regs, Stats, and Timeline.

// runBothScanModes runs cfg on w with the incremental fast path on and
// off and returns both results.
func runBothScanModes(t *testing.T, w workload.Workload, cfg Config) (fast, full *Result) {
	t.Helper()
	cfg.KeepTimeline = true
	fast, err := Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("%s: fast-path run: %v", w.Name, err)
	}
	scanEveryCycleForTests = true
	defer func() { scanEveryCycleForTests = false }()
	full, err = Run(w.Prog, w.Mem(), cfg)
	if err != nil {
		t.Fatalf("%s: full-scan run: %v", w.Name, err)
	}
	return fast, full
}

// requireIdentical asserts the two runs are bit-identical in every
// observable output.
func requireIdentical(t *testing.T, name string, fast, full *Result) {
	t.Helper()
	if !reflect.DeepEqual(fast.Regs, full.Regs) {
		t.Errorf("%s: Regs diverge:\n fast %v\n full %v", name, fast.Regs, full.Regs)
	}
	if !reflect.DeepEqual(fast.Stats, full.Stats) {
		t.Errorf("%s: Stats diverge:\n fast %+v\n full %+v", name, fast.Stats, full.Stats)
	}
	if !reflect.DeepEqual(fast.Timeline, full.Timeline) {
		t.Errorf("%s: Timeline diverges (%d vs %d records)",
			name, len(fast.Timeline), len(full.Timeline))
	}
	if !fast.Mem.Equal(full.Mem) {
		t.Errorf("%s: memory diverges: %s", name, fast.Mem.Diff(full.Mem))
	}
}

// archConfigs returns the three architectures' engine configurations at
// window n (hybrid clusters of c).
func archConfigs(n, c int) map[string]Config {
	return map[string]Config{
		"ultra1": {Window: n, Granularity: 1},
		"hybrid": {Window: n, Granularity: c},
		"ultra2": {Window: n, Granularity: n},
	}
}

func TestIncrementalForwardingMatchesFullScan(t *testing.T) {
	kernels := append(workload.Kernels(), workload.ExtendedKernels()...)
	for arch, cfg := range archConfigs(16, 4) {
		for _, w := range kernels {
			fast, full := runBothScanModes(t, w, cfg)
			requireIdentical(t, arch+"/"+w.Name, fast, full)
		}
	}
}

func TestIncrementalForwardingMatchesFullScanWideWindow(t *testing.T) {
	for arch, cfg := range archConfigs(64, 16) {
		for _, w := range workload.Kernels() {
			fast, full := runBothScanModes(t, w, cfg)
			requireIdentical(t, arch+"/"+w.Name, fast, full)
		}
	}
}

// Self-timed configurations (ForwardLatency) gate operand availability on
// the cycle number, so the engine forces a scan every cycle; the
// equivalence must still hold trivially, and the results must also match
// across granularities as the seed did.
func TestIncrementalForwardingSelfTimed(t *testing.T) {
	log2 := func(d int) int {
		if d <= 1 {
			return 0
		}
		extra := 0
		for 1<<extra < d {
			extra++
		}
		return extra
	}
	for arch, cfg := range archConfigs(16, 4) {
		cfg.ForwardLatency = log2
		for _, w := range workload.Kernels() {
			fast, full := runBothScanModes(t, w, cfg)
			requireIdentical(t, arch+"/selftimed/"+w.Name, fast, full)
		}
	}
}

// The fast path must also hold under the extension features that touch
// forwarding state from unusual places: memory renaming (store-to-load
// hits complete loads inside memoryPhase), shared ALUs (ready stations
// stall without producer-state changes), the fat-tree memory system
// (variable completion times), and block/trace fetch.
func TestIncrementalForwardingExtensions(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"renaming", Config{Window: 16, Granularity: 1, MemRenaming: true}},
		{"shared-alus", Config{Window: 32, Granularity: 1, NumALUs: 2}},
		{"block-fetch", Config{Window: 16, Granularity: 1, Fetch: FetchBlock}},
		{"trace-fetch", Config{Window: 16, Granularity: 1, Fetch: FetchTrace}},
		{"ras", Config{Window: 16, Granularity: 1, ReturnStack: 8}},
	}
	for _, tc := range cases {
		for _, w := range workload.Kernels() {
			fast, full := runBothScanModes(t, w, tc.cfg)
			requireIdentical(t, tc.name+"/"+w.Name, fast, full)
		}
	}
}

func TestIncrementalForwardingMemSystem(t *testing.T) {
	mk := func() Config {
		cfg := memory.DefaultConfig(16, memory.MConst(2))
		return Config{Window: 16, Granularity: 1, MemSystem: memory.NewSystem(cfg)}
	}
	for _, w := range workload.Kernels() {
		// Fresh memory systems per run: the system accumulates stats.
		cfgFast := mk()
		cfgFast.KeepTimeline = true
		fast, err := Run(w.Prog, w.Mem(), cfgFast)
		if err != nil {
			t.Fatalf("%s: fast-path run: %v", w.Name, err)
		}
		scanEveryCycleForTests = true
		cfgFull := mk()
		cfgFull.KeepTimeline = true
		full, err := Run(w.Prog, w.Mem(), cfgFull)
		scanEveryCycleForTests = false
		if err != nil {
			t.Fatalf("%s: full-scan run: %v", w.Name, err)
		}
		requireIdentical(t, "memsys/"+w.Name, fast, full)
	}
}
