package core

// Struct-of-arrays station storage. The engine keeps no per-station
// structs: every station field lives in a parallel slice indexed by slot,
// and every boolean station flag lives in a bitvec — a []uint64 bitmap
// with one bit per slot. The per-cycle phases then run word-at-a-time:
// math/bits.TrailingZeros64 walks set bits, OnesCount64 takes occupancy
// and squash counts, and mask algebra clears whole squash ranges — the
// software analogue of the paper's wired parallel-prefix datapath, where
// one gate per station evaluates in parallel instead of a pointer chase
// per station.
//
// Layout invariants:
//
//   - Slots are assigned round-robin by dynamic sequence number
//     (slot = seq mod Window), so the live window always occupies a
//     contiguous circular run of slots: ages 0..occ-1 map to slots
//     head, head+1, ..., (head+occ-1) mod Window. Age-order iteration is
//     two linear spans (liveSpans), never a modulo per station.
//   - Every state bitvec (stateVecs: ready, started, done, ... and the
//     class bits) is a subset of busy: retiring and squashing clear a
//     slot's bits in all of them, so fetch only sets bits and word scans
//     never need a busy mask to exclude stale state.
//   - drained is NOT in stateVecs: it marks retired slots waiting for
//     their granularity group to drain, and is cleared word-wise when the
//     group's drained popcount reaches the granularity.

import (
	"math/bits"

	"ultrascalar/internal/isa"
)

// bitvec is a bitmap over station slots, one uint64 word per 64 slots.
type bitvec []uint64

func (b bitvec) get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }
func (b bitvec) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitvec) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }

// put sets bit i to v without branching on v.
func (b bitvec) put(i int, v bool) {
	w, s := i>>6, uint(i)&63
	var x uint64
	if v {
		x = 1
	}
	b[w] = b[w]&^(1<<s) | x<<s
}

// spanMask returns the bits of word w that fall inside the slot range
// [lo, hi). It is the edge-mask primitive every word-at-a-time loop uses
// to trim the first and last word of a span.
func spanMask(lo, hi, w int) uint64 {
	base := w << 6
	l, h := lo-base, hi-base
	if l < 0 {
		l = 0
	}
	if h > 64 {
		h = 64
	}
	if l >= h {
		return 0
	}
	m := ^uint64(0) << uint(l)
	if h < 64 {
		m &= 1<<uint(h) - 1
	}
	return m
}

// clearRange clears all bits in [lo, hi).
func (b bitvec) clearRange(lo, hi int) {
	if lo >= hi {
		return
	}
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		b[w] &^= spanMask(lo, hi, w)
	}
}

// onesRange counts set bits in [lo, hi).
func (b bitvec) onesRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	n := 0
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		n += bits.OnesCount64(b[w] & spanMask(lo, hi, w))
	}
	return n
}

// stations is the struct-of-arrays station file: one parallel slice per
// scalar field, one bitvec per boolean flag, all indexed by slot. The
// slices are carved from one arena allocation per element type, so
// constructing a window is a handful of allocations regardless of size.
type stations struct {
	// Scalar state.
	seq       []int64 // dynamic sequence number
	issue     []int64 // cycle the instruction issued
	doneAt    []int64 // first cycle the result is visible to consumers
	memDoneAt []int64 // cycle a granted memory access completes
	srcSeq0   []int64 // pending producer's seq (valid while srcSlot0 >= 0)
	srcSeq1   []int64

	pc         []int32
	predNext   []int32 // predicted successor; -1: unknown (JALR, cold BTB)
	actualNext []int32 // resolved successor (valid once resolved)
	remaining  []int32 // execution cycles left once started
	histSnap   []int32 // speculative-history snapshot (SpecPredictor)
	srcD0      []int32 // producer distance of operand 0, -1 = committed file
	srcD1      []int32 // producer distance of operand 1
	// Wake-mode pending-producer links (engine.go attachOperands): the
	// slot of the still-executing producer each operand waits on, -1 once
	// the value is latched, plus the producer's sequence number so a wake
	// drain can tell a retired producer from the slot's next occupant.
	srcSlot0 []int32
	srcSlot1 []int32
	// Wake-mode consumer lists: consHead[p] heads a singly-linked list of
	// operand nodes (node = consumerSlot<<1 | operandIndex) waiting on the
	// producer in slot p; consNext links nodes (2 per slot). wakeSlot and
	// wakeSeq are the completed-producer event queue drained by forward
	// (engine.wakeN is its length).
	consHead []int32
	consNext []int32
	wakeSlot []int32
	wakeSeq  []int64

	a, b      []isa.Word // latched operands
	result    []isa.Word
	storeAddr []isa.Word // granted store's effect (fault campaigns only)
	storeVal  []isa.Word

	dest  []uint8
	class []uint8
	r1    []uint8 // source registers, decoded once at fetch
	r2    []uint8
	nsrc  []uint8 // static source-register count (ReadRegs)
	srcN  []uint8 // operands latched by the last scan (0 until scanned)

	inst []isa.Inst

	// Flag bitvecs, one bit per slot. Everything except drained is a
	// subset of busy (see the package comment above).
	busy        bitvec // live (fetched, unretired, unsquashed) station
	ready       bitvec // operands latched and available (opsReady)
	started     bitvec
	done        bitvec // result available to consumers (end of done cycle)
	resolved    bitvec // control flow resolved
	flowDone    bitvec // resolution processed by the recovery phase
	memInFlight bitvec
	memDone     bitvec
	writes      bitvec // instruction writes a register
	usedSpec    bitvec // predicted through PredictSpec
	parityBad   bitvec // result bits flipped after parity generation
	load        bitvec // class bits, precomputed at fetch for word scans
	store       bitvec
	flow        bitvec
	branch      bitvec
	alu         bitvec // consumes an ALU slot (class&clsNoALU == 0)
	drained     bitvec // retired, waiting for its granularity group

	// stateVecs lists every bitvec except drained: retire clears a slot
	// in all of them, squash clears whole ranges with mask algebra, and
	// fetch only sets bits — which is what keeps every vec ⊆ busy.
	stateVecs []bitvec
}

// carve slices n elements off the front of an arena, capacity-clamped so
// the carved slices can never alias each other through append.
func carve[T any](arena *[]T, n int) []T {
	s := (*arena)[:n:n]
	*arena = (*arena)[n:]
	return s
}

// stationArena64 and stationArenaWords are the int64 and isa.Word arena
// shares of a w-slot station file; RunCtx sizes its combined arenas with
// them so the station and engine slices come out of one allocation per
// element type.
func stationArena64(w int) int    { return 7 * w }
func stationArenaWords(w int) int { return 5 * w }

// newStations builds the station file for a w-slot window, carving the
// int64 and isa.Word slices off the caller's arenas (sized with
// stationArena64/stationArenaWords).
func newStations(w int, i64 *[]int64, wrd *[]isa.Word) stations {
	nw := (w + 63) >> 6
	i32 := make([]int32, 13*w)
	u8 := make([]uint8, 6*w)
	bw := make([]uint64, 17*nw)
	var st stations
	st.seq = carve(i64, w)
	st.issue = carve(i64, w)
	st.doneAt = carve(i64, w)
	st.memDoneAt = carve(i64, w)
	st.srcSeq0 = carve(i64, w)
	st.srcSeq1 = carve(i64, w)
	st.pc = carve(&i32, w)
	st.predNext = carve(&i32, w)
	st.actualNext = carve(&i32, w)
	st.remaining = carve(&i32, w)
	st.histSnap = carve(&i32, w)
	st.srcD0 = carve(&i32, w)
	st.srcD1 = carve(&i32, w)
	st.srcSlot0 = carve(&i32, w)
	st.srcSlot1 = carve(&i32, w)
	st.consHead = carve(&i32, w)
	st.consNext = carve(&i32, 2*w)
	st.wakeSlot = carve(&i32, w)
	st.wakeSeq = carve(i64, w)
	st.a = carve(wrd, w)
	st.b = carve(wrd, w)
	st.result = carve(wrd, w)
	st.storeAddr = carve(wrd, w)
	st.storeVal = carve(wrd, w)
	st.dest = carve(&u8, w)
	st.class = carve(&u8, w)
	st.r1 = carve(&u8, w)
	st.r2 = carve(&u8, w)
	st.nsrc = carve(&u8, w)
	st.srcN = carve(&u8, w)
	st.inst = make([]isa.Inst, w)
	st.busy = carve(&bw, nw)
	st.ready = carve(&bw, nw)
	st.started = carve(&bw, nw)
	st.done = carve(&bw, nw)
	st.resolved = carve(&bw, nw)
	st.flowDone = carve(&bw, nw)
	st.memInFlight = carve(&bw, nw)
	st.memDone = carve(&bw, nw)
	st.writes = carve(&bw, nw)
	st.usedSpec = carve(&bw, nw)
	st.parityBad = carve(&bw, nw)
	st.load = carve(&bw, nw)
	st.store = carve(&bw, nw)
	st.flow = carve(&bw, nw)
	st.branch = carve(&bw, nw)
	st.alu = carve(&bw, nw)
	st.drained = carve(&bw, nw)
	st.stateVecs = []bitvec{
		st.busy, st.ready, st.started, st.done, st.resolved, st.flowDone,
		st.memInFlight, st.memDone, st.writes, st.usedSpec, st.parityBad,
		st.load, st.store, st.flow, st.branch, st.alu,
	}
	return st
}
