package core

import (
	"testing"

	"ultrascalar/internal/asm"
	"ultrascalar/internal/branch"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/workload"
)

// TestPartialClusterAtHalt: a program whose length is not a multiple of
// the cluster size still halts cleanly under cluster granularity.
func TestPartialClusterAtHalt(t *testing.T) {
	w := workload.Workload{Name: "partial", Prog: asm.MustAssemble(`
		li r1, 1
		li r2, 2
		add r3, r1, r2
		halt
	`).Insts} // 4 instructions; cluster size 8
	res := crossCheck(t, w, Config{Window: 16, Granularity: 8})
	if res.Regs[3] != 3 {
		t.Errorf("r3 = %d", res.Regs[3])
	}
}

// TestMispredictInsideCluster: a mispredicted branch mid-cluster squashes
// and refills within the cluster without corrupting state.
func TestMispredictInsideCluster(t *testing.T) {
	w := workload.Branchy(60, false)
	for _, g := range []int{4, 8, 16} {
		res := crossCheck(t, w, Config{Window: 16, Granularity: g,
			Predictor: branch.Static(false)})
		if res.Stats.Mispredicts == 0 {
			t.Errorf("g=%d: expected mispredicts with a static-not-taken predictor", g)
		}
	}
}

// TestJalrTargetChanges: an indirect jump whose target changes between
// executions triggers BTB mispredictions but stays architecturally
// correct (a "function pointer" switch).
func TestJalrTargetChanges(t *testing.T) {
	w := workload.Workload{Name: "fnptr", Prog: asm.MustAssemble(`
		li r5, 0       ; accumulator
		li r1, fn1     ; function pointer (labels resolve absolute in li)
		jal r31, dispatch
		li r1, fn2
		jal r31, dispatch
		halt
	dispatch:
		jalr r30, r1, 0
	fn1:
		addi r5, r5, 10
		jalr r30, r31, 0
	fn2:
		addi r5, r5, 200
		jalr r30, r31, 0
	`).Insts}
	res := crossCheck(t, w, Config{Window: 16, Granularity: 1})
	if res.Regs[5] != 210 {
		t.Errorf("r5 = %d, want 210", res.Regs[5])
	}
}

// TestReturnStackSpeedsUpRecursion: hanoi and quicksort return through
// JALR; the RAS predicts those returns, where the BTB alone mispredicts
// whenever the call site changed.
func TestReturnStackSpeedsUpRecursion(t *testing.T) {
	for _, w := range []workload.Workload{workload.Hanoi(7), workload.QuickSort(24)} {
		base := crossCheck(t, w, Config{Window: 32, Granularity: 1})
		ras := crossCheck(t, w, Config{Window: 32, Granularity: 1, ReturnStack: 16})
		if ras.Stats.Cycles >= base.Stats.Cycles {
			t.Errorf("%s: RAS (%d cycles) should beat BTB-only (%d)",
				w.Name, ras.Stats.Cycles, base.Stats.Cycles)
		}
		if ras.Stats.Mispredicts >= base.Stats.Mispredicts {
			t.Errorf("%s: RAS mispredicts %d should be below %d",
				w.Name, ras.Stats.Mispredicts, base.Stats.Mispredicts)
		}
	}
}

// TestRASBasics exercises the stack directly.
func TestRASBasics(t *testing.T) {
	r := branch.NewRAS(2)
	if _, ok := r.Pop(); ok {
		t.Error("empty pop should fail")
	}
	r.Push(10)
	r.Push(20)
	r.Push(30) // evicts 10
	if r.Depth() != 2 {
		t.Errorf("depth %d, want 2", r.Depth())
	}
	if a, _ := r.Pop(); a != 30 {
		t.Errorf("pop %d, want 30", a)
	}
	if a, _ := r.Pop(); a != 20 {
		t.Errorf("pop %d, want 20", a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("stack should be empty")
	}
}

// TestSelfTimedWithMemory: distance-dependent forwarding composes with
// the fat-tree memory model.
func TestSelfTimedWithMemory(t *testing.T) {
	sys := memory.NewSystem(memory.DefaultConfig(16, memory.MConst(2)))
	crossCheck(t, workload.MemStream(30), Config{
		Window: 16, Granularity: 1,
		ForwardLatency: log2Latency,
		MemSystem:      sys,
	})
}

// TestWindowOfLongOps: a window saturated with divides drains correctly
// and in order.
func TestWindowOfLongOps(t *testing.T) {
	src := "li r1, 1000\nli r2, 3\n"
	for i := 0; i < 12; i++ {
		src += "div r1, r1, r2\n"
	}
	src += "halt\n"
	w := workload.Workload{Name: "divchain", Prog: asm.MustAssemble(src).Insts}
	res := crossCheck(t, w, Config{Window: 4, Granularity: 4})
	// 12 chained 10-cycle divides bound the runtime from below.
	if res.Stats.Cycles < 120 {
		t.Errorf("cycles %d below the divide-chain bound", res.Stats.Cycles)
	}
}

// TestFetchWidthOne: the most constrained fetch still matches the golden
// model across granularities.
func TestFetchWidthOne(t *testing.T) {
	for _, g := range []int{1, 8} {
		crossCheck(t, workload.GCD(252, 105), Config{Window: 8, Granularity: g, FetchWidth: 1})
	}
}

// TestHaltOnWrongPath: a halt fetched speculatively on the wrong path is
// squashed and execution continues.
func TestHaltOnWrongPath(t *testing.T) {
	w := workload.Workload{Name: "spec-halt", Prog: asm.MustAssemble(`
		li r1, 1
		li r2, 2
		blt r1, r2, go  ; taken; a not-taken predictor falls into halt
		halt            ; wrong path
	go:
		add r3, r1, r2
		halt
	`).Insts}
	res := crossCheck(t, w, Config{Window: 8, Granularity: 1,
		Predictor: branch.Static(false)})
	if res.Regs[3] != 3 {
		t.Errorf("r3 = %d, want 3 (wrong-path halt must be squashed)", res.Regs[3])
	}
	if res.Stats.Mispredicts == 0 {
		t.Error("expected a misprediction")
	}
}

// TestBackToBackMispredicts: consecutive unpredictable branches recover
// one at a time.
func TestBackToBackMispredicts(t *testing.T) {
	w := workload.Workload{Name: "b2b", Prog: asm.MustAssemble(`
		li r1, 1
		li r2, 2
		blt r1, r2, a   ; taken
		halt
	a:
		blt r2, r1, b   ; not taken
		blt r1, r2, c   ; taken
		halt
	b:
		halt
	c:
		add r3, r1, r2
		halt
	`).Insts}
	res := crossCheck(t, w, Config{Window: 8, Granularity: 1,
		Predictor: branch.Static(false)})
	if res.Regs[3] != 3 {
		t.Errorf("r3 = %d", res.Regs[3])
	}
}
