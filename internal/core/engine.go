package core

import (
	"context"
	"fmt"

	"ultrascalar/internal/branch"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/tracecache"
)

// Instruction-class bits, computed once at fetch so the per-cycle phases
// avoid re-dispatching on the opcode.
const (
	clsLoad uint8 = 1 << iota
	clsStore
	clsBranch
	clsJump
	clsHalt
	clsNop
)

const (
	clsMem   = clsLoad | clsStore
	clsFlow  = clsBranch | clsJump
	clsNoALU = clsMem | clsHalt | clsNop
)

func classify(in isa.Inst) uint8 {
	switch {
	case in.IsLoad():
		return clsLoad
	case in.IsStore():
		return clsStore
	case in.IsBranch():
		return clsBranch
	case in.IsJump():
		return clsJump
	case in.IsHalt():
		return clsHalt
	case in.Op == isa.OpNop:
		return clsNop
	}
	return 0
}

// station is one occupied execution station.
type station struct {
	seq  int64
	pc   int
	inst isa.Inst
	slot int

	writes bool
	dest   uint8
	class  uint8

	predictedNext int // -1: unknown (JALR with a cold BTB)

	// Operand state, recomputed every cycle by the forwarding scan until
	// the instruction starts (paper: stations latch incoming values each
	// cycle).
	opsReady bool
	a, b     isa.Word
	srcDist  []int // producer distance per source operand, -1 = committed file

	// Execution state.
	started   bool
	remaining int
	done      bool // result available to consumers (end of the done cycle)
	result    isa.Word

	// Control flow.
	resolved   bool
	flowDone   bool // resolution processed by the recovery phase
	actualNext int
	histSnap   int  // speculative-history snapshot (SpecPredictor)
	usedSpec   bool // predicted through PredictSpec

	// Memory.
	memInFlight bool
	memDoneAt   int64
	memDone     bool

	issue  int64
	doneAt int64 // first cycle the result is visible to consumers

	// Fault injection (set only when a fault plan is armed). parityBad
	// marks a result whose bits were flipped after parity generation;
	// storeAddr/storeVal record a granted store's architectural effect for
	// the retire-time golden cross-check.
	parityBad           bool
	storeAddr, storeVal isa.Word
}

// finished reports whether the station's instruction has completed all its
// effects and may retire once it reaches the head of the window.
func (s *station) finished() bool {
	switch {
	case s.class&clsStore != 0:
		return s.memDone
	case s.class&clsFlow != 0:
		return s.resolved
	default:
		return s.done
	}
}

// slotState tracks reuse of execution-station slots at the configured
// granularity.
type slotState uint8

const (
	slotFree slotState = iota
	slotOccupied
	slotDrained // retired, waiting for its whole group to drain
)

type engine struct {
	cfg    Config
	prog   []isa.Inst
	mem    *memory.Flat
	commit []isa.Word // committed register file (held by the oldest station)
	// commitProducer holds, per register, the dynamic sequence number of
	// the retired instruction that produced the committed value (-1 for
	// initial values), for the operand-distance statistic and the
	// self-timed forwarding model; commitDoneAt holds the cycle the value
	// became visible.
	commitProducer []int64
	commitDoneAt   []int64

	// slab holds all cfg.Window execution stations in one allocation,
	// indexed by slot: a slot's reuse (tracked by slots at the configured
	// granularity) IS the station's reuse, exactly the hardware's scheme.
	// window lists the live stations' slots in age order, oldest first. It
	// is always anchored at windowBuf[0] (retire copies survivors down),
	// so fetch appends never reallocate; holding indices instead of
	// pointers keeps the per-cycle copies free of GC write barriers.
	slab      []station
	window    []int32
	windowBuf []int32
	// srcBuf backs every station's srcDist (two entries each), so the
	// operand-distance slices never allocate.
	srcBuf  []int
	slots   []slotState
	nextSeq int64
	// memCount is the number of loads and stores in the window; the
	// completion and memory phases are skipped when it is zero.
	memCount int

	fetchPC  int
	haltStop bool
	jalrWait bool

	trace      *tracecache.Cache
	traceBuild *tracecache.Builder
	ras        *branch.RAS

	// Forwarding scratch (length NumRegs), reused every scan instead of
	// allocating four register-file-sized slices per cycle.
	fwdVals       []isa.Word
	fwdReady      []bool
	fwdWriter     []int64
	fwdWriterDone []int64
	// fwdDirty marks that register-producer state changed since the last
	// forwarding scan (completion, retirement, fetch, or squash). On clean
	// cycles the scan's inputs are bit-identical to the previous cycle's,
	// so forward() skips the full-window rescan. scanEveryCycle disables
	// the fast path (used by the equivalence tests; also forced when
	// ForwardLatency is set, since self-timed availability depends on the
	// cycle number, not only on producer state).
	fwdDirty       bool
	scanEveryCycle bool

	// memoryPhase scratch, reused every cycle.
	memReqs  []memory.Request
	memCands []memCand

	// operandDist is the hot-path operand-distance histogram; it is
	// converted to Stats.OperandFromStation when the run completes.
	operandDist []int64

	cycle    int64
	stats    Stats
	timeline []InstRecord

	// trc receives pipeline events when tracing is on (cfg.Tracer). Every
	// hot-path hook is guarded by a nil check, so the traced path costs
	// nothing measurable when off; obs.Tracer.Record itself is
	// //uslint:hotpath and allocation-free.
	trc *obs.Tracer
	// met / metGauges drive the periodic metrics snapshots (cfg.Metrics).
	// Snapshot ticks run from the Run loop, not from the hot-path chain.
	met       *obs.Registry
	metGauges engineGauges

	// flt is the fault-injection state (cfg.FaultPlan); nil on normal
	// runs, where the faulted paths cost one pointer test. lastRetire is
	// the most recent cycle that retired an instruction (-1 before the
	// first), driving the livelock watchdog.
	flt        *faultState
	lastRetire int64

	// ctx is the run's cancellation context (RunCtx); nil when the run is
	// uncancellable (Run), where the per-cycle probe costs one pointer
	// test. ctxEvery is the probe period in cycles — one watchdog
	// interval, so a canceled run returns within one interval.
	ctx      context.Context
	ctxEvery int64
}

// engineGauges are the engine's registered metrics instruments, resolved
// once at Run setup so the periodic tick does no map lookups.
type engineGauges struct {
	occupancy, ipc, retired, fetched, squashed, mispredicts, cycleNo *obs.Gauge
}

// memCand pairs an eligible memory station with its effective address for
// the grant phase.
type memCand struct {
	s    *station
	addr isa.Word
}

// Run executes prog on the configured processor with the given data
// memory (mutated in place). The run cannot be canceled; use RunCtx to
// bound it by a context.
func Run(prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	return RunCtx(nil, prog, mem, cfg)
}

// RunCtx is Run with cooperative cancellation: the engine probes
// ctx.Err() once per watchdog interval (64 cycles when the watchdog is
// disabled) from the per-cycle chain and, when the context is canceled
// or past its deadline, abandons the run and returns a *CanceledError
// wrapping ctx.Err(). The probe is nil-guarded and allocation-free, so
// the measured hot path is unchanged; partial architectural state is
// discarded exactly as on any other run error. A nil ctx (what Run
// passes) disables the probe entirely.
func RunCtx(ctx context.Context, prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:            cfg,
		prog:           prog,
		mem:            mem,
		commit:         make([]isa.Word, cfg.NumRegs),
		commitProducer: make([]int64, cfg.NumRegs),
		commitDoneAt:   make([]int64, cfg.NumRegs),
		slots:          make([]slotState, cfg.Window),
		slab:           make([]station, cfg.Window),
		windowBuf:      make([]int32, cfg.Window),
		srcBuf:         make([]int, 2*cfg.Window),
		fwdVals:        make([]isa.Word, cfg.NumRegs),
		fwdReady:       make([]bool, cfg.NumRegs),
		fwdWriter:      make([]int64, cfg.NumRegs),
		fwdWriterDone:  make([]int64, cfg.NumRegs),
		operandDist:    make([]int64, cfg.Window+1),
		fwdDirty:       true,
		scanEveryCycle: cfg.ForwardLatency != nil || scanEveryCycleForTests,
	}
	e.window = e.windowBuf[:0]
	for i := range e.slab {
		e.slab[i].srcDist = e.srcBuf[2*i : 2*i : 2*i+2]
	}
	for r := range e.commitProducer {
		e.commitProducer[r] = -1
	}
	if cfg.InitRegs != nil {
		copy(e.commit, cfg.InitRegs)
	}
	e.stats.OperandFromStation = make(map[int]int64)
	e.stats.Occupancy = make([]int64, cfg.Window+1)
	if cfg.KeepTimeline {
		e.timeline = make([]InstRecord, 0, 4*cfg.Window)
	}
	if cfg.Fetch == FetchTrace {
		e.trace = tracecache.New(cfg.TraceSetBits, cfg.TraceLen)
		e.traceBuild = tracecache.NewBuilder(e.trace)
	}
	if cfg.ReturnStack > 0 {
		e.ras = branch.NewRAS(cfg.ReturnStack)
	}
	e.trc = cfg.Tracer
	e.lastRetire = -1
	e.ctx = ctx
	e.ctxEvery = cfg.Watchdog
	if e.ctxEvery <= 0 {
		e.ctxEvery = 64 // watchdog disabled: keep cancellation responsive
	}
	if cfg.FaultPlan != nil && len(cfg.FaultPlan.Faults) > 0 {
		e.flt = newFaultState(prog, mem, cfg)
	}
	if cfg.Metrics != nil {
		e.met = cfg.Metrics
		e.metGauges = engineGauges{
			occupancy:   e.met.Gauge("core.occupancy"),
			ipc:         e.met.Gauge("core.ipc"),
			retired:     e.met.Gauge("core.retired"),
			fetched:     e.met.Gauge("core.fetched"),
			squashed:    e.met.Gauge("core.squashed"),
			mispredicts: e.met.Gauge("core.mispredicts"),
			cycleNo:     e.met.Gauge("core.cycle"),
		}
	}
	e.fetch() // initial fill: the window is loaded before the first cycle

	for e.cycle = 0; e.cycle < cfg.MaxCycles; e.cycle++ {
		if len(e.window) == 0 {
			if e.haltStop {
				// The halt retired and ended the run inside retire();
				// reaching here with haltStop means fetch stopped but halt
				// never entered: impossible, defensive.
				return nil, ErrPCOutOfRange
			}
			return nil, fmt.Errorf("%w: pc=%d len=%d", ErrPCOutOfRange, e.fetchPC, len(e.prog))
		}
		// Occupancy is measured as the window state entering the cycle.
		e.stats.StationBusy += int64(len(e.window))
		e.stats.Occupancy[len(e.window)]++
		if e.met != nil && e.cycle%e.cfg.MetricsEvery == 0 {
			e.metricsTick()
		}
		if err := e.ctxErr(); err != nil {
			return nil, &CanceledError{Cycle: e.cycle, Err: err}
		}
		if cfg.Watchdog > 0 && e.cycle-e.lastRetire > cfg.Watchdog && e.livelocked() {
			if !e.watchdogRecover() {
				return nil, e.livelockError()
			}
		}
		e.completions()
		if err := e.forward(); err != nil {
			return nil, err
		}
		if e.flt != nil {
			e.faultCycle()
		}
		if err := e.execute(); err != nil {
			return nil, err
		}
		e.memoryPhase()
		e.recover()
		if halted := e.retire(); halted {
			e.stats.Cycles = e.cycle + 1
			e.finishStats()
			if e.met != nil {
				e.metricsTick() // final snapshot at halt
			}
			return &Result{Regs: e.commit, Mem: e.mem, Stats: e.stats, Timeline: e.timeline}, nil
		}
		e.fetch()
	}
	return nil, ErrNoHalt
}

// ctxErr is the per-cycle cancellation probe: every ctxEvery cycles it
// returns the run context's cancellation error, nil otherwise. It sits
// in the per-cycle chain, so it is //uslint:hotpath — nil-guarded, one
// modulo and one interface call, no allocation (wrapping the error into
// a CanceledError happens on the cold exit path in RunCtx).
//
//uslint:hotpath
func (e *engine) ctxErr() error {
	if e.ctx == nil || e.cycle%e.ctxEvery != 0 {
		return nil
	}
	return e.ctx.Err()
}

// scanEveryCycleForTests disables the incremental-forwarding fast path
// for every subsequent Run, forcing the full-window scan each cycle (the
// seed semantics). It exists for the golden equivalence tests; set it
// before starting runs, never concurrently with them.
var scanEveryCycleForTests bool

// metricsTick publishes the engine gauges and takes one registry
// snapshot. It runs from the Run loop every MetricsEvery cycles (and
// once at halt), outside the //uslint:hotpath chain, so snapshot
// allocations never touch the measured per-cycle path.
func (e *engine) metricsTick() {
	g := e.metGauges
	g.occupancy.Set(float64(len(e.window)))
	g.retired.Set(float64(e.stats.Retired))
	g.fetched.Set(float64(e.stats.Fetched))
	g.squashed.Set(float64(e.stats.Squashed))
	g.mispredicts.Set(float64(e.stats.Mispredicts))
	g.cycleNo.Set(float64(e.cycle))
	ipc := 0.0
	if e.cycle > 0 {
		ipc = float64(e.stats.Retired) / float64(e.cycle)
	}
	g.ipc.Set(ipc)
	e.met.Snapshot(e.cycle)
}

// finishStats materializes the operand-distance histogram into the
// public Stats map once the run completes.
func (e *engine) finishStats() {
	for d, c := range e.operandDist {
		if c != 0 {
			e.stats.OperandFromStation[d] = c
		}
	}
}

// completions makes memory data that arrived at the end of the previous
// cycle visible.
//
//uslint:hotpath
func (e *engine) completions() {
	if e.memCount == 0 {
		return
	}
	for _, si := range e.window {
		s := &e.slab[si]
		if s.memInFlight && !s.memDone && s.memDoneAt <= e.cycle {
			s.memDone = true
			s.done = true
			e.fwdDirty = true
			if e.trc != nil {
				e.trc.Record(obs.EvExec, e.cycle, s.seq, int32(s.pc), int32(s.slot), 0)
			}
		}
	}
}

// forward performs the per-register CSPP scan: each station receives, for
// each source register, the (value, ready) pair inserted by the nearest
// preceding modifier, or the committed register file at the oldest station
// (paper Figure 1/4 semantics; one full-window propagation per cycle).
//
// Fast path: the scan's inputs are the committed register file and the
// per-station (writes, dest, result, done, seq, doneAt) fields, all of
// which change only on completion, retirement, fetch, or squash. On cycles
// with none of those events the previous scan's outputs (opsReady, a, b,
// srcDist) are still exact, so the whole rescan is skipped. The hardware
// analogy holds: a CSPP whose inputs are unchanged settles to the same
// outputs. Self-timed configurations (ForwardLatency) gate availability on
// the cycle number as well, so they scan every cycle.
//
//uslint:hotpath
func (e *engine) forward() error {
	if !e.fwdDirty && !e.scanEveryCycle {
		return nil
	}
	e.fwdDirty = false
	n := e.cfg.NumRegs
	vals := e.fwdVals
	ready := e.fwdReady
	writer := e.fwdWriter         // seq of the value's producer, -1 = initial
	writerDone := e.fwdWriterDone // cycle the value became visible
	copy(vals, e.commit)
	copy(writer, e.commitProducer)
	copy(writerDone, e.commitDoneAt)
	for r := range ready {
		ready[r] = true
	}
	fl := e.cfg.ForwardLatency
	for _, si := range e.window {
		s := &e.slab[si]
		if !s.started {
			r1, r2, nr := s.inst.ReadRegs()
			s.opsReady = true
			s.srcDist = s.srcDist[:0]
			for k := 0; k < nr; k++ {
				r := r1
				if k == 1 {
					r = r2
				}
				if int(r) >= n {
					return fmt.Errorf("core: %s reads r%d but machine has %d registers", s.inst, r, n) //uslint:allow hotpathalloc -- cold error path, terminates the run
				}
				avail := ready[r]
				if avail && fl != nil && writer[r] >= 0 {
					// Self-timed datapath: the value reaches a consumer d
					// instructions away only after the extra path latency.
					extra := fl(int(s.seq - writer[r]))
					if e.cycle < writerDone[r]+int64(extra) {
						avail = false
					}
				}
				if !avail {
					s.opsReady = false
				}
				v := vals[r]
				if k == 0 {
					s.a = v
				} else {
					s.b = v
				}
				if writer[r] < 0 {
					s.srcDist = append(s.srcDist, -1) //uslint:allow hotpathalloc -- srcDist is backed by the station's fixed cap-2 srcBuf
				} else {
					s.srcDist = append(s.srcDist, int(s.seq-writer[r])) //uslint:allow hotpathalloc -- srcDist is backed by the station's fixed cap-2 srcBuf
				}
			}
		}
		if s.writes {
			if int(s.dest) >= n {
				return fmt.Errorf("core: %s writes r%d but machine has %d registers", s.inst, s.dest, n) //uslint:allow hotpathalloc -- cold error path, terminates the run
			}
			vals[s.dest] = s.result
			ready[s.dest] = s.done
			writer[s.dest] = s.seq
			writerDone[s.dest] = s.doneAt
		}
	}
	return nil
}

// execute progresses ALU, jump and branch stations. With a shared-ALU
// pool configured, at most NumALUs instructions execute concurrently,
// allocated oldest first — the priority the CSPP scheduler implements.
//
//uslint:hotpath
func (e *engine) execute() error {
	budget := e.cfg.NumALUs
	if budget > 0 {
		for _, si := range e.window {
			s := &e.slab[si]
			if s.class&clsNoALU == 0 && s.started && !s.done {
				budget--
			}
		}
	}
	for _, si := range e.window {
		s := &e.slab[si]
		if s.class&clsMem != 0 {
			continue // handled by memoryPhase
		}
		if !s.started {
			if !s.opsReady {
				continue
			}
			if e.cfg.NumALUs > 0 && s.class&clsNoALU == 0 {
				if budget <= 0 {
					e.stats.ALUStarved++
					continue
				}
				budget--
			}
			s.started = true
			s.remaining = e.cfg.Lat.Of(s.inst)
			s.issue = e.cycle
			e.recordSources(s)
			if e.trc != nil {
				e.trc.Record(obs.EvIssue, e.cycle, s.seq, int32(s.pc), int32(s.slot), int32(s.remaining))
			}
		}
		if s.done {
			continue
		}
		if s.remaining > 0 {
			s.remaining--
		}
		if s.remaining > 0 {
			continue
		}
		// Completes at the end of this cycle; consumers see it next cycle.
		s.done = true
		s.doneAt = e.cycle + 1
		e.fwdDirty = true
		if e.trc != nil {
			e.trc.Record(obs.EvExec, e.cycle, s.seq, int32(s.pc), int32(s.slot), 0)
		}
		switch {
		case s.class&clsBranch != 0:
			s.resolved = true
			s.actualNext = isa.NextPC(s.inst, s.pc, s.a, s.b)
		case s.class&clsJump != 0:
			s.resolved = true
			s.actualNext = isa.NextPC(s.inst, s.pc, s.a, s.b)
			s.result = isa.Word(s.pc + 1) // link
		case s.class&(clsHalt|clsNop) != 0:
			// no result
		default:
			s.result = isa.ALUOp(s.inst, s.a, s.b)
		}
	}
	return nil
}

// recordSources accounts operand producer distances at issue time. The
// histogram is a dense slice (distances from committed producers can
// exceed the window, so it grows on demand); it becomes the public
// Stats.OperandFromStation map when the run completes.
func (e *engine) recordSources(s *station) {
	for _, d := range s.srcDist {
		if e.trc != nil {
			e.trc.Record(obs.EvForward, e.cycle, s.seq, int32(s.pc), int32(s.slot), int32(d))
		}
		if d < 0 {
			e.stats.OperandFromCommitted++
			continue
		}
		if d >= len(e.operandDist) {
			grown := make([]int64, max(d+1, 2*len(e.operandDist))) //uslint:allow hotpathalloc -- amortized histogram growth, not per-cycle
			copy(grown, e.operandDist)
			e.operandDist = grown
		}
		e.operandDist[d]++
	}
}

// memoryPhase gates loads and stores through the sequencing CSPPs and the
// fat-tree arbitration.
//
// Paper Section 2: "A station cannot load from memory until all preceding
// stores have finished. A station cannot store to memory until all
// preceding loads and stores have finished" and "A station cannot modify
// memory ... until all preceding stations have committed."
//
//uslint:hotpath
func (e *engine) memoryPhase() {
	if e.memCount == 0 {
		return
	}
	// Running AND-prefixes over the window in age order — the functional
	// equivalent of the three 1-bit CSPPs of Figure 5 with the oldest
	// station's segment bit high.
	storesDone := true // all earlier stores finished
	memDone := true    // all earlier loads and stores finished
	committed := true  // all earlier branches confirmed

	reqs := e.memReqs[:0]
	cands := e.memCands[:0]
	for idx, si := range e.window {
		s := &e.slab[si]
		eligible := !s.started && s.opsReady
		if eligible && s.class&clsLoad != 0 {
			addr := isa.EffAddr(s.inst, s.a)
			switch {
			case e.cfg.MemRenaming:
				// Memory renaming (Section 7): search the window for the
				// nearest earlier store to the same address, through the
				// CSPP-equivalent backward scan. A store with an unknown
				// address blocks; a match forwards; otherwise the load is
				// disambiguated and may bypass unperformed stores.
				v, hit, blocked := e.forwardFromStore(idx, addr)
				if hit {
					s.started = true
					s.done = true
					s.memDone = true
					s.doneAt = e.cycle + 1
					s.issue = e.cycle
					s.result = v
					e.fwdDirty = true
					e.recordSources(s)
					e.stats.Loads++
					e.stats.LoadsForwarded++
					if e.trc != nil {
						e.trc.Record(obs.EvIssue, e.cycle, s.seq, int32(s.pc), int32(s.slot), 0)
						e.trc.Record(obs.EvExec, e.cycle, s.seq, int32(s.pc), int32(s.slot), 0)
					}
				} else if !blocked {
					reqs = append(reqs, memory.Request{Station: s.slot, Addr: addr, Age: s.seq}) //uslint:allow hotpathalloc -- reusable scratch, kept across cycles via e.memReqs
					cands = append(cands, memCand{s, addr})                                      //uslint:allow hotpathalloc -- reusable scratch, kept across cycles via e.memCands
				}
			case storesDone:
				reqs = append(reqs, memory.Request{Station: s.slot, Addr: addr, Age: s.seq}) //uslint:allow hotpathalloc -- reusable scratch, kept across cycles via e.memReqs
				cands = append(cands, memCand{s, addr})                                      //uslint:allow hotpathalloc -- reusable scratch, kept across cycles via e.memCands
			}
		}
		if eligible && s.class&clsStore != 0 && memDone && committed {
			addr := isa.EffAddr(s.inst, s.a)
			reqs = append(reqs, memory.Request{Station: s.slot, Addr: addr, Store: true, Age: s.seq}) //uslint:allow hotpathalloc -- reusable scratch, kept across cycles via e.memReqs
			cands = append(cands, memCand{s, addr})                                                   //uslint:allow hotpathalloc -- reusable scratch, kept across cycles via e.memCands
		}
		if s.class&clsStore != 0 {
			storesDone = storesDone && s.memDone
			memDone = memDone && s.memDone
		}
		if s.class&clsLoad != 0 {
			memDone = memDone && s.memDone
		}
		if s.class&clsFlow != 0 {
			// "Committed" requires the branch resolved on the predicted
			// path: a mispredicted branch squashes its younger stations in
			// this cycle's recovery phase, so they must not touch memory.
			committed = committed && s.resolved && s.actualNext == s.predictedNext
		}
	}
	e.memReqs, e.memCands = reqs, cands // keep grown scratch for reuse
	if len(reqs) == 0 {
		return
	}
	grant := func(c memCand, latency int) { //uslint:allow hotpathalloc -- non-escaping closure; the zero-alloc benchmark pins it
		s := c.s
		s.started = true
		s.memInFlight = true
		s.issue = e.cycle
		s.memDoneAt = e.cycle + int64(latency)
		s.doneAt = s.memDoneAt
		e.recordSources(s)
		if e.trc != nil {
			e.trc.Record(obs.EvIssue, e.cycle, s.seq, int32(s.pc), int32(s.slot), int32(latency))
		}
		if s.class&clsStore != 0 {
			if e.flt != nil {
				e.flt.noteStore(e, s, c.addr)
			}
			e.mem.Store(c.addr, s.b)
			e.stats.Stores++
		} else {
			s.result = e.mem.Load(c.addr)
			e.stats.Loads++
		}
	}
	if e.cfg.MemSystem == nil {
		for _, c := range cands {
			grant(c, e.cfg.Lat.Of(c.s.inst))
		}
		return
	}
	// Candidates are few and age-ordered; a linear scan replaces the
	// per-cycle map the seed engine built to pair grants with stations.
	for _, g := range e.cfg.MemSystem.Arbitrate(reqs) {
		for _, c := range cands {
			if c.s.seq == g.Req.Age {
				grant(c, g.Latency)
				break
			}
		}
	}
}

// forwardFromStore scans the window backwards from the load at age index
// idx for a store to addr. It returns the forwarded value on a hit;
// blocked is true when an earlier store's address is still unknown (the
// load must wait for disambiguation).
func (e *engine) forwardFromStore(idx int, addr isa.Word) (v isa.Word, hit, blocked bool) {
	for j := idx - 1; j >= 0; j-- {
		t := &e.slab[e.window[j]]
		if t.class&clsStore == 0 {
			continue
		}
		if !t.opsReady {
			return 0, false, true
		}
		if isa.EffAddr(t.inst, t.a) == addr {
			return t.b, true, false
		}
	}
	return 0, false, false
}

// recover processes branch resolutions oldest-first: trains the
// predictors, and on the first misprediction squashes all younger stations
// and redirects fetch — the paper's single-cycle recovery ("Nothing needs
// to be done to recover from misprediction except to fetch new
// instructions from the correct program path").
//
//uslint:hotpath
func (e *engine) recover() {
	for i := 0; i < len(e.window); i++ {
		s := &e.slab[e.window[i]]
		if !s.resolved || s.flowDone {
			continue
		}
		s.flowDone = true
		if s.class&clsBranch != 0 {
			e.stats.Branches++
			taken := s.actualNext != s.pc+1
			if s.usedSpec {
				e.cfg.Predictor.(branch.SpecPredictor).
					Resolve(s.pc, s.histSnap, taken, s.actualNext != s.predictedNext)
			} else {
				e.cfg.Predictor.Update(s.pc, taken)
			}
		}
		if s.inst.Op == isa.OpJalr {
			e.cfg.BTB.Update(s.pc, s.actualNext)
		}
		if s.actualNext != s.predictedNext {
			e.stats.Mispredicts++
			e.squashAfter(i)
			e.fetchPC = s.actualNext
			e.haltStop = false
			e.jalrWait = false
			return // younger resolutions are gone
		}
	}
}

// squashAfter removes all stations younger than age index i. Squashing
// needs no forwarding rescan: the surviving prefix's scan state is
// unaffected (the scan is a strict age-order prefix computation), and the
// squashed stations' outputs are discarded.
func (e *engine) squashAfter(i int) {
	byPC := int32(e.slab[e.window[i]].pc)
	for _, vi := range e.window[i+1:] {
		v := &e.slab[vi]
		e.slots[v.slot] = slotFree
		e.stats.Squashed++
		if e.trc != nil {
			e.trc.Record(obs.EvSquash, e.cycle, v.seq, int32(v.pc), int32(v.slot), byPC)
		}
		if v.class&clsMem != 0 {
			e.memCount--
		}
	}
	e.window = e.window[:i+1]
	e.nextSeq = e.slab[e.window[i]].seq + 1
}

// retire commits finished instructions in order from the head of the
// window, freeing station slots at the configured granularity. It returns
// true when a halt commits.
//
//uslint:hotpath
func (e *engine) retire() bool {
	g := e.cfg.Granularity
	popped := 0
	for popped < len(e.window) && e.slab[e.window[popped]].finished() {
		s := &e.slab[e.window[popped]]
		if e.flt != nil {
			if resume, bad := e.flt.checkRetire(e, s); bad {
				// The commit checker refused the instruction: recover by
				// squashing from it and replaying. The prefix retired this
				// cycle stands; nothing younger survives.
				e.faultRecover(popped, resume)
				return false
			}
		}
		popped++
		e.stats.Retired++
		if e.trc != nil {
			e.trc.Record(obs.EvRetire, e.cycle, s.seq, int32(s.pc), int32(s.slot), 0)
		}
		if e.traceBuild != nil {
			e.traceBuild.Retire(s.pc)
		}
		if e.cfg.KeepTimeline {
			e.timeline = append(e.timeline, InstRecord{ //uslint:allow hotpathalloc -- opt-in timeline (cfg.KeepTimeline), off in measured runs
				Seq: s.seq, PC: s.pc, Inst: s.inst, Slot: s.slot,
				Issue: s.issue, Done: e.doneCycle(s),
			})
		}
		if s.writes {
			e.commit[s.dest] = s.result
			e.commitProducer[s.dest] = s.seq
			e.commitDoneAt[s.dest] = s.doneAt
		}
		if s.class&clsHalt != 0 {
			return true
		}
		if s.class&clsMem != 0 {
			e.memCount--
			if e.flt != nil && s.class&clsStore != 0 {
				e.flt.dropStore(s.seq)
			}
		}
		// Slot reuse at granularity g: the slot drains, and frees only
		// when its whole group has drained (group = aligned block of g
		// slots). Granularity 1 frees immediately (Ultrascalar I);
		// granularity Window drains the whole batch (Ultrascalar II);
		// granularity C drains per cluster (hybrid).
		e.slots[s.slot] = slotDrained
		group := s.slot / g
		all := true
		for k := group * g; k < (group+1)*g; k++ {
			if e.slots[k] != slotDrained {
				all = false
				break
			}
		}
		if all {
			for k := group * g; k < (group+1)*g; k++ {
				e.slots[k] = slotFree
			}
		}
	}
	if popped > 0 {
		// Copy the survivors down so the window stays anchored at
		// windowBuf[0] and fetch appends stay allocation-free. Retirement
		// needs no forwarding rescan: a retiring writer's committed state
		// (value, producer seq, doneAt) is exactly the contribution its
		// station made to the scan, so younger stations' inputs are
		// unchanged.
		m := copy(e.windowBuf, e.window[popped:])
		e.window = e.windowBuf[:m]
		e.lastRetire = e.cycle
	}
	return false
}

// doneCycle returns the first cycle the instruction's result was visible
// to consumers, so timeline intervals are [Issue, Done).
func (e *engine) doneCycle(s *station) int64 { return s.doneAt }

// fetch fills free station slots along the predicted path. The fetch
// width defaults to the window size ("the issue width and the
// instruction-fetch width scale together"); the fetch model decides how
// taken branches limit a cycle's fetch.
//
//uslint:hotpath
func (e *engine) fetch() {
	width := e.cfg.FetchWidth
	if width <= 0 {
		width = e.cfg.Window
	}
	switch e.cfg.Fetch {
	case FetchBlock:
		e.fetchSequential(width, true)
	case FetchTrace:
		if !e.haltStop && !e.jalrWait {
			if tr, ok := e.trace.Lookup(e.fetchPC); ok {
				e.fetchTrace(tr, width)
				return
			}
		}
		e.fetchSequential(width, true)
	default:
		e.fetchSequential(width, false)
	}
}

// fetchSequential fetches along the predicted path; with stopAtTaken it
// ends the cycle's fetch after the first predicted-taken control transfer
// (conventional block fetch).
func (e *engine) fetchSequential(width int, stopAtTaken bool) {
	for fetched := 0; fetched < width; fetched++ {
		s, ok := e.fetchOne(-1)
		if !ok {
			return
		}
		if stopAtTaken && s.inst.ChangesFlow() && s.predictedNext != s.pc+1 {
			return
		}
	}
}

// fetchTrace supplies a cached trace in one cycle: every instruction's
// predicted successor is the trace's recorded path.
func (e *engine) fetchTrace(tr []int, width int) {
	for i, pc := range tr {
		if i >= width || pc != e.fetchPC {
			return
		}
		forced := -1
		if i+1 < len(tr) {
			forced = tr[i+1]
		}
		if _, ok := e.fetchOne(forced); !ok {
			return
		}
	}
}

// fetchOne fetches the instruction at the current fetch PC into the next
// station slot. forcedNext >= 0 supplies a trace-recorded successor for
// control transfers, bypassing the predictors. It returns false when
// fetch cannot proceed this cycle.
func (e *engine) fetchOne(forcedNext int) (*station, bool) {
	if e.haltStop || e.jalrWait || len(e.window) >= e.cfg.Window {
		return nil, false
	}
	if e.fetchPC < 0 || e.fetchPC >= len(e.prog) {
		return nil, false
	}
	slot := int(e.nextSeq) % e.cfg.Window
	if e.slots[slot] != slotFree {
		return nil, false
	}
	pc := e.fetchPC
	in := e.prog[pc]
	s := &e.slab[slot]
	*s = station{srcDist: s.srcDist[:0]}
	s.seq, s.pc, s.inst, s.slot = e.nextSeq, pc, in, slot
	s.dest, s.writes = in.Writes()
	s.class = classify(in)
	switch {
	case in.IsHalt():
		e.haltStop = true
		s.predictedNext = -1
	case in.IsBranch():
		if forcedNext >= 0 {
			s.predictedNext = forcedNext
			break
		}
		var taken bool
		if sp, ok := e.cfg.Predictor.(branch.SpecPredictor); ok {
			taken, s.histSnap = sp.PredictSpec(pc)
			s.usedSpec = true
		} else {
			taken = e.cfg.Predictor.Predict(pc)
		}
		if taken {
			s.predictedNext = pc + 1 + int(in.Imm)
		} else {
			s.predictedNext = pc + 1
		}
	case in.Op == isa.OpJal:
		s.predictedNext = pc + 1 + int(in.Imm)
		if e.ras != nil {
			e.ras.Push(pc + 1) // a call's return address
		}
	case in.Op == isa.OpJalr:
		if forcedNext >= 0 {
			s.predictedNext = forcedNext
			break
		}
		if e.ras != nil {
			if addr, ok := e.ras.Pop(); ok {
				s.predictedNext = addr
				break
			}
		}
		s.predictedNext = e.cfg.BTB.Predict(pc)
		if s.predictedNext < 0 {
			e.jalrWait = true
		}
	default:
		s.predictedNext = pc + 1
	}
	e.slots[slot] = slotOccupied
	e.window = append(e.window, int32(slot)) //uslint:allow hotpathalloc -- window is backed by the fixed-capacity windowBuf
	e.nextSeq++
	e.stats.Fetched++
	if e.trc != nil {
		e.trc.Record(obs.EvFetch, e.cycle, s.seq, int32(pc), int32(slot), int32(s.predictedNext))
	}
	if s.class&clsMem != 0 {
		e.memCount++
	}
	e.fwdDirty = true
	if e.haltStop || e.jalrWait {
		return s, false
	}
	e.fetchPC = s.predictedNext
	return s, true
}
