package core

import (
	"context"
	"fmt"
	"math/bits"

	"ultrascalar/internal/branch"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/obs"
	"ultrascalar/internal/tracecache"
)

// Instruction-class bits, computed once at fetch so the per-cycle phases
// avoid re-dispatching on the opcode.
const (
	clsLoad uint8 = 1 << iota
	clsStore
	clsBranch
	clsJump
	clsHalt
	clsNop
)

const (
	clsMem   = clsLoad | clsStore
	clsFlow  = clsBranch | clsJump
	clsNoALU = clsMem | clsHalt | clsNop
)

func classify(in isa.Inst) uint8 {
	switch {
	case in.IsLoad():
		return clsLoad
	case in.IsStore():
		return clsStore
	case in.IsBranch():
		return clsBranch
	case in.IsJump():
		return clsJump
	case in.IsHalt():
		return clsHalt
	case in.Op == isa.OpNop:
		return clsNop
	}
	return 0
}

type engine struct {
	cfg    Config
	prog   []isa.Inst
	mem    *memory.Flat
	commit []isa.Word // committed register file (held by the oldest station)
	// commitProducer holds, per register, the dynamic sequence number of
	// the retired instruction that produced the committed value (-1 for
	// initial values), for the operand-distance statistic and the
	// self-timed forwarding model; commitDoneAt holds the cycle the value
	// became visible.
	commitProducer []int64
	commitDoneAt   []int64

	// st is the struct-of-arrays station file (soa.go): every station
	// field is a parallel slice indexed by slot, every flag a bitmap bit.
	// Slots are assigned round-robin by sequence number (slot = seq mod
	// Window) and freed in retirement order, so the live window is always
	// a contiguous circular run: ages 0..occ-1 occupy slots head,
	// head+1, ..., wrapping at Window. head/occ replace the seed engine's
	// explicit age-ordered slot list, and age-order iteration becomes at
	// most two linear spans (liveSpans) — so retirement no longer copies
	// the survivor list down every cycle.
	st   stations
	head int // slot of the oldest live station (valid when occ > 0)
	occ  int // number of live stations

	nextSeq int64
	// memCount is the number of loads and stores in the window; the
	// completion and memory phases are skipped when it is zero.
	memCount int

	fetchPC  int
	haltStop bool
	jalrWait bool

	trace      *tracecache.Cache
	traceBuild *tracecache.Builder
	ras        *branch.RAS

	// Forwarding scratch, reused every scan. fwdReady is the per-register
	// availability mask — one bit per logical register (MaxRegs = 32 ≤ 64),
	// updated with the same mask algebra as the station bitmaps.
	fwdVals       []isa.Word
	fwdWriter     []int64 // seq of the value's producer, -1 = initial
	fwdWriterDone []int64 // cycle the value became visible
	fwdReady      uint64
	// fwdDirty marks that register-producer state changed since the last
	// forwarding scan (completion, retirement, fetch, or squash). On clean
	// cycles the scan's inputs are bit-identical to the previous cycle's,
	// so forward() skips the full-window rescan. scanEveryCycle disables
	// the fast path (used by the equivalence tests; also forced when
	// ForwardLatency is set, since self-timed availability depends on the
	// cycle number, not only on producer state).
	fwdDirty       bool
	scanEveryCycle bool

	// wake selects the wakeup-link forwarding mode (see forward): operands
	// resolve to their producer once at fetch through regWriter — the
	// rename table mapping each register to the slot of its newest live
	// writer (-1 = committed file) — and the per-cycle scan only revisits
	// stations still waiting on a producer. Fault campaigns and self-timed
	// configurations keep the full scan, whose relatch-everything semantics
	// they depend on.
	wake      bool
	regWriter [isa.MaxRegs]int32
	// wakeN is the length of the completed-producer event queue
	// (st.wakeSlot/st.wakeSeq): producers that completed since the last
	// drain and had consumers linked on their list. forward drains it.
	wakeN int
	// fwdErr is a pending register-range error discovered while attaching
	// operands at fetch; forward returns it at the same point in the cycle
	// chain where the full scan would have detected it.
	fwdErr error

	// memoryPhase scratch, preallocated to the window size so the grant
	// lists never grow mid-run.
	memReqs  []memory.Request
	memCands []memCand

	// operandDist is the hot-path operand-distance histogram; it is
	// converted to Stats.OperandFromStation when the run completes.
	operandDist []int64

	cycle    int64
	stats    Stats
	timeline []InstRecord

	// trc receives pipeline events when tracing is on (cfg.Tracer). Every
	// hot-path hook is guarded by a nil check, so the traced path costs
	// nothing measurable when off; obs.Tracer.Record itself is
	// //uslint:hotpath and allocation-free.
	trc *obs.Tracer
	// met / metGauges drive the periodic metrics snapshots (cfg.Metrics).
	// Snapshot ticks run from the Run loop, not from the hot-path chain.
	met       *obs.Registry
	metGauges engineGauges

	// flt is the fault-injection state (cfg.FaultPlan); nil on normal
	// runs, where the faulted paths cost one pointer test. lastRetire is
	// the most recent cycle that retired an instruction (-1 before the
	// first), driving the livelock watchdog.
	flt        *faultState
	lastRetire int64

	// ctx is the run's cancellation context (RunCtx); nil when the run is
	// uncancellable (Run), where the per-cycle probe costs one pointer
	// test. ctxEvery is the probe period in cycles — one watchdog
	// interval, so a canceled run returns within one interval.
	ctx      context.Context
	ctxEvery int64
}

// engineGauges are the engine's registered metrics instruments, resolved
// once at Run setup so the periodic tick does no map lookups.
type engineGauges struct {
	occupancy, ipc, retired, fetched, squashed, mispredicts, cycleNo *obs.Gauge
}

// memCand pairs an eligible memory station's slot with its effective
// address for the grant phase.
type memCand struct {
	slot int32
	addr isa.Word
}

// liveSpans returns the live window as up to two linear slot spans in age
// order: [lo1, hi1) then [lo2, hi2) (the wrapped tail; empty when the
// window does not wrap). Every word-at-a-time phase iterates these spans.
func (e *engine) liveSpans() (lo1, hi1, lo2, hi2 int) {
	end := e.head + e.occ
	if end <= e.cfg.Window {
		return e.head, end, 0, 0
	}
	return e.head, e.cfg.Window, 0, end - e.cfg.Window
}

// slotAt maps an age index (0 = oldest) to its slot.
func (e *engine) slotAt(i int) int {
	s := e.head + i
	if s >= e.cfg.Window {
		s -= e.cfg.Window
	}
	return s
}

// ageOf maps a live slot back to its age index.
func (e *engine) ageOf(slot int) int {
	a := slot - e.head
	if a < 0 {
		a += e.cfg.Window
	}
	return a
}

// finishedWord returns the word-w bitmap of stations that have completed
// all their effects and may retire on reaching the head: stores once
// memory is done, control flow once resolved, everything else once done.
func (e *engine) finishedWord(w int) uint64 {
	st := &e.st
	return st.store[w]&st.memDone[w] |
		st.flow[w]&st.resolved[w] |
		(st.busy[w]&^st.store[w]&^st.flow[w])&st.done[w]
}

// finishedSlot is the single-bit view of finishedWord.
func (e *engine) finishedSlot(slot int) bool {
	return e.finishedWord(slot>>6)>>(uint(slot)&63)&1 != 0
}

// Run executes prog on the configured processor with the given data
// memory (mutated in place). The run cannot be canceled; use RunCtx to
// bound it by a context.
func Run(prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	return RunCtx(nil, prog, mem, cfg)
}

// RunCtx is Run with cooperative cancellation: the engine probes
// ctx.Err() once per watchdog interval (64 cycles when the watchdog is
// disabled) from the per-cycle chain and, when the context is canceled
// or past its deadline, abandons the run and returns a *CanceledError
// wrapping ctx.Err(). The probe is nil-guarded and allocation-free, so
// the measured hot path is unchanged; partial architectural state is
// discarded exactly as on any other run error. A nil ctx (what Run
// passes) disables the probe entirely.
func RunCtx(ctx context.Context, prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	nr, w := cfg.NumRegs, cfg.Window
	// Station and engine slices come out of one arena per element type
	// (the station file carves its int64/isa.Word shares off the same two
	// arenas), so a Run's setup cost is a fixed handful of allocations
	// however large the register file and window are.
	i64 := make([]int64, stationArena64(w)+4*nr+2*(w+1))
	wrd := make([]isa.Word, stationArenaWords(w)+2*nr)
	e := &engine{
		cfg:            cfg,
		prog:           prog,
		mem:            mem,
		st:             newStations(w, &i64, &wrd),
		memReqs:        make([]memory.Request, 0, w),
		memCands:       make([]memCand, 0, w),
		fwdDirty:       true,
		scanEveryCycle: cfg.ForwardLatency != nil || scanEveryCycleForTests,
	}
	e.commit = carve(&wrd, nr)
	e.fwdVals = carve(&wrd, nr)
	e.commitProducer = carve(&i64, nr)
	e.commitDoneAt = carve(&i64, nr)
	e.fwdWriter = carve(&i64, nr)
	e.fwdWriterDone = carve(&i64, nr)
	e.operandDist = carve(&i64, w+1)
	e.stats.Occupancy = carve(&i64, w+1)
	for r := range e.commitProducer {
		e.commitProducer[r] = -1
	}
	if cfg.InitRegs != nil {
		copy(e.commit, cfg.InitRegs)
	}
	if cfg.KeepTimeline {
		e.timeline = make([]InstRecord, 0, 4*cfg.Window)
	}
	if cfg.Fetch == FetchTrace {
		e.trace = tracecache.New(cfg.TraceSetBits, cfg.TraceLen)
		e.traceBuild = tracecache.NewBuilder(e.trace)
	}
	if cfg.ReturnStack > 0 {
		e.ras = branch.NewRAS(cfg.ReturnStack)
	}
	e.trc = cfg.Tracer
	e.lastRetire = -1
	e.ctx = ctx
	e.ctxEvery = cfg.Watchdog
	if e.ctxEvery <= 0 {
		e.ctxEvery = 64 // watchdog disabled: keep cancellation responsive
	}
	if cfg.FaultPlan != nil && len(cfg.FaultPlan.Faults) > 0 {
		e.flt = newFaultState(prog, mem, cfg)
	}
	// Wakeup links assume producer state only moves toward done and that
	// latched operands stay latched — both broken by injected faults
	// (which a full rescan heals) and by self-timed availability (which
	// depends on the cycle number). Those runs keep the seed's full scan.
	e.wake = e.flt == nil && !e.scanEveryCycle
	for r := range e.regWriter {
		e.regWriter[r] = -1
	}
	if e.wake {
		for i := range e.st.consHead {
			e.st.consHead[i] = -1
		}
	}
	if cfg.Metrics != nil {
		e.met = cfg.Metrics
		e.metGauges = engineGauges{
			occupancy:   e.met.Gauge("core.occupancy"),
			ipc:         e.met.Gauge("core.ipc"),
			retired:     e.met.Gauge("core.retired"),
			fetched:     e.met.Gauge("core.fetched"),
			squashed:    e.met.Gauge("core.squashed"),
			mispredicts: e.met.Gauge("core.mispredicts"),
			cycleNo:     e.met.Gauge("core.cycle"),
		}
	}
	e.fetch() // initial fill: the window is loaded before the first cycle

	for e.cycle = 0; e.cycle < cfg.MaxCycles; e.cycle++ {
		if e.occ == 0 {
			if e.haltStop {
				// The halt retired and ended the run inside retire();
				// reaching here with haltStop means fetch stopped but halt
				// never entered: impossible, defensive.
				return nil, ErrPCOutOfRange
			}
			return nil, fmt.Errorf("%w: pc=%d len=%d", ErrPCOutOfRange, e.fetchPC, len(e.prog))
		}
		// Occupancy is measured as the window state entering the cycle.
		e.stats.StationBusy += int64(e.occ)
		e.stats.Occupancy[e.occ]++
		if e.met != nil && e.cycle%e.cfg.MetricsEvery == 0 {
			e.metricsTick()
		}
		if err := e.ctxErr(); err != nil {
			return nil, &CanceledError{Cycle: e.cycle, Err: err}
		}
		if cfg.Watchdog > 0 && e.cycle-e.lastRetire > cfg.Watchdog && e.livelocked() {
			if !e.watchdogRecover() {
				return nil, e.livelockError()
			}
		}
		e.completions()
		if err := e.forward(); err != nil {
			return nil, err
		}
		if e.flt != nil {
			e.faultCycle()
		}
		e.execute()
		e.memoryPhase()
		e.recover()
		if halted := e.retire(); halted {
			e.stats.Cycles = e.cycle + 1
			e.finishStats()
			if e.met != nil {
				e.metricsTick() // final snapshot at halt
			}
			return &Result{Regs: e.commit, Mem: e.mem, Stats: e.stats, Timeline: e.timeline}, nil
		}
		e.fetch()
	}
	return nil, ErrNoHalt
}

// ctxErr is the per-cycle cancellation probe: every ctxEvery cycles it
// returns the run context's cancellation error, nil otherwise. It sits
// in the per-cycle chain, so it is //uslint:hotpath — nil-guarded, one
// modulo and one interface call, no allocation (wrapping the error into
// a CanceledError happens on the cold exit path in RunCtx).
//
//uslint:hotpath
func (e *engine) ctxErr() error {
	if e.ctx == nil || e.cycle%e.ctxEvery != 0 {
		return nil
	}
	return e.ctx.Err()
}

// scanEveryCycleForTests disables the incremental-forwarding fast path
// for every subsequent Run, forcing the full-window scan each cycle (the
// seed semantics). It exists for the golden equivalence tests; set it
// before starting runs, never concurrently with them.
var scanEveryCycleForTests bool

// metricsTick publishes the engine gauges and takes one registry
// snapshot. It runs from the Run loop every MetricsEvery cycles (and
// once at halt), outside the //uslint:hotpath chain, so snapshot
// allocations never touch the measured per-cycle path.
func (e *engine) metricsTick() {
	g := e.metGauges
	g.occupancy.Set(float64(e.occ))
	g.retired.Set(float64(e.stats.Retired))
	g.fetched.Set(float64(e.stats.Fetched))
	g.squashed.Set(float64(e.stats.Squashed))
	g.mispredicts.Set(float64(e.stats.Mispredicts))
	g.cycleNo.Set(float64(e.cycle))
	ipc := 0.0
	if e.cycle > 0 {
		ipc = float64(e.stats.Retired) / float64(e.cycle)
	}
	g.ipc.Set(ipc)
	e.met.Snapshot(e.cycle)
}

// finishStats materializes the operand-distance histogram into the
// public Stats map once the run completes. The map is sized to its exact
// population first: incremental insertion grew buckets several times per
// run, which dominated the short-run allocs/cycle figure.
func (e *engine) finishStats() {
	n := 0
	for _, c := range e.operandDist {
		if c != 0 {
			n++
		}
	}
	e.stats.OperandFromStation = make(map[int]int64, n)
	for d, c := range e.operandDist {
		if c != 0 {
			e.stats.OperandFromStation[d] = c
		}
	}
}

// completions makes memory data that arrived at the end of the previous
// cycle visible. The candidate set is one word expression: in flight and
// not yet delivered.
//
//uslint:hotpath
func (e *engine) completions() {
	if e.memCount == 0 {
		return
	}
	st := &e.st
	var spans [2][2]int
	spans[0][0], spans[0][1], spans[1][0], spans[1][1] = e.liveSpans()
	for _, sp := range spans {
		for w := sp[0] >> 6; w <= (sp[1]-1)>>6; w++ {
			pend := (st.memInFlight[w] &^ st.memDone[w]) & spanMask(sp[0], sp[1], w)
			for pend != 0 {
				b := bits.TrailingZeros64(pend)
				pend &= pend - 1
				slot := w<<6 + b
				if st.memDoneAt[slot] <= e.cycle {
					st.memDone.set(slot)
					st.done.set(slot)
					e.queueWake(slot)
					e.fwdDirty = true
					if e.trc != nil {
						e.trc.Record(obs.EvExec, e.cycle, st.seq[slot], st.pc[slot], int32(slot), 0)
					}
				}
			}
		}
	}
}

// forward makes producer results visible to waiting consumers, in one of
// two modes that compute the same (value, ready) assignment:
//
// Full scan (fault campaigns, ForwardLatency, the equivalence tests): the
// per-register CSPP scan of the seed engine. Each station receives, for
// each source register, the (value, ready) pair inserted by the nearest
// preceding modifier, or the committed register file at the oldest station
// (paper Figure 1/4 semantics; one full-window propagation per cycle).
// Re-latching every unstarted station each scan is what heals injected
// operand corruption, and self-timed availability depends on the cycle
// number, so those runs scan every cycle.
//
// Wakeup links (everything else): the CSPP assignment is a pure prefix
// function of fixed inputs — a station's nearest preceding writer of r is
// determined the moment it is fetched (the set of older stations never
// grows), and a producer's value is final once done. So attachOperands
// resolves each operand once at fetch through the regWriter rename table:
// an already-done (or committed) producer latches immediately, and a
// still-executing one leaves a (slot, seq) wakeup link and pushes itself
// onto the producer's consumer list. Each completion enqueues one wake
// event; drainWakes then touches exactly the consumers of producers that
// completed since the last drain — the per-cycle work shrinks from the
// whole window to the wakeups that actually happened, the software
// analogue of a CAM match line waking only its listeners.
//
// Fast path (both modes): the scan's inputs change only on completion,
// retirement, fetch, or squash. On cycles with none of those events the
// previous scan's outputs (ready, a, b, srcD0/srcD1) are still exact, so
// the rescan is skipped entirely (fwdDirty). Wake mode does not even
// dirty on fetch: attachOperands latches from current producer state, so
// a fetched station is exact until some producer completes.
//
//uslint:hotpath
func (e *engine) forward() error {
	if e.fwdErr != nil {
		return e.fwdErr
	}
	if !e.fwdDirty && !e.scanEveryCycle {
		return nil
	}
	e.fwdDirty = false
	if e.wake {
		e.drainWakes()
		return nil
	}
	copy(e.fwdVals, e.commit)
	copy(e.fwdWriter, e.commitProducer)
	copy(e.fwdWriterDone, e.commitDoneAt)
	e.fwdReady = ^uint64(0)
	lo1, hi1, lo2, hi2 := e.liveSpans()
	if err := e.forwardSpan(lo1, hi1); err != nil {
		return err
	}
	return e.forwardSpan(lo2, hi2)
}

// queueWake enqueues a completed producer for the next drain. Called at
// every done.set site in wake mode; the consHead gate keeps producers
// nobody waits on (and all non-writers) out of the queue. The producer's
// seq is captured now because the slot can retire and be refetched before
// the drain runs. The queue cannot overflow: done is monotone per
// station, a freed slot's next occupant cannot complete before the next
// forward drains, so at most one event per slot accumulates per window.
//
//uslint:hotpath
func (e *engine) queueWake(slot int) {
	st := &e.st
	if e.wake && st.consHead[slot] >= 0 {
		st.wakeSlot[e.wakeN] = int32(slot)
		st.wakeSeq[e.wakeN] = st.seq[slot]
		e.wakeN++
	}
}

// drainWakes delivers queued producer completions to the consumers linked
// on each producer's list, latching the operand and setting ready when the
// last link clears. A list can mix generations: a producer can retire and
// its slot refill before the drain runs, so nodes are matched against the
// event's captured seq — a node still waiting on the slot's newer occupant
// is kept for that occupant's own event, anything else (dead consumer,
// operand already latched) is dropped. The retired-producer case needs no
// fallback read of the committed file: its result slice entry is intact
// until the new occupant executes, which is always after this drain.
//
//uslint:hotpath
func (e *engine) drainWakes() {
	st := &e.st
	for i := 0; i < e.wakeN; i++ {
		p := int(st.wakeSlot[i])
		pseq := st.wakeSeq[i]
		res := st.result[p]
		node := st.consHead[p]
		keepHead, keepTail := int32(-1), int32(-1)
		for node >= 0 {
			next := st.consNext[node]
			c := int(node >> 1)
			keep := false
			if st.busy.get(c) {
				if node&1 == 0 {
					if st.srcSlot0[c] == int32(p) {
						if st.srcSeq0[c] == pseq {
							st.a[c] = res
							st.srcSlot0[c] = -1
							if st.srcSlot1[c] < 0 {
								st.ready.set(c)
							}
						} else {
							keep = true
						}
					}
				} else {
					if st.srcSlot1[c] == int32(p) {
						if st.srcSeq1[c] == pseq {
							st.b[c] = res
							st.srcSlot1[c] = -1
							if st.srcSlot0[c] < 0 {
								st.ready.set(c)
							}
						} else {
							keep = true
						}
					}
				}
			}
			if keep {
				if keepTail < 0 {
					keepHead = node
				} else {
					st.consNext[keepTail] = node
				}
				keepTail = node
			}
			node = next
		}
		if keepTail >= 0 {
			st.consNext[keepTail] = -1
		}
		st.consHead[p] = keepHead
	}
	e.wakeN = 0
}

// attachOperands resolves a just-fetched station's source operands against
// the rename table (wake mode only; it runs inside the fetch loop, after
// older same-cycle fetches updated the table and before this station's own
// write does, so self-reads see the previous writer exactly as the scan's
// age-order propagation would). Operands whose producer is committed or
// already done latch now; the rest leave wakeup links and join their
// producer's consumer list, to be woken by drainWakes at the forward
// after the producer completes. A
// source register out of range parks the seed scan's error in fwdErr —
// forward reports it at the same point of the next cycle's chain.
//
//uslint:hotpath
func (e *engine) attachOperands(slot int) {
	st := &e.st
	n := e.cfg.NumRegs
	seq := st.seq[slot]
	nr := int(st.nsrc[slot])
	st.srcSlot0[slot], st.srcSlot1[slot] = -1, -1
	ready := true
	for k := 0; k < nr; k++ {
		r := st.r1[slot]
		if k == 1 {
			r = st.r2[slot]
		}
		if int(r) >= n {
			if e.fwdErr == nil {
				e.fwdErr = fmt.Errorf("core: %s reads r%d but machine has %d registers", st.inst[slot], r, n) //uslint:allow hotpathalloc -- cold error path, terminates the run
			}
			return
		}
		var val isa.Word
		d := int32(-1)
		pend := int32(-1)
		var pendSeq int64
		if p := e.regWriter[r]; p >= 0 {
			pi := int(p)
			d = int32(seq - st.seq[pi])
			if st.done.get(pi) {
				val = st.result[pi]
			} else {
				pend, pendSeq = p, st.seq[pi]
				ready = false
				node := int32(slot)<<1 | int32(k)
				st.consNext[node] = st.consHead[pi]
				st.consHead[pi] = node
			}
		} else {
			if cp := e.commitProducer[r]; cp >= 0 {
				d = int32(seq - cp)
			}
			val = e.commit[r]
		}
		if k == 0 {
			st.a[slot], st.srcD0[slot] = val, d
			st.srcSlot0[slot], st.srcSeq0[slot] = pend, pendSeq
		} else {
			st.b[slot], st.srcD1[slot] = val, d
			st.srcSlot1[slot], st.srcSeq1[slot] = pend, pendSeq
		}
	}
	st.srcN[slot] = uint8(nr)
	if ready {
		st.ready.set(slot)
	}
}

// rebuildRename rederives the rename table from the surviving window
// after a squash: the newest live writer of each register, or -1 for the
// committed file. One age-order pass over the survivors — cheaper than
// checkpointing the table per branch, and squashes are per-mispredict,
// not per-cycle.
func (e *engine) rebuildRename() {
	for r := range e.regWriter {
		e.regWriter[r] = -1
	}
	st := &e.st
	for i := 0; i < e.occ; i++ {
		s := e.slotAt(i)
		if st.writes.get(s) {
			e.regWriter[st.dest[s]] = int32(s)
		}
	}
}

// forwardSpan propagates the full scan through one linear slot span in
// age order. The word-level work set is latchers | writers: unstarted
// stations re-latching operands, plus register writers driving the wires;
// everything else is skipped a word at a time.
func (e *engine) forwardSpan(lo, hi int) error {
	if lo >= hi {
		return nil
	}
	st := &e.st
	n := e.cfg.NumRegs
	fl := e.cfg.ForwardLatency
	vals, writer, writerDone := e.fwdVals, e.fwdWriter, e.fwdWriterDone
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		m := spanMask(lo, hi, w)
		latch := st.busy[w] &^ st.started[w] & m
		wr := st.writes[w] & m
		work := latch | wr
		for work != 0 {
			b := bits.TrailingZeros64(work)
			work &= work - 1
			bit := uint64(1) << uint(b)
			slot := w<<6 + b
			if latch&bit != 0 {
				nr := int(st.nsrc[slot])
				seq := st.seq[slot]
				opsReady := true
				for k := 0; k < nr; k++ {
					r := st.r1[slot]
					if k == 1 {
						r = st.r2[slot]
					}
					if int(r) >= n {
						return fmt.Errorf("core: %s reads r%d but machine has %d registers", st.inst[slot], r, n) //uslint:allow hotpathalloc -- cold error path, terminates the run
					}
					avail := e.fwdReady>>r&1 != 0
					if avail && fl != nil && writer[r] >= 0 {
						// Self-timed datapath: the value reaches a consumer d
						// instructions away only after the extra path latency.
						extra := fl(int(seq - writer[r]))
						if e.cycle < writerDone[r]+int64(extra) {
							avail = false
						}
					}
					if !avail {
						opsReady = false
					}
					d := int32(-1)
					if writer[r] >= 0 {
						d = int32(seq - writer[r])
					}
					if k == 0 {
						st.a[slot] = vals[r]
						st.srcD0[slot] = d
					} else {
						st.b[slot] = vals[r]
						st.srcD1[slot] = d
					}
				}
				st.srcN[slot] = uint8(nr)
				st.ready.put(slot, opsReady)
			}
			if wr&bit != 0 {
				d := st.dest[slot]
				if int(d) >= n {
					return fmt.Errorf("core: %s writes r%d but machine has %d registers", st.inst[slot], d, n) //uslint:allow hotpathalloc -- cold error path, terminates the run
				}
				vals[d] = st.result[slot]
				e.fwdReady = e.fwdReady&^(1<<d) | st.done[w]>>uint(b)&1<<d
				writer[d] = st.seq[slot]
				writerDone[d] = st.doneAt[slot]
			}
		}
	}
	return nil
}

// execute progresses ALU, jump and branch stations. With a shared-ALU
// pool configured, at most NumALUs instructions execute concurrently,
// allocated oldest first — the priority the CSPP scheduler implements.
// The in-flight count is a popcount over started &^ done & alu; the issue
// and tick work set is one word expression per 64 slots.
//
//uslint:hotpath
func (e *engine) execute() {
	st := &e.st
	var spans [2][2]int
	spans[0][0], spans[0][1], spans[1][0], spans[1][1] = e.liveSpans()
	budget := e.cfg.NumALUs
	if budget > 0 {
		for _, sp := range spans {
			for w := sp[0] >> 6; w <= (sp[1]-1)>>6; w++ {
				budget -= bits.OnesCount64(st.started[w] &^ st.done[w] & st.alu[w] & spanMask(sp[0], sp[1], w))
			}
		}
	}
	for _, sp := range spans {
		for w := sp[0] >> 6; w <= (sp[1]-1)>>6; w++ {
			memW := st.load[w] | st.store[w]
			work := (st.busy[w] &^ st.done[w] &^ memW) & (st.ready[w] | st.started[w]) & spanMask(sp[0], sp[1], w)
			for work != 0 {
				b := bits.TrailingZeros64(work)
				work &= work - 1
				slot := w<<6 + b
				if st.started[w]>>uint(b)&1 == 0 {
					if e.cfg.NumALUs > 0 && st.alu[w]>>uint(b)&1 != 0 {
						if budget <= 0 {
							e.stats.ALUStarved++
							continue
						}
						budget--
					}
					st.started.set(slot)
					st.remaining[slot] = int32(e.cfg.Lat.Of(st.inst[slot]))
					st.issue[slot] = e.cycle
					e.recordSources(slot)
					if e.trc != nil {
						e.trc.Record(obs.EvIssue, e.cycle, st.seq[slot], st.pc[slot], int32(slot), st.remaining[slot])
					}
				}
				rem := st.remaining[slot]
				if rem > 0 {
					rem--
					st.remaining[slot] = rem
				}
				if rem > 0 {
					continue
				}
				// Completes at the end of this cycle; consumers see it
				// next cycle.
				st.done.set(slot)
				st.doneAt[slot] = e.cycle + 1
				e.queueWake(slot)
				e.fwdDirty = true
				if e.trc != nil {
					e.trc.Record(obs.EvExec, e.cycle, st.seq[slot], st.pc[slot], int32(slot), 0)
				}
				cl := st.class[slot]
				switch {
				case cl&clsBranch != 0:
					st.resolved.set(slot)
					st.actualNext[slot] = int32(isa.NextPC(st.inst[slot], int(st.pc[slot]), st.a[slot], st.b[slot]))
				case cl&clsJump != 0:
					st.resolved.set(slot)
					st.actualNext[slot] = int32(isa.NextPC(st.inst[slot], int(st.pc[slot]), st.a[slot], st.b[slot]))
					st.result[slot] = isa.Word(st.pc[slot] + 1) // link
				case cl&(clsHalt|clsNop) != 0:
					// no result
				default:
					st.result[slot] = isa.ALUOp(st.inst[slot], st.a[slot], st.b[slot])
				}
			}
		}
	}
}

// recordSources accounts operand producer distances at issue time. The
// histogram is a dense slice (distances from committed producers can
// exceed the window, so it grows on demand); it becomes the public
// Stats.OperandFromStation map when the run completes.
func (e *engine) recordSources(slot int) {
	st := &e.st
	n := int(st.srcN[slot])
	for k := 0; k < n; k++ {
		d := st.srcD0[slot]
		if k == 1 {
			d = st.srcD1[slot]
		}
		if e.trc != nil {
			e.trc.Record(obs.EvForward, e.cycle, st.seq[slot], st.pc[slot], int32(slot), d)
		}
		if d < 0 {
			e.stats.OperandFromCommitted++
			continue
		}
		if int(d) >= len(e.operandDist) {
			grown := make([]int64, max(int(d)+1, 2*len(e.operandDist))) //uslint:allow hotpathalloc -- amortized histogram growth, not per-cycle
			copy(grown, e.operandDist)
			e.operandDist = grown
		}
		e.operandDist[d]++
	}
}

// memoryPhase gates loads and stores through the sequencing CSPPs and the
// fat-tree arbitration.
//
// Paper Section 2: "A station cannot load from memory until all preceding
// stores have finished. A station cannot store to memory until all
// preceding loads and stores have finished" and "A station cannot modify
// memory ... until all preceding stations have committed."
//
// The running AND-prefixes over the window in age order are the
// functional equivalent of the three 1-bit CSPPs of Figure 5 with the
// oldest station's segment bit high; the word-level work set
// (load|store|flow) skips every slot that cannot move a prefix bit or
// request memory.
//
//uslint:hotpath
func (e *engine) memoryPhase() {
	if e.memCount == 0 {
		return
	}
	st := &e.st
	storesDone := true // all earlier stores finished
	memDone := true    // all earlier loads and stores finished
	committed := true  // all earlier branches confirmed

	reqs := e.memReqs[:0]
	cands := e.memCands[:0]
	var spans [2][2]int
	spans[0][0], spans[0][1], spans[1][0], spans[1][1] = e.liveSpans()
	for _, sp := range spans {
		for w := sp[0] >> 6; w <= (sp[1]-1)>>6; w++ {
			work := (st.load[w] | st.store[w] | st.flow[w]) & spanMask(sp[0], sp[1], w)
			for work != 0 {
				b := bits.TrailingZeros64(work)
				work &= work - 1
				bit := uint64(1) << uint(b)
				slot := w<<6 + b
				eligible := st.started[w]&bit == 0 && st.ready[w]&bit != 0
				cl := st.class[slot]
				if eligible && cl&clsLoad != 0 {
					addr := isa.EffAddr(st.inst[slot], st.a[slot])
					switch {
					case e.cfg.MemRenaming:
						// Memory renaming (Section 7): search the window for
						// the nearest earlier store to the same address,
						// through the CSPP-equivalent backward scan. A store
						// with an unknown address blocks; a match forwards;
						// otherwise the load is disambiguated and may bypass
						// unperformed stores.
						v, hit, blocked := e.forwardFromStore(e.ageOf(slot), addr)
						if hit {
							st.started.set(slot)
							st.done.set(slot)
							st.memDone.set(slot)
							st.doneAt[slot] = e.cycle + 1
							st.issue[slot] = e.cycle
							st.result[slot] = v
							e.queueWake(slot)
							e.fwdDirty = true
							e.recordSources(slot)
							e.stats.Loads++
							e.stats.LoadsForwarded++
							if e.trc != nil {
								e.trc.Record(obs.EvIssue, e.cycle, st.seq[slot], st.pc[slot], int32(slot), 0)
								e.trc.Record(obs.EvExec, e.cycle, st.seq[slot], st.pc[slot], int32(slot), 0)
							}
						} else if !blocked {
							reqs = append(reqs, memory.Request{Station: slot, Addr: addr, Age: st.seq[slot]}) //uslint:allow hotpathalloc -- reusable scratch, preallocated to the window size via e.memReqs
							cands = append(cands, memCand{int32(slot), addr})                                 //uslint:allow hotpathalloc -- reusable scratch, preallocated to the window size via e.memCands
						}
					case storesDone:
						reqs = append(reqs, memory.Request{Station: slot, Addr: addr, Age: st.seq[slot]}) //uslint:allow hotpathalloc -- reusable scratch, preallocated to the window size via e.memReqs
						cands = append(cands, memCand{int32(slot), addr})                                 //uslint:allow hotpathalloc -- reusable scratch, preallocated to the window size via e.memCands
					}
				}
				if eligible && cl&clsStore != 0 && memDone && committed {
					addr := isa.EffAddr(st.inst[slot], st.a[slot])
					reqs = append(reqs, memory.Request{Station: slot, Addr: addr, Store: true, Age: st.seq[slot]}) //uslint:allow hotpathalloc -- reusable scratch, preallocated to the window size via e.memReqs
					cands = append(cands, memCand{int32(slot), addr})                                              //uslint:allow hotpathalloc -- reusable scratch, preallocated to the window size via e.memCands
				}
				// Prefix updates re-read the word: a hit-forwarded load just
				// set its own memDone bit.
				md := st.memDone[w]&bit != 0
				if cl&clsStore != 0 {
					storesDone = storesDone && md
					memDone = memDone && md
				}
				if cl&clsLoad != 0 {
					memDone = memDone && md
				}
				if cl&clsFlow != 0 {
					// "Committed" requires the branch resolved on the
					// predicted path: a mispredicted branch squashes its
					// younger stations in this cycle's recovery phase, so
					// they must not touch memory.
					committed = committed && st.resolved[w]&bit != 0 && st.actualNext[slot] == st.predNext[slot]
				}
			}
		}
	}
	e.memReqs, e.memCands = reqs, cands // keep the scratch for reuse
	if len(reqs) == 0 {
		return
	}
	if e.cfg.MemSystem == nil {
		for _, c := range cands {
			e.grantMem(int(c.slot), c.addr, e.cfg.Lat.Of(st.inst[c.slot]))
		}
		return
	}
	// Candidates are few and age-ordered; a linear scan replaces the
	// per-cycle map the seed engine built to pair grants with stations.
	for _, g := range e.cfg.MemSystem.Arbitrate(reqs) {
		for _, c := range cands {
			if st.seq[c.slot] == g.Req.Age {
				e.grantMem(int(c.slot), c.addr, g.Latency)
				break
			}
		}
	}
}

// grantMem performs one granted memory access: the station issues, the
// access is performed against the flat memory now, and the data becomes
// visible when memDoneAt arrives.
//
//uslint:hotpath
func (e *engine) grantMem(slot int, addr isa.Word, latency int) {
	st := &e.st
	st.started.set(slot)
	st.memInFlight.set(slot)
	st.issue[slot] = e.cycle
	st.memDoneAt[slot] = e.cycle + int64(latency)
	st.doneAt[slot] = st.memDoneAt[slot]
	e.recordSources(slot)
	if e.trc != nil {
		e.trc.Record(obs.EvIssue, e.cycle, st.seq[slot], st.pc[slot], int32(slot), int32(latency))
	}
	if st.class[slot]&clsStore != 0 {
		if e.flt != nil {
			e.flt.noteStore(e, slot, addr)
		}
		e.mem.Store(addr, st.b[slot])
		e.stats.Stores++
	} else {
		st.result[slot] = e.mem.Load(addr)
		e.stats.Loads++
	}
}

// forwardFromStore scans the window backwards from the load at age index
// age for a store to addr. It returns the forwarded value on a hit;
// blocked is true when an earlier store's address is still unknown (the
// load must wait for disambiguation). Only the store bitmap is walked —
// newest first, word at a time.
func (e *engine) forwardFromStore(age int, addr isa.Word) (v isa.Word, hit, blocked bool) {
	w := e.cfg.Window
	end := e.head + age // absolute end of the older-station range
	if end > w {
		var found bool
		v, hit, blocked, found = e.scanStoresBack(0, end-w, addr)
		if found {
			return v, hit, blocked
		}
		end = w
	}
	v, hit, blocked, _ = e.scanStoresBack(e.head, end, addr)
	return v, hit, blocked
}

// scanStoresBack walks the store bits of [lo, hi) from the highest slot
// down. found reports that the scan terminated (hit or blocked) inside
// the span.
func (e *engine) scanStoresBack(lo, hi int, addr isa.Word) (v isa.Word, hit, blocked, found bool) {
	if lo >= hi {
		return 0, false, false, false
	}
	st := &e.st
	for w := (hi - 1) >> 6; w >= lo>>6; w-- {
		word := st.store[w] & spanMask(lo, hi, w)
		for word != 0 {
			b := bits.Len64(word) - 1
			word &^= 1 << uint(b)
			slot := w<<6 + b
			if st.ready[w]>>uint(b)&1 == 0 {
				return 0, false, true, true
			}
			if isa.EffAddr(st.inst[slot], st.a[slot]) == addr {
				return st.b[slot], true, false, true
			}
		}
	}
	return 0, false, false, false
}

// recover processes branch resolutions oldest-first: trains the
// predictors, and on the first misprediction squashes all younger stations
// and redirects fetch — the paper's single-cycle recovery ("Nothing needs
// to be done to recover from misprediction except to fetch new
// instructions from the correct program path"). The work set is one word
// expression: resolved but not yet processed.
//
//uslint:hotpath
func (e *engine) recover() {
	st := &e.st
	var spans [2][2]int
	spans[0][0], spans[0][1], spans[1][0], spans[1][1] = e.liveSpans()
	for _, sp := range spans {
		for w := sp[0] >> 6; w <= (sp[1]-1)>>6; w++ {
			work := (st.resolved[w] &^ st.flowDone[w]) & spanMask(sp[0], sp[1], w)
			for work != 0 {
				b := bits.TrailingZeros64(work)
				work &= work - 1
				slot := w<<6 + b
				st.flowDone.set(slot)
				if st.class[slot]&clsBranch != 0 {
					e.stats.Branches++
					taken := st.actualNext[slot] != st.pc[slot]+1
					if st.usedSpec.get(slot) {
						e.cfg.Predictor.(branch.SpecPredictor).
							Resolve(int(st.pc[slot]), int(st.histSnap[slot]), taken, st.actualNext[slot] != st.predNext[slot])
					} else {
						e.cfg.Predictor.Update(int(st.pc[slot]), taken)
					}
				}
				if st.inst[slot].Op == isa.OpJalr {
					e.cfg.BTB.Update(int(st.pc[slot]), int(st.actualNext[slot]))
				}
				if st.actualNext[slot] != st.predNext[slot] {
					e.stats.Mispredicts++
					e.squashAfter(e.ageOf(slot))
					e.fetchPC = int(st.actualNext[slot])
					e.haltStop = false
					e.jalrWait = false
					return // younger resolutions are gone
				}
			}
		}
	}
}

// squashSpans returns the absolute slot spans (at most two) occupied by
// ages [from, occ) — the tail a squash discards.
func (e *engine) squashSpans(from int) (s1lo, s1hi, s2lo, s2hi int) {
	w := e.cfg.Window
	aLo, aHi := e.head+from, e.head+e.occ
	switch {
	case aLo >= w:
		return aLo - w, aHi - w, 0, 0
	case aHi > w:
		return aLo, w, 0, aHi - w
	default:
		return aLo, aHi, 0, 0
	}
}

// memOnes counts load/store stations in one slot span.
func (e *engine) memOnes(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	st := &e.st
	n := 0
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		n += bits.OnesCount64((st.load[w] | st.store[w]) & spanMask(lo, hi, w))
	}
	return n
}

// squashAfter removes all stations younger than age index i: their bits
// clear from every state bitvec with two range masks, and the memory
// population correction is a popcount. Squashing needs no forwarding
// rescan: the surviving prefix's scan state is unaffected (the scan is a
// strict age-order prefix computation), and the squashed stations'
// outputs are discarded.
func (e *engine) squashAfter(i int) {
	st := &e.st
	nsq := e.occ - i - 1
	if nsq > 0 {
		if e.trc != nil {
			byPC := st.pc[e.slotAt(i)]
			for j := i + 1; j < e.occ; j++ {
				v := e.slotAt(j)
				e.trc.Record(obs.EvSquash, e.cycle, st.seq[v], st.pc[v], int32(v), byPC)
			}
		}
		s1lo, s1hi, s2lo, s2hi := e.squashSpans(i + 1)
		e.memCount -= e.memOnes(s1lo, s1hi) + e.memOnes(s2lo, s2hi)
		e.stats.Squashed += int64(nsq)
		for _, v := range st.stateVecs {
			v.clearRange(s1lo, s1hi)
			v.clearRange(s2lo, s2hi)
		}
		e.occ = i + 1
		e.nextSeq = st.seq[e.slotAt(i)] + 1
		if e.wake {
			e.rebuildRename()
			e.relinkWakes(s1lo, s1hi, s2lo, s2hi)
		}
		return
	}
	e.occ = i + 1
	e.nextSeq = st.seq[e.slotAt(i)] + 1
}

// relinkWakes resets the wake machinery after a squash. Sequence numbers
// rewind, so a squashed slot's next occupant reuses the exact (slot, seq)
// pair — a stale queue event or list node could then wake a consumer with
// the dead producer's result. Queue events for squashed producers are
// dropped (survivors' events stand: their consumers may survive too), and
// the consumer lists are rebuilt outright from the survivors' pending
// links, which also sheds every node that pointed at a squashed consumer.
func (e *engine) relinkWakes(s1lo, s1hi, s2lo, s2hi int) {
	st := &e.st
	kept := 0
	for i := 0; i < e.wakeN; i++ {
		s := int(st.wakeSlot[i])
		if (s >= s1lo && s < s1hi) || (s >= s2lo && s < s2hi) {
			continue
		}
		st.wakeSlot[kept] = st.wakeSlot[i]
		st.wakeSeq[kept] = st.wakeSeq[i]
		kept++
	}
	e.wakeN = kept
	for i := range st.consHead {
		st.consHead[i] = -1
	}
	for i := 0; i < e.occ; i++ {
		c := e.slotAt(i)
		if p := st.srcSlot0[c]; p >= 0 {
			node := int32(c) << 1
			st.consNext[node] = st.consHead[p]
			st.consHead[p] = node
		}
		if p := st.srcSlot1[c]; p >= 0 {
			node := int32(c)<<1 | 1
			st.consNext[node] = st.consHead[p]
			st.consHead[p] = node
		}
	}
}

// retire commits finished instructions in order from the head of the
// window, freeing station slots at the configured granularity. It returns
// true when a halt commits. Advancing head replaces the seed engine's
// survivor copy-down: retirement is O(retired), not O(window).
//
//uslint:hotpath
func (e *engine) retire() bool {
	st := &e.st
	g := e.cfg.Granularity
	popped := 0
	for popped < e.occ {
		slot := e.slotAt(popped)
		if !e.finishedSlot(slot) {
			break
		}
		if e.flt != nil {
			if resume, bad := e.flt.checkRetire(e, slot); bad {
				// The commit checker refused the instruction: recover by
				// squashing from it and replaying. The prefix retired this
				// cycle stands; nothing younger survives.
				e.faultRecover(popped, resume)
				return false
			}
		}
		popped++
		e.stats.Retired++
		if e.trc != nil {
			e.trc.Record(obs.EvRetire, e.cycle, st.seq[slot], st.pc[slot], int32(slot), 0)
		}
		if e.traceBuild != nil {
			e.traceBuild.Retire(int(st.pc[slot]))
		}
		if e.cfg.KeepTimeline {
			e.timeline = append(e.timeline, InstRecord{ //uslint:allow hotpathalloc -- opt-in timeline (cfg.KeepTimeline), off in measured runs
				Seq: st.seq[slot], PC: int(st.pc[slot]), Inst: st.inst[slot], Slot: slot,
				Issue: st.issue[slot], Done: st.doneAt[slot],
			})
		}
		if st.writes.get(slot) {
			d := st.dest[slot]
			e.commit[d] = st.result[slot]
			e.commitProducer[d] = st.seq[slot]
			e.commitDoneAt[d] = st.doneAt[slot]
			if e.regWriter[d] == int32(slot) {
				e.regWriter[d] = -1 // newest writer of d now lives in the committed file
			}
		}
		cl := st.class[slot]
		if cl&clsHalt != 0 {
			return true
		}
		if cl&clsMem != 0 {
			e.memCount--
			if e.flt != nil && cl&clsStore != 0 {
				e.flt.dropStore(st.seq[slot])
			}
		}
		// Slot reuse at granularity g: the retiring slot's state bits all
		// clear (keeping every state vec ⊆ busy), the slot drains, and it
		// frees only when its whole aligned group of g slots has drained —
		// one popcount and one range clear. Granularity 1 frees immediately
		// (Ultrascalar I); granularity Window drains the whole batch
		// (Ultrascalar II); granularity C drains per cluster (hybrid).
		for _, v := range st.stateVecs {
			v.clear(slot)
		}
		st.drained.set(slot)
		gLo := slot / g * g
		if st.drained.onesRange(gLo, gLo+g) == g {
			st.drained.clearRange(gLo, gLo+g)
		}
	}
	if popped > 0 {
		e.head += popped
		if e.head >= e.cfg.Window {
			e.head -= e.cfg.Window
		}
		e.occ -= popped
		e.lastRetire = e.cycle
	}
	return false
}

// fetch fills free station slots along the predicted path. The fetch
// width defaults to the window size ("the issue width and the
// instruction-fetch width scale together"); the fetch model decides how
// taken branches limit a cycle's fetch.
//
//uslint:hotpath
func (e *engine) fetch() {
	width := e.cfg.FetchWidth
	if width <= 0 {
		width = e.cfg.Window
	}
	switch e.cfg.Fetch {
	case FetchBlock:
		e.fetchSequential(width, true)
	case FetchTrace:
		if !e.haltStop && !e.jalrWait {
			if tr, ok := e.trace.Lookup(e.fetchPC); ok {
				e.fetchTrace(tr, width)
				return
			}
		}
		e.fetchSequential(width, true)
	default:
		e.fetchSequential(width, false)
	}
}

// fetchSequential fetches along the predicted path; with stopAtTaken it
// ends the cycle's fetch after the first predicted-taken control transfer
// (conventional block fetch).
func (e *engine) fetchSequential(width int, stopAtTaken bool) {
	for fetched := 0; fetched < width; fetched++ {
		slot, ok := e.fetchOne(-1)
		if !ok {
			return
		}
		if stopAtTaken && e.st.inst[slot].ChangesFlow() && e.st.predNext[slot] != e.st.pc[slot]+1 {
			return
		}
	}
}

// fetchTrace supplies a cached trace in one cycle: every instruction's
// predicted successor is the trace's recorded path.
func (e *engine) fetchTrace(tr []int, width int) {
	for i, pc := range tr {
		if i >= width || pc != e.fetchPC {
			return
		}
		forced := -1
		if i+1 < len(tr) {
			forced = tr[i+1]
		}
		if _, ok := e.fetchOne(forced); !ok {
			return
		}
	}
}

// fetchOne fetches the instruction at the current fetch PC into the next
// station slot. forcedNext >= 0 supplies a trace-recorded successor for
// control transfers, bypassing the predictors. It returns the filled slot
// and false when fetch cannot proceed further this cycle.
//
// Only the fields a fresh station needs are written: every state bit of
// the slot was already cleared when it retired or squashed (the state ⊆
// busy invariant), and the stale scalar fields are all written before
// read (operands by the next scan, execution state at issue).
func (e *engine) fetchOne(forcedNext int) (int, bool) {
	if e.haltStop || e.jalrWait || e.occ >= e.cfg.Window {
		return -1, false
	}
	if e.fetchPC < 0 || e.fetchPC >= len(e.prog) {
		return -1, false
	}
	slot := int(e.nextSeq % int64(e.cfg.Window))
	st := &e.st
	if st.busy.get(slot) || st.drained.get(slot) {
		return -1, false
	}
	pc := e.fetchPC
	in := e.prog[pc]
	st.seq[slot] = e.nextSeq
	st.pc[slot] = int32(pc)
	st.inst[slot] = in
	r1, r2, nr := in.ReadRegs()
	st.r1[slot], st.r2[slot] = r1, r2
	st.nsrc[slot] = uint8(nr)
	st.srcN[slot] = 0
	d, wr := in.Writes()
	st.dest[slot] = d
	if wr {
		st.writes.set(slot)
	}
	cl := classify(in)
	st.class[slot] = cl
	if cl&clsLoad != 0 {
		st.load.set(slot)
	}
	if cl&clsStore != 0 {
		st.store.set(slot)
	}
	if cl&clsFlow != 0 {
		st.flow.set(slot)
	}
	if cl&clsBranch != 0 {
		st.branch.set(slot)
	}
	if cl&clsNoALU == 0 {
		st.alu.set(slot)
	}
	if e.wake {
		e.attachOperands(slot)
		if wr {
			if int(d) >= e.cfg.NumRegs {
				if e.fwdErr == nil {
					e.fwdErr = fmt.Errorf("core: %s writes r%d but machine has %d registers", in, d, e.cfg.NumRegs) //uslint:allow hotpathalloc -- cold error path, terminates the run
				}
			} else {
				e.regWriter[d] = int32(slot)
			}
		}
	}
	var predNext int32
	switch {
	case in.IsHalt():
		e.haltStop = true
		predNext = -1
	case in.IsBranch():
		if forcedNext >= 0 {
			predNext = int32(forcedNext)
			break
		}
		var taken bool
		if sp, ok := e.cfg.Predictor.(branch.SpecPredictor); ok {
			var snap int
			taken, snap = sp.PredictSpec(pc)
			st.histSnap[slot] = int32(snap)
			st.usedSpec.set(slot)
		} else {
			taken = e.cfg.Predictor.Predict(pc)
		}
		if taken {
			predNext = int32(pc + 1 + int(in.Imm))
		} else {
			predNext = int32(pc + 1)
		}
	case in.Op == isa.OpJal:
		predNext = int32(pc + 1 + int(in.Imm))
		if e.ras != nil {
			e.ras.Push(pc + 1) // a call's return address
		}
	case in.Op == isa.OpJalr:
		if forcedNext >= 0 {
			predNext = int32(forcedNext)
			break
		}
		if e.ras != nil {
			if addr, ok := e.ras.Pop(); ok {
				predNext = int32(addr)
				break
			}
		}
		predNext = int32(e.cfg.BTB.Predict(pc))
		if predNext < 0 {
			e.jalrWait = true
		}
	default:
		predNext = int32(pc + 1)
	}
	st.predNext[slot] = predNext
	st.busy.set(slot)
	if e.occ == 0 {
		e.head = slot
	}
	e.occ++
	e.nextSeq++
	e.stats.Fetched++
	if e.trc != nil {
		e.trc.Record(obs.EvFetch, e.cycle, st.seq[slot], int32(pc), int32(slot), predNext)
	}
	if cl&clsMem != 0 {
		e.memCount++
	}
	if !e.wake {
		// Full scan: new stations latch at the next scan. Wake mode needs
		// no rescan — attachOperands latched from current producer state.
		e.fwdDirty = true
	}
	if e.haltStop || e.jalrWait {
		return slot, false
	}
	e.fetchPC = int(predNext)
	return slot, true
}
