package core

import (
	"fmt"

	"ultrascalar/internal/branch"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/tracecache"
)

// station is one occupied execution station.
type station struct {
	seq  int64
	pc   int
	inst isa.Inst
	slot int

	writes bool
	dest   uint8

	predictedNext int // -1: unknown (JALR with a cold BTB)

	// Operand state, recomputed every cycle by the forwarding scan until
	// the instruction starts (paper: stations latch incoming values each
	// cycle).
	opsReady bool
	a, b     isa.Word
	srcDist  []int // producer distance per source operand, -1 = committed file

	// Execution state.
	started   bool
	remaining int
	done      bool // result available to consumers (end of the done cycle)
	result    isa.Word

	// Control flow.
	resolved   bool
	flowDone   bool // resolution processed by the recovery phase
	actualNext int
	histSnap   int  // speculative-history snapshot (SpecPredictor)
	usedSpec   bool // predicted through PredictSpec

	// Memory.
	memInFlight bool
	memDoneAt   int64
	memDone     bool

	issue  int64
	doneAt int64 // first cycle the result is visible to consumers
}

// finished reports whether the station's instruction has completed all its
// effects and may retire once it reaches the head of the window.
func (s *station) finished() bool {
	switch {
	case s.inst.IsStore():
		return s.memDone
	case s.inst.ChangesFlow():
		return s.resolved
	default:
		return s.done
	}
}

// slotState tracks reuse of execution-station slots at the configured
// granularity.
type slotState uint8

const (
	slotFree slotState = iota
	slotOccupied
	slotDrained // retired, waiting for its whole group to drain
)

type engine struct {
	cfg    Config
	prog   []isa.Inst
	mem    *memory.Flat
	commit []isa.Word // committed register file (held by the oldest station)
	// commitProducer holds, per register, the dynamic sequence number of
	// the retired instruction that produced the committed value (-1 for
	// initial values), for the operand-distance statistic and the
	// self-timed forwarding model; commitDoneAt holds the cycle the value
	// became visible.
	commitProducer []int64
	commitDoneAt   []int64

	window  []*station // age order, oldest first
	slots   []slotState
	nextSeq int64

	fetchPC  int
	haltStop bool
	jalrWait bool

	trace      *tracecache.Cache
	traceBuild *tracecache.Builder
	ras        *branch.RAS

	cycle    int64
	stats    Stats
	timeline []InstRecord
}

// Run executes prog on the configured processor with the given data
// memory (mutated in place).
func Run(prog []isa.Inst, mem *memory.Flat, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:            cfg,
		prog:           prog,
		mem:            mem,
		commit:         make([]isa.Word, cfg.NumRegs),
		commitProducer: make([]int64, cfg.NumRegs),
		commitDoneAt:   make([]int64, cfg.NumRegs),
		slots:          make([]slotState, cfg.Window),
	}
	for r := range e.commitProducer {
		e.commitProducer[r] = -1
	}
	if cfg.InitRegs != nil {
		copy(e.commit, cfg.InitRegs)
	}
	e.stats.OperandFromStation = make(map[int]int64)
	e.stats.Occupancy = make([]int64, cfg.Window+1)
	if cfg.Fetch == FetchTrace {
		e.trace = tracecache.New(cfg.TraceSetBits, cfg.TraceLen)
		e.traceBuild = tracecache.NewBuilder(e.trace)
	}
	if cfg.ReturnStack > 0 {
		e.ras = branch.NewRAS(cfg.ReturnStack)
	}
	e.fetch() // initial fill: the window is loaded before the first cycle

	for e.cycle = 0; e.cycle < cfg.MaxCycles; e.cycle++ {
		if len(e.window) == 0 {
			if e.haltStop {
				// The halt retired and ended the run inside retire();
				// reaching here with haltStop means fetch stopped but halt
				// never entered: impossible, defensive.
				return nil, ErrPCOutOfRange
			}
			return nil, fmt.Errorf("%w: pc=%d len=%d", ErrPCOutOfRange, e.fetchPC, len(e.prog))
		}
		// Occupancy is measured as the window state entering the cycle.
		e.stats.StationBusy += int64(len(e.window))
		e.stats.Occupancy[len(e.window)]++
		e.completions()
		if err := e.forward(); err != nil {
			return nil, err
		}
		if err := e.execute(); err != nil {
			return nil, err
		}
		e.memoryPhase()
		e.recover()
		if halted := e.retire(); halted {
			e.stats.Cycles = e.cycle + 1
			return &Result{Regs: e.commit, Mem: e.mem, Stats: e.stats, Timeline: e.timeline}, nil
		}
		e.fetch()
	}
	return nil, ErrNoHalt
}

// completions makes memory data that arrived at the end of the previous
// cycle visible.
func (e *engine) completions() {
	for _, s := range e.window {
		if s.memInFlight && !s.memDone && s.memDoneAt <= e.cycle {
			s.memDone = true
			s.done = true
		}
	}
}

// forward performs the per-register CSPP scan: each station receives, for
// each source register, the (value, ready) pair inserted by the nearest
// preceding modifier, or the committed register file at the oldest station
// (paper Figure 1/4 semantics; one full-window propagation per cycle).
func (e *engine) forward() error {
	n := e.cfg.NumRegs
	vals := make([]isa.Word, n)
	ready := make([]bool, n)
	writer := make([]int64, n)     // seq of the value's producer, -1 = initial
	writerDone := make([]int64, n) // cycle the value became visible
	copy(vals, e.commit)
	copy(writer, e.commitProducer)
	copy(writerDone, e.commitDoneAt)
	for r := range ready {
		ready[r] = true
	}
	fl := e.cfg.ForwardLatency
	for _, s := range e.window {
		if !s.started {
			reads := s.inst.Reads()
			s.opsReady = true
			s.srcDist = s.srcDist[:0]
			for k, r := range reads {
				if int(r) >= n {
					return fmt.Errorf("core: %s reads r%d but machine has %d registers", s.inst, r, n)
				}
				avail := ready[r]
				if avail && fl != nil && writer[r] >= 0 {
					// Self-timed datapath: the value reaches a consumer d
					// instructions away only after the extra path latency.
					extra := fl(int(s.seq - writer[r]))
					if e.cycle < writerDone[r]+int64(extra) {
						avail = false
					}
				}
				if !avail {
					s.opsReady = false
				}
				v := vals[r]
				if k == 0 {
					s.a = v
				} else {
					s.b = v
				}
				if writer[r] < 0 {
					s.srcDist = append(s.srcDist, -1)
				} else {
					s.srcDist = append(s.srcDist, int(s.seq-writer[r]))
				}
			}
		}
		if s.writes {
			if int(s.dest) >= n {
				return fmt.Errorf("core: %s writes r%d but machine has %d registers", s.inst, s.dest, n)
			}
			vals[s.dest] = s.result
			ready[s.dest] = s.done
			writer[s.dest] = s.seq
			writerDone[s.dest] = s.doneAt
		}
	}
	return nil
}

// needsALU reports whether an instruction occupies one of the shared
// arithmetic units while executing.
func needsALU(in isa.Inst) bool {
	return !in.IsMem() && !in.IsHalt() && in.Op != isa.OpNop
}

// execute progresses ALU, jump and branch stations. With a shared-ALU
// pool configured, at most NumALUs instructions execute concurrently,
// allocated oldest first — the priority the CSPP scheduler implements.
func (e *engine) execute() error {
	budget := e.cfg.NumALUs
	if budget > 0 {
		for _, s := range e.window {
			if needsALU(s.inst) && s.started && !s.done {
				budget--
			}
		}
	}
	for _, s := range e.window {
		if s.inst.IsMem() {
			continue // handled by memoryPhase
		}
		if !s.started {
			if !s.opsReady {
				continue
			}
			if e.cfg.NumALUs > 0 && needsALU(s.inst) {
				if budget <= 0 {
					e.stats.ALUStarved++
					continue
				}
				budget--
			}
			s.started = true
			s.remaining = e.cfg.Lat.Of(s.inst)
			s.issue = e.cycle
			e.recordSources(s)
		}
		if s.done {
			continue
		}
		if s.remaining > 0 {
			s.remaining--
		}
		if s.remaining > 0 {
			continue
		}
		// Completes at the end of this cycle; consumers see it next cycle.
		s.done = true
		s.doneAt = e.cycle + 1
		in := s.inst
		switch {
		case in.IsBranch():
			s.resolved = true
			s.actualNext = isa.NextPC(in, s.pc, s.a, s.b)
		case in.IsJump():
			s.resolved = true
			s.actualNext = isa.NextPC(in, s.pc, s.a, s.b)
			s.result = isa.Word(s.pc + 1) // link
		case in.IsHalt() || in.Op == isa.OpNop:
			// no result
		default:
			s.result = isa.ALUOp(in, s.a, s.b)
		}
	}
	return nil
}

// recordSources accounts operand producer distances at issue time.
func (e *engine) recordSources(s *station) {
	for _, d := range s.srcDist {
		if d < 0 {
			e.stats.OperandFromCommitted++
		} else {
			e.stats.OperandFromStation[d]++
		}
	}
}

// memoryPhase gates loads and stores through the sequencing CSPPs and the
// fat-tree arbitration.
//
// Paper Section 2: "A station cannot load from memory until all preceding
// stores have finished. A station cannot store to memory until all
// preceding loads and stores have finished" and "A station cannot modify
// memory ... until all preceding stations have committed."
func (e *engine) memoryPhase() {
	// Running AND-prefixes over the window in age order — the functional
	// equivalent of the three 1-bit CSPPs of Figure 5 with the oldest
	// station's segment bit high.
	storesDone := true // all earlier stores finished
	memDone := true    // all earlier loads and stores finished
	committed := true  // all earlier branches confirmed

	type cand struct {
		s    *station
		addr isa.Word
	}
	var reqs []memory.Request
	var cands []cand
	for idx, s := range e.window {
		in := s.inst
		eligible := !s.started && s.opsReady
		if eligible && in.IsLoad() {
			addr := isa.EffAddr(in, s.a)
			switch {
			case e.cfg.MemRenaming:
				// Memory renaming (Section 7): search the window for the
				// nearest earlier store to the same address, through the
				// CSPP-equivalent backward scan. A store with an unknown
				// address blocks; a match forwards; otherwise the load is
				// disambiguated and may bypass unperformed stores.
				v, hit, blocked := e.forwardFromStore(idx, addr)
				if hit {
					s.started = true
					s.done = true
					s.memDone = true
					s.doneAt = e.cycle + 1
					s.issue = e.cycle
					s.result = v
					e.recordSources(s)
					e.stats.Loads++
					e.stats.LoadsForwarded++
				} else if !blocked {
					reqs = append(reqs, memory.Request{Station: s.slot, Addr: addr, Age: s.seq})
					cands = append(cands, cand{s, addr})
				}
			case storesDone:
				reqs = append(reqs, memory.Request{Station: s.slot, Addr: addr, Age: s.seq})
				cands = append(cands, cand{s, addr})
			}
		}
		if eligible && in.IsStore() && memDone && committed {
			addr := isa.EffAddr(in, s.a)
			reqs = append(reqs, memory.Request{Station: s.slot, Addr: addr, Store: true, Age: s.seq})
			cands = append(cands, cand{s, addr})
		}
		if in.IsStore() {
			storesDone = storesDone && s.memDone
			memDone = memDone && s.memDone
		}
		if in.IsLoad() {
			memDone = memDone && s.memDone
		}
		if in.ChangesFlow() {
			// "Committed" requires the branch resolved on the predicted
			// path: a mispredicted branch squashes its younger stations in
			// this cycle's recovery phase, so they must not touch memory.
			committed = committed && s.resolved && s.actualNext == s.predictedNext
		}
	}
	if len(reqs) == 0 {
		return
	}
	grant := func(c cand, latency int) {
		s := c.s
		s.started = true
		s.memInFlight = true
		s.issue = e.cycle
		s.memDoneAt = e.cycle + int64(latency)
		s.doneAt = s.memDoneAt
		e.recordSources(s)
		if s.inst.IsStore() {
			e.mem.Store(c.addr, s.b)
			e.stats.Stores++
		} else {
			s.result = e.mem.Load(c.addr)
			e.stats.Loads++
		}
	}
	if e.cfg.MemSystem == nil {
		for _, c := range cands {
			grant(c, e.cfg.Lat.Of(c.s.inst))
		}
		return
	}
	bySeq := make(map[int64]cand, len(cands))
	for _, c := range cands {
		bySeq[c.s.seq] = c
	}
	for _, g := range e.cfg.MemSystem.Arbitrate(reqs) {
		grant(bySeq[g.Req.Age], g.Latency)
	}
}

// forwardFromStore scans the window backwards from the load at age index
// idx for a store to addr. It returns the forwarded value on a hit;
// blocked is true when an earlier store's address is still unknown (the
// load must wait for disambiguation).
func (e *engine) forwardFromStore(idx int, addr isa.Word) (v isa.Word, hit, blocked bool) {
	for j := idx - 1; j >= 0; j-- {
		t := e.window[j]
		if !t.inst.IsStore() {
			continue
		}
		if !t.opsReady {
			return 0, false, true
		}
		if isa.EffAddr(t.inst, t.a) == addr {
			return t.b, true, false
		}
	}
	return 0, false, false
}

// recover processes branch resolutions oldest-first: trains the
// predictors, and on the first misprediction squashes all younger stations
// and redirects fetch — the paper's single-cycle recovery ("Nothing needs
// to be done to recover from misprediction except to fetch new
// instructions from the correct program path").
func (e *engine) recover() {
	for i := 0; i < len(e.window); i++ {
		s := e.window[i]
		if !s.resolved || s.flowDone {
			continue
		}
		s.flowDone = true
		in := s.inst
		if in.IsBranch() {
			e.stats.Branches++
			taken := s.actualNext != s.pc+1
			if s.usedSpec {
				e.cfg.Predictor.(branch.SpecPredictor).
					Resolve(s.pc, s.histSnap, taken, s.actualNext != s.predictedNext)
			} else {
				e.cfg.Predictor.Update(s.pc, taken)
			}
		}
		if in.Op == isa.OpJalr {
			e.cfg.BTB.Update(s.pc, s.actualNext)
		}
		if s.actualNext != s.predictedNext {
			e.stats.Mispredicts++
			e.squashAfter(i)
			e.fetchPC = s.actualNext
			e.haltStop = false
			e.jalrWait = false
			return // younger resolutions are gone
		}
	}
}

// squashAfter removes all stations younger than age index i.
func (e *engine) squashAfter(i int) {
	victims := e.window[i+1:]
	for _, v := range victims {
		e.slots[v.slot] = slotFree
		e.stats.Squashed++
	}
	e.window = e.window[:i+1]
	e.nextSeq = e.window[i].seq + 1
}

// retire commits finished instructions in order from the head of the
// window, freeing station slots at the configured granularity. It returns
// true when a halt commits.
func (e *engine) retire() bool {
	g := e.cfg.Granularity
	for len(e.window) > 0 && e.window[0].finished() {
		s := e.window[0]
		e.window = e.window[1:]
		e.stats.Retired++
		if e.traceBuild != nil {
			e.traceBuild.Retire(s.pc)
		}
		if e.cfg.KeepTimeline {
			e.timeline = append(e.timeline, InstRecord{
				Seq: s.seq, PC: s.pc, Inst: s.inst, Slot: s.slot,
				Issue: s.issue, Done: e.doneCycle(s),
			})
		}
		if s.writes {
			e.commit[s.dest] = s.result
			e.commitProducer[s.dest] = s.seq
			e.commitDoneAt[s.dest] = s.doneAt
		}
		if s.inst.IsHalt() {
			return true
		}
		// Slot reuse at granularity g: the slot drains, and frees only
		// when its whole group has drained (group = aligned block of g
		// slots). Granularity 1 frees immediately (Ultrascalar I);
		// granularity Window drains the whole batch (Ultrascalar II);
		// granularity C drains per cluster (hybrid).
		e.slots[s.slot] = slotDrained
		group := s.slot / g
		all := true
		for k := group * g; k < (group+1)*g; k++ {
			if e.slots[k] != slotDrained {
				all = false
				break
			}
		}
		if all {
			for k := group * g; k < (group+1)*g; k++ {
				e.slots[k] = slotFree
			}
		}
	}
	return false
}

// doneCycle returns the first cycle the instruction's result was visible
// to consumers, so timeline intervals are [Issue, Done).
func (e *engine) doneCycle(s *station) int64 { return s.doneAt }

// fetch fills free station slots along the predicted path. The fetch
// width defaults to the window size ("the issue width and the
// instruction-fetch width scale together"); the fetch model decides how
// taken branches limit a cycle's fetch.
func (e *engine) fetch() {
	width := e.cfg.FetchWidth
	if width <= 0 {
		width = e.cfg.Window
	}
	switch e.cfg.Fetch {
	case FetchBlock:
		e.fetchSequential(width, true)
	case FetchTrace:
		if !e.haltStop && !e.jalrWait {
			if tr, ok := e.trace.Lookup(e.fetchPC); ok {
				e.fetchTrace(tr, width)
				return
			}
		}
		e.fetchSequential(width, true)
	default:
		e.fetchSequential(width, false)
	}
}

// fetchSequential fetches along the predicted path; with stopAtTaken it
// ends the cycle's fetch after the first predicted-taken control transfer
// (conventional block fetch).
func (e *engine) fetchSequential(width int, stopAtTaken bool) {
	for fetched := 0; fetched < width; fetched++ {
		s, ok := e.fetchOne(-1)
		if !ok {
			return
		}
		if stopAtTaken && s.inst.ChangesFlow() && s.predictedNext != s.pc+1 {
			return
		}
	}
}

// fetchTrace supplies a cached trace in one cycle: every instruction's
// predicted successor is the trace's recorded path.
func (e *engine) fetchTrace(tr []int, width int) {
	for i, pc := range tr {
		if i >= width || pc != e.fetchPC {
			return
		}
		forced := -1
		if i+1 < len(tr) {
			forced = tr[i+1]
		}
		if _, ok := e.fetchOne(forced); !ok {
			return
		}
	}
}

// fetchOne fetches the instruction at the current fetch PC into the next
// station slot. forcedNext >= 0 supplies a trace-recorded successor for
// control transfers, bypassing the predictors. It returns false when
// fetch cannot proceed this cycle.
func (e *engine) fetchOne(forcedNext int) (*station, bool) {
	if e.haltStop || e.jalrWait || len(e.window) >= e.cfg.Window {
		return nil, false
	}
	if e.fetchPC < 0 || e.fetchPC >= len(e.prog) {
		return nil, false
	}
	slot := int(e.nextSeq) % e.cfg.Window
	if e.slots[slot] != slotFree {
		return nil, false
	}
	pc := e.fetchPC
	in := e.prog[pc]
	s := &station{seq: e.nextSeq, pc: pc, inst: in, slot: slot}
	s.dest, s.writes = in.Writes()
	switch {
	case in.IsHalt():
		e.haltStop = true
		s.predictedNext = -1
	case in.IsBranch():
		if forcedNext >= 0 {
			s.predictedNext = forcedNext
			break
		}
		var taken bool
		if sp, ok := e.cfg.Predictor.(branch.SpecPredictor); ok {
			taken, s.histSnap = sp.PredictSpec(pc)
			s.usedSpec = true
		} else {
			taken = e.cfg.Predictor.Predict(pc)
		}
		if taken {
			s.predictedNext = pc + 1 + int(in.Imm)
		} else {
			s.predictedNext = pc + 1
		}
	case in.Op == isa.OpJal:
		s.predictedNext = pc + 1 + int(in.Imm)
		if e.ras != nil {
			e.ras.Push(pc + 1) // a call's return address
		}
	case in.Op == isa.OpJalr:
		if forcedNext >= 0 {
			s.predictedNext = forcedNext
			break
		}
		if e.ras != nil {
			if addr, ok := e.ras.Pop(); ok {
				s.predictedNext = addr
				break
			}
		}
		s.predictedNext = e.cfg.BTB.Predict(pc)
		if s.predictedNext < 0 {
			e.jalrWait = true
		}
	default:
		s.predictedNext = pc + 1
	}
	e.slots[slot] = slotOccupied
	e.window = append(e.window, s)
	e.nextSeq++
	e.stats.Fetched++
	if e.haltStop || e.jalrWait {
		return s, false
	}
	e.fetchPC = s.predictedNext
	return s, true
}
