package core

import (
	"math/rand"
	"testing"

	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
)

// TestPropertyRetiredStreamVsRef is the retired-stream property check for
// the SoA engine: on all three paper architectures, the sequence of
// retired instructions — not just the final architectural state — must be
// exactly the golden machine's execution path. The ref machine is stepped
// one Effect per engine retirement, so the first diverging instruction is
// reported with its position in the stream; afterwards the registers,
// memory, and retirement count must match the fully-stepped machine.
// (The whole-run fuzz test checks final state across random configs; this
// one pins down where in the stream a wakeup/forwarding bug first bites.)
func TestPropertyRetiredStreamVsRef(t *testing.T) {
	archs := []struct {
		name string
		gran func(w int) int
	}{
		{"ultra1", func(w int) int { return 1 }},
		{"hybrid", func(w int) int { return max(1, w/8) }},
		{"ultra2", func(w int) int { return w }},
	}
	rng := rand.New(rand.NewSource(20260807))
	trials := 120
	if testing.Short() {
		trials = 25
	}
	for trial := 0; trial < trials; trial++ {
		nregs := 4 + rng.Intn(29)
		prog := randomProgram(rng, 10+rng.Intn(100), nregs)
		seedMem := memory.NewFlat()
		for i := 0; i < 24; i++ {
			seedMem.Store(isa.Word(rng.Intn(96)), isa.Word(rng.Uint32()))
		}
		w := 1 << (2 + rng.Intn(5)) // windows 4..64
		for _, arch := range archs {
			cfg := Config{
				Window:       w,
				Granularity:  arch.gran(w),
				NumRegs:      nregs,
				KeepTimeline: true,
				MemRenaming:  rng.Intn(2) == 0,
			}
			res, err := Run(prog, seedMem.Clone(), cfg)
			if err != nil {
				t.Fatalf("trial %d/%s: engine failed: %v", trial, arch.name, err)
			}
			m := ref.NewMachine(prog, seedMem.Clone(), nregs, nil)
			for i, rec := range res.Timeline {
				if m.Halted() {
					t.Fatalf("trial %d/%s: engine retired %d instructions past the halt (first extra: pc=%d %v)",
						trial, arch.name, len(res.Timeline)-i, rec.PC, rec.Inst)
				}
				eff, err := m.Effect()
				if err != nil {
					t.Fatalf("trial %d/%s: golden effect at stream index %d: %v", trial, arch.name, i, err)
				}
				if rec.PC != eff.PC {
					t.Fatalf("trial %d/%s: retired stream diverges at index %d: engine retired pc=%d %v, golden executes pc=%d",
						trial, arch.name, i, rec.PC, rec.Inst, eff.PC)
				}
				m.Advance(eff)
			}
			if !m.Halted() {
				t.Fatalf("trial %d/%s: engine stream ended after %d instructions but golden machine has not halted (pc=%d)",
					trial, arch.name, len(res.Timeline), m.PC())
			}
			if int64(m.Executed()) != res.Stats.Retired {
				t.Fatalf("trial %d/%s: retired %d, golden executed %d", trial, arch.name, res.Stats.Retired, m.Executed())
			}
			for r := 0; r < nregs; r++ {
				if res.Regs[r] != m.Regs()[r] {
					t.Fatalf("trial %d/%s: r%d = %d, golden %d", trial, arch.name, r, res.Regs[r], m.Regs()[r])
				}
			}
			if !res.Mem.Equal(m.Mem()) {
				t.Fatalf("trial %d/%s: memory mismatch: %s", trial, arch.name, res.Mem.Diff(m.Mem()))
			}
		}
	}
}
