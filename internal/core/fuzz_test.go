package core

import (
	"math/rand"
	"testing"

	"ultrascalar/internal/branch"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
)

// randomProgram generates a terminating program: arbitrary ALU and memory
// instructions plus forward-only branches and jumps (so control flow is a
// DAG), ending in a halt.
func randomProgram(rng *rand.Rand, k, nregs int) []isa.Inst {
	aluR := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll, isa.OpSrl, isa.OpSra,
		isa.OpSlt, isa.OpSltu}
	aluI := []isa.Op{isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpLui}
	branches := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge}
	reg := func() uint8 { return uint8(rng.Intn(nregs)) }

	prog := make([]isa.Inst, 0, k+1)
	for len(prog) < k {
		pc := len(prog)
		remaining := k - pc // slots before the halt
		switch rng.Intn(10) {
		case 0: // load
			prog = append(prog, isa.Inst{Op: isa.OpLw, Rd: reg(), Rs1: reg(),
				Imm: int32(rng.Intn(64))})
		case 1: // store
			prog = append(prog, isa.Inst{Op: isa.OpSw, Rs1: reg(), Rs2: reg(),
				Imm: int32(rng.Intn(64))})
		case 2: // forward conditional branch
			if remaining < 2 {
				prog = append(prog, isa.Inst{Op: isa.OpNop})
				continue
			}
			off := rng.Intn(remaining - 1) // target within [pc+1, k]
			prog = append(prog, isa.Inst{Op: branches[rng.Intn(len(branches))],
				Rs1: reg(), Rs2: reg(), Imm: int32(off)})
		case 3: // forward jump
			if remaining < 2 {
				prog = append(prog, isa.Inst{Op: isa.OpNop})
				continue
			}
			off := rng.Intn(remaining - 1)
			prog = append(prog, isa.Inst{Op: isa.OpJal, Rd: reg(), Imm: int32(off)})
		case 4: // immediate load
			prog = append(prog, isa.Inst{Op: isa.OpLi, Rd: reg(),
				Imm: int32(rng.Intn(1<<12)) - 1<<11})
		case 5: // I-format ALU
			prog = append(prog, isa.Inst{Op: aluI[rng.Intn(len(aluI))],
				Rd: reg(), Rs1: reg(), Imm: int32(rng.Intn(1<<8)) - 1<<7})
		default: // R-format ALU
			prog = append(prog, isa.Inst{Op: aluR[rng.Intn(len(aluR))],
				Rd: reg(), Rs1: reg(), Rs2: reg()})
		}
	}
	return append(prog, isa.Inst{Op: isa.OpHalt})
}

// randomConfig draws a random engine configuration exercising every
// optional feature.
func randomConfig(rng *rand.Rand, nregs int) Config {
	windows := []int{1, 2, 4, 8, 16, 32}
	w := windows[rng.Intn(len(windows))]
	divs := []int{1, w}
	for d := 2; d < w; d *= 2 {
		divs = append(divs, d)
	}
	cfg := Config{
		Window:      w,
		Granularity: divs[rng.Intn(len(divs))],
		NumRegs:     nregs,
		Fetch:       FetchModel(rng.Intn(3)),
		MemRenaming: rng.Intn(2) == 0,
	}
	if rng.Intn(3) == 0 {
		cfg.NumALUs = 1 + rng.Intn(w)
	}
	if rng.Intn(3) == 0 {
		cfg.ForwardLatency = log2Latency
	}
	if rng.Intn(2) == 0 {
		cfg.FetchWidth = 1 + rng.Intn(w)
	}
	switch rng.Intn(3) {
	case 0:
		cfg.Predictor = branch.Static(rng.Intn(2) == 0)
	case 1:
		cfg.Predictor = branch.Bimodal(6)
	default:
		cfg.Predictor = branch.GShare(8, 6)
	}
	switch rng.Intn(5) {
	case 0:
		mcfg := memory.DefaultConfig(w, memory.MPow(1, 0.5))
		mcfg.LinesPerBank = 16
		if rng.Intn(2) == 0 && cfg.Granularity > 1 {
			mcfg.ClusterSize = cfg.Granularity
			mcfg.ClusterLines = 16
		}
		cfg.MemSystem = memory.NewSystem(mcfg)
	case 1:
		cfg.MemSystem = memory.NewButterfly(w, 1+rng.Intn(w), 1, 1+rng.Intn(3))
	}
	return cfg
}

// TestFuzzEngineVsGolden runs hundreds of random programs through random
// engine configurations and demands exact architectural equality with the
// golden interpreter.
func TestFuzzEngineVsGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		nregs := 4 + rng.Intn(29)
		prog := randomProgram(rng, 10+rng.Intn(120), nregs)
		cfg := randomConfig(rng, nregs)

		seedMem := memory.NewFlat()
		for i := 0; i < 32; i++ {
			seedMem.Store(isa.Word(rng.Intn(128)), isa.Word(rng.Uint32()))
		}

		want, err := ref.Run(prog, seedMem.Clone(), ref.Config{NumRegs: nregs})
		if err != nil {
			t.Fatalf("trial %d: golden failed: %v", trial, err)
		}
		got, err := Run(prog, seedMem.Clone(), cfg)
		if err != nil {
			t.Fatalf("trial %d: engine failed (cfg %+v): %v", trial, cfg, err)
		}
		for r := 0; r < nregs; r++ {
			if got.Regs[r] != want.Regs[r] {
				t.Fatalf("trial %d: r%d = %d, golden %d\ncfg: %+v\nprog:\n%v",
					trial, r, got.Regs[r], want.Regs[r], cfg, prog)
			}
		}
		if !got.Mem.Equal(want.Mem) {
			t.Fatalf("trial %d: memory mismatch: %s\ncfg: %+v",
				trial, got.Mem.Diff(want.Mem), cfg)
		}
		if got.Stats.Retired != int64(want.Executed) {
			t.Fatalf("trial %d: retired %d, golden %d (cfg %+v)",
				trial, got.Stats.Retired, want.Executed, cfg)
		}
	}
}

// TestFuzzDeterminism repeats one random configuration twice and demands
// identical cycle counts.
func TestFuzzDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nregs := 8
		prog := randomProgram(rng, 80, nregs)
		mkCfg := func(r *rand.Rand) Config { return randomConfig(r, nregs) }
		seed := rng.Int63()
		a, err := Run(prog, memory.NewFlat(), mkCfg(rand.New(rand.NewSource(seed))))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(prog, memory.NewFlat(), mkCfg(rand.New(rand.NewSource(seed))))
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Fetched != b.Stats.Fetched {
			t.Fatalf("trial %d: nondeterministic: %+v vs %+v", trial, a.Stats, b.Stats)
		}
	}
}

// FuzzConfigNormalize drives Config.normalize with arbitrary field values
// and demands it either rejects the configuration or produces one with
// every invariant the engine relies on — and that small accepted configs
// actually run a program to completion without panicking.
func FuzzConfigNormalize(f *testing.F) {
	f.Add(8, 1, 32, int64(1000), 0, 8, 16, int64(0))
	f.Add(0, 0, 0, int64(0), 0, 0, 0, int64(0))
	f.Add(-3, 2, 99, int64(-1), -2, 30, 1<<20, int64(-5))
	f.Add(1<<20, 1<<20, 1, int64(1), 1, 24, 1<<16, int64(1))
	f.Add(64, 16, 8, int64(1<<40), 64, 1, 1, int64(1<<40))
	f.Fuzz(func(t *testing.T, window, gran, nregs int, maxCycles int64,
		fetchW, traceBits, traceLen int, watchdog int64) {
		cfg := Config{Window: window, Granularity: gran, NumRegs: nregs,
			MaxCycles: maxCycles, FetchWidth: fetchW,
			TraceSetBits: traceBits, TraceLen: traceLen, Watchdog: watchdog}
		if err := cfg.normalize(); err != nil {
			return // rejected: nothing more to hold
		}
		switch {
		case cfg.Window < 1 || cfg.Window > MaxWindow:
			t.Fatalf("normalize accepted window %d", cfg.Window)
		case cfg.Granularity < 1 || cfg.Window%cfg.Granularity != 0:
			t.Fatalf("normalize accepted granularity %d for window %d", cfg.Granularity, cfg.Window)
		case cfg.NumRegs < 1 || cfg.NumRegs > isa.MaxRegs:
			t.Fatalf("normalize accepted %d registers", cfg.NumRegs)
		case cfg.MaxCycles < 1:
			t.Fatalf("normalize accepted MaxCycles %d", cfg.MaxCycles)
		case cfg.FetchWidth < 0:
			t.Fatalf("normalize accepted FetchWidth %d", cfg.FetchWidth)
		case cfg.Watchdog == 0:
			t.Fatal("normalize left Watchdog unset")
		case cfg.Predictor == nil || cfg.BTB == nil:
			t.Fatal("normalize left predictor state nil")
		}
		if cfg.Window > 1<<10 || cfg.MaxCycles < 4 {
			return // too big to instantiate per fuzz iteration / too short to halt
		}
		prog := []isa.Inst{{Op: isa.OpLi, Rd: 0, Imm: 7}, {Op: isa.OpHalt}}
		if _, err := Run(prog, memory.NewFlat(), cfg); err != nil {
			t.Fatalf("normalized config cannot run a trivial program: %v\ncfg: %+v", err, cfg)
		}
	})
}
