package core

import (
	"errors"
	"math/rand"
	"testing"

	"ultrascalar/internal/fault"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
)

// faultArchs returns the three processor shapes (granularity choices) a
// window supports: Ultrascalar I, Ultrascalar II, hybrid.
func faultArchs(w int) map[string]int {
	c := w / 4
	if c < 1 {
		c = 1
	}
	return map[string]int{"ultra1": 1, "ultra2": w, "hybrid": c}
}

// TestFaultRecoveryGolden is the tentpole acceptance check: random
// programs with random fault plans under the golden commit checker, over
// all three architectures. Every detected fault must be recovered — the
// final registers, memory and retired-instruction count must equal the
// fault-free golden run, always.
func TestFaultRecoveryGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	detections := 0
	for trial := 0; trial < trials; trial++ {
		nregs := 8
		prog := randomProgram(rng, 40+rng.Intn(120), nregs)
		seedMem := memory.NewFlat()
		for i := 0; i < 16; i++ {
			seedMem.Store(isa.Word(rng.Intn(64)), isa.Word(rng.Uint32()))
		}
		want, err := ref.Run(prog, seedMem.Clone(), ref.Config{NumRegs: nregs})
		if err != nil {
			t.Fatalf("trial %d: golden failed: %v", trial, err)
		}
		for arch, g := range faultArchs(8) {
			cfg := Config{Window: 8, Granularity: g, NumRegs: nregs,
				MemRenaming: trial%2 == 0, MaxCycles: 1 << 20}
			clean, err := Run(prog, seedMem.Clone(), cfg)
			if err != nil {
				t.Fatalf("trial %d %s: clean run failed: %v", trial, arch, err)
			}
			plan := fault.NewPlan(int64(trial*31+g), fault.GenParams{
				Window: 8, NumRegs: nregs, MaxCycle: clean.Stats.Cycles, N: 4,
			})
			log := &fault.Log{}
			cfg.FaultPlan, cfg.FaultDetect, cfg.FaultLog = plan, fault.DetectGolden, log
			got, err := Run(prog, seedMem.Clone(), cfg)
			if err != nil {
				t.Fatalf("trial %d %s: faulted run failed: %v\nplan:\n%s\nlog: %+v",
					trial, arch, err, plan.Encode(), log)
			}
			detections += log.Detected
			for r := 0; r < nregs; r++ {
				if got.Regs[r] != want.Regs[r] {
					t.Fatalf("trial %d %s: r%d = %d, golden %d (detected=%d recovered=%d)\nplan:\n%s",
						trial, arch, r, got.Regs[r], want.Regs[r],
						log.Detected, log.Recovered, plan.Encode())
				}
			}
			if !got.Mem.Equal(want.Mem) {
				t.Fatalf("trial %d %s: memory mismatch: %s\nplan:\n%s",
					trial, arch, got.Mem.Diff(want.Mem), plan.Encode())
			}
			if got.Stats.Retired != int64(want.Executed) {
				t.Fatalf("trial %d %s: retired %d, golden executed %d\nplan:\n%s",
					trial, arch, got.Stats.Retired, want.Executed, plan.Encode())
			}
			if log.Detected != log.Recovered {
				t.Fatalf("trial %d %s: %d detections but %d recoveries",
					trial, arch, log.Detected, log.Recovered)
			}
		}
	}
	// The campaign must actually exercise the recovery path, not pass
	// vacuously: across 60 trials x 3 archs x 4 faults, detections happen.
	if detections == 0 {
		t.Fatal("no fault was ever detected across all trials; injection is not landing")
	}
}

// TestFaultParityCatchesResultBit checks the parity model: result-bit
// flips (odd-weight corruption of a latched value) are detected at the
// commit port and recovered; the final state matches the fault-free run.
func TestFaultParityCatchesResultBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nregs := 8
	detections := 0
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(rng, 60, nregs)
		want, err := ref.Run(prog, memory.NewFlat(), ref.Config{NumRegs: nregs})
		if err != nil {
			t.Fatalf("trial %d: golden failed: %v", trial, err)
		}
		cfg := Config{Window: 8, NumRegs: nregs, MaxCycles: 1 << 20}
		clean, err := Run(prog, memory.NewFlat(), cfg)
		if err != nil {
			t.Fatalf("trial %d: clean run failed: %v", trial, err)
		}
		plan := fault.NewPlan(int64(trial), fault.GenParams{
			Window: 8, NumRegs: nregs, MaxCycle: clean.Stats.Cycles,
			Sites: []fault.Site{fault.SiteResultBit}, N: 3,
		})
		log := &fault.Log{}
		cfg.FaultPlan, cfg.FaultDetect, cfg.FaultLog = plan, fault.DetectParity, log
		got, err := Run(prog, memory.NewFlat(), cfg)
		if err != nil {
			t.Fatalf("trial %d: faulted run failed: %v\nplan:\n%s", trial, err, plan.Encode())
		}
		detections += log.Detected
		// Parity catches every corrupted result before it commits, so the
		// final state is always golden.
		for r := 0; r < nregs; r++ {
			if got.Regs[r] != want.Regs[r] {
				t.Fatalf("trial %d: r%d = %d, golden %d under parity\nplan:\n%s",
					trial, r, got.Regs[r], want.Regs[r], plan.Encode())
			}
		}
		if !got.Mem.Equal(want.Mem) {
			t.Fatalf("trial %d: memory mismatch under parity: %s", trial, got.Mem.Diff(want.Mem))
		}
	}
	if detections == 0 {
		t.Fatal("parity never detected a result-bit flip across 40 trials")
	}
}

// TestFaultInjectionDeterministic runs the identical faulted
// configuration twice and demands identical cycle counts, stats and
// fault logs — the campaign reproducibility contract.
func TestFaultInjectionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prog := randomProgram(rng, 100, 8)
	run := func() (*Result, *fault.Log) {
		plan := fault.NewPlan(99, fault.GenParams{Window: 16, NumRegs: 8, MaxCycle: 200, N: 8})
		log := &fault.Log{}
		cfg := Config{Window: 16, Granularity: 4, NumRegs: 8, MaxCycles: 1 << 20,
			FaultPlan: plan, FaultDetect: fault.DetectGolden, FaultLog: log}
		res, err := Run(prog, memory.NewFlat(), cfg)
		if err != nil {
			t.Fatalf("faulted run failed: %v", err)
		}
		return res, log
	}
	a, la := run()
	b, lb := run()
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Squashed != b.Stats.Squashed {
		t.Fatalf("faulted runs diverged: cycles %d vs %d, squashed %d vs %d",
			a.Stats.Cycles, b.Stats.Cycles, a.Stats.Squashed, b.Stats.Squashed)
	}
	if la.Applied != lb.Applied || la.Detected != lb.Detected ||
		la.Recovered != lb.Recovered || len(la.Records) != len(lb.Records) {
		t.Fatalf("fault logs diverged: %+v vs %+v", la, lb)
	}
}

// TestFaultPlanBeyondRunIsVacuous checks a plan scheduled entirely after
// the run ends changes nothing: same cycles, same state, zero applied.
func TestFaultPlanBeyondRunIsVacuous(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prog := randomProgram(rng, 80, 8)
	cfg := Config{Window: 8, NumRegs: 8, MaxCycles: 1 << 20}
	clean, err := Run(prog, memory.NewFlat(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := &fault.Log{}
	cfg.FaultPlan = &fault.Plan{Seed: 1, Faults: []fault.Fault{
		{Site: fault.SiteResultBit, Cycle: clean.Stats.Cycles + 100, Bit: 3},
	}}
	cfg.FaultDetect, cfg.FaultLog = fault.DetectGolden, log
	got, err := Run(prog, memory.NewFlat(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Cycles != clean.Stats.Cycles {
		t.Fatalf("vacuous plan changed cycles: %d vs %d", got.Stats.Cycles, clean.Stats.Cycles)
	}
	if log.Applied != 0 || log.Detected != 0 {
		t.Fatalf("vacuous plan logged activity: %+v", log)
	}
}

// TestLivelockWatchdog starves a dependence chain with an infinite
// forwarding latency — instruction 1 onward can never receive operands —
// and demands the watchdog report a livelock with a faithful snapshot
// instead of spinning to MaxCycles.
func TestLivelockWatchdog(t *testing.T) {
	prog := []isa.Inst{{Op: isa.OpLi, Rd: 1, Imm: 1}}
	for i := 0; i < 20; i++ {
		prog = append(prog, isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 1})
	}
	prog = append(prog, isa.Inst{Op: isa.OpHalt})
	cfg := Config{Window: 8, NumRegs: 4, MaxCycles: 1 << 20,
		ForwardLatency: func(d int) int { return 1 << 30 }}
	_, err := Run(prog, memory.NewFlat(), cfg)
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("got %v, want ErrLivelock", err)
	}
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("error %v does not carry a LivelockError snapshot", err)
	}
	if le.HeadPC != 1 {
		t.Errorf("head pc %d, want 1 (the first starved add)", le.HeadPC)
	}
	if le.Occupied != 8 || le.Window != 8 {
		t.Errorf("occupancy %d/%d, want a full 8/8 ring", le.Occupied, le.Window)
	}
	if le.Started != 0 || le.Ready != 0 {
		t.Errorf("snapshot claims progress (started=%d ready=%d) in a dead window",
			le.Started, le.Ready)
	}
	// The default threshold for window 8 is max(4*8, 64) = 64 quiet cycles.
	if le.Cycle-le.LastRetire <= 64 {
		t.Errorf("watchdog fired after only %d quiet cycles", le.Cycle-le.LastRetire)
	}
}

// TestWatchdogDisabled checks a negative Watchdog turns the livelock
// detector off: the same dead program spins to MaxCycles (ErrNoHalt).
func TestWatchdogDisabled(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.OpLi, Rd: 1, Imm: 1},
		{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 1},
		{Op: isa.OpHalt},
	}
	cfg := Config{Window: 4, NumRegs: 4, MaxCycles: 2000, Watchdog: -1,
		ForwardLatency: func(d int) int { return 1 << 30 }}
	_, err := Run(prog, memory.NewFlat(), cfg)
	if !errors.Is(err, ErrNoHalt) {
		t.Fatalf("got %v, want ErrNoHalt with the watchdog disabled", err)
	}
}

// TestWatchdogRecoversStuckLivelock pins a station's ready latch low for
// longer than the watchdog window. The starved ring must be recovered by
// watchdog-triggered squash-and-replay, and the run must still finish
// with the exact golden state.
func TestWatchdogRecoversStuckLivelock(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nregs := 8
	prog := randomProgram(rng, 150, nregs)
	want, err := ref.Run(prog, memory.NewFlat(), ref.Config{NumRegs: nregs})
	if err != nil {
		t.Fatal(err)
	}
	log := &fault.Log{}
	cfg := Config{Window: 8, NumRegs: nregs, MaxCycles: 1 << 20,
		FaultPlan: &fault.Plan{Seed: 1, Faults: []fault.Fault{
			{Site: fault.SiteReadyStuck0, Cycle: 10, Slot: 0, Dur: 1 << 19},
		}},
		FaultDetect: fault.DetectGolden, FaultLog: log}
	got, err := Run(prog, memory.NewFlat(), cfg)
	if err != nil {
		t.Fatalf("stuck-at-0 run failed instead of recovering: %v (log %+v)", err, log)
	}
	if log.Applied == 0 {
		t.Fatal("the stuck-at-0 hold never pinned a station; test is vacuous")
	}
	if log.WatchdogFires == 0 {
		t.Fatalf("run completed without the watchdog firing; log %+v", log)
	}
	for r := 0; r < nregs; r++ {
		if got.Regs[r] != want.Regs[r] {
			t.Fatalf("r%d = %d, golden %d after watchdog recovery", r, got.Regs[r], want.Regs[r])
		}
	}
	if !got.Mem.Equal(want.Mem) {
		t.Fatalf("memory mismatch after watchdog recovery: %s", got.Mem.Diff(want.Mem))
	}
}

// TestFaultDetectRequiresPlan checks normalize rejects a detection mode
// with no plan to detect.
func TestFaultDetectRequiresPlan(t *testing.T) {
	cfg := Config{Window: 4, FaultDetect: fault.DetectGolden}
	if err := cfg.normalize(); err == nil {
		t.Fatal("normalize accepted FaultDetect without a FaultPlan")
	}
}
