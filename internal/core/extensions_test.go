package core

import (
	"testing"

	"ultrascalar/internal/asm"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/workload"
)

// --- Shared-ALU scheduling (paper Section 7, Ultrascalar Memo 2) ---

func TestSharedALUsMatchGolden(t *testing.T) {
	for _, w := range workload.Kernels() {
		for _, alus := range []int{1, 2, 4} {
			crossCheck(t, w, Config{Window: 16, Granularity: 1, NumALUs: alus})
		}
	}
}

func TestSharedALUsThrottleParallelism(t *testing.T) {
	w := workload.Parallel(256, 32)
	run := func(alus int) *Result {
		res, err := Run(w.Prog, w.Mem(), Config{Window: 32, Granularity: 1, NumALUs: alus})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	unlimited := run(0)
	if !(one.Stats.Cycles > four.Stats.Cycles && four.Stats.Cycles > unlimited.Stats.Cycles) {
		t.Errorf("cycles should decrease with more ALUs: 1->%d 4->%d inf->%d",
			one.Stats.Cycles, four.Stats.Cycles, unlimited.Stats.Cycles)
	}
	// A single shared ALU caps IPC at 1 on pure ALU code.
	if ipc := one.Stats.IPC(); ipc > 1.05 {
		t.Errorf("1-ALU IPC %.2f should be <= 1", ipc)
	}
	if one.Stats.ALUStarved == 0 {
		t.Error("expected ALU starvation events with 1 shared ALU")
	}
	if unlimited.Stats.ALUStarved != 0 {
		t.Error("unlimited ALUs should never starve")
	}
}

func TestSharedALUsChainUnaffected(t *testing.T) {
	// A serial chain uses one ALU at a time: even a single shared ALU
	// costs nothing.
	w := workload.Chain(200)
	limited, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1, NumALUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Stats.Cycles != free.Stats.Cycles {
		t.Errorf("chain with 1 ALU took %d cycles vs %d unlimited",
			limited.Stats.Cycles, free.Stats.Cycles)
	}
}

func TestSharedALUsMultiCycleOccupancy(t *testing.T) {
	// Two independent divides with one shared ALU must serialize: about
	// 20 cycles, not about 10.
	prog := asm.MustAssemble(`
		li r1, 100
		li r2, 4
		div r3, r1, r2
		div r4, r1, r2
		halt
	`).Insts
	one, err := Run(prog, memory.NewFlat(), Config{Window: 8, Granularity: 1, NumALUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(prog, memory.NewFlat(), Config{Window: 8, Granularity: 1, NumALUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if one.Stats.Cycles < two.Stats.Cycles+8 {
		t.Errorf("1 ALU (%d cycles) should serialize the divides vs 2 ALUs (%d)",
			one.Stats.Cycles, two.Stats.Cycles)
	}
	if one.Regs[3] != 25 || one.Regs[4] != 25 {
		t.Errorf("results wrong: r3=%d r4=%d", one.Regs[3], one.Regs[4])
	}
}

// --- Self-timed forwarding (paper Section 7) ---

// log2Latency is the Section 7 shape: neighbor forwarding is free, far
// forwarding pays the tree traversal.
func log2Latency(d int) int {
	if d <= 1 {
		return 0
	}
	extra := 0
	for 1<<extra < d {
		extra++
	}
	return extra
}

func TestSelfTimedMatchGolden(t *testing.T) {
	for _, w := range workload.Kernels() {
		crossCheck(t, w, Config{Window: 16, Granularity: 1, ForwardLatency: log2Latency})
	}
}

func TestSelfTimedChainFullSpeed(t *testing.T) {
	// "Half of the communications paths from one station to its successor
	// are completely local": a chain of distance-1 dependences runs at
	// full speed under the self-timed model.
	w := workload.Chain(200)
	st, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1, ForwardLatency: log2Latency})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.Cycles != base.Stats.Cycles {
		t.Errorf("self-timed chain took %d cycles vs %d global-clock",
			st.Stats.Cycles, base.Stats.Cycles)
	}
}

func TestSelfTimedFarDependencesSlower(t *testing.T) {
	// Dependences spanning large distances pay extra forwarding latency.
	w := workload.MixedILP(300, 16, 64, 11)
	st, err := Run(w.Prog, w.Mem(), Config{Window: 64, Granularity: 1, ForwardLatency: log2Latency})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w.Prog, w.Mem(), Config{Window: 64, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.Cycles <= base.Stats.Cycles {
		t.Errorf("far dependences should cost cycles: self-timed %d vs base %d",
			st.Stats.Cycles, base.Stats.Cycles)
	}
}

// --- Memory renaming (paper Section 7) ---

func TestMemRenamingMatchGolden(t *testing.T) {
	for _, w := range workload.Kernels() {
		crossCheck(t, w, Config{Window: 16, Granularity: 1, MemRenaming: true})
	}
	for _, w := range []workload.Workload{
		workload.MemStream(40),
		workload.LoadBurst(60, 32),
	} {
		crossCheck(t, w, Config{Window: 16, Granularity: 1, MemRenaming: true})
	}
}

func TestMemRenamingForwards(t *testing.T) {
	// Store followed by a load of the same address: forwarded, no memory
	// round trip.
	w := workload.MemStream(30)
	res, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1, MemRenaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LoadsForwarded == 0 {
		t.Error("expected forwarded loads on the store/load stream")
	}
	base, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles >= base.Stats.Cycles {
		t.Errorf("renaming (%d cycles) should beat baseline (%d)", res.Stats.Cycles, base.Stats.Cycles)
	}
	if base.Stats.LoadsForwarded != 0 {
		t.Error("baseline must not forward")
	}
}

func TestMemRenamingReducesBandwidthPressure(t *testing.T) {
	// Under M(n)=1, forwarded loads skip the fat tree entirely.
	w := workload.MemStream(40)
	mk := func() *memory.System {
		cfg := memory.DefaultConfig(16, memory.MConst(1))
		cfg.HopLatency = 0
		return memory.NewSystem(cfg)
	}
	ren, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1, MemRenaming: true, MemSystem: mk()})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(w.Prog, w.Mem(), Config{Window: 16, Granularity: 1, MemSystem: mk()})
	if err != nil {
		t.Fatal(err)
	}
	if ren.Stats.Cycles >= base.Stats.Cycles {
		t.Errorf("renaming under M=1 (%d) should beat baseline (%d)", ren.Stats.Cycles, base.Stats.Cycles)
	}
}

func TestMemRenamingAliasDisambiguation(t *testing.T) {
	// A load must take the NEAREST earlier matching store, not an older
	// one, and must wait for unknown addresses.
	prog := asm.MustAssemble(`
		li r1, 100
		li r2, 1
		li r3, 2
		sw r2, (r1)      ; mem[100] = 1
		sw r3, (r1)      ; mem[100] = 2 (nearest)
		lw r4, (r1)      ; must see 2
		li r5, 7
		div r6, r5, r2   ; slow
		add r6, r6, r1   ; r6 = 107 eventually
		sw r5, (r6)      ; unknown address for a while
		lw r7, (r1)      ; blocked until r6 known; then forwards 2
		halt
	`).Insts
	res, err := Run(prog, memory.NewFlat(), Config{Window: 16, Granularity: 1, MemRenaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[4] != 2 {
		t.Errorf("r4 = %d, want 2 (nearest store)", res.Regs[4])
	}
	if res.Regs[7] != 2 {
		t.Errorf("r7 = %d, want 2", res.Regs[7])
	}
	if res.Mem.Load(107) != 7 {
		t.Errorf("mem[107] = %d, want 7", res.Mem.Load(107))
	}
}

// TestExtensionsCompose runs all three extensions together against the
// golden model.
func TestExtensionsCompose(t *testing.T) {
	for _, w := range workload.Kernels() {
		crossCheck(t, w, Config{
			Window: 32, Granularity: 8,
			NumALUs:        4,
			ForwardLatency: log2Latency,
			MemRenaming:    true,
		})
	}
}
