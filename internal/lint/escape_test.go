package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// escapeFixtureSrc declares a hot root, a transitive callee, a method
// root, and a cold function, at known line numbers.
const escapeFixtureSrc = `package core

//uslint:hotpath
func hot(n int) int { // line 4
	s := 0
	for i := 0; i < n; i++ {
		s += helper(i)
	}
	return s
} // line 10

func helper(i int) int { // line 12
	return i * i
} // line 14

type eng struct{ n int }

//uslint:hotpath
func (e *eng) run() int { // line 19
	return helper(e.n)
} // line 21

func cold() []int { // line 23
	return make([]int, 4)
} // line 25
`

// escapeFixture builds a one-package Program whose Dir is a synthetic
// module root, so relative compiler paths resolve onto the fixture file.
func escapeFixture(t *testing.T) *Program {
	t.Helper()
	fset := token.NewFileSet()
	const dir = "/fake/mod"
	f, err := parser.ParseFile(fset, filepath.Join(dir, "core", "hot.go"), escapeFixtureSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("ultrascalar/internal/core", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &Package{Path: "ultrascalar/internal/core", Files: []*ast.File{f}, Types: tpkg, Info: info}
	prog := NewProgram(fset, []*Package{pkg})
	prog.Dir = dir
	return prog
}

func TestEscapeMessage(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"x escapes to heap", "x escapes to heap", true},
		{"x escapes to heap:", "x escapes to heap", true},
		{"moved to heap: x", "moved to heap: x", true},
		{"  flow: {heap} = &x:", "", false},
		{"\tfrom &x (address-of)", "", false},
		{"can inline helper with cost 4", "", false},
		{"inlining call to helper", "", false},
	}
	for _, tc := range cases {
		got, ok := escapeMessage(tc.in)
		if ok != tc.ok || got != tc.want {
			t.Errorf("escapeMessage(%q) = %q, %v; want %q, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// compilerOut is synthetic -m=2 output: escapes inside the hot root, the
// transitive callee and the method root must become entries; the cold
// function, inlining chatter, explanation flow lines, stdlib paths and
// the package header must not.
const fixtureCompilerOut = `# ultrascalar/internal/core
core/hot.go:5:2: s escapes to heap
core/hot.go:5:2: s escapes to heap:
core/hot.go:5:2:   flow: {heap} = &s:
core/hot.go:13:9: moved to heap: i
core/hot.go:20:16: e.n escapes to heap
core/hot.go:24:9: make([]int, 4) escapes to heap
core/hot.go:6:7: can inline helper with cost 4
/usr/local/go/src/fmt/print.go:100:2: v escapes to heap
`

func TestEscapeSites(t *testing.T) {
	prog := escapeFixture(t)
	sites := escapeSites(prog, fixtureCompilerOut)
	want := []string{
		"ultrascalar/internal/core (*eng).run: e.n escapes to heap",
		"ultrascalar/internal/core helper: moved to heap: i",
		"ultrascalar/internal/core hot: s escapes to heap",
	}
	if len(sites) != len(want) {
		t.Fatalf("got %d sites, want %d: %v", len(sites), len(want), sites)
	}
	for i, w := range want {
		if sites[i].entry != w {
			t.Errorf("entry %d = %q, want %q", i, sites[i].entry, w)
		}
	}
	// Duplicate -m=1/-m=2 lines dedupe to one site; positions survive.
	if sites[2].line != 5 || !strings.HasSuffix(sites[2].file, "core/hot.go") {
		t.Errorf("hot site at %s:%d, want core/hot.go:5", sites[2].file, sites[2].line)
	}
}

func TestDiffEscapeBudget(t *testing.T) {
	prog := escapeFixture(t)
	sites := escapeSites(prog, fixtureCompilerOut)
	budget := map[string]int{
		// Two current entries present...
		"ultrascalar/internal/core hot: s escapes to heap":   8,
		"ultrascalar/internal/core helper: moved to heap: i": 9,
		// ...one stale entry in a loaded package...
		"ultrascalar/internal/core hot: gone escapes to heap": 10,
		// ...and one entry for a package not in this program, which a
		// subtree lint must not call stale.
		"ultrascalar/internal/isa ALUOp: x escapes to heap": 11,
	}
	diags := diffEscapeBudget(prog, sites, budget, "escape_budget.txt")
	var newEscapes, stale []Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, "not in budget") {
			newEscapes = append(newEscapes, d)
		} else if strings.Contains(d.Message, "stale budget entry") {
			stale = append(stale, d)
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if len(newEscapes) != 1 || !strings.Contains(newEscapes[0].Message, "(*eng).run") {
		t.Errorf("new escapes = %v, want exactly the (*eng).run entry", newEscapes)
	}
	if len(newEscapes) == 1 && newEscapes[0].Pos.Line != 20 {
		t.Errorf("new escape anchored at line %d, want the compiler-reported 20", newEscapes[0].Pos.Line)
	}
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "gone escapes to heap") {
		t.Errorf("stale = %v, want exactly the 'gone' entry", stale)
	}
	if len(stale) == 1 && (stale[0].Pos.Filename != "escape_budget.txt" || stale[0].Pos.Line != 10) {
		t.Errorf("stale diagnostic anchored at %s, want escape_budget.txt:10", stale[0].Pos)
	}
}

func TestReadEscapeBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.txt")
	content := "# header comment\n\npkg f: x escapes to heap\npkg g: y escapes to heap\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := readEscapeBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries["pkg f: x escapes to heap"] != 3 || entries["pkg g: y escapes to heap"] != 4 {
		t.Fatalf("entries = %v", entries)
	}
	if _, err := readEscapeBudget(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing budget file should error")
	}
}

// TestEscapeCheckModule is the integration path CI takes: run the real
// compiler over the engine's hot-path packages and hold the result to
// the checked-in golden budget. Loading is restricted to the packages
// the hot closure touches, which keeps the source type-check tractable.
func TestEscapeCheckModule(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool and compiler")
	}
	prog, err := Load("../..",
		"./internal/core/...", "./internal/obs/...", "./internal/isa/...",
		"./internal/branch/...", "./internal/memory/...", "./internal/tracecache/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := EscapeCheck(prog, "escape_budget.txt")
	if err != nil {
		t.Fatalf("EscapeCheck: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected the budget to hold, got %d findings: %v", len(diags), diags)
	}
	// The budget must reproduce byte-identically from the same tree.
	entries, err := EscapeEntries(prog)
	if err != nil {
		t.Fatalf("EscapeEntries: %v", err)
	}
	data, err := os.ReadFile("escape_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	var fromFile []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			fromFile = append(fromFile, line)
		}
	}
	if strings.Join(entries, "\n") != strings.Join(fromFile, "\n") {
		t.Errorf("recomputed entries differ from the checked-in budget:\nrecomputed:\n%s\nchecked in:\n%s",
			strings.Join(entries, "\n"), strings.Join(fromFile, "\n"))
	}
}
