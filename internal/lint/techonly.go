package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// TechOnly keeps the vlsi package's delay/area formulas honest: physical
// technology numbers (λ lengths, cell areas, picosecond delays) must come
// from a vlsi.Tech value, never appear as literals inside a model. The
// paper's quantitative claims — 7 cm × 7 cm at 0.35 µm, the Figure 11/12
// comparisons — are only as portable as the Tech struct; a literal 900
// buried in a floorplan function silently pins the model to one process.
//
// The rule: in ultrascalar/internal/vlsi, outside tech.go (where the
// calibrated constants live), flag
//   - every floating-point literal except the structural values 0, 0.5,
//     1 and 2 (halves and doublings are geometry, not technology), and
//   - every integer literal >= 100 (tech-magnitude numbers; loop bounds
//     and bit widths stay well below), and
//   - every composite literal of type Tech (ad-hoc process definitions
//     belong in tech.go next to the calibrated ones).
//
// Genuine model constants that are not technology — dimension exponents
// from the paper's 3D analysis, routing-overhead fudge factors — carry
// `//uslint:allow techonly` escapes with their justification.
var TechOnly = &Analyzer{
	Name: techOnlyName,
	Doc:  "vlsi models must take technology constants from vlsi.Tech, not literals",
	Run:  runTechOnly,
}

const techOnlyPkg = "ultrascalar/internal/vlsi"

// techOnlyExemptFile reports whether a file hosts the calibrated
// constants themselves.
func techOnlyExemptFile(name string) bool {
	return filepath.Base(name) == "tech.go"
}

// allowedFloats are structural values, not technology numbers.
var allowedFloats = map[float64]bool{0: true, 0.5: true, 1: true, 2: true}

const intLiteralLimit = 100

func runTechOnly(p *Program, pkg *Package) []Diagnostic {
	if pkg.Path != techOnlyPkg {
		return nil
	}
	var out []Diagnostic
	info := pkg.Info
	for _, f := range pkg.Files {
		if techOnlyExemptFile(p.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				out = append(out, checkTechLit(p, n)...)
			case *ast.CompositeLit:
				if tv, ok := info.Types[n]; ok && tv.Type != nil {
					if named, ok := tv.Type.(*types.Named); ok &&
						named.Obj().Name() == "Tech" && named.Obj().Pkg() != nil &&
						named.Obj().Pkg().Path() == techOnlyPkg {
						out = append(out, report(p, techOnlyName, n.Pos(),
							"ad-hoc Tech literal; define calibrated technologies in tech.go"))
					}
				}
			}
			return true
		})
	}
	return out
}

func checkTechLit(p *Program, lit *ast.BasicLit) []Diagnostic {
	switch lit.Kind {
	case token.FLOAT:
		v, err := strconv.ParseFloat(strings.ReplaceAll(lit.Value, "_", ""), 64)
		if err == nil && allowedFloats[v] {
			return nil
		}
		return []Diagnostic{report(p, techOnlyName, lit.Pos(),
			"float literal %s in a vlsi model; take technology constants from vlsi.Tech", lit.Value)}
	case token.INT:
		v, err := strconv.ParseInt(strings.ReplaceAll(lit.Value, "_", ""), 0, 64)
		if err == nil && v >= intLiteralLimit {
			return []Diagnostic{report(p, techOnlyName, lit.Pos(),
				"integer literal %s is technology-magnitude; take it from vlsi.Tech", lit.Value)}
		}
	}
	return nil
}
