package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetOrder enforces the deterministic-sweep contract of internal/exp (a
// parallel sweep must be byte-identical to a serial one) and keeps the
// command-line tools honest about wall-clock and randomness. It applies
// to ultrascalar/internal/exp, internal/serve, internal/fault,
// internal/obs, internal/obs/log and every ultrascalar/cmd package.
//
// Flagged constructs:
//   - time.Now — results must not depend on when they were computed. The
//     benchmarking tools that legitimately time things carry
//     `//uslint:allow detorder` escapes.
//   - the global math/rand generator (rand.Intn, rand.Perm, ...) — all
//     randomness must flow from an explicit rand.New(rand.NewSource(seed)).
//   - appends to an outer slice while ranging over a map — the result
//     order would follow map iteration order.
//   - appends to a captured slice inside a `go` statement — goroutine
//     results must be written to pre-assigned indices (keyed collection,
//     as internal/exp's parMap does), never collected by append.
var DetOrder = &Analyzer{
	Name: detOrderName,
	Doc:  "forbid nondeterministic time, randomness and ordering in internal/{exp,serve,fault,obs} and cmd",
	Run:  runDetOrder,
}

// detOrderScope reports whether the package is under the contract. The
// serve package is in scope because job listings, recovery order and
// report bytes are part of its determinism contract; its one legitimate
// wall-clock use (serving policy: deadlines, cooldowns, Retry-After) is
// allow-marked at the Clock default. The fault and obs packages are in
// scope because campaign plans, fault reports and every emitted artifact
// (traces, metrics, manifests) are specified to be byte-identical given
// the same seed and config. The obs/log package is in scope because a
// log line's bytes are a pure function of the call — timestamps only
// through an injected clock, sampling by deterministic counter, never
// randomness or wall time.
func detOrderScope(path string) bool {
	return path == "ultrascalar/internal/exp" ||
		path == "ultrascalar/internal/serve" ||
		path == "ultrascalar/internal/fault" ||
		path == "ultrascalar/internal/obs" ||
		path == "ultrascalar/internal/obs/log" ||
		strings.HasPrefix(path, "ultrascalar/cmd/")
}

// globalRandAllowed lists math/rand functions that are constructors, not
// uses of the package-global generator.
var globalRandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDetOrder(p *Program, pkg *Package) []Diagnostic {
	if !detOrderScope(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "time":
						if fn.Name() == "Now" {
							out = append(out, report(p, detOrderName, n.Pos(),
								"time.Now makes results depend on wall-clock time"))
						}
					case "math/rand", "math/rand/v2":
						if _, isPkg := info.Uses[rootIdent(n.X)].(*types.PkgName); isPkg && !globalRandAllowed[fn.Name()] {
							out = append(out, report(p, detOrderName, n.Pos(),
								"global math/rand generator is not reproducible; use rand.New(rand.NewSource(seed))"))
						}
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						out = append(out, outerAppends(p, info, n.Body, n,
							"append to %q inside a range over a map orders results by map iteration")...)
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					out = append(out, outerAppends(p, info, lit.Body, lit,
						"append to captured %q in a goroutine collects results in completion order; write to a pre-assigned index instead")...)
				}
			}
			return true
		})
	}
	return out
}

// rootIdent unwraps a selector's receiver to its leftmost identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// outerAppends reports append calls inside body whose destination is a
// variable declared outside the given region.
func outerAppends(p *Program, info *types.Info, body ast.Node, region ast.Node, format string) []Diagnostic {
	var out []Diagnostic
	if body == nil {
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		dst := rootIdent(call.Args[0])
		if dst == nil {
			return true
		}
		v, ok := info.Uses[dst].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() < region.Pos() || v.Pos() > region.End() {
			out = append(out, report(p, detOrderName, call.Pos(), format, v.Name()))
		}
		return true
	})
	return out
}
