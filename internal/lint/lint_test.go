package lint_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ultrascalar/internal/lint"
)

// wantRe matches analysistest-style expectation comments in fixtures:
// a trailing `// want "regex"` on the line the diagnostic lands on.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture parses and type-checks one testdata directory as a single
// package under the given import path (the analyzers scope by path), and
// collects its want expectations.
func loadFixture(t *testing.T, dir, pkgPath string) (*lint.Program, []*expectation) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", path, i+1, err)
			}
			wants = append(wants, &expectation{file: path, line: i + 1, re: re})
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pkg := &lint.Package{Path: pkgPath, Files: files, Types: tpkg, Info: info}
	return lint.NewProgram(fset, []*lint.Package{pkg}), wants
}

// runFixture lints the fixture with one analyzer and holds the
// diagnostics exactly equal to the want expectations.
func runFixture(t *testing.T, dir, pkgPath string, az *lint.Analyzer) {
	t.Helper()
	prog, wants := loadFixture(t, dir, pkgPath)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want expectations", dir)
	}
	for _, d := range prog.Lint(az) {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestHotPathAllocFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "hotpath"), "fixture/hotpath", lint.HotPathAlloc)
}

func TestDetOrderFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "detorder"), "ultrascalar/internal/exp", lint.DetOrder)
}

func TestTechOnlyFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "techonly"), "ultrascalar/internal/vlsi", lint.TechOnly)
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "ctxflow"), "ultrascalar/internal/exp", lint.CtxFlow)
}

func TestAtomicWriteFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "atomicwrite"), "ultrascalar/internal/serve", lint.AtomicWrite)
}

// TestAtomicWriteRescacheScope runs the same fixture under the result
// cache's import path: cache entries carry a SHA-256 over their payload,
// so a torn raw write would be quarantined as corruption on the next
// read — every crash-atomicity expectation must fire there too.
func TestAtomicWriteRescacheScope(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "atomicwrite"), "ultrascalar/internal/rescache", lint.AtomicWrite)
}

func TestBitvecSafeFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "bitvecsafe"), "ultrascalar/internal/core", lint.BitvecSafe)
}

// TestDetOrderServeScope runs the same fixture under the serve import
// path: handler/manager code is under the determinism contract too, so
// every expectation must fire there as well.
func TestDetOrderServeScope(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "detorder"), "ultrascalar/internal/serve", lint.DetOrder)
}

// TestDetOrderFaultScope and TestDetOrderObsScope pin the scope
// extension to the fault and obs packages: campaign plans, fault reports
// and emitted artifacts are all specified byte-identical per seed.
func TestDetOrderFaultScope(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "detorder"), "ultrascalar/internal/fault", lint.DetOrder)
}

func TestDetOrderObsScope(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "detorder"), "ultrascalar/internal/obs", lint.DetOrder)
}

// TestDetOrderObsLogScope pins the scope extension to the logging
// package: a log line's bytes are a pure function of the call, so the
// fixture's wall-clock, global-rand and map-order shapes must all fire
// under the obs/log import path too.
func TestDetOrderObsLogScope(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "detorder"), "ultrascalar/internal/obs/log", lint.DetOrder)
}

// TestCtxFlowObsLogScope does the same for the cancellation contract:
// the logging package's context carriers must not re-root contexts.
func TestCtxFlowObsLogScope(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "ctxflow"), "ultrascalar/internal/obs/log", lint.CtxFlow)
}

// TestCtxFlowScope and TestAtomicWriteScope and TestBitvecSafeScope
// type-check their fixtures under out-of-scope import paths: the same
// constructs draw no findings outside the contract packages.
func TestCtxFlowScope(t *testing.T) {
	prog, _ := loadFixture(t, filepath.Join("testdata", "ctxflow"), "example.com/elsewhere")
	if diags := prog.Lint(lint.CtxFlow); len(diags) != 0 {
		t.Fatalf("out-of-scope package drew %d findings: %v", len(diags), diags)
	}
}

func TestAtomicWriteScope(t *testing.T) {
	prog, _ := loadFixture(t, filepath.Join("testdata", "atomicwrite"), "example.com/elsewhere")
	if diags := prog.Lint(lint.AtomicWrite); len(diags) != 0 {
		t.Fatalf("out-of-scope package drew %d findings: %v", len(diags), diags)
	}
}

func TestBitvecSafeScope(t *testing.T) {
	prog, _ := loadFixture(t, filepath.Join("testdata", "bitvecsafe"), "example.com/elsewhere")
	if diags := prog.Lint(lint.BitvecSafe); len(diags) != 0 {
		t.Fatalf("out-of-scope package drew %d findings: %v", len(diags), diags)
	}
}

// TestDetOrderScope type-checks the detorder fixture under an
// out-of-scope import path: the same nondeterministic constructs draw no
// findings outside internal/exp and cmd.
func TestDetOrderScope(t *testing.T) {
	prog, _ := loadFixture(t, filepath.Join("testdata", "detorder"), "example.com/elsewhere")
	if diags := prog.Lint(lint.DetOrder); len(diags) != 0 {
		t.Fatalf("out-of-scope package drew %d findings: %v", len(diags), diags)
	}
}

// TestTechOnlyScope does the same for techonly.
func TestTechOnlyScope(t *testing.T) {
	prog, _ := loadFixture(t, filepath.Join("testdata", "techonly"), "example.com/elsewhere")
	if diags := prog.Lint(lint.TechOnly); len(diags) != 0 {
		t.Fatalf("out-of-scope package drew %d findings: %v", len(diags), diags)
	}
}

// TestLoadModule is the integration path the uslint binary takes: go
// list + parse + type-check a real package of this module. The vlsi
// package exercises cross-package imports and the allow directives; the
// tree is expected to be clean (CI enforces it repo-wide).
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	prog, err := lint.Load("../..", "./internal/vlsi/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if diags := prog.Lint(lint.All()...); len(diags) != 0 {
		t.Fatalf("expected a clean tree, got %d findings: %v", len(diags), diags)
	}
}
