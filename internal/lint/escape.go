package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// escapecheck is the compiler-backed half of the hot-path contract.
// hotpathalloc pattern-matches the AST for allocating constructs, but
// the ground truth about what reaches the heap is the compiler's own
// escape analysis. EscapeCheck runs `go build -gcflags=-m=2`, keeps
// every "escapes to heap" / "moved to heap" line that falls inside a
// //uslint:hotpath function or one of its transitive callees, and diffs
// the result against a checked-in golden budget
// (internal/lint/escape_budget.txt). A new escape the AST approximation
// missed — an interface conversion, a variable outliving its frame via
// a captured pointer, an inlining change — fails the check; so does a
// stale budget entry, which keeps the golden file honest on both sides.
//
// Budget entries are function-qualified, not line-qualified:
//
//	<package path> <func>: <compiler message>
//
// so unrelated edits that shift line numbers do not churn the file; it
// reproduces byte-identically on a clean rebuild of the same tree with
// the same toolchain. Lines starting with '#' are comments.

// escapeLineRe matches one compiler diagnostic: path:line:col: message.
var escapeLineRe = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.+)$`)

// escapeSite is one compiler-reported heap escape inside a hot function.
type escapeSite struct {
	entry string // budget entry: "<pkg> <func>: <msg>"
	file  string // absolute source path
	line  int
}

// hotRange is the source extent of one hot-path function.
type hotRange struct {
	file       string // absolute path
	start, end int    // line range, inclusive
	pkgPath    string
	display    string // e.g. (*engine).forward
}

// funcDisplay renders a function the way budget entries name it,
// package-qualifier-free: forward, (*engine).forward, (Tracer).Record.
func funcDisplay(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	return fn.Name()
}

// hotRanges indexes the hot-function set by source file.
func (p *Program) hotRanges() map[string][]hotRange {
	out := make(map[string][]hotRange)
	for obj := range p.hotFuncs() {
		fi := p.funcs[obj]
		if fi == nil {
			continue
		}
		start := p.Fset.Position(fi.Decl.Pos())
		end := p.Fset.Position(fi.Decl.End())
		out[start.Filename] = append(out[start.Filename], hotRange{
			file:    start.Filename,
			start:   start.Line,
			end:     end.Line,
			pkgPath: fi.Pkg.Path,
			display: funcDisplay(obj),
		})
	}
	return out
}

// escapeMessage reports whether a compiler message is a heap escape (as
// opposed to inlining chatter or the indented explanation flow -m=2
// appends). The trailing colon of an explanation header is stripped so
// the -m=1-style line and its -m=2 header dedupe to one entry.
func escapeMessage(msg string) (string, bool) {
	if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
		return "", false
	}
	msg = strings.TrimSuffix(msg, ":")
	if strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap") {
		return msg, true
	}
	return "", false
}

// runEscapeAnalysis invokes the compiler over the program's packages and
// returns its -m=2 diagnostics. The build cache replays compiler output,
// so repeat runs are cheap and still deterministic. Binaries of any main
// packages go to a throwaway directory.
func runEscapeAnalysis(p *Program) (string, error) {
	if p.Dir == "" {
		return "", fmt.Errorf("lint: escapecheck needs a Load-ed program (no module directory)")
	}
	tmp, err := os.MkdirTemp("", "uslint-escape-*")
	if err != nil {
		return "", fmt.Errorf("lint: escapecheck temp dir: %w", err)
	}
	defer os.RemoveAll(tmp)
	run := func(args []string) (string, error) {
		cmd := exec.Command("go", args...)
		cmd.Dir = p.Dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		return stderr.String(), err
	}
	out, err := run(append([]string{"build", "-gcflags=-m=2", "-o", tmp}, p.Patterns...))
	if err != nil && strings.Contains(out, "no main packages") {
		// A library-only pattern set rejects -o; without it, go build
		// discards the compiled objects, which is all we want anyway.
		out, err = run(append([]string{"build", "-gcflags=-m=2"}, p.Patterns...))
	}
	if err != nil {
		return "", fmt.Errorf("lint: escapecheck build: %v\n%s", err, out)
	}
	return out, nil
}

// escapeSites parses compiler output and keeps the heap escapes that
// land inside hot-path functions, deduplicated and entry-sorted.
func escapeSites(p *Program, compilerOut string) []escapeSite {
	ranges := p.hotRanges()
	seen := make(map[string]bool)
	var out []escapeSite
	for _, raw := range strings.Split(compilerOut, "\n") {
		m := escapeLineRe.FindStringSubmatch(raw)
		if m == nil {
			continue
		}
		msg, ok := escapeMessage(m[4])
		if !ok {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(p.Dir, file)
		}
		line, _ := strconv.Atoi(m[2])
		for _, hr := range ranges[file] {
			if line < hr.start || line > hr.end {
				continue
			}
			entry := fmt.Sprintf("%s %s: %s", hr.pkgPath, hr.display, msg)
			if !seen[entry] {
				seen[entry] = true
				out = append(out, escapeSite{entry: entry, file: file, line: line})
			}
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].entry < out[j].entry })
	return out
}

// EscapeEntries computes the current escape budget: one sorted entry per
// distinct compiler-reported heap escape inside the hot-path closure.
func EscapeEntries(p *Program) ([]string, error) {
	compilerOut, err := runEscapeAnalysis(p)
	if err != nil {
		return nil, err
	}
	sites := escapeSites(p, compilerOut)
	entries := make([]string, len(sites))
	for i, s := range sites {
		entries[i] = s.entry
	}
	return entries, nil
}

const escapeBudgetHeader = `# uslint escape budget: heap escapes the Go compiler (-gcflags=-m=2)
# reports inside //uslint:hotpath functions and their transitive
# callees. Every entry is a reviewed, justified allocation (amortized
# scratch growth, cold error paths); escapecheck fails on any escape not
# listed here and on any entry the compiler no longer produces.
# Regenerate: go run ./cmd/uslint -write-escape-budget ./...
`

// WriteEscapeBudget regenerates the golden budget file.
func WriteEscapeBudget(p *Program, path string) error {
	entries, err := EscapeEntries(p)
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(escapeBudgetHeader)
	for _, e := range entries {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readEscapeBudget parses the golden file into entry -> line number.
func readEscapeBudget(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: escapecheck budget: %w", err)
	}
	entries := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries[line] = i + 1
	}
	return entries, nil
}

// entryPkg extracts the package path an entry belongs to (its first
// space-separated field).
func entryPkg(entry string) string {
	pkg, _, _ := strings.Cut(entry, " ")
	return pkg
}

// diffEscapeBudget compares the computed sites against the golden
// entries. Stale-entry checks are restricted to packages actually in the
// program, so linting a subtree does not spuriously report the rest of
// the budget as stale.
func diffEscapeBudget(p *Program, sites []escapeSite, budget map[string]int, budgetPath string) []Diagnostic {
	loaded := make(map[string]bool, len(p.Pkgs))
	for _, pkg := range p.Pkgs {
		loaded[pkg.Path] = true
	}
	var out []Diagnostic
	for _, s := range sites {
		if _, ok := budget[s.entry]; ok {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
			Analyzer: escapeCheckName,
			Message: fmt.Sprintf("heap escape not in budget: %s (justify and regenerate %s with uslint -write-escape-budget)",
				s.entry, budgetPath),
		})
	}
	produced := make(map[string]bool, len(sites))
	for _, s := range sites {
		produced[s.entry] = true
	}
	for entry, line := range budget {
		if produced[entry] || !loaded[entryPkg(entry)] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      token.Position{Filename: budgetPath, Line: line, Column: 1},
			Analyzer: escapeCheckName,
			Message:  fmt.Sprintf("stale budget entry no longer produced by the compiler: %s (regenerate with uslint -write-escape-budget)", entry),
		})
	}
	return out
}

// EscapeCheck runs the compiler-backed escape verifier against the
// golden budget at budgetPath and returns the surviving diagnostics.
// Allow directives apply as usual: a line-level
// `//uslint:allow escapecheck` at the escape site suppresses the
// finding, though the budget itself is the intended mechanism.
func EscapeCheck(p *Program, budgetPath string) ([]Diagnostic, error) {
	budget, err := readEscapeBudget(budgetPath)
	if err != nil {
		return nil, err
	}
	compilerOut, err := runEscapeAnalysis(p)
	if err != nil {
		return nil, err
	}
	sites := escapeSites(p, compilerOut)
	var out []Diagnostic
	for _, d := range diffEscapeBudget(p, sites, budget, budgetPath) {
		if !p.suppressed(d) {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out, nil
}
