package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// BitvecSafe freezes DESIGN.md §10's struct-of-arrays invariants: every
// state bitmap is a subset of busy, and that holds only because all
// mutation flows through the bitvec primitives (set, clear, put,
// clearRange) defined in internal/core/soa.go — retire clears a slot in
// every state vec, squash clears ranges with mask algebra, fetch only
// sets bits. A stray `st.busy[w] |= mask` elsewhere in the engine could
// break the subset invariant silently and corrupt every word scan that
// relies on it.
//
// The rule: outside soa.go, a value of type core.bitvec may be read
// word-at-a-time freely (that is the whole point of the layout — the
// per-cycle phases are math/bits word scans), but never mutated
// directly. Flagged, in ultrascalar/internal/core outside soa.go:
//   - assignments (plain or compound: =, |=, &=, &^=, ^=, <<=, >>=,
//     +=, -=) and ++/-- whose target indexes into a bitvec,
//   - taking the address of a bitvec word (&b[w] aliases the word past
//     the primitives),
//   - append with a bitvec destination (would abandon the arena), and
//   - converting a bitvec to a plain []uint64 (laundering the type
//     defeats the rule).
var BitvecSafe = &Analyzer{
	Name: bitvecSafeName,
	Doc:  "outside core/soa.go, SoA bitmaps are mutated only through the bitvec primitives",
	Run:  runBitvecSafe,
}

const bitvecSafePkg = "ultrascalar/internal/core"

// bitvecSafeExemptFile reports whether a file hosts the primitives
// themselves.
func bitvecSafeExemptFile(name string) bool {
	return filepath.Base(name) == "soa.go"
}

// isBitvec reports whether t is the core package's bitvec type.
func isBitvec(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "bitvec" && obj.Pkg() != nil && obj.Pkg().Path() == bitvecSafePkg
}

// bitvecIndex reports whether e indexes into a bitvec value.
func bitvecIndex(info *types.Info, e ast.Expr) bool {
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[idx.X]
	return ok && isBitvec(tv.Type)
}

func runBitvecSafe(p *Program, pkg *Package) []Diagnostic {
	if pkg.Path != bitvecSafePkg {
		return nil
	}
	var out []Diagnostic
	info := pkg.Info
	for _, f := range pkg.Files {
		if bitvecSafeExemptFile(p.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if bitvecIndex(info, lhs) {
						out = append(out, report(p, bitvecSafeName, lhs.Pos(),
							"direct bitvec word write; mutate SoA bitmaps through the bitvec primitives (set/clear/put/clearRange)"))
					}
				}
			case *ast.IncDecStmt:
				if bitvecIndex(info, n.X) {
					out = append(out, report(p, bitvecSafeName, n.X.Pos(),
						"direct bitvec word write; mutate SoA bitmaps through the bitvec primitives (set/clear/put/clearRange)"))
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && bitvecIndex(info, n.X) {
					out = append(out, report(p, bitvecSafeName, n.Pos(),
						"taking the address of a bitvec word aliases it past the primitives"))
				}
			case *ast.CallExpr:
				out = append(out, checkBitvecCall(p, info, n)...)
			}
			return true
		})
	}
	return out
}

// checkBitvecCall flags append-to-bitvec and bitvec -> []uint64
// conversions.
func checkBitvecCall(p *Program, info *types.Info, call *ast.CallExpr) []Diagnostic {
	if fun, ok := call.Fun.(*ast.Ident); ok && len(call.Args) > 0 {
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
			if tv, ok := info.Types[call.Args[0]]; ok && isBitvec(tv.Type) {
				return []Diagnostic{report(p, bitvecSafeName, call.Pos(),
					"append to a bitvec abandons its arena-carved backing array")}
			}
		}
		return nil
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		src, ok := info.Types[call.Args[0]]
		if ok && isBitvec(src.Type) && !isBitvec(tv.Type) {
			if s, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				if b, isBasic := s.Elem().Underlying().(*types.Basic); isBasic && b.Kind() == types.Uint64 {
					return []Diagnostic{report(p, bitvecSafeName, call.Pos(),
						"converting a bitvec to []uint64 launders it past the mutation primitives")}
				}
			}
		}
	}
	return nil
}
