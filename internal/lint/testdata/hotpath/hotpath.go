// Package hotpath is a hotpathalloc fixture: a hot root, a transitively
// hot callee, an allow-stopped callee, and an unreachable function.
package hotpath

import "fmt"

var buf []int
var sink string

//uslint:hotpath
func step(n int) {
	buf = append(buf, n) // want "append may grow its backing array"
	s := make([]int, 4)  // want "make allocates"
	m := map[int]bool{}  // want "map literal allocates"
	p := &point{x: 1}    // want "address-taken composite literal allocates"
	_, _, _ = s, m, p
	helper()
	stopped()
	unrelated := func() {}
	unrelated()
	capturing := func() int { return n } // want "closure capturing"
	capturing()
}

//uslint:hotpath
func concat(a, b string) {
	sink = a + b        // want "string concatenation allocates"
	sink = a + "suffix" // want "string concatenation allocates"
	bs := []byte(a)     // want "string/byte-slice conversion allocates"
	_ = bs
	sink = "constant" + "fold" // constant-folded, no allocation
}

type point struct{ x int }

// helper is hot transitively: step calls it.
func helper() error {
	return fmt.Errorf("boom") // want "fmt.Errorf allocates"
}

// stopped is called from the hot path but reviewed as cold.
//
//uslint:allow hotpathalloc -- fixture: traversal stops at this declaration
func stopped() {
	_ = make([]int, 8)
}

// unreachable is not called from any hot root.
func unreachable() {
	_ = make([]int, 8)
}
