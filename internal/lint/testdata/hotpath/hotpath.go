// Package hotpath is a hotpathalloc fixture: a hot root, a transitively
// hot callee, an allow-stopped callee, and an unreachable function.
package hotpath

import "fmt"

var buf []int
var sink string

//uslint:hotpath
func step(n int) {
	buf = append(buf, n) // want "append may grow its backing array"
	s := make([]int, 4)  // want "make allocates"
	m := map[int]bool{}  // want "map literal allocates"
	p := &point{x: 1}    // want "address-taken composite literal allocates"
	_, _, _ = s, m, p
	helper()
	stopped()
	unrelated := func() {}
	unrelated()
	capturing := func() int { return n } // want "closure capturing"
	capturing()
}

//uslint:hotpath
func concat(a, b string) {
	sink = a + b        // want "string concatenation allocates"
	sink = a + "suffix" // want "string concatenation allocates"
	bs := []byte(a)     // want "string/byte-slice conversion allocates"
	_ = bs
	sink = "constant" + "fold" // constant-folded, no allocation
}

type point struct{ x int }

// helper is hot transitively: step calls it.
func helper() error {
	return fmt.Errorf("boom") // want "fmt.Errorf allocates"
}

// stopped is called from the hot path but reviewed as cold.
//
//uslint:allow hotpathalloc -- fixture: traversal stops at this declaration
func stopped() {
	_ = make([]int, 8)
}

// unreachable is not called from any hot root.
func unreachable() {
	_ = make([]int, 8)
}

// The tracer shapes below mirror internal/obs: an event tracer whose
// record hook runs inside the engine's per-cycle chain. The disciplined
// version writes a value struct into a preallocated slab by index —
// allocation-free, so it produces no diagnostics. The naive versions
// allocate per event, which the checker must catch transitively from the
// hot root.

type traceEvent struct {
	cycle int64
	kind  int
}

type tracer struct {
	buf []traceEvent
	n   int
	log []traceEvent
}

//uslint:hotpath
func (t *tracer) recordOK(kind int, cycle int64) {
	if t == nil || t.n == len(t.buf) {
		return
	}
	t.buf[t.n] = traceEvent{cycle: cycle, kind: kind} // value write, no allocation
	t.n++
}

// recordAppend is the tempting-but-wrong tracer hook: append can grow the
// backing array mid-cycle.
func (t *tracer) recordAppend(kind int, cycle int64) {
	t.log = append(t.log, traceEvent{cycle: cycle, kind: kind}) // want "append may grow its backing array"
}

// recordBoxed heap-allocates every event.
func (t *tracer) recordBoxed(kind int, cycle int64) {
	ev := &traceEvent{cycle: cycle, kind: kind} // want "address-taken composite literal allocates"
	t.buf[0] = *ev
}

//uslint:hotpath
func cycleStep(t *tracer) {
	t.recordOK(1, 0)
	t.recordAppend(2, 0) // transitively hot: the append above is flagged
	t.recordBoxed(3, 0)  // transitively hot: the boxing above is flagged
}

// The fault-hook shapes below mirror internal/core's fault injection:
// the per-cycle chain carries a nil-guarded fault-state pointer. With
// injection disabled the pointer is nil and the measured path executes
// only the guard — no allocation. The hook bodies do allocate (the store
// undo log grows), but they run only during fault campaigns, so they are
// reviewed as off the measured path and allow-stopped at their
// declarations. An identical hook without the review marker must still
// be flagged through the same nil-guarded call site.

type undo struct{ addr, prev int }

type faultHooks struct{ log []undo }

// noteStore grows the store undo log; fault campaigns only.
//
//uslint:allow hotpathalloc -- fixture: fault hook reviewed as off the measured path
func (h *faultHooks) noteStore(addr, prev int) {
	h.log = append(h.log, undo{addr: addr, prev: prev})
}

// noteStoreUnreviewed is the same hook without the allow marker.
func (h *faultHooks) noteStoreUnreviewed(addr, prev int) {
	h.log = append(h.log, undo{addr: addr, prev: prev}) // want "append may grow its backing array"
}

//uslint:hotpath
func memoryStep(h *faultHooks) {
	if h != nil {
		h.noteStore(1, 2)           // traversal stops: reviewed fault hook
		h.noteStoreUnreviewed(3, 4) // transitively hot: flagged above
	}
}

// The cancellation-probe shapes below mirror internal/core's RunCtx:
// the per-cycle chain probes a nil-guarded context at a fixed cycle
// cadence. The disciplined probe is one pointer test, one modulo and
// one interface call — allocation-free, so it draws no diagnostics;
// wrapping the error into a struct happens on the cold exit path
// outside the hot root. The naive variants wrap or box per probe,
// which the checker must catch inside the hot root.

type runCtx interface{ Err() error }

type canceled struct {
	cycle int64
	err   error
}

func (c *canceled) Error() string { return "canceled" }

type cancelEngine struct {
	ctx      runCtx
	cycle    int64
	ctxEvery int64
}

// probeOK is the engine's shape: nil guard, modulo gate, bare
// interface call. No allocation on any path.
//
//uslint:hotpath
func (e *cancelEngine) probeOK() error {
	if e.ctx == nil || e.cycle%e.ctxEvery != 0 {
		return nil
	}
	return e.ctx.Err()
}

// probeWrapping wraps the context error on the hot path itself instead
// of leaving that to the cold exit.
//
//uslint:hotpath
func (e *cancelEngine) probeWrapping() error {
	if e.ctx == nil {
		return nil
	}
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("canceled at cycle %d: %w", e.cycle, err) // want "fmt.Errorf allocates"
	}
	return nil
}

// probeBoxing heap-allocates the error value every probe, taken or not.
//
//uslint:hotpath
func (e *cancelEngine) probeBoxing() error {
	if e.ctx == nil {
		return nil
	}
	if err := e.ctx.Err(); err != nil {
		return &canceled{cycle: e.cycle, err: err} // want "address-taken composite literal allocates"
	}
	return nil
}

// The struct-of-arrays shapes below mirror internal/core's bitmap engine:
// per-station flags live in []uint64 bitmaps walked word-at-a-time with
// math/bits, and per-cycle scratch is carved from preallocated arenas.
// The disciplined word loop — mask algebra, TrailingZeros64 iteration,
// value writes into parallel slices — allocates nothing and must draw no
// diagnostics. The naive variants (collecting set bits into a fresh
// slice, growing scratch mid-scan, boxing per-word state) are the
// regressions the checker must catch.

type soaStations struct {
	busy, ready, started []uint64
	operand              []int64
	scratch              []int32 // preallocated to the window size
	scratchN             int
}

// trailingZeros64 stands in for math/bits.TrailingZeros64 (the fixture
// package must not import anything beyond fmt).
func trailingZeros64(x uint64) int {
	n := 0
	for x&1 == 0 && n < 64 {
		x >>= 1
		n++
	}
	return n
}

// wakeupScanOK is the engine's shape: per-word mask expression, set-bit
// iteration, bitmap and parallel-slice writes. Allocation-free.
//
//uslint:hotpath
func (s *soaStations) wakeupScanOK(lo, hi int) {
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		wait := s.busy[w] &^ s.started[w] &^ s.ready[w]
		for wait != 0 {
			b := trailingZeros64(wait)
			wait &= wait - 1
			slot := w<<6 + b
			s.operand[slot] = int64(slot)    // parallel-slice value write
			s.ready[w] |= 1 << uint(b)       // bitmap update, no allocation
			s.scratch[s.scratchN] = int32(b) // reused scratch, indexed write
			s.scratchN++
		}
	}
}

// wakeupScanCollect materializes the set-bit walk into a fresh slice per
// scan — the tempting-but-wrong way to iterate a bitmap.
//
//uslint:hotpath
func (s *soaStations) wakeupScanCollect(w int) {
	slots := make([]int, 0, 64) // want "make allocates"
	word := s.busy[w]
	for word != 0 {
		b := trailingZeros64(word)
		word &= word - 1
		slots = append(slots, w<<6+b) // want "append may grow its backing array"
	}
	for _, slot := range slots {
		s.operand[slot] = 0
	}
}

// squashGrowing appends squashed slots to scratch instead of mask-clearing
// the range: the append can grow the backing array mid-squash.
func (s *soaStations) squashGrowing(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.scratch = append(s.scratch, int32(i)) // want "append may grow its backing array"
	}
}

//uslint:hotpath
func (s *soaStations) squashStep(lo, hi int) {
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		s.busy[w] = 0 // range clear via mask algebra: no allocation
	}
	s.squashGrowing(lo, hi) // transitively hot: the append above is flagged
}

// The sampled-logging shapes below mirror internal/obs/log on the
// engine's warm paths: a nil-safe logger guarded by one Enabled
// comparison and a deterministic 1-in-N sample counter. The disciplined
// hook decides *before* building anything — nil test, level test,
// counter test are all allocation-free — and only then calls the emit
// routine, which allocates (buffers, locking) but is reviewed as off
// the measured path and allow-stopped at its declaration. The naive
// shapes pay for the log line even when it is thrown away: formatting
// fields before the guard, or collecting them through append.

type logField struct {
	key string
	num int64
}

type hotLogger struct {
	level   int
	sampleN uint64
	every   uint64
}

// emit is the line encoder: it allocates by design and runs only after
// every guard has passed.
//
//uslint:allow hotpathalloc -- fixture: emit runs only on kept lines, off the measured path
func (l *hotLogger) emit(msg string, fields ...logField) {
	buf := make([]byte, 0, 256)
	buf = append(buf, msg...)
	_ = buf
}

// enabled is the one-comparison guard.
func (l *hotLogger) enabled(level int) bool {
	return l != nil && level >= l.level
}

// sampled keeps 1-in-every calls by deterministic counter.
func (l *hotLogger) sampled() bool {
	l.sampleN++
	return l.sampleN%l.every == 1
}

// logStepOK is the disciplined per-cycle shape: guards first (all
// allocation-free), fields as plain value structs, emit allow-stopped.
//
//uslint:hotpath
func (l *hotLogger) logStepOK(cycle int64) {
	if !l.enabled(1) || !l.sampled() {
		return
	}
	l.emit("step", logField{key: "cycle", num: cycle})
}

// logStepEager formats the line before asking whether anyone wants it.
//
//uslint:hotpath
func (l *hotLogger) logStepEager(cycle int64, name string) {
	msg := "step " + name // want "string concatenation allocates"
	if !l.enabled(1) {
		return
	}
	l.emit(msg)
}

// logStepCollect accumulates fields through append on every call,
// sampled or not.
//
//uslint:hotpath
func (l *hotLogger) logStepCollect(cycle int64) {
	var fields []logField
	fields = append(fields, logField{key: "cycle", num: cycle}) // want "append may grow its backing array"
	if !l.enabled(1) || !l.sampled() {
		return
	}
	l.emit("step", fields...)
}
