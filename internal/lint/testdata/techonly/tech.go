// Package vlsi is a techonly fixture, loaded under the path
// ultrascalar/internal/vlsi. This file plays the role of the real
// tech.go: it is exempt, so its literals are calibration, not findings.
package vlsi

// Tech is the fixture's technology table.
type Tech struct {
	LambdaMicrons float64
	BitCellArea   float64
}

// Calibrated returns the fixture process; the literals here are legal.
func Calibrated() Tech {
	return Tech{LambdaMicrons: 0.35, BitCellArea: 900}
}
