package vlsi

// Area is a model function: technology numbers must come from t.
func Area(t Tech, n int) float64 {
	perBit := t.BitCellArea * float64(n)
	pinned := 900.0 * float64(n) // want "float literal 900.0 in a vlsi model"
	feature := 0.35 * perBit     // want "float literal 0.35 in a vlsi model"
	tracks := float64(640 * n)   // want "integer literal 640 is technology-magnitude"
	half := 0.5 * perBit         // structural constant, fine
	small := float64(32 * n)     // below the magnitude threshold, fine
	return perBit + pinned + feature + tracks + half + small
}

// AdHoc defines a process outside tech.go.
func AdHoc() Tech {
	return Tech{ // want "ad-hoc Tech literal"
		LambdaMicrons: 1,
		BitCellArea:   2,
	}
}

// Fudge carries a reviewed escape.
func Fudge(t Tech) float64 {
	return t.BitCellArea * 1.17 //uslint:allow techonly -- fixture: routing fudge factor
}
