// Package flow is a ctxflow fixture, loaded under the path
// ultrascalar/internal/exp so the analyzer's scope applies.
package flow

import "context"

// RunAllCtx is the boundary entry point: exported, ctx-taking. Once it
// holds a ctx it must not manufacture another root.
func RunAllCtx(ctx context.Context, n int) int {
	if n < 0 {
		ctx = context.Background() // want "re-roots the context inside RunAllCtx"
	}
	return stepCtx(ctx, n)
}

// RunAll is the sanctioned convenience twin: F calling FCtx with a fresh
// root IS the API boundary.
func RunAll(n int) int {
	return RunAllCtx(context.Background(), n)
}

// Broken launches cancellable work without accepting a context and is
// not anyone's Ctx twin.
func Broken(n int) int {
	return stepCtx(context.Background(), n) // want "exported Broken launches cancellable work"
}

// stepCtx holds a ctx, so calling the ctx-less helper when helperCtx
// exists drops cancellation mid-stack.
func stepCtx(ctx context.Context, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return sum
		}
		sum += helper(i) // want "helper drops the ctx held by stepCtx; call helperCtx instead"
		sum += helperCtx(ctx, i)
	}
	return sum
}

func helper(n int) int { return n }

func helperCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// lowLevel is below the API boundary: it must receive its context, not
// root one.
func lowLevel(n int) int {
	ctx := context.Background() // want "context.Background below the API boundary in unexported lowLevel"
	return helperCtx(ctx, n)
}

// launch checks that closures inherit the enclosing function's boundary
// status: a goroutine body inside an unexported helper is still below
// the boundary.
func launch(n int) {
	go func() {
		_ = helperCtx(context.TODO(), n) // want "context.TODO below the API boundary in unexported launch"
	}()
}

// jobRoot is a reviewed, deliberate root.
func jobRoot(n int) int {
	ctx := context.Background() //uslint:allow ctxflow -- fixture: detached job root outliving its caller
	return helperCtx(ctx, n)
}

// onlyVariant has no ctx-less twin trap: calling a ctx-less function
// with no Ctx sibling from a ctx holder is fine (nothing to upgrade to).
func onlyVariant(ctx context.Context, n int) int {
	_ = ctx
	return helper2(n)
}

func helper2(n int) int { return n }
