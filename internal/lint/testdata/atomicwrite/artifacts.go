// Package artifacts is an atomicwrite fixture, loaded under the path
// ultrascalar/internal/serve so the analyzer's scope applies.
package artifacts

import (
	"bufio"
	"os"
)

func writeRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile writes the destination in place"
}

func createRaw(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create truncates the destination in place"
}

func openRaw(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644) // want "os.OpenFile opens the destination for in-place writing"
}

func buffered(f *os.File) *bufio.Writer {
	return bufio.NewWriter(f) // want "bufio.NewWriter buffers writes that are lost or torn on crash"
}

func bufferedSized(f *os.File) *bufio.Writer {
	return bufio.NewWriterSize(f, 1<<16) // want "bufio.NewWriterSize buffers writes that are lost or torn on crash"
}

// Reads are outside the contract.
func readsAreFine(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func scannersAreFine(f *os.File) *bufio.Scanner {
	return bufio.NewScanner(f)
}

// allowedDump is a reviewed, best-effort raw write.
func allowedDump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) //uslint:allow atomicwrite -- fixture: best-effort debug dump, loss tolerated
}
