package core

import "math/bits"

type stations struct {
	busy  bitvec
	ready bitvec
}

// scan reads words directly — the sanctioned word-at-a-time idiom the
// SoA layout exists for.
func (st *stations) scan() int {
	n := 0
	for w := range st.busy {
		n += bits.OnesCount64(st.busy[w] &^ st.ready[w])
	}
	return n
}

// retire mutates through the primitives: fine.
func (st *stations) retire(i int) {
	st.busy.clear(i)
	st.ready.clear(i)
}

func (st *stations) corrupt(w int, mask uint64) {
	st.busy[w] |= mask // want "direct bitvec word write"
}

func (st *stations) assign(w int, v uint64) {
	st.ready[w] = v // want "direct bitvec word write"
}

func (st *stations) bump(w int) {
	st.busy[w]++ // want "direct bitvec word write"
}

func (st *stations) alias(w int) *uint64 {
	return &st.busy[w] // want "taking the address of a bitvec word"
}

func (st *stations) grow() {
	st.busy = append(st.busy, 0) // want "append to a bitvec abandons its arena-carved backing array"
}

func (st *stations) launder() []uint64 {
	return []uint64(st.busy) // want "converting a bitvec to ..uint64 launders it"
}

// plain []uint64 words are not bitvecs: out of the rule's reach.
func rawWords(w []uint64, mask uint64) {
	w[0] |= mask
}

func (st *stations) allowedInit(w int, mask uint64) {
	st.busy[w] |= mask //uslint:allow bitvecsafe -- fixture: reviewed bulk initialization
}
