// Package core is a bitvecsafe fixture, loaded under the path
// ultrascalar/internal/core so the analyzer's scope applies. This file
// plays the role of the real soa.go: it defines the bitvec type and its
// mutation primitives, and is exempt from the rule by filename.
package core

type bitvec []uint64

func (b bitvec) get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }
func (b bitvec) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitvec) clear(i int)    { b[i>>6] &^= 1 << (uint(i) & 63) }

func (b bitvec) clearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.clear(i)
	}
}
