// Serve-like shapes for the detorder fixture: the job-manager idioms
// that internal/serve must (and must not) use. Handler code builds
// listings and recovery order from a sorted id slice, never by ranging
// a map; the only wall-clock use is the injected serving-policy clock,
// which carries an allow escape exactly as internal/serve's Clock
// default does.
package sweep

import "time"

type job struct {
	ID    string
	State string
}

type manager struct {
	jobs  map[string]*job
	order []string         // insertion-ordered ids: the deterministic listing source
	clock func() time.Time // injected serving-policy clock
}

// listJobsOrdered ranges the jobs map directly: listing order would
// follow map iteration and differ run to run.
func (m *manager) listJobsOrdered() []*job {
	var out []*job
	for _, j := range m.jobs {
		out = append(out, j) // want "inside a range over a map"
	}
	return out
}

// listJobsSorted reads the map through the sorted order slice —
// deterministic, the shape internal/serve's List uses.
func (m *manager) listJobsSorted() []*job {
	out := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id]) // ranging a slice, not the map
	}
	return out
}

// stampReport bakes the wall clock into report bytes: resumed and fresh
// runs could never be byte-identical.
func (m *manager) stampReport(body string) string {
	return time.Now().Format(time.RFC3339) + " " + body // want "time.Now makes results depend on wall-clock time"
}

// defaultClock mirrors internal/serve's Config.Clock default: wall time
// is serving policy (deadlines, cooldowns, Retry-After), never report
// data, so the one mention is allow-marked at the default.
func (m *manager) defaultClock() {
	if m.clock == nil {
		m.clock = time.Now //uslint:allow detorder -- fixture: serving-policy clock, never experiment data
	}
}

// retryAfter computes a cooldown from the injected clock: no time.Now
// mention, nothing to flag.
func (m *manager) retryAfter(openUntil time.Time) time.Duration {
	return openUntil.Sub(m.clock())
}

// recoverJobs collects persisted ids inside goroutines by append:
// recovery order would follow scheduling, not the on-disk order.
func (m *manager) recoverJobs(paths []string) []string {
	var ids []string
	done := make(chan bool)
	for _, p := range paths {
		go func(p string) {
			ids = append(ids, p) // want "in a goroutine collects results in completion order"
			done <- true
		}(p)
	}
	for range paths {
		<-done
	}
	return ids
}
