// The logging shapes below mirror internal/obs/log, which the detorder
// contract covers: a log line's bytes must be a pure function of the
// call. Timestamps come only from an injected clock (nil = none),
// sampling decisions from a deterministic counter — never from wall
// time or the global rand — and multi-field encoders iterate fields in
// caller order, never map order.
package sweep

import (
	"math/rand"
	"time"
)

type logSink struct {
	clock func() time.Time
	n     uint64
}

// stampInjected is the disciplined shape: the timestamp, when present,
// comes from the injected clock.
func (s *logSink) stampInjected() int64 {
	if s.clock == nil {
		return 0
	}
	return s.clock().UnixNano()
}

// stampWall hardwires wall time into the line — the bytes now depend on
// when the call happened.
func (s *logSink) stampWall() int64 {
	return time.Now().UnixNano() // want "time.Now makes results depend on wall-clock time"
}

// sampleCounter keeps 1-in-every lines by a deterministic counter: the
// k-th call's fate is a pure function of k.
func (s *logSink) sampleCounter(every uint64) bool {
	s.n++
	return s.n%every == 1
}

// sampleRandom thins the stream with the global generator — two
// identical runs keep different lines.
func (s *logSink) sampleRandom(every int) bool {
	return rand.Intn(every) == 0 // want "global math/rand generator is not reproducible"
}

// encodeCallerOrder renders fields in the order the caller passed them:
// deterministic bytes.
func encodeCallerOrder(keys []string, fields map[string]string) []string {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+fields[k])
	}
	return out
}

// encodeMapOrder renders whatever order the map iterator produces.
func encodeMapOrder(fields map[string]string) []string {
	var out []string
	for k, v := range fields {
		out = append(out, k+"="+v) // want "inside a range over a map"
	}
	return out
}
