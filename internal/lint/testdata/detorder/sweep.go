// Package sweep is a detorder fixture, loaded under the path
// ultrascalar/internal/exp so the analyzer's scope applies.
package sweep

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "time.Now makes results depend on wall-clock time"
	return t.Unix()
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand generator is not reproducible"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are fine
	return r.Intn(10)
}

func methodNotPackage(r *rand.Rand) int {
	return r.Intn(10) // method on an explicit generator, fine
}

func mapOrdered(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "inside a range over a map"
	}
	return out
}

func mapKeyed(keys []string, m map[string]int) []int {
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = m[k] // deterministic: indexed by a slice, not the map
	}
	return out
}

func goCollected(items []int) []int {
	var out []int
	done := make(chan bool)
	for range items {
		go func() {
			out = append(out, 1) // want "in a goroutine collects results in completion order"
			done <- true
		}()
	}
	for range items {
		<-done
	}
	return out
}

func goKeyed(items []int) []int {
	out := make([]int, len(items))
	done := make(chan bool)
	for i, v := range items {
		go func(i, v int) {
			out[i] = v * v // keyed collection, fine
			done <- true
		}(i, v)
	}
	for range items {
		<-done
	}
	return out
}

func allowedClock() time.Time {
	return time.Now() //uslint:allow detorder -- fixture: progress display only
}
