package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load enumerates the packages matching the patterns (relative to dir),
// parses their non-test sources, and type-checks them in dependency
// order. Module-local imports resolve to the freshly checked packages —
// so function objects are shared across packages and the cross-package
// call graph is exact — and standard-library imports are type-checked
// from source, which needs no pre-built export data.
//
// Test files are deliberately excluded: the invariants uslint enforces
// are production-code contracts (tests time things and build throwaway
// slices all day, legitimately).
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	// Type-check the full module-local dependency closure, not just the
	// matched packages: a subset load (./internal/core/...) still needs
	// its module-local imports checked by this same load, or the source
	// importer would re-check shared dependencies and break cross-package
	// type identity. Only the matched targets are analyzed.
	listed, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	for _, lp := range targets {
		isTarget[lp.ImportPath] = true
	}
	fset := token.NewFileSet()
	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}

	imp := &moduleImporter{
		base: importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}

	var pkgs []*Package
	checked := make(map[string]bool)
	var check func(lp *listedPackage) error
	check = func(lp *listedPackage) error {
		if checked[lp.ImportPath] {
			return nil
		}
		checked[lp.ImportPath] = true
		// Dependencies first, so module-local imports hit imp.pkgs.
		for _, path := range lp.Imports {
			if dep := byPath[path]; dep != nil {
				if err := check(dep); err != nil {
					return err
				}
			}
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		cfg := types.Config{Importer: imp}
		tpkg, err := cfg.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
		}
		imp.pkgs[lp.ImportPath] = tpkg
		if isTarget[lp.ImportPath] {
			pkgs = append(pkgs, &Package{
				Path:  lp.ImportPath,
				Files: files,
				Types: tpkg,
				Info:  info,
			})
		}
		return nil
	}
	for _, lp := range listed {
		if err := check(lp); err != nil {
			return nil, err
		}
	}
	prog := NewProgram(fset, pkgs)
	if abs, err := filepath.Abs(dir); err == nil {
		prog.Dir = abs
	} else {
		prog.Dir = dir
	}
	prog.Patterns = patterns
	return prog, nil
}

// newInfo allocates the types.Info maps the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// goList shells out to the go tool for package enumeration — the one
// piece of module logic not worth reimplementing. With deps it also
// returns the patterns' dependency closure, minus the standard library
// (checked from source by the fallback importer on demand).
func goList(dir string, patterns []string, deps bool) ([]*listedPackage, error) {
	args := []string{"list", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Standard {
			continue
		}
		out = append(out, lp)
	}
	return out, nil
}

// moduleImporter resolves module-local imports to the packages this load
// already checked and everything else through the source importer.
type moduleImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.pkgs[path]; p != nil {
		return p, nil
	}
	return m.base.Import(path)
}
