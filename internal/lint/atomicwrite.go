package lint

import (
	"go/ast"
	"go/types"
)

// AtomicWrite enforces the crash-atomicity contract PR 5 established for
// durable artifacts: campaign checkpoints, serve job records and report
// files must be written through internal/atomicio (temp file + fsync +
// rename), so a crash — even power loss — leaves either the old complete
// file or the new complete file, never a torn one. It applies to
// ultrascalar/internal/serve, internal/exp and internal/rescache, the
// packages that persist such artifacts — rescache especially: a torn
// cache entry would fail its own SHA-256 check and force a pointless
// quarantine + recompute on the next read.
//
// Flagged constructs:
//   - os.Create, os.WriteFile and os.OpenFile — a raw destination write
//     can be observed (and survive a crash) half-written.
//   - io/ioutil.WriteFile, the legacy spelling of the same hazard.
//   - bufio.NewWriter / bufio.NewWriterSize — a buffered writer over a
//     destination file loses its unflushed tail on crash, and even a
//     flushed one still exposes the torn-file window.
//
// Reads (os.ReadFile, os.Open, bufio.NewScanner) are untouched; so are
// temp-file workflows that live inside atomicio itself. A site that
// genuinely wants a raw write — a best-effort debug dump, say — carries
// `//uslint:allow atomicwrite` with its justification.
var AtomicWrite = &Analyzer{
	Name: atomicWriteName,
	Doc:  "serve/exp artifacts must be written via internal/atomicio, not raw os or bufio writes",
	Run:  runAtomicWrite,
}

// atomicWriteScope reports whether the package persists durable
// artifacts and is therefore under the contract.
func atomicWriteScope(path string) bool {
	switch path {
	case "ultrascalar/internal/serve",
		"ultrascalar/internal/exp",
		"ultrascalar/internal/rescache":
		return true
	}
	return false
}

// rawWriteFuncs maps package path -> function name -> hazard note.
var rawWriteFuncs = map[string]map[string]string{
	"os": {
		"Create":    "truncates the destination in place",
		"WriteFile": "writes the destination in place",
		"OpenFile":  "opens the destination for in-place writing",
	},
	"io/ioutil": {
		"WriteFile": "writes the destination in place",
	},
	"bufio": {
		"NewWriter":     "buffers writes that are lost or torn on crash",
		"NewWriterSize": "buffers writes that are lost or torn on crash",
	},
}

func runAtomicWrite(p *Program, pkg *Package) []Diagnostic {
	if !atomicWriteScope(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if note, ok := rawWriteFuncs[fn.Pkg().Path()][fn.Name()]; ok {
				out = append(out, report(p, atomicWriteName, sel.Pos(),
					"%s.%s %s; write artifacts through atomicio.WriteFile",
					fn.Pkg().Name(), fn.Name(), note))
			}
			return true
		})
	}
	return out
}
