package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the cancellation contract PR 5 threaded through the
// stack: work that can run for a long time is bounded by exactly one
// context.Context, rooted at the API boundary and passed down — never
// re-rooted below it. It applies to ultrascalar/internal/exp,
// internal/serve and internal/fault — the three packages whose entry
// points launch simulations, sweeps and campaigns — and to
// internal/obs/log, whose context carriers (trace IDs, recorders,
// loggers) ride the same ctx and must never re-root it.
//
// Flagged constructs:
//   - context.Background()/context.TODO() inside a function that already
//     receives a context.Context — re-rooting discards the caller's
//     cancellation and deadline.
//   - context.Background()/context.TODO() inside an unexported function.
//     Below the API boundary a context must come from the caller; only
//     exported entry points may root a fresh one (and those that do own
//     the justification).
//   - a call, from a function holding a ctx, to a module-local function
//     F that takes no context when the same package defines FCtx taking
//     one — the ctx-aware variant exists precisely so cancellation is
//     not dropped mid-stack.
//   - an exported function with no context parameter calling a
//     module-local context-taking function. The one sanctioned shape is
//     the convenience twin — F calling FCtx — which is the boundary by
//     construction; anything else is a long-running entry point that
//     should accept a ctx.
//
// Deliberate roots — a job manager whose jobs outlive the submitting
// request, for example — carry `//uslint:allow ctxflow` with their
// justification.
var CtxFlow = &Analyzer{
	Name: ctxFlowName,
	Doc:  "long-running entry points must accept and propagate a context.Context; no re-rooting below the API boundary",
	Run:  runCtxFlow,
}

// ctxFlowScope reports whether the package is under the cancellation
// contract.
func ctxFlowScope(path string) bool {
	return path == "ultrascalar/internal/exp" ||
		path == "ultrascalar/internal/serve" ||
		path == "ultrascalar/internal/fault" ||
		path == "ultrascalar/internal/obs/log"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasCtxParam reports whether the signature takes a context.Context.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxTwin returns the name of the context-aware sibling of fn (fn's name
// plus "Ctx", defined in fn's package with a ctx parameter), or "".
func ctxTwin(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	name := fn.Name() + "Ctx"
	twin, ok := fn.Pkg().Scope().Lookup(name).(*types.Func)
	if !ok {
		return ""
	}
	if sig, ok := twin.Type().(*types.Signature); ok && hasCtxParam(sig) {
		return name
	}
	return ""
}

// moduleLocal reports whether fn is defined in this module.
func moduleLocal(fn *types.Func) bool {
	return fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "ultrascalar/")
}

func runCtxFlow(p *Program, pkg *Package) []Diagnostic {
	if !ctxFlowScope(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	for _, fi := range p.funcs {
		if fi.Pkg != pkg || fi.Decl.Body == nil {
			continue
		}
		out = append(out, checkCtxFlow(p, pkg, fi)...)
	}
	return out
}

func checkCtxFlow(p *Program, pkg *Package, fi *FuncInfo) []Diagnostic {
	var out []Diagnostic
	info := pkg.Info
	sig, _ := fi.Obj.Type().(*types.Signature)
	hasCtx := sig != nil && hasCtxParam(sig)
	exported := fi.Obj.Exported()
	name := fi.Obj.Name()

	// Closures are walked with the enclosing function's boundary status:
	// a goroutine body inside an unexported helper is just as far below
	// the boundary as the helper itself.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			switch {
			case hasCtx:
				out = append(out, report(p, ctxFlowName, call.Pos(),
					"context.%s re-roots the context inside %s, which already receives a ctx", fn.Name(), name))
			case !exported:
				out = append(out, report(p, ctxFlowName, call.Pos(),
					"context.%s below the API boundary in unexported %s; accept a ctx from the caller", fn.Name(), name))
			}
			return true
		}
		if !moduleLocal(fn) {
			return true
		}
		calleeSig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		calleeCtx := hasCtxParam(calleeSig)
		if hasCtx && !calleeCtx {
			if twin := ctxTwin(fn); twin != "" {
				out = append(out, report(p, ctxFlowName, call.Pos(),
					"%s drops the ctx held by %s; call %s instead", fn.Name(), name, twin))
			}
		}
		if !hasCtx && exported && calleeCtx && fn.Name() != name+"Ctx" {
			out = append(out, report(p, ctxFlowName, call.Pos(),
				"exported %s launches cancellable work (%s) without accepting a context.Context", name, fn.Name()))
		}
		return true
	})
	return out
}
