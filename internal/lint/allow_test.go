package lint_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"ultrascalar/internal/lint"
)

// progFromSource assembles a one-package Program from in-memory sources,
// type-checked under pkgPath so analyzer scoping applies. Filenames are
// synthetic but stable, which is all the directive index needs.
func progFromSource(t *testing.T, pkgPath string, files map[string]string) *lint.Program {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, parsed, info)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	pkg := &lint.Package{Path: pkgPath, Files: parsed, Types: tpkg, Info: info}
	return lint.NewProgram(fset, []*lint.Package{pkg})
}

// countFindings lints and returns the number of surviving diagnostics.
func countFindings(t *testing.T, pkgPath, src string, azs ...*lint.Analyzer) int {
	t.Helper()
	prog := progFromSource(t, pkgPath, map[string]string{"allowfix.go": src})
	return len(prog.Lint(azs...))
}

const expPath = "ultrascalar/internal/exp"

// Each scope of the allow directive — trailing line, line above, func
// doc, file header — must suppress the same diagnostic; an allow naming
// a different analyzer must not.
func TestAllowScopes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"no allow", `package p
import "time"
func f() int64 { return time.Now().Unix() }
`, 1},
		{"trailing line allow", `package p
import "time"
func f() int64 { return time.Now().Unix() } //uslint:allow detorder -- test
`, 0},
		{"line above allow", `package p
import "time"
func f() int64 {
	//uslint:allow detorder -- test
	return time.Now().Unix()
}
`, 0},
		{"func doc allow", `package p
import "time"

//uslint:allow detorder -- test
func f() int64 {
	a := time.Now().Unix()
	b := time.Now().Unix()
	return a + b
}
`, 0},
		{"file header allow", `//uslint:allow detorder -- test
package p
import "time"
func f() int64 { return time.Now().Unix() }
func g() int64 { return time.Now().Unix() }
`, 0},
		{"wrong analyzer named", `package p
import "time"
func f() int64 { return time.Now().Unix() } //uslint:allow techonly -- names the wrong analyzer
`, 1},
		{"line allow does not leak to the next violation", `package p
import "time"
func f() int64 { return time.Now().Unix() } //uslint:allow detorder -- test
func g() int64 { return time.Now().Unix() }
`, 1},
		{"func allow does not leak to a sibling func", `package p
import "time"

//uslint:allow detorder -- test
func f() int64 { return time.Now().Unix() }
func g() int64 { return time.Now().Unix() }
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := countFindings(t, expPath, tc.src, lint.DetOrder); got != tc.want {
				t.Errorf("got %d findings, want %d", got, tc.want)
			}
		})
	}
}

// TestAllowStackedScopes layers file, func and line allows over the same
// diagnostic: redundant scopes must compose (still suppressed), not
// conflict.
func TestAllowStackedScopes(t *testing.T) {
	src := `//uslint:allow detorder -- file scope
package p
import "time"

//uslint:allow detorder -- func scope
func f() int64 {
	return time.Now().Unix() //uslint:allow detorder -- line scope
}
`
	if got := countFindings(t, expPath, src, lint.DetOrder); got != 0 {
		t.Errorf("stacked allows drew %d findings, want 0", got)
	}
}

// TestAllowMultipleAnalyzersOneLine exercises one line that draws
// findings from two different analyzers (detorder's time.Now and
// atomicwrite's os.WriteFile, both in serve scope): a comma list
// suppresses both, a single name leaves the other analyzer's finding.
func TestAllowMultipleAnalyzersOneLine(t *testing.T) {
	const servePath = "ultrascalar/internal/serve"
	mk := func(allow string) string {
		return fmt.Sprintf(`package p
import (
	"os"
	"time"
)
func dump(path string) error {
	return os.WriteFile(path, []byte(time.Now().String()), 0o644) %s
}
`, allow)
	}
	cases := []struct {
		name, allow string
		want        int
	}{
		{"both flagged", "", 2},
		{"comma list suppresses both", "//uslint:allow detorder,atomicwrite -- test", 0},
		{"single name leaves the other", "//uslint:allow detorder -- test", 1},
		{"spaces around the comma are tolerated", "//uslint:allow detorder, atomicwrite -- test", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := countFindings(t, servePath, mk(tc.allow), lint.DetOrder, lint.AtomicWrite)
			if got != tc.want {
				t.Errorf("got %d findings, want %d", got, tc.want)
			}
		})
	}
}

// TestAllowFuncDocStopsHotpathTraversal pins the doc-level allow's
// second effect: hotpathalloc stops its callee traversal at an allowed
// function, so allocations in functions only reachable through it are
// not findings.
func TestAllowFuncDocStopsHotpathTraversal(t *testing.T) {
	src := `package p

//uslint:hotpath
func hot() { cold() }

//uslint:allow hotpathalloc -- test: amortized setup, not per-cycle
func cold() { deep() }

func deep() { _ = make([]int, 4) }
`
	if got := countFindings(t, "fixture/hot", src, lint.HotPathAlloc); got != 0 {
		t.Errorf("traversal crossed an allowed function: %d findings, want 0", got)
	}
	// Without the allow, the same shape must flag deep's make.
	src2 := `package p

//uslint:hotpath
func hot() { cold() }

func cold() { deep() }

func deep() { _ = make([]int, 4) }
`
	if got := countFindings(t, "fixture/hot", src2, lint.HotPathAlloc); got != 1 {
		t.Errorf("control case drew %d findings, want 1", got)
	}
}

// TestAllowMalformedDirectives: an allow with no analyzer name, or only
// a reason, suppresses nothing — and does not crash the index.
func TestAllowMalformedDirectives(t *testing.T) {
	src := `package p
import "time"
func f() int64 { return time.Now().Unix() } //uslint:allow
func g() int64 { return time.Now().Unix() } //uslint:allow -- reason but no analyzer
func h() int64 { return time.Now().Unix() } //uslint:allow , -- empty list
`
	if got := countFindings(t, expPath, src, lint.DetOrder); got != 3 {
		t.Errorf("malformed allows suppressed findings: got %d, want 3", got)
	}
}
