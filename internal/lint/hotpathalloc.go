package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc flags heap-allocating constructs inside functions declared
// //uslint:hotpath and inside their statically resolvable callees. PR 1
// made the engine's per-cycle path (completions → forward → execute →
// memoryPhase → recover → retire → fetch) allocation-free; this analyzer
// keeps it that way mechanically.
//
// Flagged constructs:
//   - make, new and append (append may grow its backing array)
//   - address-taken composite literals (&T{...}) and slice/map literals
//   - string concatenation and string<->[]byte/[]rune conversions
//   - fmt formatting calls (Sprintf, Errorf, ...)
//   - closures that capture enclosing variables, and goroutine launches
//
// Several hot-path sites allocate deliberately — amortized scratch growth,
// cold error returns — and carry line-level `//uslint:allow hotpathalloc`
// escapes with their justification. A doc-level allow on a function stops
// the callee traversal at that function entirely.
var HotPathAlloc = &Analyzer{
	Name: hotPathAllocName,
	Doc:  "flag heap allocations in //uslint:hotpath functions and their callees",
	Run:  runHotPathAlloc,
}

// fmtAllocFuncs are fmt entry points that always allocate their result.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

// hotFuncs computes (once) the set of functions the hot-path contract
// covers: every //uslint:hotpath root plus the transitive closure of
// statically resolved callees, stopping at functions whose declaration
// carries a doc-level allow.
func (p *Program) hotFuncs() map[*types.Func]bool {
	if p.hotOnce {
		return p.hotSet
	}
	p.hotOnce = true
	p.hotSet = make(map[*types.Func]bool)
	var queue []*types.Func
	for obj, fi := range p.funcs {
		if fi.Hotpath {
			p.hotSet[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		fi := p.funcs[obj]
		if fi == nil {
			continue
		}
		for _, callee := range fi.Callees {
			cf := p.funcs[callee]
			if cf == nil || cf.Allowed[hotPathAllocName] || p.hotSet[callee] {
				continue
			}
			p.hotSet[callee] = true
			queue = append(queue, callee)
		}
	}
	return p.hotSet
}

func runHotPathAlloc(p *Program, pkg *Package) []Diagnostic {
	hot := p.hotFuncs()
	var out []Diagnostic
	for obj, fi := range p.funcs {
		if fi.Pkg != pkg || !hot[obj] || fi.Decl.Body == nil {
			continue
		}
		out = append(out, checkAllocs(p, pkg, fi)...)
	}
	return out
}

// checkAllocs walks one hot function's body and reports allocation sites.
func checkAllocs(p *Program, pkg *Package, fi *FuncInfo) []Diagnostic {
	var out []Diagnostic
	name := fi.Obj.Name()
	add := func(pos token.Pos, format string, args ...any) {
		args = append(args, name)
		out = append(out, report(p, hotPathAllocName, pos, format+" in hot-path function %s", args...))
	}
	info := pkg.Info

	// Address-taken composite literals get one finding at the & operator.
	addrTaken := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := u.X.(*ast.CompositeLit); ok {
				addrTaken[cl] = true
			}
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(info, n, add)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal allocates")
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			default:
				if addrTaken[n] {
					add(n.Pos(), "address-taken composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := info.Types[n]
				if tv.Value == nil && tv.Type != nil && isString(tv.Type) {
					add(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, n, fi.Decl); capt != "" {
				add(n.Pos(), "closure capturing %q may allocate", capt)
			}
			return false // the literal's own body is not the hot function's
		case *ast.GoStmt:
			add(n.Pos(), "goroutine launch allocates")
		}
		return true
	})
	return out
}

// checkCall reports allocating calls (builtins, fmt formatting, and
// copying string conversions).
func checkCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				add(call.Pos(), "append may grow its backing array")
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if fpkg := fn.Pkg(); fpkg != nil && fpkg.Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
				add(call.Pos(), "fmt."+fn.Name()+" allocates")
				return
			}
		}
	}
	// Conversions: string <-> []byte / []rune copy their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if src != nil && isStringByteConv(dst, src) {
			add(call.Pos(), "string/byte-slice conversion allocates")
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isStringByteConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isString(src))
}

// capturedVar returns the name of a variable the function literal
// captures from its enclosing function, or "" if it captures nothing.
// Package-level objects are shared state, not captures.
func capturedVar(info *types.Info, lit *ast.FuncLit, encl *ast.FuncDecl) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		// Declared inside the enclosing function but outside the literal.
		if pos >= encl.Pos() && pos <= encl.End() && (pos < lit.Pos() || pos > lit.End()) {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}
