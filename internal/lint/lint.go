// Package lint is a custom static-analysis suite that locks in the
// invariants earlier PRs established by hand: the engine's per-cycle
// path stays allocation-free (hotpathalloc), experiment sweeps stay
// deterministic (detorder), vlsi formulas take technology numbers from
// vlsi.Tech (techonly), cancellation flows through explicit contexts
// (ctxflow), durable artifacts are written crash-atomically
// (atomicwrite), and SoA bitmaps are mutated only through the bitvec
// primitives (bitvecsafe). A compiler-backed verifier (escapecheck,
// escape.go) cross-checks hotpathalloc's AST approximation against the
// Go compiler's own escape analysis.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) but is built on the standard library
// only — go/parser, go/types and the source importer — because the
// build environment is hermetic. Packages are enumerated with
// `go list -json` and type-checked from source, so analyzers see full
// type information including cross-package function objects.
//
// Directives (comments, in the source under analysis):
//
//	//uslint:hotpath
//	    On a function declaration's doc comment: the function is a
//	    hot-path root. hotpathalloc checks it and every statically
//	    resolvable callee for heap allocations.
//
//	//uslint:allow <analyzer>[,<analyzer>...] [-- reason]
//	    Suppresses the named analyzers (comma-separated when one line
//	    draws findings from several). Placement decides scope: in a
//	    file's header (before the package clause) it exempts the whole
//	    file; in a function declaration's doc comment it exempts the
//	    function (and stops hotpathalloc's callee traversal there);
//	    trailing on a line, or alone on the line above, it exempts that
//	    line. The reason is required by convention: an allow is a
//	    reviewed, justified escape, not an off switch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string

	pos token.Pos // for suppression scoping
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives the whole program (for
// cross-package analyses like the hot-path callee traversal) and the
// package whose declarations it should report on; diagnostics it returns
// for other packages are dropped, so each finding is reported exactly
// once, by its defining package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, pkg *Package) []Diagnostic
}

// All returns the uslint analyzer suite. The escapecheck verifier is
// not an Analyzer — it shells out to the compiler and can fail — and
// runs separately via EscapeCheck.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, DetOrder, TechOnly, CtxFlow, AtomicWrite, BitvecSafe}
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncInfo is a function declaration with its lint-relevant metadata.
type FuncInfo struct {
	Pkg     *Package
	Decl    *ast.FuncDecl
	Obj     *types.Func
	Hotpath bool            // declared //uslint:hotpath
	Allowed map[string]bool // analyzers allowed (doc-level //uslint:allow)
	Callees []*types.Func   // statically resolved calls, deduplicated
}

// fileDirectives records //uslint:allow scopes for one file.
type fileDirectives struct {
	fileAllow map[string]bool
	lineAllow map[int]map[string]bool
}

// Program is the full set of packages under analysis plus the global
// function index the cross-package analyses need.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// Dir and Patterns record how Load enumerated the program; the
	// escapecheck verifier reruns the compiler with the same view.
	// Both are empty for fixture programs assembled with NewProgram.
	Dir      string
	Patterns []string

	funcs map[*types.Func]*FuncInfo
	dirs  map[string]*fileDirectives // keyed by filename

	hotOnce bool
	hotSet  map[*types.Func]bool
}

// NewProgram indexes already-type-checked packages. Load is the usual
// entry point; NewProgram exists so tests can assemble fixture programs
// directly.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	p := &Program{
		Fset:  fset,
		Pkgs:  pkgs,
		funcs: make(map[*types.Func]*FuncInfo),
		dirs:  make(map[string]*fileDirectives),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			p.indexDirectives(f)
			p.indexFuncs(pkg, f)
		}
	}
	return p
}

// directive parses one "//uslint:<verb> args" comment; ok is false for
// ordinary comments.
func directive(c *ast.Comment) (verb, args string, ok bool) {
	const prefix = "//uslint:"
	if !strings.HasPrefix(c.Text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	verb, args, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(args), true
}

// allowNames extracts the analyzer names from an allow directive's
// arguments — a comma-separated list — dropping the "-- reason" tail.
func allowNames(args string) []string {
	list, _, _ := strings.Cut(args, "--")
	var out []string
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// codeLines records which lines of a file contain non-comment tokens, so
// the directive index can tell a trailing allow (code on its line) from
// a standalone line-above allow (comment alone on the line).
func (p *Program) codeLines(f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if n.Pos().IsValid() {
			lines[p.Fset.Position(n.Pos()).Line] = true
		}
		if n.End().IsValid() {
			lines[p.Fset.Position(n.End()-1).Line] = true
		}
		return true
	})
	return lines
}

func (p *Program) indexDirectives(f *ast.File) {
	tf := p.Fset.File(f.Pos())
	if tf == nil {
		return
	}
	d := p.dirs[tf.Name()]
	if d == nil {
		d = &fileDirectives{
			fileAllow: make(map[string]bool),
			lineAllow: make(map[int]map[string]bool),
		}
		p.dirs[tf.Name()] = d
	}
	pkgLine := p.Fset.Position(f.Package).Line
	code := p.codeLines(f)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			verb, args, ok := directive(c)
			if !ok || verb != "allow" {
				continue
			}
			names := allowNames(args)
			if len(names) == 0 {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			switch {
			case line < pkgLine:
				for _, name := range names {
					d.fileAllow[name] = true
				}
				continue
			case code[line]:
				// Trailing comment: exempts exactly its own line.
			default:
				// Standalone comment: exempts the line below it.
				line++
			}
			if d.lineAllow[line] == nil {
				d.lineAllow[line] = make(map[string]bool)
			}
			for _, name := range names {
				d.lineAllow[line][name] = true
			}
		}
	}
}

func (p *Program) indexFuncs(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		fi := &FuncInfo{Pkg: pkg, Decl: fd, Obj: obj, Allowed: make(map[string]bool)}
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				verb, args, ok := directive(c)
				if !ok {
					continue
				}
				switch verb {
				case "hotpath":
					fi.Hotpath = true
				case "allow":
					for _, name := range allowNames(args) {
						fi.Allowed[name] = true
					}
				}
			}
		}
		fi.Callees = p.callees(pkg, fd)
		p.funcs[obj] = fi
	}
}

// callees statically resolves the functions fd calls: direct calls and
// concrete method calls. Interface dispatch and function values cannot be
// resolved without whole-program pointer analysis and are skipped; the
// engine's hot path keeps those behind configuration, not per-cycle work.
func (p *Program) callees(pkg *Package, fd *ast.FuncDecl) []*types.Func {
	if fd.Body == nil {
		return nil
	}
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// FuncOf returns the indexed declaration for a function object, or nil.
func (p *Program) FuncOf(obj *types.Func) *FuncInfo { return p.funcs[obj] }

// suppressed reports whether an allow directive covers the diagnostic.
func (p *Program) suppressed(d Diagnostic) bool {
	fd := p.dirs[d.Pos.Filename]
	if fd == nil {
		return false
	}
	if fd.fileAllow[d.Analyzer] {
		return true
	}
	if fd.lineAllow[d.Pos.Line][d.Analyzer] {
		return true
	}
	return p.funcAllowed(d.Analyzer, d.pos)
}

// funcAllowed reports whether the enclosing function declaration at pos
// carries a doc-level allow for the analyzer.
func (p *Program) funcAllowed(analyzer string, pos token.Pos) bool {
	for _, fi := range p.funcs {
		if fi.Allowed[analyzer] && fi.Decl.Pos() <= pos && pos <= fi.Decl.End() {
			return true
		}
	}
	return false
}

// Lint runs the analyzers over every package, applies the allow
// directives, and returns the surviving diagnostics in file/line order.
func (p *Program) Lint(analyzers ...*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, az := range analyzers {
		for _, pkg := range p.Pkgs {
			for _, d := range az.Run(p, pkg) {
				if !p.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// report builds a Diagnostic at an AST node.
func report(p *Program, az string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: az,
		Message:  fmt.Sprintf(format, args...),
		pos:      pos,
	}
}

// Analyzer name constants, usable from the run functions without
// creating package-initialization cycles.
const (
	hotPathAllocName = "hotpathalloc"
	detOrderName     = "detorder"
	techOnlyName     = "techonly"
	ctxFlowName      = "ctxflow"
	atomicWriteName  = "atomicwrite"
	bitvecSafeName   = "bitvecsafe"
	escapeCheckName  = "escapecheck"
)
