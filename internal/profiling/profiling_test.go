package profiling

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// setFlags points the package flags at the given paths for one test and
// restores them afterwards.
func setFlags(t *testing.T, cpu, mem string) {
	t.Helper()
	oldCPU, oldMem := *cpuprofile, *memprofile
	*cpuprofile, *memprofile = cpu, mem
	t.Cleanup(func() { *cpuprofile, *memprofile = oldCPU, oldMem })
}

// setContentionFlags does the same for the block/mutex profile flags and
// restores the runtime sampling rates they enable.
func setContentionFlags(t *testing.T, block, mutex string) {
	t.Helper()
	oldBlock, oldMutex := *blockprofile, *mutexprofile
	*blockprofile, *mutexprofile = block, mutex
	t.Cleanup(func() {
		*blockprofile, *mutexprofile = oldBlock, oldMutex
		runtime.SetBlockProfileRate(0)
		runtime.SetMutexProfileFraction(0)
	})
}

// TestStartWithoutFlags: with neither flag set, Start is a no-op that
// still hands back a callable stop.
func TestStartWithoutFlags(t *testing.T) {
	setFlags(t, "", "")
	stop, err := Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if stop == nil {
		t.Fatal("Start returned a nil stop function")
	}
	stop()
}

// TestCPUProfileLifecycle: Start creates the profile file, stop
// finalizes it with content.
func TestCPUProfileLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	setFlags(t, path, "")
	stop, err := Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("profile file not created while running: %v", err)
	}
	stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile file missing after stop: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("stop left an empty CPU profile")
	}
}

// TestDoubleStart: a second Start while CPU profiling is active must
// fail (the runtime supports one profile at a time), and profiling must
// work again after the first stop.
func TestDoubleStart(t *testing.T) {
	dir := t.TempDir()
	setFlags(t, filepath.Join(dir, "first.out"), "")
	stop, err := Start()
	if err != nil {
		t.Fatalf("first Start: %v", err)
	}
	*cpuprofile = filepath.Join(dir, "second.out")
	if _, err := Start(); err == nil {
		t.Fatal("second Start while profiling succeeded, want error")
	}
	stop()
	*cpuprofile = filepath.Join(dir, "third.out")
	stop, err = Start()
	if err != nil {
		t.Fatalf("Start after stop: %v", err)
	}
	stop()
}

// TestBlockAndMutexProfiles: -blockprofile/-mutexprofile enable runtime
// sampling in Start and dump both profiles on stop. The workload below
// manufactures the channel blocking and lock contention that the parallel
// sweep pool exhibits under load.
func TestBlockAndMutexProfiles(t *testing.T) {
	dir := t.TempDir()
	blockPath := filepath.Join(dir, "block.out")
	mutexPath := filepath.Join(dir, "mutex.out")
	setFlags(t, "", "")
	setContentionFlags(t, blockPath, mutexPath)
	stop, err := Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}

	var mu sync.Mutex
	ch := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch // channel block
			for j := 0; j < 200; j++ {
				mu.Lock()
				for k := 0; k < 500; k++ {
					_ = k
				}
				mu.Unlock()
			}
		}()
	}
	close(ch)
	wg.Wait()

	stop()
	for _, path := range []string{blockPath, mutexPath} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile missing after stop: %v", err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s: stop wrote an empty profile", filepath.Base(path))
		}
	}
}

// TestMemProfileOnStop: the heap profile is written by stop, not Start.
func TestMemProfileOnStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.out")
	setFlags(t, "", path)
	stop, err := Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("heap profile exists before stop (err=%v)", err)
	}
	stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("heap profile missing after stop: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("stop wrote an empty heap profile")
	}
}
