// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the command-line tools so engine hot-path regressions can be
// diagnosed with go tool pprof:
//
//	usrepro -cpuprofile cpu.out && go tool pprof cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexprofile = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
)

// Start begins CPU profiling when -cpuprofile was given and enables
// block/mutex sampling when -blockprofile / -mutexprofile were given
// (sampling has runtime cost, so it stays off unless requested — it
// matters for diagnosing worker-pool contention in parallel sweeps). The
// returned stop function ends the CPU profile and writes the requested
// exit-time profiles; call it on the way out of main (note that a stop
// skipped by os.Exit simply loses the profiles). Call after flag.Parse.
func Start() (stop func(), err error) {
	var cpuFile *os.File
	if *cpuprofile != "" {
		cpuFile, err = os.Create(*cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
		writeLookup("block", *blockprofile)
		writeLookup("mutex", *mutexprofile)
	}, nil
}

// writeLookup dumps one of the runtime's named pprof profiles.
func writeLookup(name, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
	}
}
