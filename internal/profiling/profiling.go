// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the command-line tools so engine hot-path regressions can be
// diagnosed with go tool pprof:
//
//	usrepro -cpuprofile cpu.out && go tool pprof cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

// Start begins CPU profiling when -cpuprofile was given. The returned
// stop function ends the CPU profile and, when -memprofile was given,
// writes the heap profile; call it on the way out of main (note that a
// stop skipped by os.Exit simply loses the profiles). Call after
// flag.Parse.
func Start() (stop func(), err error) {
	var cpuFile *os.File
	if *cpuprofile != "" {
		cpuFile, err = os.Create(*cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
