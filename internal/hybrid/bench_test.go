package hybrid

import (
	"fmt"
	"testing"

	"ultrascalar/internal/workload"
)

// BenchmarkRun measures the hybrid configuration — cluster-grained
// refill, the paper's Ultrascalar II clusters on a CSPP H-tree — through
// this package's entry point, reporting ns per simulated cycle. The
// cluster size sweep at fixed n exercises the engine's granularity-group
// drain bookkeeping at the three refill regimes between per-station and
// whole-window (the paper's C = Θ(L) sits in the middle).
func BenchmarkRun(b *testing.B) {
	const n = 256
	for _, c := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			ws := workload.Kernels()
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := ws[i%len(ws)]
				res, err := Run(w.Prog, w.Mem(), n, c)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			if cycles > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
			}
		})
	}
}
