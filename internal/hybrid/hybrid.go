// Package hybrid defines the hybrid Ultrascalar processor (paper Section
// 6): clusters of C stations, each an Ultrascalar II grid extended with
// modified-bit OR trees, connected by the Ultrascalar I CSPP H-tree.
// "Each cluster behaves just like an execution station in the
// Ultrascalar I."
//
// Characteristics (paper Figure 11, with linear-gate clusters and
// C = Θ(L)):
//
//	gate delay  Θ(L + log n)
//	wire delay  Θ(√(nL) + M(n))   — optimal for n ≥ L
//	area        Θ(nL + M(n)²)
//
// The hybrid dominates both other processors for n ≥ L.
package hybrid

import (
	"ultrascalar/internal/core"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
)

// Name identifies the architecture in reports.
const Name = "Hybrid Ultrascalar"

// EngineConfig returns the cycle-engine configuration of an n-station
// hybrid with clusters of c stations: cluster-grained refill.
func EngineConfig(n, c int) core.Config {
	return core.Config{Window: n, Granularity: c}
}

// Run executes prog on an n-station hybrid with cluster size c and
// otherwise default parameters.
func Run(prog []isa.Inst, mem *memory.Flat, n, c int) (*core.Result, error) {
	return core.Run(prog, mem, EngineConfig(n, c))
}

// Model returns the physical model. The paper's choice of cluster size is
// C = L ("it is not a coincidence that C = L"); pass c accordingly or use
// vlsi.OptimalClusterSize to sweep.
func Model(n, c, l, w int, m memory.MFunc, t vlsi.Tech) (*vlsi.Model, error) {
	return vlsi.HybridModel(n, c, l, w, m, t, vlsi.Ultra2Linear)
}
