package hybrid

import (
	"testing"

	"ultrascalar/internal/core"
	"ultrascalar/internal/fault"

	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/ultra2"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

func TestRunMatchesGolden(t *testing.T) {
	w := workload.VecSum(30)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(w.Prog, w.Mem(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Regs[3] != want.Regs[3] {
		t.Errorf("r3 = %d, want %d", got.Regs[3], want.Regs[3])
	}
}

func TestBetweenTheTwo(t *testing.T) {
	// Cluster-grained refill costs at most what batch refill costs and at
	// least what per-station refill costs.
	w := workload.DotProduct(40)
	u1, err := ultra1.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Run(w.Prog, w.Mem(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ultra2.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(u1.Stats.Cycles <= hy.Stats.Cycles && hy.Stats.Cycles <= u2.Stats.Cycles) {
		t.Errorf("cycles should order %d <= %d <= %d", u1.Stats.Cycles, hy.Stats.Cycles, u2.Stats.Cycles)
	}
}

func TestClusterOneIsUltraI(t *testing.T) {
	// A hybrid with C=1 is exactly an Ultrascalar I.
	w := workload.MixedILP(200, 16, 8, 5)
	a, err := Run(w.Prog, w.Mem(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ultra1.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Retired != b.Stats.Retired {
		t.Errorf("hybrid C=1 (%+v cycles) != UltraI (%+v cycles)", a.Stats.Cycles, b.Stats.Cycles)
	}
}

func TestClusterNIsUltraII(t *testing.T) {
	// A hybrid with C=n is exactly an Ultrascalar II.
	w := workload.MixedILP(200, 16, 8, 6)
	a, err := Run(w.Prog, w.Mem(), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ultra2.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("hybrid C=n (%d cycles) != UltraII (%d cycles)", a.Stats.Cycles, b.Stats.Cycles)
	}
}

func TestEngineConfig(t *testing.T) {
	cfg := EngineConfig(32, 8)
	if cfg.Window != 32 || cfg.Granularity != 8 {
		t.Errorf("config %+v", cfg)
	}
}

func TestModel(t *testing.T) {
	md, err := Model(128, 32, 32, 32, memory.MConst(1), vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if md.N != 128 || md.AreaL2() <= 0 {
		t.Errorf("bad model %+v", md)
	}
	if Name == "" {
		t.Error("name empty")
	}
}

// TestFaultRecovery: faults injected under cluster refill (g=C) are
// detected by the golden checker and repaired across cluster
// boundaries, so the architectural result still matches the reference
// run.
func TestFaultRecovery(t *testing.T) {
	w := workload.Fib(12)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for seed := int64(1); seed <= 20; seed++ {
		plan := fault.NewPlan(seed, fault.GenParams{
			Window: 16, NumRegs: 32, MaxCycle: 130, N: 3,
		})
		var log fault.Log
		cfg := EngineConfig(16, 4)
		cfg.FaultPlan, cfg.FaultDetect, cfg.FaultLog = plan, fault.DetectGolden, &log
		got, err := core.Run(w.Prog, w.Mem(), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for r := range want.Regs {
			if got.Regs[r] != want.Regs[r] {
				t.Fatalf("seed %d: r%d = %d, want %d", seed, r, got.Regs[r], want.Regs[r])
			}
		}
		if !got.Mem.Equal(want.Mem) {
			t.Fatalf("seed %d: memory diverged from golden", seed)
		}
		if log.Detected != log.Recovered {
			t.Fatalf("seed %d: detected %d, recovered %d", seed, log.Detected, log.Recovered)
		}
		detected += log.Detected
	}
	if detected == 0 {
		t.Error("no fault was ever detected; injection is not reaching live state")
	}
}
