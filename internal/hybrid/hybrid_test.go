package hybrid

import (
	"testing"

	"ultrascalar/internal/memory"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/ultra2"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

func TestRunMatchesGolden(t *testing.T) {
	w := workload.VecSum(30)
	want, err := ref.Run(w.Prog, w.Mem(), ref.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(w.Prog, w.Mem(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Regs[3] != want.Regs[3] {
		t.Errorf("r3 = %d, want %d", got.Regs[3], want.Regs[3])
	}
}

func TestBetweenTheTwo(t *testing.T) {
	// Cluster-grained refill costs at most what batch refill costs and at
	// least what per-station refill costs.
	w := workload.DotProduct(40)
	u1, err := ultra1.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Run(w.Prog, w.Mem(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ultra2.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(u1.Stats.Cycles <= hy.Stats.Cycles && hy.Stats.Cycles <= u2.Stats.Cycles) {
		t.Errorf("cycles should order %d <= %d <= %d", u1.Stats.Cycles, hy.Stats.Cycles, u2.Stats.Cycles)
	}
}

func TestClusterOneIsUltraI(t *testing.T) {
	// A hybrid with C=1 is exactly an Ultrascalar I.
	w := workload.MixedILP(200, 16, 8, 5)
	a, err := Run(w.Prog, w.Mem(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ultra1.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Retired != b.Stats.Retired {
		t.Errorf("hybrid C=1 (%+v cycles) != UltraI (%+v cycles)", a.Stats.Cycles, b.Stats.Cycles)
	}
}

func TestClusterNIsUltraII(t *testing.T) {
	// A hybrid with C=n is exactly an Ultrascalar II.
	w := workload.MixedILP(200, 16, 8, 6)
	a, err := Run(w.Prog, w.Mem(), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ultra2.Run(w.Prog, w.Mem(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("hybrid C=n (%d cycles) != UltraII (%d cycles)", a.Stats.Cycles, b.Stats.Cycles)
	}
}

func TestEngineConfig(t *testing.T) {
	cfg := EngineConfig(32, 8)
	if cfg.Window != 32 || cfg.Granularity != 8 {
		t.Errorf("config %+v", cfg)
	}
}

func TestModel(t *testing.T) {
	md, err := Model(128, 32, 32, 32, memory.MConst(1), vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if md.N != 128 || md.AreaL2() <= 0 {
		t.Errorf("bad model %+v", md)
	}
	if Name == "" {
		t.Error("name empty")
	}
}
