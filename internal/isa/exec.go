package isa

// ALU semantics shared by the golden interpreter and all processor
// simulators, so that every engine computes results from exactly one
// definition.

// ALUOp computes the result of a non-memory, non-control instruction given
// its (up to two) source operand values. For I-type instructions b is
// ignored and the immediate is used. ALUOp also serves jumps (the link
// value is computed by the caller from the PC). It panics for memory,
// branch and system operations, which do not produce an ALU value.
//
// Division follows the RISC-V convention: division by zero yields all ones
// for DIV and the dividend for REM; signed overflow (MinInt32 / -1) yields
// MinInt32 and remainder 0.
func ALUOp(in Inst, a, b Word) Word {
	imm := Word(in.Imm)
	switch in.Op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return divW(a, b)
	case OpRem:
		return remW(a, b)
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpSll:
		return a << (b & 31)
	case OpSrl:
		return a >> (b & 31)
	case OpSra:
		return Word(int32(a) >> (b & 31))
	case OpSlt:
		return boolW(int32(a) < int32(b))
	case OpSltu:
		return boolW(a < b)
	case OpAddi:
		return a + imm
	case OpAndi:
		return a & imm
	case OpOri:
		return a | imm
	case OpXori:
		return a ^ imm
	case OpSlli:
		return a << (imm & 31)
	case OpSrli:
		return a >> (imm & 31)
	case OpSrai:
		return Word(int32(a) >> (imm & 31))
	case OpSlti:
		return boolW(int32(a) < in.Imm)
	case OpLui:
		return (a & 0xFFFF) | imm<<16
	case OpLi:
		return imm
	case OpNop:
		return 0
	default:
		panic("isa.ALUOp: not an ALU operation: " + in.String()) //uslint:allow hotpathalloc -- cold panic path
	}
}

// BranchTaken evaluates a conditional branch given its two source values.
func BranchTaken(in Inst, a, b Word) bool {
	switch in.Op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int32(a) < int32(b)
	case OpBge:
		return int32(a) >= int32(b)
	default:
		panic("isa.BranchTaken: not a branch: " + in.String()) //uslint:allow hotpathalloc -- cold panic path
	}
}

// NextPC computes the successor program counter of the instruction at pc
// given its source operand values. For conditional branches the outcome is
// evaluated from the operands; for jumps the target is computed; otherwise
// the successor is pc+1.
func NextPC(in Inst, pc int, a, b Word) int {
	switch {
	case in.IsBranch():
		if BranchTaken(in, a, b) {
			return pc + 1 + int(in.Imm)
		}
		return pc + 1
	case in.Op == OpJal:
		return pc + 1 + int(in.Imm)
	case in.Op == OpJalr:
		return int(a + Word(in.Imm))
	default:
		return pc + 1
	}
}

// EffAddr computes the effective (word) address of a memory instruction.
func EffAddr(in Inst, base Word) Word {
	return base + Word(in.Imm)
}

func divW(a, b Word) Word {
	if b == 0 {
		return ^Word(0)
	}
	ia, ib := int32(a), int32(b)
	if ia == -1<<31 && ib == -1 {
		return a
	}
	return Word(ia / ib)
}

func remW(a, b Word) Word {
	if b == 0 {
		return a
	}
	ia, ib := int32(a), int32(b)
	if ia == -1<<31 && ib == -1 {
		return 0
	}
	return Word(ia % ib)
}

func boolW(b bool) Word {
	if b {
		return 1
	}
	return 0
}
