package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		if o.String() == "" {
			t.Errorf("op %d has empty name", o)
		}
		if !o.Valid() {
			t.Errorf("op %d should be valid", o)
		}
	}
	if Op(numOps).Valid() {
		t.Error("numOps should be invalid")
	}
}

// TestISAContract verifies the paper's datapath constraint: every
// instruction reads at most two registers and writes at most one.
func TestISAContract(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		in := Inst{Op: o, Rd: 1, Rs1: 2, Rs2: 3}
		if got := len(in.Reads()); got > 2 {
			t.Errorf("%s reads %d registers, want <= 2", o, got)
		}
		// Writes returns at most one by type; just exercise it.
		in.Writes()
	}
}

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		op                              Op
		branch, jump, load, store, halt bool
	}{
		{OpAdd, false, false, false, false, false},
		{OpBeq, true, false, false, false, false},
		{OpBge, true, false, false, false, false},
		{OpJal, false, true, false, false, false},
		{OpJalr, false, true, false, false, false},
		{OpLw, false, false, true, false, false},
		{OpSw, false, false, false, true, false},
		{OpHalt, false, false, false, false, true},
	}
	for _, c := range cases {
		in := Inst{Op: c.op}
		if in.IsBranch() != c.branch || in.IsJump() != c.jump ||
			in.IsLoad() != c.load || in.IsStore() != c.store || in.IsHalt() != c.halt {
			t.Errorf("%s: predicate mismatch", c.op)
		}
		if in.IsMem() != (c.load || c.store) {
			t.Errorf("%s: IsMem mismatch", c.op)
		}
		if in.ChangesFlow() != (c.branch || c.jump) {
			t.Errorf("%s: ChangesFlow mismatch", c.op)
		}
	}
}

func TestReadsWrites(t *testing.T) {
	add := Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}
	if r := add.Reads(); len(r) != 2 || r[0] != 2 || r[1] != 3 {
		t.Errorf("add reads %v", r)
	}
	if d, ok := add.Writes(); !ok || d != 1 {
		t.Errorf("add writes %d %v", d, ok)
	}
	sw := Inst{Op: OpSw, Rs1: 4, Rs2: 5}
	if r := sw.Reads(); len(r) != 2 || r[0] != 4 || r[1] != 5 {
		t.Errorf("sw reads %v", r)
	}
	if _, ok := sw.Writes(); ok {
		t.Error("sw should not write a register")
	}
	li := Inst{Op: OpLi, Rd: 7, Imm: -5}
	if r := li.Reads(); len(r) != 0 {
		t.Errorf("li reads %v", r)
	}
	beq := Inst{Op: OpBeq, Rs1: 1, Rs2: 1, Imm: 4}
	if _, ok := beq.Writes(); ok {
		t.Error("beq should not write")
	}
}

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	// Paper, Figure 3: "division takes 10 clock cycles, multiplication 3,
	// and addition 1."
	if got := l.Of(Inst{Op: OpDiv}); got != 10 {
		t.Errorf("div latency = %d, want 10", got)
	}
	if got := l.Of(Inst{Op: OpRem}); got != 10 {
		t.Errorf("rem latency = %d, want 10", got)
	}
	if got := l.Of(Inst{Op: OpMul}); got != 3 {
		t.Errorf("mul latency = %d, want 3", got)
	}
	if got := l.Of(Inst{Op: OpAdd}); got != 1 {
		t.Errorf("add latency = %d, want 1", got)
	}
	if got := l.Of(Inst{Op: OpLw}); got != l.Load {
		t.Errorf("lw latency = %d", got)
	}
	if got := l.Of(Inst{Op: OpBeq}); got != l.Branch {
		t.Errorf("beq latency = %d", got)
	}
	if got := l.Of(Inst{Op: OpSw}); got != l.Store {
		t.Errorf("sw latency = %d", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	progs := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAddi, Rd: 31, Rs1: 0, Imm: -32768},
		{Op: OpAddi, Rd: 0, Rs1: 31, Imm: 32767},
		{Op: OpLw, Rd: 4, Rs1: 5, Imm: 16},
		{Op: OpSw, Rs1: 6, Rs2: 7, Imm: -4},
		{Op: OpBeq, Rs1: 8, Rs2: 9, Imm: -100},
		{Op: OpLi, Rd: 10, Imm: -(1 << 20)},
		{Op: OpLi, Rd: 10, Imm: 1<<20 - 1},
		{Op: OpJal, Rd: 31, Imm: 1000},
		{Op: OpJalr, Rd: 1, Rs1: 2, Imm: 0},
		{Op: OpHalt},
		{Op: OpNop},
		{Op: OpLui, Rd: 3, Rs1: 3, Imm: 0x7ABC},
	}
	for _, in := range progs {
		w := Encode(in)
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %s: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip %s -> %#08x -> %s", in, w, got)
		}
	}
	enc := EncodeProgram(progs)
	dec, err := DecodeProgram(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range progs {
		if dec[i] != progs[i] {
			t.Errorf("program round trip at %d: %s != %s", i, dec[i], progs[i])
		}
	}
}

// TestEncodeDecodeQuick round-trips random valid instructions.
func TestEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInst(rng)
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func randomInst(rng *rand.Rand) Inst {
	op := Op(rng.Intn(int(numOps)))
	in := Inst{Op: op}
	switch FormatOf(op) {
	case FormatR:
		in.Rd = uint8(rng.Intn(MaxRegs))
		in.Rs1 = uint8(rng.Intn(MaxRegs))
		in.Rs2 = uint8(rng.Intn(MaxRegs))
	case FormatI:
		in.Rd = uint8(rng.Intn(MaxRegs))
		in.Rs1 = uint8(rng.Intn(MaxRegs))
		in.Imm = int32(rng.Intn(1<<16)) - 1<<15
	case FormatB:
		in.Rs1 = uint8(rng.Intn(MaxRegs))
		in.Rs2 = uint8(rng.Intn(MaxRegs))
		in.Imm = int32(rng.Intn(1<<16)) - 1<<15
	case FormatJ:
		in.Rd = uint8(rng.Intn(MaxRegs))
		in.Imm = int32(rng.Intn(1<<21)) - 1<<20
	}
	return in
}

func TestDecodeInvalid(t *testing.T) {
	if _, err := Decode(Word(numOps) << opShift); err == nil {
		t.Error("expected error for invalid opcode")
	}
	if _, err := DecodeProgram([]Word{0, ^Word(0)}); err == nil {
		t.Error("expected error for invalid program word")
	}
}

func TestValidate(t *testing.T) {
	bad := []Inst{
		{Op: numOps},
		{Op: OpAddi, Imm: 1 << 15},
		{Op: OpAddi, Imm: -(1<<15 + 1)},
		{Op: OpLi, Imm: 1 << 20},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%v) should fail", in)
		}
	}
	if err := (Inst{Op: OpAdd, Rd: 31, Rs1: 31, Rs2: 31}).Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Encode of invalid inst should panic")
		}
	}()
	Encode(Inst{Op: OpAddi, Imm: 1 << 15})
}

func TestALUOp(t *testing.T) {
	cases := []struct {
		in   Inst
		a, b Word
		want Word
	}{
		{Inst{Op: OpAdd}, 3, 4, 7},
		{Inst{Op: OpSub}, 3, 4, ^Word(0)},
		{Inst{Op: OpMul}, 6, 7, 42},
		{Inst{Op: OpDiv}, 42, 6, 7},
		{Inst{Op: OpDiv}, 7, 0, ^Word(0)},
		{Inst{Op: OpDiv}, Word(1 << 31), ^Word(0), 1 << 31}, // overflow
		{Inst{Op: OpRem}, 43, 6, 1},
		{Inst{Op: OpRem}, 43, 0, 43},
		{Inst{Op: OpRem}, Word(1 << 31), ^Word(0), 0},
		{Inst{Op: OpDiv}, Word(^uint32(6) + 1), 3, Word(^uint32(2) + 1)}, // -7/3 = -2 truncated
		{Inst{Op: OpAnd}, 0b1100, 0b1010, 0b1000},
		{Inst{Op: OpOr}, 0b1100, 0b1010, 0b1110},
		{Inst{Op: OpXor}, 0b1100, 0b1010, 0b0110},
		{Inst{Op: OpSll}, 1, 4, 16},
		{Inst{Op: OpSll}, 1, 36, 16}, // shift amount masked
		{Inst{Op: OpSrl}, 0x80000000, 31, 1},
		{Inst{Op: OpSra}, 0x80000000, 31, ^Word(0)},
		{Inst{Op: OpSlt}, ^Word(0), 0, 1}, // -1 < 0 signed
		{Inst{Op: OpSltu}, ^Word(0), 0, 0},
		{Inst{Op: OpAddi, Imm: -1}, 5, 0, 4},
		{Inst{Op: OpAndi, Imm: 0xF}, 0x1234, 0, 4},
		{Inst{Op: OpOri, Imm: 0xF0}, 0x0F, 0, 0xFF},
		{Inst{Op: OpXori, Imm: 0xFF}, 0x0F, 0, 0xF0},
		{Inst{Op: OpSlli, Imm: 3}, 2, 0, 16},
		{Inst{Op: OpSrli, Imm: 1}, 4, 0, 2},
		{Inst{Op: OpSrai, Imm: 1}, 0x80000000, 0, 0xC0000000},
		{Inst{Op: OpSlti, Imm: 1}, 0, 0, 1},
		{Inst{Op: OpLui, Imm: 0x1234}, 0xFFFF5678, 0, 0x12345678},
		{Inst{Op: OpLi, Imm: -7}, 0, 0, ^Word(6)},
		{Inst{Op: OpNop}, 9, 9, 0},
	}
	for _, c := range cases {
		if got := ALUOp(c.in, c.a, c.b); got != c.want {
			t.Errorf("ALUOp(%s, %#x, %#x) = %#x, want %#x", c.in.Op, c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ALUOp on a store should panic")
		}
	}()
	ALUOp(Inst{Op: OpSw}, 0, 0)
}

func TestBranchAndNextPC(t *testing.T) {
	if !BranchTaken(Inst{Op: OpBeq}, 4, 4) || BranchTaken(Inst{Op: OpBeq}, 4, 5) {
		t.Error("beq wrong")
	}
	if !BranchTaken(Inst{Op: OpBne}, 4, 5) || BranchTaken(Inst{Op: OpBne}, 4, 4) {
		t.Error("bne wrong")
	}
	if !BranchTaken(Inst{Op: OpBlt}, ^Word(0), 0) {
		t.Error("blt signed wrong")
	}
	if !BranchTaken(Inst{Op: OpBge}, 0, ^Word(0)) {
		t.Error("bge signed wrong")
	}
	// Taken branch: target = pc + 1 + imm.
	if got := NextPC(Inst{Op: OpBeq, Imm: 5}, 10, 1, 1); got != 16 {
		t.Errorf("taken beq next = %d, want 16", got)
	}
	if got := NextPC(Inst{Op: OpBeq, Imm: 5}, 10, 1, 2); got != 11 {
		t.Errorf("not-taken beq next = %d, want 11", got)
	}
	if got := NextPC(Inst{Op: OpJal, Imm: -3}, 10, 0, 0); got != 8 {
		t.Errorf("jal next = %d, want 8", got)
	}
	if got := NextPC(Inst{Op: OpJalr, Imm: 2}, 10, 40, 0); got != 42 {
		t.Errorf("jalr next = %d, want 42", got)
	}
	if got := NextPC(Inst{Op: OpAdd}, 10, 0, 0); got != 11 {
		t.Errorf("add next = %d, want 11", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("BranchTaken on add should panic")
		}
	}()
	BranchTaken(Inst{Op: OpAdd}, 0, 0)
}

func TestEffAddr(t *testing.T) {
	if got := EffAddr(Inst{Op: OpLw, Imm: -2}, 10); got != 8 {
		t.Errorf("EffAddr = %d, want 8", got)
	}
}
