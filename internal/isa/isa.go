// Package isa defines the simple RISC instruction-set architecture used by
// all three Ultrascalar processors.
//
// The ISA follows the constraints the paper imposes in Section 7: a
// register architecture with 32 32-bit logical registers (the count is
// configurable through the simulators; the encoding reserves 5 bits), no
// floating point, and every instruction reading at most two registers and
// writing at most one.
//
// There is no hardwired zero register: the paper's Figure 1 sequence uses
// R0 as an ordinary register ("R0 = R0 + R3"), and the renaming datapath
// treats every logical register uniformly. Constants are materialized with
// LI (21-bit signed immediate) and LUI/ORI pairs.
//
// Memory is word addressed: LW/SW move one 32-bit word at word address
// rs1+imm.
package isa

import "fmt"

// Word is the architectural machine word.
type Word = uint32

// NumRegs is the default number of logical registers (the paper's L for the
// empirical study: "Our architecture contains 32 32-bit logical registers").
const NumRegs = 32

// MaxRegs is the architectural ceiling implied by the 5-bit register fields.
const MaxRegs = 32

// Op enumerates the operations of the ISA.
type Op uint8

// Operation codes. The groups correspond to the encoding formats in
// encoding.go: R-type (three registers), I-type (two registers and a 16-bit
// immediate), B-type (two source registers and a branch displacement),
// J-type (one register and a 21-bit immediate), and the zero-operand system
// operations.
const (
	OpNop Op = iota

	// R-type arithmetic: Rd = Rs1 op Rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt  // signed compare, Rd = 1 if Rs1 < Rs2 else 0
	OpSltu // unsigned compare

	// I-type arithmetic: Rd = Rs1 op sext(Imm16).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui // Rd = (Rs1 & 0xFFFF) | Imm16<<16 (reads Rs1 so 32-bit constants compose)

	// J-type immediate load: Rd = sext(Imm21). Reads no registers.
	OpLi

	// Memory, word addressed.
	OpLw // Rd = Mem[Rs1+Imm16]
	OpSw // Mem[Rs1+Imm16] = Rs2 (writes no register)

	// B-type branches: displacement Imm16 is in instructions, relative to
	// the next instruction (target = PC + 1 + Imm).
	OpBeq
	OpBne
	OpBlt // signed
	OpBge // signed

	// Jumps.
	OpJal  // Rd = PC+1; PC = PC + 1 + Imm21
	OpJalr // Rd = PC+1; PC = Rs1 + Imm16

	// System.
	OpHalt

	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpSll: "sll",
	OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti",
	OpLui: "lui", OpLi: "li", OpLw: "lw", OpSw: "sw",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJal: "jal", OpJalr: "jalr", OpHalt: "halt",
}

// String returns the assembler mnemonic for the operation.
//
//uslint:allow hotpathalloc -- cold formatting, reached from the hot path only through panic messages
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Format identifies an instruction encoding format.
type Format uint8

// The encoding formats.
const (
	FormatR Format = iota // op rd rs1 rs2
	FormatI               // op rd rs1 imm16
	FormatB               // op rs1 rs2 imm16
	FormatJ               // op rd imm21
	FormatS               // op (no operands)
)

// FormatOf returns the encoding format of an operation.
func FormatOf(o Op) Format {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpSll, OpSrl, OpSra, OpSlt, OpSltu:
		return FormatR
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti,
		OpLui, OpLw, OpJalr:
		return FormatI
	case OpSw, OpBeq, OpBne, OpBlt, OpBge:
		return FormatB
	case OpLi, OpJal:
		return FormatJ
	default:
		return FormatS
	}
}

// Inst is a decoded instruction. It is the unit the assembler produces and
// the simulators consume.
type Inst struct {
	Op       Op
	Rd       uint8 // destination register (FormatR, FormatI, FormatJ)
	Rs1, Rs2 uint8 // source registers
	Imm      int32 // sign-extended immediate
}

// Reads returns the logical registers the instruction reads, in operand
// order. Every instruction in the ISA reads at most two registers (the
// paper's datapath constraint).
func (in Inst) Reads() []uint8 {
	switch FormatOf(in.Op) {
	case FormatR:
		return []uint8{in.Rs1, in.Rs2}
	case FormatI:
		return []uint8{in.Rs1}
	case FormatB:
		return []uint8{in.Rs1, in.Rs2}
	default:
		return nil
	}
}

// ReadRegs is the allocation-free form of Reads for per-cycle hot paths:
// it returns the source registers (r1, and r2 when n == 2) and the source
// count n in {0, 1, 2}, in the same order as Reads.
func (in Inst) ReadRegs() (r1, r2 uint8, n int) {
	switch FormatOf(in.Op) {
	case FormatR, FormatB:
		return in.Rs1, in.Rs2, 2
	case FormatI:
		return in.Rs1, 0, 1
	default:
		return 0, 0, 0
	}
}

// Writes returns the destination register and whether the instruction
// writes one at all. Every instruction writes at most one register.
func (in Inst) Writes() (uint8, bool) {
	switch in.Op {
	case OpSw, OpBeq, OpBne, OpBlt, OpBge, OpHalt, OpNop:
		return 0, false
	default:
		return in.Rd, true
	}
}

// IsBranch reports whether the instruction is a conditional branch.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsJump reports whether the instruction unconditionally redirects fetch.
func (in Inst) IsJump() bool { return in.Op == OpJal || in.Op == OpJalr }

// ChangesFlow reports whether the instruction can redirect fetch.
func (in Inst) ChangesFlow() bool { return in.IsBranch() || in.IsJump() }

// IsLoad reports whether the instruction reads data memory.
func (in Inst) IsLoad() bool { return in.Op == OpLw }

// IsStore reports whether the instruction writes data memory.
func (in Inst) IsStore() bool { return in.Op == OpSw }

// IsMem reports whether the instruction accesses data memory.
func (in Inst) IsMem() bool { return in.IsLoad() || in.IsStore() }

// IsHalt reports whether the instruction stops the machine.
func (in Inst) IsHalt() bool { return in.Op == OpHalt }

// String renders the instruction in assembler syntax.
//
//uslint:allow hotpathalloc -- cold formatting, reached from the hot path only through panic and error messages
func (in Inst) String() string {
	switch FormatOf(in.Op) {
	case FormatR:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FormatI:
		if in.Op == OpLw {
			return fmt.Sprintf("lw r%d, %d(r%d)", in.Rd, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case FormatB:
		if in.Op == OpSw {
			return fmt.Sprintf("sw r%d, %d(r%d)", in.Rs2, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case FormatJ:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	default:
		return in.Op.String()
	}
}

// Latencies gives the execution latency, in clock cycles, of each
// instruction class. The defaults are the constants the paper uses for its
// Figure 3 timing diagram: "We assume that division takes 10 clock cycles,
// multiplication 3, and addition 1."
type Latencies struct {
	Simple int // add/sub/logic/shift/compare/immediates/jumps
	Mul    int
	Div    int // div and rem
	Load   int // cache-hit latency (overridden when a memory model is attached)
	Store  int
	Branch int
}

// DefaultLatencies returns the paper's Figure 3 latency constants.
func DefaultLatencies() Latencies {
	return Latencies{Simple: 1, Mul: 3, Div: 10, Load: 2, Store: 1, Branch: 1}
}

// Of returns the latency of one instruction under l.
func (l Latencies) Of(in Inst) int {
	switch {
	case in.Op == OpMul:
		return l.Mul
	case in.Op == OpDiv || in.Op == OpRem:
		return l.Div
	case in.IsLoad():
		return l.Load
	case in.IsStore():
		return l.Store
	case in.IsBranch():
		return l.Branch
	default:
		return l.Simple
	}
}

// Validate checks that the instruction is well formed: defined opcode,
// register numbers within range, and immediates representable in the
// instruction's format.
func (in Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", in.Op)
	}
	if in.Rd >= MaxRegs || in.Rs1 >= MaxRegs || in.Rs2 >= MaxRegs {
		return fmt.Errorf("%s: register out of range", in)
	}
	switch FormatOf(in.Op) {
	case FormatI, FormatB:
		if in.Imm < -(1<<15) || in.Imm >= 1<<15 {
			return fmt.Errorf("%s: immediate %d does not fit in 16 bits", in, in.Imm)
		}
	case FormatJ:
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 {
			return fmt.Errorf("%s: immediate %d does not fit in 21 bits", in, in.Imm)
		}
	}
	return nil
}
