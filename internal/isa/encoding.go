package isa

import "fmt"

// Binary encoding, 32 bits per instruction:
//
//	FormatR: op[31:26] rd[25:21] rs1[20:16] rs2[15:11] 0[10:0]
//	FormatI: op[31:26] rd[25:21] rs1[20:16] imm[15:0]
//	FormatB: op[31:26] rs1[25:21] rs2[20:16] imm[15:0]
//	FormatJ: op[31:26] rd[25:21] imm[20:0]
//	FormatS: op[31:26] 0[25:0]
//
// The encoding exists so that programs can be stored in (instruction)
// memory as words and round-tripped through the assembler; the simulators
// operate on the decoded Inst form.

const (
	opShift  = 26
	rdShift  = 21
	rs1Shift = 16
	rs2Shift = 11
	regMask  = 0x1F
	imm16    = 0xFFFF
	imm21    = 0x1FFFFF
)

// Encode packs the instruction into a 32-bit word. It panics if the
// instruction fails Validate; use Validate first for untrusted input.
func Encode(in Inst) Word {
	if err := in.Validate(); err != nil {
		panic("isa.Encode: " + err.Error())
	}
	w := Word(in.Op) << opShift
	switch FormatOf(in.Op) {
	case FormatR:
		w |= Word(in.Rd) << rdShift
		w |= Word(in.Rs1) << rs1Shift
		w |= Word(in.Rs2) << rs2Shift
	case FormatI:
		w |= Word(in.Rd) << rdShift
		w |= Word(in.Rs1) << rs1Shift
		w |= Word(uint32(in.Imm) & imm16)
	case FormatB:
		w |= Word(in.Rs1) << rdShift
		w |= Word(in.Rs2) << rs1Shift
		w |= Word(uint32(in.Imm) & imm16)
	case FormatJ:
		w |= Word(in.Rd) << rdShift
		w |= Word(uint32(in.Imm) & imm21)
	}
	return w
}

// Decode unpacks a 32-bit word into an instruction.
func Decode(w Word) (Inst, error) {
	op := Op(w >> opShift)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d in word %#08x", op, w)
	}
	in := Inst{Op: op}
	switch FormatOf(op) {
	case FormatR:
		in.Rd = uint8((w >> rdShift) & regMask)
		in.Rs1 = uint8((w >> rs1Shift) & regMask)
		in.Rs2 = uint8((w >> rs2Shift) & regMask)
	case FormatI:
		in.Rd = uint8((w >> rdShift) & regMask)
		in.Rs1 = uint8((w >> rs1Shift) & regMask)
		in.Imm = signExtend(w&imm16, 16)
	case FormatB:
		in.Rs1 = uint8((w >> rdShift) & regMask)
		in.Rs2 = uint8((w >> rs1Shift) & regMask)
		in.Imm = signExtend(w&imm16, 16)
	case FormatJ:
		in.Rd = uint8((w >> rdShift) & regMask)
		in.Imm = signExtend(w&imm21, 21)
	}
	return in, nil
}

// EncodeProgram encodes a whole program.
func EncodeProgram(prog []Inst) []Word {
	out := make([]Word, len(prog))
	for i, in := range prog {
		out[i] = Encode(in)
	}
	return out
}

// DecodeProgram decodes a whole program.
func DecodeProgram(words []Word) ([]Inst, error) {
	out := make([]Inst, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}

func signExtend(v Word, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}
