package isa

import "testing"

// FuzzDecode feeds arbitrary 32-bit words to the decoder: it must either
// reject them or produce an instruction that re-encodes to a word that
// decodes identically (the decoded form is canonical; unused bits are
// dropped, so we check decode∘encode∘decode = decode).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(Encode(Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(Encode(Inst{Op: OpLw, Rd: 4, Rs1: 5, Imm: -8}))
	f.Add(Encode(Inst{Op: OpJal, Rd: 31, Imm: -(1 << 20)}))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(Word(w))
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("decoded instruction fails validation: %v", err)
		}
		again, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != in {
			t.Fatalf("decode not canonical: %v != %v (word %#x)", again, in, w)
		}
	})
}
