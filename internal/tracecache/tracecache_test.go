package tracecache

import "testing"

func TestLookupRecord(t *testing.T) {
	c := New(4, 8)
	if _, ok := c.Lookup(10); ok {
		t.Error("cold cache should miss")
	}
	c.Record([]int{10, 11, 12, 20, 21})
	tr, ok := c.Lookup(10)
	if !ok || len(tr) != 5 || tr[3] != 20 {
		t.Errorf("lookup = %v, %v", tr, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats %d/%d", hits, misses)
	}
	if c.MaxLen() != 8 {
		t.Error("maxlen wrong")
	}
}

func TestRecordTruncatesAndIgnoresShort(t *testing.T) {
	c := New(4, 3)
	c.Record([]int{1, 2, 3, 4, 5})
	tr, ok := c.Lookup(1)
	if !ok || len(tr) != 3 {
		t.Errorf("truncated trace = %v", tr)
	}
	c.Record([]int{99})
	if _, ok := c.Lookup(99); ok {
		t.Error("single-instruction trace should not be cached")
	}
}

func TestAliasingReplaces(t *testing.T) {
	c := New(2, 8) // 4 sets; heads 1 and 5 collide
	c.Record([]int{1, 2, 3})
	c.Record([]int{5, 6, 7})
	if _, ok := c.Lookup(1); ok {
		t.Error("evicted head should miss")
	}
	if tr, ok := c.Lookup(5); !ok || tr[0] != 5 {
		t.Error("new head should hit")
	}
}

func TestBuilder(t *testing.T) {
	c := New(4, 4)
	b := NewBuilder(c)
	for pc := 0; pc < 4; pc++ {
		b.Retire(pc)
	}
	if tr, ok := c.Lookup(0); !ok || len(tr) != 4 {
		t.Errorf("builder should have recorded a 4-trace: %v", tr)
	}
	b.Retire(100)
	b.Retire(101)
	b.Flush()
	if tr, ok := c.Lookup(100); !ok || len(tr) != 2 {
		t.Errorf("flush should record the partial trace: %v", tr)
	}
	b.Retire(200)
	b.Squash()
	b.Retire(300)
	b.Retire(301)
	b.Flush()
	if _, ok := c.Lookup(200); ok {
		t.Error("squashed prefix should not head a trace")
	}
	if _, ok := c.Lookup(300); !ok {
		t.Error("post-squash trace should be recorded")
	}
}
