// Package tracecache implements an instruction trace cache in the spirit
// of Rotenberg/Bennett/Smith (MICRO 1996) and Patel/Evers/Patt (ISCA
// 1998), both cited by the paper as the fetch mechanism that feeds a
// wide Ultrascalar ("We propose to connect the Ultrascalar I datapath to
// an interleaved data cache and to an instruction trace cache via two
// fat-tree or butterfly networks").
//
// A trace is a recorded sequence of instruction addresses along the path
// the program actually executed, potentially spanning several taken
// branches. A fetch unit that hits in the trace cache supplies the whole
// trace in one cycle, where a conventional block fetcher must stop at the
// first taken branch.
package tracecache

// Cache is a direct-mapped trace cache keyed by trace head address.
type Cache struct {
	maxLen int
	sets   []entry
	mask   int

	hits, misses int64
}

type entry struct {
	head  int
	trace []int
}

// New returns a trace cache with 2^setBits sets holding traces of up to
// maxLen instructions.
func New(setBits, maxLen int) *Cache {
	n := 1 << setBits
	c := &Cache{maxLen: maxLen, sets: make([]entry, n), mask: n - 1}
	for i := range c.sets {
		c.sets[i].head = -1
	}
	return c
}

// MaxLen returns the maximum trace length.
func (c *Cache) MaxLen() int { return c.maxLen }

// Lookup returns the trace starting at pc, if cached.
func (c *Cache) Lookup(pc int) ([]int, bool) {
	e := &c.sets[pc&c.mask]
	if e.head != pc {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.trace, true
}

// Record stores a trace. Traces shorter than two instructions are not
// worth caching and are ignored.
func (c *Cache) Record(trace []int) {
	if len(trace) < 2 {
		return
	}
	if len(trace) > c.maxLen {
		trace = trace[:c.maxLen]
	}
	head := trace[0]
	e := &c.sets[head&c.mask]
	e.head = head
	e.trace = append(e.trace[:0], trace...) //uslint:allow hotpathalloc -- per-set buffer, amortized and bounded by maxLen
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Builder accumulates the retired instruction stream into traces and
// feeds them to a Cache.
type Builder struct {
	cache *Cache
	cur   []int
}

// NewBuilder returns a builder recording into cache.
func NewBuilder(cache *Cache) *Builder { return &Builder{cache: cache} }

// Retire observes one retired instruction address in program order.
func (b *Builder) Retire(pc int) {
	b.cur = append(b.cur, pc) //uslint:allow hotpathalloc -- builder buffer, amortized and bounded by maxLen
	if len(b.cur) >= b.cache.maxLen {
		b.cache.Record(b.cur)
		b.cur = b.cur[:0]
	}
}

// Squash discards the trace under construction (on a misprediction the
// recorded suffix would not be a real path — the builder only sees
// retired instructions, but recovery resets keep trace heads aligned
// with fetch restart points).
func (b *Builder) Squash() { b.cur = b.cur[:0] }

// Flush records any partial trace (at halt).
func (b *Builder) Flush() {
	b.cache.Record(b.cur)
	b.cur = b.cur[:0]
}
