// Package rescache is a content-addressed result cache for simulation
// artifacts. An entry is keyed by the SHA-256 of a canonical run
// manifest (normalized job config + the commit the binary was built
// from), so "same config at the same code" can serve a stored report
// instead of re-simulating — and nothing else ever can, because a code
// or config change moves the key.
//
// Integrity is not assumed, it is checked: every entry embeds the
// SHA-256 and byte length of its payload, and Get re-verifies both on
// every read. A corrupted or truncated entry — a flipped bit, a torn
// tail, a hand-edited file — is never served; it is moved into a
// quarantine/ subdirectory for post-mortems, counted, logged, and
// reported as a miss so the caller recomputes and re-stores. Entries
// are written only through internal/atomicio (enforced by the uslint
// atomicwrite analyzer), so a crash mid-store leaves the previous
// complete entry or none, never a torn one. Stores are best-effort:
// a full disk degrades the cache to a pass-through, it never fails
// the job that produced the result.
package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
)

// QuarantineDir is the subdirectory of the cache root that corrupt
// entries are moved into (never deleted — they are the evidence).
const QuarantineDir = "quarantine"

// Options configures a Cache.
type Options struct {
	// Metrics receives hit/miss/store/quarantine counters. Nil uses a
	// private registry (the counters still work, nobody scrapes them).
	Metrics *obs.Registry
	// Prefix is the metric-name prefix (default "cache"): the cache
	// registers <prefix>.hits, .misses, .stores, .store_errors and
	// .quarantines.
	Prefix string
	// Log, when non-nil, receives warnings for quarantines and store
	// failures under component "cache".
	Log *obslog.Logger
}

// Cache is a directory of integrity-checked result entries. All
// methods are safe for concurrent use (atomicio renames are atomic;
// counters are atomic; quarantine renames are idempotent).
type Cache struct {
	dir        string
	quarantine string
	log        *obslog.Logger

	hits        *obs.Counter
	misses      *obs.Counter
	stores      *obs.Counter
	storeErrors *obs.Counter
	quarantines *obs.Counter
}

// Key derives the cache key for a canonical manifest: the lowercase
// hex SHA-256 of its bytes. Callers are responsible for canonical
// encoding (deterministic field order — e.g. json.Marshal of a fixed
// struct), so equal configs collide and unequal ones cannot.
func Key(manifest []byte) string {
	sum := sha256.Sum256(manifest)
	return hex.EncodeToString(sum[:])
}

// Open creates (if needed) the cache directory and its quarantine
// subdirectory and returns the cache handle.
func Open(dir string, opts Options) (*Cache, error) {
	q := filepath.Join(dir, QuarantineDir)
	if err := os.MkdirAll(q, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: creating %s: %w", q, err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = "cache"
	}
	return &Cache{
		dir:         dir,
		quarantine:  q,
		log:         opts.Log.With("cache"),
		hits:        reg.Counter(prefix + ".hits"),
		misses:      reg.Counter(prefix + ".misses"),
		stores:      reg.Counter(prefix + ".stores"),
		storeErrors: reg.Counter(prefix + ".store_errors"),
		quarantines: reg.Counter(prefix + ".quarantines"),
	}, nil
}

// Dir returns the cache root directory.
func (c *Cache) Dir() string { return c.dir }

// header is the first line of an entry file: the key it claims to be,
// and the length and SHA-256 of the payload that follows the newline.
type header struct {
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Len    int64  `json:"len"`
}

// entryPath places entries flat in the root; keys are 64 hex chars so
// names never collide with the quarantine directory.
func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".entry")
}

// Get returns the payload stored under key, verifying length and
// SHA-256 first. A missing entry is a plain miss. An entry that fails
// any check — unparsable header, key mismatch, truncation, hash
// mismatch — is quarantined, logged and reported as a miss: a corrupt
// result is never served, the caller recomputes.
func (c *Cache) Get(key string) ([]byte, bool) {
	path := c.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Inc()
		return nil, false
	}
	reason, payload := verify(key, data)
	if reason != "" {
		c.quarantineEntry(path, key, reason)
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return payload, true
}

// verify checks an entry's framing and integrity; it returns a
// non-empty reason on any failure, or the verified payload.
func verify(key string, data []byte) (reason string, payload []byte) {
	idx := bytes.IndexByte(data, '\n')
	if idx < 0 {
		return "missing header delimiter", nil
	}
	var h header
	if err := json.Unmarshal(data[:idx], &h); err != nil {
		return "unparsable header", nil
	}
	if h.Key != key {
		return "key mismatch (entry claims " + h.Key + ")", nil
	}
	payload = data[idx+1:]
	if int64(len(payload)) != h.Len {
		return fmt.Sprintf("truncated payload: %d bytes, header says %d", len(payload), h.Len), nil
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		return "payload hash mismatch", nil
	}
	return "", payload
}

// Put stores payload under key, best-effort. It reports whether the
// store succeeded; a failure (disk full, I/O error) is counted and
// logged but must never fail the computation that produced the
// payload — the cache degrades to a pass-through.
func (c *Cache) Put(key string, payload []byte) bool {
	sum := sha256.Sum256(payload)
	hb, err := json.Marshal(header{Key: key, SHA256: hex.EncodeToString(sum[:]), Len: int64(len(payload))})
	if err != nil {
		c.storeErrors.Inc()
		return false
	}
	buf := make([]byte, 0, len(hb)+1+len(payload))
	buf = append(append(append(buf, hb...), '\n'), payload...)
	if err := atomicio.WriteFile(c.entryPath(key), buf, 0o644); err != nil {
		c.storeErrors.Inc()
		c.log.Warn("cache store failed",
			obslog.String("key", key), obslog.String("error", err.Error()))
		return false
	}
	c.stores.Inc()
	return true
}

// quarantineEntry moves a corrupt entry aside (removing it if the move
// itself fails — it must not be served on the next read either way).
func (c *Cache) quarantineEntry(path, key, reason string) {
	dst := filepath.Join(c.quarantine, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	c.quarantines.Inc()
	c.log.Warn("cache entry quarantined",
		obslog.String("key", key), obslog.String("reason", reason))
}
