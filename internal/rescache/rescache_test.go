package rescache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/obs"
)

func openTest(t *testing.T) (*Cache, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c, err := Open(t.TempDir(), Options{Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c, reg
}

func counter(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name).Value()
}

func TestKeyDeterministicAndDistinct(t *testing.T) {
	a := Key([]byte(`{"kind":"sweep","window":8}`))
	b := Key([]byte(`{"kind":"sweep","window":8}`))
	c := Key([]byte(`{"kind":"sweep","window":16}`))
	if a != b {
		t.Fatalf("equal manifests produced different keys: %s vs %s", a, b)
	}
	if a == c {
		t.Fatal("different manifests collided")
	}
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a))
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, reg := openTest(t)
	key := Key([]byte("manifest"))
	payload := []byte("report bytes, exactly as computed")
	if !c.Put(key, payload) {
		t.Fatal("Put failed")
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get missed a stored entry")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mutated: %q", got)
	}
	if h := counter(t, reg, "cache.hits"); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	if s := counter(t, reg, "cache.stores"); s != 1 {
		t.Fatalf("stores = %d, want 1", s)
	}
}

func TestGetMissingIsPlainMiss(t *testing.T) {
	c, reg := openTest(t)
	if _, ok := c.Get(Key([]byte("never stored"))); ok {
		t.Fatal("Get hit on a missing key")
	}
	if m := counter(t, reg, "cache.misses"); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}
	if q := counter(t, reg, "cache.quarantines"); q != 0 {
		t.Fatalf("quarantines = %d, want 0 for a plain miss", q)
	}
}

// corruptEntry applies fn to the stored entry file's bytes and writes
// the result back in place (raw write — we are simulating damage).
func corruptEntry(t *testing.T, c *Cache, key string, fn func([]byte) []byte) {
	t.Helper()
	path := c.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading entry to corrupt: %v", err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionQuarantinedNeverServed walks the corruption modes —
// payload bit flip, truncation, garbage header, key mismatch — and for
// each asserts: the read is a miss (never the damaged bytes), the
// entry lands in quarantine/, the quarantine counter moves, and a
// recompute-and-Put makes the key serve clean bytes again.
func TestCorruptionQuarantinedNeverServed(t *testing.T) {
	payload := []byte("the one true report, 42 cells, all clean")
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"bit-flip", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-3] ^= 0x40
			return out
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-7] }},
		{"garbage-header", func(b []byte) []byte { return append([]byte("not json\n"), payload...) }},
		{"no-delimiter", func(b []byte) []byte { return []byte("one long line with no newline at all") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, reg := openTest(t)
			key := Key([]byte("m-" + tc.name))
			if !c.Put(key, payload) {
				t.Fatal("Put failed")
			}
			corruptEntry(t, c, key, tc.fn)
			if got, ok := c.Get(key); ok {
				t.Fatalf("corrupt entry was served: %q", got)
			}
			if q := counter(t, reg, "cache.quarantines"); q != 1 {
				t.Fatalf("quarantines = %d, want 1", q)
			}
			ents, err := os.ReadDir(filepath.Join(c.Dir(), QuarantineDir))
			if err != nil || len(ents) != 1 {
				t.Fatalf("quarantine dir holds %d entries (err %v), want 1", len(ents), err)
			}
			if _, ok := c.Get(key); ok {
				t.Fatal("second Get after quarantine still hit")
			}
			// Recompute-and-restore: the key must serve clean bytes again.
			if !c.Put(key, payload) {
				t.Fatal("re-Put failed")
			}
			got, ok := c.Get(key)
			if !ok || string(got) != string(payload) {
				t.Fatalf("after re-store: ok=%v payload=%q", ok, got)
			}
		})
	}
}

// TestKeyMismatchQuarantined: an entry renamed to another key's path
// (or a path-traversal splice) fails the self-identifying key check.
func TestKeyMismatchQuarantined(t *testing.T) {
	c, reg := openTest(t)
	keyA, keyB := Key([]byte("a")), Key([]byte("b"))
	if !c.Put(keyA, []byte("payload A")) {
		t.Fatal("Put failed")
	}
	if err := os.Rename(c.entryPath(keyA), c.entryPath(keyB)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(keyB); ok {
		t.Fatal("entry served under the wrong key")
	}
	if q := counter(t, reg, "cache.quarantines"); q != 1 {
		t.Fatalf("quarantines = %d, want 1", q)
	}
}

// TestPutBestEffortUnderDiskFaults: an injected ENOSPC during the
// store is counted, leaves no debris and no entry, and does not panic
// or corrupt anything; the next (healthy) Put succeeds.
func TestPutBestEffortUnderDiskFaults(t *testing.T) {
	c, reg := openTest(t)
	key := Key([]byte("m"))
	atomicio.SetFaults(atomicio.Faults{WriteENOSPCEvery: 1})
	ok := c.Put(key, []byte("payload"))
	atomicio.SetFaults(atomicio.Faults{})
	if ok {
		t.Fatal("Put under ENOSPC reported success")
	}
	if se := counter(t, reg, "cache.store_errors"); se != 1 {
		t.Fatalf("store_errors = %d, want 1", se)
	}
	if _, hit := c.Get(key); hit {
		t.Fatal("failed store left a servable entry")
	}
	ents, _ := os.ReadDir(c.Dir())
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp debris after failed store: %s", e.Name())
		}
	}
	if !c.Put(key, []byte("payload")) {
		t.Fatal("healthy Put after fault failed")
	}
	if got, hit := c.Get(key); !hit || string(got) != "payload" {
		t.Fatalf("after recovery: hit=%v payload=%q", hit, got)
	}
}
