package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ultrascalar/internal/core"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/hybrid"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/ultra2"
	"ultrascalar/internal/workload"
)

// A fault campaign measures architectural vulnerability: it sweeps
// single-fault injection runs over (architecture × workload × fault site
// × n trials), classifies each point (masked, recovered, silent data
// corruption, crash) against the fault-free golden run, and aggregates a
// deterministic report. Determinism contract: the campaign is a pure
// function of its configuration — every point's fault plan derives from
// the campaign seed and the point's indices, so identical configurations
// produce byte-identical reports across runs and across worker counts.
//
// Long campaigns checkpoint after every completed shard (one arch ×
// workload × site cell); an interrupted campaign resumes by skipping
// shards already in the checkpoint file, after verifying the file was
// written by an identically-configured campaign.

// FaultArchs lists the architectures a campaign can sweep.
var FaultArchs = []string{"hybrid", "ultra1", "ultra2"}

// FaultCampaignConfig configures one fault-injection campaign.
type FaultCampaignConfig struct {
	// Seed drives every fault draw in the campaign.
	Seed int64
	// Window is the station count n.
	Window int
	// Cluster is the hybrid's cluster size C (default max(Window/4, 1)).
	Cluster int
	// N is the number of injection trials per (arch × workload × site)
	// cell.
	N int
	// Archs selects architectures (subset of FaultArchs; nil = all).
	Archs []string
	// Sites selects fault sites (nil = all).
	Sites []fault.Site
	// Detect selects the modeled detection hardware for every run.
	Detect fault.Detect
	// Workloads selects the programs (nil = FaultWorkloads()).
	Workloads []workload.Workload
	// Checkpoint is the shard checkpoint file path ("" disables
	// checkpointing).
	Checkpoint string
}

// FaultWorkloads returns the default campaign suite: small kernels that
// exercise ALU chains, memory traffic and data-dependent branching while
// keeping a full campaign fast.
func FaultWorkloads() []workload.Workload {
	return []workload.Workload{
		workload.Fib(10),
		workload.VecSum(16),
		workload.GCD(1071, 462),
	}
}

// faultShard is one (arch × workload × site) unit of campaign work and
// checkpointing.
type faultShard struct {
	arch string
	wl   workload.Workload
	site fault.Site
}

// key is the shard's stable checkpoint identity.
func (s faultShard) key() string {
	return s.arch + "/" + s.wl.Name + "/" + s.site.String()
}

// faultPoint is one classified injection trial.
type faultPoint struct {
	out      fault.Outcome
	extra    int64 // faulted minus clean cycles (recovered points)
	squashed int64
	watchdog bool
}

// archConfig builds the engine configuration for one architecture name.
func archConfig(arch string, n, c int) (core.Config, error) {
	switch arch {
	case "ultra1":
		return ultra1.EngineConfig(n), nil
	case "ultra2":
		return ultra2.EngineConfig(n), nil
	case "hybrid":
		return hybrid.EngineConfig(n, c), nil
	}
	return core.Config{}, fmt.Errorf("exp: unknown architecture %q (want one of %s)",
		arch, strings.Join(FaultArchs, ", "))
}

// pointSeed derives one trial's fault-plan seed from the campaign seed
// and the point's position — a splitmix64 finalizer, so neighbouring
// points get decorrelated draws and the mapping is a pure function.
func pointSeed(campaign int64, shard, i int) int64 {
	z := uint64(campaign) ^ 0x9e3779b97f4a7c15*uint64(shard*1_000_003+i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// stateMatches compares a faulted run's final architectural state against
// the fault-free golden run.
func stateMatches(res *core.Result, golden *ref.Result) bool {
	if res.Stats.Retired != int64(golden.Executed) {
		return false
	}
	for r := range golden.Regs {
		if res.Regs[r] != golden.Regs[r] {
			return false
		}
	}
	return res.Mem.Equal(golden.Mem)
}

// classify maps one run's fault log, error and end state to an outcome.
func classify(log *fault.Log, err error, stateOK bool) fault.Outcome {
	switch {
	case err != nil:
		return fault.OutcomeCrash
	case log.Applied == 0:
		return fault.OutcomeVacuous
	case log.Detected > 0 && stateOK:
		return fault.OutcomeRecovered
	case log.Detected > 0:
		return fault.OutcomeRecoveryFailed
	case stateOK:
		return fault.OutcomeMasked
	default:
		return fault.OutcomeSDC
	}
}

// RunFaultCampaign executes the campaign and returns its report. With a
// checkpoint path configured, completed shards are appended to the file
// as the campaign progresses and already-checkpointed shards are skipped
// on restart.
func RunFaultCampaign(cfg FaultCampaignConfig) (*fault.Report, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("exp: campaign window must be >= 1, got %d", cfg.Window)
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("exp: campaign needs n >= 1 trials per cell, got %d", cfg.N)
	}
	if cfg.Cluster == 0 {
		cfg.Cluster = cfg.Window / 4
		if cfg.Cluster < 1 {
			cfg.Cluster = 1
		}
	}
	archs := cfg.Archs
	if len(archs) == 0 {
		archs = FaultArchs
	}
	sites := cfg.Sites
	if len(sites) == 0 {
		sites = fault.AllSites()
	}
	wls := cfg.Workloads
	if len(wls) == 0 {
		wls = FaultWorkloads()
	}

	// The shard list in deterministic order; its index feeds pointSeed.
	var shards []faultShard
	for _, arch := range archs {
		if _, err := archConfig(arch, cfg.Window, cfg.Cluster); err != nil {
			return nil, err
		}
		for _, wl := range wls {
			for _, site := range sites {
				shards = append(shards, faultShard{arch: arch, wl: wl, site: site})
			}
		}
	}

	ck, err := openCheckpoint(cfg, archs, sites, wls)
	if err != nil {
		return nil, err
	}
	defer ck.close()

	rep := &fault.Report{
		Seed: cfg.Seed, N: cfg.N, Window: cfg.Window,
		Detect: cfg.Detect.String(), Shards: len(shards), Resumed: len(ck.done),
	}

	// Golden results are arch-independent; clean engine baselines are
	// cached per (arch, workload).
	goldens := make([]*ref.Result, len(wls))
	for wi, wl := range wls {
		g, err := ref.Run(wl.Prog, wl.Mem(), ref.Config{})
		if err != nil {
			return nil, fmt.Errorf("exp: golden run of %s: %w", wl.Name, err)
		}
		goldens[wi] = g
	}
	cleans := map[string]*core.Result{} // key arch+"/"+workload
	wlIndex := func(name string) int {
		for i, w := range wls {
			if w.Name == name {
				return i
			}
		}
		return -1
	}

	for si, sh := range shards {
		if cell, ok := ck.done[sh.key()]; ok {
			rep.Cells = append(rep.Cells, cell)
			continue
		}
		ecfg, err := archConfig(sh.arch, cfg.Window, cfg.Cluster)
		if err != nil {
			return nil, err
		}
		golden := goldens[wlIndex(sh.wl.Name)]
		cleanKey := sh.arch + "/" + sh.wl.Name
		clean := cleans[cleanKey]
		if clean == nil {
			clean, err = core.Run(sh.wl.Prog, sh.wl.Mem(), ecfg)
			if err != nil {
				return nil, fmt.Errorf("exp: clean %s run of %s: %w", sh.arch, sh.wl.Name, err)
			}
			cleans[cleanKey] = clean
		}

		cell, err := runShard(sh, si, cfg, ecfg, clean, golden)
		if err != nil {
			return nil, err
		}
		rep.Cells = append(rep.Cells, cell)
		if err := ck.record(sh.key(), cell); err != nil {
			return nil, err
		}
	}
	rep.SortCells()
	return rep, nil
}

// runShard runs one shard's N injection trials through the sweep pool.
func runShard(sh faultShard, si int, cfg FaultCampaignConfig, ecfg core.Config,
	clean *core.Result, golden *ref.Result) (fault.Cell, error) {
	maxCycle := clean.Stats.Cycles - 1
	if maxCycle < 1 {
		maxCycle = 1
	}
	// Generous ceiling: a recovered run costs extra cycles, never orders
	// of magnitude; anything beyond this is a genuine runaway (crash).
	ecfg.MaxCycles = clean.Stats.Cycles*64 + 4096
	ecfg.FaultDetect = cfg.Detect

	nregs := ecfg.NumRegs
	if nregs == 0 {
		nregs = isa.NumRegs
	}
	idx := make([]int, cfg.N)
	for i := range idx {
		idx[i] = i
	}
	points, err := parMap(idx, func(i int) (faultPoint, error) {
		plan := fault.NewPlan(pointSeed(cfg.Seed, si, i), fault.GenParams{
			Window: cfg.Window, NumRegs: nregs, MaxCycle: maxCycle,
			Sites: []fault.Site{sh.site}, N: 1,
		})
		log := &fault.Log{}
		run := ecfg
		run.FaultPlan, run.FaultLog = plan, log
		res, rerr := core.Run(sh.wl.Prog, sh.wl.Mem(), run)
		p := faultPoint{watchdog: log.WatchdogFires > 0, squashed: log.SquashedStations}
		stateOK := rerr == nil && stateMatches(res, golden)
		p.out = classify(log, rerr, stateOK)
		if p.out == fault.OutcomeRecovered {
			p.extra = res.Stats.Cycles - clean.Stats.Cycles
		}
		return p, nil
	})
	if err != nil {
		return fault.Cell{}, fmt.Errorf("exp: shard %s: %w", sh.key(), err)
	}

	cell := fault.Cell{Arch: sh.arch + "/" + sh.wl.Name, Site: sh.site.String(), Points: cfg.N}
	for _, p := range points {
		switch p.out {
		case fault.OutcomeVacuous:
			cell.Vacuous++
		case fault.OutcomeMasked:
			cell.Masked++
		case fault.OutcomeRecovered:
			cell.Detected++
			cell.Recovered++
			cell.ExtraCycles += p.extra
		case fault.OutcomeSDC:
			cell.SDC++
		case fault.OutcomeCrash:
			cell.Crashed++
		case fault.OutcomeRecoveryFailed:
			cell.Detected++
			cell.RecFailed++
		}
		if p.watchdog {
			cell.Watchdog++
		}
		cell.SquashedStations += p.squashed
	}
	return cell, nil
}

// The checkpoint file is JSONL: a header line binding the campaign
// configuration, then one line per completed shard. Resuming verifies the
// header so a stale file from a differently-configured campaign fails
// loudly instead of silently mixing results.

type checkpointHeader struct {
	Magic       string `json:"magic"`
	Fingerprint string `json:"fingerprint"`
}

type checkpointLine struct {
	Shard string     `json:"shard"`
	Cell  fault.Cell `json:"cell"`
}

const checkpointMagic = "usfault-checkpoint/v1"

// fingerprint binds a checkpoint to everything that shapes shard results.
func fingerprint(cfg FaultCampaignConfig, archs []string, sites []fault.Site, wls []workload.Workload) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d n=%d window=%d cluster=%d detect=%s archs=%s",
		cfg.Seed, cfg.N, cfg.Window, cfg.Cluster, cfg.Detect, strings.Join(archs, ","))
	b.WriteString(" sites=")
	for i, s := range sites {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	b.WriteString(" workloads=")
	for i, w := range wls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(w.Name)
	}
	return b.String()
}

// checkpointer appends completed shards to the checkpoint file; a nil
// file means checkpointing is off.
type checkpointer struct {
	f    *os.File
	done map[string]fault.Cell
}

// openCheckpoint loads any existing checkpoint (verifying its
// fingerprint) and opens the file for appending new shards.
func openCheckpoint(cfg FaultCampaignConfig, archs []string, sites []fault.Site,
	wls []workload.Workload) (*checkpointer, error) {
	ck := &checkpointer{done: map[string]fault.Cell{}}
	if cfg.Checkpoint == "" {
		return ck, nil
	}
	fp := fingerprint(cfg, archs, sites, wls)
	data, err := os.ReadFile(cfg.Checkpoint)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(cfg.Checkpoint, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, fmt.Errorf("exp: creating checkpoint: %w", err)
		}
		hdr, _ := json.Marshal(checkpointHeader{Magic: checkpointMagic, Fingerprint: fp})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("exp: writing checkpoint header: %w", err)
		}
		ck.f = f
		return ck, nil
	case err != nil:
		return nil, fmt.Errorf("exp: reading checkpoint: %w", err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	if !sc.Scan() {
		return nil, fmt.Errorf("exp: checkpoint %s is empty", cfg.Checkpoint)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Magic != checkpointMagic {
		return nil, fmt.Errorf("exp: %s is not a campaign checkpoint", cfg.Checkpoint)
	}
	if hdr.Fingerprint != fp {
		return nil, fmt.Errorf("exp: checkpoint %s was written by a different campaign\n  have: %s\n  want: %s",
			cfg.Checkpoint, hdr.Fingerprint, fp)
	}
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var line checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("exp: corrupt checkpoint line %q: %w", sc.Text(), err)
		}
		ck.done[line.Shard] = line.Cell
	}
	f, err := os.OpenFile(cfg.Checkpoint, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: reopening checkpoint: %w", err)
	}
	ck.f = f
	return ck, nil
}

// record appends one completed shard.
func (c *checkpointer) record(key string, cell fault.Cell) error {
	if c.f == nil {
		return nil
	}
	line, err := json.Marshal(checkpointLine{Shard: key, Cell: cell})
	if err != nil {
		return err
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("exp: appending checkpoint: %w", err)
	}
	return nil
}

// close releases the checkpoint file.
func (c *checkpointer) close() {
	if c.f != nil {
		c.f.Close()
	}
}
