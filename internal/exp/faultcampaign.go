package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"ultrascalar/internal/atomicio"
	"ultrascalar/internal/core"
	"ultrascalar/internal/fault"
	"ultrascalar/internal/hybrid"
	"ultrascalar/internal/isa"
	"ultrascalar/internal/obs"
	obslog "ultrascalar/internal/obs/log"
	"ultrascalar/internal/ref"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/ultra2"
	"ultrascalar/internal/workload"
)

// A fault campaign measures architectural vulnerability: it sweeps
// single-fault injection runs over (architecture × workload × fault site
// × n trials), classifies each point (masked, recovered, silent data
// corruption, crash) against the fault-free golden run, and aggregates a
// deterministic report. Determinism contract: the campaign is a pure
// function of its configuration — every point's fault plan derives from
// the campaign seed and the point's indices, so identical configurations
// produce byte-identical reports across runs and across worker counts.
//
// Long campaigns checkpoint after every completed shard (one arch ×
// workload × site cell); an interrupted campaign resumes by skipping
// shards already in the checkpoint file, after verifying the file was
// written by an identically-configured campaign.

// FaultArchs lists the architectures a campaign can sweep.
var FaultArchs = []string{"hybrid", "ultra1", "ultra2"}

// FaultCampaignConfig configures one fault-injection campaign.
type FaultCampaignConfig struct {
	// Seed drives every fault draw in the campaign.
	Seed int64
	// Window is the station count n.
	Window int
	// Cluster is the hybrid's cluster size C (default max(Window/4, 1)).
	Cluster int
	// N is the number of injection trials per (arch × workload × site)
	// cell.
	N int
	// Archs selects architectures (subset of FaultArchs; nil = all).
	Archs []string
	// Sites selects fault sites (nil = all).
	Sites []fault.Site
	// Detect selects the modeled detection hardware for every run.
	Detect fault.Detect
	// Workloads selects the programs (nil = FaultWorkloads()).
	Workloads []workload.Workload
	// Checkpoint is the shard checkpoint file path ("" disables
	// checkpointing).
	Checkpoint string
	// Progress, when set, observes shard completion: it is called once
	// at campaign start and once after every shard settles (resumed from
	// checkpoint or freshly run) with the completed and total counts.
	// Purely observational — it must not influence results.
	Progress func(done, total int)
}

// FaultWorkloads returns the default campaign suite: small kernels that
// exercise ALU chains, memory traffic and data-dependent branching while
// keeping a full campaign fast.
func FaultWorkloads() []workload.Workload {
	return []workload.Workload{
		workload.Fib(10),
		workload.VecSum(16),
		workload.GCD(1071, 462),
	}
}

// faultShard is one (arch × workload × site) unit of campaign work and
// checkpointing.
type faultShard struct {
	arch string
	wl   workload.Workload
	site fault.Site
}

// key is the shard's stable checkpoint identity.
func (s faultShard) key() string {
	return s.arch + "/" + s.wl.Name + "/" + s.site.String()
}

// faultPoint is one classified injection trial.
type faultPoint struct {
	out      fault.Outcome
	extra    int64 // faulted minus clean cycles (recovered points)
	squashed int64
	watchdog bool
}

// ArchConfig builds the engine configuration for one architecture name
// ("ultra1", "ultra2" or "hybrid") at window size n; c is the hybrid's
// cluster size and is ignored by the flat architectures. The serve layer
// and the campaign runner share this mapping so a config class means
// the same thing everywhere.
func ArchConfig(arch string, n, c int) (core.Config, error) {
	switch arch {
	case "ultra1":
		return ultra1.EngineConfig(n), nil
	case "ultra2":
		return ultra2.EngineConfig(n), nil
	case "hybrid":
		return hybrid.EngineConfig(n, c), nil
	}
	return core.Config{}, fmt.Errorf("exp: unknown architecture %q (want one of %s)",
		arch, strings.Join(FaultArchs, ", "))
}

// pointSeed derives one trial's fault-plan seed from the campaign seed
// and the point's identity — FNV-1a over the shard key, mixed with the
// trial index through a splitmix64 finalizer, so neighbouring points
// get decorrelated draws and the mapping is a pure function. Keying on
// the shard's *identity* (arch/workload/site) rather than its index in
// the shard list is what makes sub-campaigns composable: a fleet worker
// running any subset of the cells draws exactly the seeds the full
// campaign would, so merged fleet reports are byte-identical to a
// single-process run.
func pointSeed(campaign int64, shardKey string, i int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for j := 0; j < len(shardKey); j++ {
		h ^= uint64(shardKey[j])
		h *= prime64
	}
	z := uint64(campaign) ^ h ^ 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// CampaignShard names one (arch × workload × site) campaign cell — the
// unit of checkpointing, and the unit of distribution when a fleet
// coordinator spreads a campaign across workers.
type CampaignShard struct {
	Arch     string
	Workload string
	Site     string
}

// Key is the shard's stable identity: the same string the campaign
// checkpointer records and pointSeed hashes.
func (s CampaignShard) Key() string {
	return s.Arch + "/" + s.Workload + "/" + s.Site
}

// CampaignShards enumerates the default full campaign's shards in the
// deterministic order the campaign runner sweeps them (arch-major, then
// workload, then site). A fleet coordinator partitions this list; each
// element round-trips into a single-cell sub-campaign whose one result
// cell is byte-identical to the corresponding cell of the full run.
func CampaignShards() []CampaignShard {
	var out []CampaignShard
	for _, arch := range FaultArchs {
		for _, wl := range FaultWorkloads() {
			for _, site := range fault.AllSites() {
				out = append(out, CampaignShard{Arch: arch, Workload: wl.Name, Site: site.String()})
			}
		}
	}
	return out
}

// stateMatches compares a faulted run's final architectural state against
// the fault-free golden run.
func stateMatches(res *core.Result, golden *ref.Result) bool {
	if res.Stats.Retired != int64(golden.Executed) {
		return false
	}
	for r := range golden.Regs {
		if res.Regs[r] != golden.Regs[r] {
			return false
		}
	}
	return res.Mem.Equal(golden.Mem)
}

// classify maps one run's fault log, error and end state to an outcome.
func classify(log *fault.Log, err error, stateOK bool) fault.Outcome {
	switch {
	case err != nil:
		return fault.OutcomeCrash
	case log.Applied == 0:
		return fault.OutcomeVacuous
	case log.Detected > 0 && stateOK:
		return fault.OutcomeRecovered
	case log.Detected > 0:
		return fault.OutcomeRecoveryFailed
	case stateOK:
		return fault.OutcomeMasked
	default:
		return fault.OutcomeSDC
	}
}

// RunFaultCampaign executes the campaign and returns its report. With a
// checkpoint path configured, completed shards are written to the file
// as the campaign progresses and already-checkpointed shards are skipped
// on restart.
func RunFaultCampaign(cfg FaultCampaignConfig) (*fault.Report, error) {
	return RunFaultCampaignCtx(nil, cfg)
}

// RunFaultCampaignCtx is RunFaultCampaign bounded by ctx. Cancellation
// is clean at two granularities: between shards the runner checks ctx
// and stops before starting the next one, and within a shard the trial
// pool stops claiming points and each running simulation aborts at its
// next watchdog-interval probe. Every shard completed before the
// cancellation is already in the checkpoint file, so a later run with
// the same configuration resumes from it and still produces a report
// byte-identical to an uninterrupted campaign. A nil ctx means
// unbounded.
func RunFaultCampaignCtx(ctx context.Context, cfg FaultCampaignConfig) (*fault.Report, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("exp: campaign window must be >= 1, got %d", cfg.Window)
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("exp: campaign needs n >= 1 trials per cell, got %d", cfg.N)
	}
	if cfg.Cluster == 0 {
		cfg.Cluster = cfg.Window / 4
		if cfg.Cluster < 1 {
			cfg.Cluster = 1
		}
	}
	archs := cfg.Archs
	if len(archs) == 0 {
		archs = FaultArchs
	}
	sites := cfg.Sites
	if len(sites) == 0 {
		sites = fault.AllSites()
	}
	wls := cfg.Workloads
	if len(wls) == 0 {
		wls = FaultWorkloads()
	}

	// The shard list in deterministic order; each shard's key feeds
	// pointSeed, so the list's composition — not its order — shapes
	// results.
	var shards []faultShard
	for _, arch := range archs {
		if _, err := ArchConfig(arch, cfg.Window, cfg.Cluster); err != nil {
			return nil, err
		}
		for _, wl := range wls {
			for _, site := range sites {
				shards = append(shards, faultShard{arch: arch, wl: wl, site: site})
			}
		}
	}

	ck, err := openCheckpoint(cfg, archs, sites, wls)
	if err != nil {
		return nil, err
	}

	rep := &fault.Report{
		Seed: cfg.Seed, N: cfg.N, Window: cfg.Window,
		Detect: cfg.Detect.String(), Shards: len(shards), Resumed: len(ck.done),
	}

	// Telemetry rides on the context: the serve layer roots a trace ID,
	// span recorder and logger there, and each shard reports its own
	// span. All of it is observational — nothing below may feed back into
	// the report, which stays a pure function of cfg.
	trace := obslog.TraceIDFrom(ctx)
	rec := obslog.RecorderFrom(ctx)
	lg := obslog.LoggerFrom(ctx).With("campaign").WithTrace(trace)
	completed := 0
	settle := func() {
		completed++
		if cfg.Progress != nil {
			cfg.Progress(completed, len(shards))
		}
	}
	if cfg.Progress != nil {
		cfg.Progress(0, len(shards))
	}
	lg.Info("campaign start",
		obslog.Int("shards", len(shards)), obslog.Int("resumed", len(ck.done)),
		obslog.Int64("seed", cfg.Seed), obslog.Int("window", cfg.Window))

	// Golden results are arch-independent; clean engine baselines are
	// cached per (arch, workload).
	goldens := make([]*ref.Result, len(wls))
	for wi, wl := range wls {
		g, err := ref.Run(wl.Prog, wl.Mem(), ref.Config{})
		if err != nil {
			return nil, fmt.Errorf("exp: golden run of %s: %w", wl.Name, err)
		}
		goldens[wi] = g
	}
	cleans := map[string]*core.Result{} // key arch+"/"+workload
	wlIndex := func(name string) int {
		for i, w := range wls {
			if w.Name == name {
				return i
			}
		}
		return -1
	}

	for _, sh := range shards {
		if cell, ok := ck.done[sh.key()]; ok {
			rep.Cells = append(rep.Cells, cell)
			settle()
			continue
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("exp: campaign stopped after %d/%d shards: %w",
					len(ck.done), len(shards), cerr)
			}
		}
		ecfg, err := ArchConfig(sh.arch, cfg.Window, cfg.Cluster)
		if err != nil {
			return nil, err
		}
		golden := goldens[wlIndex(sh.wl.Name)]
		cleanKey := sh.arch + "/" + sh.wl.Name
		clean := cleans[cleanKey]
		if clean == nil {
			clean, err = core.RunCtx(ctx, sh.wl.Prog, sh.wl.Mem(), ecfg)
			if err != nil {
				return nil, fmt.Errorf("exp: clean %s run of %s: %w", sh.arch, sh.wl.Name, err)
			}
			cleans[cleanKey] = clean
		}

		sp := rec.Start(trace, "shard", sh.key())
		cell, err := runShard(ctx, sh, cfg, ecfg, clean, golden)
		sp.End()
		if err != nil {
			return nil, err
		}
		rep.Cells = append(rep.Cells, cell)
		cksp := rec.Start(trace, "checkpoint", sh.key())
		err = ck.record(sh.key(), cell)
		cksp.End()
		if err != nil {
			return nil, err
		}
		settle()
		if lg.Enabled(obslog.LevelDebug) {
			lg.Debug("shard done",
				obslog.String("shard", sh.key()),
				obslog.Int("done", completed), obslog.Int("total", len(shards)))
		}
	}
	rep.SortCells()
	lg.Info("campaign done", obslog.Int("shards", len(shards)))
	return rep, nil
}

// runShard runs one shard's N injection trials through the sweep pool,
// bounded by ctx (nil = unbounded).
func runShard(ctx context.Context, sh faultShard, cfg FaultCampaignConfig, ecfg core.Config,
	clean *core.Result, golden *ref.Result) (fault.Cell, error) {
	maxCycle := clean.Stats.Cycles - 1
	if maxCycle < 1 {
		maxCycle = 1
	}
	// Generous ceiling: a recovered run costs extra cycles, never orders
	// of magnitude; anything beyond this is a genuine runaway (crash).
	ecfg.MaxCycles = clean.Stats.Cycles*64 + 4096
	ecfg.FaultDetect = cfg.Detect

	nregs := ecfg.NumRegs
	if nregs == 0 {
		nregs = isa.NumRegs
	}
	idx := make([]int, cfg.N)
	for i := range idx {
		idx[i] = i
	}
	points, err := parMapCtx(ctx, idx, func(i int) (faultPoint, error) {
		plan := fault.NewPlan(pointSeed(cfg.Seed, sh.key(), i), fault.GenParams{
			Window: cfg.Window, NumRegs: nregs, MaxCycle: maxCycle,
			Sites: []fault.Site{sh.site}, N: 1,
		})
		log := &fault.Log{}
		run := ecfg
		run.FaultPlan, run.FaultLog = plan, log
		res, rerr := core.RunCtx(ctx, sh.wl.Prog, sh.wl.Mem(), run)
		// A canceled trial is not a crash outcome: it says nothing about
		// the fault's effect, so it must abort the shard rather than be
		// misclassified into the report.
		var ce *core.CanceledError
		if errors.As(rerr, &ce) {
			return faultPoint{}, rerr
		}
		p := faultPoint{watchdog: log.WatchdogFires > 0, squashed: log.SquashedStations}
		stateOK := rerr == nil && stateMatches(res, golden)
		p.out = classify(log, rerr, stateOK)
		if p.out == fault.OutcomeRecovered {
			p.extra = res.Stats.Cycles - clean.Stats.Cycles
		}
		return p, nil
	})
	if err != nil {
		return fault.Cell{}, fmt.Errorf("exp: shard %s: %w", sh.key(), err)
	}

	cell := fault.Cell{Arch: sh.arch + "/" + sh.wl.Name, Site: sh.site.String(), Points: cfg.N}
	for _, p := range points {
		switch p.out {
		case fault.OutcomeVacuous:
			cell.Vacuous++
		case fault.OutcomeMasked:
			cell.Masked++
		case fault.OutcomeRecovered:
			cell.Detected++
			cell.Recovered++
			cell.ExtraCycles += p.extra
		case fault.OutcomeSDC:
			cell.SDC++
		case fault.OutcomeCrash:
			cell.Crashed++
		case fault.OutcomeRecoveryFailed:
			cell.Detected++
			cell.RecFailed++
		}
		if p.watchdog {
			cell.Watchdog++
		}
		cell.SquashedStations += p.squashed
	}
	return cell, nil
}

// The checkpoint file is JSONL: a header line binding the campaign
// configuration, then one line per completed shard. Resuming verifies the
// header so a stale file from a differently-configured campaign fails
// loudly instead of silently mixing results.

type checkpointHeader struct {
	Magic       string `json:"magic"`
	Fingerprint string `json:"fingerprint"`
}

type checkpointLine struct {
	Shard string     `json:"shard"`
	Cell  fault.Cell `json:"cell"`
}

// v2: point seeds are keyed by shard identity (arch/workload/site)
// instead of shard index, so v1 checkpoints hold cells a v2 campaign
// would not reproduce; the magic bump makes them fail loudly.
const checkpointMagic = "usfault-checkpoint/v2"

// fingerprint binds a checkpoint to everything that shapes shard results.
func fingerprint(cfg FaultCampaignConfig, archs []string, sites []fault.Site, wls []workload.Workload) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d n=%d window=%d cluster=%d detect=%s archs=%s",
		cfg.Seed, cfg.N, cfg.Window, cfg.Cluster, cfg.Detect, strings.Join(archs, ","))
	b.WriteString(" sites=")
	for i, s := range sites {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	b.WriteString(" workloads=")
	for i, w := range wls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(w.Name)
	}
	return b.String()
}

// checkpointer records completed shards; an empty path means
// checkpointing is off. Every record rewrites the whole file through
// atomicio.WriteFile, so a crash — even mid-write, even power loss —
// leaves the previous complete checkpoint rather than a torn one. The
// lines slice keeps the file's exact content in memory (header first),
// which also keeps shard order stable across rewrites.
type checkpointer struct {
	path  string
	lines []string
	done  map[string]fault.Cell
}

// openCheckpoint loads any existing checkpoint (verifying its
// fingerprint) and prepares the checkpointer for recording new shards.
// A truncated final line — the signature of a crash mid-append under
// the pre-atomic format, or of filesystem-level truncation — is
// detected and dropped: that shard simply reruns. Corruption anywhere
// else still fails loudly, since it cannot be explained by a torn tail.
func openCheckpoint(cfg FaultCampaignConfig, archs []string, sites []fault.Site,
	wls []workload.Workload) (*checkpointer, error) {
	ck := &checkpointer{done: map[string]fault.Cell{}}
	if cfg.Checkpoint == "" {
		return ck, nil
	}
	ck.path = cfg.Checkpoint
	fp := fingerprint(cfg, archs, sites, wls)
	data, err := os.ReadFile(cfg.Checkpoint)
	switch {
	case os.IsNotExist(err):
		hdr, _ := json.Marshal(checkpointHeader{Magic: checkpointMagic, Fingerprint: fp})
		ck.lines = []string{string(hdr)}
		if err := ck.flush(); err != nil {
			return nil, err
		}
		return ck, nil
	case err != nil:
		return nil, fmt.Errorf("exp: reading checkpoint: %w", err)
	}
	var lines []string
	// The shared big-buffer scanner: checkpoint records can exceed
	// bufio.Scanner's default 64 KiB token cap.
	sc := obs.NewLineScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("exp: checkpoint %s is empty", cfg.Checkpoint)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Magic != checkpointMagic {
		return nil, fmt.Errorf("exp: %s is not a campaign checkpoint", cfg.Checkpoint)
	}
	if hdr.Fingerprint != fp {
		return nil, fmt.Errorf("exp: checkpoint %s was written by a different campaign\n  have: %s\n  want: %s",
			cfg.Checkpoint, hdr.Fingerprint, fp)
	}
	ck.lines = lines[:1]
	for i, raw := range lines[1:] {
		var line checkpointLine
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			if i == len(lines[1:])-1 {
				break // torn tail: drop the partial shard, it reruns
			}
			return nil, fmt.Errorf("exp: corrupt checkpoint line %q: %w", raw, err)
		}
		ck.done[line.Shard] = line.Cell
		ck.lines = append(ck.lines, raw)
	}
	// Rewrite immediately so a dropped torn tail does not linger on disk.
	if err := ck.flush(); err != nil {
		return nil, err
	}
	return ck, nil
}

// record persists one completed shard by atomically rewriting the file.
func (c *checkpointer) record(key string, cell fault.Cell) error {
	if c.path == "" {
		return nil
	}
	line, err := json.Marshal(checkpointLine{Shard: key, Cell: cell})
	if err != nil {
		return err
	}
	c.lines = append(c.lines, string(line))
	c.done[key] = cell
	return c.flush()
}

// flush writes the in-memory checkpoint image to disk crash-atomically.
func (c *checkpointer) flush() error {
	if err := atomicio.WriteFile(c.path, []byte(strings.Join(c.lines, "\n")+"\n"), 0o644); err != nil {
		return fmt.Errorf("exp: writing checkpoint: %w", err)
	}
	return nil
}
