package exp

import (
	"fmt"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/core"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

// Ablation experiments for the design extensions the paper calls out in
// Section 7: shared ALUs, self-timed operation, memory renaming,
// distributed cluster caches, fetch mechanisms, and the large-L regime.

// E12: shared-ALU pool. "In the designs presented here, the ALU is
// replicated n times for an n-issue processor. In practice, ALUs can be
// effectively shared ... a hybrid Ultrascalar with a window-size of 128
// and 16 shared ALUs (with floating-point) should fit easily within a
// chip 1 cm on a side."

// SharedALURow is one (window, ALUs) configuration's performance.
type SharedALURow struct {
	Window, ALUs int
	Cycles       int64
	IPC          float64
	Starved      int64
}

// SharedALUs sweeps the ALU pool size on a window-128 hybrid, the paper's
// Section 7 configuration.
func SharedALUs(window int, aluCounts []int) ([]SharedALURow, error) {
	w := workload.MixedILP(3000, 16, 48, 123)
	var rows []SharedALURow
	for _, alus := range aluCounts {
		res, err := core.Run(w.Prog, w.Mem(), core.Config{
			Window: window, Granularity: 32, NumALUs: alus,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SharedALURow{
			Window: window, ALUs: alus,
			Cycles: res.Stats.Cycles, IPC: res.Stats.IPC(), Starved: res.Stats.ALUStarved,
		})
	}
	return rows, nil
}

// SharedALUsReport renders E12.
func SharedALUsReport(window int) (string, error) {
	rows, err := SharedALUs(window, []int{1, 2, 4, 8, 16, 32, 0})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E12 / Section 7: shared-ALU pool on a window-%d hybrid (C=32)\n\n", window)
	tab := analysis.NewTable("ALUs", "cycles", "IPC", "starved issue-cycles")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.ALUs)
		if r.ALUs == 0 {
			label = fmt.Sprintf("%d (one per station)", r.Window)
		}
		tab.Row(label, r.Cycles, r.IPC, r.Starved)
	}
	b.WriteString(tab.String())
	b.WriteString("\nThe paper's 16 shared ALUs capture nearly all of the window-128\nthroughput at an eighth of the ALU area.\n")
	return b.String(), nil
}

// E13: self-timed operation. "A back-of-the-envelope calculation is
// promising however: Half of the communications paths from one station to
// its successor are completely local. In such a processor, a program
// could run faster if most of its instructions depend on their immediate
// predecessors rather than on far-previous instructions."

// Log2Latency is the tree-traversal-shaped forwarding latency used by the
// self-timed experiments: distance-1 neighbors are free, distance-d
// values pay ceil(log2 d) extra cycles.
func Log2Latency(d int) int {
	if d <= 1 {
		return 0
	}
	extra := 0
	for 1<<extra < d {
		extra++
	}
	return extra
}

// SelfTimedRow compares global-clock and self-timed cycle counts.
type SelfTimedRow struct {
	Workload    string
	GlobalClock int64
	SelfTimed   int64
	Slowdown    float64
	LocalFrac   float64 // fraction of operands at distance 1
}

// SelfTimed runs the kernel suite under both timing models.
func SelfTimed(window int) ([]SelfTimedRow, error) {
	ws := append(workload.Kernels(), workload.Chain(300), workload.MixedILP(300, 16, 48, 9))
	var rows []SelfTimedRow
	for _, w := range ws {
		base, err := core.Run(w.Prog, w.Mem(), core.Config{Window: window, Granularity: 1})
		if err != nil {
			return nil, err
		}
		st, err := core.Run(w.Prog, w.Mem(), core.Config{
			Window: window, Granularity: 1, ForwardLatency: Log2Latency,
		})
		if err != nil {
			return nil, err
		}
		var total, local int64
		for d, c := range base.Stats.OperandFromStation {
			total += c
			if d == 1 {
				local += c
			}
		}
		total += base.Stats.OperandFromCommitted
		frac := 0.0
		if total > 0 {
			frac = float64(local) / float64(total)
		}
		rows = append(rows, SelfTimedRow{
			Workload:    w.Name,
			GlobalClock: base.Stats.Cycles,
			SelfTimed:   st.Stats.Cycles,
			Slowdown:    float64(st.Stats.Cycles) / float64(base.Stats.Cycles),
			LocalFrac:   frac,
		})
	}
	return rows, nil
}

// SelfTimedReport renders E13.
func SelfTimedReport(window int) (string, error) {
	rows, err := SelfTimed(window)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E13 / Section 7: self-timed forwarding (extra ceil(log2 d) cycles), n=%d\n\n", window)
	tab := analysis.NewTable("workload", "global-clock cyc", "self-timed cyc", "cycle ratio", "dist-1 operands")
	for _, r := range rows {
		tab.Row(r.Workload, r.GlobalClock, r.SelfTimed,
			fmt.Sprintf("%.2f", r.Slowdown), fmt.Sprintf("%.0f%%", 100*r.LocalFrac))
	}
	b.WriteString(tab.String())
	b.WriteString("\nPrograms dominated by distance-1 dependences keep their cycle count\nwhile the self-timed clock runs at the local (neighbor) period instead\nof the full-datapath period — the paper's claimed win.\n")
	return b.String(), nil
}

// E14: memory renaming. "The memory bandwidth pressure can also be
// reduced by using memory-renaming hardware, which can be implemented by
// CSPP circuits."

// RenamingRow is one bandwidth regime's result.
type RenamingRow struct {
	M               string
	BaseCycles      int64
	RenamedCycles   int64
	ForwardedLoads  int64
	TreeAccessesOff int64
	TreeAccessesOn  int64
}

// MemRenaming runs the store/load stream under shrinking bandwidth with
// and without renaming.
func MemRenaming(window int) ([]RenamingRow, error) {
	var rows []RenamingRow
	for _, m := range []memory.MFunc{memory.MConst(1), memory.MPow(1, 0.5), memory.MLinear()} {
		w := workload.MemStream(120)
		mk := func() *memory.System {
			cfg := memory.DefaultConfig(window, m)
			cfg.HopLatency = 0
			return memory.NewSystem(cfg)
		}
		sysOff := mk()
		base, err := core.Run(w.Prog, w.Mem(), core.Config{
			Window: window, Granularity: 1, MemSystem: sysOff,
		})
		if err != nil {
			return nil, err
		}
		sysOn := mk()
		ren, err := core.Run(w.Prog, w.Mem(), core.Config{
			Window: window, Granularity: 1, MemSystem: sysOn, MemRenaming: true,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RenamingRow{
			M:               m.Name,
			BaseCycles:      base.Stats.Cycles,
			RenamedCycles:   ren.Stats.Cycles,
			ForwardedLoads:  ren.Stats.LoadsForwarded,
			TreeAccessesOff: sysOff.Stats().Accesses,
			TreeAccessesOn:  sysOn.Stats().Accesses,
		})
	}
	return rows, nil
}

// MemRenamingReport renders E14.
func MemRenamingReport(window int) (string, error) {
	rows, err := MemRenaming(window)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E14 / Section 7: memory renaming on a store/load stream, n=%d\n\n", window)
	tab := analysis.NewTable("bandwidth", "cycles off", "cycles on", "forwarded loads",
		"tree accesses off", "tree accesses on")
	for _, r := range rows {
		tab.Row(r.M, r.BaseCycles, r.RenamedCycles, r.ForwardedLoads,
			r.TreeAccessesOff, r.TreeAccessesOn)
	}
	b.WriteString(tab.String())
	b.WriteString("\nForwarded loads never enter the fat tree: renaming removes bandwidth\npressure exactly where M(n) is scarce.\n")
	return b.String(), nil
}

// E15: fetch mechanisms.

// FetchRow is one workload's cycles under the three fetch models.
type FetchRow struct {
	Workload                  string
	Ideal, Block, TraceCycles int64
}

// FetchModels compares ideal, block, and trace-cache fetch.
func FetchModels(window int) ([]FetchRow, error) {
	ws := []workload.Workload{
		workload.JumpyLoop(500),
		workload.VecSum(200),
		workload.Branchy(300, true),
		workload.Parallel(512, 32),
	}
	var rows []FetchRow
	for _, w := range ws {
		var cyc [3]int64
		for i, fm := range []core.FetchModel{core.FetchIdeal, core.FetchBlock, core.FetchTrace} {
			res, err := core.Run(w.Prog, w.Mem(), core.Config{
				Window: window, Granularity: 1, Fetch: fm,
			})
			if err != nil {
				return nil, err
			}
			cyc[i] = res.Stats.Cycles
		}
		rows = append(rows, FetchRow{Workload: w.Name, Ideal: cyc[0], Block: cyc[1], TraceCycles: cyc[2]})
	}
	return rows, nil
}

// FetchModelsReport renders E15.
func FetchModelsReport(window int) (string, error) {
	rows, err := FetchModels(window)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E15: fetch mechanisms feeding a %d-station window\n\n", window)
	tab := analysis.NewTable("workload", "ideal", "block", "trace cache")
	for _, r := range rows {
		tab.Row(r.Workload, r.Ideal, r.Block, r.TraceCycles)
	}
	b.WriteString(tab.String())
	b.WriteString("\nThe trace cache recovers most of the fetch bandwidth a block fetcher\nloses at taken branches — the mechanism the paper cites for feeding\nwide windows.\n")
	return b.String(), nil
}

// E16: the large-L regime. "For L equal to 64 64-bit values, as is found
// in today's architectures, the improvement in layout area is dramatic
// over the Ultrascalar I."

// LargeLRow compares hybrid and Ultrascalar I areas as L and W grow.
type LargeLRow struct {
	L, W      int
	AreaRatio float64 // UltraI area per station / hybrid area per station
}

// LargeL sweeps register file shapes at n=64 vs a 128-station hybrid.
func LargeL(t vlsi.Tech) ([]LargeLRow, error) {
	var rows []LargeLRow
	m := memory.MConst(1)
	for _, cfg := range []struct{ l, w int }{{16, 16}, {32, 32}, {64, 32}, {64, 64}} {
		u1, err := vlsi.UltraIModel(64, cfg.l, cfg.w, m, t, vlsi.UltraIOptions{})
		if err != nil {
			return nil, err
		}
		hy, err := vlsi.HybridModel(128, cfg.l, cfg.l, cfg.w, m, t, vlsi.Ultra2Linear)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LargeLRow{
			L: cfg.l, W: cfg.w,
			AreaRatio: (u1.AreaL2() / 64) / (hy.AreaL2() / 128),
		})
	}
	return rows, nil
}

// LargeLReport renders E16.
func LargeLReport(t vlsi.Tech) (string, error) {
	rows, err := LargeL(t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E16: per-station area advantage of the hybrid as the register file grows\n\n")
	tab := analysis.NewTable("L", "W", "UltraI/hybrid area per station")
	for _, r := range rows {
		tab.Row(r.L, r.W, fmt.Sprintf("%.1fx", r.AreaRatio))
	}
	b.WriteString(tab.String())
	b.WriteString("\n\"For L equal to 64 64-bit values ... the improvement in layout area\nis dramatic over the Ultrascalar I.\"\n")
	return b.String(), nil
}

// E17: distributed cluster caches. "One way to reduce the bandwidth
// requirements may be to use a cache distributed among the clusters."

// ClusterCacheRow compares a narrow-bandwidth system with and without
// per-cluster caches.
type ClusterCacheRow struct {
	Workload    string
	BaseCycles  int64
	CacheCycles int64
	ClusterHits int64
}

// ClusterCaches runs load-heavy workloads at M(n)=1.
func ClusterCaches(window, clusterSize int) ([]ClusterCacheRow, error) {
	ws := []workload.Workload{
		workload.RepeatedScan(16, 20),
		workload.RepeatedScan(64, 10),
		workload.LoadBurst(200, 32), // no reuse: caches cannot help
	}
	var rows []ClusterCacheRow
	for _, w := range ws {
		mk := func(withCache bool) *memory.System {
			cfg := memory.DefaultConfig(window, memory.MConst(1))
			cfg.HopLatency = 0
			if withCache {
				cfg.ClusterSize = clusterSize
				cfg.ClusterLines = 256
				cfg.ClusterHitLatency = 1
			}
			return memory.NewSystem(cfg)
		}
		base, err := core.Run(w.Prog, w.Mem(), core.Config{
			Window: window, Granularity: clusterSize, MemSystem: mk(false),
		})
		if err != nil {
			return nil, err
		}
		sys := mk(true)
		cached, err := core.Run(w.Prog, w.Mem(), core.Config{
			Window: window, Granularity: clusterSize, MemSystem: sys,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClusterCacheRow{
			Workload:    w.Name,
			BaseCycles:  base.Stats.Cycles,
			CacheCycles: cached.Stats.Cycles,
			ClusterHits: sys.Stats().ClusterHits,
		})
	}
	return rows, nil
}

// ClusterCachesReport renders E17.
func ClusterCachesReport(window, clusterSize int) (string, error) {
	rows, err := ClusterCaches(window, clusterSize)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E17 / Section 7: distributed cluster caches, n=%d C=%d, M(n)=1\n\n",
		window, clusterSize)
	tab := analysis.NewTable("workload", "cycles (no cache)", "cycles (cluster cache)", "cluster hits")
	for _, r := range rows {
		tab.Row(r.Workload, r.BaseCycles, r.CacheCycles, r.ClusterHits)
	}
	b.WriteString(tab.String())
	return b.String(), nil
}
