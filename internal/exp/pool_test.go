package exp

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"ultrascalar/internal/obs"
	"ultrascalar/internal/vlsi"
)

func TestParMapOrderAndErrors(t *testing.T) {
	prev := SetSweepWorkers(8)
	defer SetSweepWorkers(prev)

	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := parMap(items, func(i int) (int, error) { return 2 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("results out of order: got[%d] = %d", i, v)
		}
	}

	// When several items fail, the reported error must be the
	// lowest-index one — what a serial loop would have returned —
	// regardless of scheduling.
	_, err = parMap(items, func(i int) (int, error) {
		if i >= 17 {
			return 0, fmt.Errorf("item %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 17" {
		t.Fatalf("want lowest-index error \"item 17\", got %v", err)
	}

	// An empty input is a no-op.
	empty, err := parMap(nil, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty input: got %v, %v", empty, err)
	}
}

func TestSetSweepWorkers(t *testing.T) {
	prev := SetSweepWorkers(3)
	defer SetSweepWorkers(prev)
	if got := SweepWorkers(); got != 3 {
		t.Fatalf("SweepWorkers() = %d, want 3", got)
	}
	if old := SetSweepWorkers(0); old != 3 {
		t.Fatalf("SetSweepWorkers returned %d, want previous value 3", old)
	}
	if got := SweepWorkers(); got < 1 {
		t.Fatalf("default SweepWorkers() = %d, want >= 1", got)
	}
}

// The parallel sweeps must be byte-identical to serial runs: same rows,
// same order, on every experiment rewired onto the pool. Under -race this
// test also exercises the pool across concurrent engine runs and memoized
// model builds.
func TestParallelSweepsMatchSerial(t *testing.T) {
	tech := vlsi.Tech035()
	runs := []struct {
		name string
		f    func() (any, error)
	}{
		{"IPC", func() (any, error) { return IPC(16, 4) }},
		{"Locality", func() (any, error) { return Locality(16) }},
		{"Figure11", func() (any, error) { return Figure11(32, 32, 64, 1024, tech) }},
		{"Ultra2Scaling", func() (any, error) { return Ultra2Scaling(32, 32, 64, 256, tech) }},
		{"ClusterSweep", func() (any, error) {
			rows, bestC, err := ClusterSweep(1024, 32, 32, tech)
			return struct {
				Rows  []ClusterSweepRow
				BestC int
			}{rows, bestC}, err
		}},
		{"EndToEnd", func() (any, error) { return EndToEnd(32, 32, []int{64, 256}, tech) }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			prev := SetSweepWorkers(1)
			serial, err := r.f()
			if err != nil {
				SetSweepWorkers(prev)
				t.Fatalf("serial: %v", err)
			}
			SetSweepWorkers(8)
			parallel, err := r.f()
			SetSweepWorkers(prev)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("parallel result diverges from serial:\n serial   %+v\n parallel %+v", serial, parallel)
			}
		})
	}
}

// BenchmarkSweepParallel measures the experiment-sweep wall-clock serial
// vs fanned out — the speedup tracks available cores (identical on a
// single-core machine; the determinism tests above guarantee identical
// output either way).
func BenchmarkSweepParallel(b *testing.B) {
	tech := vlsi.Tech035()
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := SetSweepWorkers(mode.workers)
			defer SetSweepWorkers(prev)
			for i := 0; i < b.N; i++ {
				if _, err := IPC(64, 16); err != nil {
					b.Fatal(err)
				}
				if _, err := Figure11(32, 32, 64, 1024, tech); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPoolMetrics: with a registry wired in, parMap reports per-task
// wall times, task/batch counters, worker counts and a utilization
// gauge, in both serial and parallel modes — and the sweep results stay
// identical to an uninstrumented run.
func TestPoolMetrics(t *testing.T) {
	defer SetPoolMetrics(nil)
	items := make([]int, 37)
	for i := range items {
		items[i] = i
	}
	double := func(i int) (int, error) { return 2 * i, nil }

	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 4}} {
		t.Run(mode.name, func(t *testing.T) {
			prev := SetSweepWorkers(mode.workers)
			defer SetSweepWorkers(prev)
			reg := obs.NewRegistry()
			SetPoolMetrics(reg)
			defer SetPoolMetrics(nil)

			got, err := parMap(items, double)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if v != 2*i {
					t.Fatalf("instrumentation changed results: got[%d] = %d", i, v)
				}
			}
			if n := reg.Counter("exp.tasks").Value(); n != int64(len(items)) {
				t.Errorf("exp.tasks = %d, want %d", n, len(items))
			}
			if n := reg.Counter("exp.batches").Value(); n != 1 {
				t.Errorf("exp.batches = %d, want 1", n)
			}
			if h := reg.Histogram("exp.task_ms", nil); h.Count() != int64(len(items)) {
				t.Errorf("task_ms observations = %d, want %d", h.Count(), len(items))
			}
			wantWorkers := float64(mode.workers)
			if got := reg.Gauge("exp.workers").Value(); got != wantWorkers {
				t.Errorf("exp.workers = %v, want %v", got, wantWorkers)
			}
			if u := reg.Gauge("exp.utilization").Value(); u < 0 || u > 1.5 {
				t.Errorf("exp.utilization = %v, want a ratio", u)
			}
			snaps := reg.Snapshots()
			if len(snaps) != 1 || snaps[0].Tick != int64(len(items)) {
				t.Errorf("snapshots = %+v, want one ticked at the task count", snaps)
			}
		})
	}
}

// TestParMapPanicRecovery: a panicking sweep point becomes a structured
// *PanicError carrying the task index and stack, the remaining points
// still run, and serial and parallel pools report the identical
// lowest-index failure.
func TestParMapPanicRecovery(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 8}} {
		t.Run(mode.name, func(t *testing.T) {
			prev := SetSweepWorkers(mode.workers)
			defer SetSweepWorkers(prev)

			var ran atomic.Int64
			_, err := parMap(items, func(i int) (int, error) {
				ran.Add(1)
				if i == 13 || i == 31 {
					panic(fmt.Sprintf("boom at %d", i))
				}
				return i, nil
			})
			if err == nil {
				t.Fatal("panicking sweep returned no error")
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *PanicError: %v", err, err)
			}
			if pe.Index != 13 {
				t.Errorf("reported panic index %d, want the lowest (13)", pe.Index)
			}
			if pe.Value != "boom at 13" {
				t.Errorf("panic value %v, want \"boom at 13\"", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic error carries no stack")
			}
			// The rest of the sweep completed: every point ran despite two
			// panics.
			if got := ran.Load(); got != int64(len(items)) {
				t.Errorf("only %d/%d points ran; the pool stopped early", got, len(items))
			}
		})
	}
}

// TestParMapErrorDoesNotStopSweep: a plain task error likewise lets the
// remaining points complete (the batch reports the lowest-index error).
func TestParMapErrorDoesNotStopSweep(t *testing.T) {
	prev := SetSweepWorkers(1)
	defer SetSweepWorkers(prev)
	var ran atomic.Int64
	items := []int{0, 1, 2, 3, 4}
	_, err := parMap(items, func(i int) (int, error) {
		ran.Add(1)
		if i == 1 {
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 1 failed" {
		t.Fatalf("want \"item 1 failed\", got %v", err)
	}
	if ran.Load() != int64(len(items)) {
		t.Fatalf("only %d/%d points ran after an error", ran.Load(), len(items))
	}
}
