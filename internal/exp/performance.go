package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ultrascalar/internal/analysis"
	"ultrascalar/internal/core"
	"ultrascalar/internal/hybrid"
	"ultrascalar/internal/memory"
	"ultrascalar/internal/ultra1"
	"ultrascalar/internal/ultra2"
	"ultrascalar/internal/vlsi"
	"ultrascalar/internal/workload"
)

// E8: instructions per cycle of the three processors on the kernel suite.
// The paper claims identical scheduling across the three designs; the only
// architectural performance difference is refill granularity (Section 4:
// the Ultrascalar II idles waiting for the batch; Section 6: the hybrid
// refills per cluster).

// IPCRow is one workload's IPC on the three processors.
type IPCRow struct {
	Workload                     string
	CyclesU1, CyclesHy, CyclesU2 int64
	IPCU1, IPCHy, IPCU2          float64
	// OccU1/OccHy/OccU2 are mean station occupancies: the batch datapath
	// shows its idling here ("stations idle waiting for everyone to
	// finish before refilling").
	OccU1, OccHy, OccU2 float64
}

// IPC runs the kernel suite on all three processors at window n with
// hybrid clusters of c. The per-workload runs fan out across the sweep
// pool; row order matches workload.Kernels.
func IPC(n, c int) ([]IPCRow, error) {
	return IPCCtx(sweepContext(), n, c)
}

// IPCCtx is IPC bounded by an explicit context: once ctx is canceled no
// further kernels start and the sweep returns ctx's error. The serve
// layer uses this form so concurrent jobs carry independent deadlines.
func IPCCtx(ctx context.Context, n, c int) ([]IPCRow, error) {
	return parMapCtx(ctx, workload.Kernels(), func(w workload.Workload) (IPCRow, error) {
		r1, err := ultra1.Run(w.Prog, w.Mem(), n)
		if err != nil {
			return IPCRow{}, fmt.Errorf("%s on UltraI: %w", w.Name, err)
		}
		rh, err := hybrid.Run(w.Prog, w.Mem(), n, c)
		if err != nil {
			return IPCRow{}, fmt.Errorf("%s on hybrid: %w", w.Name, err)
		}
		r2, err := ultra2.Run(w.Prog, w.Mem(), n)
		if err != nil {
			return IPCRow{}, fmt.Errorf("%s on UltraII: %w", w.Name, err)
		}
		return IPCRow{
			Workload: w.Name,
			CyclesU1: r1.Stats.Cycles, CyclesHy: rh.Stats.Cycles, CyclesU2: r2.Stats.Cycles,
			IPCU1: r1.Stats.IPC(), IPCHy: rh.Stats.IPC(), IPCU2: r2.Stats.IPC(),
			OccU1: r1.Stats.MeanOccupancy(), OccHy: rh.Stats.MeanOccupancy(),
			OccU2: r2.Stats.MeanOccupancy(),
		}, nil
	})
}

// IPCReport renders E8.
func IPCReport(n, c int) (string, error) {
	return IPCReportCtx(sweepContext(), n, c)
}

// IPCReportCtx renders E8, bounded by ctx.
func IPCReportCtx(ctx context.Context, n, c int) (string, error) {
	rows, err := IPCCtx(ctx, n, c)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E8: IPC on the kernel suite (window n=%d, hybrid C=%d)\n\n", n, c)
	tab := analysis.NewTable("workload", "IPC UltraI", "IPC hybrid", "IPC UltraII",
		"occ UltraI", "occ hybrid", "occ UltraII")
	for _, r := range rows {
		tab.Row(r.Workload, r.IPCU1, r.IPCHy, r.IPCU2,
			fmt.Sprintf("%.1f", r.OccU1), fmt.Sprintf("%.1f", r.OccHy),
			fmt.Sprintf("%.1f", r.OccU2))
	}
	b.WriteString(tab.String())
	b.WriteString("\nUltrascalar I >= hybrid >= Ultrascalar II: the batch datapath idles\nwaiting for everyone to finish before refilling (Section 4).\n")
	return b.String(), nil
}

// E9: operand locality for the Section 7 self-timed estimate. The paper:
// "Half of the communications paths from one station to its successor are
// completely local. In such a processor, a program could run faster if
// most of its instructions depend on their immediate predecessors."

// LocalityRow summarizes operand sourcing for one workload.
type LocalityRow struct {
	Workload     string
	FromPrevious float64 // fraction of operands produced by the immediately preceding instruction
	FromNear     float64 // fraction from within 4 instructions
	FromInitial  float64 // fraction from the initial register file
	MeanDistance float64
}

// Locality runs the kernels on an n-station Ultrascalar I and aggregates
// operand producer distances. The per-kernel runs fan out across the
// sweep pool.
func Locality(n int) ([]LocalityRow, error) {
	perKernel, err := parMap(workload.Kernels(), func(w workload.Workload) (*LocalityRow, error) {
		res, err := ultra1.Run(w.Prog, w.Mem(), n)
		if err != nil {
			return nil, err
		}
		var total, prev, near, sum int64
		for d, c := range res.Stats.OperandFromStation {
			total += c
			sum += int64(d) * c
			if d == 1 {
				prev += c
			}
			if d <= 4 {
				near += c
			}
		}
		init := res.Stats.OperandFromCommitted
		all := total + init
		if all == 0 {
			return nil, nil
		}
		return &LocalityRow{
			Workload:     w.Name,
			FromPrevious: float64(prev) / float64(all),
			FromNear:     float64(near) / float64(all),
			FromInitial:  float64(init) / float64(all),
			MeanDistance: float64(sum) / float64(max(total, 1)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []LocalityRow
	for _, r := range perKernel {
		if r != nil {
			rows = append(rows, *r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Workload < rows[j].Workload })
	return rows, nil
}

// LocalityReport renders E9.
func LocalityReport(n int) (string, error) {
	rows, err := Locality(n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E9: operand producer distance on the kernel suite (n=%d)\n\n", n)
	tab := analysis.NewTable("workload", "from prev inst", "within 4", "from initial", "mean dist")
	for _, r := range rows {
		tab.Row(r.Workload,
			fmt.Sprintf("%.0f%%", 100*r.FromPrevious),
			fmt.Sprintf("%.0f%%", 100*r.FromNear),
			fmt.Sprintf("%.0f%%", 100*r.FromInitial),
			r.MeanDistance)
	}
	b.WriteString(tab.String())
	b.WriteString("\nSection 7's self-timed estimate: station-to-successor paths are local,\nso programs dominated by distance-1 dependences would speed up most.\n")
	return b.String(), nil
}

// E11: end-to-end runtime — cycle counts from the simulators scaled by the
// clock period implied by each processor's physical model, combining the
// paper's architectural claim (identical ILP) with its VLSI claim (very
// different clock paths).

// EndToEndRow is one configuration's runtime estimate.
type EndToEndRow struct {
	N       int
	Arch    string
	Cycles  int64
	ClockPs float64
	TimeUs  float64
}

// EndToEnd runs a mixed workload and combines it with the clock model.
// The hybrid uses C = min(L, n). Every (n, architecture) point is an
// independent simulation plus layout build, fanned out across the sweep
// pool; row order is ns-major, architecture-minor, as before.
func EndToEnd(l, w int, ns []int, t vlsi.Tech) ([]EndToEndRow, error) {
	m := memory.MPow(1, 0.5)
	wk := workload.MixedILP(2000, 16, 12, 99)
	type arch struct {
		name string
		cfg  core.Config
		md   func() (*vlsi.Model, error)
	}
	var points []arch
	for _, n := range ns {
		n := n
		c := min(l, n)
		points = append(points,
			arch{ultra1.Name, ultra1.EngineConfig(n), func() (*vlsi.Model, error) {
				return vlsi.UltraIModel(n, l, w, m, t, vlsi.UltraIOptions{})
			}},
			arch{hybrid.Name, hybrid.EngineConfig(n, c), func() (*vlsi.Model, error) {
				return vlsi.HybridModel(n, c, l, w, m, t, vlsi.Ultra2Linear)
			}},
			arch{ultra2.Name + " (mixed)", ultra2.EngineConfig(n), func() (*vlsi.Model, error) {
				return vlsi.Ultra2Model(n, l, w, m, t, vlsi.Ultra2Mixed)
			}},
		)
	}
	return parMap(points, func(a arch) (EndToEndRow, error) {
		res, err := core.Run(wk.Prog, wk.Mem(), a.cfg)
		if err != nil {
			return EndToEndRow{}, err
		}
		md, err := a.md()
		if err != nil {
			return EndToEndRow{}, err
		}
		clock := md.ClockPs(t)
		return EndToEndRow{
			N: a.cfg.Window, Arch: a.name, Cycles: res.Stats.Cycles,
			ClockPs: clock,
			TimeUs:  float64(res.Stats.Cycles) * clock / 1e6,
		}, nil
	})
}

// CrossoverRow records the fastest architecture at one scale.
type CrossoverRow struct {
	N      int
	Winner string
	TimeUs map[string]float64
}

// Crossover sweeps n and reports which architecture has the lowest
// end-to-end runtime at each scale — the practical reading of the paper's
// Figure 11 dominance claims.
func Crossover(l, w int, ns []int, t vlsi.Tech) ([]CrossoverRow, error) {
	rows, err := EndToEnd(l, w, ns, t)
	if err != nil {
		return nil, err
	}
	byN := map[int]map[string]float64{}
	for _, r := range rows {
		if byN[r.N] == nil {
			byN[r.N] = map[string]float64{}
		}
		byN[r.N][r.Arch] = r.TimeUs
	}
	var out []CrossoverRow
	for _, n := range ns {
		winner := ""
		best := 0.0
		for arch, us := range byN[n] {
			if winner == "" || us < best {
				winner, best = arch, us
			}
		}
		out = append(out, CrossoverRow{N: n, Winner: winner, TimeUs: byN[n]})
	}
	return out, nil
}

// CrossoverReport renders the winner-by-scale table.
func CrossoverReport(l, w int, ns []int, t vlsi.Tech) (string, error) {
	rows, err := Crossover(l, w, ns, t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E11b: fastest architecture by scale (L=%d)\n\n", l)
	tab := analysis.NewTable("n", "winner", "runtime (us)")
	for _, r := range rows {
		tab.Row(r.N, r.Winner, r.TimeUs[r.Winner])
	}
	b.WriteString(tab.String())
	return b.String(), nil
}

// EndToEndReport renders E11.
func EndToEndReport(l, w int, ns []int, t vlsi.Tech) (string, error) {
	rows, err := EndToEnd(l, w, ns, t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E11: end-to-end runtime = cycles x clock period (L=%d, M=sqrt)\n\n", l)
	tab := analysis.NewTable("n", "processor", "cycles", "clock (ps)", "runtime (us)")
	for _, r := range rows {
		tab.Row(r.N, r.Arch, r.Cycles, r.ClockPs, r.TimeUs)
	}
	b.WriteString(tab.String())
	return b.String(), nil
}
