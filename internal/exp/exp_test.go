package exp

import (
	"math"
	"strings"
	"testing"

	"ultrascalar/internal/vlsi"
)

func TestFigure3Rows(t *testing.T) {
	rows, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(rows))
	}
	want := [][2]int64{{0, 10}, {10, 11}, {0, 1}, {11, 12}, {0, 3}, {3, 4}, {0, 1}, {1, 2}}
	for i, r := range rows {
		if r.Issue != want[i][0] || r.Done != want[i][1] {
			t.Errorf("row %d (%s): [%d,%d), want [%d,%d)", i, r.Inst, r.Issue, r.Done, want[i][0], want[i][1])
		}
	}
	rep, err := Figure3Report()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "div") || !strings.Contains(rep, "##########") {
		t.Errorf("report missing the 10-cycle divide bar:\n%s", rep)
	}
}

// TestFigure11Exponents validates every measured exponent against the
// paper's dominant power (log factors shift exponents upward slightly, so
// the tolerance is asymmetric).
func TestFigure11Exponents(t *testing.T) {
	cells, err := Figure11(32, 32, 64, 4096, vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*4*4 {
		t.Fatalf("want 48 cells, got %d", len(cells))
	}
	for _, c := range cells {
		diff := c.Fit.Exponent - c.PredictedExp
		lo, hi := -0.25, 0.45
		switch c.Quantity {
		case "gate":
			// Gate delays of the log designs are Θ(log): predicted
			// exponent 0 with a small positive measured slope; linear
			// designs hit their exact slope.
			hi = 0.5
		case "total":
			// Total delay is a mixture of a near-constant gate term and
			// the wire power term: the measured exponent lies anywhere
			// between them at finite n.
			lo = -0.6
		}
		if diff < lo || diff > hi {
			t.Errorf("%s %s %s: measured %.3f vs predicted %.2f (%s)",
				c.Arch.Name(), c.Regime, c.Quantity, c.Fit.Exponent, c.PredictedExp, c.Predicted)
		}
		if c.Fit.R2 < 0.93 {
			t.Errorf("%s %s %s: poor fit R2=%.3f", c.Arch.Name(), c.Regime, c.Quantity, c.Fit.R2)
		}
	}
	rep, err := Figure11Report(32, 32, 64, 1024, vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ultrascalar I", "Hybrid", "M(n)=Th(n^1/2)", "area"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Figure 11 report missing %q", want)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	r, err := Figure12(vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if r.DensityRatio < 8 || r.DensityRatio > 16 {
		t.Errorf("density ratio %.1f, paper about 11.5", r.DensityRatio)
	}
	rep, err := Figure12Report(vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "150,000") || !strings.Contains(rep, "density ratio") {
		t.Errorf("report incomplete:\n%s", rep)
	}
}

func TestUltraIRecurrenceAgreement(t *testing.T) {
	rows, err := UltraIRecurrence(32, 32, 64, 4096, vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 regimes, got %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.ModelExp-r.RecurrenceExp) > 0.3 {
			t.Errorf("%s: floorplan %.3f vs recurrence %.3f disagree",
				r.Regime, r.ModelExp, r.RecurrenceExp)
		}
	}
	// Case 1 is Θ(√n); the linear-M case is Θ(n). The linear case is
	// checked with small L so the memory wires dominate the station
	// bundles within the sweep range.
	if math.Abs(rows[0].ModelExp-0.5) > 0.1 {
		t.Errorf("case 1 exponent %.3f, want 0.5", rows[0].ModelExp)
	}
	rowsSmallL, err := UltraIRecurrence(8, 8, 64, 4096, vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rowsSmallL[3].ModelExp-1.0) > 0.2 {
		t.Errorf("linear-M exponent %.3f (L=8), want 1", rowsSmallL[3].ModelExp)
	}
	rep, err := UltraIRecurrenceReport(32, 32, 64, 1024, vlsi.Tech035())
	if err != nil || !strings.Contains(rep, "Case 1") {
		t.Errorf("recurrence report bad: %v", err)
	}
}

func TestUltra2ScalingRows(t *testing.T) {
	rows, err := Ultra2Scaling(32, 32, 64, 512, vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if !(last.SideLog > last.SideLin && last.SideMixed < 1.2*last.SideLin) {
		t.Errorf("side ordering wrong: %+v", last)
	}
	if !(last.GateLog < last.GateLin && last.GateMixed < last.GateLin) {
		t.Errorf("gate ordering wrong: %+v", last)
	}
	rep, err := Ultra2ScalingReport(32, 32, 64, 256, vlsi.Tech035())
	if err != nil || !strings.Contains(rep, "mixed") {
		t.Errorf("scaling report bad: %v", err)
	}
}

func TestClusterSweepMinimumAtL(t *testing.T) {
	for _, l := range []int{8, 32} {
		_, bestC, err := ClusterSweep(4096, l, 32, vlsi.Tech035())
		if err != nil {
			t.Fatal(err)
		}
		if bestC < l/2 || bestC > 2*l {
			t.Errorf("L=%d: best C=%d, want Θ(L)", l, bestC)
		}
	}
	rep, err := ClusterSweepReport(1024, 32, vlsi.Tech035())
	if err != nil || !strings.Contains(rep, "<- min") {
		t.Errorf("cluster sweep report bad: %v", err)
	}
}

func TestIPCOrdering(t *testing.T) {
	rows, err := IPC(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no IPC rows")
	}
	for _, r := range rows {
		if !(r.IPCU1+1e-9 >= r.IPCHy && r.IPCHy+1e-9 >= r.IPCU2) {
			t.Errorf("%s: IPC ordering violated: %.3f / %.3f / %.3f",
				r.Workload, r.IPCU1, r.IPCHy, r.IPCU2)
		}
	}
	rep, err := IPCReport(16, 4)
	if err != nil || !strings.Contains(rep, "IPC UltraI") {
		t.Errorf("IPC report bad: %v", err)
	}
}

func TestLocalityRows(t *testing.T) {
	rows, err := Locality(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("too few locality rows: %d", len(rows))
	}
	for _, r := range rows {
		sum := r.FromPrevious + r.FromInitial
		if sum < 0 || sum > 1.0001 || r.FromNear < r.FromPrevious {
			t.Errorf("%s: implausible locality %+v", r.Workload, r)
		}
		if r.MeanDistance <= 0 {
			t.Errorf("%s: mean distance %.2f", r.Workload, r.MeanDistance)
		}
	}
	rep, err := LocalityReport(32)
	if err != nil || !strings.Contains(rep, "from prev inst") {
		t.Errorf("locality report bad: %v", err)
	}
}

func TestEndToEndCrossover(t *testing.T) {
	rows, err := EndToEnd(32, 32, []int{64, 1024}, vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	// At every n the hybrid's clock beats the Ultrascalar I's (shorter
	// wires at n >= L).
	byN := map[int]map[string]EndToEndRow{}
	for _, r := range rows {
		if byN[r.N] == nil {
			byN[r.N] = map[string]EndToEndRow{}
		}
		byN[r.N][r.Arch] = r
	}
	for n, m := range byN {
		if m["Hybrid Ultrascalar"].ClockPs >= m["Ultrascalar I"].ClockPs {
			t.Errorf("n=%d: hybrid clock %.0f should beat UltraI %.0f",
				n, m["Hybrid Ultrascalar"].ClockPs, m["Ultrascalar I"].ClockPs)
		}
	}
	rep, err := EndToEndReport(32, 32, []int{64}, vlsi.Tech035())
	if err != nil || !strings.Contains(rep, "runtime") {
		t.Errorf("end-to-end report bad: %v", err)
	}
}

func TestCrossover(t *testing.T) {
	rows, err := Crossover(32, 32, []int{64, 1024}, vlsi.Tech035())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Winner == "" || r.TimeUs[r.Winner] <= 0 {
			t.Errorf("bad crossover row %+v", r)
		}
		for _, us := range r.TimeUs {
			if us < r.TimeUs[r.Winner] {
				t.Errorf("winner is not fastest: %+v", r)
			}
		}
	}
	rep, err := CrossoverReport(32, 32, []int{64}, vlsi.Tech035())
	if err != nil || !strings.Contains(rep, "winner") {
		t.Errorf("crossover report bad: %v", err)
	}
}

func TestCircuitDepthRows(t *testing.T) {
	rows := CircuitDepths(8, 8, 64)
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.RingDepth < 4*first.RingDepth {
		t.Errorf("ring depth should grow linearly: %d -> %d", first.RingDepth, last.RingDepth)
	}
	if !(last.TreeDepth <= last.MixedDepth && last.MixedDepth <= last.RingDepth) {
		t.Errorf("mixed depth %d should sit between tree %d and ring %d",
			last.MixedDepth, last.TreeDepth, last.RingDepth)
	}
	if last.TreeDepth > first.TreeDepth+12 {
		t.Errorf("tree depth should grow logarithmically: %d -> %d", first.TreeDepth, last.TreeDepth)
	}
	if last.GridLin < 2*first.GridLin {
		t.Errorf("grid depth should grow linearly: %d -> %d", first.GridLin, last.GridLin)
	}
	rep := CircuitDepthsReport(8, 8, 32)
	if !strings.Contains(rep, "mesh-of-trees") {
		t.Error("circuit report incomplete")
	}
}

func TestThreeDReport(t *testing.T) {
	rep := ThreeDReport(64, []int{256, 1024, 4096})
	if !strings.Contains(rep, "hybrid volume") || !strings.Contains(rep, "L^{3/4}") {
		t.Errorf("3D report incomplete:\n%s", rep)
	}
}

func TestTechScaling(t *testing.T) {
	rows, err := TechScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 nodes, got %d", len(rows))
	}
	// Sizes shrink monotonically with the node.
	for i := 1; i < len(rows); i++ {
		if rows[i].SideCM >= rows[i-1].SideCM {
			t.Errorf("side should shrink: %s %.2f >= %s %.2f",
				rows[i].Node, rows[i].SideCM, rows[i-1].Node, rows[i-1].SideCM)
		}
	}
	// The paper's 0.1 µm claim: fits within 1 cm on a side.
	var node01 *TechScalingRow
	for i := range rows {
		if strings.Contains(rows[i].Node, "0.10um") {
			node01 = &rows[i]
		}
	}
	if node01 == nil || !node01.FitsCM1 {
		t.Errorf("0.1um hybrid should fit 1cm x 1cm: %+v", node01)
	}
	rep, err := TechScalingReport()
	if err != nil || !strings.Contains(rep, "fits 1cm") {
		t.Errorf("tech report bad: %v", err)
	}
}

func TestArchKindNames(t *testing.T) {
	for _, a := range []ArchKind{ArchUltra1, ArchUltra2Linear, ArchUltra2Log, ArchHybrid} {
		if a.Name() == "" {
			t.Errorf("arch %d has no name", a)
		}
	}
	if len(Regimes()) != 3 {
		t.Error("want the paper's three bandwidth regimes")
	}
}
